// The segment-sketch index's headline contract, asserted end to end:
// with EngineOptions::use_store_index on (and sketches built), every
// query answer — scalar, frames, rows — is byte-identical to the
// unindexed run. Only the *charged* simulated costs may change, and only
// downward: sketches refute segments conservatively, so skipping one can
// never change what a query returns, only what it pays. Like
// store_invariance_test, this suite owns a private store dir and stays
// deliberately cold on every run.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/engine.h"
#include "storage/segment_sketch.h"
#include "testing/test_util.h"

namespace blazeit {
namespace {

namespace fs = std::filesystem;

struct InvarianceQuery {
  const char* frameql;
  /// The sketch index provably refutes every frame (taipei has no birds),
  /// so the indexed run must charge zero detections — the strict win that
  /// proves pruning actually engaged rather than silently no-opping.
  bool expect_zero_detections;
};

const InvarianceQuery kQueries[] = {
    // Exhaustive full scans: class predicate, count requirement, ROI +
    // area conjuncts, and a class absent from the stream.
    {"SELECT timestamp FROM taipei WHERE class = 'bus'", false},
    {"SELECT timestamp FROM taipei GROUP BY timestamp "
     "HAVING SUM(class='car') >= 2",
     false},
    {"SELECT timestamp FROM taipei WHERE class = 'bus' "
     "AND timestamp >= 10 AND timestamp <= 90",
     false},
    {"SELECT timestamp FROM taipei WHERE class = 'bird'", true},
    // Count-distinct: the tracker walk may skip class-free gaps.
    {"SELECT COUNT(DISTINCT trackid) FROM taipei WHERE class = 'bus'", false},
    {"SELECT COUNT(DISTINCT trackid) FROM taipei WHERE class = 'bird'", true},
    // Scrubbing: the trained path restricts its NN sweep and verification
    // walk to candidate frames; the no-training-instances fallback scan
    // skips refuted segments outright.
    {"SELECT timestamp FROM taipei GROUP BY timestamp "
     "HAVING SUM(class='car') >= 2 LIMIT 3 GAP 50",
     false},
    {"SELECT timestamp FROM taipei GROUP BY timestamp "
     "HAVING SUM(class='bird') >= 1 LIMIT 2",
     true},
};

class SketchInvarianceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) / "blazeit-sketch-invariance")
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static void ExpectSameAnswer(const QueryOutput& indexed,
                               const QueryOutput& unindexed,
                               const char* query) {
    SCOPED_TRACE(query);
    EXPECT_EQ(indexed.kind, unindexed.kind);
    EXPECT_EQ(indexed.plan, unindexed.plan);
    EXPECT_EQ(indexed.plan_description, unindexed.plan_description);
    EXPECT_EQ(indexed.scalar, unindexed.scalar);
    EXPECT_EQ(indexed.frames, unindexed.frames);
    ASSERT_EQ(indexed.rows.size(), unindexed.rows.size());
    for (size_t i = 0; i < indexed.rows.size(); ++i) {
      EXPECT_EQ(indexed.rows[i].frame, unindexed.rows[i].frame);
      EXPECT_EQ(indexed.rows[i].detection.rect,
                unindexed.rows[i].detection.rect);
      EXPECT_EQ(indexed.rows[i].detection.score,
                unindexed.rows[i].detection.score);
    }
    // The index only ever removes charged work.
    EXPECT_LE(indexed.cost.detection_calls(), unindexed.cost.detection_calls());
    EXPECT_LE(indexed.cost.specialized_nn_calls(),
              unindexed.cost.specialized_nn_calls());
    EXPECT_LE(indexed.cost.TotalSeconds(), unindexed.cost.TotalSeconds());
  }

  std::string dir_;
};

TEST_F(SketchInvarianceTest, IndexedAnswersMatchUnindexedBitForBit) {
  // Pass 1: populate the store (records flush when the catalog dies).
  {
    VideoCatalog catalog;
    BLAZEIT_ASSERT_OK(catalog.EnableDetectionStore(dir_));
    BLAZEIT_ASSERT_OK(catalog.AddStream(
        TaipeiConfig(), testutil::SmallDays(2000, 2000, 4000)));
    BlazeItEngine engine(&catalog, testutil::SmallEngineOptions());
    for (const InvarianceQuery& q : kQueries) {
      BLAZEIT_ASSERT_OK(engine.Execute(q.frameql).status());
    }
  }

  // Pass 2: warm store, sketches built; compare unindexed vs indexed
  // inside one catalog so both runs replay identical detections.
  VideoCatalog catalog;
  BLAZEIT_ASSERT_OK(catalog.EnableDetectionStore(dir_));
  BLAZEIT_ASSERT_OK(catalog.AddStream(
      TaipeiConfig(), testutil::SmallDays(2000, 2000, 4000)));
  StreamData* stream = catalog.GetStream("taipei").value();
  ASSERT_NE(stream->detection_store, nullptr);
  BLAZEIT_ASSERT_OK(
      stream->detection_store->BuildSketches(stream->test_detections_ns));
  ASSERT_TRUE(SketchIndex::Load(stream->detection_store,
                                stream->test_detections_ns)
                  .valid());

  BlazeItEngine engine(&catalog, testutil::SmallEngineOptions());
  for (const InvarianceQuery& q : kQueries) {
    auto unindexed = engine.Execute(q.frameql);
    BLAZEIT_ASSERT_OK(unindexed);

    engine.mutable_options()->use_store_index = true;
    auto indexed = engine.Execute(q.frameql);
    engine.mutable_options()->use_store_index = false;
    BLAZEIT_ASSERT_OK(indexed);

    ExpectSameAnswer(indexed.value(), unindexed.value(), q.frameql);
    if (q.expect_zero_detections) {
      SCOPED_TRACE(q.frameql);
      EXPECT_GT(unindexed.value().cost.detection_calls(), 0);
      EXPECT_EQ(indexed.value().cost.detection_calls(), 0);
    }
  }
}

TEST_F(SketchInvarianceTest, StaleSketchesFallBackToUnindexedPath) {
  // use_store_index with *no* sketches built must behave exactly like the
  // unindexed engine — same answers, same costs (nothing to consult).
  VideoCatalog catalog;
  BLAZEIT_ASSERT_OK(catalog.EnableDetectionStore(dir_));
  BLAZEIT_ASSERT_OK(catalog.AddStream(
      TaipeiConfig(), testutil::SmallDays(1000, 1000, 2000)));
  BlazeItEngine engine(&catalog, testutil::SmallEngineOptions());
  const char* query = "SELECT timestamp FROM taipei WHERE class = 'bus'";
  auto plain = engine.Execute(query);
  BLAZEIT_ASSERT_OK(plain);
  engine.mutable_options()->use_store_index = true;
  auto no_sketches = engine.Execute(query);
  BLAZEIT_ASSERT_OK(no_sketches);
  EXPECT_EQ(no_sketches.value().frames, plain.value().frames);
  EXPECT_EQ(no_sketches.value().cost.detection_calls(),
            plain.value().cost.detection_calls());
  EXPECT_EQ(no_sketches.value().cost.TotalSeconds(),
            plain.value().cost.TotalSeconds());
}

TEST_F(SketchInvarianceTest, DensityFirstScrubbingReturnsOnlyTruePositives) {
  // density_first re-orders the fallback walk (NeedleTail-style), which
  // is outside the bit-identity contract — but it must still return only
  // verified matches, respect LIMIT, and find no fewer frames than the
  // ascending fallback.
  // A deliberately short training day against a long test day, so rare
  // high-count events exist to find but never appeared during training.
  VideoCatalog catalog;
  BLAZEIT_ASSERT_OK(catalog.EnableDetectionStore(dir_));
  BLAZEIT_ASSERT_OK(catalog.AddStream(
      TaipeiConfig(), testutil::SmallDays(400, 400, 8000)));
  StreamData* stream = catalog.GetStream("taipei").value();

  // Find a requirement with test-day matches but no training-day
  // instances, so the executor takes the sequential-scan fallback that
  // density_first reorders.
  int n = -1;
  for (int cand = 8; cand >= 2; --cand) {
    int64_t train_matches = 0;
    for (int c : stream->train_labels->Counts(kCar)) {
      if (c >= cand) ++train_matches;
    }
    auto stats = CountRequirementInstances(*stream, {{kCar, cand}});
    if (train_matches == 0 && stats.matching_frames > 0) {
      n = cand;
      break;
    }
  }
  if (n < 0) GTEST_SKIP() << "no fallback-triggering requirement available";

  ScrubOptions options = testutil::SmallNNOptions<ScrubOptions>();
  ScrubbingExecutor plain_ex(stream, options);
  auto plain = plain_ex.Run({{kCar, n}}, 3, 0);
  BLAZEIT_ASSERT_OK(plain);
  EXPECT_TRUE(plain.value().fell_back_to_scan);

  BLAZEIT_ASSERT_OK(
      stream->detection_store->BuildSketches(stream->test_detections_ns));
  options.use_store_index = true;
  options.density_first = true;
  ScrubbingExecutor dense_ex(stream, options);
  auto dense = dense_ex.Run({{kCar, n}}, 3, 0);
  BLAZEIT_ASSERT_OK(dense);
  EXPECT_TRUE(dense.value().fell_back_to_scan);
  EXPECT_EQ(dense.value().frames.size(), plain.value().frames.size());
  const auto& counts = stream->test_labels->Counts(kCar);
  for (int64_t f : dense.value().frames) {
    EXPECT_GE(counts[static_cast<size_t>(f)], n) << f;
  }
  EXPECT_EQ(dense.value().limit_satisfied, plain.value().limit_satisfied);
}

}  // namespace
}  // namespace blazeit
