#include "exec/parallel_for.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/frame_pipeline.h"
#include "exec/thread_pool.h"

namespace blazeit {
namespace {

using exec::FramePipeline;
using exec::ParallelFor;
using exec::ParallelMap;
using exec::ThreadPool;

/// Each test picks its own pool size; restore a small parallel default
/// afterwards so suite order never matters.
class ExecTest : public ::testing::Test {
 protected:
  void TearDown() override { ThreadPool::Instance().Reconfigure(2); }
};

TEST_F(ExecTest, ReconfigureSetsMaxParallelism) {
  ThreadPool::Instance().Reconfigure(4);
  EXPECT_EQ(ThreadPool::Instance().max_parallelism(), 4);
  EXPECT_TRUE(ThreadPool::Instance().enabled());
  ThreadPool::Instance().Reconfigure(1);
  EXPECT_EQ(ThreadPool::Instance().max_parallelism(), 1);
  EXPECT_FALSE(ThreadPool::Instance().enabled());
  // Below 1 clamps to serial rather than failing.
  ThreadPool::Instance().Reconfigure(0);
  EXPECT_EQ(ThreadPool::Instance().max_parallelism(), 1);
}

TEST_F(ExecTest, ThreadsFromEnvParsesKnob) {
  ASSERT_EQ(setenv("BLAZEIT_THREADS", "5", 1), 0);
  EXPECT_EQ(ThreadPool::ThreadsFromEnv(), 5);
  ASSERT_EQ(setenv("BLAZEIT_THREADS", "0", 1), 0);
  EXPECT_EQ(ThreadPool::ThreadsFromEnv(), 1);  // 0 means serial, not zero
  ASSERT_EQ(setenv("BLAZEIT_THREADS", "-3", 1), 0);
  EXPECT_EQ(ThreadPool::ThreadsFromEnv(), 1);
  ASSERT_EQ(unsetenv("BLAZEIT_THREADS"), 0);
  EXPECT_GE(ThreadPool::ThreadsFromEnv(), 1);  // hardware_concurrency
}

TEST_F(ExecTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool::Instance().Reconfigure(4);
  constexpr int64_t kTotal = 10'000;
  std::vector<std::atomic<int>> visits(kTotal);
  ParallelFor(kTotal, 64, [&](int64_t begin, int64_t end, int slot) {
    EXPECT_GE(slot, 0);
    EXPECT_LT(slot, ThreadPool::Instance().max_parallelism());
    for (int64_t i = begin; i < end; ++i) {
      visits[static_cast<size_t>(i)].fetch_add(1);
    }
  });
  for (int64_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(visits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST_F(ExecTest, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool::Instance().Reconfigure(4);
  int64_t calls = 0;
  ParallelFor(0, 64, [&](int64_t, int64_t, int) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int64_t> sum{0};
  ParallelFor(3, 64, [&](int64_t begin, int64_t end, int) {
    for (int64_t i = begin; i < end; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 3);
}

TEST_F(ExecTest, ParallelMapMergesInShardOrder) {
  ThreadPool::Instance().Reconfigure(8);
  // Each shard returns its begin index; the merged vector must be in
  // ascending shard order regardless of completion order.
  std::vector<int64_t> begins = ParallelMap<int64_t>(
      1000, 32, [](int64_t begin, int64_t, int) { return begin; });
  ASSERT_EQ(begins.size(), static_cast<size_t>((1000 + 31) / 32));
  for (size_t s = 0; s < begins.size(); ++s) {
    EXPECT_EQ(begins[s], static_cast<int64_t>(s) * 32);
  }
}

TEST_F(ExecTest, SerialPoolRunsInlineOnCaller) {
  ThreadPool::Instance().Reconfigure(1);
  const std::thread::id caller = std::this_thread::get_id();
  ParallelFor(100, 10, [&](int64_t, int64_t, int slot) {
    EXPECT_EQ(slot, 0);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST_F(ExecTest, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool::Instance().Reconfigure(4);
  EXPECT_THROW(
      ParallelFor(1000, 16,
                  [&](int64_t begin, int64_t, int) {
                    if (begin == 512) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // The pool keeps working after a throwing job.
  std::atomic<int64_t> count{0};
  ParallelFor(100, 16, [&](int64_t begin, int64_t end, int) {
    count.fetch_add(end - begin);
  });
  EXPECT_EQ(count.load(), 100);
}

TEST_F(ExecTest, SerialExceptionIsLowestThrowingShard) {
  // With a serial pool the shards run in order and cancellation skips the
  // rest, so the surfaced exception is deterministically the first
  // throwing shard — the same one plain serial execution would hit.
  ThreadPool::Instance().Reconfigure(1);
  try {
    ParallelFor(100, 10, [&](int64_t begin, int64_t, int) {
      if (begin == 30) throw std::runtime_error("shard-3");
      if (begin == 70) throw std::runtime_error("shard-7");
    });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "shard-3");
  }
}

TEST_F(ExecTest, NestedParallelForRunsInline) {
  ThreadPool::Instance().Reconfigure(4);
  std::atomic<int64_t> total{0};
  ParallelFor(8, 1, [&](int64_t, int64_t, int) {
    // Inner loops from inside a shard must not deadlock; they run inline.
    const std::thread::id inner_caller = std::this_thread::get_id();
    ParallelFor(50, 10, [&](int64_t begin, int64_t end, int slot) {
      EXPECT_EQ(slot, 0);
      EXPECT_EQ(std::this_thread::get_id(), inner_caller);
      total.fetch_add(end - begin);
    });
  });
  EXPECT_EQ(total.load(), 8 * 50);
}

/// The determinism contract end to end at the primitive level: a
/// floating-point map-reduce with fixed shard size folds to identical
/// bits at every thread count.
TEST_F(ExecTest, FloatReductionBitIdenticalAcrossThreadCounts) {
  auto run = [] {
    std::vector<double> partials = ParallelMap<double>(
        100'000, exec::kDefaultShardSize,
        [](int64_t begin, int64_t end, int) {
          double sum = 0.0;
          for (int64_t i = begin; i < end; ++i) {
            sum += 1.0 / (1.0 + static_cast<double>(i));
          }
          return sum;
        });
    double total = 0.0;  // fixed-order serial fold
    for (double p : partials) total += p;
    return total;
  };
  ThreadPool::Instance().Reconfigure(1);
  const double serial = run();
  for (int threads : {2, 3, 8}) {
    ThreadPool::Instance().Reconfigure(threads);
    const double parallel = run();
    EXPECT_EQ(std::memcmp(&serial, &parallel, sizeof(double)), 0)
        << "threads=" << threads;
  }
}

TEST_F(ExecTest, FramePipelineProvidesPerSlotScratch) {
  ThreadPool::Instance().Reconfigure(4);
  // Scratch images grow to each slot's high-water mark and are handed
  // back to every shard that slot executes; writes through them must not
  // interfere across shards.
  constexpr int64_t kFrames = 512;
  std::vector<float> out(kFrames, 0.0f);
  FramePipeline::Run(kFrames, 64,
                     [&](int64_t begin, int64_t end,
                         FramePipeline::Scratch* scratch) {
                       ASSERT_NE(scratch, nullptr);
                       scratch->image.SetSize(8, 8);
                       for (int64_t i = begin; i < end; ++i) {
                         scratch->image.SetPixel(
                             0, 0,
                             {static_cast<float>(i) / kFrames, 0.0f, 0.0f});
                         out[static_cast<size_t>(i)] =
                             scratch->image.At(0, 0, 0);
                       }
                     });
  for (int64_t i = 0; i < kFrames; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)],
              static_cast<float>(i) / kFrames);
  }
}

TEST_F(ExecTest, BudgetLimitCapsWorkersButCallerAlwaysRuns) {
  ThreadPool::Instance().Reconfigure(8);
  ThreadPool::Instance().SetBudgetLimit(ThreadPool::Budget::kAnalytics, 1);
  EXPECT_EQ(ThreadPool::Instance().BudgetLimit(ThreadPool::Budget::kAnalytics),
            1);
  // An analytics job may be helped by at most one pool worker; the caller
  // always works its own job, so peak concurrency is limit + 1.
  std::atomic<int> current{0};
  std::atomic<int> peak{0};
  ThreadPool::Instance().RunShards(
      32,
      [&](int64_t, int) {
        const int now = current.fetch_add(1) + 1;
        int seen = peak.load();
        while (now > seen && !peak.compare_exchange_weak(seen, now)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        current.fetch_sub(1);
      },
      ThreadPool::Budget::kAnalytics);
  EXPECT_GE(peak.load(), 1);
  EXPECT_LE(peak.load(), 2);

  // Restoring the limit (<= 0) lifts the cap for later jobs.
  ThreadPool::Instance().SetBudgetLimit(ThreadPool::Budget::kAnalytics, 0);
  EXPECT_EQ(ThreadPool::Instance().BudgetLimit(ThreadPool::Budget::kAnalytics),
            0);
}

TEST_F(ExecTest, BudgetedJobStillCompletesWhenPoolIsSerial) {
  // With the pool disabled the caller runs every shard inline; a budget
  // cap must never deadlock or drop shards.
  ThreadPool::Instance().Reconfigure(1);
  ThreadPool::Instance().SetBudgetLimit(ThreadPool::Budget::kServing, 1);
  std::atomic<int64_t> sum{0};
  ThreadPool::Instance().RunShards(
      10, [&](int64_t shard, int) { sum.fetch_add(shard); },
      ThreadPool::Budget::kServing);
  EXPECT_EQ(sum.load(), 45);
  ThreadPool::Instance().SetBudgetLimit(ThreadPool::Budget::kServing, 0);
}

TEST_F(ExecTest, ManyConcurrentSmallJobs) {
  ThreadPool::Instance().Reconfigure(4);
  // Back-to-back small jobs stress the queue/wakeup path.
  for (int round = 0; round < 200; ++round) {
    std::atomic<int64_t> sum{0};
    ParallelFor(17, 4, [&](int64_t begin, int64_t end, int) {
      for (int64_t i = begin; i < end; ++i) sum.fetch_add(i);
    });
    ASSERT_EQ(sum.load(), 17 * 16 / 2);
  }
}

}  // namespace
}  // namespace blazeit
