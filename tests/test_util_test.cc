// The shared fixtures/matchers are load-bearing for every other suite, so
// they get their own coverage: a wrong tolerance matcher silently weakens
// 29 suites at once.
#include "testing/test_util.h"

#include <gtest/gtest.h>

namespace blazeit {
namespace {

TEST(TestUtilTest, SmallDaysDefaults) {
  DayLengths d = testutil::SmallDays();
  EXPECT_EQ(d.train, 6000);
  EXPECT_EQ(d.held_out, 6000);
  EXPECT_EQ(d.test, 12000);
}

TEST(TestUtilTest, SmallDaysOverrides) {
  DayLengths d = testutil::SmallDays(3000, 2000, 4000);
  EXPECT_EQ(d.train, 3000);
  EXPECT_EQ(d.held_out, 2000);
  EXPECT_EQ(d.test, 4000);
}

TEST(TestUtilTest, SmallNNShape) {
  SpecializedNNConfig nn = testutil::SmallNN();
  EXPECT_EQ(nn.raster_width, 16);
  EXPECT_EQ(nn.raster_height, 16);
  ASSERT_EQ(nn.hidden_dims.size(), 1u);
  EXPECT_EQ(nn.hidden_dims[0], 32);
}

TEST(TestUtilTest, SmallNNOptionsWiresAllExecutorOptionTypes) {
  EXPECT_EQ(testutil::SmallNNOptions<AggregateOptions>().nn.raster_width, 16);
  EXPECT_EQ(testutil::SmallNNOptions<ScrubOptions>().nn.raster_width, 16);
  EXPECT_EQ(testutil::SmallNNOptions<SelectionOptions>().nn.raster_width, 16);
  EngineOptions engine = testutil::SmallEngineOptions();
  EXPECT_EQ(engine.aggregate.nn.raster_width, 16);
  EXPECT_EQ(engine.scrub.nn.raster_width, 16);
  EXPECT_EQ(engine.selection.nn.raster_width, 16);
}

TEST(TestUtilTest, IsOkOnStatus) {
  EXPECT_TRUE(testutil::IsOk(Status::OK()));
  ::testing::AssertionResult bad = testutil::IsOk(Status::NotFound("gone"));
  EXPECT_FALSE(bad);
  EXPECT_NE(std::string(bad.message()).find("NotFound: gone"),
            std::string::npos);
}

TEST(TestUtilTest, IsOkOnResult) {
  EXPECT_TRUE(testutil::IsOk(Result<int>(7)));
  ::testing::AssertionResult bad =
      testutil::IsOk(Result<int>(Status::Internal("boom")));
  EXPECT_FALSE(bad);
  EXPECT_NE(std::string(bad.message()).find("Internal: boom"),
            std::string::npos);
}

TEST(TestUtilTest, NearRelInsideAndOutside) {
  EXPECT_TRUE(testutil::NearRel(105.0, 100.0, 0.05));
  EXPECT_TRUE(testutil::NearRel(95.0, 100.0, 0.05));
  EXPECT_FALSE(testutil::NearRel(106.0, 100.0, 0.05));
  EXPECT_FALSE(testutil::NearRel(94.0, 100.0, 0.05));
}

TEST(TestUtilTest, NearRelNegativeExpected) {
  EXPECT_TRUE(testutil::NearRel(-105.0, -100.0, 0.05));
  EXPECT_FALSE(testutil::NearRel(-106.0, -100.0, 0.05));
}

TEST(TestUtilTest, NearRelZeroExpectedRequiresExact) {
  EXPECT_TRUE(testutil::NearRel(0.0, 0.0, 0.05));
  EXPECT_FALSE(testutil::NearRel(1e-9, 0.0, 0.05));
}

TEST(TestUtilTest, MacrosStreamExtraContext) {
  // BLAZEIT_EXPECT_OK must accept trailing << context like EXPECT_TRUE.
  BLAZEIT_EXPECT_OK(Status::OK()) << "never printed";
}

}  // namespace
}  // namespace blazeit
