// The serving layer's fast-lane contract: admission control (bounded
// queue, per-client quotas -> ResourceExhausted), deterministic
// virtual-clock batching windows, zero-window pass-through that is
// bit-identical to serial Execute, parse errors landing in the response
// slot (not the Submit result), load shedding downgrading aggregates and
// scrubbing to the paper's cheap baselines with the downgrade disclosed
// in the ExecutionReport's accuracy_tier, and cross-client coalescing
// surfacing in ServerStats. Everything here avoids NN training (naive
// selections, exhaustive scans, shed baselines) so the suite stays in
// the fast lane; the bit-identity sweep across pool sizes lives in
// serve_determinism_test.cc.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/optimizer.h"
#include "obs/flight_recorder.h"
#include "serve/admission_queue.h"
#include "testing/test_util.h"
#include "util/status.h"

namespace blazeit {
namespace {

using serve::AdmissionQueue;
using serve::ServeOptions;
using serve::ServeResponse;

::testing::AssertionResult BitsEqual(double a, double b) {
  if (std::memcmp(&a, &b, sizeof(double)) == 0) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ in bits";
}

/// Cheap queries: a naive content-based selection (no applicable filters,
/// so no NN) and an exhaustive scan. Identical selections from different
/// clients share a plan group, which is what the coalescing stats watch.
const char kSelectBus[] =
    "SELECT * FROM taipei WHERE class = 'bus' AND timestamp >= 0 "
    "AND timestamp < 200";
const char kExhaustive[] =
    "SELECT timestamp FROM taipei WHERE class = 'bus' AND timestamp >= 30";
const char kAggregate[] =
    "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' "
    "ERROR WITHIN 0.1 AT CONFIDENCE 95%";
const char kScrubbing[] =
    "SELECT timestamp FROM taipei GROUP BY timestamp "
    "HAVING SUM(class='car') >= 2 LIMIT 5 GAP 50";

class ServeTest : public testutil::CatalogFixture<ServeTest> {
 public:
  static DayLengths Lengths() { return testutil::SmallDays(600, 400, 1200); }

 protected:
  static void SetUpTestSuite() {
    CatalogFixture::SetUpTestSuite();
    EngineOptions options = testutil::SmallEngineOptions();
    options.collect_reports = true;
    engine_ = new BlazeItEngine(catalog_, options);
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
    CatalogFixture::TearDownTestSuite();
  }

  static void ExpectSameOutput(const QueryOutput& served,
                               const QueryOutput& serial) {
    EXPECT_EQ(served.kind, serial.kind);
    EXPECT_EQ(served.plan, serial.plan);
    EXPECT_TRUE(BitsEqual(served.scalar, serial.scalar));
    EXPECT_EQ(served.frames, serial.frames);
    ASSERT_EQ(served.rows.size(), serial.rows.size());
    for (size_t r = 0; r < serial.rows.size(); ++r) {
      EXPECT_EQ(served.rows[r].frame, serial.rows[r].frame);
    }
    EXPECT_EQ(served.cost.detection_calls(), serial.cost.detection_calls());
    EXPECT_EQ(served.cost.specialized_nn_calls(),
              serial.cost.specialized_nn_calls());
    EXPECT_TRUE(
        BitsEqual(served.cost.TotalSeconds(), serial.cost.TotalSeconds()));
    EXPECT_EQ(served.plan_description, serial.plan_description);
  }

  static BlazeItEngine* engine_;
};

BlazeItEngine* ServeTest::engine_ = nullptr;

TEST_F(ServeTest, ZeroWindowPassThroughMatchesSerialExecute) {
  ServeOptions options;
  options.window_ticks = 0;  // every Submit executes immediately
  AdmissionQueue queue(engine_, options);

  auto ticket = queue.Submit("alice", kExhaustive);
  BLAZEIT_ASSERT_OK(ticket);
  EXPECT_EQ(queue.queue_depth(), 0);  // already executed, nothing pending

  std::vector<ServeResponse> completed = queue.TakeCompleted();
  ASSERT_EQ(completed.size(), 1u);
  const ServeResponse& resp = completed[0];
  EXPECT_EQ(resp.ticket, ticket.value());
  EXPECT_EQ(resp.client, "alice");
  EXPECT_FALSE(resp.degraded);
  BLAZEIT_ASSERT_OK(resp.output);

  auto serial = engine_->Execute(kExhaustive);
  BLAZEIT_ASSERT_OK(serial);
  ExpectSameOutput(resp.output.value(), serial.value());
  // TakeCompleted moves responses out; a second take is empty.
  EXPECT_TRUE(queue.TakeCompleted().empty());
}

TEST_F(ServeTest, WindowHoldsQueriesUntilClockAdvances) {
  ServeOptions options;
  options.window_ticks = 2;
  AdmissionQueue queue(engine_, options);

  BLAZEIT_ASSERT_OK(queue.Submit("alice", kExhaustive));
  BLAZEIT_ASSERT_OK(queue.Submit("bob", kSelectBus));
  EXPECT_EQ(queue.queue_depth(), 2);
  EXPECT_TRUE(queue.TakeCompleted().empty());

  queue.Advance();  // tick 1 of 2: window still open
  EXPECT_EQ(queue.queue_depth(), 2);
  queue.Advance();  // tick 2 closes the window and runs the batch
  EXPECT_EQ(queue.queue_depth(), 0);

  std::vector<ServeResponse> completed = queue.TakeCompleted();
  ASSERT_EQ(completed.size(), 2u);
  for (const ServeResponse& resp : completed) {
    BLAZEIT_EXPECT_OK(resp.output);
    EXPECT_EQ(resp.admitted_tick, 0);
    EXPECT_EQ(resp.executed_tick, 2);
  }
  EXPECT_EQ(queue.stats().batches, 1);
  EXPECT_EQ(queue.stats().submitted, 2);
}

TEST_F(ServeTest, PerClientQuotaExhaustionIsResourceExhausted) {
  ServeOptions options;
  options.window_ticks = 100;  // hold everything pending
  options.per_client_quota = 1;
  AdmissionQueue queue(engine_, options);

  BLAZEIT_ASSERT_OK(queue.Submit("alice", kExhaustive));
  auto over = queue.Submit("alice", kExhaustive);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kResourceExhausted);
  // The quota is per client: another client still gets in.
  BLAZEIT_ASSERT_OK(queue.Submit("bob", kExhaustive));
  EXPECT_EQ(queue.stats().rejected_quota, 1);
  EXPECT_EQ(queue.stats().submitted, 2);

  // Draining frees the quota: the same client can submit again.
  queue.Drain();
  BLAZEIT_ASSERT_OK(queue.Submit("alice", kExhaustive));
  queue.Drain();
  EXPECT_EQ(queue.TakeCompleted().size(), 3u);
}

TEST_F(ServeTest, FullQueueRejectsWithResourceExhausted) {
  ServeOptions options;
  options.window_ticks = 100;
  options.max_queue_depth = 1;
  AdmissionQueue queue(engine_, options);

  BLAZEIT_ASSERT_OK(queue.Submit("alice", kExhaustive));
  auto over = queue.Submit("bob", kExhaustive);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(queue.stats().rejected_queue_full, 1);
  queue.Drain();
}

TEST_F(ServeTest, ParseErrorLandsInResponseNotSubmit) {
  AdmissionQueue queue(engine_);
  auto ticket = queue.Submit("alice", "SELEC oops");
  BLAZEIT_ASSERT_OK(ticket);  // admission succeeds; the *query* failed
  queue.Drain();

  std::vector<ServeResponse> completed = queue.TakeCompleted();
  ASSERT_EQ(completed.size(), 1u);
  ASSERT_FALSE(completed[0].output.ok());
  // Same error, same place, as serial Execute.
  auto serial = engine_->Execute("SELEC oops");
  ASSERT_FALSE(serial.ok());
  EXPECT_EQ(completed[0].output.status(), serial.status());
}

TEST_F(ServeTest, ShedAggregateDowngradesToSamplingEstimator) {
  ServeOptions options;
  options.window_ticks = 100;
  options.shed_depth = 0;  // everything admitted under pressure
  AdmissionQueue queue(engine_, options);

  BLAZEIT_ASSERT_OK(queue.Submit("alice", kAggregate));
  queue.Drain();

  std::vector<ServeResponse> completed = queue.TakeCompleted();
  ASSERT_EQ(completed.size(), 1u);
  const ServeResponse& resp = completed[0];
  EXPECT_TRUE(resp.degraded);
  BLAZEIT_ASSERT_OK(resp.output);
  const QueryOutput& out = resp.output.value();
  EXPECT_EQ(out.plan, PlanKind::kAqpAggregation);
  EXPECT_GT(out.scalar, 0.0);
  // No NN was trained or swept on the shed path.
  EXPECT_EQ(out.cost.specialized_nn_calls(), 0);
  EXPECT_EQ(out.cost.training_frames(), 0);
  ASSERT_NE(out.report, nullptr);
  EXPECT_EQ(out.report->accuracy_tier, "degraded-sampling");
  EXPECT_NE(out.report->ToJson().find("\"accuracy_tier\":\"degraded-sampling\""),
            std::string::npos);
  EXPECT_EQ(queue.stats().shed, 1);
}

TEST_F(ServeTest, ShedScrubbingDowngradesToSketchOnlyScan) {
  ServeOptions options;
  options.window_ticks = 100;
  options.shed_depth = 0;
  AdmissionQueue queue(engine_, options);

  BLAZEIT_ASSERT_OK(queue.Submit("alice", kScrubbing));
  queue.Drain();

  std::vector<ServeResponse> completed = queue.TakeCompleted();
  ASSERT_EQ(completed.size(), 1u);
  const ServeResponse& resp = completed[0];
  EXPECT_TRUE(resp.degraded);
  BLAZEIT_ASSERT_OK(resp.output);
  const QueryOutput& out = resp.output.value();
  EXPECT_EQ(out.plan, PlanKind::kScanScrubbing);
  EXPECT_LE(out.frames.size(), 5u);  // LIMIT respected
  for (size_t i = 1; i < out.frames.size(); ++i) {
    EXPECT_GE(out.frames[i] - out.frames[i - 1], 50);  // GAP respected
  }
  EXPECT_EQ(out.cost.specialized_nn_calls(), 0);
  ASSERT_NE(out.report, nullptr);
  EXPECT_EQ(out.report->accuracy_tier, "degraded-scan");
}

TEST_F(ServeTest, ShedLeavesUnsheddableKindsOnFullPlan) {
  ServeOptions options;
  options.window_ticks = 100;
  options.shed_depth = 0;
  AdmissionQueue queue(engine_, options);

  // Exhaustive scans have no cheaper baseline; they run the full plan
  // even under shedding pressure, bit-identical to serial.
  BLAZEIT_ASSERT_OK(queue.Submit("alice", kExhaustive));
  queue.Drain();
  std::vector<ServeResponse> completed = queue.TakeCompleted();
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_FALSE(completed[0].degraded);
  BLAZEIT_ASSERT_OK(completed[0].output);
  auto serial = engine_->Execute(kExhaustive);
  BLAZEIT_ASSERT_OK(serial);
  ExpectSameOutput(completed[0].output.value(), serial.value());
  ASSERT_NE(completed[0].output.value().report, nullptr);
  EXPECT_EQ(completed[0].output.value().report->accuracy_tier, "full");
  EXPECT_EQ(queue.stats().shed, 0);
}

TEST_F(ServeTest, CrossClientCoalescingSurfacesInStats) {
  ServeOptions options;
  options.window_ticks = 100;
  AdmissionQueue queue(engine_, options);

  // The same selection from two clients lands in one shared-plan group;
  // a third, different query gets its own.
  BLAZEIT_ASSERT_OK(queue.Submit("alice", kSelectBus));
  BLAZEIT_ASSERT_OK(queue.Submit("bob", kSelectBus));
  BLAZEIT_ASSERT_OK(queue.Submit("carol", kExhaustive));
  queue.Drain();

  std::vector<ServeResponse> completed = queue.TakeCompleted();
  ASSERT_EQ(completed.size(), 3u);
  for (const ServeResponse& resp : completed) BLAZEIT_EXPECT_OK(resp.output);
  const serve::ServerStats stats = queue.stats();
  EXPECT_EQ(stats.batches, 1);
  EXPECT_EQ(stats.groups, 2);
  EXPECT_EQ(stats.coalesced_queries, 2);
  EXPECT_EQ(stats.cross_client_groups, 1);
  EXPECT_GE(stats.standalone_seconds, stats.batch_seconds);
}

TEST_F(ServeTest, TicketsAreMonotonicAndResponsesCarryMetadata) {
  ServeOptions options;
  options.window_ticks = 1;
  AdmissionQueue queue(engine_, options);

  auto t0 = queue.Submit("alice", kExhaustive);
  auto t1 = queue.Submit("bob", kSelectBus);
  BLAZEIT_ASSERT_OK(t0);
  BLAZEIT_ASSERT_OK(t1);
  EXPECT_LT(t0.value(), t1.value());
  queue.Advance();

  std::vector<ServeResponse> completed = queue.TakeCompleted();
  ASSERT_EQ(completed.size(), 2u);
  for (const ServeResponse& resp : completed) {
    if (resp.ticket == t0.value()) {
      EXPECT_EQ(resp.client, "alice");
      EXPECT_EQ(resp.frameql, kExhaustive);
    } else {
      EXPECT_EQ(resp.ticket, t1.value());
      EXPECT_EQ(resp.client, "bob");
      EXPECT_EQ(resp.frameql, kSelectBus);
    }
  }
}

TEST_F(ServeTest, CancelWithdrawsPendingQueryAndFreesQuota) {
  ServeOptions options;
  options.window_ticks = 100;  // hold everything pending
  options.per_client_quota = 1;
  AdmissionQueue queue(engine_, options);

  auto ticket = queue.Submit("alice", kExhaustive);
  BLAZEIT_ASSERT_OK(ticket);
  EXPECT_EQ(queue.queue_depth(), 1);

  BLAZEIT_EXPECT_OK(queue.Cancel(ticket.value()));
  EXPECT_EQ(queue.queue_depth(), 0);

  // The cancelled ticket still produces exactly one response, carrying
  // Cancelled in its output slot.
  std::vector<ServeResponse> completed = queue.TakeCompleted();
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_EQ(completed[0].ticket, ticket.value());
  EXPECT_EQ(completed[0].client, "alice");
  ASSERT_FALSE(completed[0].output.ok());
  EXPECT_EQ(completed[0].output.status().code(), StatusCode::kCancelled);

  // The quota slot freed immediately: the same client gets in again
  // without a drain.
  BLAZEIT_ASSERT_OK(queue.Submit("alice", kExhaustive));
  EXPECT_EQ(queue.stats().cancelled, 1);

  // Cancelling the same ticket twice (or an unknown one) is NotFound.
  EXPECT_EQ(queue.Cancel(ticket.value()).code(), StatusCode::kNotFound);
  EXPECT_EQ(queue.Cancel(123456).code(), StatusCode::kNotFound);
  queue.Drain();
}

TEST_F(ServeTest, CancelAfterWindowCutIsNotFound) {
  ServeOptions options;
  options.window_ticks = 1;
  AdmissionQueue queue(engine_, options);

  auto ticket = queue.Submit("alice", kExhaustive);
  BLAZEIT_ASSERT_OK(ticket);
  queue.Advance();  // window cuts; the query executes

  // Execution is never interrupted: once cut, Cancel refuses.
  EXPECT_EQ(queue.Cancel(ticket.value()).code(), StatusCode::kNotFound);
  std::vector<ServeResponse> completed = queue.TakeCompleted();
  ASSERT_EQ(completed.size(), 1u);
  BLAZEIT_EXPECT_OK(completed[0].output);
  EXPECT_EQ(queue.stats().cancelled, 0);
}

TEST_F(ServeTest, CancelledQueriesNeverExecute) {
  ServeOptions options;
  options.window_ticks = 100;
  AdmissionQueue queue(engine_, options);

  auto keep = queue.Submit("alice", kExhaustive);
  auto drop = queue.Submit("bob", kSelectBus);
  BLAZEIT_ASSERT_OK(keep);
  BLAZEIT_ASSERT_OK(drop);
  BLAZEIT_EXPECT_OK(queue.Cancel(drop.value()));
  queue.Drain();

  std::vector<ServeResponse> completed = queue.TakeCompleted();
  ASSERT_EQ(completed.size(), 2u);
  for (const ServeResponse& resp : completed) {
    if (resp.ticket == keep.value()) {
      BLAZEIT_EXPECT_OK(resp.output);
    } else {
      EXPECT_EQ(resp.ticket, drop.value());
      EXPECT_EQ(resp.output.status().code(), StatusCode::kCancelled);
    }
  }
  // Only the surviving query reached the scheduler.
  EXPECT_EQ(queue.stats().batches, 1);
  EXPECT_EQ(queue.stats().coalesced_queries, 0);
}

TEST_F(ServeTest, WallClockDriverCutsWindowsWithoutManualAdvance) {
  ServeOptions options;
  options.window_ticks = 1;
  options.wall_clock_tick_ms = 5;  // timer thread drives Advance(1)
  AdmissionQueue queue(engine_, options);

  auto ticket = queue.Submit("alice", kExhaustive);
  BLAZEIT_ASSERT_OK(ticket);

  // Never call Advance/Drain: the ticker must cut the window. Generous
  // deadline so a loaded CI machine cannot flake this.
  std::vector<ServeResponse> completed;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (completed.empty() && std::chrono::steady_clock::now() < deadline) {
    completed = queue.TakeCompleted();
    if (completed.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_EQ(completed[0].ticket, ticket.value());
  BLAZEIT_EXPECT_OK(completed[0].output);
  EXPECT_GT(queue.now(), 0);  // the virtual clock really moved

  // The ticker keeps running; the response matches serial execution
  // (wall-clock mode changes *when* windows cut, never *what* runs).
  auto serial = engine_->Execute(kExhaustive);
  BLAZEIT_ASSERT_OK(serial);
  ExpectSameOutput(completed[0].output.value(), serial.value());
}

TEST_F(ServeTest, ResponsesCarryCorrelationIdsIntoFlightRecorder) {
  ServeOptions options;
  options.window_ticks = 1;
  AdmissionQueue queue(engine_, options);

  auto ticket = queue.Submit("alice", kExhaustive);
  BLAZEIT_ASSERT_OK(ticket);
  queue.Advance();

  std::vector<ServeResponse> completed = queue.TakeCompleted();
  ASSERT_EQ(completed.size(), 1u);
  const ServeResponse& resp = completed[0];
  EXPECT_GT(resp.correlation_id, 0);

  // The completion path flight-recorded the query under the same
  // correlation id, attributed to the submitting client.
  bool found = false;
  for (const obs::FlightRecord& record :
       obs::FlightRecorder::Global().Snapshot()) {
    if (record.correlation_id != resp.correlation_id) continue;
    found = true;
    EXPECT_EQ(record.client, "alice");
    EXPECT_EQ(record.query, kExhaustive);
    EXPECT_TRUE(record.ok);
    EXPECT_FALSE(record.degraded);
    EXPECT_GE(record.wall_ms, 0.0);
    break;
  }
  EXPECT_TRUE(found) << "correlation id " << resp.correlation_id
                     << " not in the flight recorder";
}

TEST_F(ServeTest, PerClientCountersTrackLifecycle) {
  ServeOptions options;
  options.window_ticks = 100;
  options.per_client_quota = 1;
  AdmissionQueue queue(engine_, options);

  BLAZEIT_ASSERT_OK(queue.Submit("alice", kExhaustive));
  EXPECT_FALSE(queue.Submit("alice", kExhaustive).ok());  // quota
  auto bob = queue.Submit("bob", kSelectBus);
  BLAZEIT_ASSERT_OK(bob);
  BLAZEIT_EXPECT_OK(queue.Cancel(bob.value()));
  queue.Drain();

  const auto counters = queue.client_counters();
  ASSERT_EQ(counters.count("alice"), 1u);
  ASSERT_EQ(counters.count("bob"), 1u);
  EXPECT_EQ(counters.at("alice").submitted, 1);
  EXPECT_EQ(counters.at("alice").rejected, 1);
  EXPECT_EQ(counters.at("alice").cancelled, 0);
  EXPECT_EQ(counters.at("bob").submitted, 1);
  EXPECT_EQ(counters.at("bob").cancelled, 1);
  queue.TakeCompleted();
}

}  // namespace
}  // namespace blazeit
