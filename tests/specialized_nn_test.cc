#include "nn/specialized_nn.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

#include <cmath>
#include <numeric>
#include <utility>

#include "core/labeled_set.h"
#include "detect/simulated_detector.h"
#include "stats/online_stats.h"
#include "video/datasets.h"
#include "video/render_features.h"

namespace blazeit {
namespace {

TEST(ChooseNumClassesTest, PaperRule) {
  // 1% of the video contains 3 cars -> 4 classes (paper's example).
  std::vector<int> counts;
  for (int i = 0; i < 97; ++i) counts.push_back(0);
  for (int i = 0; i < 2; ++i) counts.push_back(1);
  counts.push_back(3);  // exactly 1%
  EXPECT_EQ(ChooseNumClasses(counts, 0.01), 4);
}

TEST(ChooseNumClassesTest, RareTailExcluded) {
  std::vector<int> counts(1000, 0);
  counts[0] = 5;  // 0.1% of frames
  for (int i = 1; i < 200; ++i) counts[i] = 1;
  EXPECT_EQ(ChooseNumClasses(counts, 0.01), 2);  // classes {0,1}
}

TEST(ChooseNumClassesTest, EmptyAndAllZero) {
  EXPECT_EQ(ChooseNumClasses({}), 1);
  EXPECT_EQ(ChooseNumClasses(std::vector<int>(100, 0)), 1);
}

// Independent reference for the pooled-feature math: the historical
// FrameFeatures loop from nn/specialized_nn.cc as it existed before the
// fused render_features kernel replaced it. RenderFrameFeatures must match
// this bit-for-bit — cached per-frame NN artifacts were NOT epoch-bumped
// across the fusion, so the fused path inherits the old math as its spec.
std::vector<float> RefFrameFeatures(const SyntheticVideo& video,
                                    int64_t frame, int width, int height) {
  constexpr int kPool = 2;
  constexpr float kMean = 0.45f;
  constexpr float kStd = 0.22f;
  Image img = video.RenderFrame(frame, width * kPool, height * kPool);
  const double mean_r = img.MeanChannel(0);
  const double mean_g = img.MeanChannel(1);
  const double mean_b = img.MeanChannel(2);
  std::vector<float> features;
  features.reserve(static_cast<size_t>(width) * height * 4);
  for (int cy = 0; cy < height; ++cy) {
    for (int cx = 0; cx < width; ++cx) {
      double r = 0, g = 0, b = 0, dev = 0;
      for (int dy = 0; dy < kPool; ++dy) {
        for (int dx = 0; dx < kPool; ++dx) {
          int x = cx * kPool + dx;
          int y = cy * kPool + dy;
          double pr = img.At(x, y, 0);
          double pg = img.At(x, y, 1);
          double pb = img.At(x, y, 2);
          r += pr;
          g += pg;
          b += pb;
          dev += std::abs(pr - mean_r) + std::abs(pg - mean_g) +
                 std::abs(pb - mean_b);
        }
      }
      const double inv = 1.0 / (kPool * kPool);
      features.push_back(
          static_cast<float>(((static_cast<double>(r) * inv) -
                              static_cast<double>(kMean)) /
                             static_cast<double>(kStd)));
      features.push_back(
          static_cast<float>(((static_cast<double>(g) * inv) -
                              static_cast<double>(kMean)) /
                             static_cast<double>(kStd)));
      features.push_back(
          static_cast<float>(((static_cast<double>(b) * inv) -
                              static_cast<double>(kMean)) /
                             static_cast<double>(kStd)));
      features.push_back(static_cast<float>((dev * inv - 0.1) / 0.3));
    }
  }
  return features;
}

TEST(FrameFeaturesTest, FusedPathMatchesHistoricalReference) {
  // Non-square grids exercise the fused kernel's row strides; sizes whose
  // render is not a power of two pixels exercise the channel-mean
  // division.
  auto video = SyntheticVideo::Create(TaipeiConfig(), 1, 200).value();
  Image scratch;
  for (auto [w, h] : {std::pair{16, 16}, {12, 20}, {7, 3}}) {
    std::vector<float> row(static_cast<size_t>(w) * h * kFeatureChannels);
    for (int64_t frame : {0, 63, 199}) {
      std::vector<float> want = RefFrameFeatures(*video, frame, w, h);
      RenderFrameFeatures(*video, frame, w, h, row.data(), &scratch);
      ASSERT_EQ(want.size(), row.size());
      for (size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(want[i], row[i])
            << w << "x" << h << " frame " << frame << " index " << i;
      }
    }
  }
}

TEST(FrameFeaturesTest, FusedRowPathMatchesVectorPath) {
  // The batch loops render features straight into the NN input row via
  // RenderFrameFeatures with a reused scratch Image; bits must match the
  // vector-returning FrameFeatures wrapper exactly.
  auto video = SyntheticVideo::Create(TaipeiConfig(), 1, 200).value();
  Image scratch;
  std::vector<float> row(16 * 16 * kFeatureChannels);
  for (int64_t frame : {0, 7, 63, 199}) {
    std::vector<float> want = FrameFeatures(*video, frame, 16, 16);
    RenderFrameFeatures(*video, frame, 16, 16, row.data(), &scratch);
    ASSERT_EQ(want.size(), row.size());
    for (size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(want[i], row[i]) << "frame " << frame << " index " << i;
    }
  }
}

TEST(FrameFeaturesTest, SizeAndDeterminism) {
  auto video = SyntheticVideo::Create(TaipeiConfig(), 1, 100).value();
  auto a = FrameFeatures(*video, 10, 16, 16);
  auto b = FrameFeatures(*video, 10, 16, 16);
  EXPECT_EQ(a.size(), 16u * 16u * 4u);  // RGB + deviation channel per cell
  EXPECT_EQ(a, b);
  auto c = FrameFeatures(*video, 11, 16, 16);
  EXPECT_NE(a, c);
}

class SpecializedNNTest : public ::testing::Test {
 protected:
  void SetUp() override {
    video_ = SyntheticVideo::Create(TaipeiConfig(), 101, 6000).value();
    detector_ = std::make_unique<SimulatedDetector>();
    labels_ = std::make_unique<LabeledSet>(video_.get(), detector_.get(), 0.5);
  }
  SpecializedNNConfig FastConfig() {
    SpecializedNNConfig cfg;
    cfg.raster_width = 16;
    cfg.raster_height = 16;
    cfg.hidden_dims = {32};
    cfg.max_train_frames = 6000;
    return cfg;
  }
  std::unique_ptr<SyntheticVideo> video_;
  std::unique_ptr<SimulatedDetector> detector_;
  std::unique_ptr<LabeledSet> labels_;
};

TEST_F(SpecializedNNTest, TrainRejectsBadInputs) {
  EXPECT_FALSE(SpecializedNN::Train(*video_, {}, FastConfig()).ok());
  EXPECT_FALSE(SpecializedNN::Train(*video_, {{}}, FastConfig()).ok());
  // Mismatched head lengths.
  EXPECT_FALSE(
      SpecializedNN::Train(*video_, {{0, 1}, {0}}, FastConfig()).ok());
}

TEST_F(SpecializedNNTest, SingleHeadShapes) {
  auto nn =
      SpecializedNN::Train(*video_, {labels_->Counts(kCar)}, FastConfig());
  BLAZEIT_ASSERT_OK(nn);
  EXPECT_EQ(nn.value().num_heads(), 1);
  EXPECT_GE(nn.value().head_classes(0), 2);
  auto probs = nn.value().PredictProbs(*video_, 0);
  ASSERT_EQ(probs.size(), 1u);
  double sum = 0;
  for (float p : probs[0]) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-4);
}

TEST_F(SpecializedNNTest, LearnsCorrelatedCounts) {
  auto nn =
      SpecializedNN::Train(*video_, {labels_->Counts(kCar)}, FastConfig())
          .value();
  OnlineCovariance cov;
  const auto& truth = labels_->Counts(kCar);
  std::vector<int64_t> frames(3000);
  std::iota(frames.begin(), frames.end(), 0);
  auto pred = nn.ExpectedCountsForFrames(*video_, frames);
  for (size_t i = 0; i < pred.size(); ++i) cov.Add(pred[i], truth[i]);
  // Training-set correlation must be clearly positive.
  EXPECT_GT(cov.Correlation(), 0.3);
}

TEST_F(SpecializedNNTest, BatchMatchesPerFrame) {
  auto nn =
      SpecializedNN::Train(*video_, {labels_->Counts(kCar)}, FastConfig())
          .value();
  std::vector<int64_t> frames = {0, 17, 333, 999};
  auto batch = nn.ExpectedCountsForFrames(*video_, frames);
  for (size_t i = 0; i < frames.size(); ++i) {
    EXPECT_NEAR(batch[i], nn.ExpectedCount(*video_, frames[i]), 1e-4);
  }
  auto conf_batch = nn.QueryConfidencesForFrames(*video_, frames, {1});
  for (size_t i = 0; i < frames.size(); ++i) {
    EXPECT_NEAR(conf_batch[i], nn.QueryConfidence(*video_, frames[i], {1}),
                1e-4);
  }
}

TEST_F(SpecializedNNTest, MultiHeadSeparateConfidences) {
  auto nn = SpecializedNN::Train(
                *video_, {labels_->Counts(kCar), labels_->Counts(kBus)},
                FastConfig())
                .value();
  EXPECT_EQ(nn.num_heads(), 2);
  auto probs = nn.PredictProbs(*video_, 5);
  EXPECT_EQ(probs.size(), 2u);
  // Sum mode adds the per-head tails (paper's signal); bounded by #heads.
  double conf = nn.QueryConfidence(*video_, 5, {1, 1});
  EXPECT_GE(conf, 0.0);
  EXPECT_LE(conf, 2.0 + 1e-6);
}

TEST_F(SpecializedNNTest, ProductModeBoundedByOne) {
  auto nn = SpecializedNN::Train(
                *video_, {labels_->Counts(kCar), labels_->Counts(kBus)},
                FastConfig())
                .value();
  std::vector<int64_t> frames = {0, 100, 200};
  auto prod = nn.QueryConfidencesForFrames(
      *video_, frames, {1, 1}, SpecializedNN::ConjunctionMode::kProduct);
  auto sum = nn.QueryConfidencesForFrames(
      *video_, frames, {1, 1}, SpecializedNN::ConjunctionMode::kSum);
  for (size_t i = 0; i < frames.size(); ++i) {
    EXPECT_LE(prod[i], 1.0f + 1e-6);
    EXPECT_LE(prod[i], sum[i] + 1e-6);
  }
}

TEST_F(SpecializedNNTest, ExpectedCountWithinClassRange) {
  auto nn =
      SpecializedNN::Train(*video_, {labels_->Counts(kCar)}, FastConfig())
          .value();
  for (int64_t t : {0, 50, 500}) {
    double e = nn.ExpectedCount(*video_, t);
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, nn.head_classes(0) - 1.0);
  }
}

TEST_F(SpecializedNNTest, TrainedFramesAccountsEpochs) {
  SpecializedNNConfig cfg = FastConfig();
  cfg.train.epochs = 2;
  cfg.max_train_frames = 1000;
  auto nn = SpecializedNN::Train(*video_, {labels_->Counts(kCar)}, cfg);
  BLAZEIT_ASSERT_OK(nn);
  EXPECT_EQ(nn.value().trained_frames(), 2000);
}

TEST_F(SpecializedNNTest, MinClassesExpandsHead) {
  SpecializedNNConfig cfg = FastConfig();
  cfg.min_classes = 4;
  auto nn = SpecializedNN::Train(*video_, {labels_->Counts(kBus)}, cfg);
  BLAZEIT_ASSERT_OK(nn);
  // Bus counts are mostly 0/1; 1% rule would give ~2 classes, min_classes
  // raises it (capped by max observed + 1).
  EXPECT_GE(nn.value().head_classes(0), 2);
}

}  // namespace
}  // namespace blazeit
