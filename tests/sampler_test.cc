#include "stats/sampler.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

#include "util/random.h"

namespace blazeit {
namespace {

TEST(SamplerTest, ValidatesConfig) {
  SamplingConfig bad;
  bad.error = 0;
  EXPECT_FALSE(ValidateSamplingConfig(bad).ok());
  bad = SamplingConfig();
  bad.confidence = 1.0;
  EXPECT_FALSE(ValidateSamplingConfig(bad).ok());
  bad = SamplingConfig();
  bad.value_range = -1;
  EXPECT_FALSE(ValidateSamplingConfig(bad).ok());
  BLAZEIT_EXPECT_OK(ValidateSamplingConfig(SamplingConfig()));
}

TEST(SamplerTest, ConstantOracleTerminatesAtMinimum) {
  SamplingConfig cfg;
  cfg.error = 0.1;
  cfg.value_range = 2.0;
  auto r = AdaptiveSample(100000, [](int64_t) { return 1.0; }, cfg);
  BLAZEIT_ASSERT_OK(r);
  EXPECT_DOUBLE_EQ(r.value().estimate, 1.0);
  // Zero variance: stops right at the K/eps epsilon-net floor.
  EXPECT_EQ(r.value().samples_used, 20);
}

TEST(SamplerTest, EstimateWithinErrorAtConfidence) {
  // Property test over seeds: failures allowed at ~5%, test at 20/20 with
  // slack to avoid flakes.
  Rng truth_rng(3);
  const int64_t n = 50000;
  std::vector<double> values(n);
  double mean = 0;
  for (auto& v : values) {
    v = truth_rng.Poisson(0.8);
    mean += v;
  }
  mean /= n;
  int within = 0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    SamplingConfig cfg;
    cfg.error = 0.1;
    cfg.value_range = 6;
    cfg.seed = seed;
    auto r = AdaptiveSample(
        n, [&](int64_t f) { return values[static_cast<size_t>(f)]; }, cfg);
    BLAZEIT_ASSERT_OK(r);
    if (std::abs(r.value().estimate - mean) < 0.1) ++within;
  }
  EXPECT_GE(within, 18);
}

TEST(SamplerTest, TighterErrorNeedsMoreSamples) {
  Rng truth_rng(4);
  const int64_t n = 100000;
  std::vector<double> values(n);
  for (auto& v : values) v = truth_rng.Poisson(1.0);
  int64_t loose = 0, tight = 0;
  SamplingConfig cfg;
  cfg.value_range = 8;
  cfg.error = 0.1;
  loose = AdaptiveSample(
              n, [&](int64_t f) { return values[static_cast<size_t>(f)]; },
              cfg)
              .value()
              .samples_used;
  cfg.error = 0.02;
  tight = AdaptiveSample(
              n, [&](int64_t f) { return values[static_cast<size_t>(f)]; },
              cfg)
              .value()
              .samples_used;
  EXPECT_GT(tight, loose * 4);
}

TEST(SamplerTest, ExhaustsSmallPopulation) {
  SamplingConfig cfg;
  cfg.error = 0.001;
  cfg.value_range = 10;
  Rng rng(5);
  auto r = AdaptiveSample(50, [&](int64_t) { return rng.Normal(0, 5); }, cfg);
  BLAZEIT_ASSERT_OK(r);
  EXPECT_TRUE(r.value().exhausted);
  EXPECT_EQ(r.value().samples_used, 50);
}

TEST(SamplerTest, ExhaustiveSampleIsExact) {
  // With the finite-population correction, consuming the whole population
  // must recover the exact mean.
  std::vector<double> values = {1, 2, 3, 4, 5};
  SamplingConfig cfg;
  cfg.error = 0.0001;
  cfg.value_range = 6;
  auto r = AdaptiveSample(
      5, [&](int64_t f) { return values[static_cast<size_t>(f)]; }, cfg);
  BLAZEIT_ASSERT_OK(r);
  EXPECT_DOUBLE_EQ(r.value().estimate, 3.0);
}

TEST(SamplerTest, InvalidPopulation) {
  SamplingConfig cfg;
  EXPECT_FALSE(AdaptiveSample(0, [](int64_t) { return 0.0; }, cfg).ok());
}

class SamplerSweep : public ::testing::TestWithParam<double> {};

TEST_P(SamplerSweep, RespectsErrorTargetOnPoissonStream) {
  const double target = GetParam();
  Rng truth_rng(11);
  const int64_t n = 60000;
  std::vector<double> values(n);
  double mean = 0;
  for (auto& v : values) {
    v = truth_rng.Poisson(1.2);
    mean += v;
  }
  mean /= n;
  SamplingConfig cfg;
  cfg.error = target;
  cfg.value_range = 8;
  cfg.confidence = 0.95;
  cfg.seed = 77;
  auto r = AdaptiveSample(
      n, [&](int64_t f) { return values[static_cast<size_t>(f)]; }, cfg);
  BLAZEIT_ASSERT_OK(r);
  // Allow 2x slack: a single run at 95% confidence.
  EXPECT_LT(std::abs(r.value().estimate - mean), 2 * target);
}

INSTANTIATE_TEST_SUITE_P(ErrorTargets, SamplerSweep,
                         ::testing::Values(0.02, 0.05, 0.1, 0.2));

}  // namespace
}  // namespace blazeit
