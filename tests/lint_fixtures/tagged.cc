// lint-fixture-path: src/fixture/tagged.cc
// Fixture for ci/lint.py --self-test: escape-hatch tags suppress findings
// (and stay visible to reviewers on the offending line).

#include <mutex>  // lint:allow-raw-mutex interop shim for a vendored API lint-expect: none

namespace fixture {

void Legacy() {
  // Vendored PRNG comparison path, never feeds query outputs:
  int r = rand();  // lint:allow-rand baseline comparison only lint-expect: none
  (void)r;
  long t = time(nullptr);  // lint:allow-wallclock log timestamp lint-expect: none
  (void)t;
  assert(t >= 0);  // lint:allow-bare-assert third-party macro shim lint-expect: none
}

}  // namespace fixture
