// lint-fixture-path: src/fixture/violations.h
// Fixture for ci/lint.py --self-test: every rule fires at least once.
// The `lint-expect:` markers are consumed by the self-test harness; this
// file is excluded from the real lint run and never compiled.
// lint-expect-file: include-guard
#ifndef WRONG_GUARD_H_
#define WRONG_GUARD_H_

#include <cassert>
#include <mutex>

namespace fixture {

class Bad {
 public:
  void Check(int x) {
    assert(x > 0);  // lint-expect: bare-assert
    static_assert(sizeof(int) == 4, "ok");  // lint-expect: none
  }

  int Draw() {
    return rand();  // lint-expect: rand
  }

  long Now() {
    return time(nullptr);  // lint-expect: wallclock
  }

  long NowChrono();  // defined elsewhere using
  // std::chrono::system_clock::now() is fine in a comment  lint-expect: none

  void TouchLocked();  // lint-expect: locked-requires

 private:
  std::mutex mu_;  // lint-expect: raw-mutex
  int guarded_ = 0;
};

}  // namespace fixture

#endif  // WRONG_GUARD_H_
