// lint-fixture-path: src/fixture/clean.h
// Fixture for ci/lint.py --self-test: idiomatic code produces no findings.
#ifndef BLAZEIT_FIXTURE_CLEAN_H_
#define BLAZEIT_FIXTURE_CLEAN_H_

#include "util/check.h"
#include "util/mutex.h"

namespace fixture {

class Good {
 public:
  void Check(int x) {
    BLAZEIT_CHECK(x > 0) << "x must be positive";  // lint-expect: none
    BLAZEIT_DCHECK(x < 100);                       // lint-expect: none
  }

  void Touch() BLAZEIT_EXCLUDES(mu_) {
    blazeit::util::MutexLock lock(mu_);  // lint-expect: none
    TouchLocked();
  }

  // Annotated lock contract: the rule accepts the declaration.
  void TouchLocked() BLAZEIT_REQUIRES(mu_);  // lint-expect: none

  // Annotation on the continuation line also counts.
  void RebuildEverythingFromGroundTruthLocked(int which)
      BLAZEIT_REQUIRES(mu_);  // lint-expect: none

  // Tagged escape hatch: construction-time helper, no mutex exists yet.
  void InitLocked();  // lint:allow-unannotated-locked ctor-only lint-expect: none

 private:
  blazeit::util::Mutex mu_;
  int guarded_ BLAZEIT_GUARDED_BY(mu_) = 0;
};

/// The string "assert(" inside a literal is not a finding.
inline const char* Describe() {
  return "call assert( nothing )";  // lint-expect: none
}

}  // namespace fixture

#endif  // BLAZEIT_FIXTURE_CLEAN_H_
