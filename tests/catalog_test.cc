#include "core/catalog.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace blazeit {
namespace {

DayLengths ShortDays() { return testutil::SmallDays(2000, 2000, 3000); }

TEST(CatalogTest, AddAndGet) {
  VideoCatalog catalog;
  BLAZEIT_ASSERT_OK(catalog.AddStream(TaipeiConfig(), ShortDays()));
  EXPECT_TRUE(catalog.Contains("taipei"));
  auto stream = catalog.GetStream("taipei");
  BLAZEIT_ASSERT_OK(stream);
  EXPECT_EQ(stream.value()->train_day->num_frames(), 2000);
  EXPECT_EQ(stream.value()->test_day->num_frames(), 3000);
  EXPECT_EQ(stream.value()->config.name, "taipei");
}

TEST(CatalogTest, DuplicateRejected) {
  VideoCatalog catalog;
  BLAZEIT_ASSERT_OK(catalog.AddStream(TaipeiConfig(), ShortDays()));
  EXPECT_FALSE(catalog.AddStream(TaipeiConfig(), ShortDays()).ok());
}

TEST(CatalogTest, UnknownStreamNotFound) {
  VideoCatalog catalog;
  auto r = catalog.GetStream("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(CatalogTest, InvalidConfigRejected) {
  VideoCatalog catalog;
  StreamConfig bad = TaipeiConfig();
  bad.classes.clear();
  EXPECT_FALSE(catalog.AddStream(bad, ShortDays()).ok());
}

TEST(CatalogTest, DaysAreIndependent) {
  VideoCatalog catalog;
  BLAZEIT_ASSERT_OK(catalog.AddStream(TaipeiConfig(), ShortDays()));
  StreamData* s = catalog.GetStream("taipei").value();
  // Different seeds -> different instance realizations.
  EXPECT_NE(s->train_day->DistinctTracks(kCar),
            s->test_day->DistinctTracks(kCar));
  EXPECT_EQ(s->train_day->seed(), kTrainDaySeed);
  EXPECT_EQ(s->test_day->seed(), kTestDaySeed);
}

TEST(CatalogTest, StreamNamesSorted) {
  VideoCatalog catalog;
  BLAZEIT_ASSERT_OK(catalog.AddStream(TaipeiConfig(), ShortDays()));
  BLAZEIT_ASSERT_OK(catalog.AddStream(RialtoConfig(), ShortDays()));
  auto names = catalog.StreamNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "rialto");
  EXPECT_EQ(names[1], "taipei");
}

TEST(LabeledSetTest, CountsMatchDetections) {
  VideoCatalog catalog;
  BLAZEIT_ASSERT_OK(catalog.AddStream(TaipeiConfig(), ShortDays()));
  StreamData* s = catalog.GetStream("taipei").value();
  const auto& counts = s->test_labels->Counts(kCar);
  ASSERT_EQ(counts.size(), 3000u);
  for (int64_t t = 0; t < 3000; t += 211) {
    auto dets = s->test_labels->DetectionsAt(t);
    EXPECT_EQ(counts[static_cast<size_t>(t)], CountClass(dets, kCar, 0.0));
    for (const auto& d : dets) EXPECT_GE(d.score, s->score_threshold());
  }
}

TEST(LabeledSetTest, OccupancyNearConfig) {
  VideoCatalog catalog;
  DayLengths lengths;
  lengths.train = 2000;
  lengths.held_out = 2000;
  lengths.test = 20000;
  BLAZEIT_ASSERT_OK(catalog.AddStream(TaipeiConfig(), lengths));
  StreamData* s = catalog.GetStream("taipei").value();
  // Detector misses some small objects, so measured occupancy sits a bit
  // below the scene-level target.
  double occ = s->test_labels->Occupancy(kCar);
  EXPECT_GT(occ, 0.45);
  EXPECT_LT(occ, 0.75);
}

TEST(LabeledSetTest, MaxCountPositive) {
  VideoCatalog catalog;
  BLAZEIT_ASSERT_OK(catalog.AddStream(TaipeiConfig(), ShortDays()));
  StreamData* s = catalog.GetStream("taipei").value();
  EXPECT_GE(s->train_labels->MaxCount(kCar), 1);
  EXPECT_EQ(s->train_labels->MaxCount(kBird), 0);
}

}  // namespace
}  // namespace blazeit
