// The exec runtime's headline contract, asserted end to end: query
// outputs are *byte-identical* at every thread count. Aggregation,
// selection, and scrubbing queries run under BLAZEIT_THREADS-equivalent
// pool sizes 1 (pool disabled), 2, and 8, and every answer, sample count,
// matched frame, detection row, and simulated cost must match the serial
// run bit for bit — which is also why the parallel runtime needs no
// kDerivedArtifactEpoch bump: cached artifacts are unchanged.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/engine.h"
#include "exec/thread_pool.h"
#include "testing/test_util.h"

namespace blazeit {
namespace {

/// Exact bit equality for doubles (EXPECT_EQ would treat -0.0 == 0.0 and
/// NaN != NaN; the contract here is stronger: same bytes).
::testing::AssertionResult BitsEqual(double a, double b) {
  if (std::memcmp(&a, &b, sizeof(double)) == 0) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ in bits";
}

class ParallelDeterminismTest
    : public testutil::CatalogFixture<ParallelDeterminismTest> {
 public:
  static DayLengths Lengths() { return testutil::SmallDays(3000, 3000, 6000); }

 protected:
  static void SetUpTestSuite() {
    CatalogFixture::SetUpTestSuite();
    engine_ = new BlazeItEngine(catalog_, testutil::SmallEngineOptions());
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
    CatalogFixture::TearDownTestSuite();
  }
  void TearDown() override {
    exec::ThreadPool::Instance().Reconfigure(
        exec::ThreadPool::ThreadsFromEnv());
  }

  /// Runs the query once per pool size and asserts byte-identical outputs.
  void ExpectDeterministic(const std::string& frameql) {
    struct Captured {
      int threads;
      QueryOutput out;
    };
    std::vector<Captured> runs;
    for (int threads : {1, 2, 8}) {
      exec::ThreadPool::Instance().Reconfigure(threads);
      auto out = engine_->Execute(frameql);
      BLAZEIT_ASSERT_OK(out);
      runs.push_back({threads, std::move(out).value()});
    }
    const QueryOutput& serial = runs.front().out;
    for (size_t i = 1; i < runs.size(); ++i) {
      const QueryOutput& parallel = runs[i].out;
      SCOPED_TRACE("threads=" + std::to_string(runs[i].threads) + " vs 1");
      EXPECT_EQ(parallel.kind, serial.kind);
      EXPECT_EQ(parallel.plan, serial.plan);
      EXPECT_TRUE(BitsEqual(parallel.scalar, serial.scalar));
      // Matched frames: same frames, same order.
      EXPECT_EQ(parallel.frames, serial.frames);
      // Selection rows: same detections in the same order.
      ASSERT_EQ(parallel.rows.size(), serial.rows.size());
      for (size_t r = 0; r < serial.rows.size(); ++r) {
        EXPECT_EQ(parallel.rows[r].frame, serial.rows[r].frame);
        EXPECT_EQ(parallel.rows[r].detection.class_id,
                  serial.rows[r].detection.class_id);
        EXPECT_TRUE(BitsEqual(parallel.rows[r].detection.score,
                              serial.rows[r].detection.score));
        EXPECT_EQ(parallel.rows[r].detection.features,
                  serial.rows[r].detection.features);
      }
      // Simulated costs: same logical work was charged, to the bit.
      EXPECT_EQ(parallel.cost.detection_calls(), serial.cost.detection_calls());
      EXPECT_EQ(parallel.cost.specialized_nn_calls(),
                serial.cost.specialized_nn_calls());
      EXPECT_EQ(parallel.cost.filter_calls(), serial.cost.filter_calls());
      EXPECT_EQ(parallel.cost.training_frames(), serial.cost.training_frames());
      EXPECT_TRUE(
          BitsEqual(parallel.cost.TotalSeconds(), serial.cost.TotalSeconds()));
      EXPECT_TRUE(
          BitsEqual(parallel.cost.QuerySeconds(), serial.cost.QuerySeconds()));
      EXPECT_EQ(parallel.plan_description, serial.plan_description);
    }
  }

  static BlazeItEngine* engine_;
};

BlazeItEngine* ParallelDeterminismTest::engine_ = nullptr;

TEST_F(ParallelDeterminismTest, AggregationQuery) {
  ExpectDeterministic(
      "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' "
      "ERROR WITHIN 0.1 AT CONFIDENCE 95%");
}

TEST_F(ParallelDeterminismTest, SelectionQuery) {
  ExpectDeterministic(
      "SELECT * FROM taipei WHERE class = 'bus' "
      "AND redness(content) >= 0.25 AND area(mask) > 20000 "
      "GROUP BY trackid HAVING COUNT(*) > 15");
}

TEST_F(ParallelDeterminismTest, ScrubbingQuery) {
  ExpectDeterministic(
      "SELECT timestamp FROM taipei GROUP BY timestamp "
      "HAVING SUM(class='car') >= 2 LIMIT 5 GAP 50");
}

TEST_F(ParallelDeterminismTest, ScrubbingQueryWithCrossShardGap) {
  // GAP 300 exceeds the exec runtime's shard size (kDefaultShardSize =
  // 256), so a gap interval around an accepted frame always spans shard
  // boundaries of the parallel NN sweep. Gap admissibility is enforced in
  // the serial verification walk, not per shard — this pins that the
  // returned frames (and their order, and the charged costs) do not vary
  // with the pool size that computed the confidence sweep.
  ExpectDeterministic(
      "SELECT timestamp FROM taipei GROUP BY timestamp "
      "HAVING SUM(class='car') >= 2 LIMIT 8 GAP 300");
}

TEST_F(ParallelDeterminismTest, BinarySelectQuery) {
  ExpectDeterministic(
      "SELECT timestamp FROM taipei WHERE class = 'bus' "
      "FNR WITHIN 0.01 FPR WITHIN 0.01");
}

}  // namespace
}  // namespace blazeit
