// End-to-end guard for the persistent detection store: executing the same
// FrameQL queries (a) without a store, (b) with a cold store being
// populated, and (c) with the warm store from (b) must produce
// bit-identical query outputs and bit-identical simulated costs. The store
// may only ever change harness wall-clock — the paper's runtime
// methodology charges per logical detector/NN call, replayed or not.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/engine.h"
#include "testing/test_util.h"

namespace blazeit {
namespace {

namespace fs = std::filesystem;

const char* const kQueries[] = {
    // Aggregation with a specialized-NN plan (trains, bootstraps,
    // evaluates the NN over held-out and test days, then samples).
    "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' "
    "ERROR WITHIN 0.1 AT CONFIDENCE 95%",
    // Importance-sampled scrubbing (multi-head NN + detector verification).
    "SELECT timestamp FROM taipei GROUP BY timestamp "
    "HAVING SUM(class='car') >= 2 LIMIT 3 GAP 50",
    // Content-based selection with a built-in UDF predicate: exercises the
    // persisted content-filter score path (calibration + test-day scan)
    // and produces rows whose contents must replay bit-exactly.
    "SELECT * FROM taipei WHERE class = 'bus' AND redness(content) >= 0.1 "
    "GROUP BY trackid HAVING COUNT(*) > 5",
};

class StoreInvarianceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) / "blazeit-invariance-store")
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Runs all queries against a fresh catalog; `store_dir` empty = no
  /// persistence.
  std::vector<QueryOutput> RunAll(const std::string& store_dir) {
    VideoCatalog catalog;
    if (!store_dir.empty()) {
      EXPECT_TRUE(
          testutil::IsOk(catalog.EnableDetectionStore(store_dir)));
    }
    EXPECT_TRUE(testutil::IsOk(catalog.AddStream(
        TaipeiConfig(), testutil::SmallDays(2000, 2000, 4000))));
    BlazeItEngine engine(&catalog, testutil::SmallEngineOptions());
    std::vector<QueryOutput> outputs;
    for (const char* query : kQueries) {
      auto out = engine.Execute(query);
      EXPECT_TRUE(testutil::IsOk(out)) << query;
      outputs.push_back(std::move(out).value());
    }
    return outputs;
  }

  static void ExpectIdentical(const QueryOutput& a, const QueryOutput& b,
                              const char* query) {
    SCOPED_TRACE(query);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.plan, b.plan);
    EXPECT_EQ(a.plan_description, b.plan_description);
    // Bit-identical estimates and result sets, not merely close ones.
    EXPECT_EQ(a.scalar, b.scalar);
    EXPECT_EQ(a.frames, b.frames);
    ASSERT_EQ(a.rows.size(), b.rows.size());
    for (size_t i = 0; i < a.rows.size(); ++i) {
      EXPECT_EQ(a.rows[i].frame, b.rows[i].frame);
      EXPECT_EQ(a.rows[i].detection.class_id, b.rows[i].detection.class_id);
      EXPECT_EQ(a.rows[i].detection.rect, b.rows[i].detection.rect);
      EXPECT_EQ(a.rows[i].detection.score, b.rows[i].detection.score);
      EXPECT_EQ(a.rows[i].detection.features, b.rows[i].detection.features);
    }
    // Bit-identical simulated cost in every category.
    EXPECT_EQ(a.cost.detection_calls(), b.cost.detection_calls());
    EXPECT_EQ(a.cost.specialized_nn_calls(), b.cost.specialized_nn_calls());
    EXPECT_EQ(a.cost.filter_calls(), b.cost.filter_calls());
    EXPECT_EQ(a.cost.training_frames(), b.cost.training_frames());
    EXPECT_EQ(a.cost.detection_seconds(), b.cost.detection_seconds());
    EXPECT_EQ(a.cost.specialized_nn_seconds(),
              b.cost.specialized_nn_seconds());
    EXPECT_EQ(a.cost.training_seconds(), b.cost.training_seconds());
    EXPECT_EQ(a.cost.thresholding_seconds(), b.cost.thresholding_seconds());
    EXPECT_EQ(a.cost.TotalSeconds(), b.cost.TotalSeconds());
    EXPECT_EQ(a.cost.QuerySeconds(), b.cost.QuerySeconds());
  }

  std::string dir_;
};

TEST_F(StoreInvarianceTest, ColdStoreAndWarmStoreMatchStoreless) {
  std::vector<QueryOutput> storeless = RunAll("");
  std::vector<QueryOutput> cold = RunAll(dir_);

  // The cold pass persisted segments when its catalog was destroyed.
  size_t segments = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() == ".seg") ++segments;
  }
  EXPECT_GT(segments, 0u);

  // This pass replays them (and a reopened catalog sees the records).
  std::vector<QueryOutput> warm = RunAll(dir_);
  {
    VideoCatalog catalog;
    BLAZEIT_ASSERT_OK(catalog.EnableDetectionStore(dir_));
    EXPECT_GT(catalog.detection_store()->TotalRecords(), 0);
  }

  ASSERT_EQ(storeless.size(), std::size(kQueries));
  for (size_t i = 0; i < storeless.size(); ++i) {
    ExpectIdentical(storeless[i], cold[i], kQueries[i]);
    ExpectIdentical(storeless[i], warm[i], kQueries[i]);
  }

  // Building segment sketches is store maintenance, not a semantic
  // change: with sketches present but use_store_index left off (the
  // default), a rerun stays bit-identical to the storeless pass —
  // including every cost category. (Opting in may only lower costs;
  // sketch_invariance_test covers that contract.)
  {
    VideoCatalog catalog;
    BLAZEIT_ASSERT_OK(catalog.EnableDetectionStore(dir_));
    BLAZEIT_ASSERT_OK(catalog.AddStream(
        TaipeiConfig(), testutil::SmallDays(2000, 2000, 4000)));
    StreamData* stream = catalog.GetStream("taipei").value();
    BLAZEIT_ASSERT_OK(
        stream->detection_store->BuildSketches(stream->test_detections_ns));
  }
  std::vector<QueryOutput> sketched = RunAll(dir_);
  for (size_t i = 0; i < storeless.size(); ++i) {
    ExpectIdentical(storeless[i], sketched[i], kQueries[i]);
  }
}

}  // namespace
}  // namespace blazeit
