#include <gtest/gtest.h>

#include <mutex>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace blazeit {
namespace {

TEST(RngTest, Mt19937FirstDrawMatchesStdEngine) {
  // The renderer relies on Mt19937_64FirstDraw reproducing the first
  // output of a freshly seeded std::mt19937_64 exactly (it replaced a
  // per-frame engine construction on the hot path).
  for (uint64_t seed :
       {0ULL, 1ULL, 42ULL, 0xdeadbeefULL, 0xffffffffffffffffULL,
        0x9e3779b97f4a7c15ULL}) {
    std::mt19937_64 engine(seed);
    EXPECT_EQ(Mt19937_64FirstDraw(seed), engine()) << "seed " << seed;
  }
  Rng meta(7);
  for (int i = 0; i < 200; ++i) {
    uint64_t seed = meta.engine()();
    std::mt19937_64 engine(seed);
    ASSERT_EQ(Mt19937_64FirstDraw(seed), engine()) << "seed " << seed;
  }
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(2);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(3, 5));
  EXPECT_EQ(seen, (std::set<int64_t>{3, 4, 5}));
}

TEST(RngTest, Determinism) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Uniform(), b.Uniform());
}

TEST(RngTest, PoissonMean) {
  Rng rng(3);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(4);
  EXPECT_EQ(rng.Poisson(0.0), 0);
  EXPECT_EQ(rng.Poisson(-1.0), 0);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(5);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, NormalMoments) {
  Rng rng(6);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal(1.0, 2.0);
    sum += x;
    sq += x * x;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, LogNormalMeanMatchesParameterization) {
  // LogNormal(mu = ln(m) - s^2/2, s) has mean m.
  Rng rng(7);
  double target = 10.0, sigma = 0.5;
  double mu = std::log(target) - sigma * sigma / 2;
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.LogNormal(mu, sigma);
  EXPECT_NEAR(sum / n, target, 0.3);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(8);
  auto s = rng.SampleWithoutReplacement(100, 30);
  std::set<int64_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (int64_t v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(9);
  auto s = rng.SampleWithoutReplacement(5, 10);
  EXPECT_EQ(s.size(), 5u);
}

TEST(RngTest, SampleWithoutReplacementEmpty) {
  Rng rng(10);
  EXPECT_TRUE(rng.SampleWithoutReplacement(0, 10).empty());
}

TEST(HashTest, HashCombineDiffers) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
  EXPECT_NE(HashCombine(1, 2), HashCombine(1, 3));
  EXPECT_EQ(HashCombine(1, 2), HashCombine(1, 2));
}

TEST(HashTest, HashStringStable) {
  EXPECT_EQ(HashString("taipei"), HashString("taipei"));
  EXPECT_NE(HashString("taipei"), HashString("archie"));
}

TEST(StringTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("FrameQL"), "frameql");
  EXPECT_EQ(ToUpper("select"), "SELECT");
}

TEST(StringTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringTest, SplitAndJoin) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StringTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
}

std::vector<std::pair<LogLevel, std::string>>* CapturedLogs() {
  static std::vector<std::pair<LogLevel, std::string>> logs;
  return &logs;
}

void CaptureSink(LogLevel level, const std::string& message) {
  CapturedLogs()->emplace_back(level, message);
}

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = Logger::level();
    CapturedLogs()->clear();
    Logger::set_sink(&CaptureSink);
  }
  void TearDown() override {
    Logger::set_sink(nullptr);
    Logger::set_level(saved_level_);
  }
  LogLevel saved_level_ = LogLevel::kInfo;
};

TEST_F(LoggingTest, LevelFilterDropsBelowThreshold) {
  Logger::set_level(LogLevel::kWarning);
  BLAZEIT_LOG(kDebug) << "dropped";
  BLAZEIT_LOG(kInfo) << "dropped too";
  BLAZEIT_LOG(kWarning) << "kept";
  BLAZEIT_LOG(kError) << "kept too";
  ASSERT_EQ(CapturedLogs()->size(), 2u);
  EXPECT_EQ((*CapturedLogs())[0].first, LogLevel::kWarning);
  EXPECT_EQ((*CapturedLogs())[1].first, LogLevel::kError);
}

TEST_F(LoggingTest, StreamInsertionsCompose) {
  Logger::set_level(LogLevel::kDebug);
  BLAZEIT_LOG(kInfo) << "trained " << 42 << " epochs at " << 0.5;
  ASSERT_EQ(CapturedLogs()->size(), 1u);
  EXPECT_EQ((*CapturedLogs())[0].second, "trained 42 epochs at 0.5");
}

TEST_F(LoggingTest, StructuredFieldsAppendAfterMessage) {
  Logger::set_level(LogLevel::kDebug);
  BLAZEIT_LOG(kInfo).Field("cid", 7).Field("client", "alice") << "plan chosen";
  ASSERT_EQ(CapturedLogs()->size(), 1u);
  EXPECT_EQ((*CapturedLogs())[0].second, "plan chosen cid=7 client=alice");
}

TEST_F(LoggingTest, FieldValuesNeedingQuotesAreQuotedAndEscaped) {
  Logger::set_level(LogLevel::kDebug);
  BLAZEIT_LOG(kInfo)
          .Field("query", "SELECT * FROM t")  // spaces
          .Field("path", "a=b")               // '='
          .Field("msg", "say \"hi\" \\now")   // quotes + backslash
      << "failed";
  ASSERT_EQ(CapturedLogs()->size(), 1u);
  EXPECT_EQ((*CapturedLogs())[0].second,
            "failed query=\"SELECT * FROM t\" path=\"a=b\" "
            "msg=\"say \\\"hi\\\" \\\\now\"");
}

TEST_F(LoggingTest, FieldFormatsNonStringValues) {
  Logger::set_level(LogLevel::kDebug);
  BLAZEIT_LOG(kInfo).Field("wall_ms", 12.5).Field("ok", true) << "done";
  ASSERT_EQ(CapturedLogs()->size(), 1u);
  EXPECT_EQ((*CapturedLogs())[0].second, "done wall_ms=12.5 ok=1");
}

TEST_F(LoggingTest, FieldsWithoutMessageStillRender) {
  Logger::set_level(LogLevel::kDebug);
  BLAZEIT_LOG(kInfo).Field("cid", 3);
  ASSERT_EQ(CapturedLogs()->size(), 1u);
  EXPECT_EQ((*CapturedLogs())[0].second, " cid=3");
}

TEST_F(LoggingTest, LevelRoundTrips) {
  Logger::set_level(LogLevel::kError);
  EXPECT_EQ(Logger::level(), LogLevel::kError);
}

TEST_F(LoggingTest, NullSinkRestoresStderrWithoutCapture) {
  Logger::set_sink(nullptr);
  Logger::set_level(LogLevel::kError);  // keep test output clean
  BLAZEIT_LOG(kWarning) << "to stderr (filtered)";
  EXPECT_TRUE(CapturedLogs()->empty());
}

/// Mutex-guarded capture for the concurrency test (the plain CaptureSink
/// above is only used single-threaded; the Logger contract requires
/// sinks themselves to be thread-safe).
std::mutex* ConcurrentLogMutex() {
  static std::mutex mu;
  return &mu;
}

void ConcurrentCaptureSink(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(*ConcurrentLogMutex());
  CapturedLogs()->emplace_back(level, message);
}

TEST_F(LoggingTest, ConcurrentLoggingKeepsLinesIntact) {
  // Hammer the logger from many threads; every delivered message must be
  // one complete, uninterleaved line (Logger formats each BLAZEIT_LOG
  // into a single string before it reaches the mutex-guarded sink or
  // stderr write).
  Logger::set_sink(&ConcurrentCaptureSink);
  Logger::set_level(LogLevel::kDebug);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        BLAZEIT_LOG(kInfo) << "thread " << t << " message " << i << " tail";
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  ASSERT_EQ(CapturedLogs()->size(),
            static_cast<size_t>(kThreads) * kPerThread);
  for (const auto& [level, message] : *CapturedLogs()) {
    EXPECT_EQ(level, LogLevel::kInfo);
    // An interleaved or torn line would not match the exact shape.
    EXPECT_TRUE(message.rfind("thread ", 0) == 0 &&
                message.find(" message ") != std::string::npos &&
                message.size() >= sizeof("thread 0 message 0 tail") - 1 &&
                message.compare(message.size() - 5, 5, " tail") == 0)
        << "torn line: '" << message << "'";
  }
}

/// set_level is called from tests and executors while workers log; the
/// atomic level makes that race benign (TSan lane enforces it).
TEST_F(LoggingTest, ConcurrentLevelChangesAreSafe) {
  Logger::set_sink(&ConcurrentCaptureSink);
  std::thread toggler([] {
    for (int i = 0; i < 500; ++i) {
      Logger::set_level(i % 2 == 0 ? LogLevel::kDebug : LogLevel::kError);
    }
  });
  for (int i = 0; i < 500; ++i) {
    BLAZEIT_LOG(kWarning) << "racing message " << i;
  }
  toggler.join();
  for (const auto& [level, message] : *CapturedLogs()) {
    EXPECT_EQ(level, LogLevel::kWarning);
  }
}

}  // namespace
}  // namespace blazeit
