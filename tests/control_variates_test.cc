#include "stats/control_variates.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

#include "stats/sampler.h"
#include "util/random.h"

namespace blazeit {
namespace {

/// Synthetic population where the proxy is a noisy version of the truth,
/// with controllable correlation.
struct Population {
  std::vector<double> truth;
  std::vector<double> proxy;
  double mean = 0;
};

Population MakePopulation(int64_t n, double proxy_noise, uint64_t seed) {
  Population p;
  Rng rng(seed);
  p.truth.resize(static_cast<size_t>(n));
  p.proxy.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    double t = rng.Poisson(1.0);
    p.truth[static_cast<size_t>(i)] = t;
    p.proxy[static_cast<size_t>(i)] = t + rng.Normal(0, proxy_noise);
    p.mean += t;
  }
  p.mean /= static_cast<double>(n);
  return p;
}

TEST(ControlVariatesTest, MakeControlVariateComputesExactMoments) {
  auto pop = MakePopulation(10000, 0.5, 1);
  auto cv = MakeControlVariate(10000, [&](int64_t f) {
    return pop.proxy[static_cast<size_t>(f)];
  });
  double mean = 0;
  for (double v : pop.proxy) mean += v;
  mean /= pop.proxy.size();
  EXPECT_NEAR(cv.tau, mean, 1e-9);
  EXPECT_GT(cv.variance, 0);
}

TEST(ControlVariatesTest, PerfectProxyNeedsMinimumSamplesOnly) {
  // t == m: the estimator variance collapses to zero, so the sampler
  // stops at the epsilon-net floor.
  auto pop = MakePopulation(50000, 0.0, 2);
  auto cv = MakeControlVariate(50000, [&](int64_t f) {
    return pop.proxy[static_cast<size_t>(f)];
  });
  SamplingConfig cfg;
  cfg.error = 0.05;
  cfg.value_range = 8;
  auto r = ControlVariateSample(
      50000, [&](int64_t f) { return pop.truth[static_cast<size_t>(f)]; },
      cv, cfg);
  BLAZEIT_ASSERT_OK(r);
  EXPECT_EQ(r.value().samples_used, 160);  // ceil(8 / 0.05)
  EXPECT_NEAR(r.value().estimate, pop.mean, 0.05);
}

TEST(ControlVariatesTest, ReducesSamplesVsPlainAqp) {
  auto pop = MakePopulation(100000, 0.4, 3);  // strongly correlated proxy
  auto cv = MakeControlVariate(100000, [&](int64_t f) {
    return pop.proxy[static_cast<size_t>(f)];
  });
  SamplingConfig cfg;
  cfg.error = 0.02;
  cfg.value_range = 8;
  cfg.seed = 5;
  auto with_cv = ControlVariateSample(
      100000, [&](int64_t f) { return pop.truth[static_cast<size_t>(f)]; },
      cv, cfg);
  auto plain = AdaptiveSample(
      100000, [&](int64_t f) { return pop.truth[static_cast<size_t>(f)]; },
      cfg);
  BLAZEIT_ASSERT_OK(with_cv);
  BLAZEIT_ASSERT_OK(plain);
  EXPECT_LT(with_cv.value().samples_used, plain.value().samples_used);
  EXPECT_NEAR(with_cv.value().estimate, pop.mean, 0.04);
}

TEST(ControlVariatesTest, UselessProxyStillUnbiased) {
  // Uncorrelated proxy: no reduction, but the estimate stays correct.
  Population pop = MakePopulation(50000, 0.0, 4);
  Rng noise(7);
  for (auto& v : pop.proxy) v = noise.Normal(0, 1);  // decorrelate
  auto cv = MakeControlVariate(50000, [&](int64_t f) {
    return pop.proxy[static_cast<size_t>(f)];
  });
  SamplingConfig cfg;
  cfg.error = 0.05;
  cfg.value_range = 8;
  auto r = ControlVariateSample(
      50000, [&](int64_t f) { return pop.truth[static_cast<size_t>(f)]; },
      cv, cfg);
  BLAZEIT_ASSERT_OK(r);
  EXPECT_NEAR(r.value().estimate, pop.mean, 0.1);
}

TEST(ControlVariatesTest, RequiresProxy) {
  ControlVariate cv;  // proxy unset
  SamplingConfig cfg;
  auto r = ControlVariateSample(100, [](int64_t) { return 0.0; }, cv, cfg);
  EXPECT_FALSE(r.ok());
}

class CorrelationSweep : public ::testing::TestWithParam<double> {};

TEST_P(CorrelationSweep, ReductionGrowsWithCorrelation) {
  // Theory: Var(m_hat) = (1 - Corr^2) Var(m). Verify the sample count
  // shrinks monotonically (statistically) as proxy noise drops.
  const double noise = GetParam();
  auto pop = MakePopulation(80000, noise, 11);
  auto cv = MakeControlVariate(80000, [&](int64_t f) {
    return pop.proxy[static_cast<size_t>(f)];
  });
  SamplingConfig cfg;
  cfg.error = 0.02;
  cfg.value_range = 8;
  cfg.seed = 13;
  auto r = ControlVariateSample(
      80000, [&](int64_t f) { return pop.truth[static_cast<size_t>(f)]; },
      cv, cfg);
  BLAZEIT_ASSERT_OK(r);
  auto plain = AdaptiveSample(
      80000, [&](int64_t f) { return pop.truth[static_cast<size_t>(f)]; },
      cfg);
  // Reduction factor should be at least (1 - corr^2) with generous slack.
  double var_truth = 1.0;  // Poisson(1)
  double corr2 = var_truth / (var_truth + noise * noise);
  double expected_ratio = 1.0 - corr2 + 0.25;  // slack
  EXPECT_LT(static_cast<double>(r.value().samples_used),
            std::max(160.0, expected_ratio *
                                static_cast<double>(
                                    plain.value().samples_used) +
                                160.0));
}

INSTANTIATE_TEST_SUITE_P(ProxyNoise, CorrelationSweep,
                         ::testing::Values(0.1, 0.3, 0.6, 1.0, 2.0));

}  // namespace
}  // namespace blazeit
