// The serving layer's headline contract, asserted end to end: with a
// fixed admission order, every response the multi-tenant AdmissionQueue
// streams back is *byte-identical* to a serial engine.Execute of the same
// query — answers, matched frames, selection rows, and the simulated
// CostMeter — at pool sizes 1 (pool disabled), 2, and 8, even though the
// window coalesces eight clients' queries into shared-plan groups that
// train one NN and run one per-frame sweep per group. Client threads
// submit concurrently; an atomic turn counter fixes the admission order,
// which is the only scheduling input the results depend on. Also asserts
// the point of coalescing: cross-client groups form and measurably absorb
// charged NN work, and the scheduler's session sweeps stay warm across
// admission windows.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "exec/thread_pool.h"
#include "serve/admission_queue.h"
#include "testing/test_util.h"

namespace blazeit {
namespace {

using serve::AdmissionQueue;
using serve::ServeOptions;
using serve::ServeResponse;

::testing::AssertionResult BitsEqual(double a, double b) {
  if (std::memcmp(&a, &b, sizeof(double)) == 0) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ in bits";
}

/// Eight clients, one query each: four aggregates on one class (one
/// shared-plan group spanning four clients), two scrubbings (one group,
/// two clients), a selection, and an exhaustive scan.
const char* kClientQueries[] = {
    "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' "
    "ERROR WITHIN 0.1 AT CONFIDENCE 95%",
    "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' "
    "ERROR WITHIN 0.05 AT CONFIDENCE 95%",
    "SELECT COUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.2",
    "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' "
    "ERROR WITHIN 0.08 AT CONFIDENCE 95%",
    "SELECT timestamp FROM taipei GROUP BY timestamp "
    "HAVING SUM(class='car') >= 2 LIMIT 5 GAP 50",
    "SELECT timestamp FROM taipei GROUP BY timestamp "
    "HAVING SUM(class='car') >= 2 LIMIT 3 GAP 20",
    "SELECT * FROM taipei WHERE class = 'bus' "
    "AND redness(content) >= 0.25 AND area(mask) > 20000 "
    "GROUP BY trackid HAVING COUNT(*) > 15",
    "SELECT timestamp FROM taipei WHERE class = 'bus' AND timestamp >= 30",
};
constexpr size_t kNumClients =
    sizeof(kClientQueries) / sizeof(kClientQueries[0]);

class ServeDeterminismTest
    : public testutil::CatalogFixture<ServeDeterminismTest> {
 public:
  static DayLengths Lengths() { return testutil::SmallDays(2000, 2000, 4000); }

 protected:
  static void SetUpTestSuite() {
    CatalogFixture::SetUpTestSuite();
    engine_ = new BlazeItEngine(catalog_, testutil::SmallEngineOptions());
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
    CatalogFixture::TearDownTestSuite();
  }
  void TearDown() override {
    exec::ThreadPool::Instance().Reconfigure(
        exec::ThreadPool::ThreadsFromEnv());
  }

  static void ExpectSameOutput(const QueryOutput& served,
                               const QueryOutput& serial) {
    EXPECT_EQ(served.kind, serial.kind);
    EXPECT_EQ(served.plan, serial.plan);
    EXPECT_TRUE(BitsEqual(served.scalar, serial.scalar));
    EXPECT_EQ(served.frames, serial.frames);
    ASSERT_EQ(served.rows.size(), serial.rows.size());
    for (size_t r = 0; r < serial.rows.size(); ++r) {
      EXPECT_EQ(served.rows[r].frame, serial.rows[r].frame);
      EXPECT_EQ(served.rows[r].detection.class_id,
                serial.rows[r].detection.class_id);
      EXPECT_TRUE(BitsEqual(served.rows[r].detection.score,
                            serial.rows[r].detection.score));
    }
    EXPECT_EQ(served.cost.detection_calls(), serial.cost.detection_calls());
    EXPECT_EQ(served.cost.specialized_nn_calls(),
              serial.cost.specialized_nn_calls());
    EXPECT_EQ(served.cost.filter_calls(), serial.cost.filter_calls());
    EXPECT_EQ(served.cost.training_frames(), serial.cost.training_frames());
    EXPECT_TRUE(
        BitsEqual(served.cost.TotalSeconds(), serial.cost.TotalSeconds()));
    EXPECT_EQ(served.plan_description, serial.plan_description);
  }

  /// Eight concurrent client threads, admission order fixed by an atomic
  /// turn counter: client i submits only once i-1 has been admitted.
  /// Returns the responses indexed by ticket (== admission position).
  static std::vector<ServeResponse> ServeAllClients(AdmissionQueue* queue) {
    std::atomic<size_t> turn{0};
    std::vector<std::thread> clients;
    for (size_t i = 0; i < kNumClients; ++i) {
      clients.emplace_back([queue, &turn, i] {
        while (turn.load(std::memory_order_acquire) != i) {
          std::this_thread::yield();
        }
        auto ticket =
            queue->Submit("client-" + std::to_string(i), kClientQueries[i]);
        EXPECT_TRUE(ticket.ok()) << ticket.status().ToString();
        turn.store(i + 1, std::memory_order_release);
      });
    }
    for (auto& t : clients) t.join();
    queue->Drain();
    std::vector<ServeResponse> by_ticket(kNumClients);
    for (ServeResponse& resp : queue->TakeCompleted()) {
      if (resp.ticket < 0 ||
          static_cast<size_t>(resp.ticket) >= kNumClients) {
        ADD_FAILURE() << "unexpected ticket " << resp.ticket;
        continue;
      }
      by_ticket[static_cast<size_t>(resp.ticket)] = std::move(resp);
    }
    return by_ticket;
  }

  static BlazeItEngine* engine_;
};

BlazeItEngine* ServeDeterminismTest::engine_ = nullptr;

TEST_F(ServeDeterminismTest, ServedResponsesMatchSerialExecuteAtEveryPoolSize) {
  // Serial reference, computed once (Execute itself is thread-count
  // invariant per parallel_determinism_test).
  std::vector<Result<QueryOutput>> serial;
  for (const char* q : kClientQueries) serial.push_back(engine_->Execute(q));

  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    exec::ThreadPool::Instance().Reconfigure(threads);
    ServeOptions options;
    options.window_ticks = 100;  // one window holds all eight clients
    AdmissionQueue queue(engine_, options);
    std::vector<ServeResponse> responses = ServeAllClients(&queue);
    if (HasFatalFailure()) return;

    for (size_t i = 0; i < kNumClients; ++i) {
      SCOPED_TRACE("client[" + std::to_string(i) + "]: " + kClientQueries[i]);
      EXPECT_EQ(responses[i].client, "client-" + std::to_string(i));
      EXPECT_FALSE(responses[i].degraded);
      ASSERT_EQ(responses[i].output.ok(), serial[i].ok());
      if (!serial[i].ok()) continue;
      ExpectSameOutput(responses[i].output.value(), serial[i].value());
    }
  }
}

TEST_F(ServeDeterminismTest, EightClientWindowCoalescesAcrossClients) {
  ServeOptions options;
  options.window_ticks = 100;
  AdmissionQueue queue(engine_, options);
  std::vector<ServeResponse> responses = ServeAllClients(&queue);
  if (HasFatalFailure()) return;
  for (const ServeResponse& resp : responses) BLAZEIT_EXPECT_OK(resp.output);

  // Four aggregates -> 1 group, two scrubbings -> 1 group, selection and
  // exhaustive -> singletons.
  const serve::ServerStats stats = queue.stats();
  EXPECT_EQ(stats.batches, 1);
  EXPECT_EQ(stats.submitted, static_cast<int64_t>(kNumClients));
  EXPECT_EQ(stats.groups, 4);
  EXPECT_EQ(stats.coalesced_queries, 6);
  // Every member of the two shared groups came from a different client —
  // the cross-client amortization a per-client ExecuteBatch cannot reach.
  EXPECT_EQ(stats.cross_client_groups, 2);
  // The sharing is measurable, not nominal: follower clients' NN frames
  // and trained models were served from another client's sweep, so the
  // window's charged cost sits strictly below the standalone sum.
  EXPECT_GT(stats.shared_nn_frames, 0);
  EXPECT_GE(stats.shared_models, 4);  // 3 aggregate + 1 scrubbing followers
  EXPECT_LT(stats.batch_seconds, stats.standalone_seconds);

  // Per-response stats carry the same accounting: the 3 follower
  // aggregates (tickets 1..3) reused ticket 0's model and sweep.
  for (size_t i = 1; i <= 3; ++i) {
    EXPECT_EQ(responses[i].stats.shared_models, 1) << "ticket " << i;
    EXPECT_GT(responses[i].stats.shared_nn_frames, 0) << "ticket " << i;
  }
}

TEST_F(ServeDeterminismTest, SessionSweepsStayWarmAcrossWindows) {
  ServeOptions options;
  options.window_ticks = 1;
  AdmissionQueue queue(engine_, options);

  // Window 1: one aggregate trains the model and sweeps the stream.
  BLAZEIT_ASSERT_OK(queue.Submit("alice", kClientQueries[0]));
  queue.Advance();
  std::vector<ServeResponse> first = queue.TakeCompleted();
  ASSERT_EQ(first.size(), 1u);
  BLAZEIT_ASSERT_OK(first[0].output);
  EXPECT_EQ(first[0].stats.shared_models, 0);  // leader trains

  // Window 2: a different client's same-class aggregate is served from
  // the warm session sweeps — and still matches serial Execute to the
  // bit, because a sweep hit only changes *charged* accounting.
  BLAZEIT_ASSERT_OK(queue.Submit("bob", kClientQueries[1]));
  queue.Advance();
  std::vector<ServeResponse> second = queue.TakeCompleted();
  ASSERT_EQ(second.size(), 1u);
  BLAZEIT_ASSERT_OK(second[0].output);
  EXPECT_EQ(second[0].stats.shared_models, 1);
  EXPECT_GT(second[0].stats.shared_nn_frames, 0);

  auto serial = engine_->Execute(kClientQueries[1]);
  BLAZEIT_ASSERT_OK(serial);
  ExpectSameOutput(second[0].output.value(), serial.value());
}

}  // namespace
}  // namespace blazeit
