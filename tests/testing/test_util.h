#ifndef BLAZEIT_TESTS_TESTING_TEST_UTIL_H_
#define BLAZEIT_TESTS_TESTING_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/catalog.h"
#include "core/engine.h"
#include "util/status.h"
#include "video/datasets.h"

namespace blazeit {
namespace testutil {

/// Directory of the shared warm detection store, or "" when persistence is
/// off. ci/check.sh exports BLAZEIT_DETECTION_STORE and runs the slow lane
/// twice — cold then warm — so every catalog-backed suite skips detector
/// and NN recomputation on the second pass. Outputs are unaffected either
/// way (store_invariance_test asserts this end to end).
inline std::string DetectionStoreDir() {
  const char* dir = std::getenv("BLAZEIT_DETECTION_STORE");
  return dir == nullptr ? std::string() : std::string(dir);
}

/// Catalog wired to the shared warm store when BLAZEIT_DETECTION_STORE is
/// set — what CatalogFixture does, for tests that build catalogs directly.
inline VideoCatalog MakeCatalog() {
  VideoCatalog catalog;
  const std::string dir = DetectionStoreDir();
  if (!dir.empty()) {
    EXPECT_TRUE(catalog.EnableDetectionStore(dir).ok())
        << "enabling detection store at " << dir;
  }
  return catalog;
}

/// Day lengths small enough for unit tests: minutes of video, not the
/// paper-scale hours used by bench/.
inline DayLengths SmallDays(int64_t train = 6000, int64_t held_out = 6000,
                            int64_t test = 12000) {
  DayLengths lengths;
  lengths.train = train;
  lengths.held_out = held_out;
  lengths.test = test;
  return lengths;
}

/// The small specialized-NN configuration every suite trains: a 16x16
/// raster with one 32-wide hidden layer. Big enough to correlate with the
/// signal, small enough to train in milliseconds.
inline SpecializedNNConfig SmallNN() {
  SpecializedNNConfig nn;
  nn.raster_width = 16;
  nn.raster_height = 16;
  nn.hidden_dims = {32};
  return nn;
}

/// Small-NN options for any executor-options struct with an `nn` member
/// (AggregateOptions, ScrubOptions, SelectionOptions).
template <typename OptionsT>
OptionsT SmallNNOptions() {
  OptionsT opt;
  opt.nn = SmallNN();
  return opt;
}

/// Engine options with the small NN wired into all three executors.
inline EngineOptions SmallEngineOptions() {
  EngineOptions options;
  options.aggregate.nn = SmallNN();
  options.scrub.nn = SmallNN();
  options.selection.nn = SmallNN();
  return options;
}

/// Pretty-printing `ok()` checks for Status and Result<T>.
inline ::testing::AssertionResult IsOk(const Status& s) {
  if (s.ok()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << s.ToString();
}

template <typename T>
::testing::AssertionResult IsOk(const Result<T>& r) {
  return IsOk(r.status());
}

/// Relative-tolerance matcher: |actual - expected| <= rel_tol * |expected|.
inline ::testing::AssertionResult NearRel(double actual, double expected,
                                          double rel_tol) {
  const double bound = rel_tol * std::abs(expected);
  if (std::abs(actual - expected) <= bound) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << actual << " not within " << rel_tol << " (relative) of "
         << expected << " (allowed slack " << bound << ")";
}

/// Suite-shared catalog fixture (CRTP). Generating and detecting the
/// synthetic days dominates suite runtime, so streams are built once per
/// suite. Derived classes may shadow Streams() and/or Lengths() — the
/// shadows must be public, since the base calls them through `Derived::`:
///
///   class MyTest : public testutil::CatalogFixture<MyTest> {
///    public:
///     static DayLengths Lengths() { return testutil::SmallDays(3000); }
///   };
///
/// `stream_` points at the first configured stream.
template <typename Derived>
class CatalogFixture : public ::testing::Test {
 public:
  static std::vector<StreamConfig> Streams() { return {TaipeiConfig()}; }
  static DayLengths Lengths() { return SmallDays(); }

 protected:
  static void SetUpTestSuite() {
    catalog_ = new VideoCatalog();
    const std::string store_dir = DetectionStoreDir();
    if (!store_dir.empty()) {
      ASSERT_TRUE(IsOk(catalog_->EnableDetectionStore(store_dir)))
          << "enabling detection store at " << store_dir;
    }
    for (const StreamConfig& config : Derived::Streams()) {
      ASSERT_TRUE(IsOk(catalog_->AddStream(config, Derived::Lengths())))
          << "adding stream " << config.name;
    }
    stream_ = catalog_->GetStream(Derived::Streams().front().name).value();
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
    stream_ = nullptr;
  }

  static VideoCatalog* catalog_;
  static StreamData* stream_;
};

template <typename Derived>
VideoCatalog* CatalogFixture<Derived>::catalog_ = nullptr;
template <typename Derived>
StreamData* CatalogFixture<Derived>::stream_ = nullptr;

}  // namespace testutil
}  // namespace blazeit

#define BLAZEIT_EXPECT_OK(expr) EXPECT_TRUE(::blazeit::testutil::IsOk((expr)))
#define BLAZEIT_ASSERT_OK(expr) ASSERT_TRUE(::blazeit::testutil::IsOk((expr)))

#endif  // BLAZEIT_TESTS_TESTING_TEST_UTIL_H_
