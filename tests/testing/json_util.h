#ifndef BLAZEIT_TESTS_TESTING_JSON_UTIL_H_
#define BLAZEIT_TESTS_TESTING_JSON_UTIL_H_

#include <cctype>
#include <string>

namespace blazeit {
namespace testutil {

/// Minimal recursive-descent JSON well-formedness checker (ECMA-404) for
/// validating the observability exports (Chrome traces, metrics
/// snapshots, ExecutionReports) without a JSON library dependency.
/// Deliberately strict where it matters for our emitters: `nan`/`inf`
/// from a printf of a non-finite double are rejected, as chrome://tracing
/// would reject them.
class JsonValidator {
 public:
  /// True iff `text` is exactly one complete JSON value.
  static bool Valid(const std::string& text) {
    JsonValidator v(text);
    v.SkipWs();
    if (!v.Value()) return false;
    v.SkipWs();
    return v.pos_ == text.size();
  }

 private:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool Eat(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Value() {
    switch (Peek()) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (!Eat(*p)) return false;
    }
    return true;
  }

  bool Object() {
    if (!Eat('{')) return false;
    SkipWs();
    if (Eat('}')) return true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Eat(':')) return false;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Eat('}')) return true;
      if (!Eat(',')) return false;
    }
  }

  bool Array() {
    if (!Eat('[')) return false;
    SkipWs();
    if (Eat(']')) return true;
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Eat(']')) return true;
      if (!Eat(',')) return false;
    }
  }

  bool String() {
    if (!Eat('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
            ++pos_;
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool Number() {
    Eat('-');
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Eat('.')) {
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace testutil
}  // namespace blazeit

#endif  // BLAZEIT_TESTS_TESTING_JSON_UTIL_H_
