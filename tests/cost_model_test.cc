#include "sim/cost_model.h"

#include <gtest/gtest.h>

#include <thread>

namespace blazeit {
namespace {

TEST(CostMeterTest, DetectionChargedAtPaperRate) {
  CostMeter meter;
  for (int i = 0; i < 9; ++i) meter.ChargeDetection();
  EXPECT_EQ(meter.detection_calls(), 9);
  // 3 fps -> 1/3 second per frame.
  EXPECT_NEAR(meter.detection_seconds(), 3.0, 1e-9);
}

TEST(CostMeterTest, SpecializedNNThreeOrdersCheaper) {
  CostMeter meter;
  meter.ChargeDetection();
  meter.ChargeSpecializedNN(1);
  EXPECT_GT(meter.detection_seconds() / meter.specialized_nn_seconds(), 3000);
}

TEST(CostMeterTest, FilterCheapestOfAll) {
  CostProfile profile;
  EXPECT_LT(profile.filter_sec_per_frame, profile.specialized_nn_sec_per_frame);
  EXPECT_LT(profile.specialized_nn_sec_per_frame,
            profile.detection_sec_per_frame);
}

TEST(CostMeterTest, CroppedDetectionCheaper) {
  CostMeter meter;
  meter.ChargeDetectionAspect(1.0);  // square crop
  double square = meter.detection_seconds();
  CostMeter full;
  full.ChargeDetection();  // 16:9 full frame
  EXPECT_LT(square, full.detection_seconds());
  EXPECT_NEAR(full.detection_seconds() / square, 16.0 / 9.0, 1e-9);
}

TEST(CostMeterTest, TotalVsQuerySeconds) {
  CostMeter meter;
  meter.ChargeTraining(1000);
  meter.ChargeDetection();
  EXPECT_GT(meter.TotalSeconds(), meter.QuerySeconds());
  EXPECT_NEAR(meter.QuerySeconds(), 1.0 / 3.0, 1e-9);
}

TEST(CostMeterTest, ResetClearsEverything) {
  CostMeter meter;
  meter.ChargeDetection();
  meter.ChargeSpecializedNN(10);
  meter.ChargeFilter(10);
  meter.ChargeTraining(10);
  meter.Reset();
  EXPECT_EQ(meter.detection_calls(), 0);
  EXPECT_EQ(meter.TotalSeconds(), 0.0);
}

TEST(CostMeterTest, ToStringMentionsTotals) {
  CostMeter meter;
  meter.ChargeDetection();
  EXPECT_NE(meter.ToString().find("detections=1"), std::string::npos);
}

#ifdef BLAZEIT_COSTMETER_THREAD_CHECK

// The single-writer contract (see the CostMeter class comment): the first
// charge pins the owning thread; copying or Reset() re-arms the pin for a
// new context. These must all pass with the check compiled in — they are
// the legal uses the executors rely on.
TEST(CostMeterOwnerTest, CopyAndResetRearmTheOwnerPin) {
  CostMeter meter;
  meter.ChargeFilter();
  CostMeter copy = meter;  // copies counters, not the owner
  std::thread t1([&copy] { copy.ChargeFilter(); });
  t1.join();
  EXPECT_EQ(copy.filter_calls(), 2);
  CostMeter assigned;
  assigned = meter;
  std::thread t2([&assigned] { assigned.ChargeDetection(); });
  t2.join();
  meter.Reset();
  std::thread t3([&meter] { meter.ChargeFilter(); });
  t3.join();
  EXPECT_EQ(meter.filter_calls(), 1);
}

TEST(CostMeterOwnerDeathTest, CrossThreadChargeAborts) {
  // GTEST_FLAG rather than GTEST_FLAG_SET: the TSan lane may resolve an
  // older GoogleTest install that predates the setter macro.
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  CostMeter meter;
  meter.ChargeFilter();  // pins this thread as the owner
  EXPECT_DEATH(
      {
        std::thread t([&meter] { meter.ChargeSpecializedNN(); });
        t.join();
      },
      "two threads");
}

#endif  // BLAZEIT_COSTMETER_THREAD_CHECK

}  // namespace
}  // namespace blazeit
