// Property tests parameterized over all six shipped stream configurations:
// for every stream, the generator must match its configured statistics, the
// renderer must produce valid pixels, and the detector/labeled-set chain
// must be internally consistent.
#include <gtest/gtest.h>

#include "testing/test_util.h"

#include "core/labeled_set.h"
#include "detect/simulated_detector.h"
#include "nn/specialized_nn.h"
#include "video/datasets.h"

namespace blazeit {
namespace {

class StreamProperty : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    auto cfg = StreamConfigByName(GetParam());
    BLAZEIT_ASSERT_OK(cfg);
    config_ = cfg.value();
    video_ = SyntheticVideo::Create(config_, 77, 12000).value();
  }
  StreamConfig config_;
  std::unique_ptr<SyntheticVideo> video_;
};

TEST_P(StreamProperty, OccupancyWithinTolerance) {
  for (const ObjectClassConfig& cls : config_.classes) {
    double measured = video_->MeasureOccupancy(cls.class_id);
    // Long-dwell streams have few independent epochs in a 12k-frame
    // window, and day-level rate jitter (archie) widens the band further.
    double tol = 0.08 + cls.mean_duration_sec / 40.0 +
                 cls.day_rate_jitter * 0.6;
    EXPECT_NEAR(measured, cls.occupancy, tol)
        << config_.name << "/" << ClassName(cls.class_id);
  }
}

TEST_P(StreamProperty, DurationWithinTolerance) {
  for (const ObjectClassConfig& cls : config_.classes) {
    double measured = video_->MeanDurationSeconds(cls.class_id);
    EXPECT_NEAR(measured, cls.mean_duration_sec,
                cls.mean_duration_sec * 0.3)
        << config_.name << "/" << ClassName(cls.class_id);
  }
}

TEST_P(StreamProperty, MeanCountNearAnalytic) {
  for (const ObjectClassConfig& cls : config_.classes) {
    double expected = ExpectedMeanCount(cls, config_.fps);
    double measured = video_->MeanVisibleCount(cls.class_id);
    double tol = std::max(0.4 * expected, 0.1) +
                 cls.day_rate_jitter * expected +
                 expected * cls.mean_duration_sec / 30.0;
    EXPECT_NEAR(measured, expected, tol)
        << config_.name << "/" << ClassName(cls.class_id);
  }
}

TEST_P(StreamProperty, RenderedPixelsValid) {
  for (int64_t t : {int64_t{0}, int64_t{5000}, int64_t{11999}}) {
    Image img = video_->RenderFrame(t, 32, 32);
    for (float v : img.data()) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
    }
  }
}

TEST_P(StreamProperty, DetectorCountsTrackGroundTruth) {
  SimulatedDetector detector;
  LabeledSet labels(video_.get(), &detector,
                    config_.detection_threshold);
  for (const ObjectClassConfig& cls : config_.classes) {
    double truth_mean = video_->MeanVisibleCount(cls.class_id);
    const auto& counts = labels.Counts(cls.class_id);
    double det_mean = 0;
    for (int c : counts) det_mean += c;
    det_mean /= static_cast<double>(counts.size());
    // The detector misses some objects (more when small) but never sees
    // more than a small false-positive overhead.
    EXPECT_LE(det_mean, truth_mean * 1.1 + 0.05)
        << config_.name << "/" << ClassName(cls.class_id);
    EXPECT_GE(det_mean, truth_mean * 0.4)
        << config_.name << "/" << ClassName(cls.class_id);
  }
}

TEST_P(StreamProperty, FeatureVectorsFiniteAndVarying) {
  auto a = FrameFeatures(*video_, 100, 16, 16);
  auto b = FrameFeatures(*video_, 6100, 16, 16);
  double diff = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(std::isfinite(a[i]));
    diff += std::abs(a[i] - b[i]);
  }
  EXPECT_GT(diff, 0.0) << "features must vary across frames";
}

TEST_P(StreamProperty, DaysShareDistributionShape) {
  // Two different days of the same stream must have similar occupancy
  // (up to day-level jitter) — the paper's no-model-drift assumption.
  auto other = SyntheticVideo::Create(config_, 78, 12000).value();
  for (const ObjectClassConfig& cls : config_.classes) {
    double a = video_->MeasureOccupancy(cls.class_id);
    double b = other->MeasureOccupancy(cls.class_id);
    double tol = 0.1 + cls.mean_duration_sec / 30.0 +
                 cls.day_rate_jitter * 0.8;
    EXPECT_NEAR(a, b, tol) << config_.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllStreams, StreamProperty,
                         ::testing::Values("taipei", "night-street",
                                           "rialto", "grand-canal",
                                           "amsterdam", "archie"));

}  // namespace
}  // namespace blazeit
