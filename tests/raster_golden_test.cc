// Golden/property tests pinning the raster semantics that the vectorized
// kernel layer (video/raster_kernels.h) must preserve bit-for-bit. Each
// test carries its own straight-line reference implementation — the
// pre-vectorization scalar code — and compares Image's (possibly SIMD)
// output against it exactly, so a kernel rewrite that changes even one
// output bit fails here instead of silently invalidating the persistent
// artifact store.
//
// Bit-exactness policy (see README "Hot-path kernels"): Fill, FillRect,
// Crop, and AddNoise are pinned to the original scalar semantics — their
// vectorized paths must be bit-identical. Resize moved to a two-pass box
// filter in PR 3 (kDerivedArtifactEpoch bumped); its reference below *is*
// the two-pass formulation, documented as such.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"
#include "video/image.h"
#include "video/raster_kernels.h"

namespace blazeit {
namespace {

// ---------------------------------------------------------------------------
// Reference implementations (the original per-pixel scalar code).
// ---------------------------------------------------------------------------

// Original FillRect: per-pixel center-containment test over the clamped
// pixel bounding box. Colors are clamped to [0,1] at the fill site (the
// PR 3 contract fix; in-range colors are unchanged by the clamp).
void RefFillRect(Image* img, const Rect& rect, const Color& color) {
  const int width = img->width(), height = img->height();
  Rect r = rect.ClampToUnit();
  if (r.Empty()) return;
  Color cl{std::clamp(color.r, 0.0f, 1.0f), std::clamp(color.g, 0.0f, 1.0f),
           std::clamp(color.b, 0.0f, 1.0f)};
  int x0 = std::clamp(static_cast<int>(std::floor(r.xmin * width)), 0, width);
  int x1 = std::clamp(static_cast<int>(std::ceil(r.xmax * width)), 0, width);
  int y0 = std::clamp(static_cast<int>(std::floor(r.ymin * height)), 0, height);
  int y1 = std::clamp(static_cast<int>(std::ceil(r.ymax * height)), 0, height);
  for (int y = y0; y < y1; ++y) {
    double cy = (y + 0.5) / height;
    for (int x = x0; x < x1; ++x) {
      double cx = (x + 0.5) / width;
      if (r.Contains(cx, cy)) img->SetPixel(x, y, cl);
    }
  }
}

// Original Crop: pixel bounds rounded outward, at least 1x1.
Image RefCrop(const Image& src, const Rect& rect) {
  Rect r = rect.ClampToUnit();
  if (r.Empty() || src.Empty()) return Image();
  const int width = src.width(), height = src.height();
  int x0 = std::clamp(static_cast<int>(std::floor(r.xmin * width)), 0,
                      width - 1);
  int x1 = std::clamp(static_cast<int>(std::ceil(r.xmax * width)), x0 + 1,
                      width);
  int y0 = std::clamp(static_cast<int>(std::floor(r.ymin * height)), 0,
                      height - 1);
  int y1 = std::clamp(static_cast<int>(std::ceil(r.ymax * height)), y0 + 1,
                      height);
  Image out(x1 - x0, y1 - y0);
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      for (int c = 0; c < 3; ++c) out.Set(x - x0, y - y0, c, src.At(x, y, c));
    }
  }
  return out;
}

// Resize reference: two-pass box filter (horizontal then vertical), the
// PR 3 semantics. Per output cell the horizontal pass accumulates each
// source row's span in sx order into a double, and the vertical pass adds
// those row sums in sy order — the same grouping the production kernel
// uses, so this comparison is still bit-exact.
Image RefResizeTwoPass(const Image& src, int new_width, int new_height) {
  Image out(new_width, new_height);
  if (src.Empty() || new_width <= 0 || new_height <= 0) return out;
  const int sw = src.width(), sh = src.height();
  // Horizontal pass: row sums per (source row, output column, channel).
  std::vector<double> hsum(static_cast<size_t>(sh) * new_width * 3, 0.0);
  std::vector<int> hcount(static_cast<size_t>(new_width), 0);
  for (int x = 0; x < new_width; ++x) {
    int sx0 = x * sw / new_width;
    int sx1 = std::max(sx0 + 1, (x + 1) * sw / new_width);
    hcount[static_cast<size_t>(x)] = sx1 - sx0;
    for (int sy = 0; sy < sh; ++sy) {
      double r = 0, g = 0, b = 0;
      for (int sx = sx0; sx < sx1; ++sx) {
        r += static_cast<double>(src.At(sx, sy, 0));
        g += static_cast<double>(src.At(sx, sy, 1));
        b += static_cast<double>(src.At(sx, sy, 2));
      }
      size_t base = (static_cast<size_t>(sy) * new_width + x) * 3;
      hsum[base + 0] = r;
      hsum[base + 1] = g;
      hsum[base + 2] = b;
    }
  }
  // Vertical pass: add row sums in sy order, divide by the block size.
  for (int y = 0; y < new_height; ++y) {
    int sy0 = y * sh / new_height;
    int sy1 = std::max(sy0 + 1, (y + 1) * sh / new_height);
    for (int x = 0; x < new_width; ++x) {
      for (int c = 0; c < 3; ++c) {
        double sum = 0;
        for (int sy = sy0; sy < sy1; ++sy) {
          sum += hsum[(static_cast<size_t>(sy) * new_width + x) * 3 +
                      static_cast<size_t>(c)];
        }
        out.Set(x, y, c,
                static_cast<float>(
                    sum / ((sy1 - sy0) * hcount[static_cast<size_t>(x)])));
      }
    }
  }
  return out;
}

// Original AddNoise: serial SplitMix64 index stream into the shared
// N(0,1) lookup table (14-bit), one step per channel, clamped to [0,1].
void RefAddNoise(std::vector<float>* data, uint64_t state, double sigma) {
  constexpr int kNoiseTableBits = 14;
  constexpr int kNoiseTableSize = 1 << kNoiseTableBits;
  static std::vector<float> table = [] {
    std::vector<float> t(kNoiseTableSize);
    Rng rng(0x6a09e667f3bcc908ULL);
    for (int i = 0; i < kNoiseTableSize; ++i) {
      t[static_cast<size_t>(i)] = static_cast<float>(rng.Normal(0.0, 1.0));
    }
    return t;
  }();
  const float s = static_cast<float>(sigma);
  for (float& v : *data) {
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    v = std::clamp(v + s * table[z & (kNoiseTableSize - 1)], 0.0f, 1.0f);
  }
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

Image RandomImage(Rng* rng, int w, int h) {
  Image img(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      for (int c = 0; c < 3; ++c) {
        img.Set(x, y, c, static_cast<float>(rng->Uniform()));
      }
    }
  }
  return img;
}

void ExpectBitIdentical(const Image& a, const Image& b) {
  ASSERT_EQ(a.width(), b.width());
  ASSERT_EQ(a.height(), b.height());
  ASSERT_EQ(a.data().size(), b.data().size());
  for (size_t i = 0; i < a.data().size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "channel index " << i;
  }
}

Rect RandomRect(Rng* rng) {
  // Mix of in-range, out-of-range, and degenerate rects.
  double x0 = rng->Uniform(-0.3, 1.1);
  double y0 = rng->Uniform(-0.3, 1.1);
  double w = rng->Uniform(-0.05, 0.9);
  double h = rng->Uniform(-0.05, 0.9);
  return Rect{x0, y0, x0 + w, y0 + h};
}

// Image sizes chosen to cover SIMD width boundaries: totals that are not
// multiples of 8/16 exercise kernel tails.
constexpr int kSizes[][2] = {{1, 1}, {3, 2}, {5, 7},  {8, 8},
                             {13, 9}, {16, 16}, {32, 32}, {64, 64}};

// ---------------------------------------------------------------------------
// FillRect golden: center-coverage semantics, bit-exact.
// ---------------------------------------------------------------------------

TEST(RasterGoldenTest, FillRectMatchesPerPixelReference) {
  Rng rng(0x517cc1b727220a95ULL);
  for (auto [w, h] : kSizes) {
    for (int trial = 0; trial < 50; ++trial) {
      Rect rect = RandomRect(&rng);
      Color color{static_cast<float>(rng.Uniform(-0.2, 1.4)),
                  static_cast<float>(rng.Uniform(-0.2, 1.4)),
                  static_cast<float>(rng.Uniform(-0.2, 1.4))};
      Image got = RandomImage(&rng, w, h);
      Image want = got;
      got.FillRect(rect, color);
      RefFillRect(&want, rect, color);
      SCOPED_TRACE(::testing::Message()
                   << w << "x" << h << " rect " << rect.ToString());
      ExpectBitIdentical(want, got);
    }
  }
}

TEST(RasterGoldenTest, FillRectCentersOnBoundary) {
  // Rect edges exactly on pixel centers: Contains is half-open
  // ([xmin, xmax)), so a pixel whose center sits on xmin is covered and a
  // pixel whose center sits on xmax is not.
  Image img(4, 4);
  // Pixel centers at 0.125, 0.375, 0.625, 0.875.
  img.FillRect(Rect{0.375, 0.375, 0.875, 0.875}, Color{1, 1, 1});
  EXPECT_FLOAT_EQ(img.At(0, 1, 0), 0.0f);
  EXPECT_FLOAT_EQ(img.At(1, 1, 0), 1.0f);  // center 0.375 == xmin: inside
  EXPECT_FLOAT_EQ(img.At(2, 2, 0), 1.0f);
  EXPECT_FLOAT_EQ(img.At(3, 3, 0), 0.0f);  // center 0.875 == xmax: outside
}

TEST(RasterGoldenTest, FillMatchesReference) {
  Rng rng(0xa0761d6478bd642fULL);
  for (auto [w, h] : kSizes) {
    Color color{static_cast<float>(rng.Uniform(-0.2, 1.4)),
                static_cast<float>(rng.Uniform(-0.2, 1.4)),
                static_cast<float>(rng.Uniform(-0.2, 1.4))};
    Color cl{std::clamp(color.r, 0.0f, 1.0f), std::clamp(color.g, 0.0f, 1.0f),
             std::clamp(color.b, 0.0f, 1.0f)};
    Image img(w, h);
    img.Fill(color);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        ASSERT_EQ(img.At(x, y, 0), cl.r);
        ASSERT_EQ(img.At(x, y, 1), cl.g);
        ASSERT_EQ(img.At(x, y, 2), cl.b);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Crop golden: outward rounding, bit-exact copy.
// ---------------------------------------------------------------------------

TEST(RasterGoldenTest, CropMatchesReference) {
  Rng rng(0xe7037ed1a0b428dbULL);
  for (auto [w, h] : kSizes) {
    Image src = RandomImage(&rng, w, h);
    for (int trial = 0; trial < 30; ++trial) {
      Rect rect = RandomRect(&rng);
      Image want = RefCrop(src, rect);
      Image got = src.Crop(rect);
      SCOPED_TRACE(::testing::Message()
                   << w << "x" << h << " rect " << rect.ToString());
      ExpectBitIdentical(want, got);
    }
  }
}

TEST(RasterGoldenTest, CropRoundingPinned) {
  // xmin 0.21 on a 10-wide image floors to pixel 2; xmax 0.69 ceils to 7.
  Image src = RandomImage([] { static Rng r(5); return &r; }(), 10, 10);
  Image crop = src.Crop(Rect{0.21, 0.21, 0.69, 0.69});
  EXPECT_EQ(crop.width(), 5);
  EXPECT_EQ(crop.height(), 5);
  EXPECT_EQ(crop.At(0, 0, 0), src.At(2, 2, 0));
  // A sliver rect still produces at least 1x1.
  EXPECT_EQ(src.Crop(Rect{0.999, 0.999, 1.0, 1.0}).width(), 1);
}

// ---------------------------------------------------------------------------
// Resize golden: two-pass box filter.
// ---------------------------------------------------------------------------

TEST(RasterGoldenTest, ResizeMatchesTwoPassReference) {
  Rng rng(0x8ebc6af09c88c6e3ULL);
  constexpr int kTargets[][2] = {{1, 1}, {2, 3}, {8, 8}, {15, 6}, {32, 32},
                                 {48, 48}};
  for (auto [w, h] : kSizes) {
    Image src = RandomImage(&rng, w, h);
    for (auto [nw, nh] : kTargets) {
      Image want = RefResizeTwoPass(src, nw, nh);
      Image got = src.Resize(nw, nh);
      SCOPED_TRACE(::testing::Message()
                   << w << "x" << h << " -> " << nw << "x" << nh);
      ExpectBitIdentical(want, got);
    }
  }
}

TEST(RasterGoldenTest, ResizeBoxAveragesPinned) {
  // 4x4 -> 2x2: each output pixel is the mean of a 2x2 block.
  Image src(4, 4);
  float v = 0;
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      for (int c = 0; c < 3; ++c) src.Set(x, y, c, v += 0.01f);
    }
  }
  Image out = src.Resize(2, 2);
  for (int c = 0; c < 3; ++c) {
    double want = (static_cast<double>(src.At(0, 0, c)) + src.At(1, 0, c) +
                   src.At(0, 1, c) + src.At(1, 1, c)) /
                  4.0;
    EXPECT_NEAR(out.At(0, 0, c), want, 1e-7);
  }
  // Upsampling stays nearest-ish (block of one source pixel).
  Image up = src.Resize(8, 8);
  EXPECT_EQ(up.At(0, 0, 0), src.At(0, 0, 0));
  EXPECT_EQ(up.At(7, 7, 2), src.At(3, 3, 2));
}

// ---------------------------------------------------------------------------
// AddNoise golden: the serial SplitMix64 stream, bit-exact (this is the
// SIMD-vs-scalar parity check for the dispatched noise kernel).
// ---------------------------------------------------------------------------

TEST(RasterGoldenTest, AddNoiseMatchesSerialReference) {
  for (auto [w, h] : kSizes) {
    for (uint64_t seed : {1ULL, 42ULL, 0xfeedfaceULL}) {
      for (double sigma : {0.01, 0.04, 0.3}) {
        Image img(w, h);
        img.Fill(Color{0.45f, 0.5f, 0.55f});
        std::vector<float> want = img.data();
        // Image::AddNoise seeds its whole-frame stream with one engine
        // draw; replicate that for the reference.
        Rng rng_img(seed), rng_ref(seed);
        img.AddNoise(&rng_img, sigma);
        RefAddNoise(&want, rng_ref.engine()(), sigma);
        SCOPED_TRACE(::testing::Message() << w << "x" << h << " seed " << seed
                                          << " sigma " << sigma);
        for (size_t i = 0; i < want.size(); ++i) {
          ASSERT_EQ(img.data()[i], want[i]) << "channel index " << i;
        }
      }
    }
  }
}

TEST(RasterGoldenTest, AddNoiseScalarKernelMatchesReference) {
  // Pin the scalar fallback kernel directly (not just whatever path the
  // dispatcher picked): on AVX-512 hosts the dispatched test above never
  // executes the scalar loop, but non-AVX-512 hosts replay store
  // artifacts produced by it, so a scalar regression must fail here on
  // every machine.
  for (size_t n : {1u, 7u, 8u, 31u, 3 * 64u * 64u}) {
    for (uint64_t state : {0ULL, 0x0123456789abcdefULL}) {
      std::vector<float> got(n, 0.45f), want(n, 0.45f);
      raster::AddGaussianNoiseClampScalar(got.data(), n, state, 0.07f);
      RefAddNoise(&want, state, 0.07f);
      SCOPED_TRACE(::testing::Message() << "n " << n << " state " << state);
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], want[i]) << "index " << i;
      }
    }
  }
}

TEST(RasterGoldenTest, AddNoiseZeroSigmaIsIdentity) {
  Image img(7, 5);
  img.Fill(Color{0.3f, 0.6f, 0.9f});
  std::vector<float> before = img.data();
  Rng rng(11);
  img.AddNoise(&rng, 0.0);
  EXPECT_EQ(img.data(), before);
}

}  // namespace
}  // namespace blazeit
