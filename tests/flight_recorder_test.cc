// Tests for the flight recorder behind /tracez: bounded last-N retention
// in a sharded ring, the slowest-K reservoir, monotone correlation ids,
// JSON rendering, and concurrent record/snapshot safety (the last is the
// TSan target).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "testing/json_util.h"

namespace blazeit {
namespace obs {
namespace {

using testutil::JsonValidator;

FlightRecord MakeRecord(int64_t id, double wall_ms) {
  FlightRecord record;
  record.correlation_id = id;
  record.client = "tenant-" + std::to_string(id % 3);
  record.query = "SELECT FCOUNT(*) FROM q" + std::to_string(id);
  record.plan = "sampling";
  record.accuracy_tier = "full";
  record.wall_ms = wall_ms;
  record.cost_seconds = wall_ms / 1000.0;
  return record;
}

TEST(FlightRecorderTest, RetainsExactlyLastNMostRecentFirst) {
  FlightRecorder::Options options;
  options.capacity = 8;
  options.shards = 2;
  options.slowest_k = 4;
  FlightRecorder recorder(options);

  for (int64_t i = 0; i < 20; ++i) {
    recorder.Record(MakeRecord(i, 1.0));
  }
  EXPECT_EQ(recorder.total_recorded(), 20);

  const std::vector<FlightRecord> recent = recorder.Snapshot();
  ASSERT_EQ(recent.size(), 8u);
  // Most recent first: sequences 19, 18, ..., 12. Everything older was
  // overwritten in place.
  for (size_t i = 0; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i].sequence, 19 - static_cast<int64_t>(i));
    EXPECT_EQ(recent[i].correlation_id, 19 - static_cast<int64_t>(i));
  }
}

TEST(FlightRecorderTest, SnapshotBelowCapacityReturnsAllRecords) {
  FlightRecorder::Options options;
  options.capacity = 16;
  options.shards = 4;
  FlightRecorder recorder(options);
  recorder.Record(MakeRecord(100, 2.0));
  recorder.Record(MakeRecord(101, 3.0));
  const std::vector<FlightRecord> recent = recorder.Snapshot();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].correlation_id, 101);
  EXPECT_EQ(recent[1].correlation_id, 100);
}

TEST(FlightRecorderTest, SlowestReservoirKeepsOutliersAcrossFastBursts) {
  FlightRecorder::Options options;
  options.capacity = 4;  // tiny ring so fast queries churn it
  options.shards = 1;
  options.slowest_k = 3;
  FlightRecorder recorder(options);

  // Three slow outliers early...
  recorder.Record(MakeRecord(1, 500.0));
  recorder.Record(MakeRecord(2, 900.0));
  recorder.Record(MakeRecord(3, 700.0));
  // ...then a burst of fast queries that evicts them from the ring.
  for (int64_t i = 10; i < 40; ++i) {
    recorder.Record(MakeRecord(i, 1.0));
  }

  const std::vector<FlightRecord> recent = recorder.Snapshot();
  for (const FlightRecord& r : recent) {
    EXPECT_GE(r.correlation_id, 10);  // slow ones are gone from the ring
  }

  const std::vector<FlightRecord> slowest = recorder.SlowestSnapshot();
  ASSERT_EQ(slowest.size(), 3u);
  // Slowest first, and the fast burst displaced none of them.
  EXPECT_EQ(slowest[0].wall_ms, 900.0);
  EXPECT_EQ(slowest[1].wall_ms, 700.0);
  EXPECT_EQ(slowest[2].wall_ms, 500.0);
}

TEST(FlightRecorderTest, SlowerRecordDisplacesFastestRetained) {
  FlightRecorder::Options options;
  options.capacity = 8;
  options.shards = 1;
  options.slowest_k = 2;
  FlightRecorder recorder(options);
  recorder.Record(MakeRecord(1, 10.0));
  recorder.Record(MakeRecord(2, 20.0));
  recorder.Record(MakeRecord(3, 15.0));  // displaces the 10ms record
  const std::vector<FlightRecord> slowest = recorder.SlowestSnapshot();
  ASSERT_EQ(slowest.size(), 2u);
  EXPECT_EQ(slowest[0].wall_ms, 20.0);
  EXPECT_EQ(slowest[1].wall_ms, 15.0);
}

TEST(FlightRecorderTest, CorrelationIdsAreStrictlyIncreasing) {
  const int64_t first = FlightRecorder::NextCorrelationId();
  const int64_t second = FlightRecorder::NextCorrelationId();
  const int64_t third = FlightRecorder::NextCorrelationId();
  EXPECT_GT(first, 0);
  EXPECT_EQ(second, first + 1);
  EXPECT_EQ(third, second + 1);
}

TEST(FlightRecorderTest, ToJsonIsValidAndCarriesBothViews) {
  FlightRecorder::Options options;
  options.capacity = 8;
  options.shards = 2;
  options.slowest_k = 2;
  FlightRecorder recorder(options);

  FlightRecord with_trace = MakeRecord(7, 12.5);
  with_trace.trace = std::make_shared<QueryTrace>("SELECT FCOUNT(*)");
  { TraceSpan span(with_trace.trace.get(), "execute"); }
  recorder.Record(std::move(with_trace));

  FlightRecord failed = MakeRecord(8, 1.0);
  failed.ok = false;
  failed.error = "InvalidArgument: bad \"query\"\nsecond line";
  recorder.Record(std::move(failed));

  const std::string json = recorder.ToJson();
  EXPECT_TRUE(JsonValidator::Valid(json)) << json;
  EXPECT_NE(json.find("\"total_recorded\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"recent\":"), std::string::npos);
  EXPECT_NE(json.find("\"slowest\":"), std::string::npos);
  // The error string with quotes and a newline survived escaping.
  EXPECT_NE(json.find("bad \\\"query\\\"\\nsecond line"), std::string::npos)
      << json;
  // The traced record exports its structure signature.
  EXPECT_NE(json.find("\"trace_structure\":\"execute"), std::string::npos)
      << json;
}

TEST(FlightRecorderTest, ClampsDegenerateOptions) {
  FlightRecorder::Options options;
  options.capacity = 2;
  options.shards = 16;  // more shards than capacity
  options.slowest_k = 0;
  FlightRecorder recorder(options);
  for (int64_t i = 0; i < 50; ++i) {
    recorder.Record(MakeRecord(i, 1.0));
  }
  EXPECT_EQ(recorder.total_recorded(), 50);
  // Capacity is clamped up to the shard count (one slot per shard).
  EXPECT_EQ(recorder.Snapshot().size(), 16u);
  // slowest_k == 0 disables the reservoir entirely.
  EXPECT_TRUE(recorder.SlowestSnapshot().empty());
}

// The TSan target: writers racing snapshot readers must be clean.
TEST(FlightRecorderTest, ConcurrentRecordAndSnapshot) {
  FlightRecorder::Options options;
  options.capacity = 64;
  options.shards = 4;
  options.slowest_k = 8;
  FlightRecorder recorder(options);

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 200;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 2);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&recorder, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        recorder.Record(MakeRecord(w * kPerWriter + i, 1.0 + i % 7));
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&recorder, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        const std::vector<FlightRecord> recent = recorder.Snapshot();
        EXPECT_LE(recent.size(), 64u);
        // Snapshot is most-recent-first within what it observed.
        for (size_t i = 1; i < recent.size(); ++i) {
          EXPECT_GT(recent[i - 1].sequence, recent[i].sequence);
        }
        (void)recorder.SlowestSnapshot();
        (void)recorder.ToJson();
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
  stop.store(true, std::memory_order_relaxed);
  for (size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  EXPECT_EQ(recorder.total_recorded(), kWriters * kPerWriter);
  const std::vector<FlightRecord> recent = recorder.Snapshot();
  EXPECT_EQ(recent.size(), 64u);
  std::set<int64_t> sequences;
  for (const FlightRecord& r : recent) sequences.insert(r.sequence);
  EXPECT_EQ(sequences.size(), recent.size());  // no duplicate slots
}

}  // namespace
}  // namespace obs
}  // namespace blazeit
