#include "core/optimizer.h"

#include <gtest/gtest.h>

#include "frameql/parser.h"
#include "testing/test_util.h"

namespace blazeit {
namespace {

class OptimizerTest : public testutil::CatalogFixture<OptimizerTest> {
 public:
  static DayLengths Lengths() { return testutil::SmallDays(3000, 2000, 4000); }
  static AnalyzedQuery Analyze(const char* sql) {
    auto parsed = ParseFrameQL(sql);
    BLAZEIT_EXPECT_OK(parsed);
    auto analyzed = AnalyzeQuery(parsed.value(), stream_->config);
    BLAZEIT_EXPECT_OK(analyzed);
    return analyzed.value();
  }
};

TEST_F(OptimizerTest, AggregateWithDataSpecializes) {
  PlanChoice plan = ChoosePlan(
      Analyze("SELECT FCOUNT(*) FROM taipei WHERE class = 'car' "
              "ERROR WITHIN 0.1"),
      stream_);
  EXPECT_EQ(plan.kind, PlanKind::kSpecializedAggregation);
  EXPECT_FALSE(plan.rationale.empty());
}

TEST_F(OptimizerTest, AggregateWithoutDataUsesAqp) {
  PlanChoice plan = ChoosePlan(
      Analyze("SELECT FCOUNT(*) FROM taipei WHERE class = 'person' "
              "ERROR WITHIN 0.1"),
      stream_);
  EXPECT_EQ(plan.kind, PlanKind::kAqpAggregation);
}

TEST_F(OptimizerTest, ScrubbingWithInstancesUsesImportanceSampling) {
  PlanChoice plan = ChoosePlan(
      Analyze("SELECT timestamp FROM taipei GROUP BY timestamp "
              "HAVING SUM(class='car') >= 1 LIMIT 5"),
      stream_);
  EXPECT_EQ(plan.kind, PlanKind::kImportanceScrubbing);
}

TEST_F(OptimizerTest, ScrubbingWithoutInstancesFallsBackToScan) {
  PlanChoice plan = ChoosePlan(
      Analyze("SELECT timestamp FROM taipei GROUP BY timestamp "
              "HAVING SUM(class='car') >= 50 LIMIT 5"),
      stream_);
  EXPECT_EQ(plan.kind, PlanKind::kScanScrubbing);
}

TEST_F(OptimizerTest, SelectionListsInferredFilters) {
  PlanChoice plan = ChoosePlan(
      Analyze("SELECT * FROM taipei WHERE class = 'bus' "
              "AND redness(content) >= 0.25 AND xmin(mask) >= 0.4 "
              "GROUP BY trackid HAVING COUNT(*) > 15"),
      stream_);
  EXPECT_EQ(plan.kind, PlanKind::kFilteredSelection);
  EXPECT_NE(plan.rationale.find("temporal"), std::string::npos);
  EXPECT_NE(plan.rationale.find("spatial"), std::string::npos);
  EXPECT_NE(plan.rationale.find("content"), std::string::npos);
  EXPECT_NE(plan.rationale.find("label"), std::string::npos);
}

TEST_F(OptimizerTest, BinaryAndDistinctPlans) {
  EXPECT_EQ(ChoosePlan(Analyze("SELECT timestamp FROM taipei WHERE "
                               "class = 'car' FNR WITHIN 0.01"),
                       stream_)
                .kind,
            PlanKind::kBinaryDetection);
  EXPECT_EQ(ChoosePlan(Analyze("SELECT COUNT(DISTINCT trackid) FROM taipei "
                               "WHERE class = 'car'"),
                       stream_)
                .kind,
            PlanKind::kTrackerCountDistinct);
}

TEST_F(OptimizerTest, PlanKindNamesDistinct) {
  EXPECT_STRNE(PlanKindName(PlanKind::kSpecializedAggregation),
               PlanKindName(PlanKind::kAqpAggregation));
  EXPECT_STRNE(PlanKindName(PlanKind::kImportanceScrubbing),
               PlanKindName(PlanKind::kScanScrubbing));
}

}  // namespace
}  // namespace blazeit
