// src/storage/ coverage: byte-exact round trips through the versioned
// segment format, distinct rejection Statuses for every corruption mode
// (truncation, bad magic, version skew, checksum failure, stale rename),
// and read/write-through behaviour of PersistentCachedDetector.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "detect/simulated_detector.h"
#include "obs/metrics.h"
#include "storage/detection_store.h"
#include "storage/persistent_cached_detector.h"
#include "storage/record_format.h"
#include "storage/segment_sketch.h"
#include "storage/store_artifact_cache.h"
#include "testing/test_util.h"
#include "util/crc32.h"
#include "util/random.h"
#include "video/datasets.h"

namespace blazeit {
namespace {

namespace fs = std::filesystem;

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            (std::string("blazeit-store-") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Path of the single segment file in dir_ (fails the test if != 1).
  std::string OnlySegmentPath() {
    std::vector<std::string> segments;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      segments.push_back(entry.path().string());
    }
    EXPECT_EQ(segments.size(), 1u);
    return segments.empty() ? std::string() : segments.front();
  }

  std::string dir_;
};

std::vector<Detection> RandomDetections(Rng* rng, int count,
                                        bool with_features) {
  std::vector<Detection> dets;
  for (int i = 0; i < count; ++i) {
    Detection d;
    d.class_id = static_cast<int>(rng->UniformInt(0, kNumClasses - 1));
    d.rect.xmin = rng->Uniform();
    d.rect.ymin = rng->Uniform();
    d.rect.xmax = d.rect.xmin + rng->Uniform(0.0, 0.3);
    d.rect.ymax = d.rect.ymin + rng->Uniform(0.0, 0.3);
    d.score = rng->Uniform();
    if (with_features) {
      for (int f = 0; f < 3; ++f) {
        d.features.push_back(static_cast<float>(rng->Uniform()));
      }
    }
    dets.push_back(d);
  }
  return dets;
}

void ExpectSameDetections(const std::vector<Detection>& a,
                          const std::vector<Detection>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].class_id, b[i].class_id);
    // operator== on Rect compares exact doubles: the format must preserve
    // every bit, not approximate.
    EXPECT_EQ(a[i].rect, b[i].rect);
    EXPECT_EQ(a[i].score, b[i].score);
    EXPECT_EQ(a[i].features, b[i].features);
  }
}

TEST_F(StorageTest, Crc32MatchesKnownVector) {
  // The canonical CRC-32 check value ("123456789" -> 0xCBF43926).
  const char* msg = "123456789";
  EXPECT_EQ(Crc32(msg, 9), 0xCBF43926u);
  // Incremental chunks agree with the one-shot value.
  uint32_t state = Crc32Update(kCrc32Init, msg, 4);
  state = Crc32Update(state, msg + 4, 5);
  EXPECT_EQ(Crc32Finalize(state), 0xCBF43926u);
}

TEST_F(StorageTest, DetectionsPayloadRoundTrip) {
  Rng rng(7);
  std::vector<Detection> dets = RandomDetections(&rng, 5, true);
  auto decoded = DecodeDetectionsPayload(EncodeDetectionsPayload(dets));
  BLAZEIT_ASSERT_OK(decoded);
  ExpectSameDetections(decoded.value(), dets);

  auto empty = DecodeDetectionsPayload(EncodeDetectionsPayload({}));
  BLAZEIT_ASSERT_OK(empty);
  EXPECT_TRUE(empty.value().empty());
}

TEST_F(StorageTest, DetectionsDecodeRejectsImpossibleCountWithoutAllocating) {
  // A payload from another record kind misread as detections (the sketch
  // rebuilder and repair validation probe arbitrary namespaces) can open
  // with an enormous bit pattern; decode must fail with ParseError before
  // reserving, not throw bad_alloc. 1e30f's little-endian bytes start a
  // ~3.4e9 row claim.
  auto floats = DecodeDetectionsPayload(EncodeFloatsPayload({1e30f, 0.0f}));
  EXPECT_EQ(floats.status().code(), StatusCode::kParseError);

  std::string hostile(sizeof(uint32_t), '\xff');
  auto max_count = DecodeDetectionsPayload(hostile);
  EXPECT_EQ(max_count.status().code(), StatusCode::kParseError);
}

TEST_F(StorageTest, StoreRoundTripProperty) {
  // Random detections -> Put -> Flush -> reopen -> byte-identical Get, over
  // several namespaces and 100 random frames each.
  Rng rng(42);
  std::vector<uint64_t> namespaces = {0xAAAA1111, 0xBBBB2222, 0xCCCC3333};
  std::map<std::pair<uint64_t, int64_t>, std::vector<Detection>> expected;
  {
    auto store = DetectionStore::Open(dir_);
    BLAZEIT_ASSERT_OK(store);
    for (uint64_t ns : namespaces) {
      for (int i = 0; i < 100; ++i) {
        int64_t frame = rng.UniformInt(0, 1000000);
        auto dets = RandomDetections(
            &rng, static_cast<int>(rng.UniformInt(0, 6)), rng.Bernoulli(0.5));
        // Skip duplicate frame draws: the store keeps the first payload per
        // (namespace, frame), so a re-draw with different detections would
        // make `expected` disagree with it.
        if (!expected.emplace(std::make_pair(ns, frame), dets).second) {
          continue;
        }
        BLAZEIT_ASSERT_OK(store.value()->PutDetections(ns, frame, dets));
      }
    }
    BLAZEIT_ASSERT_OK(store.value()->Flush());
  }
  auto reopened = DetectionStore::Open(dir_);
  BLAZEIT_ASSERT_OK(reopened);
  EXPECT_EQ(reopened.value()->TotalRecords(),
            static_cast<int64_t>(expected.size()));
  for (const auto& [key, dets] : expected) {
    ASSERT_TRUE(reopened.value()->Contains(key.first, key.second));
    auto got = reopened.value()->GetDetections(key.first, key.second);
    BLAZEIT_ASSERT_OK(got);
    ExpectSameDetections(got.value(), dets);
  }
}

TEST_F(StorageTest, FloatsRoundTripAndScan) {
  const uint64_t ns = 0xF10A75;
  {
    auto store = DetectionStore::Open(dir_);
    BLAZEIT_ASSERT_OK(store);
    BLAZEIT_ASSERT_OK(store.value()->PutFloats(ns, 3, {1.5f, -2.25f}));
    BLAZEIT_ASSERT_OK(store.value()->PutFloats(ns, 1, {0.125f}));
    BLAZEIT_ASSERT_OK(store.value()->Flush());
    // Unflushed pending records are also visible.
    BLAZEIT_ASSERT_OK(store.value()->PutFloats(ns, 2, {7.0f}));
    std::vector<int64_t> order;
    BLAZEIT_ASSERT_OK(store.value()->Scan(
        ns, [&order](int64_t frame, const std::string&) {
          order.push_back(frame);
          return Status::OK();
        }));
    EXPECT_EQ(order, (std::vector<int64_t>{1, 2, 3}));
  }
  auto reopened = DetectionStore::Open(dir_);
  BLAZEIT_ASSERT_OK(reopened);
  auto floats = reopened.value()->GetFloats(ns, 3);
  BLAZEIT_ASSERT_OK(floats);
  EXPECT_EQ(floats.value(), (std::vector<float>{1.5f, -2.25f}));
  auto missing = reopened.value()->GetFloats(ns, 99);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST_F(StorageTest, MultipleFlushesMergeAcrossSegments) {
  const uint64_t ns = 0x5E65;
  {
    auto store = DetectionStore::Open(dir_);
    BLAZEIT_ASSERT_OK(store);
    BLAZEIT_ASSERT_OK(store.value()->PutFloats(ns, 1, {1.0f}));
    BLAZEIT_ASSERT_OK(store.value()->Flush());
    BLAZEIT_ASSERT_OK(store.value()->PutFloats(ns, 2, {2.0f}));
    BLAZEIT_ASSERT_OK(store.value()->Flush());
  }
  auto reopened = DetectionStore::Open(dir_);
  BLAZEIT_ASSERT_OK(reopened);
  EXPECT_EQ(reopened.value()->TotalRecords(), 2);
  EXPECT_TRUE(reopened.value()->Contains(ns, 1));
  EXPECT_TRUE(reopened.value()->Contains(ns, 2));
}

// --- corruption rejection: each failure mode has its own StatusCode ---

class CorruptionTest : public StorageTest {
 protected:
  /// Builds a one-segment store and returns the segment path.
  std::string BuildSegment() {
    auto store = DetectionStore::Open(dir_);
    EXPECT_TRUE(store.ok());
    Rng rng(3);
    for (int64_t frame = 0; frame < 20; ++frame) {
      EXPECT_TRUE(store.value()
                      ->PutDetections(kNs, frame,
                                      RandomDetections(&rng, 3, false))
                      .ok());
    }
    EXPECT_TRUE(store.value()->Flush().ok());
    return OnlySegmentPath();
  }

  static constexpr uint64_t kNs = 0xDEAD0001;
};

TEST_F(CorruptionTest, TruncatedFileRejected) {
  std::string path = BuildSegment();
  const auto full_size = fs::file_size(path);
  fs::resize_file(path, full_size - 7);
  auto reopened = DetectionStore::Open(dir_);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(reopened.status().message().find("truncated"), std::string::npos)
      << reopened.status().ToString();

  // Truncation inside the file header is also OutOfRange.
  fs::resize_file(path, kStoreHeaderBytes / 2);
  auto header_cut = DetectionStore::Open(dir_);
  ASSERT_FALSE(header_cut.ok());
  EXPECT_EQ(header_cut.status().code(), StatusCode::kOutOfRange);
}

TEST_F(CorruptionTest, BadMagicRejected) {
  std::string path = BuildSegment();
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(0);
  f.write("NOTADET1", 8);
  f.close();
  auto reopened = DetectionStore::Open(dir_);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(reopened.status().message().find("magic"), std::string::npos)
      << reopened.status().ToString();
}

TEST_F(CorruptionTest, VersionMismatchRejected) {
  std::string path = BuildSegment();
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(8);  // format_version field
  const uint32_t future_version = kStoreFormatVersion + 1;
  f.write(reinterpret_cast<const char*>(&future_version),
          sizeof(future_version));
  f.close();
  auto reopened = DetectionStore::Open(dir_);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(reopened.status().message().find("version"), std::string::npos)
      << reopened.status().ToString();
}

TEST_F(CorruptionTest, ChecksumFailureRejected) {
  std::string path = BuildSegment();
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  // Flip one byte inside the first record's *payload* (file header + record
  // header + 2), so record framing stays intact and the CRC check is what
  // must catch the damage.
  const auto target =
      static_cast<std::streamoff>(kStoreHeaderBytes + kRecordHeaderBytes + 2);
  f.seekg(target);
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(target);
  f.write(&byte, 1);
  f.close();
  auto reopened = DetectionStore::Open(dir_);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kParseError);
}

TEST_F(CorruptionTest, StaleRenamedSegmentRejected) {
  std::string path = BuildSegment();
  // Rename under a different namespace: the filename no longer matches the
  // header fingerprint, as after copying caches between incompatible
  // configs.
  std::string renamed = path;
  size_t pos = renamed.find("dead0001");
  ASSERT_NE(pos, std::string::npos) << renamed;
  renamed.replace(pos, 8, "dead0002");
  fs::rename(path, renamed);
  auto reopened = DetectionStore::Open(dir_);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(reopened.status().message().find("stale"), std::string::npos)
      << reopened.status().ToString();
}

TEST_F(CorruptionTest, TempFilesIgnored) {
  BuildSegment();
  // A concurrent writer's in-flight temp file must not break Open.
  std::ofstream tmp(fs::path(dir_) / "ns-0000000000000001-99.seg.tmp",
                    std::ios::binary);
  tmp << "partial garbage";
  tmp.close();
  auto reopened = DetectionStore::Open(dir_);
  BLAZEIT_ASSERT_OK(reopened);
  EXPECT_EQ(reopened.value()->TotalRecords(), 20);
}

// --- PersistentCachedDetector ---

/// Wrapper that counts how often the inner detector actually runs.
class CountingDetector : public ObjectDetector {
 public:
  explicit CountingDetector(const ObjectDetector* inner) : inner_(inner) {}
  std::vector<Detection> Detect(const SyntheticVideo& video,
                                int64_t frame) const override {
    ++calls_;
    return inner_->Detect(video, frame);
  }
  std::string name() const override { return inner_->name(); }
  uint64_t ParamsFingerprint() const override {
    return inner_->ParamsFingerprint();
  }
  int64_t calls() const { return calls_; }

 private:
  const ObjectDetector* inner_;
  mutable int64_t calls_ = 0;
};

TEST_F(StorageTest, PersistentDetectorReadsThroughWarmStore) {
  auto video = SyntheticVideo::Create(TaipeiConfig(), 5, 200).value();
  SimulatedDetector inner;
  std::vector<std::vector<Detection>> cold_results;
  {
    auto store = DetectionStore::Open(dir_);
    BLAZEIT_ASSERT_OK(store);
    CountingDetector counting(&inner);
    PersistentCachedDetector detector(&counting, store.value().get());
    for (int64_t t = 0; t < 50; ++t) {
      cold_results.push_back(detector.Detect(*video, t));
    }
    EXPECT_EQ(counting.calls(), 50);
    EXPECT_EQ(detector.store_misses(), 50);
    // Store flushes when it goes out of scope.
  }
  {
    auto store = DetectionStore::Open(dir_);
    BLAZEIT_ASSERT_OK(store);
    CountingDetector counting(&inner);
    PersistentCachedDetector detector(&counting, store.value().get());
    for (int64_t t = 0; t < 50; ++t) {
      auto warm = detector.Detect(*video, t);
      ExpectSameDetections(warm, cold_results[static_cast<size_t>(t)]);
    }
    // Every frame came from disk; the oracle never ran.
    EXPECT_EQ(counting.calls(), 0);
    EXPECT_EQ(detector.store_hits(), 50);
  }
}

TEST_F(StorageTest, PersistentDetectorKeysBySceneNotSeed) {
  // Two different streams sharing a seed must not collide in a shared
  // store (the catalog reuses day seeds across every stream).
  auto taipei = SyntheticVideo::Create(TaipeiConfig(), 101, 100).value();
  auto rialto = SyntheticVideo::Create(RialtoConfig(), 101, 100).value();
  SimulatedDetector inner;
  auto store = DetectionStore::Open(dir_);
  BLAZEIT_ASSERT_OK(store);
  PersistentCachedDetector detector(&inner, store.value().get());
  EXPECT_NE(detector.StreamNamespace(*taipei),
            detector.StreamNamespace(*rialto));
  for (int64_t t = 0; t < 20; ++t) {
    ExpectSameDetections(detector.Detect(*taipei, t),
                         inner.Detect(*taipei, t));
    ExpectSameDetections(detector.Detect(*rialto, t),
                         inner.Detect(*rialto, t));
  }
}

TEST_F(StorageTest, CompactMergesSegmentsAndDropsShadowedDuplicates) {
  constexpr uint64_t kNs = 0xC0FFEE;
  // Two writers sharing the directory put overlapping frames with
  // *different* payloads (simulating the writer-bug scenario compaction
  // must not make worse): first-write-wins resolution must survive the
  // rewrite byte for byte.
  {
    auto first = DetectionStore::Open(dir_);
    BLAZEIT_ASSERT_OK(first.status());
    for (int64_t f = 0; f < 50; ++f) {
      std::string payload = "first-";
      payload += std::to_string(f);
      BLAZEIT_ASSERT_OK(first.value()->PutRaw(kNs, f, std::move(payload)));
    }
    BLAZEIT_ASSERT_OK(first.value()->Flush());
    // The second writer flushes to a scratch directory and its segment is
    // moved in afterwards — a store opened on dir_ now would see the
    // first segment and refuse the duplicate Puts, while a genuinely
    // concurrent process's publish looks exactly like this rename.
    const std::string scratch = dir_ + "-writer2";
    fs::remove_all(scratch);
    auto second = DetectionStore::Open(scratch);
    BLAZEIT_ASSERT_OK(second.status());
    for (int64_t f = 25; f < 75; ++f) {
      std::string payload = "second-";
      payload += std::to_string(f);
      BLAZEIT_ASSERT_OK(second.value()->PutRaw(kNs, f, std::move(payload)));
    }
    BLAZEIT_ASSERT_OK(second.value()->Flush());
    for (const auto& entry : fs::directory_iterator(scratch)) {
      fs::rename(entry.path(),
                 fs::path(dir_) / entry.path().filename());
    }
    fs::remove_all(scratch);
  }

  auto store = DetectionStore::Open(dir_);
  BLAZEIT_ASSERT_OK(store.status());
  EXPECT_EQ(store.value()->RecordCount(kNs), 75);
  EXPECT_EQ(store.value()->ShadowedRecords(), 25);

  // Capture the pre-compaction resolution of every frame.
  std::vector<std::string> before;
  for (int64_t f = 0; f < 75; ++f) {
    auto payload = store.value()->GetRaw(kNs, f);
    BLAZEIT_ASSERT_OK(payload.status());
    before.push_back(payload.value());
  }

  auto stats = store.value()->Compact();
  BLAZEIT_ASSERT_OK(stats.status());
  EXPECT_EQ(stats.value().namespaces_compacted, 1);
  EXPECT_EQ(stats.value().segments_before, 2);
  EXPECT_EQ(stats.value().segments_after, 1);
  EXPECT_EQ(stats.value().records_kept, 75);
  EXPECT_EQ(stats.value().duplicates_dropped, 25);
  EXPECT_EQ(store.value()->ShadowedRecords(), 0);

  // Same store object still resolves identically...
  for (int64_t f = 0; f < 75; ++f) {
    auto payload = store.value()->GetRaw(kNs, f);
    BLAZEIT_ASSERT_OK(payload.status());
    EXPECT_EQ(payload.value(), before[static_cast<size_t>(f)]) << f;
  }

  // ...and so does a fresh open of the compacted directory (one segment,
  // same winners, nothing shadowed).
  auto reopened = DetectionStore::Open(dir_);
  BLAZEIT_ASSERT_OK(reopened.status());
  EXPECT_EQ(reopened.value()->RecordCount(kNs), 75);
  EXPECT_EQ(reopened.value()->ShadowedRecords(), 0);
  int64_t segment_files = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    (void)entry;
    ++segment_files;
  }
  EXPECT_EQ(segment_files, 1);
  for (int64_t f = 0; f < 75; ++f) {
    auto payload = reopened.value()->GetRaw(kNs, f);
    BLAZEIT_ASSERT_OK(payload.status());
    EXPECT_EQ(payload.value(), before[static_cast<size_t>(f)]) << f;
  }
}

TEST_F(StorageTest, CompactIsNoOpOnAlreadyCompactStore) {
  constexpr uint64_t kNs = 0xBEEF;
  auto store = DetectionStore::Open(dir_);
  BLAZEIT_ASSERT_OK(store.status());
  for (int64_t f = 0; f < 10; ++f) {
    BLAZEIT_ASSERT_OK(store.value()->PutRaw(kNs, f, "payload"));
  }
  BLAZEIT_ASSERT_OK(store.value()->Flush());
  const std::string segment = OnlySegmentPath();

  auto stats = store.value()->Compact();
  BLAZEIT_ASSERT_OK(stats.status());
  EXPECT_EQ(stats.value().namespaces_compacted, 0);
  EXPECT_EQ(stats.value().duplicates_dropped, 0);
  EXPECT_EQ(stats.value().records_kept, 10);
  // The single clean segment is left untouched, not rewritten.
  EXPECT_EQ(OnlySegmentPath(), segment);
}

TEST_F(StorageTest, CompactFlushesPendingRecordsFirst) {
  constexpr uint64_t kNs = 0xFEED;
  auto store = DetectionStore::Open(dir_);
  BLAZEIT_ASSERT_OK(store.status());
  for (int64_t f = 0; f < 5; ++f) {
    std::string payload = "p";
    payload += std::to_string(f);
    BLAZEIT_ASSERT_OK(store.value()->PutRaw(kNs, f, std::move(payload)));
  }
  EXPECT_EQ(store.value()->pending_records(), 5);
  auto stats = store.value()->Compact();
  BLAZEIT_ASSERT_OK(stats.status());
  EXPECT_EQ(store.value()->pending_records(), 0);
  EXPECT_EQ(store.value()->RecordCount(kNs), 5);
  auto reopened = DetectionStore::Open(dir_);
  BLAZEIT_ASSERT_OK(reopened.status());
  EXPECT_EQ(reopened.value()->RecordCount(kNs), 5);
}

TEST_F(StorageTest, RepairReplacesRecordInPlaceAndSurvivesReopen) {
  constexpr uint64_t kNs = 0x4E9A12;  // arbitrary namespace
  const std::string good = EncodeFloatsPayload({1.0f, 2.0f, 3.0f});
  const std::string fixed = EncodeFloatsPayload({7.0f, 8.0f});
  {
    auto store = DetectionStore::Open(dir_);
    BLAZEIT_ASSERT_OK(store.status());
    for (int64_t f = 0; f < 10; ++f) {
      BLAZEIT_ASSERT_OK(store.value()->PutRaw(kNs, f, good));
    }
    BLAZEIT_ASSERT_OK(store.value()->Flush());
  }

  auto store = DetectionStore::Open(dir_);
  BLAZEIT_ASSERT_OK(store.status());
  // A plain Put cannot override the indexed record (first write wins)...
  BLAZEIT_ASSERT_OK(store.value()->PutRaw(kNs, 5, fixed));
  EXPECT_EQ(store.value()->GetRaw(kNs, 5).value(), good);
  // ...Repair can, immediately and durably.
  BLAZEIT_ASSERT_OK(store.value()->Repair(kNs, 5, fixed));
  EXPECT_EQ(store.value()->GetRaw(kNs, 5).value(), fixed);
  for (int64_t f = 0; f < 10; ++f) {
    if (f == 5) continue;
    EXPECT_EQ(store.value()->GetRaw(kNs, f).value(), good) << f;
  }
  // The namespace was rewritten into one segment; a fresh open resolves
  // the repaired payload too.
  EXPECT_EQ(OnlySegmentPath().empty(), false);
  auto reopened = DetectionStore::Open(dir_);
  BLAZEIT_ASSERT_OK(reopened.status());
  EXPECT_EQ(reopened.value()->RecordCount(kNs), 10);
  EXPECT_EQ(reopened.value()->GetRaw(kNs, 5).value(), fixed);

  // Repairing an absent record degrades to a plain put.
  BLAZEIT_ASSERT_OK(reopened.value()->Repair(kNs, 99, fixed));
  EXPECT_EQ(reopened.value()->GetRaw(kNs, 99).value(), fixed);

  // Repairing the same record again wins over the first repair, across
  // a reopen too (newer repair segments sort before older ones).
  const std::string fixed2 = EncodeFloatsPayload({9.0f});
  BLAZEIT_ASSERT_OK(reopened.value()->Repair(kNs, 5, fixed2));
  EXPECT_EQ(reopened.value()->GetRaw(kNs, 5).value(), fixed2);
  auto again = DetectionStore::Open(dir_);
  BLAZEIT_ASSERT_OK(again.status());
  EXPECT_EQ(again.value()->GetRaw(kNs, 5).value(), fixed2);
}

TEST_F(StorageTest, TargetedRepairHealsWholeNamespaceInOnePass) {
  constexpr uint64_t kNs = 0xFA57;
  const std::string good = EncodeFloatsPayload({1.0f});
  {
    auto store = DetectionStore::Open(dir_);
    BLAZEIT_ASSERT_OK(store.status());
    BLAZEIT_ASSERT_OK(store.value()->PutRaw(kNs, 0, good));
    // Two poisoned records (CRC-valid, undecodable).
    BLAZEIT_ASSERT_OK(store.value()->PutRaw(kNs, 1, "garbage"));
    BLAZEIT_ASSERT_OK(store.value()->PutRaw(kNs, 2, "rubbish"));
    BLAZEIT_ASSERT_OK(store.value()->Flush());
  }
  auto store = DetectionStore::Open(dir_);
  BLAZEIT_ASSERT_OK(store.status());
  // Repairing record 1 rewrites the namespace and drops record 2 too —
  // one rewrite heals everything instead of one rewrite per poisoned
  // record read.
  BLAZEIT_ASSERT_OK(store.value()->Repair(kNs, 1, good));
  EXPECT_EQ(store.value()->GetRaw(kNs, 0).value(), good);
  EXPECT_EQ(store.value()->GetRaw(kNs, 1).value(), good);
  EXPECT_EQ(store.value()->GetRaw(kNs, 2).status().code(),
            StatusCode::kNotFound);
}

TEST_F(StorageTest, StoreWideRepairDropsUndecodableRecords) {
  constexpr uint64_t kNs = 0xBAD;
  const std::string good = EncodeDoublesPayload({0.25, 0.5});
  {
    auto store = DetectionStore::Open(dir_);
    BLAZEIT_ASSERT_OK(store.status());
    for (int64_t f = 0; f < 5; ++f) {
      BLAZEIT_ASSERT_OK(store.value()->PutRaw(kNs, f, good));
    }
    // CRC-valid but semantically malformed: 7 bytes decode under no
    // engine codec (not detections, not a float/double multiple).
    BLAZEIT_ASSERT_OK(store.value()->PutRaw(kNs, 5, "garbage"));
    BLAZEIT_ASSERT_OK(store.value()->Flush());
  }

  auto store = DetectionStore::Open(dir_);  // CRC scan passes
  BLAZEIT_ASSERT_OK(store.status());
  EXPECT_FALSE(store.value()->GetDoubles(kNs, 5).ok());

  auto stats = store.value()->Repair();
  BLAZEIT_ASSERT_OK(stats.status());
  EXPECT_EQ(stats.value().records_scanned, 6);
  EXPECT_EQ(stats.value().malformed_dropped, 1);
  EXPECT_EQ(stats.value().namespaces_rewritten, 1);
  // The poisoned record is now a plain miss; the good ones survive.
  EXPECT_EQ(store.value()->GetRaw(kNs, 5).status().code(),
            StatusCode::kNotFound);
  for (int64_t f = 0; f < 5; ++f) {
    EXPECT_EQ(store.value()->GetRaw(kNs, f).value(), good) << f;
  }
  auto reopened = DetectionStore::Open(dir_);
  BLAZEIT_ASSERT_OK(reopened.status());
  EXPECT_EQ(reopened.value()->RecordCount(kNs), 5);

  // A clean store is a no-op scan.
  auto clean = reopened.value()->Repair();
  BLAZEIT_ASSERT_OK(clean.status());
  EXPECT_EQ(clean.value().malformed_dropped, 0);
  EXPECT_EQ(clean.value().namespaces_rewritten, 0);
}

TEST_F(StorageTest, PersistentDetectorRepairsCorruptRecordInPlace) {
  auto video = SyntheticVideo::Create(TaipeiConfig(), 77, 10);
  BLAZEIT_ASSERT_OK(video.status());
  SimulatedDetector inner;
  uint64_t ns = 0;
  {
    auto store = DetectionStore::Open(dir_);
    BLAZEIT_ASSERT_OK(store.status());
    PersistentCachedDetector detector(&inner, store.value().get());
    ns = detector.StreamNamespace(*video.value());
    // Poison frame 3 before the detector ever writes it: CRC-valid, but
    // not a decodable detections payload.
    BLAZEIT_ASSERT_OK(store.value()->PutRaw(ns, 3, "garbage!"));
    BLAZEIT_ASSERT_OK(store.value()->Flush());
  }

  std::vector<Detection> recomputed;
  {
    auto store = DetectionStore::Open(dir_);
    BLAZEIT_ASSERT_OK(store.status());
    EXPECT_FALSE(store.value()->GetDetections(ns, 3).ok());
    PersistentCachedDetector detector(&inner, store.value().get());
    // Decode fails -> recompute -> Repair in place (not a shadowed Put).
    recomputed = detector.Detect(*video.value(), 3);
    EXPECT_EQ(detector.store_misses(), 1);
    auto healed = store.value()->GetDetections(ns, 3);
    BLAZEIT_ASSERT_OK(healed.status());
    EXPECT_EQ(healed.value().size(), recomputed.size());
  }

  // The repair is durable: a third process reads the healed record as a
  // plain store hit — no warning, no recompute, ever again.
  auto store = DetectionStore::Open(dir_);
  BLAZEIT_ASSERT_OK(store.status());
  auto healed = store.value()->GetDetections(ns, 3);
  BLAZEIT_ASSERT_OK(healed.status());
  ASSERT_EQ(healed.value().size(), recomputed.size());
  for (size_t i = 0; i < recomputed.size(); ++i) {
    EXPECT_EQ(healed.value()[i].class_id, recomputed[i].class_id);
    EXPECT_EQ(healed.value()[i].score, recomputed[i].score);
  }
  PersistentCachedDetector detector(&inner, store.value().get());
  (void)detector.Detect(*video.value(), 3);
  EXPECT_EQ(detector.store_hits(), 1);
  EXPECT_EQ(detector.store_misses(), 0);
}

TEST_F(StorageTest, ArtifactCacheRepairsCorruptRecordInPlace) {
  constexpr uint64_t kNs = 42;
  const uint64_t salted = HashCombine(kNs, kDerivedArtifactEpoch);
  const std::vector<float> values = {1.5f, -2.5f, 3.25f};
  {
    auto store = DetectionStore::Open(dir_);
    BLAZEIT_ASSERT_OK(store.status());
    BLAZEIT_ASSERT_OK(store.value()->PutRaw(salted, 7, "bad"));
    BLAZEIT_ASSERT_OK(store.value()->Flush());
  }

  auto store = DetectionStore::Open(dir_);
  BLAZEIT_ASSERT_OK(store.status());
  StoreArtifactCache cache(store.value().get());
  std::vector<float> out;
  // Read fails (corrupt, not NotFound) and is remembered...
  EXPECT_FALSE(cache.GetFrameFloats(kNs, 7, &out));
  EXPECT_EQ(cache.misses(), 1);
  // ...so the caller's recompute-and-put repairs the record in place.
  cache.PutFrameFloats(kNs, 7, values);
  EXPECT_EQ(cache.repairs(), 1);
  EXPECT_TRUE(cache.GetFrameFloats(kNs, 7, &out));
  EXPECT_EQ(out, values);

  auto reopened = DetectionStore::Open(dir_);
  BLAZEIT_ASSERT_OK(reopened.status());
  auto healed = reopened.value()->GetFloats(salted, 7);
  BLAZEIT_ASSERT_OK(healed.status());
  EXPECT_EQ(healed.value(), values);
}

TEST_F(StorageTest, CompactCarriesRepairGenerationPastStrandedSegments) {
  // Regression: Compact() used to write a *regular*-named segment even
  // when the namespace had live repair generations. A stranded older
  // repair segment (a crashed unlink) sorts before every regular name, so
  // it would shadow the compacted view and resurrect the pre-repair
  // payload. Compacting a repaired namespace must advance the repair
  // generation instead.
  constexpr uint64_t kNs = 0xDEC0DE;
  auto store = DetectionStore::Open(dir_);
  BLAZEIT_ASSERT_OK(store.status());
  for (int64_t f = 0; f < 10; ++f) {
    BLAZEIT_ASSERT_OK(store.value()->PutRaw(kNs, f, "original"));
  }
  BLAZEIT_ASSERT_OK(store.value()->Flush());

  // First repair: the namespace is rewritten into repair generation 1.
  BLAZEIT_ASSERT_OK(store.value()->Repair(kNs, 5, "repaired-once"));
  const std::string gen1_segment = OnlySegmentPath();
  std::string gen1_bytes;
  {
    std::ifstream in(gen1_segment, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    gen1_bytes = buf.str();
  }

  // Second repair supersedes it (generation 2, generation 1 unlinked).
  BLAZEIT_ASSERT_OK(store.value()->Repair(kNs, 5, "repaired-twice"));
  EXPECT_EQ(store.value()->GetRaw(kNs, 5).value(), "repaired-twice");

  // A later flush gives the namespace a second segment so Compact has
  // something to merge.
  BLAZEIT_ASSERT_OK(store.value()->PutRaw(kNs, 10, "late"));
  BLAZEIT_ASSERT_OK(store.value()->Flush());
  auto stats = store.value()->Compact();
  BLAZEIT_ASSERT_OK(stats.status());
  EXPECT_EQ(stats.value().namespaces_compacted, 1);

  // Strand the generation-1 repair segment, as a failed unlink would.
  {
    std::ofstream out(gen1_segment, std::ios::binary);
    out << gen1_bytes;
  }

  // The compacted segment must still win over the stranded stale repair:
  // frame 5 resolves to the second repair, not the first.
  auto reopened = DetectionStore::Open(dir_);
  BLAZEIT_ASSERT_OK(reopened.status());
  EXPECT_EQ(reopened.value()->GetRaw(kNs, 5).value(), "repaired-twice");
  EXPECT_EQ(reopened.value()->GetRaw(kNs, 10).value(), "late");

  // And the generation survives the round trip: a repair *after* the
  // compaction still wins over everything, across another reopen.
  BLAZEIT_ASSERT_OK(reopened.value()->Repair(kNs, 5, "repaired-thrice"));
  EXPECT_EQ(reopened.value()->GetRaw(kNs, 5).value(), "repaired-thrice");
  auto again = DetectionStore::Open(dir_);
  BLAZEIT_ASSERT_OK(again.status());
  EXPECT_EQ(again.value()->GetRaw(kNs, 5).value(), "repaired-thrice");
}

namespace sketchtest {

/// One detection of `class_id` centered in the unit frame.
Detection Det(int class_id, double score = 0.9) {
  Detection d;
  d.class_id = class_id;
  d.rect = {0.4, 0.4, 0.6, 0.6};
  d.score = score;
  return d;
}

}  // namespace sketchtest

TEST_F(StorageTest, SketchBuildProbeAndInvalidation) {
  constexpr uint64_t kNs = 0x5EEC;
  constexpr int64_t kFrames = 2 * kSketchBlockFrames;  // two blocks
  constexpr int64_t kBusFrame = kSketchBlockFrames + 100;
  auto store = DetectionStore::Open(dir_);
  BLAZEIT_ASSERT_OK(store.status());
  for (int64_t f = 0; f < kFrames; ++f) {
    std::vector<Detection> dets = {sketchtest::Det(0)};  // class 0 everywhere
    if (f == kBusFrame) dets.push_back(sketchtest::Det(1));
    BLAZEIT_ASSERT_OK(
        store.value()->PutRaw(kNs, f, EncodeDetectionsPayload(dets)));
  }
  BLAZEIT_ASSERT_OK(store.value()->Flush());
  BLAZEIT_ASSERT_OK(store.value()->BuildSketches(kNs));

  auto infos = store.value()->ListSketches();
  BLAZEIT_ASSERT_OK(infos.status());
  ASSERT_EQ(infos.value().size(), 1u);
  EXPECT_EQ(infos.value()[0].base_ns, kNs);
  EXPECT_EQ(infos.value()[0].blocks, 2);
  EXPECT_TRUE(infos.value()[0].current);

  SketchIndex index = SketchIndex::Load(store.value().get(), kNs);
  ASSERT_TRUE(index.valid());

  // Class 1 lives only in the second block: the probe prunes the first.
  SketchProbe bus_probe;
  bus_probe.score_threshold = 0.5;
  bus_probe.requirements = {{1, 1}};
  auto ranges = index.CandidateRanges(0, kFrames, bus_probe);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].begin, kSketchBlockFrames);
  EXPECT_EQ(ranges[0].end, kFrames);

  // Class 0 is everywhere: nothing can be pruned.
  SketchProbe car_probe;
  car_probe.score_threshold = 0.5;
  car_probe.requirements = {{0, 1}};
  auto all = index.CandidateRanges(0, kFrames, car_probe);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].begin, 0);
  EXPECT_EQ(all[0].end, kFrames);

  // An unflushed Put of a new frame makes the index stale (Load refuses —
  // conservative, never wrong answers)...
  BLAZEIT_ASSERT_OK(store.value()->PutRaw(
      kNs, kFrames, EncodeDetectionsPayload({sketchtest::Det(0)})));
  EXPECT_FALSE(SketchIndex::Load(store.value().get(), kNs).valid());
  auto stale = store.value()->ListSketches();
  BLAZEIT_ASSERT_OK(stale.status());
  ASSERT_EQ(stale.value().size(), 1u);
  EXPECT_FALSE(stale.value()[0].current);

  // ...and Flush refreshes it automatically: the namespace stays indexed.
  BLAZEIT_ASSERT_OK(store.value()->Flush());
  SketchIndex refreshed = SketchIndex::Load(store.value().get(), kNs);
  ASSERT_TRUE(refreshed.valid());
  EXPECT_EQ(refreshed.blocks().size(), 3u);  // one more (partial) block

  // Repair rewrites a payload and refreshes the sketches eagerly: after
  // repairing away the only class-1 detection, the probe refutes every
  // block.
  BLAZEIT_ASSERT_OK(store.value()->Repair(
      kNs, kBusFrame, EncodeDetectionsPayload({sketchtest::Det(0)})));
  SketchIndex repaired = SketchIndex::Load(store.value().get(), kNs);
  ASSERT_TRUE(repaired.valid());
  EXPECT_TRUE(repaired.CandidateRanges(0, kFrames, bus_probe).empty());

  // Compact preserves the resolved view, so the sketches stay current...
  auto stats = store.value()->Compact();
  BLAZEIT_ASSERT_OK(stats.status());
  EXPECT_TRUE(SketchIndex::Load(store.value().get(), kNs).valid());

  // ...including across a reopen.
  auto reopened = DetectionStore::Open(dir_);
  BLAZEIT_ASSERT_OK(reopened.status());
  SketchIndex persisted = SketchIndex::Load(reopened.value().get(), kNs);
  ASSERT_TRUE(persisted.valid());
  EXPECT_TRUE(persisted.CandidateRanges(0, kFrames, bus_probe).empty());

  // Dropping unindexes the namespace.
  BLAZEIT_ASSERT_OK(reopened.value()->DropSketches(kNs));
  EXPECT_FALSE(SketchIndex::Load(reopened.value().get(), kNs).valid());
  auto dropped = reopened.value()->ListSketches();
  BLAZEIT_ASSERT_OK(dropped.status());
  EXPECT_TRUE(dropped.value().empty());
}

TEST_F(StorageTest, AppendOnlyFlushRefreshesSketchTailIncrementally) {
  constexpr uint64_t kNs = 0xA99E;
  constexpr int64_t kFrames = 3 * kSketchBlockFrames;  // three full blocks
  constexpr int64_t kHole = 7;  // a gap in block 0, re-filled later
  auto store = DetectionStore::Open(dir_);
  BLAZEIT_ASSERT_OK(store.status());
  for (int64_t f = 0; f < kFrames; ++f) {
    if (f == kHole) continue;
    std::vector<Detection> dets = {sketchtest::Det(0)};
    if (f == 5) dets.push_back(sketchtest::Det(1));  // prefix-only class
    BLAZEIT_ASSERT_OK(
        store.value()->PutRaw(kNs, f, EncodeDetectionsPayload(dets)));
  }
  BLAZEIT_ASSERT_OK(store.value()->Flush());
  BLAZEIT_ASSERT_OK(store.value()->BuildSketches(kNs));

  obs::Counter* rebuilt = obs::MetricsRegistry::Global().GetCounter(
      "store.sketch_blocks_rebuilt", obs::Stability::kStable);
  obs::Counter* incremental = obs::MetricsRegistry::Global().GetCounter(
      "store.sketch_incremental_refreshes", obs::Stability::kStable);

  // A pure append past the tail: the flush refresh must rebuild only the
  // block containing the previous maximum frame and the new partial
  // block, copying the two untouched prefix blocks raw.
  int64_t rebuilt_before = rebuilt->value();
  int64_t incremental_before = incremental->value();
  for (int64_t f = kFrames; f < kFrames + 10; ++f) {
    BLAZEIT_ASSERT_OK(store.value()->PutRaw(
        kNs, f, EncodeDetectionsPayload({sketchtest::Det(0)})));
  }
  BLAZEIT_ASSERT_OK(store.value()->Flush());
  EXPECT_EQ(incremental->value(), incremental_before + 1);
  EXPECT_EQ(rebuilt->value() - rebuilt_before, 2);

  SketchIndex incremental_index = SketchIndex::Load(store.value().get(), kNs);
  ASSERT_TRUE(incremental_index.valid());
  ASSERT_EQ(incremental_index.blocks().size(), 4u);

  // The refreshed index is bit-identical to a from-scratch rebuild —
  // block by block, including the raw-copied prefix.
  BLAZEIT_ASSERT_OK(store.value()->BuildSketches(kNs));
  SketchIndex full_index = SketchIndex::Load(store.value().get(), kNs);
  ASSERT_TRUE(full_index.valid());
  ASSERT_EQ(full_index.blocks().size(), incremental_index.blocks().size());
  for (size_t b = 0; b < full_index.blocks().size(); ++b) {
    EXPECT_TRUE(incremental_index.blocks()[b] == full_index.blocks()[b])
        << "block " << b;
  }
  EXPECT_EQ(incremental_index.meta().base_record_count,
            full_index.meta().base_record_count);

  // A non-append flush (filling the old hole rewrites history below the
  // tail) must fall back to the full rebuild of all four blocks.
  rebuilt_before = rebuilt->value();
  incremental_before = incremental->value();
  BLAZEIT_ASSERT_OK(store.value()->PutRaw(
      kNs, kHole, EncodeDetectionsPayload({sketchtest::Det(0)})));
  BLAZEIT_ASSERT_OK(store.value()->Flush());
  EXPECT_EQ(incremental->value(), incremental_before);
  EXPECT_EQ(rebuilt->value() - rebuilt_before, 4);
  EXPECT_TRUE(SketchIndex::Load(store.value().get(), kNs).valid());
}

TEST_F(StorageTest, SketchRefusesNonDetectionsNamespace) {
  constexpr uint64_t kNs = 0xF10A7;
  auto store = DetectionStore::Open(dir_);
  BLAZEIT_ASSERT_OK(store.status());
  BLAZEIT_ASSERT_OK(
      store.value()->PutRaw(kNs, 0, EncodeFloatsPayload({1.0f, 2.0f})));
  BLAZEIT_ASSERT_OK(store.value()->Flush());
  Status built = store.value()->BuildSketches(kNs);
  EXPECT_EQ(built.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(store.value()->BuildSketches(0x404).code(), StatusCode::kNotFound);
}

TEST_F(StorageTest, SketchPayloadCodecRoundTrip) {
  SegmentSketch sketch;
  sketch.first_frame = 1024;
  sketch.covered = kSketchBlockFrames;
  sketch.frames_present = kSketchBlockFrames;
  sketch.frames_with_any = 100;
  ClassSketch cls;
  cls.class_id = 2;
  for (int b = 0; b < kSketchScoreBuckets; ++b) {
    cls.frames_ge1[b] = 100 - b;
    cls.max_count_ge[b] = 7;
  }
  cls.min_score = 0.25;
  cls.max_score = 0.875;
  cls.min_cx = 0.1;
  cls.max_cx = 0.9;
  cls.min_cy = 0.2;
  cls.max_cy = 0.8;
  cls.min_area = 0.01;
  cls.max_area = 0.04;
  sketch.classes.push_back(cls);
  sketch.class_bitmap = 1u << 2;
  auto decoded = DecodeSegmentSketchPayload(EncodeSegmentSketchPayload(sketch));
  BLAZEIT_ASSERT_OK(decoded);
  EXPECT_TRUE(decoded.value() == sketch);

  SketchMeta meta;
  meta.base_ns = 0xABCD;
  meta.base_record_count = 12345;
  meta.block_count = 25;
  auto meta_decoded = DecodeSketchMetaPayload(EncodeSketchMetaPayload(meta));
  BLAZEIT_ASSERT_OK(meta_decoded);
  EXPECT_EQ(meta_decoded.value().base_ns, meta.base_ns);
  EXPECT_EQ(meta_decoded.value().base_record_count, meta.base_record_count);
  EXPECT_EQ(meta_decoded.value().block_count, meta.block_count);

  // Truncations and garbage are rejected, never misdecoded.
  const std::string bytes = EncodeSegmentSketchPayload(sketch);
  for (size_t len : {size_t{0}, size_t{3}, bytes.size() - 1}) {
    EXPECT_FALSE(DecodeSegmentSketchPayload(bytes.substr(0, len)).ok());
  }
  EXPECT_FALSE(DecodeSketchMetaPayload(bytes).ok());
  EXPECT_FALSE(DecodeSegmentSketchPayload("garbage-bytes").ok());
}

TEST_F(StorageTest, DetectorNoiseChangesNamespace) {
  DetectorNoiseConfig noisy;
  noisy.box_jitter = 0.05;
  SimulatedDetector a, b(noisy);
  EXPECT_NE(a.ParamsFingerprint(), b.ParamsFingerprint());
  SimulatedDetector same;
  EXPECT_EQ(a.ParamsFingerprint(), same.ParamsFingerprint());
}

}  // namespace
}  // namespace blazeit
