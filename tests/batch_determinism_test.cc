// The batch layer's headline contract, asserted end to end: ExecuteBatch
// is *byte-identical* to calling Execute serially per query — answers,
// matched frames, selection rows, and simulated costs — at pool sizes 1
// (pool disabled), 2, and 8, even though the batch shares one NN training
// run and one per-frame sweep across each shared-plan group. Also covers
// the batch bookkeeping itself (grouping, sharing stats, error slots) and
// the QuerySession wrapper's cross-batch warm sweeps.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/query_session.h"
#include "core/shared_sweep.h"
#include "exec/thread_pool.h"
#include "testing/test_util.h"

namespace blazeit {
namespace {

::testing::AssertionResult BitsEqual(double a, double b) {
  if (std::memcmp(&a, &b, sizeof(double)) == 0) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ in bits";
}

/// The batch mixes every executor kind, exercises shared-plan grouping
/// (three aggregates + two scrubbings collapse to one group each), and
/// includes a mid-batch failure.
const char* kBatchQueries[] = {
    "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' "
    "ERROR WITHIN 0.1 AT CONFIDENCE 95%",
    "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' "
    "ERROR WITHIN 0.05 AT CONFIDENCE 95%",
    "SELECT COUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.2",
    "SELECT timestamp FROM taipei GROUP BY timestamp "
    "HAVING SUM(class='car') >= 2 LIMIT 5 GAP 50",
    "SELECT timestamp FROM taipei GROUP BY timestamp "
    "HAVING SUM(class='car') >= 2 LIMIT 3 GAP 20",
    "SELECT * FROM taipei WHERE class = 'bus' "
    "AND redness(content) >= 0.25 AND area(mask) > 20000 "
    "GROUP BY trackid HAVING COUNT(*) > 15",
    "SELECT timestamp FROM taipei WHERE class = 'bus' "
    "FNR WITHIN 0.01 FPR WITHIN 0.01",
    "SELECT timestamp FROM taipei WHERE class = 'bus' AND timestamp >= 30",
    "SELEC oops",  // parse error must land in its slot, not fail the batch
    "SELECT COUNT(DISTINCT trackid) FROM taipei WHERE class = 'car' "
    "AND timestamp <= 60",
};

class BatchDeterminismTest
    : public testutil::CatalogFixture<BatchDeterminismTest> {
 public:
  static DayLengths Lengths() { return testutil::SmallDays(2000, 2000, 4000); }

 protected:
  static void SetUpTestSuite() {
    CatalogFixture::SetUpTestSuite();
    engine_ = new BlazeItEngine(catalog_, testutil::SmallEngineOptions());
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
    CatalogFixture::TearDownTestSuite();
  }
  void TearDown() override {
    exec::ThreadPool::Instance().Reconfigure(
        exec::ThreadPool::ThreadsFromEnv());
  }

  static void ExpectSameOutput(const QueryOutput& batch,
                               const QueryOutput& serial) {
    EXPECT_EQ(batch.kind, serial.kind);
    EXPECT_EQ(batch.plan, serial.plan);
    EXPECT_TRUE(BitsEqual(batch.scalar, serial.scalar));
    EXPECT_EQ(batch.frames, serial.frames);
    ASSERT_EQ(batch.rows.size(), serial.rows.size());
    for (size_t r = 0; r < serial.rows.size(); ++r) {
      EXPECT_EQ(batch.rows[r].frame, serial.rows[r].frame);
      EXPECT_EQ(batch.rows[r].detection.class_id,
                serial.rows[r].detection.class_id);
      EXPECT_TRUE(BitsEqual(batch.rows[r].detection.score,
                            serial.rows[r].detection.score));
      EXPECT_EQ(batch.rows[r].detection.features,
                serial.rows[r].detection.features);
    }
    EXPECT_EQ(batch.cost.detection_calls(), serial.cost.detection_calls());
    EXPECT_EQ(batch.cost.specialized_nn_calls(),
              serial.cost.specialized_nn_calls());
    EXPECT_EQ(batch.cost.filter_calls(), serial.cost.filter_calls());
    EXPECT_EQ(batch.cost.training_frames(), serial.cost.training_frames());
    EXPECT_TRUE(
        BitsEqual(batch.cost.TotalSeconds(), serial.cost.TotalSeconds()));
    EXPECT_TRUE(
        BitsEqual(batch.cost.QuerySeconds(), serial.cost.QuerySeconds()));
    EXPECT_EQ(batch.plan_description, serial.plan_description);
  }

  static BlazeItEngine* engine_;
};

BlazeItEngine* BatchDeterminismTest::engine_ = nullptr;

TEST_F(BatchDeterminismTest, BatchMatchesSerialExecuteAtEveryPoolSize) {
  const std::vector<std::string> queries(std::begin(kBatchQueries),
                                         std::end(kBatchQueries));

  // Serial reference, computed once (Execute itself is thread-count
  // invariant per parallel_determinism_test).
  std::vector<Result<QueryOutput>> serial;
  for (const std::string& q : queries) serial.push_back(engine_->Execute(q));

  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    exec::ThreadPool::Instance().Reconfigure(threads);
    auto batch = engine_->ExecuteBatch(queries);
    BLAZEIT_ASSERT_OK(batch);
    const BatchOutput& out = batch.value();
    ASSERT_EQ(out.results.size(), queries.size());
    ASSERT_EQ(out.stats.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      SCOPED_TRACE("query[" + std::to_string(i) + "]: " + queries[i]);
      ASSERT_EQ(out.results[i].ok(), serial[i].ok());
      if (!serial[i].ok()) {
        EXPECT_EQ(out.results[i].status(), serial[i].status());
        continue;
      }
      ExpectSameOutput(out.results[i].value(), serial[i].value());
    }
  }
}

TEST_F(BatchDeterminismTest, SharedPlanGroupingCollapsesSameSweepQueries) {
  const std::vector<std::string> queries(std::begin(kBatchQueries),
                                         std::end(kBatchQueries));
  auto batch = engine_->ExecuteBatch(queries);
  BLAZEIT_ASSERT_OK(batch);
  const BatchOutput& out = batch.value();

  // 3 aggregates -> 1 group, 2 scrubbings -> 1 group, selection, binary
  // select, exhaustive, count-distinct -> 1 each (the parse error gets no
  // group).
  EXPECT_EQ(out.groups, 6);
  EXPECT_EQ(out.stats[0].group, out.stats[1].group);
  EXPECT_EQ(out.stats[0].group, out.stats[2].group);
  EXPECT_EQ(out.stats[3].group, out.stats[4].group);
  EXPECT_NE(out.stats[0].group, out.stats[3].group);

  // Followers of a shared-plan group reuse the leader's trained model and
  // per-frame sweep: the batch charges NN cost for ~one sweep, not N.
  EXPECT_EQ(out.stats[0].shared_models, 0);  // leader trains
  EXPECT_EQ(out.stats[1].shared_models, 1);
  EXPECT_EQ(out.stats[2].shared_models, 1);
  EXPECT_GT(out.stats[1].shared_nn_frames, 0);
  EXPECT_GT(out.stats[2].shared_nn_frames, 0);
  EXPECT_EQ(out.stats[4].shared_models, 1);
  EXPECT_GT(out.stats[4].shared_nn_frames, 0);

  // Savings surface in the batch accounting, never in per-query meters.
  EXPECT_GT(out.standalone_seconds, out.batch_seconds);
  EXPECT_LT(out.stats[1].batch_seconds, out.stats[1].standalone_seconds);
  // The follower aggregate's entire NN bill (training + held-out + test
  // sweeps) is absorbed; what remains is its detector sampling.
  const CostMeter& follower = out.results[1].value().cost;
  EXPECT_LT(out.stats[1].batch_seconds,
            follower.TotalSeconds() - follower.training_seconds());
}

TEST_F(BatchDeterminismTest, EmptyBatchIsOk) {
  auto batch = engine_->ExecuteBatch({});
  BLAZEIT_ASSERT_OK(batch);
  EXPECT_TRUE(batch.value().results.empty());
  EXPECT_EQ(batch.value().groups, 0);
}

TEST_F(BatchDeterminismTest, QuerySessionKeepsSweepsWarmAcrossBatches) {
  QuerySession session(engine_);
  const std::string agg =
      "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' "
      "ERROR WITHIN 0.1 AT CONFIDENCE 95%";

  session.Add(agg);
  auto first = session.Run();
  BLAZEIT_ASSERT_OK(first);
  ASSERT_TRUE(first.value().results[0].ok());
  EXPECT_EQ(session.pending(), 0);
  // The session's sweep tier now holds the trained model + per-frame rows.
  EXPECT_GT(session.sweeps().frame_float_records(), 0);
  EXPECT_GE(session.sweeps().blob_records(), 1);

  // A second batch re-asking about the same (stream, class) is served
  // entirely from the warm sweeps...
  session.Add(agg);
  auto second = session.Run();
  BLAZEIT_ASSERT_OK(second);
  ASSERT_TRUE(second.value().results[0].ok());
  EXPECT_EQ(second.value().stats[0].shared_models, 1);
  EXPECT_GT(second.value().stats[0].shared_nn_frames, 0);

  // ...and still returns bit-identical output, including the meter.
  auto serial = engine_->Execute(agg);
  BLAZEIT_ASSERT_OK(serial);
  ExpectSameOutput(second.value().results[0].value(), serial.value());

  // Session single-query path matches too.
  auto single = session.Execute(agg);
  BLAZEIT_ASSERT_OK(single);
  ExpectSameOutput(single.value(), serial.value());
}

}  // namespace
}  // namespace blazeit
