#include "nn/tensor.h"

#include <gtest/gtest.h>

namespace blazeit {
namespace {

Matrix Make(int rows, int cols, std::initializer_list<float> vals) {
  Matrix m(rows, cols);
  auto it = vals.begin();
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m.At(r, c) = *it++;
  }
  return m;
}

TEST(MatrixTest, Accessors) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  m.At(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(m.At(1, 2), 5.0f);
  EXPECT_FLOAT_EQ(m.Row(1)[2], 5.0f);
  m.Zero();
  EXPECT_FLOAT_EQ(m.At(1, 2), 0.0f);
  EXPECT_TRUE(Matrix().Empty());
}

TEST(MatMulTest, KnownProduct) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  Matrix a = Make(2, 2, {1, 2, 3, 4});
  Matrix b = Make(2, 2, {5, 6, 7, 8});
  Matrix c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.At(0, 0), 19);
  EXPECT_FLOAT_EQ(c.At(0, 1), 22);
  EXPECT_FLOAT_EQ(c.At(1, 0), 43);
  EXPECT_FLOAT_EQ(c.At(1, 1), 50);
}

TEST(MatMulTest, RectangularShapes) {
  Matrix a = Make(1, 3, {1, 2, 3});
  Matrix b = Make(3, 2, {1, 0, 0, 1, 1, 1});
  Matrix c = MatMul(a, b);
  EXPECT_EQ(c.rows(), 1);
  EXPECT_EQ(c.cols(), 2);
  EXPECT_FLOAT_EQ(c.At(0, 0), 4);
  EXPECT_FLOAT_EQ(c.At(0, 1), 5);
}

TEST(MatMulTest, TransposeAMatchesExplicit) {
  // A^T B where A is [3,2], B is [3,2] -> [2,2].
  Matrix a = Make(3, 2, {1, 2, 3, 4, 5, 6});
  Matrix b = Make(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix c = MatMulTransposeA(a, b);
  // Explicit: c[i][j] = sum_k a[k][i] * b[k][j].
  EXPECT_FLOAT_EQ(c.At(0, 0), 1 * 7 + 3 * 9 + 5 * 11);
  EXPECT_FLOAT_EQ(c.At(1, 1), 2 * 8 + 4 * 10 + 6 * 12);
}

TEST(MatMulTest, TransposeBMatchesExplicit) {
  // A B^T where A is [2,3], B is [2,3] -> [2,2].
  Matrix a = Make(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b = Make(2, 3, {7, 8, 9, 10, 11, 12});
  Matrix c = MatMulTransposeB(a, b);
  EXPECT_FLOAT_EQ(c.At(0, 0), 1 * 7 + 2 * 8 + 3 * 9);
  EXPECT_FLOAT_EQ(c.At(0, 1), 1 * 10 + 2 * 11 + 3 * 12);
  EXPECT_FLOAT_EQ(c.At(1, 0), 4 * 7 + 5 * 8 + 6 * 9);
}

TEST(MatMulTest, TransposeIdentitiesAgree) {
  // (A^T B) == MatMul(transpose(A), B) cross-check via MatMul itself.
  Matrix a = Make(2, 2, {1, 2, 3, 4});
  Matrix at = Make(2, 2, {1, 3, 2, 4});
  Matrix b = Make(2, 2, {5, 6, 7, 8});
  Matrix direct = MatMulTransposeA(a, b);
  Matrix viaT = MatMul(at, b);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      EXPECT_FLOAT_EQ(direct.At(r, c), viaT.At(r, c));
    }
  }
}

}  // namespace
}  // namespace blazeit
