#include "nn/tensor.h"

#include <gtest/gtest.h>

#include "nn/matmul_kernels.h"
#include "util/random.h"

namespace blazeit {
namespace {

Matrix Make(int rows, int cols, std::initializer_list<float> vals) {
  Matrix m(rows, cols);
  auto it = vals.begin();
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m.At(r, c) = *it++;
  }
  return m;
}

TEST(MatrixTest, Accessors) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  m.At(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(m.At(1, 2), 5.0f);
  EXPECT_FLOAT_EQ(m.Row(1)[2], 5.0f);
  m.Zero();
  EXPECT_FLOAT_EQ(m.At(1, 2), 0.0f);
  EXPECT_TRUE(Matrix().Empty());
}

TEST(MatMulTest, KnownProduct) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  Matrix a = Make(2, 2, {1, 2, 3, 4});
  Matrix b = Make(2, 2, {5, 6, 7, 8});
  Matrix c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.At(0, 0), 19);
  EXPECT_FLOAT_EQ(c.At(0, 1), 22);
  EXPECT_FLOAT_EQ(c.At(1, 0), 43);
  EXPECT_FLOAT_EQ(c.At(1, 1), 50);
}

TEST(MatMulTest, RectangularShapes) {
  Matrix a = Make(1, 3, {1, 2, 3});
  Matrix b = Make(3, 2, {1, 0, 0, 1, 1, 1});
  Matrix c = MatMul(a, b);
  EXPECT_EQ(c.rows(), 1);
  EXPECT_EQ(c.cols(), 2);
  EXPECT_FLOAT_EQ(c.At(0, 0), 4);
  EXPECT_FLOAT_EQ(c.At(0, 1), 5);
}

TEST(MatMulTest, TransposeAMatchesExplicit) {
  // A^T B where A is [3,2], B is [3,2] -> [2,2].
  Matrix a = Make(3, 2, {1, 2, 3, 4, 5, 6});
  Matrix b = Make(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix c = MatMulTransposeA(a, b);
  // Explicit: c[i][j] = sum_k a[k][i] * b[k][j].
  EXPECT_FLOAT_EQ(c.At(0, 0), 1 * 7 + 3 * 9 + 5 * 11);
  EXPECT_FLOAT_EQ(c.At(1, 1), 2 * 8 + 4 * 10 + 6 * 12);
}

TEST(MatMulTest, TransposeBMatchesExplicit) {
  // A B^T where A is [2,3], B is [2,3] -> [2,2].
  Matrix a = Make(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b = Make(2, 3, {7, 8, 9, 10, 11, 12});
  Matrix c = MatMulTransposeB(a, b);
  EXPECT_FLOAT_EQ(c.At(0, 0), 1 * 7 + 2 * 8 + 3 * 9);
  EXPECT_FLOAT_EQ(c.At(0, 1), 1 * 10 + 2 * 11 + 3 * 12);
  EXPECT_FLOAT_EQ(c.At(1, 0), 4 * 7 + 5 * 8 + 6 * 9);
}

// Shape mismatches must abort in every build type (they were bare
// assert()s once, which compile out under NDEBUG and turn into silent
// out-of-bounds reads), with the offending dims in the message.
using MatMulDeathTest = ::testing::Test;

TEST(MatMulDeathTest, MismatchedInnerDimAborts) {
  Matrix a(2, 3), b(4, 2);
  EXPECT_DEATH(MatMul(a, b), "MatMul shape mismatch: \\[2,3\\] x \\[4,2\\]");
}

TEST(MatMulDeathTest, TransposeAMismatchAborts) {
  Matrix a(3, 2), b(4, 2);
  EXPECT_DEATH(MatMulTransposeA(a, b), "MatMulTransposeA shape mismatch");
}

TEST(MatMulDeathTest, TransposeBMismatchAborts) {
  Matrix a(2, 3), b(2, 4);
  EXPECT_DEATH(MatMulTransposeB(a, b), "MatMulTransposeB shape mismatch");
}

// The dispatched (possibly AVX-512) kernels must be bit-identical to the
// scalar fallbacks — the persistent artifact store replays NN outputs
// across machines with different ISAs. Shapes cover SIMD tile tails
// (n % 16, m % 4) and exact-zero coefficients (ReLU activations).
class MatMulParityTest : public ::testing::Test {
 protected:
  static Matrix RandomMatrix(Rng* rng, int rows, int cols,
                             double zero_fraction) {
    Matrix m(rows, cols);
    for (float& v : m.data()) {
      v = rng->Bernoulli(zero_fraction)
              ? 0.0f
              : static_cast<float>(rng->Normal(0.0, 1.0));
    }
    return m;
  }

  static void ExpectBitIdentical(const Matrix& want, const Matrix& got) {
    ASSERT_EQ(want.rows(), got.rows());
    ASSERT_EQ(want.cols(), got.cols());
    for (size_t i = 0; i < want.data().size(); ++i) {
      ASSERT_EQ(want.data()[i], got.data()[i]) << "flat index " << i;
    }
  }
};

TEST_F(MatMulParityTest, MatMulMatchesScalar) {
  Rng rng(21);
  constexpr int kShapes[][3] = {{1, 1, 1},   {2, 3, 4},    {4, 16, 16},
                                {5, 7, 3},   {7, 33, 17},  {8, 64, 64},
                                {9, 100, 65}, {16, 256, 8}};
  for (auto [m, k, n] : kShapes) {
    for (double zf : {0.0, 0.5}) {
      Matrix a = RandomMatrix(&rng, m, k, zf);
      Matrix b = RandomMatrix(&rng, k, n, 0.0);
      Matrix want(m, n);
      matmul::MatMulScalar(a.data().data(), b.data().data(),
                           want.data().data(), m, k, n);
      SCOPED_TRACE(::testing::Message()
                   << m << "x" << k << "x" << n << " zeros " << zf);
      ExpectBitIdentical(want, MatMul(a, b));
    }
  }
}

TEST_F(MatMulParityTest, TransposeAMatchesScalar) {
  Rng rng(22);
  constexpr int kShapes[][3] = {{1, 1, 1},  {3, 2, 4},   {16, 4, 16},
                                {7, 5, 3},  {33, 7, 17}, {64, 8, 64},
                                {100, 9, 65}};
  for (auto [m, k, n] : kShapes) {
    for (double zf : {0.0, 0.5}) {
      Matrix a = RandomMatrix(&rng, k, m, zf);
      Matrix b = RandomMatrix(&rng, k, n, 0.0);
      Matrix want(m, n);
      matmul::MatMulTransposeAScalar(a.data().data(), b.data().data(),
                                     want.data().data(), m, k, n);
      SCOPED_TRACE(::testing::Message()
                   << m << "x" << k << "x" << n << " zeros " << zf);
      ExpectBitIdentical(want, MatMulTransposeA(a, b));
    }
  }
}

TEST_F(MatMulParityTest, TransposeBMatchesScalar) {
  Rng rng(23);
  constexpr int kShapes[][3] = {{1, 1, 1},  {3, 4, 2},   {16, 16, 4},
                                {7, 3, 5},  {33, 17, 7}, {64, 64, 8},
                                {100, 65, 9}};
  for (auto [m, k, n] : kShapes) {
    for (double zf : {0.0, 0.5}) {
      Matrix a = RandomMatrix(&rng, m, k, zf);
      Matrix b = RandomMatrix(&rng, n, k, 0.0);
      Matrix want(m, n);
      matmul::MatMulTransposeBScalar(a.data().data(), b.data().data(),
                                     want.data().data(), m, k, n);
      SCOPED_TRACE(::testing::Message()
                   << m << "x" << k << "x" << n << " zeros " << zf);
      ExpectBitIdentical(want, MatMulTransposeB(a, b));
    }
  }
}

TEST(MatMulTest, TransposeIdentitiesAgree) {
  // (A^T B) == MatMul(transpose(A), B) cross-check via MatMul itself.
  Matrix a = Make(2, 2, {1, 2, 3, 4});
  Matrix at = Make(2, 2, {1, 3, 2, 4});
  Matrix b = Make(2, 2, {5, 6, 7, 8});
  Matrix direct = MatMulTransposeA(a, b);
  Matrix viaT = MatMul(at, b);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      EXPECT_FLOAT_EQ(direct.At(r, c), viaT.At(r, c));
    }
  }
}

}  // namespace
}  // namespace blazeit
