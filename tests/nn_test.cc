#include <gtest/gtest.h>

#include "testing/test_util.h"

#include <cmath>

#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"
#include "util/random.h"

namespace blazeit {
namespace {

TEST(LinearTest, ForwardAddsBias) {
  Rng rng(1);
  Linear lin(2, 2, &rng);
  Matrix x(1, 2);
  x.At(0, 0) = 0;
  x.At(0, 1) = 0;
  Matrix y = lin.Forward(x);  // zero input -> bias only (zero-initialized)
  EXPECT_FLOAT_EQ(y.At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.At(0, 1), 0.0f);
}

TEST(LinearTest, GradientCheckNumeric) {
  // Finite-difference check of dL/dW for L = sum(output).
  Rng rng(2);
  Linear lin(3, 2, &rng);
  Matrix x(2, 3);
  Rng data_rng(3);
  for (float& v : x.data()) v = static_cast<float>(data_rng.Normal(0, 1));

  Matrix y = lin.Forward(x);
  Matrix dy(y.rows(), y.cols());
  for (float& v : dy.data()) v = 1.0f;
  Matrix dx = lin.Backward(dy);

  // Numeric gradient w.r.t. an input element.
  const double eps = 1e-3;
  Matrix x2 = x;
  x2.At(0, 1) += static_cast<float>(eps);
  Matrix y2 = lin.Forward(x2);
  double f0 = 0, f1 = 0;
  for (float v : y.data()) f0 += v;
  for (float v : y2.data()) f1 += v;
  EXPECT_NEAR(dx.At(0, 1), (f1 - f0) / eps, 1e-2);
}

TEST(ReLUTest, ForwardAndBackwardMask) {
  ReLU relu;
  Matrix x(1, 4);
  x.At(0, 0) = -1;
  x.At(0, 1) = 2;
  x.At(0, 2) = 0;
  x.At(0, 3) = 3;
  Matrix y = relu.Forward(x);
  EXPECT_FLOAT_EQ(y.At(0, 0), 0);
  EXPECT_FLOAT_EQ(y.At(0, 1), 2);
  Matrix dy(1, 4);
  for (float& v : dy.data()) v = 1.0f;
  Matrix dx = relu.Backward(dy);
  EXPECT_FLOAT_EQ(dx.At(0, 0), 0);  // gradient blocked for negative input
  EXPECT_FLOAT_EQ(dx.At(0, 1), 1);
  EXPECT_FLOAT_EQ(dx.At(0, 2), 0);  // zero input also blocked
}

TEST(SoftmaxTest, RowsSumToOne) {
  Matrix logits(2, 3);
  logits.At(0, 0) = 1;
  logits.At(0, 1) = 2;
  logits.At(0, 2) = 3;
  logits.At(1, 0) = -100;
  logits.At(1, 1) = 100;  // extreme values must not overflow
  logits.At(1, 2) = 0;
  Matrix p = Softmax(logits);
  for (int r = 0; r < 2; ++r) {
    double sum = 0;
    for (int c = 0; c < 3; ++c) {
      sum += p.At(r, c);
      EXPECT_GE(p.At(r, c), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
  EXPECT_GT(p.At(0, 2), p.At(0, 0));
  EXPECT_NEAR(p.At(1, 1), 1.0, 1e-5);
}

TEST(CrossEntropyTest, PerfectPredictionLowLoss) {
  Matrix logits(1, 2);
  logits.At(0, 0) = 20;
  logits.At(0, 1) = -20;
  SoftmaxCrossEntropy loss;
  EXPECT_LT(loss.Forward(logits, {0}), 1e-5);
  EXPECT_GT(loss.Forward(logits, {1}), 10.0);
}

TEST(CrossEntropyTest, UniformLogitsGiveLogK) {
  Matrix logits(1, 4);
  SoftmaxCrossEntropy loss;
  EXPECT_NEAR(loss.Forward(logits, {2}), std::log(4.0), 1e-5);
}

TEST(CrossEntropyTest, BackwardIsSoftmaxMinusOneHot) {
  Matrix logits(1, 3);
  logits.At(0, 0) = 0.3f;
  logits.At(0, 1) = -0.1f;
  SoftmaxCrossEntropy loss;
  loss.Forward(logits, {1});
  Matrix grad = loss.Backward();
  EXPECT_NEAR(grad.At(0, 0), loss.probs().At(0, 0), 1e-6);
  EXPECT_NEAR(grad.At(0, 1), loss.probs().At(0, 1) - 1.0, 1e-6);
  double sum = grad.At(0, 0) + grad.At(0, 1) + grad.At(0, 2);
  EXPECT_NEAR(sum, 0.0, 1e-6);
}

TEST(SgdTest, StepMovesAgainstGradient) {
  std::vector<float> w = {1.0f};
  std::vector<float> g = {0.5f};
  SgdOptimizer opt({{&w, &g}}, /*lr=*/0.1, /*momentum=*/0.0);
  opt.Step();
  EXPECT_NEAR(w[0], 0.95f, 1e-6);
  opt.ZeroGrad();
  EXPECT_EQ(g[0], 0.0f);
}

TEST(SgdTest, MomentumAccumulates) {
  std::vector<float> w = {0.0f};
  std::vector<float> g = {1.0f};
  SgdOptimizer opt({{&w, &g}}, 0.1, 0.9);
  opt.Step();  // v=1, w=-0.1
  opt.Step();  // v=1.9, w=-0.29
  EXPECT_NEAR(w[0], -0.29f, 1e-5);
}

TEST(TrainerTest, LearnsLinearlySeparableTask) {
  Rng rng(7);
  const int n = 2000, d = 8;
  std::vector<std::vector<float>> xs(n);
  std::vector<int> ys(n);
  for (int i = 0; i < n; ++i) {
    xs[i].resize(d);
    for (int j = 0; j < d; ++j) xs[i][j] = static_cast<float>(rng.Normal(0, 1));
    ys[i] = xs[i][0] + xs[i][1] > 0 ? 1 : 0;
  }
  Rng init(3);
  auto model = BuildMlp(d, {16}, 2, &init);
  TrainConfig cfg;
  cfg.epochs = 5;
  cfg.lr = 0.05;
  auto loss = TrainClassifier(
      model.get(), [&](int64_t i) { return xs[static_cast<size_t>(i)]; }, ys,
      d, cfg);
  BLAZEIT_ASSERT_OK(loss);
  EXPECT_LT(loss.value(), 0.2);
}

TEST(TrainerTest, RejectsBadArguments) {
  Rng init(3);
  auto model = BuildMlp(4, {8}, 2, &init);
  TrainConfig cfg;
  EXPECT_FALSE(TrainClassifier(nullptr, nullptr, {0}, 4, cfg).ok());
  EXPECT_FALSE(
      TrainClassifier(model.get(), [](int64_t) { return std::vector<float>(4); },
                      {}, 4, cfg)
          .ok());
  // Feature size mismatch.
  auto r = TrainClassifier(model.get(),
                           [](int64_t) { return std::vector<float>(3); }, {0, 1},
                           4, cfg);
  EXPECT_FALSE(r.ok());
}

TEST(BuildMlpTest, LayerCount) {
  Rng rng(1);
  auto m = BuildMlp(10, {8, 8}, 3, &rng);
  // 2x (Linear+ReLU) + final Linear = 5 layers.
  EXPECT_EQ(m->size(), 5u);
  Matrix x(2, 10);
  Matrix y = m->Forward(x);
  EXPECT_EQ(y.rows(), 2);
  EXPECT_EQ(y.cols(), 3);
}

}  // namespace
}  // namespace blazeit
