// Tests for the dependency-free HTTP front end behind the debug server:
// the request-head parser (syntax, limits, query decoding) and the
// blocking socket server (routing, error statuses, bounded inputs,
// concurrent scrapes), exercised through a raw loopback socket client so
// the full accept -> parse -> dispatch -> serialize path runs.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/http.h"
#include "net/http_server.h"

namespace blazeit {
namespace net {
namespace {

// ---------------------------------------------------------------------------
// Parser

TEST(HttpParseTest, ParsesRequestLineHeadersAndQuery) {
  HttpLimits limits;
  auto parsed = ParseRequestHead(
      "GET /statusz?format=html&name=a%20b+c&flag HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Accept:  text/html \r\n",
      limits);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const HttpRequest& req = parsed.value();
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/statusz");
  EXPECT_EQ(req.target, "/statusz?format=html&name=a%20b+c&flag");
  EXPECT_EQ(req.version, "HTTP/1.1");
  EXPECT_EQ(req.QueryParam("format", ""), "html");
  // Percent and '+' decoding both land in the query map.
  EXPECT_EQ(req.QueryParam("name", ""), "a b c");
  // Bare flag parameter exists with an empty value.
  EXPECT_EQ(req.query.count("flag"), 1u);
  EXPECT_EQ(req.QueryParam("missing", "fallback"), "fallback");
  // Header names are lower-cased, values trimmed.
  ASSERT_NE(req.FindHeader("accept"), nullptr);
  EXPECT_EQ(*req.FindHeader("accept"), "text/html");
  EXPECT_EQ(req.FindHeader("x-absent"), nullptr);
}

TEST(HttpParseTest, RejectsMalformedRequestLines) {
  HttpLimits limits;
  EXPECT_FALSE(ParseRequestHead("", limits).ok());
  EXPECT_FALSE(ParseRequestHead("GET/HTTP/1.1\r\n", limits).ok());
  EXPECT_FALSE(ParseRequestHead("GET /x HTTP/1.1 extra\r\n", limits).ok());
  EXPECT_FALSE(ParseRequestHead("GET /x HTTP/2.0\r\n", limits).ok());
  // Target must be origin-form.
  EXPECT_FALSE(
      ParseRequestHead("GET http://x/ HTTP/1.1\r\n", limits).ok());
  // Method must be token characters.
  EXPECT_FALSE(ParseRequestHead("G@T /x HTTP/1.1\r\n", limits).ok());
}

TEST(HttpParseTest, RejectsMalformedHeaders) {
  HttpLimits limits;
  auto no_colon =
      ParseRequestHead("GET / HTTP/1.1\r\nnot a header\r\n", limits);
  ASSERT_FALSE(no_colon.ok());
  EXPECT_EQ(no_colon.status().code(), StatusCode::kInvalidArgument);
  auto bad_name =
      ParseRequestHead("GET / HTTP/1.1\r\nbad name: v\r\n", limits);
  EXPECT_FALSE(bad_name.ok());
}

TEST(HttpParseTest, EnforcesHeaderCountLimit) {
  HttpLimits limits;
  limits.max_headers = 2;
  auto parsed = ParseRequestHead(
      "GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\n", limits);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);
}

TEST(HttpParseTest, ToleratesBareLfLineEndings) {
  HttpLimits limits;
  auto parsed = ParseRequestHead("GET /healthz HTTP/1.0\nHost: x\n", limits);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().path, "/healthz");
  EXPECT_EQ(parsed.value().version, "HTTP/1.0");
}

TEST(HttpSerializeTest, AddsContentLengthAndConnectionClose) {
  HttpResponse resp;
  resp.status = 404;
  resp.body = "missing";
  resp.extra_headers.emplace_back("X-Debug", "1");
  const std::string wire = SerializeResponse(resp);
  EXPECT_EQ(wire.rfind("HTTP/1.1 404 Not Found\r\n", 0), 0u) << wire;
  EXPECT_NE(wire.find("Content-Length: 7\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(wire.find("X-Debug: 1\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 7), "missing");
}

TEST(HttpEscapeTest, EscapersCoverControlAndMarkupCharacters) {
  EXPECT_EQ(UrlDecode("a%2Fb+c%zz"), "a/b c%zz");  // bad escape passes through
  EXPECT_EQ(HtmlEscape("<a href=\"x\">&"), "&lt;a href=&quot;x&quot;&gt;&amp;");
  EXPECT_EQ(JsonEscape("a\"b\\c\nd\x01"), "a\\\"b\\\\c\\nd\\u0001");
}

// ---------------------------------------------------------------------------
// Server, through a raw loopback client

// Sends `request` bytes to 127.0.0.1:`port` and returns everything the
// server wrote before closing.
std::string RawRequest(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

std::string StatusLine(const std::string& wire) {
  return wire.substr(0, wire.find("\r\n"));
}

class HttpServerTest : public ::testing::Test {
 protected:
  void StartServer(HttpServer::Options options = HttpServer::Options()) {
    server_ = std::make_unique<HttpServer>(options);
    server_->Handle("/ping", [](const HttpRequest&) {
      HttpResponse resp;
      resp.body = "pong";
      return resp;
    });
    server_->Handle("/echo", [](const HttpRequest& req) {
      HttpResponse resp;
      resp.body = req.method + " " + req.QueryParam("q", "-");
      return resp;
    });
    server_->Handle("/throw", [](const HttpRequest&) -> HttpResponse {
      throw std::runtime_error("handler exploded");
    });
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->port(), 0);
  }

  std::unique_ptr<HttpServer> server_;
};

TEST_F(HttpServerTest, ServesRegisteredPath) {
  StartServer();
  const std::string wire =
      RawRequest(server_->port(), "GET /ping HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(StatusLine(wire), "HTTP/1.1 200 OK");
  EXPECT_EQ(wire.substr(wire.size() - 4), "pong");
}

TEST_F(HttpServerTest, QueryStringReachesHandlerButNotRouting) {
  StartServer();
  const std::string wire = RawRequest(
      server_->port(), "GET /echo?q=hi HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(StatusLine(wire), "HTTP/1.1 200 OK");
  EXPECT_NE(wire.find("GET hi"), std::string::npos) << wire;
}

TEST_F(HttpServerTest, UnknownPathIs404) {
  StartServer();
  const std::string wire =
      RawRequest(server_->port(), "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(StatusLine(wire), "HTTP/1.1 404 Not Found");
}

TEST_F(HttpServerTest, MalformedRequestIs400) {
  StartServer();
  const std::string wire = RawRequest(server_->port(), "BOGUS\r\n\r\n");
  EXPECT_EQ(StatusLine(wire), "HTTP/1.1 400 Bad Request");
}

TEST_F(HttpServerTest, NonGetMethodIs405) {
  StartServer();
  const std::string wire = RawRequest(
      server_->port(),
      "PUT /ping HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n");
  EXPECT_EQ(StatusLine(wire), "HTTP/1.1 405 Method Not Allowed");
}

TEST_F(HttpServerTest, HeadGetsHeadersWithoutBody) {
  StartServer();
  const std::string wire =
      RawRequest(server_->port(), "HEAD /ping HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(StatusLine(wire), "HTTP/1.1 200 OK");
  // Content-Length reflects the suppressed body.
  EXPECT_NE(wire.find("Content-Length: 4\r\n"), std::string::npos) << wire;
  EXPECT_EQ(wire.find("pong"), std::string::npos) << wire;
}

TEST_F(HttpServerTest, OversizedHeadIs431) {
  HttpServer::Options options;
  options.limits.max_head_bytes = 256;
  StartServer(options);
  // No terminating blank line: the server must bail on the size bound
  // rather than buffer an unbounded head waiting for one.
  const std::string wire = RawRequest(
      server_->port(),
      "GET /ping HTTP/1.1\r\nX-Pad: " + std::string(512, 'a') + "\r\n");
  EXPECT_EQ(StatusLine(wire), "HTTP/1.1 431 Request Header Fields Too Large");
}

TEST_F(HttpServerTest, TooManyHeadersIs431) {
  HttpServer::Options options;
  options.limits.max_headers = 4;
  StartServer(options);
  std::string request = "GET /ping HTTP/1.1\r\n";
  for (int i = 0; i < 8; ++i) {
    request += "X-H" + std::to_string(i) + ": v\r\n";
  }
  request += "\r\n";
  const std::string wire = RawRequest(server_->port(), request);
  EXPECT_EQ(StatusLine(wire), "HTTP/1.1 431 Request Header Fields Too Large");
}

TEST_F(HttpServerTest, OversizedDeclaredBodyIs413) {
  HttpServer::Options options;
  options.limits.max_body_bytes = 64;
  StartServer(options);
  const std::string wire = RawRequest(
      server_->port(),
      "GET /ping HTTP/1.1\r\nHost: x\r\nContent-Length: 4096\r\n\r\n");
  EXPECT_EQ(StatusLine(wire), "HTTP/1.1 413 Payload Too Large");
}

TEST_F(HttpServerTest, ThrowingHandlerIs500NotACrash) {
  StartServer();
  const std::string wire =
      RawRequest(server_->port(), "GET /throw HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(StatusLine(wire), "HTTP/1.1 500 Internal Server Error");
  // Server survives the throw and keeps serving.
  const std::string again =
      RawRequest(server_->port(), "GET /ping HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(StatusLine(again), "HTTP/1.1 200 OK");
}

TEST_F(HttpServerTest, ConcurrentRequestsAllSucceed) {
  StartServer();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4;
  std::vector<int> ok_counts(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, &ok_counts] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string wire = RawRequest(
            server_->port(), "GET /ping HTTP/1.1\r\nHost: x\r\n\r\n");
        if (StatusLine(wire) == "HTTP/1.1 200 OK") ++ok_counts[t];
      }
    });
  }
  for (auto& th : threads) th.join();
  int total = 0;
  for (int c : ok_counts) total += c;
  // The pending queue is bounded, so a burst larger than the bound could
  // legally shed with 503 — but 8 clients against the default bound of 16
  // must all land.
  EXPECT_EQ(total, kThreads * kPerThread);
}

TEST_F(HttpServerTest, StopIsIdempotentAndRefusesNewConnections) {
  StartServer();
  const int port = server_->port();
  server_->Stop();
  server_->Stop();
  EXPECT_FALSE(server_->running());
  EXPECT_EQ(RawRequest(port, "GET /ping HTTP/1.1\r\nHost: x\r\n\r\n"), "");
}

}  // namespace
}  // namespace net
}  // namespace blazeit
