#include <gtest/gtest.h>

#include "testing/test_util.h"

#include "core/labeled_set.h"
#include "core/udf.h"
#include "detect/simulated_detector.h"
#include "filters/calibration.h"
#include "filters/content_filter.h"
#include "filters/label_filter.h"
#include "filters/spatial_filter.h"
#include "filters/temporal_filter.h"
#include "video/datasets.h"

namespace blazeit {
namespace {

TEST(TemporalFilterTest, StrideFromPersistence) {
  // Paper: objects present >= 30 frames -> sample every 14 frames.
  EXPECT_EQ(TemporalFilter::StrideForPersistence(30), 14);
  EXPECT_EQ(TemporalFilter::StrideForPersistence(15), 7);
  EXPECT_EQ(TemporalFilter::StrideForPersistence(2), 1);
  EXPECT_EQ(TemporalFilter::StrideForPersistence(0), 1);
}

TEST(TemporalFilterTest, StrideGuaranteesCoverage) {
  // Property: any window of length K contains at least two samples when
  // stride = (K-1)/2 and K >= 5.
  for (int64_t k = 5; k <= 120; ++k) {
    int64_t stride = TemporalFilter::StrideForPersistence(k);
    // Worst-case window start just after a sample.
    int64_t samples_in_window = (k - 1) / stride;
    EXPECT_GE(samples_in_window, 2) << "K=" << k;
  }
}

TEST(TemporalFilterTest, CandidateFrames) {
  TemporalFilter f;
  f.set_stride(10);
  auto frames = f.CandidateFrames(35);
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(frames[3], 30);
  EXPECT_NEAR(f.Selectivity(35), 4.0 / 35.0, 1e-9);
}

TEST(TemporalFilterTest, TimeRange) {
  TemporalFilter f;
  BLAZEIT_ASSERT_OK(f.SetTimeRange(10, 20));
  auto frames = f.CandidateFrames(100);
  ASSERT_EQ(frames.size(), 10u);
  EXPECT_EQ(frames.front(), 10);
  EXPECT_EQ(frames.back(), 19);
  EXPECT_FALSE(f.SetTimeRange(-1, 5).ok());
  EXPECT_FALSE(f.SetTimeRange(10, 10).ok());
}

TEST(SpatialFilterTest, PaperExampleSquarification) {
  // xmax < 720 on 1280x720: effective crop 720x720, aspect 1.
  SpatialFilter f(Rect{0.0, 0.0, 720.0 / 1280.0, 1.0}, 1280, 720);
  EXPECT_NEAR(f.AspectRatio(), 1.0, 0.05);
  EXPECT_NEAR(f.Speedup(), 16.0 / 9.0, 0.1);
}

TEST(SpatialFilterTest, FullFrameNoSpeedup) {
  SpatialFilter f(Rect{0, 0, 1, 1}, 1280, 720);
  EXPECT_NEAR(f.Speedup(), 1.0, 1e-9);
}

TEST(SpatialFilterTest, ContainsByCenter) {
  SpatialFilter f(Rect{0.5, 0.5, 1.0, 1.0}, 1280, 720);
  Detection inside;
  inside.rect = Rect{0.6, 0.6, 0.8, 0.8};
  Detection outside;
  outside.rect = Rect{0.0, 0.0, 0.2, 0.2};
  EXPECT_TRUE(f.Contains(inside));
  EXPECT_FALSE(f.Contains(outside));
}

TEST(SpatialFilterTest, CropCoversRoi) {
  Rect roi{0.45, 0.55, 1.0, 0.95};
  SpatialFilter f(roi, 1280, 720);
  Rect crop = f.effective_crop();
  EXPECT_LE(crop.xmin, roi.xmin + 1e-9);
  EXPECT_GE(crop.xmax, roi.xmax - 1e-9);
  EXPECT_LE(crop.ymin, roi.ymin + 1e-9);
  EXPECT_GE(crop.ymax, roi.ymax - 1e-9);
  EXPECT_GE(f.Speedup(), 1.0);
}

class FilterCalibrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    video_ = SyntheticVideo::Create(TaipeiConfig(), 202, 4000).value();
    detector_ = std::make_unique<SimulatedDetector>();
    labels_ = std::make_unique<LabeledSet>(video_.get(), detector_.get(), 0.5);
  }
  std::unique_ptr<SyntheticVideo> video_;
  std::unique_ptr<SimulatedDetector> detector_;
  std::unique_ptr<LabeledSet> labels_;
};

TEST_F(FilterCalibrationTest, ContentFilterRednessSelective) {
  // Positives: frames with a red tour bus (population 0).
  std::vector<char> positives(4000, 0);
  int64_t n_pos = 0;
  for (int64_t t = 0; t < 4000; ++t) {
    for (const auto& obj : video_->GroundTruth(t)) {
      if (obj.class_id == kBus && obj.population == 0) {
        positives[static_cast<size_t>(t)] = 1;
        ++n_pos;
        break;
      }
    }
  }
  ASSERT_GT(n_pos, 10) << "scene model should produce red buses";
  ContentFilter filter("redness", UdfRegistry::Redness);
  auto calib = CalibrateNoFalseNegatives(&filter, *video_, positives, 0.0);
  BLAZEIT_ASSERT_OK(calib);
  // No false negatives by construction...
  for (int64_t t = 0; t < 4000; ++t) {
    if (positives[static_cast<size_t>(t)]) {
      EXPECT_TRUE(filter.Pass(*video_, t)) << t;
    }
  }
  // ...and the filter must discard a large share of the video.
  EXPECT_LT(calib.value().selectivity, 0.5);
}

TEST_F(FilterCalibrationTest, NoPositivesReturnsNotFound) {
  ContentFilter filter("blueness", UdfRegistry::Blueness);
  std::vector<char> positives(4000, 0);
  auto calib = CalibrateNoFalseNegatives(&filter, *video_, positives);
  EXPECT_FALSE(calib.ok());
  EXPECT_EQ(calib.status().code(), StatusCode::kNotFound);
}

TEST_F(FilterCalibrationTest, MaskSizeValidated) {
  ContentFilter filter("redness", UdfRegistry::Redness);
  std::vector<char> positives(10, 1);
  EXPECT_FALSE(
      CalibrateNoFalseNegatives(&filter, *video_, positives).ok());
}

TEST_F(FilterCalibrationTest, LabelFilterDiscardsEmptyFrames) {
  SpecializedNNConfig cfg;
  cfg.raster_width = 16;
  cfg.raster_height = 16;
  cfg.hidden_dims = {32};
  auto nn =
      SpecializedNN::Train(*video_, {labels_->Counts(kCar)}, cfg).value();
  LabelFilter filter(std::move(nn), {1});
  std::vector<char> positives;
  for (int c : labels_->Counts(kCar)) positives.push_back(c > 0 ? 1 : 0);
  auto calib = CalibrateNoFalseNegatives(&filter, *video_, positives, 0.0);
  BLAZEIT_ASSERT_OK(calib);
  EXPECT_GT(calib.value().positives, 0);
  EXPECT_LE(calib.value().selectivity, 1.0);
  // Batch scoring agrees with per-frame scoring.
  auto batch = filter.ScoreBatch(*video_, {0, 5, 10});
  EXPECT_NEAR(batch[1], filter.Score(*video_, 5), 1e-5);
}

}  // namespace
}  // namespace blazeit
