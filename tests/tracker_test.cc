#include "track/iou_tracker.h"

#include <gtest/gtest.h>

namespace blazeit {
namespace {

Detection MakeDet(int class_id, double x, double y, double size = 0.2) {
  Detection d;
  d.class_id = class_id;
  d.rect = Rect{x, y, x + size, y + size};
  d.score = 0.9;
  return d;
}

TEST(IouTrackerTest, AssignsNewIds) {
  IouTracker tracker;
  auto ids = tracker.Update({MakeDet(kCar, 0.1, 0.1), MakeDet(kCar, 0.6, 0.6)});
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_NE(ids[0], ids[1]);
  EXPECT_GT(ids[0], 0);
}

TEST(IouTrackerTest, TracksAcrossFramesWithHighIou) {
  IouTracker tracker;
  auto first = tracker.Update({MakeDet(kCar, 0.1, 0.1)});
  auto second = tracker.Update({MakeDet(kCar, 0.105, 0.1)});  // tiny motion
  EXPECT_EQ(first[0], second[0]);
}

TEST(IouTrackerTest, NewIdWhenJumpTooFar) {
  IouTracker tracker;
  auto first = tracker.Update({MakeDet(kCar, 0.1, 0.1)});
  auto second = tracker.Update({MakeDet(kCar, 0.7, 0.7)});
  EXPECT_NE(first[0], second[0]);
}

TEST(IouTrackerTest, ClassMismatchNeverMatches) {
  IouTracker tracker;
  auto first = tracker.Update({MakeDet(kCar, 0.1, 0.1)});
  auto second = tracker.Update({MakeDet(kBus, 0.1, 0.1)});
  EXPECT_NE(first[0], second[0]);
}

TEST(IouTrackerTest, ReentryGetsFreshId) {
  IouTracker tracker;
  auto first = tracker.Update({MakeDet(kCar, 0.1, 0.1)});
  (void)tracker.Update({});  // object leaves
  auto back = tracker.Update({MakeDet(kCar, 0.1, 0.1)});
  EXPECT_NE(first[0], back[0]);  // FrameQL: re-entry means new trackid
}

TEST(IouTrackerTest, GreedyPrefersHigherIou) {
  IouTracker tracker;
  auto ids =
      tracker.Update({MakeDet(kCar, 0.10, 0.10), MakeDet(kCar, 0.35, 0.10)});
  // Next frame: one detection exactly on the first track, one slightly
  // shifted from the second.
  auto next =
      tracker.Update({MakeDet(kCar, 0.10, 0.10), MakeDet(kCar, 0.36, 0.10)});
  EXPECT_EQ(next[0], ids[0]);
  EXPECT_EQ(next[1], ids[1]);
}

TEST(IouTrackerTest, ResetForgetsTracks) {
  IouTracker tracker;
  auto first = tracker.Update({MakeDet(kCar, 0.1, 0.1)});
  tracker.Reset();
  auto second = tracker.Update({MakeDet(kCar, 0.1, 0.1)});
  EXPECT_NE(first[0], second[0]);
}

TEST(IouTrackerTest, LongTrackStaysStable) {
  IouTracker tracker;
  int64_t id = tracker.Update({MakeDet(kCar, 0.1, 0.5)})[0];
  for (int i = 1; i < 60; ++i) {
    double x = 0.1 + i * 0.005;  // slow drift, IOU stays above 0.7
    auto ids = tracker.Update({MakeDet(kCar, x, 0.5)});
    ASSERT_EQ(ids[0], id) << "track broke at step " << i;
  }
}

TEST(IouTrackerTest, ThresholdConfigurable) {
  IouTracker strict(0.99);
  auto first = strict.Update({MakeDet(kCar, 0.1, 0.1)});
  auto second = strict.Update({MakeDet(kCar, 0.105, 0.1)});
  EXPECT_NE(first[0], second[0]);  // small shift fails a 0.99 cutoff
}

}  // namespace
}  // namespace blazeit
