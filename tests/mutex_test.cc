#include "util/mutex.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace blazeit {
namespace util {
namespace {

TEST(MutexTest, LockUnlockAndAssertHeld) {
  Mutex mu;
  mu.Lock();
  mu.AssertHeld();  // must not abort: we hold it
  mu.Unlock();
}

TEST(MutexTest, TryLockReportsContention) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  mu.AssertHeld();

  // Another thread cannot take it while we hold it.
  bool other_got_it = true;
  std::thread t([&] { other_got_it = mu.TryLock(); });
  t.join();
  EXPECT_FALSE(other_got_it);

  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, MutexLockGuardsCriticalSection) {
  Mutex mu;
  int counter = 0;
  std::vector<std::thread> threads;
  constexpr int kThreads = 4;
  constexpr int kIters = 1000;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < kIters; ++j) {
        MutexLock lock(mu);
        mu.AssertHeld();
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(MutexTest, MutexLockEarlyUnlockAndRelock) {
  // The AdmissionQueue::RunPending protocol: release mid-scope, do
  // unlocked work, re-acquire, and let the destructor release once.
  Mutex mu;
  MutexLock lock(mu);
  mu.AssertHeld();
  lock.Unlock();
  ASSERT_TRUE(mu.TryLock());  // proof the early Unlock really released
  mu.Unlock();
  lock.Lock();
  mu.AssertHeld();
  // Destructor unlocks the re-acquired hold.
}

TEST(MutexTest, MutexLockDestructorSkipsWhenReleasedEarly) {
  Mutex mu;
  {
    MutexLock lock(mu);
    lock.Unlock();
  }  // destructor must not double-unlock
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SharedMutexTest, WriterExcludesWritersAndReaders) {
  SharedMutex mu;
  {
    WriterLock lock(mu);
    mu.AssertHeld();
    mu.AssertReaderHeld();  // an exclusive hold satisfies the weaker claim
  }
  {
    ReaderLock lock(mu);
    mu.AssertReaderHeld();
  }
}

TEST(SharedMutexTest, ReadersShareTheLock) {
  SharedMutex mu;
  ReaderLock outer(mu);
  bool second_reader_entered = false;
  std::thread t([&] {
    ReaderLock inner(mu);
    mu.AssertReaderHeld();
    second_reader_entered = true;
  });
  t.join();
  EXPECT_TRUE(second_reader_entered);
}

TEST(CondVarTest, WaitReacquiresTheMutex) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  bool observed_after_wait = false;

  std::thread waiter([&] {
    MutexLock lock(mu);
    cv.Wait(mu, [&] { return ready; });
    // The wait returned holding the mutex again: the runtime tracking
    // must agree, and the guarded read must be safe.
    mu.AssertHeld();
    observed_after_wait = ready;
  });

  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyAll();
  waiter.join();
  EXPECT_TRUE(observed_after_wait);
}

TEST(CondVarTest, WaitForTimesOutStillHoldingTheMutex) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const bool result =
      cv.WaitFor(mu, std::chrono::milliseconds(5), [] { return false; });
  EXPECT_FALSE(result);
  mu.AssertHeld();  // re-acquired on the timeout path too
}

TEST(CondVarTest, NotifyOneWakesAWaiter) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    cv.Wait(mu, [&] { return ready; });
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
}

#if BLAZEIT_MUTEX_DEBUG && defined(GTEST_HAS_DEATH_TEST)

TEST(MutexDeathTest, AssertHeldAbortsWhenNotHeld) {
  Mutex mu;
  EXPECT_DEATH(mu.AssertHeld(), "does not hold the mutex");
}

TEST(MutexDeathTest, AssertHeldAbortsFromAnotherThread) {
  // Owner tracking is per thread: holding on thread A must not satisfy an
  // assertion on thread B.
  Mutex mu;
  mu.Lock();
  EXPECT_DEATH(
      {
        std::thread other([&] { mu.AssertHeld(); });
        other.join();
      },
      "does not hold the mutex");
  mu.Unlock();
}

TEST(MutexDeathTest, UnlockByNonOwnerAborts) {
  Mutex mu;
  mu.Lock();
  EXPECT_DEATH(
      {
        std::thread other([&] { mu.Unlock(); });
        other.join();
      },
      "does not hold the mutex");
  mu.Unlock();
}

TEST(SharedMutexDeathTest, AssertHeldAbortsWithoutExclusiveHold) {
  SharedMutex mu;
  EXPECT_DEATH(mu.AssertHeld(), "does not hold the mutex exclusively");
}

TEST(SharedMutexDeathTest, AssertHeldAbortsUnderSharedHold) {
  // A shared hold is not an exclusive hold.
  SharedMutex mu;
  ReaderLock lock(mu);
  EXPECT_DEATH(mu.AssertHeld(), "does not hold the mutex exclusively");
}

TEST(SharedMutexDeathTest, AssertReaderHeldAbortsWhenUnheld) {
  SharedMutex mu;
  EXPECT_DEATH(mu.AssertReaderHeld(), "mutex is not held");
}

TEST(MutexLockDeathTest, DoubleEarlyUnlockAborts) {
  Mutex mu;
  EXPECT_DEATH(
      {
        MutexLock lock(mu);
        lock.Unlock();
        lock.Unlock();
      },
      "Unlock while not held");
}

#endif  // BLAZEIT_MUTEX_DEBUG && GTEST_HAS_DEATH_TEST

}  // namespace
}  // namespace util
}  // namespace blazeit
