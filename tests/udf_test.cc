#include "core/udf.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace blazeit {
namespace {

Image Solid(const Color& c) {
  Image img(8, 8);
  img.Fill(c);
  return img;
}

TEST(UdfTest, RednessHighForRed) {
  double red = UdfRegistry::Redness(Solid(Color{0.8f, 0.1f, 0.1f}));
  double white = UdfRegistry::Redness(Solid(Color{0.9f, 0.9f, 0.9f}));
  double gray = UdfRegistry::Redness(Solid(Color{0.4f, 0.4f, 0.4f}));
  EXPECT_GT(red, 0.5);
  // White content must NOT look red (the naive mean-red-channel UDF the
  // paper warns about would rank white above red).
  EXPECT_NEAR(white, 0.0, 1e-6);
  EXPECT_NEAR(gray, 0.0, 1e-6);
}

TEST(UdfTest, ChannelUdfsOrthogonal) {
  Image blue = Solid(Color{0.1f, 0.1f, 0.9f});
  EXPECT_GT(UdfRegistry::Blueness(blue), 0.5);
  EXPECT_NEAR(UdfRegistry::Redness(blue), 0.0, 1e-6);
  EXPECT_NEAR(UdfRegistry::Greenness(blue), 0.0, 1e-6);
}

TEST(UdfTest, Brightness) {
  EXPECT_NEAR(UdfRegistry::Brightness(Solid(Color{0.5f, 0.7f, 0.3f})), 0.5,
              1e-5);
  EXPECT_NEAR(UdfRegistry::Brightness(Solid(Color{0, 0, 0})), 0.0, 1e-6);
}

TEST(UdfTest, EmptyImageSafe) {
  Image empty;
  EXPECT_EQ(UdfRegistry::Redness(empty), 0.0);
  EXPECT_EQ(UdfRegistry::Brightness(empty), 0.0);
}

TEST(UdfRegistryTest, BuiltinsRegistered) {
  UdfRegistry registry;
  EXPECT_TRUE(registry.Contains("redness"));
  EXPECT_TRUE(registry.Contains("blueness"));
  EXPECT_TRUE(registry.Contains("greenness"));
  EXPECT_TRUE(registry.Contains("brightness"));
  EXPECT_FALSE(registry.Contains("classify"));
}

TEST(UdfRegistryTest, CaseInsensitiveLookup) {
  UdfRegistry registry;
  EXPECT_TRUE(registry.Contains("ReDnEsS"));
  BLAZEIT_ASSERT_OK(registry.Get("REDNESS"));
}

TEST(UdfRegistryTest, RegisterCustom) {
  UdfRegistry registry;
  ASSERT_TRUE(registry
                  .Register("half", [](const Image&) { return 0.5; })
                  .ok());
  auto udf = registry.Get("half");
  BLAZEIT_ASSERT_OK(udf);
  EXPECT_DOUBLE_EQ(udf.value()(Image(1, 1)), 0.5);
}

TEST(UdfRegistryTest, RegisterValidates) {
  UdfRegistry registry;
  EXPECT_FALSE(registry.Register("", [](const Image&) { return 0.0; }).ok());
  EXPECT_FALSE(registry.Register("x", ImageUdf()).ok());
}

TEST(UdfRegistryTest, UnknownReturnsNotFound) {
  UdfRegistry registry;
  auto r = registry.Get("unknown");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace blazeit
