#include "core/selection.h"

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "frameql/parser.h"
#include "testing/test_util.h"

namespace blazeit {
namespace {

class SelectionTest : public testutil::CatalogFixture<SelectionTest> {
 protected:
  static void SetUpTestSuite() {
    CatalogFixture::SetUpTestSuite();
    udfs_ = new UdfRegistry();
  }
  static void TearDownTestSuite() {
    delete udfs_;
    udfs_ = nullptr;
    CatalogFixture::TearDownTestSuite();
  }
  static SelectionOptions FastOptions() {
    return testutil::SmallNNOptions<SelectionOptions>();
  }
  static AnalyzedQuery RedBusQuery() {
    auto parsed = ParseFrameQL(
        "SELECT * FROM taipei WHERE class = 'bus' "
        "AND redness(content) >= 0.25 AND area(mask) > 20000 "
        "AND xmin(mask) >= 0.4 AND ymin(mask) >= 0.5 "
        "GROUP BY trackid HAVING COUNT(*) > 15");
    BLAZEIT_EXPECT_OK(parsed);
    auto analyzed = AnalyzeQuery(parsed.value(), stream_->config);
    BLAZEIT_EXPECT_OK(analyzed);
    return analyzed.value();
  }
  static UdfRegistry* udfs_;
};

UdfRegistry* SelectionTest::udfs_ = nullptr;

TEST_F(SelectionTest, RejectsNonSelectionQueries) {
  SelectionExecutor ex(stream_, udfs_, FastOptions());
  AnalyzedQuery q;
  q.kind = QueryKind::kAggregate;
  EXPECT_FALSE(ex.Run(q).ok());
}

TEST_F(SelectionTest, RowsSatisfyPredicate) {
  SelectionExecutor ex(stream_, udfs_, FastOptions());
  AnalyzedQuery q = RedBusQuery();
  auto r = ex.Run(q);
  BLAZEIT_ASSERT_OK(r);
  for (const SelectionRow& row : r.value().rows) {
    EXPECT_EQ(row.detection.class_id, kBus);
    EXPECT_TRUE(q.roi.Contains(row.detection.rect.CenterX(),
                               row.detection.rect.CenterY()));
    EXPECT_GE(PixelArea(row.detection.rect, stream_->config.width,
                        stream_->config.height),
              q.min_area_px);
  }
}

TEST_F(SelectionTest, CheaperThanNaive) {
  SelectionExecutor ex(stream_, udfs_, FastOptions());
  auto r = ex.Run(RedBusQuery());
  BLAZEIT_ASSERT_OK(r);
  auto naive = NaiveSelection(stream_, udfs_, RedBusQuery());
  BLAZEIT_ASSERT_OK(naive);
  EXPECT_LT(r.value().cost.TotalSeconds(),
            naive.value().cost.TotalSeconds() / 5);
  EXPECT_LT(r.value().frames_detected, naive.value().frames_detected);
}

TEST_F(SelectionTest, FindsMostGroundTruthEvents) {
  SelectionExecutor ex(stream_, udfs_, FastOptions());
  AnalyzedQuery q = RedBusQuery();
  auto r = ex.Run(q).value();
  auto gt = GroundTruthSelectionEvents(*stream_->test_day, q, *udfs_);
  if (gt.size() < 5) GTEST_SKIP() << "too few events in short test day";
  // Count ground-truth events overlapped by some returned event.
  int64_t hit = 0;
  for (const auto& g : gt) {
    for (const auto& e : r.events) {
      if (e.first_frame <= g.last_frame + 14 &&
          e.last_frame >= g.first_frame - 14) {
        ++hit;
        break;
      }
    }
  }
  double recall = static_cast<double>(hit) / static_cast<double>(gt.size());
  EXPECT_GE(recall, 0.5) << hit << "/" << gt.size();
}

TEST_F(SelectionTest, PlanReportsDeployedFilters) {
  SelectionExecutor ex(stream_, udfs_, FastOptions());
  auto r = ex.Run(RedBusQuery()).value();
  EXPECT_NE(r.plan.find("temporal"), std::string::npos);
  EXPECT_NE(r.plan.find("spatial"), std::string::npos);
}

TEST_F(SelectionTest, LesionTogglesChangeCost) {
  AnalyzedQuery q = RedBusQuery();
  SelectionOptions all = FastOptions();
  SelectionExecutor ex_all(stream_, udfs_, all);
  double with_all = ex_all.Run(q).value().cost.TotalSeconds();

  SelectionOptions no_temporal = FastOptions();
  no_temporal.use_temporal_filter = false;
  SelectionExecutor ex_nt(stream_, udfs_, no_temporal);
  double without_temporal = ex_nt.Run(q).value().cost.TotalSeconds();
  EXPECT_GT(without_temporal, with_all);

  SelectionOptions no_content = FastOptions();
  no_content.use_content_filter = false;
  SelectionExecutor ex_nc(stream_, udfs_, no_content);
  double without_content = ex_nc.Run(q).value().cost.TotalSeconds();
  EXPECT_GT(without_content, with_all);
}

TEST_F(SelectionTest, NoUdfQueryStillWorks) {
  auto parsed = ParseFrameQL("SELECT * FROM taipei WHERE class = 'bus'");
  auto q = AnalyzeQuery(parsed.value(), stream_->config).value();
  SelectionExecutor ex(stream_, udfs_, FastOptions());
  auto r = ex.Run(q);
  BLAZEIT_ASSERT_OK(r);
  EXPECT_GT(r.value().rows.size(), 0u);
}

TEST_F(SelectionTest, GroundTruthEventsRespectPersistence) {
  AnalyzedQuery q = RedBusQuery();
  auto gt = GroundTruthSelectionEvents(*stream_->test_day, q, *udfs_);
  for (const auto& e : gt) {
    EXPECT_GE(e.last_frame - e.first_frame + 1, q.persistence_frames);
  }
  // Tighter persistence keeps fewer events.
  AnalyzedQuery longer = q;
  longer.persistence_frames = 90;
  auto gt_long = GroundTruthSelectionEvents(*stream_->test_day, longer,
                                            *udfs_);
  EXPECT_LE(gt_long.size(), gt.size());
}

TEST_F(SelectionTest, NoScopeOracleBetweenNaiveAndBlazeIt) {
  AnalyzedQuery q = RedBusQuery();
  auto naive = NaiveSelection(stream_, udfs_, q).value();
  auto oracle = NoScopeOracleSelection(stream_, udfs_, q).value();
  SelectionExecutor ex(stream_, udfs_, FastOptions());
  auto blazeit = ex.Run(q).value();
  EXPECT_LT(oracle.cost.TotalSeconds(), naive.cost.TotalSeconds());
  EXPECT_LT(blazeit.cost.TotalSeconds(), oracle.cost.TotalSeconds());
}

}  // namespace
}  // namespace blazeit
