#include "video/image.h"

#include <gtest/gtest.h>

#include <utility>

#include "util/random.h"

namespace blazeit {
namespace {

TEST(ImageTest, ConstructZeroed) {
  Image img(4, 3);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.At(2, 1, 0), 0.0f);
  EXPECT_FALSE(img.Empty());
  EXPECT_TRUE(Image().Empty());
}

TEST(ImageTest, FillSetsEveryPixel) {
  Image img(5, 5);
  img.Fill(Color{0.2f, 0.4f, 0.6f});
  EXPECT_FLOAT_EQ(img.At(0, 0, 0), 0.2f);
  EXPECT_FLOAT_EQ(img.At(4, 4, 1), 0.4f);
  EXPECT_FLOAT_EQ(img.At(2, 3, 2), 0.6f);
}

TEST(ImageTest, FillRectCoversCenterContainedPixels) {
  Image img(10, 10);
  img.FillRect(Rect{0.0, 0.0, 0.5, 0.5}, Color{1, 1, 1});
  // Pixels 0..4 have centers < 0.5; pixel 5 center is 0.55.
  EXPECT_FLOAT_EQ(img.At(4, 4, 0), 1.0f);
  EXPECT_FLOAT_EQ(img.At(5, 5, 0), 0.0f);
}

TEST(ImageTest, FillRectOutOfBoundsClamped) {
  Image img(4, 4);
  img.FillRect(Rect{-1.0, -1.0, 2.0, 2.0}, Color{1, 0, 0});
  EXPECT_FLOAT_EQ(img.At(0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(img.At(3, 3, 0), 1.0f);
}

TEST(ImageTest, MeanChannel) {
  Image img(2, 2);
  img.Set(0, 0, 0, 1.0f);
  EXPECT_NEAR(img.MeanChannel(0), 0.25, 1e-6);
  EXPECT_NEAR(img.MeanChannel(1), 0.0, 1e-6);
}

TEST(ImageTest, MeanChannelsBitIdenticalToPerChannel) {
  // The fused pass must match MeanChannel exactly, including at sizes
  // whose pixel count is not a power of two (where a reciprocal multiply
  // would differ from the division in the last bit).
  Rng rng(31);
  for (auto [w, h] : {std::pair{48, 48}, {13, 9}, {64, 64}, {7, 5}}) {
    Image img(w, h);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        for (int c = 0; c < 3; ++c) {
          img.Set(x, y, c, static_cast<float>(rng.Uniform()));
        }
      }
    }
    double fused[3];
    img.MeanChannels(fused);
    for (int c = 0; c < 3; ++c) {
      ASSERT_EQ(fused[c], img.MeanChannel(c)) << w << "x" << h << " c " << c;
    }
  }
}

TEST(ImageTest, MeanChannelInRect) {
  Image img(10, 10);
  img.FillRect(Rect{0.0, 0.0, 0.5, 1.0}, Color{1, 0, 0});
  EXPECT_NEAR(img.MeanChannelInRect(0, Rect{0.0, 0.0, 0.5, 1.0}), 1.0, 1e-6);
  EXPECT_NEAR(img.MeanChannelInRect(0, Rect{0.5, 0.0, 1.0, 1.0}), 0.0, 0.25);
}

TEST(ImageTest, AddNoiseBoundedAndDeterministic) {
  Image a(8, 8), b(8, 8);
  a.Fill(Color{0.5f, 0.5f, 0.5f});
  b.Fill(Color{0.5f, 0.5f, 0.5f});
  Rng r1(9), r2(9);
  a.AddNoise(&r1, 0.1);
  b.AddNoise(&r2, 0.1);
  bool any_changed = false;
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      for (int c = 0; c < 3; ++c) {
        EXPECT_GE(a.At(x, y, c), 0.0f);
        EXPECT_LE(a.At(x, y, c), 1.0f);
        EXPECT_FLOAT_EQ(a.At(x, y, c), b.At(x, y, c));
        if (a.At(x, y, c) != 0.5f) any_changed = true;
      }
    }
  }
  EXPECT_TRUE(any_changed);
}

TEST(ImageTest, ScaleBrightnessClamped) {
  Image img(2, 2);
  img.Fill(Color{0.8f, 0.8f, 0.8f});
  img.ScaleBrightness(2.0f);
  EXPECT_FLOAT_EQ(img.At(0, 0, 0), 1.0f);
}

TEST(ImageTest, CropExtractsRegion) {
  Image img(10, 10);
  img.FillRect(Rect{0.5, 0.5, 1.0, 1.0}, Color{0, 1, 0});
  Image crop = img.Crop(Rect{0.5, 0.5, 1.0, 1.0});
  EXPECT_EQ(crop.width(), 5);
  EXPECT_EQ(crop.height(), 5);
  EXPECT_NEAR(crop.MeanChannel(1), 1.0, 1e-6);
}

TEST(ImageTest, CropEmptyRect) {
  Image img(10, 10);
  EXPECT_TRUE(img.Crop(Rect{0.5, 0.5, 0.5, 0.5}).Empty());
}

TEST(ImageTest, ResizeDownAverages) {
  Image img(4, 4);
  img.FillRect(Rect{0.0, 0.0, 0.5, 1.0}, Color{1, 1, 1});
  Image small = img.Resize(2, 2);
  EXPECT_EQ(small.width(), 2);
  EXPECT_NEAR(small.At(0, 0, 0), 1.0, 1e-6);
  EXPECT_NEAR(small.At(1, 0, 0), 0.0, 1e-6);
}

TEST(ImageTest, FlattenSizeAndOrder) {
  Image img(3, 2);
  img.Set(0, 0, 0, 0.7f);
  std::vector<float> flat = img.Flatten();
  ASSERT_EQ(flat.size(), 3u * 2u * 3u);
  EXPECT_FLOAT_EQ(flat[0], 0.7f);
}

}  // namespace
}  // namespace blazeit
