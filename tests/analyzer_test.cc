#include "frameql/analyzer.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

#include "frameql/parser.h"
#include "video/datasets.h"

namespace blazeit {
namespace {

AnalyzedQuery MustAnalyze(const std::string& sql,
                          const StreamConfig& cfg = TaipeiConfig()) {
  auto parsed = ParseFrameQL(sql);
  BLAZEIT_EXPECT_OK(parsed);
  auto analyzed = AnalyzeQuery(parsed.value(), cfg);
  BLAZEIT_EXPECT_OK(analyzed);
  return analyzed.value();
}

TEST(AnalyzerTest, ClassifiesAggregate) {
  auto q = MustAnalyze(
      "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' "
      "ERROR WITHIN 0.05 AT CONFIDENCE 99%");
  EXPECT_EQ(q.kind, QueryKind::kAggregate);
  EXPECT_EQ(q.agg_class, kCar);
  EXPECT_DOUBLE_EQ(q.error, 0.05);
  EXPECT_DOUBLE_EQ(q.confidence, 0.99);
  EXPECT_FALSE(q.scale_to_total);
}

TEST(AnalyzerTest, CountStarScalesToTotal) {
  auto q = MustAnalyze(
      "SELECT COUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.1");
  EXPECT_EQ(q.kind, QueryKind::kAggregate);
  EXPECT_TRUE(q.scale_to_total);
}

TEST(AnalyzerTest, ClassifiesScrubbing) {
  auto q = MustAnalyze(
      "SELECT timestamp FROM taipei GROUP BY timestamp "
      "HAVING SUM(class='bus') >= 1 AND SUM(class='car') >= 5 "
      "LIMIT 10 GAP 300");
  EXPECT_EQ(q.kind, QueryKind::kScrubbing);
  ASSERT_EQ(q.requirements.size(), 2u);
  EXPECT_EQ(q.requirements[0].class_id, kBus);
  EXPECT_EQ(q.requirements[0].min_count, 1);
  EXPECT_EQ(q.requirements[1].class_id, kCar);
  EXPECT_EQ(q.requirements[1].min_count, 5);
  EXPECT_EQ(q.limit, 10);
  EXPECT_EQ(q.gap, 300);
}

TEST(AnalyzerTest, StrictGreaterBecomesMinCountPlusOne) {
  auto q = MustAnalyze(
      "SELECT timestamp FROM taipei GROUP BY timestamp "
      "HAVING SUM(class='car') > 4 LIMIT 5");
  EXPECT_EQ(q.requirements[0].min_count, 5);
}

TEST(AnalyzerTest, ClassifiesSelection) {
  auto q = MustAnalyze(
      "SELECT * FROM taipei WHERE class = 'bus' "
      "AND redness(content) >= 0.3 AND area(mask) > 50000 "
      "GROUP BY trackid HAVING COUNT(*) > 15");
  EXPECT_EQ(q.kind, QueryKind::kSelection);
  EXPECT_EQ(q.sel_class, kBus);
  ASSERT_EQ(q.udf_predicates.size(), 1u);
  EXPECT_DOUBLE_EQ(q.min_area_px, 50000);
  EXPECT_EQ(q.persistence_frames, 16);  // COUNT(*) > 15
}

TEST(AnalyzerTest, SpatialPixelsNormalized) {
  // xmax(mask) < 720 on a 1280-wide stream -> roi.xmax = 0.5625.
  auto q = MustAnalyze(
      "SELECT * FROM taipei WHERE class = 'bus' AND xmax(mask) < 720");
  EXPECT_TRUE(q.has_roi);
  EXPECT_NEAR(q.roi.xmax, 720.0 / 1280.0, 1e-9);
}

TEST(AnalyzerTest, SpatialNormalizedPassThrough) {
  auto q = MustAnalyze(
      "SELECT * FROM taipei WHERE class = 'bus' AND ymin(mask) >= 0.5");
  EXPECT_TRUE(q.has_roi);
  EXPECT_NEAR(q.roi.ymin, 0.5, 1e-9);
}

TEST(AnalyzerTest, EmptyRoiRejected) {
  auto parsed = ParseFrameQL(
      "SELECT * FROM taipei WHERE class = 'bus' AND xmax(mask) < 0.3 "
      "AND xmin(mask) >= 0.7");
  BLAZEIT_ASSERT_OK(parsed);
  EXPECT_FALSE(AnalyzeQuery(parsed.value(), TaipeiConfig()).ok());
}

TEST(AnalyzerTest, TimestampRange) {
  auto q = MustAnalyze(
      "SELECT * FROM taipei WHERE class = 'car' AND timestamp >= 600 "
      "AND timestamp < 1200");
  EXPECT_DOUBLE_EQ(q.begin_sec, 600);
  EXPECT_DOUBLE_EQ(q.end_sec, 1200);
  EXPECT_FALSE(q.begin_exclusive);
  EXPECT_FALSE(q.end_inclusive);
}

TEST(AnalyzerTest, TimestampBoundsAreFrameExact) {
  // taipei is 30 fps; frame t is stamped t/30 seconds.
  auto inclusive = MustAnalyze(
      "SELECT * FROM taipei WHERE class = 'car' AND timestamp >= 20 "
      "AND timestamp <= 60");
  EXPECT_FALSE(inclusive.begin_exclusive);
  EXPECT_TRUE(inclusive.end_inclusive);
  auto win = ResolveFrameWindow(inclusive, 30, 12000);
  BLAZEIT_ASSERT_OK(win);
  // <= 60 includes the frame stamped exactly 60 s (frame 1800).
  EXPECT_EQ(win.value().begin, 600);
  EXPECT_EQ(win.value().end, 1801);

  auto exclusive = MustAnalyze(
      "SELECT * FROM taipei WHERE class = 'car' AND timestamp > 20 "
      "AND timestamp < 60");
  EXPECT_TRUE(exclusive.begin_exclusive);
  EXPECT_FALSE(exclusive.end_inclusive);
  win = ResolveFrameWindow(exclusive, 30, 12000);
  BLAZEIT_ASSERT_OK(win);
  // > 20 excludes frame 600 (stamped exactly 20 s); < 60 excludes 1800.
  EXPECT_EQ(win.value().begin, 601);
  EXPECT_EQ(win.value().end, 1800);

  // A single instant is expressible: >= 50 AND <= 50 selects frame 1500.
  auto instant = MustAnalyze(
      "SELECT * FROM taipei WHERE class = 'car' AND timestamp >= 50 "
      "AND timestamp <= 50");
  win = ResolveFrameWindow(instant, 30, 12000);
  BLAZEIT_ASSERT_OK(win);
  EXPECT_EQ(win.value().begin, 1500);
  EXPECT_EQ(win.value().end, 1501);

  // Non-integer boundaries round to the frames actually satisfying the
  // predicate: >= 20.01 s starts at frame 601 (600.3 rounds up).
  auto fractional = MustAnalyze(
      "SELECT * FROM taipei WHERE class = 'car' AND timestamp >= 20.01");
  win = ResolveFrameWindow(fractional, 30, 12000);
  BLAZEIT_ASSERT_OK(win);
  EXPECT_EQ(win.value().begin, 601);
  EXPECT_EQ(win.value().end, 12000);

  // An inverted range is rejected; a range past the end of the day — or
  // one so narrow no frame falls inside — resolves to an empty window.
  auto inverted = MustAnalyze(
      "SELECT * FROM taipei WHERE class = 'car' AND timestamp >= 100 "
      "AND timestamp <= 50");
  EXPECT_FALSE(ResolveFrameWindow(inverted, 30, 12000).ok());
  auto past_end = MustAnalyze(
      "SELECT * FROM taipei WHERE class = 'car' AND timestamp >= 1000");
  win = ResolveFrameWindow(past_end, 30, 12000);
  BLAZEIT_ASSERT_OK(win);
  EXPECT_EQ(win.value().begin, win.value().end);
  auto narrow = MustAnalyze(
      "SELECT * FROM taipei WHERE class = 'car' AND timestamp > 20 "
      "AND timestamp < 20.02");
  win = ResolveFrameWindow(narrow, 30, 12000);
  BLAZEIT_ASSERT_OK(win);
  EXPECT_EQ(win.value().begin, win.value().end);

  // Frame-instant bounds whose double product lands an ulp off an
  // integer still resolve exactly: 31/30 s names frame 31.
  auto ulp = MustAnalyze(
      "SELECT * FROM taipei WHERE class = 'car' "
      "AND timestamp >= 1.0333333333333334");
  win = ResolveFrameWindow(ulp, 30, 12000);
  BLAZEIT_ASSERT_OK(win);
  EXPECT_EQ(win.value().begin, 31);

  // Extreme literals (~1e21 s; * fps overflows int64) saturate instead
  // of overflowing the frame cast: a huge lower bound selects nothing, a
  // huge upper bound selects the whole day.
  auto huge_begin = MustAnalyze(
      "SELECT * FROM taipei WHERE class = 'car' "
      "AND timestamp >= 999999999999999999999");
  win = ResolveFrameWindow(huge_begin, 30, 12000);
  BLAZEIT_ASSERT_OK(win);
  EXPECT_EQ(win.value().begin, win.value().end);
  auto huge_end = MustAnalyze(
      "SELECT * FROM taipei WHERE class = 'car' "
      "AND timestamp <= 999999999999999999999");
  win = ResolveFrameWindow(huge_end, 30, 12000);
  BLAZEIT_ASSERT_OK(win);
  EXPECT_EQ(win.value().begin, 0);
  EXPECT_EQ(win.value().end, 12000);
}

TEST(AnalyzerTest, BinarySelect) {
  auto q = MustAnalyze(
      "SELECT timestamp FROM taipei WHERE class = 'car' "
      "FNR WITHIN 0.01 FPR WITHIN 0.02");
  EXPECT_EQ(q.kind, QueryKind::kBinarySelect);
  EXPECT_DOUBLE_EQ(q.fnr, 0.01);
  EXPECT_DOUBLE_EQ(q.fpr, 0.02);
}

TEST(AnalyzerTest, CountDistinct) {
  auto q = MustAnalyze(
      "SELECT COUNT(DISTINCT trackid) FROM taipei WHERE class = 'car'");
  EXPECT_EQ(q.kind, QueryKind::kCountDistinct);
}

TEST(AnalyzerTest, TableMismatchRejected) {
  auto parsed = ParseFrameQL("SELECT * FROM rialto WHERE class = 'boat'");
  BLAZEIT_ASSERT_OK(parsed);
  EXPECT_FALSE(AnalyzeQuery(parsed.value(), TaipeiConfig()).ok());
}

TEST(AnalyzerTest, AggregateWithoutClassRejected) {
  auto parsed = ParseFrameQL("SELECT FCOUNT(*) FROM taipei ERROR WITHIN 0.1");
  BLAZEIT_ASSERT_OK(parsed);
  EXPECT_FALSE(AnalyzeQuery(parsed.value(), TaipeiConfig()).ok());
}

TEST(AnalyzerTest, ConflictingClassesRejected) {
  auto parsed = ParseFrameQL(
      "SELECT * FROM taipei WHERE class = 'car' AND class = 'bus'");
  BLAZEIT_ASSERT_OK(parsed);
  EXPECT_FALSE(AnalyzeQuery(parsed.value(), TaipeiConfig()).ok());
}

TEST(AnalyzerTest, HavingWithoutGroupByRejected) {
  auto parsed = ParseFrameQL(
      "SELECT timestamp FROM taipei HAVING SUM(class='car') >= 1 LIMIT 5");
  BLAZEIT_ASSERT_OK(parsed);
  EXPECT_FALSE(AnalyzeQuery(parsed.value(), TaipeiConfig()).ok());
}

TEST(AnalyzerTest, QueryKindNames) {
  EXPECT_STREQ(QueryKindName(QueryKind::kAggregate), "aggregate");
  EXPECT_STREQ(QueryKindName(QueryKind::kScrubbing), "scrubbing");
}

}  // namespace
}  // namespace blazeit
