#include "video/synthetic_video.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "video/datasets.h"

namespace blazeit {
namespace {

StreamConfig SmallConfig() {
  StreamConfig cfg = TaipeiConfig();
  return cfg;
}

TEST(SyntheticVideoTest, CreateValidates) {
  EXPECT_FALSE(SyntheticVideo::Create(SmallConfig(), 1, 0).ok());
  StreamConfig bad = SmallConfig();
  bad.classes.clear();
  EXPECT_FALSE(SyntheticVideo::Create(bad, 1, 100).ok());
}

TEST(SyntheticVideoTest, Timestamps) {
  auto video = SyntheticVideo::Create(SmallConfig(), 1, 90).value();
  EXPECT_DOUBLE_EQ(video->TimestampSeconds(0), 0.0);
  EXPECT_DOUBLE_EQ(video->TimestampSeconds(60), 2.0);  // 30 fps
}

TEST(SyntheticVideoTest, GroundTruthDeterministicAndOrderIndependent) {
  auto v1 = SyntheticVideo::Create(SmallConfig(), 7, 3000).value();
  auto v2 = SyntheticVideo::Create(SmallConfig(), 7, 3000).value();
  // Access v2 backwards; results must match v1 accessed forwards.
  for (int64_t t = 2999; t >= 0; --t) (void)v2->GroundTruth(t);
  for (int64_t t = 0; t < 3000; t += 97) {
    auto a = v1->GroundTruth(t);
    auto b = v2->GroundTruth(t);
    ASSERT_EQ(a.size(), b.size()) << t;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].track_id, b[i].track_id);
      EXPECT_EQ(a[i].rect, b[i].rect);
    }
  }
}

TEST(SyntheticVideoTest, DifferentSeedsDiffer) {
  auto a = SyntheticVideo::Create(SmallConfig(), 1, 2000).value();
  auto b = SyntheticVideo::Create(SmallConfig(), 2, 2000).value();
  EXPECT_NE(a->DistinctTracks(kCar), b->DistinctTracks(kCar));
}

TEST(SyntheticVideoTest, OutOfRangeFrameIsEmpty) {
  auto video = SyntheticVideo::Create(SmallConfig(), 1, 100).value();
  EXPECT_TRUE(video->GroundTruth(-1).empty());
  EXPECT_TRUE(video->GroundTruth(100).empty());
  EXPECT_EQ(video->CountVisible(100, kCar), 0);
}

TEST(SyntheticVideoTest, CountVisibleMatchesGroundTruth) {
  auto video = SyntheticVideo::Create(SmallConfig(), 3, 2000).value();
  for (int64_t t = 0; t < 2000; t += 111) {
    int count = 0;
    for (const auto& obj : video->GroundTruth(t)) {
      if (obj.class_id == kCar) ++count;
    }
    EXPECT_EQ(video->CountVisible(t, kCar), count);
  }
}

TEST(SyntheticVideoTest, OccupancyNearTarget) {
  // One hour of taipei; occupancy should approach the Table 3 target.
  auto video =
      SyntheticVideo::Create(TaipeiConfig(), kTestDaySeed, 108000).value();
  EXPECT_NEAR(video->MeasureOccupancy(kCar), 0.644, 0.06);
  EXPECT_NEAR(video->MeasureOccupancy(kBus), 0.119, 0.04);
}

TEST(SyntheticVideoTest, MeanDurationNearTarget) {
  auto video =
      SyntheticVideo::Create(TaipeiConfig(), kTestDaySeed, 108000).value();
  EXPECT_NEAR(video->MeanDurationSeconds(kCar), 1.43, 0.25);
  EXPECT_NEAR(video->MeanDurationSeconds(kBus), 2.82, 0.6);
}

TEST(SyntheticVideoTest, ObjectsStayInClassRegion) {
  auto video = SyntheticVideo::Create(SmallConfig(), 5, 5000).value();
  const Rect& region = *&video->config().FindClass(kBus)->region;
  for (int64_t t = 0; t < 5000; t += 53) {
    for (const auto& obj : video->GroundTruth(t)) {
      if (obj.class_id != kBus) continue;
      // Bounce keeps centers inside the configured region.
      EXPECT_GE(obj.rect.CenterX(), region.xmin - 1e-6);
      EXPECT_LE(obj.rect.CenterX(), region.xmax + 1e-6);
      EXPECT_GE(obj.rect.CenterY(), region.ymin - 1e-6);
      EXPECT_LE(obj.rect.CenterY(), region.ymax + 1e-6);
    }
  }
}

TEST(SyntheticVideoTest, TrackIdsArePerInstanceStable) {
  auto video = SyntheticVideo::Create(SmallConfig(), 11, 4000).value();
  // A track seen at consecutive frames keeps its rect moving continuously.
  for (int64_t t = 0; t + 1 < 4000; t += 211) {
    for (const auto& obj : video->GroundTruth(t)) {
      for (const auto& next : video->GroundTruth(t + 1)) {
        if (next.track_id == obj.track_id) {
          EXPECT_GT(Iou(obj.rect, next.rect), 0.1)
              << "object teleported between consecutive frames";
        }
      }
    }
  }
}

TEST(SyntheticVideoTest, RenderedObjectsVisible) {
  auto video = SyntheticVideo::Create(SmallConfig(), 13, 2000).value();
  // Find a frame with a red tour bus and check its pixels are red-ish.
  for (int64_t t = 0; t < 2000; ++t) {
    for (const auto& obj : video->GroundTruth(t)) {
      if (obj.class_id == kBus && obj.population == 0 &&
          obj.rect.Area() > 0.02) {
        Image img = video->RenderFrame(t, 64, 64);
        double red = img.MeanChannelInRect(0, obj.rect);
        double green = img.MeanChannelInRect(1, obj.rect);
        EXPECT_GT(red, green + 0.2);
        return;
      }
    }
  }
  GTEST_SKIP() << "no large red bus in the sampled window";
}

TEST(SyntheticVideoTest, RenderRegionReprojects) {
  auto video = SyntheticVideo::Create(SmallConfig(), 17, 500).value();
  // Rendering the bottom-right quadrant: a full-frame render's content in
  // that quadrant should roughly match the region render.
  Image full = video->RenderFrame(100, 64, 64);
  Image region = video->RenderFrameRegion(100, Rect{0.5, 0.5, 1.0, 1.0},
                                          32, 32);
  double full_q = full.MeanChannelInRect(0, Rect{0.5, 0.5, 1.0, 1.0});
  double reg = region.MeanChannel(0);
  EXPECT_NEAR(full_q, reg, 0.05);
}

TEST(SyntheticVideoTest, ClutterRenderedButNotInGroundTruth) {
  StreamConfig cfg = ArchieConfig();
  cfg.pixel_noise = 0.0;  // isolate clutter signal
  auto video = SyntheticVideo::Create(cfg, 21, 100).value();
  // Find a frame with no objects; it must still deviate from background
  // somewhere (clutter), while ground truth stays empty.
  for (int64_t t = 0; t < 100; ++t) {
    if (!video->GroundTruth(t).empty()) continue;
    Image img = video->RenderFrame(t, 64, 64);
    int off_background = 0;
    for (int y = 0; y < 64; ++y) {
      for (int x = 0; x < 64; ++x) {
        if (std::abs(img.At(x, y, 0) - cfg.background.r) > 0.1) {
          ++off_background;
        }
      }
    }
    EXPECT_GT(off_background, 0) << "clutter should be visible";
    return;
  }
  GTEST_SKIP() << "no empty frame found";
}

TEST(SyntheticVideoTest, LightingStaysInDisplayableRange) {
  // Regression for the unclamped lighting bug: with a large per-day
  // brightness jitter the day factor 1 + N(0, jitter) can go negative (or
  // far above 1), and with pixel_noise == 0 nothing downstream ever
  // clamped, so negative channel values flowed straight into NN features
  // and content UDFs. The light factor is now clamped to >= 0 and the
  // fill sites clamp colors to [0,1]; every rendered channel must honor
  // the Image contract for every day seed.
  StreamConfig cfg = SmallConfig();
  cfg.day_brightness_jitter = 3.0;  // most days land far out of range
  cfg.pixel_noise = 0.0;            // nothing downstream clamps
  bool saw_saturated_day = false;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    auto video = SyntheticVideo::Create(cfg, seed, 600).value();
    for (int64_t frame : {int64_t{0}, int64_t{299}, int64_t{599}}) {
      Image img = video->RenderFrame(frame, 16, 16);
      float lo = 2.0f, hi = -1.0f;
      for (float v : img.data()) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      ASSERT_GE(lo, 0.0f) << "seed " << seed << " frame " << frame;
      ASSERT_LE(hi, 1.0f) << "seed " << seed << " frame " << frame;
      // A day whose jittered light factor collapsed to zero (or pegged a
      // channel at 1) proves the clamp actually engaged in this config.
      if (hi == 0.0f || hi == 1.0f) saw_saturated_day = true;
    }
  }
  EXPECT_TRUE(saw_saturated_day)
      << "jitter 3.0 never pushed the light factor out of range across 12 "
         "seeds; the regression test lost its teeth";
}

TEST(SyntheticVideoTest, RenderIntoScratchMatchesAllocatingRender) {
  // The batch paths render into a reused scratch Image; bits must match
  // the allocating API exactly, including across size changes of the
  // scratch buffer.
  auto video = SyntheticVideo::Create(SmallConfig(), 3, 400).value();
  Image scratch;
  constexpr int kSizes[][2] = {{32, 32}, {64, 64}, {48, 48}, {16, 16},
                               {64, 64}};
  int64_t frame = 0;
  for (auto [w, h] : kSizes) {
    Image fresh = video->RenderFrame(frame, w, h);
    video->RenderFrameRegionInto(frame, Rect{0, 0, 1, 1}, w, h, &scratch);
    ASSERT_EQ(scratch.width(), w);
    ASSERT_EQ(scratch.height(), h);
    ASSERT_EQ(fresh.data(), scratch.data()) << w << "x" << h;
    frame += 97;
  }
}

}  // namespace
}  // namespace blazeit
