#include "util/status.h"

#include <gtest/gtest.h>

namespace blazeit {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("epsilon must be positive");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "epsilon must be positive");
  EXPECT_EQ(s.ToString(), "InvalidArgument: epsilon must be positive");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Status Fails() { return Status::Internal("boom"); }
Status PropagatesHelper() {
  BLAZEIT_RETURN_NOT_OK(Fails());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(PropagatesHelper().code(), StatusCode::kInternal);
}

Result<int> GivesFive() { return 5; }
Result<int> UsesAssignOrReturn() {
  BLAZEIT_ASSIGN_OR_RETURN(int v, GivesFive());
  return v + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto r = UsesAssignOrReturn();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 6);
}

}  // namespace
}  // namespace blazeit
