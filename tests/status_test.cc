#include "util/status.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace blazeit {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  BLAZEIT_EXPECT_OK(s);
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("epsilon must be positive");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "epsilon must be positive");
  EXPECT_EQ(s.ToString(), "InvalidArgument: epsilon must be positive");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, ResourceExhaustedFormatsLikeOtherCodes) {
  const Status s = Status::ResourceExhausted("queue full");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "queue full");
  EXPECT_EQ(s.ToString(), "ResourceExhausted: queue full");
  EXPECT_EQ(s, Status::ResourceExhausted("queue full"));
  EXPECT_FALSE(s == Status::ResourceExhausted("quota spent"));
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  BLAZEIT_ASSERT_OK(r);
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Status Fails() { return Status::Internal("boom"); }
Status PropagatesHelper() {
  BLAZEIT_RETURN_NOT_OK(Fails());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(PropagatesHelper().code(), StatusCode::kInternal);
}

Result<int> GivesFive() { return 5; }
Result<int> UsesAssignOrReturn() {
  BLAZEIT_ASSIGN_OR_RETURN(int v, GivesFive());
  return v + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto r = UsesAssignOrReturn();
  BLAZEIT_ASSERT_OK(r);
  EXPECT_EQ(r.value(), 6);
}

TEST(StatusTest, ToStringForEveryErrorCode) {
  EXPECT_EQ(Status::InvalidArgument("m").ToString(), "InvalidArgument: m");
  EXPECT_EQ(Status::NotFound("m").ToString(), "NotFound: m");
  EXPECT_EQ(Status::OutOfRange("m").ToString(), "OutOfRange: m");
  EXPECT_EQ(Status::FailedPrecondition("m").ToString(),
            "FailedPrecondition: m");
  EXPECT_EQ(Status::Unimplemented("m").ToString(), "Unimplemented: m");
  EXPECT_EQ(Status::ParseError("m").ToString(), "ParseError: m");
  EXPECT_EQ(Status::Internal("m").ToString(), "Internal: m");
}

TEST(StatusTest, EmptyMessageRendersBareCode) {
  EXPECT_EQ(Status::Internal("").ToString(), "Internal");
  EXPECT_EQ(Status(StatusCode::kNotFound, "").ToString(), "NotFound");
}

TEST(StatusTest, EqualityRequiresSameCodeAndMessage) {
  EXPECT_FALSE(Status::NotFound("m") == Status::Internal("m"));
  EXPECT_FALSE(Status::NotFound("m") == Status::OK());
}

Status Succeeds() { return Status::OK(); }
Status PassesThroughHelper() {
  BLAZEIT_RETURN_NOT_OK(Succeeds());
  return Status::NotFound("fell through");
}

TEST(ResultTest, ReturnNotOkContinuesOnSuccess) {
  // The macro must not return on an OK status.
  EXPECT_EQ(PassesThroughHelper().code(), StatusCode::kNotFound);
}

Result<int> GivesError() { return Status::OutOfRange("too big"); }
Result<int> AssignOrReturnPropagates() {
  BLAZEIT_ASSIGN_OR_RETURN(int v, GivesError());
  return v + 1;
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto r = AssignOrReturnPropagates();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(r.status().message(), "too big");
}

TEST(ResultTest, ErrorStatusPreservedVerbatim) {
  Result<std::string> r(Status::ParseError("near offset 3"));
  EXPECT_EQ(r.status(), Status::ParseError("near offset 3"));
  EXPECT_EQ(r.value_or("fallback"), "fallback");
}

TEST(ResultTest, CopyableWhenValueIs) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  Result<std::vector<int>> copy = r;
  BLAZEIT_ASSERT_OK(copy);
  EXPECT_EQ(copy.value(), r.value());
}

}  // namespace
}  // namespace blazeit
