// Determinism contract of the observability layer (slow lane): the
// *stable* metrics a query emits (obs::Stability::kStable — store reads,
// sketch loads, exec run/shard counts, NN batches/frames, persistent-tier
// cache hits) and its trace's span structure are a function of the work
// executed, not of scheduling — so they must be bit-identical at pool
// sizes 1, 2, and 8, and identical between serial Execute and
// ExecuteBatch. Unstable instruments (which thread claimed a shard, queue
// depths, shared-tier cache races) are exported but excluded via
// MetricsSnapshot::StableOnly().
//
// Also the ExecutionReport acceptance checks: simulated-cost fields
// reconcile bit-exactly with the query's CostMeter, and every plan
// family's Chrome trace JSON is well-formed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "testing/json_util.h"
#include "testing/test_util.h"

namespace blazeit {
namespace {

using testutil::JsonValidator;

// One query per report-bearing plan family: exhaustive full scan,
// specialized aggregation, and scrubbing.
const char* kQueries[] = {
    "SELECT * FROM taipei WHERE class = 'bus' AND timestamp >= 1000",
    "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' "
    "ERROR WITHIN 0.1 AT CONFIDENCE 95%",
    "SELECT timestamp FROM taipei GROUP BY timestamp "
    "HAVING SUM(class='car') >= 2 LIMIT 10 GAP 300",
};

class TraceDeterminismTest
    : public testutil::CatalogFixture<TraceDeterminismTest> {
 public:
  static DayLengths Lengths() { return testutil::SmallDays(3000, 3000, 6000); }

 protected:
  static void SetUpTestSuite() {
    CatalogFixture::SetUpTestSuite();
    EngineOptions options = testutil::SmallEngineOptions();
    options.collect_reports = true;
    options.use_store_index = true;
    engine_ = new BlazeItEngine(catalog_, options);
    // Warm-up: one run per query so cold-vs-warm store effects (training
    // a NN vs hitting its cached weights moves stable counters like
    // nn.train_batches) are spent before any measured run.
    for (const char* q : kQueries) {
      auto out = engine_->Execute(q);
      ASSERT_TRUE(out.ok()) << out.status().ToString();
    }
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
    CatalogFixture::TearDownTestSuite();
  }
  void TearDown() override {
    exec::ThreadPool::Instance().Reconfigure(
        exec::ThreadPool::ThreadsFromEnv());
  }

  struct Captured {
    QueryOutput out;
    /// Stable-only delta of the global registry over the run, as text.
    std::string stable_metrics;
    /// Span names + nesting of the run's trace.
    std::string structure;
  };

  /// Executes `frameql` and captures output, stable metric deltas, and
  /// trace structure. Asserts the run succeeded and produced a report.
  void RunOnce(const std::string& frameql, Captured* cap) {
    const obs::MetricsSnapshot before =
        obs::MetricsRegistry::Global().Snapshot();
    auto out = engine_->Execute(frameql);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    cap->out = std::move(out).value();
    cap->stable_metrics = obs::MetricsRegistry::Global()
                              .Snapshot()
                              .DeltaFrom(before)
                              .StableOnly()
                              .ToText();
    ASSERT_NE(cap->out.report, nullptr);
    ASSERT_NE(cap->out.report->trace, nullptr);
    cap->structure = cap->out.report->trace->StructureSignature();
  }

  static BlazeItEngine* engine_;
};

BlazeItEngine* TraceDeterminismTest::engine_ = nullptr;

TEST_F(TraceDeterminismTest, StableMetricsAndSpansPoolSizeInvariant) {
  for (const char* q : kQueries) {
    SCOPED_TRACE(q);
    std::vector<Captured> runs;
    for (int threads : {1, 2, 8}) {
      exec::ThreadPool::Instance().Reconfigure(threads);
      Captured cap;
      ASSERT_NO_FATAL_FAILURE(RunOnce(q, &cap));
      runs.push_back(std::move(cap));
    }
    const Captured& serial = runs.front();
    EXPECT_FALSE(serial.stable_metrics.empty());
    EXPECT_FALSE(serial.structure.empty());
    for (size_t i = 1; i < runs.size(); ++i) {
      SCOPED_TRACE("pool size " + std::to_string(i == 1 ? 2 : 8) + " vs 1");
      EXPECT_EQ(runs[i].stable_metrics, serial.stable_metrics);
      EXPECT_EQ(runs[i].structure, serial.structure);
      // The query outputs themselves stay bit-identical too (the broader
      // contract parallel_determinism_test covers in depth).
      EXPECT_EQ(runs[i].out.scalar, serial.out.scalar);
      EXPECT_EQ(runs[i].out.frames, serial.out.frames);
      EXPECT_EQ(runs[i].out.cost.TotalSeconds(),
                serial.out.cost.TotalSeconds());
    }
  }
}

TEST_F(TraceDeterminismTest, ReportReconcilesWithMeterAndTraceValidates) {
  for (const char* q : kQueries) {
    SCOPED_TRACE(q);
    Captured cap;
    ASSERT_NO_FATAL_FAILURE(RunOnce(q, &cap));
    const obs::ExecutionReport& report = *cap.out.report;
    const CostMeter& cost = cap.out.cost;
    // Bit-exact reconciliation, not approximate: the report *is* the
    // meter's accounting.
    EXPECT_EQ(report.detection_calls, cost.detection_calls());
    EXPECT_EQ(report.specialized_nn_calls, cost.specialized_nn_calls());
    EXPECT_EQ(report.filter_calls, cost.filter_calls());
    EXPECT_EQ(report.training_frames, cost.training_frames());
    EXPECT_EQ(report.detection_seconds, cost.detection_seconds());
    EXPECT_EQ(report.specialized_nn_seconds, cost.specialized_nn_seconds());
    EXPECT_EQ(report.filter_seconds, cost.filter_seconds());
    EXPECT_EQ(report.training_seconds, cost.training_seconds());
    EXPECT_EQ(report.thresholding_seconds, cost.thresholding_seconds());
    EXPECT_EQ(report.total_seconds, cost.TotalSeconds());
    EXPECT_EQ(report.query_seconds, cost.QuerySeconds());
    EXPECT_FALSE(report.plan.empty());
    EXPECT_EQ(report.batch_group, -1);  // standalone run

    const std::string chrome = report.trace->ToChromeJson();
    EXPECT_TRUE(JsonValidator::Valid(chrome)) << chrome;
    EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_TRUE(JsonValidator::Valid(report.ToJson()));
    EXPECT_FALSE(report.ToText().empty());
  }
}

TEST_F(TraceDeterminismTest, BatchSpanStructureMatchesSerial) {
  const std::vector<std::string> queries(std::begin(kQueries),
                                         std::end(kQueries));
  std::vector<Captured> serial(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_NO_FATAL_FAILURE(RunOnce(queries[i], &serial[i]));
  }
  auto batch = engine_->ExecuteBatch(queries);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  for (size_t i = 0; i < queries.size(); ++i) {
    SCOPED_TRACE(queries[i]);
    ASSERT_TRUE(batch.value().results[i].ok());
    const QueryOutput& out = batch.value().results[i].value();
    ASSERT_NE(out.report, nullptr);
    ASSERT_NE(out.report->trace, nullptr);
    // Identical span structure: the batch layer shares sweeps but never
    // changes which lifecycle stages a query runs.
    EXPECT_EQ(out.report->trace->StructureSignature(), serial[i].structure);
    EXPECT_GE(out.report->batch_group, 0);
    // Outputs and accounting stay bit-identical to standalone execution.
    EXPECT_EQ(out.scalar, serial[i].out.scalar);
    EXPECT_EQ(out.frames, serial[i].out.frames);
    EXPECT_EQ(out.cost.TotalSeconds(), serial[i].out.cost.TotalSeconds());
    EXPECT_EQ(out.report->total_seconds, serial[i].out.cost.TotalSeconds());
  }
}

}  // namespace
}  // namespace blazeit
