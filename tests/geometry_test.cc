#include "video/geometry.h"

#include <gtest/gtest.h>

namespace blazeit {
namespace {

TEST(RectTest, BasicAccessors) {
  Rect r{0.1, 0.2, 0.5, 0.6};
  EXPECT_DOUBLE_EQ(r.width(), 0.4);
  EXPECT_DOUBLE_EQ(r.height(), 0.4);
  EXPECT_NEAR(r.Area(), 0.16, 1e-12);
  EXPECT_DOUBLE_EQ(r.CenterX(), 0.3);
  EXPECT_DOUBLE_EQ(r.CenterY(), 0.4);
  EXPECT_FALSE(r.Empty());
}

TEST(RectTest, EmptyWhenInverted) {
  Rect r{0.5, 0.5, 0.2, 0.8};
  EXPECT_TRUE(r.Empty());
  EXPECT_EQ(r.Area(), 0.0);
}

TEST(RectTest, ClampToUnit) {
  Rect r{-0.5, 0.5, 1.5, 2.0};
  Rect c = r.ClampToUnit();
  EXPECT_EQ(c, (Rect{0.0, 0.5, 1.0, 1.0}));
}

TEST(RectTest, IntersectOverlapping) {
  Rect a{0.0, 0.0, 0.5, 0.5};
  Rect b{0.25, 0.25, 1.0, 1.0};
  Rect i = a.Intersect(b);
  EXPECT_EQ(i, (Rect{0.25, 0.25, 0.5, 0.5}));
  EXPECT_TRUE(a.Overlaps(b));
}

TEST(RectTest, IntersectDisjointIsEmpty) {
  Rect a{0.0, 0.0, 0.2, 0.2};
  Rect b{0.5, 0.5, 0.9, 0.9};
  EXPECT_TRUE(a.Intersect(b).Empty());
  EXPECT_FALSE(a.Overlaps(b));
}

TEST(RectTest, ContainsPoint) {
  Rect r{0.2, 0.2, 0.8, 0.8};
  EXPECT_TRUE(r.Contains(0.5, 0.5));
  EXPECT_TRUE(r.Contains(0.2, 0.2));  // inclusive min edge
  EXPECT_FALSE(r.Contains(0.8, 0.5));  // exclusive max edge
  EXPECT_FALSE(r.Contains(0.1, 0.5));
}

TEST(IouTest, IdenticalRects) {
  Rect a{0.1, 0.1, 0.4, 0.4};
  EXPECT_NEAR(Iou(a, a), 1.0, 1e-12);
}

TEST(IouTest, DisjointRects) {
  EXPECT_EQ(Iou(Rect{0, 0, 0.1, 0.1}, Rect{0.5, 0.5, 0.6, 0.6}), 0.0);
}

TEST(IouTest, HalfOverlap) {
  // Two unit-width/half-shifted boxes: intersection 0.5, union 1.5.
  Rect a{0.0, 0.0, 1.0, 1.0};
  Rect b{0.5, 0.0, 1.5, 1.0};
  EXPECT_NEAR(Iou(a, b), 0.5 / 1.5, 1e-12);
}

TEST(IouTest, Symmetric) {
  Rect a{0.1, 0.1, 0.5, 0.6};
  Rect b{0.3, 0.2, 0.7, 0.9};
  EXPECT_DOUBLE_EQ(Iou(a, b), Iou(b, a));
}

TEST(PixelAreaTest, ScalesWithResolution) {
  Rect r{0.0, 0.0, 0.5, 0.5};  // quarter of the frame
  EXPECT_NEAR(PixelArea(r, 1280, 720), 1280.0 * 720.0 / 4.0, 1e-6);
  EXPECT_NEAR(PixelArea(r, 3840, 2160), 3840.0 * 2160.0 / 4.0, 1e-6);
}

}  // namespace
}  // namespace blazeit
