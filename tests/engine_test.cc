#include "core/engine.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace blazeit {
namespace {

class EngineTest : public testutil::CatalogFixture<EngineTest> {
 protected:
  static void SetUpTestSuite() {
    CatalogFixture::SetUpTestSuite();
    engine_ = new BlazeItEngine(catalog_, testutil::SmallEngineOptions());
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
    CatalogFixture::TearDownTestSuite();
  }
  static BlazeItEngine* engine_;
};

BlazeItEngine* EngineTest::engine_ = nullptr;

TEST_F(EngineTest, AggregateQueryEndToEnd) {
  auto out = engine_->Execute(
      "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' "
      "ERROR WITHIN 0.1 AT CONFIDENCE 95%");
  BLAZEIT_ASSERT_OK(out);
  EXPECT_EQ(out.value().kind, QueryKind::kAggregate);
  EXPECT_GT(out.value().scalar, 0.3);
  EXPECT_LT(out.value().scalar, 3.0);
  EXPECT_FALSE(out.value().plan_description.empty());
}

TEST_F(EngineTest, CountStarScaled) {
  auto fcount = engine_->Execute(
      "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.1");
  auto count = engine_->Execute(
      "SELECT COUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.1");
  BLAZEIT_ASSERT_OK(fcount);
  BLAZEIT_ASSERT_OK(count);
  // COUNT(*) ~ FCOUNT * num_frames (both are estimates).
  EXPECT_NEAR(count.value().scalar / 12000.0, fcount.value().scalar, 0.3);
}

TEST_F(EngineTest, ScrubbingQueryEndToEnd) {
  auto out = engine_->Execute(
      "SELECT timestamp FROM taipei GROUP BY timestamp "
      "HAVING SUM(class='car') >= 2 LIMIT 5 GAP 50");
  BLAZEIT_ASSERT_OK(out);
  EXPECT_EQ(out.value().kind, QueryKind::kScrubbing);
  EXPECT_EQ(out.value().frames.size(), 5u);
  EXPECT_EQ(out.value().plan, PlanKind::kImportanceScrubbing);
}

TEST_F(EngineTest, SelectionQueryEndToEnd) {
  auto out = engine_->Execute(
      "SELECT * FROM taipei WHERE class = 'bus' "
      "AND redness(content) >= 0.25 AND area(mask) > 20000 "
      "GROUP BY trackid HAVING COUNT(*) > 15");
  BLAZEIT_ASSERT_OK(out);
  EXPECT_EQ(out.value().kind, QueryKind::kSelection);
  EXPECT_EQ(out.value().plan, PlanKind::kFilteredSelection);
  for (const SelectionRow& row : out.value().rows) {
    EXPECT_EQ(row.detection.class_id, kBus);
  }
}

TEST_F(EngineTest, CountDistinctEndToEnd) {
  auto out = engine_->Execute(
      "SELECT COUNT(DISTINCT trackid) FROM taipei WHERE class = 'car'");
  BLAZEIT_ASSERT_OK(out);
  // Roughly the number of generated car instances (tracker fragments some).
  int64_t actual = catalog_->GetStream("taipei")
                       .value()
                       ->test_day->DistinctTracks(kCar);
  // Motion-IOU trackers fragment when the detector drops a frame of a
  // track (each gap opens a fresh trackid, per the FrameQL schema), so the
  // distinct count overcounts scene instances by a modest factor.
  EXPECT_GT(out.value().scalar, actual * 0.5);
  EXPECT_LT(out.value().scalar, actual * 10.0);
}

TEST_F(EngineTest, BinarySelectEndToEnd) {
  auto out = engine_->Execute(
      "SELECT timestamp FROM taipei WHERE class = 'bus' "
      "FNR WITHIN 0.01 FPR WITHIN 0.01");
  BLAZEIT_ASSERT_OK(out);
  EXPECT_EQ(out.value().kind, QueryKind::kBinarySelect);
  // No false positives: every returned frame really has a bus.
  const auto& counts = catalog_->GetStream("taipei")
                           .value()
                           ->test_labels->Counts(kBus);
  for (int64_t f : out.value().frames) {
    EXPECT_GT(counts[static_cast<size_t>(f)], 0);
  }
  // And detections never exceed the video length (the NN filter can only
  // remove work; with a weak NN its calibrated threshold may pass
  // everything, which is safe, just not fast).
  EXPECT_LE(out.value().cost.detection_calls(), 12000);
  EXPECT_FALSE(out.value().frames.empty());
}

// Regression: ExecuteFullScan used to report any frame with *any*
// detection, silently dropping the class predicate.
TEST_F(EngineTest, ExhaustiveScanHonorsClassPredicate) {
  auto out = engine_->Execute(
      "SELECT timestamp FROM taipei WHERE class = 'bus'");
  BLAZEIT_ASSERT_OK(out);
  EXPECT_EQ(out.value().kind, QueryKind::kExhaustive);
  EXPECT_EQ(out.value().plan, PlanKind::kFullScan);
  const auto& bus_counts = catalog_->GetStream("taipei")
                               .value()
                               ->test_labels->Counts(kBus);
  // Exactly the frames with a bus, in ascending order.
  std::vector<int64_t> expected;
  for (size_t t = 0; t < bus_counts.size(); ++t) {
    if (bus_counts[t] > 0) expected.push_back(static_cast<int64_t>(t));
  }
  EXPECT_EQ(out.value().frames, expected);
  // The buggy behavior returned ~every frame (cars are ubiquitous).
  const auto& car_counts = catalog_->GetStream("taipei")
                               .value()
                               ->test_labels->Counts(kCar);
  int64_t any_detection_frames = 0;
  for (size_t t = 0; t < car_counts.size(); ++t) {
    if (car_counts[t] > 0 || bus_counts[t] > 0) ++any_detection_frames;
  }
  EXPECT_LT(static_cast<int64_t>(out.value().frames.size()),
            any_detection_frames);
}

// Regression: exhaustive plans used to silently drop HAVING count
// requirements (reachable when the query has no LIMIT to make it a
// scrubbing plan) and to silently ignore content UDF conjuncts.
TEST_F(EngineTest, ExhaustiveScanHonorsCountRequirements) {
  auto out = engine_->Execute(
      "SELECT timestamp FROM taipei GROUP BY timestamp "
      "HAVING SUM(class='car') >= 2");
  BLAZEIT_ASSERT_OK(out);
  EXPECT_EQ(out.value().kind, QueryKind::kExhaustive);
  const auto& car_counts = catalog_->GetStream("taipei")
                               .value()
                               ->test_labels->Counts(kCar);
  std::vector<int64_t> expected;
  for (size_t t = 0; t < car_counts.size(); ++t) {
    if (car_counts[t] >= 2) expected.push_back(static_cast<int64_t>(t));
  }
  EXPECT_EQ(out.value().frames, expected);
}

TEST_F(EngineTest, ExhaustiveScanRefusesUdfPredicatesLoudly) {
  // No class predicate, so this cannot become a selection plan; dropping
  // the UDF conjunct silently would return wrong results.
  auto out = engine_->Execute(
      "SELECT timestamp FROM taipei WHERE redness(content) >= 0.25");
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kUnimplemented);
}

// Regression: begin_sec/end_sec used to be enforced only by selection;
// every other executor silently scanned the whole day.
TEST_F(EngineTest, FullScanHonorsTimeRange) {
  // taipei is 30 fps; frames [600, 1801) — the inclusive <= 60 bound
  // covers the frame stamped exactly 60 s.
  auto out = engine_->Execute(
      "SELECT timestamp FROM taipei WHERE class = 'bus' "
      "AND timestamp >= 20 AND timestamp <= 60");
  BLAZEIT_ASSERT_OK(out);
  EXPECT_EQ(out.value().kind, QueryKind::kExhaustive);
  // Only window frames are scanned (and charged) at one detection each.
  EXPECT_EQ(out.value().cost.detection_calls(), 1801 - 600);
  const auto& bus_counts = catalog_->GetStream("taipei")
                               .value()
                               ->test_labels->Counts(kBus);
  std::vector<int64_t> expected;
  for (int64_t t = 600; t < 1801; ++t) {
    if (bus_counts[static_cast<size_t>(t)] > 0) expected.push_back(t);
  }
  EXPECT_EQ(out.value().frames, expected);

  // Exclusive bounds exclude the boundary frames exactly.
  auto exclusive = engine_->Execute(
      "SELECT timestamp FROM taipei WHERE class = 'bus' "
      "AND timestamp > 20 AND timestamp < 60");
  BLAZEIT_ASSERT_OK(exclusive);
  EXPECT_EQ(exclusive.value().cost.detection_calls(), 1800 - 601);
}

TEST_F(EngineTest, CountDistinctHonorsTimeRange) {
  auto full = engine_->Execute(
      "SELECT COUNT(DISTINCT trackid) FROM taipei WHERE class = 'car'");
  auto windowed = engine_->Execute(
      "SELECT COUNT(DISTINCT trackid) FROM taipei WHERE class = 'car' "
      "AND timestamp <= 100");
  BLAZEIT_ASSERT_OK(full);
  BLAZEIT_ASSERT_OK(windowed);
  // 100s of a 400s day: strictly less work and strictly fewer tracks
  // (the inclusive bound adds the frame stamped exactly 100 s).
  EXPECT_EQ(windowed.value().cost.detection_calls(), 100 * 30 + 1);
  EXPECT_LT(windowed.value().scalar, full.value().scalar);
  EXPECT_GT(windowed.value().scalar, 0.0);
}

TEST_F(EngineTest, ScrubbingHonorsTimeRange) {
  auto out = engine_->Execute(
      "SELECT timestamp FROM taipei WHERE timestamp >= 200 "
      "GROUP BY timestamp HAVING SUM(class='car') >= 2 LIMIT 5 GAP 50");
  BLAZEIT_ASSERT_OK(out);
  EXPECT_EQ(out.value().kind, QueryKind::kScrubbing);
  EXPECT_FALSE(out.value().frames.empty());
  for (int64_t f : out.value().frames) EXPECT_GE(f, 200 * 30);
}

TEST_F(EngineTest, BinarySelectHonorsTimeRange) {
  auto out = engine_->Execute(
      "SELECT timestamp FROM taipei WHERE class = 'bus' "
      "AND timestamp >= 100 AND timestamp <= 300 "
      "FNR WITHIN 0.01 FPR WITHIN 0.01");
  BLAZEIT_ASSERT_OK(out);
  EXPECT_EQ(out.value().kind, QueryKind::kBinarySelect);
  EXPECT_FALSE(out.value().frames.empty());
  for (int64_t f : out.value().frames) {
    EXPECT_GE(f, 100 * 30);
    EXPECT_LE(f, 300 * 30);  // <= 300 includes the frame stamped 300 s
  }
  // The NN sweep is also windowed: held-out calibration (6000 frames)
  // plus at most the window (6001 frames), never the whole test day.
  EXPECT_LE(out.value().cost.specialized_nn_calls(), 6000 + 6001);
}

TEST_F(EngineTest, AggregateHonorsTimeRange) {
  auto out = engine_->Execute(
      "SELECT COUNT(*) FROM taipei WHERE class = 'car' "
      "AND timestamp <= 100 ERROR WITHIN 0.1 AT CONFIDENCE 95%");
  BLAZEIT_ASSERT_OK(out);
  EXPECT_EQ(out.value().kind, QueryKind::kAggregate);
  // COUNT(*) scales by the window length (3001 frames: <= 100 includes
  // the frame stamped exactly 100 s), so the estimate targets the
  // windowed ground truth — far below a whole-day total.
  const auto& car_counts = catalog_->GetStream("taipei")
                               .value()
                               ->test_labels->Counts(kCar);
  double window_total = 0;
  for (int64_t t = 0; t < 3001; ++t) {
    window_total += car_counts[static_cast<size_t>(t)];
  }
  // The estimate targets the windowed ground truth (generous tolerance:
  // it is a statistical estimate).
  EXPECT_GT(out.value().scalar, window_total * 0.5);
  EXPECT_LT(out.value().scalar, window_total * 1.5);
}

TEST_F(EngineTest, EmptyTimeRangeFails) {
  auto out = engine_->Execute(
      "SELECT timestamp FROM taipei WHERE class = 'bus' "
      "AND timestamp >= 100 AND timestamp <= 50");
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EngineTest, TimeRangePastEndOfDayIsEmptyNotAnError) {
  // The test day is 400s; a window beyond it selects zero frames, and
  // every executor agrees that means an empty/zero result.
  auto scan = engine_->Execute(
      "SELECT timestamp FROM taipei WHERE class = 'bus' "
      "AND timestamp >= 1000");
  BLAZEIT_ASSERT_OK(scan);
  EXPECT_TRUE(scan.value().frames.empty());
  EXPECT_EQ(scan.value().cost.detection_calls(), 0);

  auto agg = engine_->Execute(
      "SELECT COUNT(*) FROM taipei WHERE class = 'car' "
      "AND timestamp >= 1000 ERROR WITHIN 0.1");
  BLAZEIT_ASSERT_OK(agg);
  EXPECT_EQ(agg.value().scalar, 0.0);
  EXPECT_EQ(agg.value().cost.detection_calls(), 0);

  auto sel = engine_->Execute(
      "SELECT * FROM taipei WHERE class = 'bus' AND timestamp >= 1000");
  BLAZEIT_ASSERT_OK(sel);
  EXPECT_TRUE(sel.value().rows.empty());

  auto binary = engine_->Execute(
      "SELECT timestamp FROM taipei WHERE class = 'bus' "
      "AND timestamp >= 1000 FNR WITHIN 0.01 FPR WITHIN 0.01");
  BLAZEIT_ASSERT_OK(binary);
  EXPECT_TRUE(binary.value().frames.empty());
  EXPECT_EQ(binary.value().cost.training_frames(), 0);
  EXPECT_EQ(binary.value().cost.specialized_nn_calls(), 0);

  auto scrub = engine_->Execute(
      "SELECT timestamp FROM taipei WHERE timestamp >= 1000 "
      "GROUP BY timestamp HAVING SUM(class='car') >= 2 LIMIT 5 GAP 50");
  BLAZEIT_ASSERT_OK(scrub);
  EXPECT_TRUE(scrub.value().frames.empty());
  EXPECT_EQ(scrub.value().cost.training_frames(), 0);
}

TEST_F(EngineTest, UnknownStreamFails) {
  auto out = engine_->Execute("SELECT * FROM venice WHERE class = 'boat'");
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
}

TEST_F(EngineTest, ParseErrorPropagates) {
  auto out = engine_->Execute("SELEC oops");
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kParseError);
}

TEST_F(EngineTest, CustomUdfRegistration) {
  ASSERT_TRUE(engine_->mutable_udfs()
                  ->Register("whiteness",
                             [](const Image& img) {
                               return (img.MeanChannel(0) +
                                       img.MeanChannel(1) +
                                       img.MeanChannel(2)) /
                                      3.0;
                             })
                  .ok());
  auto out = engine_->Execute(
      "SELECT * FROM taipei WHERE class = 'bus' "
      "AND whiteness(content) >= 0.6");
  BLAZEIT_ASSERT_OK(out);
}

}  // namespace
}  // namespace blazeit
