#include "core/engine.h"

#include <gtest/gtest.h>

namespace blazeit {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new VideoCatalog();
    DayLengths lengths;
    lengths.train = 6000;
    lengths.held_out = 6000;
    lengths.test = 12000;
    ASSERT_TRUE(catalog_->AddStream(TaipeiConfig(), lengths).ok());
    EngineOptions options;
    options.aggregate.nn.raster_width = 16;
    options.aggregate.nn.raster_height = 16;
    options.aggregate.nn.hidden_dims = {32};
    options.scrub.nn = options.aggregate.nn;
    options.selection.nn = options.aggregate.nn;
    engine_ = new BlazeItEngine(catalog_, options);
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete catalog_;
    engine_ = nullptr;
    catalog_ = nullptr;
  }
  static VideoCatalog* catalog_;
  static BlazeItEngine* engine_;
};

VideoCatalog* EngineTest::catalog_ = nullptr;
BlazeItEngine* EngineTest::engine_ = nullptr;

TEST_F(EngineTest, AggregateQueryEndToEnd) {
  auto out = engine_->Execute(
      "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' "
      "ERROR WITHIN 0.1 AT CONFIDENCE 95%");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().kind, QueryKind::kAggregate);
  EXPECT_GT(out.value().scalar, 0.3);
  EXPECT_LT(out.value().scalar, 3.0);
  EXPECT_FALSE(out.value().plan_description.empty());
}

TEST_F(EngineTest, CountStarScaled) {
  auto fcount = engine_->Execute(
      "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.1");
  auto count = engine_->Execute(
      "SELECT COUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.1");
  ASSERT_TRUE(fcount.ok());
  ASSERT_TRUE(count.ok());
  // COUNT(*) ~ FCOUNT * num_frames (both are estimates).
  EXPECT_NEAR(count.value().scalar / 12000.0, fcount.value().scalar, 0.3);
}

TEST_F(EngineTest, ScrubbingQueryEndToEnd) {
  auto out = engine_->Execute(
      "SELECT timestamp FROM taipei GROUP BY timestamp "
      "HAVING SUM(class='car') >= 2 LIMIT 5 GAP 50");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().kind, QueryKind::kScrubbing);
  EXPECT_EQ(out.value().frames.size(), 5u);
  EXPECT_EQ(out.value().plan, PlanKind::kImportanceScrubbing);
}

TEST_F(EngineTest, SelectionQueryEndToEnd) {
  auto out = engine_->Execute(
      "SELECT * FROM taipei WHERE class = 'bus' "
      "AND redness(content) >= 0.25 AND area(mask) > 20000 "
      "GROUP BY trackid HAVING COUNT(*) > 15");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().kind, QueryKind::kSelection);
  EXPECT_EQ(out.value().plan, PlanKind::kFilteredSelection);
  for (const SelectionRow& row : out.value().rows) {
    EXPECT_EQ(row.detection.class_id, kBus);
  }
}

TEST_F(EngineTest, CountDistinctEndToEnd) {
  auto out = engine_->Execute(
      "SELECT COUNT(DISTINCT trackid) FROM taipei WHERE class = 'car'");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Roughly the number of generated car instances (tracker fragments some).
  int64_t actual = catalog_->GetStream("taipei")
                       .value()
                       ->test_day->DistinctTracks(kCar);
  // Motion-IOU trackers fragment when the detector drops a frame of a
  // track (each gap opens a fresh trackid, per the FrameQL schema), so the
  // distinct count overcounts scene instances by a modest factor.
  EXPECT_GT(out.value().scalar, actual * 0.5);
  EXPECT_LT(out.value().scalar, actual * 10.0);
}

TEST_F(EngineTest, BinarySelectEndToEnd) {
  auto out = engine_->Execute(
      "SELECT timestamp FROM taipei WHERE class = 'bus' "
      "FNR WITHIN 0.01 FPR WITHIN 0.01");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().kind, QueryKind::kBinarySelect);
  // No false positives: every returned frame really has a bus.
  const auto& counts = catalog_->GetStream("taipei")
                           .value()
                           ->test_labels->Counts(kBus);
  for (int64_t f : out.value().frames) {
    EXPECT_GT(counts[static_cast<size_t>(f)], 0);
  }
  // And detections never exceed the video length (the NN filter can only
  // remove work; with a weak NN its calibrated threshold may pass
  // everything, which is safe, just not fast).
  EXPECT_LE(out.value().cost.detection_calls(), 12000);
  EXPECT_FALSE(out.value().frames.empty());
}

TEST_F(EngineTest, UnknownStreamFails) {
  auto out = engine_->Execute("SELECT * FROM venice WHERE class = 'boat'");
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
}

TEST_F(EngineTest, ParseErrorPropagates) {
  auto out = engine_->Execute("SELEC oops");
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kParseError);
}

TEST_F(EngineTest, CustomUdfRegistration) {
  ASSERT_TRUE(engine_->mutable_udfs()
                  ->Register("whiteness",
                             [](const Image& img) {
                               return (img.MeanChannel(0) +
                                       img.MeanChannel(1) +
                                       img.MeanChannel(2)) /
                                      3.0;
                             })
                  .ok());
  auto out = engine_->Execute(
      "SELECT * FROM taipei WHERE class = 'bus' "
      "AND whiteness(content) >= 0.6");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
}

}  // namespace
}  // namespace blazeit
