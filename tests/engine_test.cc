#include "core/engine.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace blazeit {
namespace {

class EngineTest : public testutil::CatalogFixture<EngineTest> {
 protected:
  static void SetUpTestSuite() {
    CatalogFixture::SetUpTestSuite();
    engine_ = new BlazeItEngine(catalog_, testutil::SmallEngineOptions());
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
    CatalogFixture::TearDownTestSuite();
  }
  static BlazeItEngine* engine_;
};

BlazeItEngine* EngineTest::engine_ = nullptr;

TEST_F(EngineTest, AggregateQueryEndToEnd) {
  auto out = engine_->Execute(
      "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' "
      "ERROR WITHIN 0.1 AT CONFIDENCE 95%");
  BLAZEIT_ASSERT_OK(out);
  EXPECT_EQ(out.value().kind, QueryKind::kAggregate);
  EXPECT_GT(out.value().scalar, 0.3);
  EXPECT_LT(out.value().scalar, 3.0);
  EXPECT_FALSE(out.value().plan_description.empty());
}

TEST_F(EngineTest, CountStarScaled) {
  auto fcount = engine_->Execute(
      "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.1");
  auto count = engine_->Execute(
      "SELECT COUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.1");
  BLAZEIT_ASSERT_OK(fcount);
  BLAZEIT_ASSERT_OK(count);
  // COUNT(*) ~ FCOUNT * num_frames (both are estimates).
  EXPECT_NEAR(count.value().scalar / 12000.0, fcount.value().scalar, 0.3);
}

TEST_F(EngineTest, ScrubbingQueryEndToEnd) {
  auto out = engine_->Execute(
      "SELECT timestamp FROM taipei GROUP BY timestamp "
      "HAVING SUM(class='car') >= 2 LIMIT 5 GAP 50");
  BLAZEIT_ASSERT_OK(out);
  EXPECT_EQ(out.value().kind, QueryKind::kScrubbing);
  EXPECT_EQ(out.value().frames.size(), 5u);
  EXPECT_EQ(out.value().plan, PlanKind::kImportanceScrubbing);
}

TEST_F(EngineTest, SelectionQueryEndToEnd) {
  auto out = engine_->Execute(
      "SELECT * FROM taipei WHERE class = 'bus' "
      "AND redness(content) >= 0.25 AND area(mask) > 20000 "
      "GROUP BY trackid HAVING COUNT(*) > 15");
  BLAZEIT_ASSERT_OK(out);
  EXPECT_EQ(out.value().kind, QueryKind::kSelection);
  EXPECT_EQ(out.value().plan, PlanKind::kFilteredSelection);
  for (const SelectionRow& row : out.value().rows) {
    EXPECT_EQ(row.detection.class_id, kBus);
  }
}

TEST_F(EngineTest, CountDistinctEndToEnd) {
  auto out = engine_->Execute(
      "SELECT COUNT(DISTINCT trackid) FROM taipei WHERE class = 'car'");
  BLAZEIT_ASSERT_OK(out);
  // Roughly the number of generated car instances (tracker fragments some).
  int64_t actual = catalog_->GetStream("taipei")
                       .value()
                       ->test_day->DistinctTracks(kCar);
  // Motion-IOU trackers fragment when the detector drops a frame of a
  // track (each gap opens a fresh trackid, per the FrameQL schema), so the
  // distinct count overcounts scene instances by a modest factor.
  EXPECT_GT(out.value().scalar, actual * 0.5);
  EXPECT_LT(out.value().scalar, actual * 10.0);
}

TEST_F(EngineTest, BinarySelectEndToEnd) {
  auto out = engine_->Execute(
      "SELECT timestamp FROM taipei WHERE class = 'bus' "
      "FNR WITHIN 0.01 FPR WITHIN 0.01");
  BLAZEIT_ASSERT_OK(out);
  EXPECT_EQ(out.value().kind, QueryKind::kBinarySelect);
  // No false positives: every returned frame really has a bus.
  const auto& counts = catalog_->GetStream("taipei")
                           .value()
                           ->test_labels->Counts(kBus);
  for (int64_t f : out.value().frames) {
    EXPECT_GT(counts[static_cast<size_t>(f)], 0);
  }
  // And detections never exceed the video length (the NN filter can only
  // remove work; with a weak NN its calibrated threshold may pass
  // everything, which is safe, just not fast).
  EXPECT_LE(out.value().cost.detection_calls(), 12000);
  EXPECT_FALSE(out.value().frames.empty());
}

TEST_F(EngineTest, UnknownStreamFails) {
  auto out = engine_->Execute("SELECT * FROM venice WHERE class = 'boat'");
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
}

TEST_F(EngineTest, ParseErrorPropagates) {
  auto out = engine_->Execute("SELEC oops");
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kParseError);
}

TEST_F(EngineTest, CustomUdfRegistration) {
  ASSERT_TRUE(engine_->mutable_udfs()
                  ->Register("whiteness",
                             [](const Image& img) {
                               return (img.MeanChannel(0) +
                                       img.MeanChannel(1) +
                                       img.MeanChannel(2)) /
                                      3.0;
                             })
                  .ok());
  auto out = engine_->Execute(
      "SELECT * FROM taipei WHERE class = 'bus' "
      "AND whiteness(content) >= 0.6");
  BLAZEIT_ASSERT_OK(out);
}

}  // namespace
}  // namespace blazeit
