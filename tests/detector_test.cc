#include "detect/simulated_detector.h"

#include <gtest/gtest.h>

#include "detect/cached_detector.h"
#include "video/datasets.h"

namespace blazeit {
namespace {

class DetectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    video_ = SyntheticVideo::Create(TaipeiConfig(), 5, 3000).value();
  }
  std::unique_ptr<SyntheticVideo> video_;
};

TEST_F(DetectorTest, Deterministic) {
  SimulatedDetector det;
  auto a = det.Detect(*video_, 123);
  auto b = det.Detect(*video_, 123);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].rect, b[i].rect);
    EXPECT_EQ(a[i].score, b[i].score);
  }
}

TEST_F(DetectorTest, RecallsMostLargeObjects) {
  SimulatedDetector det;
  int64_t truth = 0, detected_match = 0;
  for (int64_t t = 0; t < 3000; t += 7) {
    auto dets = det.Detect(*video_, t);
    for (const auto& obj : video_->GroundTruth(t)) {
      if (obj.rect.Area() < 0.01) continue;  // large objects only
      ++truth;
      for (const auto& d : dets) {
        if (d.class_id == obj.class_id && Iou(d.rect, obj.rect) > 0.5) {
          ++detected_match;
          break;
        }
      }
    }
  }
  ASSERT_GT(truth, 50);
  EXPECT_GT(static_cast<double>(detected_match) / truth, 0.9);
}

TEST_F(DetectorTest, SmallObjectsMissedMoreOften) {
  DetectorNoiseConfig noise;
  SimulatedDetector det(noise);
  StreamConfig small_cfg = ArchieConfig();
  auto small_video = SyntheticVideo::Create(small_cfg, 5, 3000).value();
  int64_t truth = 0, hits = 0;
  for (int64_t t = 0; t < 3000; t += 3) {
    auto dets = det.Detect(*small_video, t);
    for (const auto& obj : small_video->GroundTruth(t)) {
      ++truth;
      for (const auto& d : dets) {
        if (d.class_id == obj.class_id && Iou(d.rect, obj.rect) > 0.3) {
          ++hits;
          break;
        }
      }
    }
  }
  ASSERT_GT(truth, 100);
  double recall_small = static_cast<double>(hits) / truth;
  EXPECT_LT(recall_small, 0.9);  // tiny archie cars get missed
}

TEST_F(DetectorTest, FalsePositivesScoreLow) {
  DetectorNoiseConfig noise;
  noise.false_positive_rate = 2.0;  // force many
  SimulatedDetector det(noise);
  for (int64_t t = 0; t < 50; ++t) {
    auto dets = det.Detect(*video_, t);
    size_t truth_count = video_->GroundTruth(t).size();
    // All extra detections (beyond possible truth) must be under the FP
    // max score, so the Table 3 thresholds remove them.
    size_t high = 0;
    for (const auto& d : dets) {
      if (d.score >= 0.5) ++high;
    }
    EXPECT_LE(high, truth_count);
  }
}

TEST_F(DetectorTest, ScoresWithinUnitInterval) {
  SimulatedDetector det;
  for (int64_t t = 0; t < 200; ++t) {
    for (const auto& d : det.Detect(*video_, t)) {
      EXPECT_GE(d.score, 0.0);
      EXPECT_LE(d.score, 1.0);
      EXPECT_FALSE(d.rect.Empty());
    }
  }
}

TEST_F(DetectorTest, CountAndFilterHelpers) {
  std::vector<Detection> dets;
  Detection d;
  d.class_id = kCar;
  d.score = 0.9;
  dets.push_back(d);
  d.class_id = kBus;
  d.score = 0.7;
  dets.push_back(d);
  d.class_id = kCar;
  d.score = 0.2;
  dets.push_back(d);
  EXPECT_EQ(CountClass(dets, kCar, 0.5), 1);
  EXPECT_EQ(CountClass(dets, kCar, 0.1), 2);
  EXPECT_EQ(FilterClass(dets, kBus, 0.5).size(), 1u);
}

TEST_F(DetectorTest, CachedDetectorMatchesInner) {
  SimulatedDetector inner;
  CachedDetector cached(&inner);
  auto a = cached.Detect(*video_, 42);
  auto b = inner.Detect(*video_, 42);
  ASSERT_EQ(a.size(), b.size());
  auto c = cached.Detect(*video_, 42);  // from cache
  ASSERT_EQ(a.size(), c.size());
  EXPECT_EQ(cached.cache_size(), 1u);
  cached.ClearCache();
  EXPECT_EQ(cached.cache_size(), 0u);
}

TEST_F(DetectorTest, CacheKeyedByVideoSeed) {
  SimulatedDetector inner;
  CachedDetector cached(&inner);
  auto other = SyntheticVideo::Create(TaipeiConfig(), 6, 100).value();
  (void)cached.Detect(*video_, 10);
  (void)cached.Detect(*other, 10);
  EXPECT_EQ(cached.cache_size(), 2u);
}

TEST_F(DetectorTest, CacheDistinguishesSameSeedStreams) {
  // Regression: the old cache key hand-mixed (seed, frame) into one
  // uint64_t, so two *different* streams generated with the same seed —
  // exactly what the catalog does with its fixed day seeds — collided and
  // one stream silently replayed the other's detections. The composite
  // (stream fingerprint, frame) key must keep them apart.
  auto taipei = SyntheticVideo::Create(TaipeiConfig(), 101, 100).value();
  auto rialto = SyntheticVideo::Create(RialtoConfig(), 101, 100).value();
  ASSERT_EQ(taipei->seed(), rialto->seed());
  ASSERT_NE(taipei->fingerprint(), rialto->fingerprint());

  SimulatedDetector inner;
  CachedDetector cached(&inner);
  for (int64_t t = 0; t < 30; ++t) {
    // Populate with taipei first so a colliding key would serve taipei's
    // detections for rialto.
    (void)cached.Detect(*taipei, t);
    auto from_cache = cached.Detect(*rialto, t);
    auto direct = inner.Detect(*rialto, t);
    ASSERT_EQ(from_cache.size(), direct.size()) << "frame " << t;
    for (size_t i = 0; i < direct.size(); ++i) {
      EXPECT_EQ(from_cache[i].rect, direct[i].rect);
      EXPECT_EQ(from_cache[i].class_id, direct[i].class_id);
      EXPECT_EQ(from_cache[i].score, direct[i].score);
    }
  }
  EXPECT_EQ(cached.cache_size(), 60u);
}

}  // namespace
}  // namespace blazeit
