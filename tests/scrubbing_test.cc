#include "core/scrubbing.h"

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "testing/test_util.h"

namespace blazeit {
namespace {

class ScrubbingTest : public testutil::CatalogFixture<ScrubbingTest> {
 public:
  static DayLengths Lengths() {
    return testutil::SmallDays(6000, 6000, 20000);
  }
  static ScrubOptions FastOptions() {
    return testutil::SmallNNOptions<ScrubOptions>();
  }
};

TEST_F(ScrubbingTest, ValidatesArguments) {
  ScrubbingExecutor ex(stream_, FastOptions());
  EXPECT_FALSE(ex.Run({}, 10, 0).ok());
  EXPECT_FALSE(ex.Run({{kCar, 1}}, 0, 0).ok());
}

TEST_F(ScrubbingTest, OnlyTruePositivesReturned) {
  ScrubbingExecutor ex(stream_, FastOptions());
  auto r = ex.Run({{kCar, 3}}, 5, 0);
  BLAZEIT_ASSERT_OK(r);
  const auto& counts = stream_->test_labels->Counts(kCar);
  for (int64_t f : r.value().frames) {
    EXPECT_GE(counts[static_cast<size_t>(f)], 3) << f;
  }
}

TEST_F(ScrubbingTest, RespectsLimit) {
  ScrubbingExecutor ex(stream_, FastOptions());
  auto r = ex.Run({{kCar, 2}}, 7, 0);
  BLAZEIT_ASSERT_OK(r);
  EXPECT_EQ(r.value().frames.size(), 7u);
  EXPECT_TRUE(r.value().limit_satisfied);
}

TEST_F(ScrubbingTest, RespectsGap) {
  ScrubbingExecutor ex(stream_, FastOptions());
  auto r = ex.Run({{kCar, 2}}, 8, 150);
  BLAZEIT_ASSERT_OK(r);
  std::vector<int64_t> frames = r.value().frames;
  std::sort(frames.begin(), frames.end());
  for (size_t i = 1; i < frames.size(); ++i) {
    EXPECT_GE(frames[i] - frames[i - 1], 150);
  }
}

TEST_F(ScrubbingTest, CheaperThanNaiveForRareEvents) {
  ScrubbingExecutor ex(stream_, FastOptions());
  const std::vector<ClassCountRequirement> reqs = {{kCar, 5}};
  auto stats = CountRequirementInstances(*stream_, reqs);
  if (stats.events < 12) GTEST_SKIP() << "too few events in short test day";
  auto r = ex.Run(reqs, 10, 100);
  BLAZEIT_ASSERT_OK(r);
  auto naive = NaiveScrub(stream_, reqs, 10, 100);
  EXPECT_LT(r.value().detection_calls, naive.detection_calls);
  EXPECT_LT(r.value().indexed_seconds, r.value().cost.TotalSeconds());
}

TEST_F(ScrubbingTest, ImpossibleQueryExhaustsVideo) {
  ScrubbingExecutor ex(stream_, FastOptions());
  auto r = ex.Run({{kBird, 1}}, 3, 0);  // no birds in taipei
  BLAZEIT_ASSERT_OK(r);
  EXPECT_TRUE(r.value().frames.empty());
  EXPECT_FALSE(r.value().limit_satisfied);
  EXPECT_TRUE(r.value().scan_exhausted);
  // Fallback path (no training instances) scans everything.
  EXPECT_TRUE(r.value().fell_back_to_scan);
  EXPECT_EQ(r.value().detection_calls, stream_->test_day->num_frames());
}

TEST_F(ScrubbingTest, FewerMatchesThanLimitExhaustsWithoutSatisfying) {
  // A trained (non-fallback) run that finds every match but cannot reach
  // LIMIT must report the two outcomes separately: the limit was NOT
  // satisfied, and the scan WAS exhausted. The two used to be conflated
  // in one `found_all` flag, which read "exhausted" as "failed".
  const std::vector<ClassCountRequirement> reqs = {{kCar, 5}};
  auto stats = CountRequirementInstances(*stream_, reqs);
  if (stats.matching_frames == 0) GTEST_SKIP() << "no matches in test day";
  ScrubbingExecutor ex(stream_, FastOptions());
  auto r = ex.Run(reqs, stats.matching_frames + 10, 0);
  BLAZEIT_ASSERT_OK(r);
  EXPECT_EQ(static_cast<int64_t>(r.value().frames.size()),
            stats.matching_frames);
  EXPECT_FALSE(r.value().limit_satisfied);
  EXPECT_TRUE(r.value().scan_exhausted);

  // Exactly-enough matches: satisfied, and (with GAP 0) the verification
  // walk had to visit everything anyway.
  auto exact = ex.Run(reqs, stats.matching_frames, 0);
  BLAZEIT_ASSERT_OK(exact);
  EXPECT_TRUE(exact.value().limit_satisfied);
}

TEST_F(ScrubbingTest, MultiClassConjunction) {
  ScrubbingExecutor ex(stream_, FastOptions());
  auto r = ex.Run({{kBus, 1}, {kCar, 2}}, 5, 0);
  BLAZEIT_ASSERT_OK(r);
  const auto& cars = stream_->test_labels->Counts(kCar);
  const auto& buses = stream_->test_labels->Counts(kBus);
  for (int64_t f : r.value().frames) {
    EXPECT_GE(buses[static_cast<size_t>(f)], 1);
    EXPECT_GE(cars[static_cast<size_t>(f)], 2);
  }
}

TEST_F(ScrubbingTest, BaselinesFindInTemporalOrder) {
  auto naive = NaiveScrub(stream_, {{kCar, 2}}, 5, 0);
  ASSERT_EQ(naive.frames.size(), 5u);
  EXPECT_TRUE(std::is_sorted(naive.frames.begin(), naive.frames.end()));
  auto oracle = NoScopeOracleScrub(stream_, {{kCar, 2}}, 5, 0);
  EXPECT_EQ(oracle.frames, naive.frames);  // same semantics, fewer calls
  EXPECT_LE(oracle.detection_calls, naive.detection_calls);
}

TEST_F(ScrubbingTest, RequirementStatsConsistent) {
  auto one = CountRequirementInstances(*stream_, {{kCar, 1}});
  auto five = CountRequirementInstances(*stream_, {{kCar, 5}});
  EXPECT_GT(one.matching_frames, five.matching_frames);
  EXPECT_GE(one.matching_frames, one.events);
  EXPECT_GE(five.matching_frames, five.events);
}

class LimitSweep : public ::testing::TestWithParam<int> {};

TEST_P(LimitSweep, DetectionsGrowWithLimit) {
  // Uses its own small catalog (parameterized sweeps share nothing
  // in-process, but the persistent store still warms repeat runs).
  VideoCatalog catalog = testutil::MakeCatalog();
  BLAZEIT_ASSERT_OK(
      catalog.AddStream(TaipeiConfig(), testutil::SmallDays(4000, 2000)));
  StreamData* stream = catalog.GetStream("taipei").value();
  ScrubbingExecutor ex(stream, testutil::SmallNNOptions<ScrubOptions>());
  auto r = ex.Run({{kCar, 2}}, GetParam(), 0);
  BLAZEIT_ASSERT_OK(r);
  EXPECT_GE(r.value().detection_calls,
            static_cast<int64_t>(r.value().frames.size()));
}

INSTANTIATE_TEST_SUITE_P(Limits, LimitSweep, ::testing::Values(1, 5, 20));

}  // namespace
}  // namespace blazeit
