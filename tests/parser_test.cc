#include "frameql/parser.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace blazeit {
namespace {

TEST(ParserTest, Figure3aAggregation) {
  auto q = ParseFrameQL(
      "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' "
      "ERROR WITHIN 0.1 AT CONFIDENCE 95%");
  BLAZEIT_ASSERT_OK(q);
  const FrameQLQuery& query = q.value();
  EXPECT_EQ(query.projection, Projection::kFcount);
  EXPECT_EQ(query.table, "taipei");
  ASSERT_EQ(query.where.size(), 1u);
  EXPECT_EQ(query.where[0].kind, Predicate::Kind::kClassEq);
  EXPECT_EQ(query.where[0].str_value, "car");
  ASSERT_TRUE(query.error_within.has_value());
  EXPECT_DOUBLE_EQ(*query.error_within, 0.1);
  ASSERT_TRUE(query.confidence.has_value());
  EXPECT_DOUBLE_EQ(*query.confidence, 0.95);
}

TEST(ParserTest, Figure3bScrubbing) {
  auto q = ParseFrameQL(
      "SELECT timestamp FROM taipei GROUP BY timestamp "
      "HAVING SUM(class='bus') >= 1 AND SUM(class='car') >= 5 "
      "LIMIT 10 GAP 300");
  BLAZEIT_ASSERT_OK(q);
  const FrameQLQuery& query = q.value();
  EXPECT_EQ(query.projection, Projection::kTimestamp);
  EXPECT_EQ(query.group_by, "timestamp");
  ASSERT_EQ(query.having.size(), 2u);
  EXPECT_EQ(query.having[0].class_name, "bus");
  EXPECT_EQ(query.having[0].op, CmpOp::kGe);
  EXPECT_DOUBLE_EQ(query.having[0].value, 1);
  EXPECT_EQ(query.having[1].class_name, "car");
  EXPECT_DOUBLE_EQ(query.having[1].value, 5);
  EXPECT_EQ(query.limit.value_or(0), 10);
  EXPECT_EQ(query.gap.value_or(0), 300);
}

TEST(ParserTest, Figure3cSelection) {
  auto q = ParseFrameQL(
      "SELECT * FROM taipei WHERE class = 'bus' "
      "AND redness(content) >= 17.5 AND area(mask) > 100000 "
      "GROUP BY trackid HAVING COUNT(*) > 15");
  BLAZEIT_ASSERT_OK(q);
  const FrameQLQuery& query = q.value();
  EXPECT_EQ(query.projection, Projection::kStar);
  ASSERT_EQ(query.where.size(), 3u);
  EXPECT_EQ(query.where[1].kind, Predicate::Kind::kUdf);
  EXPECT_EQ(query.where[1].name, "redness");
  EXPECT_EQ(query.where[1].op, CmpOp::kGe);
  EXPECT_EQ(query.where[2].kind, Predicate::Kind::kArea);
  EXPECT_DOUBLE_EQ(query.where[2].value, 100000);
  EXPECT_EQ(query.group_by, "trackid");
  ASSERT_EQ(query.having.size(), 1u);
  EXPECT_EQ(query.having[0].kind, HavingClause::Kind::kGroupSize);
}

TEST(ParserTest, CountDistinctTrackid) {
  auto q = ParseFrameQL(
      "SELECT COUNT (DISTINCT trackid) FROM taipei WHERE class = 'car'");
  BLAZEIT_ASSERT_OK(q);
  EXPECT_EQ(q.value().projection, Projection::kCountDistinctTrack);
}

TEST(ParserTest, NoScopeReplication) {
  auto q = ParseFrameQL(
      "SELECT timestamp FROM taipei WHERE class = 'car' "
      "FNR WITHIN 0.01 FPR WITHIN 0.01");
  BLAZEIT_ASSERT_OK(q);
  EXPECT_DOUBLE_EQ(q.value().fnr_within.value_or(0), 0.01);
  EXPECT_DOUBLE_EQ(q.value().fpr_within.value_or(0), 0.01);
}

TEST(ParserTest, ConfidenceWithoutAtOrPercent) {
  auto q = ParseFrameQL(
      "SELECT COUNT(*) FROM taipei WHERE class = 'car' "
      "ERROR WITHIN 0.1 CONFIDENCE 95%");
  BLAZEIT_ASSERT_OK(q);
  EXPECT_EQ(q.value().projection, Projection::kCountStar);
  EXPECT_DOUBLE_EQ(q.value().confidence.value_or(0), 0.95);
}

TEST(ParserTest, SpatialAndTimestampPredicates) {
  auto q = ParseFrameQL(
      "SELECT * FROM taipei WHERE class = 'bus' AND xmax(mask) < 720 "
      "AND timestamp >= 600 AND timestamp < 1200");
  BLAZEIT_ASSERT_OK(q);
  ASSERT_EQ(q.value().where.size(), 4u);
  EXPECT_EQ(q.value().where[1].kind, Predicate::Kind::kSpatial);
  EXPECT_EQ(q.value().where[1].name, "xmax");
  EXPECT_EQ(q.value().where[2].kind, Predicate::Kind::kTimestamp);
}

TEST(ParserTest, StringUdf) {
  auto q = ParseFrameQL(
      "SELECT * FROM taipei WHERE class = 'car' "
      "AND classify(content) = 'sedan'");
  BLAZEIT_ASSERT_OK(q);
  EXPECT_EQ(q.value().where[1].kind, Predicate::Kind::kUdfString);
  EXPECT_EQ(q.value().where[1].str_value, "sedan");
}

TEST(ParserTest, ToStringRoundTrips) {
  const char* original =
      "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' "
      "ERROR WITHIN 0.1 AT CONFIDENCE 95%";
  auto q = ParseFrameQL(original);
  BLAZEIT_ASSERT_OK(q);
  auto q2 = ParseFrameQL(q.value().ToString());
  BLAZEIT_ASSERT_OK(q2) << q.value().ToString();
  EXPECT_EQ(q2.value().projection, q.value().projection);
  EXPECT_EQ(q2.value().where.size(), q.value().where.size());
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseFrameQL("").ok());
  EXPECT_FALSE(ParseFrameQL("FROM taipei").ok());
  EXPECT_FALSE(ParseFrameQL("SELECT * FROM").ok());
  EXPECT_FALSE(ParseFrameQL("SELECT * FROM taipei WHERE").ok());
  EXPECT_FALSE(ParseFrameQL("SELECT * FROM taipei WHERE class != 'x'").ok());
  EXPECT_FALSE(ParseFrameQL("SELECT * FROM taipei GROUP BY color").ok());
  EXPECT_FALSE(
      ParseFrameQL("SELECT * FROM taipei trailing garbage here").ok());
  EXPECT_FALSE(ParseFrameQL("SELECT COUNT(DISTINCT class) FROM t").ok());
  EXPECT_FALSE(
      ParseFrameQL("SELECT * FROM t WHERE bogus(mask) > 3").ok());
}

TEST(ParserTest, MalformedSelectReportsParseError) {
  // Every malformed query must surface kParseError (not crash or succeed),
  // with the offending token in the message.
  auto r = ParseFrameQL("SELEC oops");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("expected SELECT"), std::string::npos);

  auto missing_paren = ParseFrameQL("SELECT FCOUNT(* FROM taipei");
  ASSERT_FALSE(missing_paren.ok());
  EXPECT_EQ(missing_paren.status().code(), StatusCode::kParseError);

  auto bad_projection = ParseFrameQL("SELECT trackid FROM taipei");
  ASSERT_FALSE(bad_projection.ok());
  EXPECT_NE(bad_projection.status().message().find("projection"),
            std::string::npos);

  auto bad_count = ParseFrameQL("SELECT COUNT(timestamp) FROM taipei");
  ASSERT_FALSE(bad_count.ok());
  EXPECT_NE(bad_count.status().message().find("DISTINCT"),
            std::string::npos);
}

TEST(ParserTest, BadLiteralsRejected) {
  // Clauses that require a number reject strings/identifiers and vice versa.
  EXPECT_FALSE(
      ParseFrameQL("SELECT * FROM t WHERE class = 'car' "
                   "ERROR WITHIN 'high'")
          .ok());
  EXPECT_FALSE(ParseFrameQL("SELECT timestamp FROM t LIMIT many").ok());
  EXPECT_FALSE(ParseFrameQL("SELECT timestamp FROM t LIMIT 5 GAP 'x'").ok());
  EXPECT_FALSE(ParseFrameQL("SELECT * FROM t WHERE class = car").ok());
  EXPECT_FALSE(ParseFrameQL("SELECT * FROM t WHERE timestamp >= 'noon'").ok());
  EXPECT_FALSE(
      ParseFrameQL("SELECT * FROM t FNR WITHIN tiny FPR WITHIN 0.01").ok());
  EXPECT_FALSE(
      ParseFrameQL("SELECT COUNT(*) FROM t AT CONFIDENCE high").ok());
}

TEST(ParserTest, MalformedHavingRejected) {
  EXPECT_FALSE(ParseFrameQL("SELECT timestamp FROM t GROUP BY timestamp "
                            "HAVING AVG(class='car') >= 1")
                   .ok());
  EXPECT_FALSE(ParseFrameQL("SELECT timestamp FROM t GROUP BY timestamp "
                            "HAVING SUM(trackid='car') >= 1")
                   .ok());
  EXPECT_FALSE(ParseFrameQL("SELECT timestamp FROM t GROUP BY timestamp "
                            "HAVING SUM(class='car')")
                   .ok());
  EXPECT_FALSE(ParseFrameQL("SELECT * FROM t GROUP BY trackid "
                            "HAVING COUNT(*) LIKE 15")
                   .ok());
}

TEST(ParserTest, UnknownUdfArgumentRejected) {
  auto r = ParseFrameQL("SELECT * FROM t WHERE redness(frame) >= 0.5");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("content or mask"), std::string::npos);

  auto mask = ParseFrameQL("SELECT * FROM t WHERE perimeter(mask) >= 3");
  ASSERT_FALSE(mask.ok());
  EXPECT_NE(mask.status().message().find("unknown mask predicate"),
            std::string::npos);
}

TEST(ParserTest, StringUdfOnlySupportsEquality) {
  auto r = ParseFrameQL(
      "SELECT * FROM t WHERE classify(content) >= 'sedan'");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("'=' only"), std::string::npos);
}

TEST(ParserTest, LexErrorsPropagateThroughParse) {
  auto r = ParseFrameQL("SELECT * FROM t WHERE class = 'unclosed");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("unterminated"), std::string::npos);
}

TEST(ParserTest, ErrorMessagesIncludeOffsetAndToken) {
  auto r = ParseFrameQL("SELECT * FROM taipei WHERE bogus 3");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("near offset"), std::string::npos);
}

TEST(ParserTest, CmpHelpers) {
  EXPECT_TRUE(EvalCmp(2, CmpOp::kGt, 1));
  EXPECT_TRUE(EvalCmp(1, CmpOp::kLe, 1));
  EXPECT_FALSE(EvalCmp(1, CmpOp::kNe, 1));
  EXPECT_STREQ(CmpOpName(CmpOp::kGe), ">=");
}

}  // namespace
}  // namespace blazeit
