#include "core/baselines.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace blazeit {
namespace {

class BaselinesTest : public testutil::CatalogFixture<BaselinesTest> {
 public:
  static DayLengths Lengths() { return testutil::SmallDays(3000, 2000, 6000); }
};

TEST_F(BaselinesTest, NaiveAggregateExactAndFullCost) {
  auto r = NaiveAggregate(stream_, kCar);
  const auto& counts = stream_->test_labels->Counts(kCar);
  double mean = 0;
  for (int c : counts) mean += c;
  mean /= counts.size();
  EXPECT_DOUBLE_EQ(r.estimate, mean);
  EXPECT_EQ(r.detection_calls, 6000);
}

TEST_F(BaselinesTest, OracleAggregateSameEstimateFewerCalls) {
  auto naive = NaiveAggregate(stream_, kCar);
  auto oracle = NoScopeOracleAggregate(stream_, kCar);
  EXPECT_DOUBLE_EQ(oracle.estimate, naive.estimate);
  // Calls = number of occupied frames.
  int64_t occupied = 0;
  for (int c : stream_->test_labels->Counts(kCar)) {
    if (c > 0) ++occupied;
  }
  EXPECT_EQ(oracle.detection_calls, occupied);
}

TEST_F(BaselinesTest, OracleAggregateOnAbsentClassIsFree) {
  auto r = NoScopeOracleAggregate(stream_, kBird);
  EXPECT_EQ(r.detection_calls, 0);
  EXPECT_DOUBLE_EQ(r.estimate, 0.0);
}

TEST_F(BaselinesTest, AqpSeedsGiveDifferentSamplesSameBallpark) {
  auto a = NaiveAqpAggregate(stream_, kCar, 0.1, 0.95, 1).value();
  auto b = NaiveAqpAggregate(stream_, kCar, 0.1, 0.95, 2).value();
  EXPECT_NE(a.estimate, b.estimate);  // different random draws
  EXPECT_NEAR(a.estimate, b.estimate, 0.4);
}

TEST_F(BaselinesTest, NaiveScrubStopsAtLimit) {
  auto r = NaiveScrub(stream_, {{kCar, 1}}, 3, 0);
  ASSERT_EQ(r.frames.size(), 3u);
  // Sequential scan: detections = index of the 3rd match + 1.
  EXPECT_EQ(r.detection_calls, r.frames.back() + 1);
}

TEST_F(BaselinesTest, OracleScrubSkipsAbsentFrames) {
  auto naive = NaiveScrub(stream_, {{kCar, 2}}, 5, 0);
  auto oracle = NoScopeOracleScrub(stream_, {{kCar, 2}}, 5, 0);
  EXPECT_EQ(oracle.frames, naive.frames);
  EXPECT_LT(oracle.detection_calls, naive.detection_calls);
}

TEST_F(BaselinesTest, ScrubGapEnforced) {
  auto r = NaiveScrub(stream_, {{kCar, 1}}, 4, 500);
  for (size_t i = 1; i < r.frames.size(); ++i) {
    EXPECT_GE(r.frames[i] - r.frames[i - 1], 500);
  }
}

TEST_F(BaselinesTest, ScrubImpossibleQueryExhausts) {
  auto r = NaiveScrub(stream_, {{kBird, 1}}, 1, 0);
  EXPECT_TRUE(r.frames.empty());
  EXPECT_FALSE(r.limit_satisfied);
  EXPECT_TRUE(r.scan_exhausted);
  EXPECT_EQ(r.detection_calls, 6000);
}

}  // namespace
}  // namespace blazeit
