// Cross-module integration and invariant tests: each test exercises the
// whole stack (generator -> detector -> labeled set -> NN -> executor) on a
// small catalog and asserts a paper-level invariant end to end.
#include <gtest/gtest.h>

#include "core/aggregation.h"
#include "core/baselines.h"
#include "core/engine.h"
#include "core/optimizer.h"
#include "core/scrubbing.h"
#include "frameql/parser.h"
#include "testing/test_util.h"

namespace blazeit {
namespace {

class IntegrationTest : public testutil::CatalogFixture<IntegrationTest> {
 public:
  static std::vector<StreamConfig> Streams() {
    return {TaipeiConfig(), RialtoConfig()};
  }
  static DayLengths Lengths() { return testutil::SmallDays(6000, 6000, 15000); }
};

TEST_F(IntegrationTest, OptimizerPicksSpecializedPlanWithTrainingData) {
  auto parsed = ParseFrameQL(
      "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.1");
  auto q = AnalyzeQuery(parsed.value(), stream_->config).value();
  PlanChoice plan = ChoosePlan(q, stream_);
  EXPECT_EQ(plan.kind, PlanKind::kSpecializedAggregation);
  EXPECT_NE(plan.rationale.find("specialized"), std::string::npos);
}

TEST_F(IntegrationTest, OptimizerFallsBackWithoutTrainingData) {
  auto parsed = ParseFrameQL(
      "SELECT FCOUNT(*) FROM taipei WHERE class = 'bird' ERROR WITHIN 0.1");
  auto q = AnalyzeQuery(parsed.value(), stream_->config).value();
  EXPECT_EQ(ChoosePlan(q, stream_).kind, PlanKind::kAqpAggregation);

  auto scrub = ParseFrameQL(
      "SELECT timestamp FROM taipei GROUP BY timestamp "
      "HAVING SUM(class='bird') >= 1 LIMIT 5");
  auto sq = AnalyzeQuery(scrub.value(), stream_->config).value();
  EXPECT_EQ(ChoosePlan(sq, stream_).kind, PlanKind::kScanScrubbing);
}

TEST_F(IntegrationTest, CostOrderingNaiveGreaterThanNoScopeGreaterThanBlazeIt) {
  // The headline ordering of Figure 4, end to end on real components.
  auto naive = NaiveAggregate(stream_, kCar);
  auto oracle = NoScopeOracleAggregate(stream_, kCar);
  AggregateOptions opt = testutil::SmallNNOptions<AggregateOptions>();
  AggregationExecutor ex(stream_, opt);
  auto blazeit = ex.Run(kCar, 0.1, 0.95).value();
  EXPECT_GT(naive.cost.TotalSeconds(), oracle.cost.TotalSeconds());
  EXPECT_GT(oracle.cost.TotalSeconds(), blazeit.cost.TotalSeconds());
}

TEST_F(IntegrationTest, NoScopeOracleSpeedupTracksOccupancy) {
  // The NoScope-oracle speedup for aggregates is exactly 1/occupancy
  // (Section 10.1.1: it must run detection on occupied frames).
  auto naive = NaiveAggregate(stream_, kCar);
  auto oracle = NoScopeOracleAggregate(stream_, kCar);
  double occupancy = stream_->test_labels->Occupancy(kCar);
  double speedup = naive.cost.TotalSeconds() / oracle.cost.TotalSeconds();
  EXPECT_NEAR(speedup, 1.0 / occupancy, 0.05);
}

TEST_F(IntegrationTest, DetectionChargesDominateBaselineCost) {
  auto naive = NaiveAggregate(stream_, kCar);
  EXPECT_NEAR(naive.cost.TotalSeconds(), naive.cost.detection_seconds(),
              1e-9);
  EXPECT_EQ(naive.detection_calls, stream_->test_day->num_frames());
}

TEST_F(IntegrationTest, MultipleStreamsIndependentResults) {
  EngineOptions options = testutil::SmallEngineOptions();
  BlazeItEngine engine(catalog_, options);
  auto taipei = engine.Execute(
      "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.1");
  auto rialto = engine.Execute(
      "SELECT FCOUNT(*) FROM rialto WHERE class = 'boat' ERROR WITHIN 0.1");
  BLAZEIT_ASSERT_OK(taipei);
  BLAZEIT_ASSERT_OK(rialto);
  // Rialto's boat density (~2.3/frame) is far above taipei's cars (~1.0).
  EXPECT_GT(rialto.value().scalar, taipei.value().scalar);
}

TEST_F(IntegrationTest, ScrubbingDoesNotChargeForSkippedFrames) {
  ScrubOptions opt = testutil::SmallNNOptions<ScrubOptions>();
  ScrubbingExecutor ex(stream_, opt);
  auto r = ex.Run({{kCar, 2}}, 3, 0).value();
  // Detection charges equal detector calls (no hidden costs).
  EXPECT_NEAR(r.cost.detection_seconds(),
              r.detection_calls * (1.0 / 3.0), 1e-6);
}

TEST_F(IntegrationTest, RepeatedExecutionDeterministic) {
  AggregateOptions opt = testutil::SmallNNOptions<AggregateOptions>();
  AggregationExecutor ex1(stream_, opt);
  AggregationExecutor ex2(stream_, opt);
  auto a = ex1.Run(kCar, 0.1, 0.95).value();
  auto b = ex2.Run(kCar, 0.1, 0.95).value();
  EXPECT_EQ(a.method, b.method);
  EXPECT_DOUBLE_EQ(a.estimate, b.estimate);
  EXPECT_EQ(a.detection_calls, b.detection_calls);
}

}  // namespace
}  // namespace blazeit
