#include "core/aggregation.h"

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "testing/test_util.h"

namespace blazeit {
namespace {

class AggregationTest : public testutil::CatalogFixture<AggregationTest> {
 protected:
  static AggregateOptions FastOptions() {
    return testutil::SmallNNOptions<AggregateOptions>();
  }
  static double TestTruth(int class_id) {
    const auto& counts = stream_->test_labels->Counts(class_id);
    double sum = 0;
    for (int c : counts) sum += c;
    return sum / static_cast<double>(counts.size());
  }
};

TEST_F(AggregationTest, ValidatesArguments) {
  AggregationExecutor ex(stream_, FastOptions());
  EXPECT_FALSE(ex.Run(kCar, 0.0, 0.95).ok());
  EXPECT_FALSE(ex.Run(kCar, 0.1, 1.0).ok());
}

TEST_F(AggregationTest, EstimateWithinTolerance) {
  AggregationExecutor ex(stream_, FastOptions());
  auto r = ex.Run(kCar, 0.1, 0.95);
  BLAZEIT_ASSERT_OK(r);
  EXPECT_NEAR(r.value().estimate, TestTruth(kCar), 0.2);
  EXPECT_GT(r.value().cost.TotalSeconds(), 0.0);
}

TEST_F(AggregationTest, ChargesFarLessThanNaive) {
  AggregationExecutor ex(stream_, FastOptions());
  auto r = ex.Run(kCar, 0.1, 0.95).value();
  auto naive = NaiveAggregate(stream_, kCar);
  EXPECT_LT(r.cost.TotalSeconds(), naive.cost.TotalSeconds() / 5);
}

TEST_F(AggregationTest, MissingClassFallsBackToAqp) {
  // No birds in taipei: Algorithm 1's precondition fails.
  AggregationExecutor ex(stream_, FastOptions());
  auto r = ex.Run(kBird, 0.1, 0.95);
  BLAZEIT_ASSERT_OK(r);
  EXPECT_EQ(r.value().method, AggregateMethod::kPlainAqp);
  EXPECT_NEAR(r.value().estimate, 0.0, 0.05);
}

TEST_F(AggregationTest, TightErrorForcesControlVariates) {
  // At 0.01 error no specialized NN passes the bootstrap test, so control
  // variates (with detector sampling) must kick in.
  AggregateOptions opt = FastOptions();
  AggregationExecutor ex(stream_, opt);
  auto r = ex.Run(kCar, 0.01, 0.95);
  BLAZEIT_ASSERT_OK(r);
  EXPECT_EQ(r.value().method, AggregateMethod::kControlVariates);
  EXPECT_GT(r.value().detection_calls, 0);
  EXPECT_GT(r.value().nn_correlation, 0.1);
  EXPECT_NEAR(r.value().estimate, TestTruth(kCar), 0.05);
}

TEST_F(AggregationTest, DisablingRewriteUsesControlVariates) {
  AggregateOptions opt = FastOptions();
  opt.allow_query_rewrite = false;
  AggregationExecutor ex(stream_, opt);
  auto r = ex.Run(kCar, 0.1, 0.95);
  BLAZEIT_ASSERT_OK(r);
  EXPECT_EQ(r.value().method, AggregateMethod::kControlVariates);
}

TEST_F(AggregationTest, DisablingBothFallsBackToAqp) {
  AggregateOptions opt = FastOptions();
  opt.allow_query_rewrite = false;
  opt.allow_control_variates = false;
  AggregationExecutor ex(stream_, opt);
  auto r = ex.Run(kCar, 0.1, 0.95);
  BLAZEIT_ASSERT_OK(r);
  EXPECT_EQ(r.value().method, AggregateMethod::kPlainAqp);
}

TEST_F(AggregationTest, NnCountsExposedAfterRun) {
  AggregationExecutor ex(stream_, FastOptions());
  auto r = ex.Run(kCar, 0.1, 0.95);
  BLAZEIT_ASSERT_OK(r);
  EXPECT_EQ(ex.nn_counts().size(),
            static_cast<size_t>(stream_->test_day->num_frames()));
  ASSERT_TRUE(ex.nn_bootstrap().has_value());
  EXPECT_GE(ex.nn_bootstrap()->error_quantile, 0.0);
}

TEST_F(AggregationTest, BaselinesAreExact) {
  auto naive = NaiveAggregate(stream_, kCar);
  auto oracle = NoScopeOracleAggregate(stream_, kCar);
  EXPECT_DOUBLE_EQ(naive.estimate, TestTruth(kCar));
  EXPECT_DOUBLE_EQ(oracle.estimate, TestTruth(kCar));
  // The oracle only detects occupied frames.
  EXPECT_LT(oracle.detection_calls, naive.detection_calls);
  EXPECT_EQ(naive.detection_calls, stream_->test_day->num_frames());
}

TEST_F(AggregationTest, NaiveAqpRespectsTolerance) {
  auto r = NaiveAqpAggregate(stream_, kCar, 0.1, 0.95, 3);
  BLAZEIT_ASSERT_OK(r);
  EXPECT_NEAR(r.value().estimate, TestTruth(kCar), 0.2);
  EXPECT_LT(r.value().samples_used, stream_->test_day->num_frames());
}

TEST_F(AggregationTest, MethodNames) {
  EXPECT_STREQ(AggregateMethodName(AggregateMethod::kQueryRewrite),
               "query-rewrite");
  EXPECT_STREQ(AggregateMethodName(AggregateMethod::kControlVariates),
               "control-variates");
  EXPECT_STREQ(AggregateMethodName(AggregateMethod::kPlainAqp), "plain-aqp");
}

}  // namespace
}  // namespace blazeit
