#include <gtest/gtest.h>

#include "testing/test_util.h"

#include <cmath>

#include "stats/bootstrap.h"
#include "stats/normal.h"
#include "stats/online_stats.h"
#include "util/random.h"

namespace blazeit {
namespace {

TEST(NormalTest, CdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-10);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-4);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-4);
}

TEST(NormalTest, PpfInvertsCdf) {
  for (double p : {0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999}) {
    EXPECT_NEAR(NormalCdf(NormalPpf(p)), p, 1e-8) << p;
  }
}

TEST(NormalTest, PpfEdges) {
  EXPECT_EQ(NormalPpf(0.0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(NormalPpf(1.0), std::numeric_limits<double>::infinity());
  EXPECT_NEAR(NormalPpf(0.5), 0.0, 1e-10);
}

TEST(NormalTest, TwoSidedZ) {
  EXPECT_NEAR(TwoSidedZ(0.95), 1.9599, 1e-3);
  EXPECT_NEAR(TwoSidedZ(0.99), 2.5758, 1e-3);
}

TEST(NormalTest, PdfSymmetricPeakAtZero) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989, 1e-4);
  EXPECT_NEAR(NormalPdf(1.5), NormalPdf(-1.5), 1e-12);
}

TEST(OnlineStatsTest, MeanVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_NEAR(s.Mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.PopulationVariance(), 4.0, 1e-12);
  EXPECT_NEAR(s.Variance(), 4.0 * 8 / 7, 1e-12);
  EXPECT_NEAR(s.StdDev(), std::sqrt(4.0 * 8 / 7), 1e-12);
}

TEST(OnlineStatsTest, EmptyAndSingle) {
  OnlineStats s;
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Variance(), 0.0);
  s.Add(3.0);
  EXPECT_EQ(s.Mean(), 3.0);
  EXPECT_EQ(s.Variance(), 0.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0);
}

TEST(OnlineCovarianceTest, PerfectCorrelation) {
  OnlineCovariance c;
  for (int i = 0; i < 100; ++i) c.Add(i, 2.0 * i + 1);
  EXPECT_NEAR(c.Correlation(), 1.0, 1e-9);
}

TEST(OnlineCovarianceTest, AntiCorrelation) {
  OnlineCovariance c;
  for (int i = 0; i < 100; ++i) c.Add(i, -i);
  EXPECT_NEAR(c.Correlation(), -1.0, 1e-9);
}

TEST(OnlineCovarianceTest, IndependentNearZero) {
  OnlineCovariance c;
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) c.Add(rng.Normal(0, 1), rng.Normal(0, 1));
  EXPECT_NEAR(c.Correlation(), 0.0, 0.03);
}

TEST(OnlineCovarianceTest, MatchesTwoPass) {
  OnlineCovariance c;
  std::vector<double> xs = {1, 4, 2, 8, 5, 7};
  std::vector<double> ys = {2, 3, 7, 1, 9, 4};
  double mx = 0, my = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    c.Add(xs[i], ys[i]);
    mx += xs[i];
    my += ys[i];
  }
  mx /= xs.size();
  my /= ys.size();
  double cov = 0;
  for (size_t i = 0; i < xs.size(); ++i) cov += (xs[i] - mx) * (ys[i] - my);
  cov /= (xs.size() - 1);
  EXPECT_NEAR(c.Covariance(), cov, 1e-12);
}

TEST(BootstrapTest, UnbiasedPredictorTightBound) {
  Rng rng(9);
  std::vector<double> pred, truth;
  for (int i = 0; i < 5000; ++i) {
    double t = rng.Poisson(1.0);
    truth.push_back(t);
    pred.push_back(t + rng.Normal(0, 0.2));  // unbiased noise
  }
  auto r = BootstrapAbsError(pred, truth, 0.95, 200, 1);
  BLAZEIT_ASSERT_OK(r);
  EXPECT_LT(r.value().error_quantile, 0.05);
}

TEST(BootstrapTest, BiasedPredictorDetected) {
  Rng rng(10);
  std::vector<double> pred, truth;
  for (int i = 0; i < 5000; ++i) {
    double t = rng.Poisson(1.0);
    truth.push_back(t);
    pred.push_back(t + 0.3);  // systematic bias
  }
  auto r = BootstrapAbsError(pred, truth, 0.95, 200, 1);
  BLAZEIT_ASSERT_OK(r);
  EXPECT_GT(r.value().error_quantile, 0.25);
  EXPECT_NEAR(r.value().mean_abs_error, 0.3, 0.02);
}

TEST(BootstrapTest, RejectsBadArgs) {
  EXPECT_FALSE(BootstrapAbsError({1.0}, {1.0, 2.0}, 0.95, 10, 1).ok());
  EXPECT_FALSE(BootstrapAbsError({}, {}, 0.95, 10, 1).ok());
  EXPECT_FALSE(BootstrapAbsError({1.0}, {1.0}, 1.5, 10, 1).ok());
  EXPECT_FALSE(BootstrapAbsError({1.0}, {1.0}, 0.95, 0, 1).ok());
}

}  // namespace
}  // namespace blazeit
