#include "video/scene_model.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

#include "video/datasets.h"

namespace blazeit {
namespace {

TEST(ClassesTest, NamesRoundTrip) {
  for (int c = 0; c < kNumClasses; ++c) {
    auto id = ClassIdFromName(ClassName(c));
    BLAZEIT_ASSERT_OK(id);
    EXPECT_EQ(id.value(), c);
  }
}

TEST(ClassesTest, UnknownNameFails) {
  EXPECT_FALSE(ClassIdFromName("dinosaur").ok());
  EXPECT_EQ(ClassIdFromName("dinosaur").status().code(),
            StatusCode::kNotFound);
}

TEST(ArrivalRateTest, MatchesOccupancyInversion) {
  // P(count >= 1) = 1 - exp(-lambda * D).
  double lambda = ArrivalRatePerFrame(0.644, 43.0);
  EXPECT_NEAR(1.0 - std::exp(-lambda * 43.0), 0.644, 1e-9);
}

TEST(ArrivalRateTest, ZeroForDegenerateInputs) {
  EXPECT_EQ(ArrivalRatePerFrame(0.0, 10.0), 0.0);
  EXPECT_EQ(ArrivalRatePerFrame(0.5, 0.0), 0.0);
}

TEST(ExpectedMeanCountTest, ConsistentWithTable5) {
  // The paper's measured per-frame counts (Table 5) should match the
  // steady-state lambda * D of the configured occupancies and durations.
  StreamConfig rialto = RialtoConfig();
  double mean = ExpectedMeanCount(*rialto.FindClass(kBoat), rialto.fps);
  EXPECT_NEAR(mean, 2.29, 0.1);  // Table 5 reports 2.15-2.37

  StreamConfig canal = GrandCanalConfig();
  EXPECT_NEAR(ExpectedMeanCount(*canal.FindClass(kBoat), canal.fps), 0.86,
              0.1);  // Table 5 reports 0.81-0.99
}

TEST(ValidateTest, AcceptsAllShippedConfigs) {
  for (const StreamConfig& cfg : AllStreamConfigs()) {
    BLAZEIT_EXPECT_OK(ValidateStreamConfig(cfg)) << cfg.name;
  }
}

TEST(ValidateTest, RejectsBadConfigs) {
  StreamConfig cfg = TaipeiConfig();
  cfg.name = "";
  EXPECT_FALSE(ValidateStreamConfig(cfg).ok());

  cfg = TaipeiConfig();
  cfg.fps = 0;
  EXPECT_FALSE(ValidateStreamConfig(cfg).ok());

  cfg = TaipeiConfig();
  cfg.classes[0].occupancy = 1.5;
  EXPECT_FALSE(ValidateStreamConfig(cfg).ok());

  cfg = TaipeiConfig();
  cfg.classes[0].populations.clear();
  EXPECT_FALSE(ValidateStreamConfig(cfg).ok());

  cfg = TaipeiConfig();
  cfg.classes.clear();
  EXPECT_FALSE(ValidateStreamConfig(cfg).ok());
}

TEST(DatasetsTest, SixStreamsWithTable3Parameters) {
  auto all = AllStreamConfigs();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0].name, "taipei");
  EXPECT_EQ(all[5].name, "archie");
  // Spot-check Table 3 values.
  EXPECT_NEAR(all[0].FindClass(kCar)->occupancy, 0.644, 1e-9);
  EXPECT_NEAR(all[0].FindClass(kBus)->occupancy, 0.119, 1e-9);
  EXPECT_NEAR(all[2].FindClass(kBoat)->mean_duration_sec, 10.7, 1e-9);
  EXPECT_EQ(all[3].fps, 60);      // grand-canal is 1080p60
  EXPECT_EQ(all[5].width, 3840);  // archie is 4K
}

TEST(DatasetsTest, LookupByName) {
  auto cfg = StreamConfigByName("night-street");
  BLAZEIT_ASSERT_OK(cfg);
  EXPECT_EQ(cfg.value().name, "night-street");
  EXPECT_FALSE(StreamConfigByName("nonexistent").ok());
}

TEST(DatasetsTest, TaipeiHasRedAndWhiteBuses) {
  StreamConfig cfg = TaipeiConfig();
  const ObjectClassConfig* bus = cfg.FindClass(kBus);
  ASSERT_NE(bus, nullptr);
  ASSERT_EQ(bus->populations.size(), 2u);
  // Red tour buses: red channel dominates; transit buses: near-white.
  EXPECT_GT(bus->populations[0].color.r, bus->populations[0].color.g + 0.3);
  EXPECT_GT(bus->populations[1].color.r, 0.7);
  EXPECT_GT(bus->populations[1].color.g, 0.7);
}

TEST(StreamConfigTest, FindClassMissingReturnsNull) {
  EXPECT_EQ(TaipeiConfig().FindClass(kBird), nullptr);
}

}  // namespace
}  // namespace blazeit
