#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/counting_cache.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "sim/cost_model.h"
#include "testing/json_util.h"

namespace blazeit {
namespace obs {
namespace {

using testutil::JsonValidator;

// ---------------------------------------------------------------------------
// MetricsRegistry + instruments

TEST(MetricsTest, RegistryReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("a.counter", Stability::kStable);
  Counter* c2 = registry.GetCounter("a.counter", Stability::kStable);
  EXPECT_EQ(c1, c2);
  Gauge* g1 = registry.GetGauge("a.gauge", Stability::kUnstable);
  EXPECT_EQ(g1, registry.GetGauge("a.gauge", Stability::kUnstable));
  Histogram* h1 =
      registry.GetHistogram("a.hist", {10, 100}, Stability::kStable);
  // Bounds are consulted on first registration only.
  Histogram* h2 = registry.GetHistogram("a.hist", {999}, Stability::kStable);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->bounds(), (std::vector<int64_t>{10, 100}));
}

TEST(MetricsTest, CounterConcurrentAddsSum) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("hits", Stability::kStable);
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Re-resolve through the registry the way hot paths do, so the test
      // also exercises concurrent Get* against concurrent Add().
      Counter* c = registry.GetCounter("hits", Stability::kStable);
      for (int i = 0; i < kAddsPerThread; ++i) c->Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->value(), int64_t{kThreads} * kAddsPerThread);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("depth", Stability::kUnstable);
  gauge->Set(7);
  EXPECT_EQ(gauge->value(), 7);
  gauge->Add(-3);
  EXPECT_EQ(gauge->value(), 4);
}

TEST(MetricsTest, HistogramBucketsValuesInclusively) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("bytes", {10, 100},
                                          Stability::kStable);
  hist->Observe(5);     // <= 10
  hist->Observe(10);    // == bound -> same bucket (upper bound is >= v)
  hist->Observe(50);    // <= 100
  hist->Observe(1000);  // overflow bucket
  EXPECT_EQ(hist->count(), 4);
  EXPECT_EQ(hist->sum(), 1065);
  EXPECT_EQ(hist->bucket_counts(), (std::vector<int64_t>{2, 1, 1}));
}

TEST(MetricsTest, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("z.last", Stability::kStable)->Add(2);
  registry.GetGauge("a.first", Stability::kStable)->Set(1);
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.entries.size(), 2u);
  EXPECT_EQ(snap.entries[0].name, "a.first");
  EXPECT_EQ(snap.entries[1].name, "z.last");
  ASSERT_NE(snap.Find("z.last"), nullptr);
  EXPECT_EQ(snap.Find("z.last")->value, 2);
  EXPECT_EQ(snap.Find("missing"), nullptr);
}

TEST(MetricsTest, SnapshotTextAndJsonExports) {
  MetricsRegistry registry;
  registry.GetCounter("store.reads{tier=\"x\"}", Stability::kStable)->Add(3);
  Histogram* hist = registry.GetHistogram("bytes", {64}, Stability::kStable);
  hist->Observe(32);
  hist->Observe(128);
  MetricsSnapshot snap = registry.Snapshot();
  const std::string text = snap.ToText();
  EXPECT_NE(text.find("store.reads{tier=\"x\"} 3"), std::string::npos);
  EXPECT_NE(text.find("bytes count=2 sum=160 buckets=[1,1]"),
            std::string::npos);
  const std::string json = snap.ToJson();
  // The embedded quote in the label must be escaped, not break the JSON.
  EXPECT_TRUE(JsonValidator::Valid(json)) << json;
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
}

TEST(MetricsTest, DeltaFromSubtractsCountersAndKeepsGauges) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c", Stability::kStable);
  Gauge* gauge = registry.GetGauge("g", Stability::kStable);
  Histogram* hist = registry.GetHistogram("h", {10}, Stability::kStable);
  counter->Add(5);
  gauge->Set(3);
  hist->Observe(4);
  MetricsSnapshot base = registry.Snapshot();

  counter->Add(7);
  gauge->Set(9);
  hist->Observe(40);
  // A counter born after the baseline subtracts zero.
  registry.GetCounter("later", Stability::kStable)->Add(2);
  MetricsSnapshot delta = registry.Snapshot().DeltaFrom(base);

  EXPECT_EQ(delta.Find("c")->value, 7);
  EXPECT_EQ(delta.Find("g")->value, 9);
  EXPECT_EQ(delta.Find("later")->value, 2);
  const MetricsSnapshot::Entry* h = delta.Find("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->value, 1);
  EXPECT_EQ(h->sum, 40);
  EXPECT_EQ(h->buckets, (std::vector<int64_t>{0, 1}));
}

TEST(MetricsTest, StableOnlyDropsUnstableInstruments) {
  MetricsRegistry registry;
  registry.GetCounter("stable.counter", Stability::kStable)->Add(1);
  registry.GetGauge("unstable.gauge", Stability::kUnstable)->Set(5);
  MetricsSnapshot stable = registry.Snapshot().StableOnly();
  ASSERT_EQ(stable.entries.size(), 1u);
  EXPECT_EQ(stable.entries[0].name, "stable.counter");
}

TEST(MetricsTest, GlobalRegistryIsASingleton) {
  Counter* c = MetricsRegistry::Global().GetCounter("obs_test.probe",
                                                    Stability::kStable);
  EXPECT_EQ(c, MetricsRegistry::Global().GetCounter("obs_test.probe",
                                                    Stability::kStable));
}

// ---------------------------------------------------------------------------
// QueryTrace + TraceSpan

TEST(TraceTest, StructureSignatureReflectsNesting) {
  QueryTrace trace("q");
  { TraceSpan parse(&trace, "parse"); }
  {
    TraceSpan execute(&trace, "execute");
    {
      TraceSpan train(&trace, "train");
    }
    TraceSpan sweep(&trace, "sweep");
  }
  EXPECT_EQ(trace.StructureSignature(),
            "parse\n"
            "execute\n"
            "  train\n"
            "  sweep\n");
  for (const QueryTrace::Span& span : trace.spans()) {
    EXPECT_TRUE(span.closed) << span.name;
    EXPECT_GE(span.end_ns, span.start_ns) << span.name;
  }
}

TEST(TraceTest, SpanRecordsMeterDeltas) {
  QueryTrace trace("q");
  CostMeter meter;
  meter.ChargeFilter(100);  // pre-span cost must not be attributed
  {
    TraceSpan span(&trace, "detect", &meter);
    meter.ChargeDetection();
  }
  const std::vector<QueryTrace::Span> spans = trace.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_TRUE(spans[0].has_cost);
  EXPECT_DOUBLE_EQ(spans[0].cost_end_seconds - spans[0].cost_begin_seconds,
                   meter.profile().detection_sec_per_frame);
}

TEST(TraceTest, ExplicitCloseEndsSpanEarlyAndIsIdempotent) {
  QueryTrace trace("q");
  {
    TraceSpan first(&trace, "first");
    first.Close();
    first.Close();  // no-op
    // A sibling opened after the Close must not nest under "first".
    TraceSpan second(&trace, "second");
  }
  EXPECT_EQ(trace.StructureSignature(), "first\nsecond\n");
}

TEST(TraceTest, NullTraceSpanIsANoop) {
  TraceSpan span(nullptr, "anything");
  span.Close();  // must not crash
}

TEST(TraceTest, ChromeJsonValidatesAndHasCompleteEvents) {
  QueryTrace trace("SELECT \"quoted\"\nquery");
  CostMeter meter;
  {
    TraceSpan outer(&trace, "execute", &meter);
    meter.ChargeSpecializedNN(10);
    TraceSpan inner(&trace, "sweep", &meter);
  }
  const std::string json = trace.ToChromeJson();
  EXPECT_TRUE(JsonValidator::Valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"simulated_seconds\""), std::string::npos);
  // The query name (with its quote and newline) must arrive escaped.
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

// ---------------------------------------------------------------------------
// CountingCacheView

/// Map-backed ArtifactCache for exercising the hit paths.
class MapCache final : public ArtifactCache {
 public:
  bool GetFrameFloats(uint64_t ns, int64_t frame,
                      std::vector<float>* out) override {
    auto it = floats_.find({ns, frame});
    if (it == floats_.end()) return false;
    *out = it->second;
    return true;
  }
  void PutFrameFloats(uint64_t ns, int64_t frame,
                      const std::vector<float>& values) override {
    floats_[{ns, frame}] = values;
  }
  bool GetFrameDoubles(uint64_t ns, int64_t frame,
                       std::vector<double>* out) override {
    auto it = doubles_.find({ns, frame});
    if (it == doubles_.end()) return false;
    *out = it->second;
    return true;
  }
  void PutFrameDoubles(uint64_t ns, int64_t frame,
                       const std::vector<double>& values) override {
    doubles_[{ns, frame}] = values;
  }
  bool GetBlob(uint64_t ns, std::vector<float>* out) override {
    auto it = blobs_.find(ns);
    if (it == blobs_.end()) return false;
    *out = it->second;
    return true;
  }
  void PutBlob(uint64_t ns, const std::vector<float>& values) override {
    blobs_[ns] = values;
  }

 private:
  std::map<std::pair<uint64_t, int64_t>, std::vector<float>> floats_;
  std::map<std::pair<uint64_t, int64_t>, std::vector<double>> doubles_;
  std::map<uint64_t, std::vector<float>> blobs_;
};

TEST(CountingCacheTest, NullUnderlyingCountsMissesAndDropsPuts) {
  CountingCacheView view(nullptr);
  std::vector<float> floats;
  std::vector<double> doubles;
  EXPECT_FALSE(view.GetFrameFloats(1, 0, &floats));
  EXPECT_FALSE(view.GetFrameDoubles(1, 0, &doubles));
  EXPECT_FALSE(view.GetBlob(1, &floats));
  view.PutFrameFloats(1, 0, {1.0f});
  view.PutBlob(1, {1.0f});
  // Still a miss: puts against a null cache go nowhere.
  EXPECT_FALSE(view.GetFrameFloats(1, 0, &floats));
  EXPECT_EQ(view.stats().hits(), 0);
  EXPECT_EQ(view.stats().misses(), 4);
  EXPECT_EQ(view.stats().frame_float_misses, 2);
  EXPECT_EQ(view.stats().frame_double_misses, 1);
  EXPECT_EQ(view.stats().blob_misses, 1);
}

TEST(CountingCacheTest, CountsPerKindHitsThroughUnderlyingCache) {
  MapCache cache;
  CountingCacheView view(&cache);
  std::vector<float> floats;
  std::vector<double> doubles;
  EXPECT_FALSE(view.GetBlob(7, &floats));  // cold miss
  view.PutBlob(7, {1.0f, 2.0f});
  EXPECT_TRUE(view.GetBlob(7, &floats));
  EXPECT_EQ(floats, (std::vector<float>{1.0f, 2.0f}));
  view.PutFrameDoubles(7, 3, {0.5});
  EXPECT_TRUE(view.GetFrameDoubles(7, 3, &doubles));
  EXPECT_EQ(view.stats().blob_hits, 1);
  EXPECT_EQ(view.stats().blob_misses, 1);
  EXPECT_EQ(view.stats().frame_double_hits, 1);
  EXPECT_EQ(view.stats().hits(), 2);
  EXPECT_EQ(view.stats().misses(), 1);
}

// ---------------------------------------------------------------------------
// ExecutionReport

TEST(ReportTest, FillCostReconcilesWithMeterExactly) {
  CostMeter meter;
  meter.ChargeDetection();
  meter.ChargeSpecializedNN(1000);
  meter.ChargeFilter(500);
  meter.ChargeTraining(2000);
  meter.ChargeThresholding(100);
  ExecutionReport report;
  report.FillCost(meter);
  EXPECT_EQ(report.detection_calls, meter.detection_calls());
  EXPECT_EQ(report.specialized_nn_calls, meter.specialized_nn_calls());
  EXPECT_EQ(report.filter_calls, meter.filter_calls());
  EXPECT_EQ(report.training_frames, meter.training_frames());
  // Bit-exact, not approximate: the report is the meter's accounting.
  EXPECT_EQ(report.detection_seconds, meter.detection_seconds());
  EXPECT_EQ(report.specialized_nn_seconds, meter.specialized_nn_seconds());
  EXPECT_EQ(report.filter_seconds, meter.filter_seconds());
  EXPECT_EQ(report.training_seconds, meter.training_seconds());
  EXPECT_EQ(report.thresholding_seconds, meter.thresholding_seconds());
  EXPECT_EQ(report.total_seconds, meter.TotalSeconds());
  EXPECT_EQ(report.query_seconds, meter.QuerySeconds());
}

TEST(ReportTest, TextAndJsonAreSelfContained) {
  ExecutionReport report;
  report.query = "SELECT FCOUNT(*) FROM \"odd\" stream";
  report.plan = "specialized-aggregate";
  report.plan_description = "NN + control variates";
  CostMeter meter;
  meter.ChargeSpecializedNN(10);
  report.FillCost(meter);
  report.cache.frame_float_hits = 4;
  report.cache.frame_float_misses = 6;
  report.sketch.consulted = true;
  report.sketch.pruned = true;
  report.sketch.window_frames = 100;
  report.sketch.candidate_frames = 25;
  report.trace = std::make_shared<QueryTrace>(report.query);
  {
    TraceSpan span(report.trace.get(), "execute", &meter);
  }
  const std::string text = report.ToText();
  EXPECT_NE(text.find("specialized-aggregate"), std::string::npos);
  EXPECT_NE(text.find("execute"), std::string::npos);
  const std::string json = report.ToJson();
  EXPECT_TRUE(JsonValidator::Valid(json)) << json;
  EXPECT_NE(json.find("\"plan\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\""), std::string::npos);
}

TEST(ReportTest, AccuracyTierDefaultsToFullAndSurfacesDowngrades) {
  ExecutionReport report;
  report.query = "q";
  // "full" is the default; ToText stays quiet about it (no tier line),
  // ToJson always carries it so downstream parsers need no fallback.
  EXPECT_EQ(report.accuracy_tier, "full");
  EXPECT_EQ(report.ToText().find("accuracy tier"), std::string::npos);
  EXPECT_NE(report.ToJson().find("\"accuracy_tier\":\"full\""),
            std::string::npos);

  report.accuracy_tier = "degraded-sampling";
  EXPECT_NE(report.ToText().find("accuracy tier: degraded-sampling"),
            std::string::npos);
  const std::string json = report.ToJson();
  EXPECT_TRUE(JsonValidator::Valid(json)) << json;
  EXPECT_NE(json.find("\"accuracy_tier\":\"degraded-sampling\""),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Prometheus text exporter

TEST(PrometheusTest, RendersCountersGaugesAndLabels) {
  MetricsRegistry registry;
  registry.GetCounter("serve.submitted{client=alice}", Stability::kStable)
      ->Add(3);
  registry.GetCounter("serve.submitted{client=bob}", Stability::kStable)
      ->Add(1);
  registry.GetGauge("serve.queue_depth", Stability::kUnstable)->Set(7);
  const std::string text = PrometheusSnapshot(registry.Snapshot());

  // Dots sanitize to underscores under the blazeit_ prefix; labels render
  // quoted; one TYPE line covers a family's contiguous labeled series.
  EXPECT_NE(text.find("# TYPE blazeit_serve_submitted counter\n"
                      "blazeit_serve_submitted{client=\"alice\"} 3\n"
                      "blazeit_serve_submitted{client=\"bob\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE blazeit_serve_queue_depth gauge\n"
                      "blazeit_serve_queue_depth 7\n"),
            std::string::npos)
      << text;
  // Exactly one TYPE line for the two-series counter family.
  const size_t first = text.find("# TYPE blazeit_serve_submitted");
  EXPECT_EQ(text.find("# TYPE blazeit_serve_submitted", first + 1),
            std::string::npos);
}

TEST(PrometheusTest, RendersHistogramsCumulatively) {
  MetricsRegistry registry;
  Histogram* hist =
      registry.GetHistogram("latency", {1, 2}, Stability::kStable);
  hist->Observe(1);
  hist->Observe(5);  // overflow bucket
  const std::string text = PrometheusSnapshot(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE blazeit_latency histogram\n"
                      "blazeit_latency_bucket{le=\"1\"} 1\n"
                      "blazeit_latency_bucket{le=\"2\"} 1\n"
                      "blazeit_latency_bucket{le=\"+Inf\"} 2\n"
                      "blazeit_latency_sum 6\n"
                      "blazeit_latency_count 2\n"),
            std::string::npos)
      << text;
}

TEST(PrometheusTest, EscapesLabelValuesAndSanitizesNames) {
  MetricsRegistry registry;
  registry.GetCounter("odd.name{k=a\"b\\c}", Stability::kStable)->Add(1);
  const std::string text = PrometheusSnapshot(registry.Snapshot());
  EXPECT_NE(text.find("blazeit_odd_name{k=\"a\\\"b\\\\c\"} 1"),
            std::string::npos)
      << text;
}

TEST(PrometheusTest, EmptyRegistryRendersEmptyExposition) {
  MetricsRegistry registry;
  EXPECT_EQ(PrometheusSnapshot(registry.Snapshot()), "");
}

TEST(PrometheusTest, EscapesNewlinesInLabelValues) {
  MetricsRegistry registry;
  registry.GetCounter("q.error{msg=line one\nline two}", Stability::kStable)
      ->Add(2);
  const std::string text = PrometheusSnapshot(registry.Snapshot());
  // The embedded newline becomes the two characters \n, keeping the
  // sample on one physical line (a raw newline would corrupt the
  // exposition for every scraper).
  EXPECT_NE(text.find("blazeit_q_error{msg=\"line one\\nline two\"} 2"),
            std::string::npos)
      << text;
  const size_t sample = text.find("blazeit_q_error{");
  ASSERT_NE(sample, std::string::npos);
  const size_t eol = text.find('\n', sample);
  ASSERT_NE(eol, std::string::npos);
  EXPECT_EQ(text.substr(sample, eol - sample),
            "blazeit_q_error{msg=\"line one\\nline two\"} 2");
}

TEST(PrometheusTest, InfBucketAlwaysEqualsCount) {
  MetricsRegistry registry;
  // No overflow observations: +Inf must still render and equal count.
  Histogram* bounded =
      registry.GetHistogram("inside", {10, 100}, Stability::kStable);
  bounded->Observe(1);
  bounded->Observe(50);
  // Zero observations: all buckets (including +Inf) and count are 0.
  registry.GetHistogram("idle", {5}, Stability::kStable);
  const std::string text = PrometheusSnapshot(registry.Snapshot());
  EXPECT_NE(text.find("blazeit_inside_bucket{le=\"+Inf\"} 2\n"
                      "blazeit_inside_sum 51\n"
                      "blazeit_inside_count 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("blazeit_idle_bucket{le=\"5\"} 0\n"
                      "blazeit_idle_bucket{le=\"+Inf\"} 0\n"
                      "blazeit_idle_sum 0\n"
                      "blazeit_idle_count 0\n"),
            std::string::npos)
      << text;
}

}  // namespace
}  // namespace obs
}  // namespace blazeit
