#include "frameql/lexer.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace blazeit {
namespace {

TEST(LexerTest, SimpleQuery) {
  auto tokens = LexFrameQL("SELECT * FROM taipei");
  BLAZEIT_ASSERT_OK(tokens);
  const auto& t = tokens.value();
  ASSERT_EQ(t.size(), 5u);  // SELECT * FROM taipei <end>
  EXPECT_TRUE(t[0].IsKeyword("SELECT"));
  EXPECT_TRUE(t[1].IsSymbol("*"));
  EXPECT_TRUE(t[2].IsKeyword("FROM"));
  EXPECT_EQ(t[3].text, "taipei");
  EXPECT_EQ(t[4].type, TokenType::kEnd);
}

TEST(LexerTest, CaseInsensitiveKeywords) {
  auto tokens = LexFrameQL("select FcOuNt");
  BLAZEIT_ASSERT_OK(tokens);
  EXPECT_TRUE(tokens.value()[0].IsKeyword("SELECT"));
  EXPECT_TRUE(tokens.value()[1].IsKeyword("FCOUNT"));
}

TEST(LexerTest, NumbersAndStrings) {
  auto tokens = LexFrameQL("0.1 300 'bus'");
  BLAZEIT_ASSERT_OK(tokens);
  const auto& t = tokens.value();
  EXPECT_EQ(t[0].type, TokenType::kNumber);
  EXPECT_DOUBLE_EQ(t[0].number, 0.1);
  EXPECT_DOUBLE_EQ(t[1].number, 300);
  EXPECT_EQ(t[2].type, TokenType::kString);
  EXPECT_EQ(t[2].text, "bus");
}

TEST(LexerTest, TwoCharOperators) {
  auto tokens = LexFrameQL(">= <= != <> < > =");
  BLAZEIT_ASSERT_OK(tokens);
  const auto& t = tokens.value();
  EXPECT_EQ(t[0].text, ">=");
  EXPECT_EQ(t[1].text, "<=");
  EXPECT_EQ(t[2].text, "!=");
  EXPECT_EQ(t[3].text, "!=");  // <> normalizes
  EXPECT_EQ(t[4].text, "<");
  EXPECT_EQ(t[5].text, ">");
  EXPECT_EQ(t[6].text, "=");
}

TEST(LexerTest, HyphenatedStreamNames) {
  auto tokens = LexFrameQL("FROM night-street");
  BLAZEIT_ASSERT_OK(tokens);
  EXPECT_EQ(tokens.value()[1].text, "night-street");
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = LexFrameQL("SELECT -- a comment\n *");
  BLAZEIT_ASSERT_OK(tokens);
  ASSERT_EQ(tokens.value().size(), 3u);
  EXPECT_TRUE(tokens.value()[1].IsSymbol("*"));
}

TEST(LexerTest, PercentSign) {
  auto tokens = LexFrameQL("CONFIDENCE 95%");
  BLAZEIT_ASSERT_OK(tokens);
  EXPECT_TRUE(tokens.value()[2].IsSymbol("%"));
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(LexFrameQL("WHERE class = 'bus").ok());
}

TEST(LexerTest, UnexpectedCharacterFails) {
  auto r = LexFrameQL("SELECT @");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(LexerTest, EmptyInputJustEnd) {
  auto tokens = LexFrameQL("");
  BLAZEIT_ASSERT_OK(tokens);
  ASSERT_EQ(tokens.value().size(), 1u);
  EXPECT_EQ(tokens.value()[0].type, TokenType::kEnd);
}

TEST(LexerTest, UnterminatedStringReportsOffset) {
  auto r = LexFrameQL("SELECT * FROM t WHERE class = 'bus");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("unterminated string"),
            std::string::npos);
  EXPECT_NE(r.status().message().find("offset 30"), std::string::npos);
}

TEST(LexerTest, UnexpectedCharacterNamesTheCharacter) {
  for (const char* bad : {"SELECT #", "SELECT $", "SELECT [", "SELECT \\"}) {
    auto r = LexFrameQL(bad);
    ASSERT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.status().code(), StatusCode::kParseError) << bad;
    EXPECT_NE(r.status().message().find("unexpected character"),
              std::string::npos)
        << bad;
  }
}

TEST(LexerTest, EmptyStringLiteralAllowed) {
  auto tokens = LexFrameQL("''");
  BLAZEIT_ASSERT_OK(tokens);
  EXPECT_EQ(tokens.value()[0].type, TokenType::kString);
  EXPECT_TRUE(tokens.value()[0].text.empty());
}

TEST(LexerTest, MalformedNumberLexesGreedily) {
  // The lexer consumes digit/dot runs greedily; strtod stops at the second
  // dot, so '1.2.3' becomes the number 1.2 (the parser then rejects the
  // query because the token stream no longer matches the grammar).
  auto tokens = LexFrameQL("1.2.3");
  BLAZEIT_ASSERT_OK(tokens);
  ASSERT_EQ(tokens.value().size(), 2u);
  EXPECT_EQ(tokens.value()[0].type, TokenType::kNumber);
  EXPECT_DOUBLE_EQ(tokens.value()[0].number, 1.2);
}

TEST(LexerTest, CommentOnlyInputJustEnd) {
  auto tokens = LexFrameQL("-- nothing but a comment");
  BLAZEIT_ASSERT_OK(tokens);
  ASSERT_EQ(tokens.value().size(), 1u);
  EXPECT_EQ(tokens.value()[0].type, TokenType::kEnd);
}

TEST(LexerTest, TokenPositionsRecorded) {
  auto tokens = LexFrameQL("SELECT *");
  BLAZEIT_ASSERT_OK(tokens);
  EXPECT_EQ(tokens.value()[0].position, 0u);
  EXPECT_EQ(tokens.value()[1].position, 7u);
}

}  // namespace
}  // namespace blazeit
