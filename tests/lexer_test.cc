#include "frameql/lexer.h"

#include <gtest/gtest.h>

namespace blazeit {
namespace {

TEST(LexerTest, SimpleQuery) {
  auto tokens = LexFrameQL("SELECT * FROM taipei");
  ASSERT_TRUE(tokens.ok());
  const auto& t = tokens.value();
  ASSERT_EQ(t.size(), 5u);  // SELECT * FROM taipei <end>
  EXPECT_TRUE(t[0].IsKeyword("SELECT"));
  EXPECT_TRUE(t[1].IsSymbol("*"));
  EXPECT_TRUE(t[2].IsKeyword("FROM"));
  EXPECT_EQ(t[3].text, "taipei");
  EXPECT_EQ(t[4].type, TokenType::kEnd);
}

TEST(LexerTest, CaseInsensitiveKeywords) {
  auto tokens = LexFrameQL("select FcOuNt");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE(tokens.value()[0].IsKeyword("SELECT"));
  EXPECT_TRUE(tokens.value()[1].IsKeyword("FCOUNT"));
}

TEST(LexerTest, NumbersAndStrings) {
  auto tokens = LexFrameQL("0.1 300 'bus'");
  ASSERT_TRUE(tokens.ok());
  const auto& t = tokens.value();
  EXPECT_EQ(t[0].type, TokenType::kNumber);
  EXPECT_DOUBLE_EQ(t[0].number, 0.1);
  EXPECT_DOUBLE_EQ(t[1].number, 300);
  EXPECT_EQ(t[2].type, TokenType::kString);
  EXPECT_EQ(t[2].text, "bus");
}

TEST(LexerTest, TwoCharOperators) {
  auto tokens = LexFrameQL(">= <= != <> < > =");
  ASSERT_TRUE(tokens.ok());
  const auto& t = tokens.value();
  EXPECT_EQ(t[0].text, ">=");
  EXPECT_EQ(t[1].text, "<=");
  EXPECT_EQ(t[2].text, "!=");
  EXPECT_EQ(t[3].text, "!=");  // <> normalizes
  EXPECT_EQ(t[4].text, "<");
  EXPECT_EQ(t[5].text, ">");
  EXPECT_EQ(t[6].text, "=");
}

TEST(LexerTest, HyphenatedStreamNames) {
  auto tokens = LexFrameQL("FROM night-street");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[1].text, "night-street");
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = LexFrameQL("SELECT -- a comment\n *");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens.value().size(), 3u);
  EXPECT_TRUE(tokens.value()[1].IsSymbol("*"));
}

TEST(LexerTest, PercentSign) {
  auto tokens = LexFrameQL("CONFIDENCE 95%");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE(tokens.value()[2].IsSymbol("%"));
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(LexFrameQL("WHERE class = 'bus").ok());
}

TEST(LexerTest, UnexpectedCharacterFails) {
  auto r = LexFrameQL("SELECT @");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(LexerTest, EmptyInputJustEnd) {
  auto tokens = LexFrameQL("");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens.value().size(), 1u);
  EXPECT_EQ(tokens.value()[0].type, TokenType::kEnd);
}

}  // namespace
}  // namespace blazeit
