// storecli: build, inspect, and verify persistent detection-store
// directories and segment files (src/storage/).
//
//   storecli build <store-dir> <stream> <day> [frames]
//       Precomputes detections of one generated day of a named stream
//       (train|held_out|test) into the store, so later engine/test/bench
//       runs start warm. `frames` overrides the default day length.
//   storecli ls <store-dir>
//       Lists every record namespace with its record count.
//   storecli stats <store-dir> [--json]
//       Per-namespace inventory (segments, records, pending, shadowed
//       duplicates, repair generation) plus sketch coverage and staleness;
//       --json emits one machine-readable object.
//   storecli inspect <segment-file>
//       Prints the segment header and per-record summary stats.
//   storecli verify <store-dir>
//       Full open: validates magic, version, and every record CRC of every
//       segment; exits non-zero with the failing segment's error.
//   storecli compact <store-dir>
//       Rewrites every namespace with multiple segments or first-write-
//       wins-shadowed duplicate records into one fresh segment per
//       namespace, dropping the shadowed duplicates; record resolution is
//       unchanged (the surviving payload per frame is the one reads
//       already returned).
//   storecli repair <store-dir>
//       Reads every record and drops those whose payload no engine codec
//       decodes (CRC-valid but semantically malformed), rewriting the
//       affected namespaces in place. A dropped record becomes a plain
//       miss, so the next engine run recomputes and re-stores it once
//       instead of warning on every run.
//   storecli sketch ls <store-dir>
//       Lists every sketched namespace with block count and staleness.
//   storecli sketch verify <store-dir>
//       Loads every sketch index the way the engine would and exits
//       non-zero if any is stale or unloadable.
//   storecli sketch rebuild <store-dir> [namespace-hex]
//       (Re)builds segment sketches for one detections namespace, or for
//       every detections namespace in the store when omitted.
//   storecli sketch drop <store-dir> <namespace-hex>
//       Removes a namespace's sketches; it stops being indexed.
//   storecli query <store-dir> <stream> <frameql> [options]
//       Executes one FrameQL query against the store with reporting on
//       and prints its ExecutionReport (EXPLAIN-style plan + stage trace
//       + simulated-cost breakdown + cache/sketch hit rates). Options:
//       --json (report as JSON), --trace FILE (write the Chrome
//       trace_event JSON; load in chrome://tracing), --metrics FILE
//       (write the process metrics snapshot JSON), --train/--held/--test N
//       (day lengths; defaults are the paper-scale days), --small-nn
//       (the test suites' small specialized NN, so a store the test lane
//       warmed is reused).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/catalog.h"
#include "core/engine.h"
#include "detect/simulated_detector.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "storage/detection_store.h"
#include "storage/persistent_cached_detector.h"
#include "storage/record_format.h"
#include "storage/segment_sketch.h"
#include "util/logging.h"
#include "video/datasets.h"

namespace blazeit {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  storecli build <store-dir> <stream> <day> [frames]\n"
               "  storecli ls <store-dir>\n"
               "  storecli inspect <segment-file>\n"
               "  storecli verify <store-dir>\n"
               "  storecli compact <store-dir>\n"
               "  storecli repair <store-dir>\n"
               "  storecli sketch ls <store-dir>\n"
               "  storecli sketch verify <store-dir>\n"
               "  storecli sketch rebuild <store-dir> [namespace-hex]\n"
               "  storecli sketch drop <store-dir> <namespace-hex>\n"
               "streams: taipei night-street rialto grand-canal amsterdam "
               "archie\ndays: train held_out test\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int RunBuild(const std::string& dir, const std::string& stream,
             const std::string& day, int64_t frames_override) {
  auto config = StreamConfigByName(stream);
  if (!config.ok()) return Fail(config.status());

  uint64_t seed = 0;
  int64_t frames = 0;
  if (day == "train") {
    seed = kTrainDaySeed;
    frames = kDefaultTrainFrames;
  } else if (day == "held_out") {
    seed = kThresholdDaySeed;
    frames = kDefaultHeldOutFrames;
  } else if (day == "test") {
    seed = kTestDaySeed;
    frames = kDefaultTestFrames;
  } else {
    return Usage();
  }
  if (frames_override > 0) frames = frames_override;

  auto video = SyntheticVideo::Create(config.value(), seed, frames);
  if (!video.ok()) return Fail(video.status());
  auto store = DetectionStore::Open(dir);
  if (!store.ok()) return Fail(store.status());

  SimulatedDetector inner;
  PersistentCachedDetector detector(&inner, store.value().get());
  for (int64_t t = 0; t < frames; ++t) {
    (void)detector.Detect(*video.value(), t);
  }
  Status flush = store.value()->Flush();
  if (!flush.ok()) return Fail(flush);
  std::printf(
      "built %s/%s: %lld frames into namespace %016llx (%lld computed, "
      "%lld already stored)\n",
      stream.c_str(), day.c_str(), static_cast<long long>(frames),
      static_cast<unsigned long long>(
          detector.StreamNamespace(*video.value())),
      static_cast<long long>(detector.store_misses()),
      static_cast<long long>(detector.store_hits()));
  return 0;
}

int RunLs(const std::string& dir) {
  auto store = DetectionStore::Open(dir);
  if (!store.ok()) return Fail(store.status());
  std::printf("%-18s %s\n", "namespace", "records");
  int64_t total = 0;
  for (uint64_t ns : store.value()->Namespaces()) {
    const int64_t records = store.value()->RecordCount(ns);
    std::printf("%016llx   %lld\n", static_cast<unsigned long long>(ns),
                static_cast<long long>(records));
    total += records;
  }
  std::printf("%lld records in %zu namespaces\n",
              static_cast<long long>(total),
              store.value()->Namespaces().size());
  return 0;
}

int RunStats(const std::string& dir, bool json) {
  auto store = DetectionStore::Open(dir);
  if (!store.ok()) return Fail(store.status());
  const auto namespaces = store.value()->PerNamespaceStats();
  auto sketches = store.value()->ListSketches();
  if (!sketches.ok()) return Fail(sketches.status());

  if (json) {
    std::string out = "{\"dir\":\"" + dir + "\",\"namespaces\":[";
    bool first = true;
    for (const auto& ns : namespaces) {
      if (!first) out += ",";
      first = false;
      char buf[256];
      std::snprintf(
          buf, sizeof(buf),
          "{\"ns\":\"%016llx\",\"segments\":%lld,\"records\":%lld,"
          "\"pending\":%lld,\"shadowed\":%lld,\"repair_generation\":%llu}",
          static_cast<unsigned long long>(ns.ns),
          static_cast<long long>(ns.segments),
          static_cast<long long>(ns.records),
          static_cast<long long>(ns.pending),
          static_cast<long long>(ns.shadowed),
          static_cast<unsigned long long>(ns.repair_generation));
      out += buf;
    }
    out += "],\"sketches\":[";
    first = true;
    for (const auto& info : sketches.value()) {
      if (!first) out += ",";
      first = false;
      char buf[256];
      std::snprintf(
          buf, sizeof(buf),
          "{\"base_ns\":\"%016llx\",\"blocks\":%lld,"
          "\"base_records_at_build\":%lld,\"base_records_now\":%lld,"
          "\"current\":%s}",
          static_cast<unsigned long long>(info.base_ns),
          static_cast<long long>(info.blocks),
          static_cast<long long>(info.base_records_at_build),
          static_cast<long long>(info.base_records_now),
          info.current ? "true" : "false");
      out += buf;
    }
    out += "]}";
    std::printf("%s\n", out.c_str());
    return 0;
  }

  std::printf("%-18s %8s %10s %8s %9s %6s\n", "namespace", "segments",
              "records", "pending", "shadowed", "repgen");
  int64_t records = 0, segments = 0, shadowed = 0;
  for (const auto& ns : namespaces) {
    std::printf("%016llx   %8lld %10lld %8lld %9lld %6llu\n",
                static_cast<unsigned long long>(ns.ns),
                static_cast<long long>(ns.segments),
                static_cast<long long>(ns.records),
                static_cast<long long>(ns.pending),
                static_cast<long long>(ns.shadowed),
                static_cast<unsigned long long>(ns.repair_generation));
    records += ns.records;
    segments += ns.segments;
    shadowed += ns.shadowed;
  }
  std::printf("%lld records in %zu namespaces (%lld segments, %lld "
              "shadowed duplicates)\n",
              static_cast<long long>(records), namespaces.size(),
              static_cast<long long>(segments),
              static_cast<long long>(shadowed));
  int64_t current = 0;
  for (const auto& info : sketches.value()) {
    if (info.current) ++current;
  }
  std::printf("sketches: %zu namespaces indexed, %lld current, %lld stale\n",
              sketches.value().size(), static_cast<long long>(current),
              static_cast<long long>(
                  static_cast<int64_t>(sketches.value().size()) - current));
  return 0;
}

int WriteFileOrFail(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return 0;
}

struct QueryArgs {
  std::string dir;
  std::string stream;
  std::string frameql;
  bool json = false;
  std::string trace_path;
  std::string metrics_path;
  int64_t train = kDefaultTrainFrames;
  int64_t held = kDefaultHeldOutFrames;
  int64_t test = kDefaultTestFrames;
  bool small_nn = false;
};

int RunQuery(const QueryArgs& args) {
  auto config = StreamConfigByName(args.stream);
  if (!config.ok()) return Fail(config.status());

  VideoCatalog catalog;
  Status enabled = catalog.EnableDetectionStore(args.dir);
  if (!enabled.ok()) return Fail(enabled);
  DayLengths lengths;
  lengths.train = args.train;
  lengths.held_out = args.held;
  lengths.test = args.test;
  Status added = catalog.AddStream(config.value(), lengths);
  if (!added.ok()) return Fail(added);

  EngineOptions options;
  options.collect_reports = true;
  options.use_store_index = true;
  if (args.small_nn) {
    // Mirror the test suites' SmallNN so their warm store replays.
    SpecializedNNConfig nn;
    nn.raster_width = 16;
    nn.raster_height = 16;
    nn.hidden_dims = {32};
    options.aggregate.nn = nn;
    options.scrub.nn = nn;
    options.selection.nn = nn;
  }
  BlazeItEngine engine(&catalog, options);
  auto out = engine.Execute(args.frameql);
  if (!out.ok()) return Fail(out.status());
  Status flushed = catalog.FlushDetectionStore();
  if (!flushed.ok()) return Fail(flushed);

  const obs::ExecutionReport* report = out.value().report.get();
  if (report == nullptr) {
    std::fprintf(stderr, "error: engine produced no execution report\n");
    return 1;
  }
  if (args.json) {
    std::printf("%s\n", report->ToJson().c_str());
  } else {
    std::printf("%s", report->ToText().c_str());
  }
  if (!args.trace_path.empty()) {
    if (report->trace == nullptr) {
      std::fprintf(stderr, "error: report carries no trace\n");
      return 1;
    }
    const int rc =
        WriteFileOrFail(args.trace_path, report->trace->ToChromeJson());
    if (rc != 0) return rc;
  }
  if (!args.metrics_path.empty()) {
    const int rc = WriteFileOrFail(
        args.metrics_path, obs::MetricsRegistry::Global().Snapshot().ToJson());
    if (rc != 0) return rc;
  }
  return 0;
}

int RunInspect(const std::string& path) {
  auto reader = StoreReader::Open(path);
  if (!reader.ok()) return Fail(reader.status());
  int64_t min_frame = 0, max_frame = 0;
  bool first = true;
  size_t payload_bytes = 0;
  for (const auto& [frame, offset] : reader.value()->index()) {
    auto payload = reader.value()->ReadPayloadAt(offset);
    if (!payload.ok()) return Fail(payload.status());
    payload_bytes += payload.value().size();
    if (first || frame < min_frame) min_frame = frame;
    if (first || frame > max_frame) max_frame = frame;
    first = false;
  }
  std::printf("segment:    %s\n", path.c_str());
  std::printf("format:     v%u (magic OK, all record CRCs OK)\n",
              kStoreFormatVersion);
  std::printf("namespace:  %016llx\n",
              static_cast<unsigned long long>(
                  reader.value()->record_namespace()));
  std::printf("records:    %zu\n", reader.value()->index().size());
  if (!first) {
    std::printf("frames:     [%lld, %lld]\n",
                static_cast<long long>(min_frame),
                static_cast<long long>(max_frame));
  }
  std::printf("payload:    %zu bytes\n", payload_bytes);
  return 0;
}

int RunVerify(const std::string& dir) {
  // Open() CRC-scans every record of every segment and rejects anything
  // stale, truncated, or corrupt.
  auto store = DetectionStore::Open(dir);
  if (!store.ok()) return Fail(store.status());
  std::printf("OK: %lld records in %zu namespaces verified\n",
              static_cast<long long>(store.value()->TotalRecords()),
              store.value()->Namespaces().size());
  return 0;
}

int RunCompact(const std::string& dir) {
  auto store = DetectionStore::Open(dir);
  if (!store.ok()) return Fail(store.status());
  const int64_t shadowed_before = store.value()->ShadowedRecords();
  auto stats = store.value()->Compact();
  if (!stats.ok()) return Fail(stats.status());
  std::printf(
      "compacted %lld of %zu namespaces: segments %lld -> %lld, "
      "%lld records kept, %lld shadowed duplicates dropped (%lld before)\n",
      static_cast<long long>(stats.value().namespaces_compacted),
      store.value()->Namespaces().size(),
      static_cast<long long>(stats.value().segments_before),
      static_cast<long long>(stats.value().segments_after),
      static_cast<long long>(stats.value().records_kept),
      static_cast<long long>(stats.value().duplicates_dropped),
      static_cast<long long>(shadowed_before));
  return 0;
}

int RunRepair(const std::string& dir) {
  auto store = DetectionStore::Open(dir);
  if (!store.ok()) return Fail(store.status());
  auto stats = store.value()->Repair();
  if (!stats.ok()) return Fail(stats.status());
  std::printf(
      "repaired %s: %lld records scanned in %lld namespaces, "
      "%lld malformed records dropped, %lld namespaces rewritten\n",
      dir.c_str(), static_cast<long long>(stats.value().records_scanned),
      static_cast<long long>(stats.value().namespaces_scanned),
      static_cast<long long>(stats.value().malformed_dropped),
      static_cast<long long>(stats.value().namespaces_rewritten));
  if (stats.value().malformed_dropped > 0) {
    std::printf(
        "dropped records are recomputed and re-stored by the next engine "
        "run that needs them\n");
  }
  return 0;
}

int RunSketchLs(const std::string& dir) {
  auto store = DetectionStore::Open(dir);
  if (!store.ok()) return Fail(store.status());
  auto infos = store.value()->ListSketches();
  if (!infos.ok()) return Fail(infos.status());
  std::printf("%-18s %-18s %8s %10s %10s %s\n", "base", "sketch", "blocks",
              "built-at", "now", "state");
  for (const auto& info : infos.value()) {
    std::printf("%016llx   %016llx   %8lld %10lld %10lld %s\n",
                static_cast<unsigned long long>(info.base_ns),
                static_cast<unsigned long long>(info.sketch_ns),
                static_cast<long long>(info.blocks),
                static_cast<long long>(info.base_records_at_build),
                static_cast<long long>(info.base_records_now),
                info.current ? "current" : "STALE");
  }
  std::printf("%zu sketched namespaces\n", infos.value().size());
  return 0;
}

int RunSketchVerify(const std::string& dir) {
  auto store = DetectionStore::Open(dir);
  if (!store.ok()) return Fail(store.status());
  auto infos = store.value()->ListSketches();
  if (!infos.ok()) return Fail(infos.status());
  int failures = 0;
  for (const auto& info : infos.value()) {
    // Load the index exactly the way the engine's executors do; a stale or
    // malformed index loads as invalid and the engine falls back to the
    // unindexed path, so "invalid" here means "sketches are dead weight",
    // not "queries return wrong answers".
    SketchIndex index = SketchIndex::Load(store.value().get(), info.base_ns);
    if (index.valid()) {
      std::printf("%016llx: OK (%zu blocks)\n",
                  static_cast<unsigned long long>(info.base_ns),
                  index.blocks().size());
    } else {
      std::printf("%016llx: INVALID (stale or malformed; run "
                  "`storecli sketch rebuild`)\n",
                  static_cast<unsigned long long>(info.base_ns));
      ++failures;
    }
  }
  if (infos.value().empty()) std::printf("no sketched namespaces\n");
  return failures == 0 ? 0 : 1;
}

int RunSketchRebuild(const std::string& dir, const std::string& ns_hex) {
  auto store = DetectionStore::Open(dir);
  if (!store.ok()) return Fail(store.status());
  if (!ns_hex.empty()) {
    const uint64_t ns = std::strtoull(ns_hex.c_str(), nullptr, 16);
    Status built = store.value()->BuildSketches(ns);
    if (!built.ok()) return Fail(built);
    std::printf("rebuilt sketches for %016llx\n",
                static_cast<unsigned long long>(ns));
    return 0;
  }
  // No namespace given: sketch every detections namespace. Non-detections
  // namespaces (artifact blobs, the sketches themselves) refuse with
  // InvalidArgument, which is the expected skip, not an error.
  int64_t built_count = 0, skipped = 0;
  for (uint64_t ns : store.value()->Namespaces()) {
    Status built = store.value()->BuildSketches(ns);
    if (built.ok()) {
      std::printf("rebuilt sketches for %016llx\n",
                  static_cast<unsigned long long>(ns));
      ++built_count;
    } else if (built.code() == StatusCode::kInvalidArgument) {
      ++skipped;
    } else {
      return Fail(built);
    }
  }
  std::printf("%lld namespaces sketched, %lld non-detections skipped\n",
              static_cast<long long>(built_count),
              static_cast<long long>(skipped));
  return 0;
}

int RunSketchDrop(const std::string& dir, const std::string& ns_hex) {
  auto store = DetectionStore::Open(dir);
  if (!store.ok()) return Fail(store.status());
  const uint64_t ns = std::strtoull(ns_hex.c_str(), nullptr, 16);
  Status dropped = store.value()->DropSketches(ns);
  if (!dropped.ok()) return Fail(dropped);
  std::printf("dropped sketches for %016llx\n",
              static_cast<unsigned long long>(ns));
  return 0;
}

int Main(int argc, char** argv) {
  Logger::set_level(LogLevel::kWarning);
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  if (command == "build") {
    if (argc < 5) return Usage();
    int64_t frames = argc > 5 ? std::atoll(argv[5]) : 0;
    return RunBuild(argv[2], argv[3], argv[4], frames);
  }
  if (command == "ls") return RunLs(argv[2]);
  if (command == "stats") {
    const bool json = argc > 3 && std::strcmp(argv[3], "--json") == 0;
    return RunStats(argv[2], json);
  }
  if (command == "query") {
    if (argc < 5) return Usage();
    QueryArgs args;
    args.dir = argv[2];
    args.stream = argv[3];
    args.frameql = argv[4];
    for (int i = 5; i < argc; ++i) {
      const std::string flag = argv[i];
      if (flag == "--json") {
        args.json = true;
      } else if (flag == "--small-nn") {
        args.small_nn = true;
      } else if (flag == "--trace" && i + 1 < argc) {
        args.trace_path = argv[++i];
      } else if (flag == "--metrics" && i + 1 < argc) {
        args.metrics_path = argv[++i];
      } else if (flag == "--train" && i + 1 < argc) {
        args.train = std::atoll(argv[++i]);
      } else if (flag == "--held" && i + 1 < argc) {
        args.held = std::atoll(argv[++i]);
      } else if (flag == "--test" && i + 1 < argc) {
        args.test = std::atoll(argv[++i]);
      } else {
        return Usage();
      }
    }
    return RunQuery(args);
  }
  if (command == "inspect") return RunInspect(argv[2]);
  if (command == "verify") return RunVerify(argv[2]);
  if (command == "compact") return RunCompact(argv[2]);
  if (command == "repair") return RunRepair(argv[2]);
  if (command == "sketch") {
    if (argc < 4) return Usage();
    const std::string sub = argv[2];
    if (sub == "ls") return RunSketchLs(argv[3]);
    if (sub == "verify") return RunSketchVerify(argv[3]);
    if (sub == "rebuild") {
      return RunSketchRebuild(argv[3], argc > 4 ? argv[4] : "");
    }
    if (sub == "drop" && argc > 4) return RunSketchDrop(argv[3], argv[4]);
    return Usage();
  }
  return Usage();
}

}  // namespace
}  // namespace blazeit

int main(int argc, char** argv) { return blazeit::Main(argc, argv); }
