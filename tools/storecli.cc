// storecli: build, inspect, and verify persistent detection-store
// directories and segment files (src/storage/).
//
//   storecli build <store-dir> <stream> <day> [frames]
//       Precomputes detections of one generated day of a named stream
//       (train|held_out|test) into the store, so later engine/test/bench
//       runs start warm. `frames` overrides the default day length.
//   storecli ls <store-dir>
//       Lists every record namespace with its record count.
//   storecli stats <store-dir> [--json]
//       Per-namespace inventory (segments, records, pending, shadowed
//       duplicates, repair generation) plus sketch coverage and staleness;
//       --json emits one machine-readable object.
//   storecli inspect <segment-file>
//       Prints the segment header and per-record summary stats.
//   storecli verify <store-dir>
//       Full open: validates magic, version, and every record CRC of every
//       segment; exits non-zero with the failing segment's error.
//   storecli compact <store-dir>
//       Rewrites every namespace with multiple segments or first-write-
//       wins-shadowed duplicate records into one fresh segment per
//       namespace, dropping the shadowed duplicates; record resolution is
//       unchanged (the surviving payload per frame is the one reads
//       already returned).
//   storecli repair <store-dir>
//       Reads every record and drops those whose payload no engine codec
//       decodes (CRC-valid but semantically malformed), rewriting the
//       affected namespaces in place. A dropped record becomes a plain
//       miss, so the next engine run recomputes and re-stores it once
//       instead of warning on every run.
//   storecli sketch ls <store-dir>
//       Lists every sketched namespace with block count and staleness.
//   storecli sketch verify <store-dir>
//       Loads every sketch index the way the engine would and exits
//       non-zero if any is stale or unloadable.
//   storecli sketch rebuild <store-dir> [namespace-hex]
//       (Re)builds segment sketches for one detections namespace, or for
//       every detections namespace in the store when omitted.
//   storecli sketch drop <store-dir> <namespace-hex>
//       Removes a namespace's sketches; it stops being indexed.
//   storecli query <store-dir> <stream> <frameql> [options]
//       Executes one FrameQL query against the store with reporting on
//       and prints its ExecutionReport (EXPLAIN-style plan + stage trace
//       + simulated-cost breakdown + cache/sketch hit rates). Options:
//       --json (report as JSON), --trace FILE (write the Chrome
//       trace_event JSON; load in chrome://tracing), --metrics FILE
//       (write the process metrics snapshot JSON), --train/--held/--test N
//       (day lengths; defaults are the paper-scale days), --small-nn
//       (the test suites' small specialized NN, so a store the test lane
//       warmed is reused), --repeat N (run the query N times against the
//       same engine; the report printed is the last run's, prefixed by a
//       per-run summary line), --concurrency N (run the repeats from N
//       client threads concurrently; outputs stay bit-identical to
//       serial because engine execution is determinism-contracted).
//   storecli serve <store-dir> <workload-file> [options]
//       Replays a query workload against the multi-tenant serving core
//       (serve::AdmissionQueue): each workload line is `client frameql`
//       (blank lines and # comments skipped), submitted in file order,
//       then the queue is drained. Prints one JSON object with per-query
//       reports (sorted by ticket), rejected submissions, and the
//       server's cumulative stats. Options: --stream S (register stream
//       S; repeatable, default taipei), --window T / --max-queue N /
//       --quota N / --shed-depth N (ServeOptions knobs), --tick-every K
//       (advance the virtual clock after every K submissions, closing
//       admission windows mid-replay; 0 = drain-only), --repeat N
//       (replay the workload N times), --prom FILE (write the final
//       metrics registry snapshot in Prometheus text format),
//       --small-nn / --train / --held / --test as for `query`.
//       Debug server: --listen PORT starts the HTTP observability front
//       end on 127.0.0.1:PORT (0 = ephemeral pick; the bound port goes to
//       stderr and to --port-file FILE when given) serving /metrics,
//       /healthz, /statusz, /tracez, /varz; --linger-ms N keeps the
//       process (and the endpoints) alive N ms after the replay JSON
//       prints, so scrapers can read post-run state; --wall-clock-ms N
//       drives the admission clock from a real timer (one tick every N
//       ms) instead of --tick-every's virtual schedule.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/catalog.h"
#include "core/engine.h"
#include "detect/simulated_detector.h"
#include "obs/debug_server.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/report.h"
#include "serve/admission_queue.h"
#include "storage/detection_store.h"
#include "storage/persistent_cached_detector.h"
#include "storage/record_format.h"
#include "storage/segment_sketch.h"
#include "util/logging.h"
#include "video/datasets.h"

namespace blazeit {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  storecli build <store-dir> <stream> <day> [frames]\n"
               "  storecli ls <store-dir>\n"
               "  storecli inspect <segment-file>\n"
               "  storecli verify <store-dir>\n"
               "  storecli compact <store-dir>\n"
               "  storecli repair <store-dir>\n"
               "  storecli sketch ls <store-dir>\n"
               "  storecli sketch verify <store-dir>\n"
               "  storecli sketch rebuild <store-dir> [namespace-hex]\n"
               "  storecli sketch drop <store-dir> <namespace-hex>\n"
               "  storecli query <store-dir> <stream> <frameql> [--json]\n"
               "      [--trace FILE] [--metrics FILE] [--small-nn]\n"
               "      [--train N] [--held N] [--test N]\n"
               "      [--repeat N] [--concurrency N]\n"
               "  storecli serve <store-dir> <workload-file> [--stream S]...\n"
               "      [--window T] [--max-queue N] [--quota N]\n"
               "      [--shed-depth N] [--tick-every K] [--repeat N]\n"
               "      [--prom FILE] [--small-nn] [--train N] [--held N]\n"
               "      [--test N] [--listen PORT] [--port-file FILE]\n"
               "      [--linger-ms N] [--wall-clock-ms N]\n"
               "streams: taipei night-street rialto grand-canal amsterdam "
               "archie\ndays: train held_out test\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int RunBuild(const std::string& dir, const std::string& stream,
             const std::string& day, int64_t frames_override) {
  auto config = StreamConfigByName(stream);
  if (!config.ok()) return Fail(config.status());

  uint64_t seed = 0;
  int64_t frames = 0;
  if (day == "train") {
    seed = kTrainDaySeed;
    frames = kDefaultTrainFrames;
  } else if (day == "held_out") {
    seed = kThresholdDaySeed;
    frames = kDefaultHeldOutFrames;
  } else if (day == "test") {
    seed = kTestDaySeed;
    frames = kDefaultTestFrames;
  } else {
    return Usage();
  }
  if (frames_override > 0) frames = frames_override;

  auto video = SyntheticVideo::Create(config.value(), seed, frames);
  if (!video.ok()) return Fail(video.status());
  auto store = DetectionStore::Open(dir);
  if (!store.ok()) return Fail(store.status());

  SimulatedDetector inner;
  PersistentCachedDetector detector(&inner, store.value().get());
  for (int64_t t = 0; t < frames; ++t) {
    (void)detector.Detect(*video.value(), t);
  }
  Status flush = store.value()->Flush();
  if (!flush.ok()) return Fail(flush);
  std::printf(
      "built %s/%s: %lld frames into namespace %016llx (%lld computed, "
      "%lld already stored)\n",
      stream.c_str(), day.c_str(), static_cast<long long>(frames),
      static_cast<unsigned long long>(
          detector.StreamNamespace(*video.value())),
      static_cast<long long>(detector.store_misses()),
      static_cast<long long>(detector.store_hits()));
  return 0;
}

int RunLs(const std::string& dir) {
  auto store = DetectionStore::Open(dir);
  if (!store.ok()) return Fail(store.status());
  std::printf("%-18s %s\n", "namespace", "records");
  int64_t total = 0;
  for (uint64_t ns : store.value()->Namespaces()) {
    const int64_t records = store.value()->RecordCount(ns);
    std::printf("%016llx   %lld\n", static_cast<unsigned long long>(ns),
                static_cast<long long>(records));
    total += records;
  }
  std::printf("%lld records in %zu namespaces\n",
              static_cast<long long>(total),
              store.value()->Namespaces().size());
  return 0;
}

int RunStats(const std::string& dir, bool json) {
  auto store = DetectionStore::Open(dir);
  if (!store.ok()) return Fail(store.status());
  const auto namespaces = store.value()->PerNamespaceStats();
  auto sketches = store.value()->ListSketches();
  if (!sketches.ok()) return Fail(sketches.status());

  if (json) {
    std::string out = "{\"dir\":\"" + dir + "\",\"namespaces\":[";
    bool first = true;
    for (const auto& ns : namespaces) {
      if (!first) out += ",";
      first = false;
      char buf[256];
      std::snprintf(
          buf, sizeof(buf),
          "{\"ns\":\"%016llx\",\"segments\":%lld,\"records\":%lld,"
          "\"pending\":%lld,\"shadowed\":%lld,\"repair_generation\":%llu}",
          static_cast<unsigned long long>(ns.ns),
          static_cast<long long>(ns.segments),
          static_cast<long long>(ns.records),
          static_cast<long long>(ns.pending),
          static_cast<long long>(ns.shadowed),
          static_cast<unsigned long long>(ns.repair_generation));
      out += buf;
    }
    out += "],\"sketches\":[";
    first = true;
    for (const auto& info : sketches.value()) {
      if (!first) out += ",";
      first = false;
      char buf[256];
      std::snprintf(
          buf, sizeof(buf),
          "{\"base_ns\":\"%016llx\",\"blocks\":%lld,"
          "\"base_records_at_build\":%lld,\"base_records_now\":%lld,"
          "\"current\":%s}",
          static_cast<unsigned long long>(info.base_ns),
          static_cast<long long>(info.blocks),
          static_cast<long long>(info.base_records_at_build),
          static_cast<long long>(info.base_records_now),
          info.current ? "true" : "false");
      out += buf;
    }
    out += "]}";
    std::printf("%s\n", out.c_str());
    return 0;
  }

  std::printf("%-18s %8s %10s %8s %9s %6s\n", "namespace", "segments",
              "records", "pending", "shadowed", "repgen");
  int64_t records = 0, segments = 0, shadowed = 0;
  for (const auto& ns : namespaces) {
    std::printf("%016llx   %8lld %10lld %8lld %9lld %6llu\n",
                static_cast<unsigned long long>(ns.ns),
                static_cast<long long>(ns.segments),
                static_cast<long long>(ns.records),
                static_cast<long long>(ns.pending),
                static_cast<long long>(ns.shadowed),
                static_cast<unsigned long long>(ns.repair_generation));
    records += ns.records;
    segments += ns.segments;
    shadowed += ns.shadowed;
  }
  std::printf("%lld records in %zu namespaces (%lld segments, %lld "
              "shadowed duplicates)\n",
              static_cast<long long>(records), namespaces.size(),
              static_cast<long long>(segments),
              static_cast<long long>(shadowed));
  int64_t current = 0;
  for (const auto& info : sketches.value()) {
    if (info.current) ++current;
  }
  std::printf("sketches: %zu namespaces indexed, %lld current, %lld stale\n",
              sketches.value().size(), static_cast<long long>(current),
              static_cast<long long>(
                  static_cast<int64_t>(sketches.value().size()) - current));
  return 0;
}

int WriteFileOrFail(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return 0;
}

struct QueryArgs {
  std::string dir;
  std::string stream;
  std::string frameql;
  bool json = false;
  std::string trace_path;
  std::string metrics_path;
  int64_t train = kDefaultTrainFrames;
  int64_t held = kDefaultHeldOutFrames;
  int64_t test = kDefaultTestFrames;
  bool small_nn = false;
  int64_t repeat = 1;
  int64_t concurrency = 1;
};

EngineOptions ToolEngineOptions(bool small_nn) {
  EngineOptions options;
  options.collect_reports = true;
  options.use_store_index = true;
  if (small_nn) {
    // Mirror the test suites' SmallNN so their warm store replays.
    SpecializedNNConfig nn;
    nn.raster_width = 16;
    nn.raster_height = 16;
    nn.hidden_dims = {32};
    options.aggregate.nn = nn;
    options.scrub.nn = nn;
    options.selection.nn = nn;
  }
  return options;
}

int RunQuery(const QueryArgs& args) {
  auto config = StreamConfigByName(args.stream);
  if (!config.ok()) return Fail(config.status());

  VideoCatalog catalog;
  Status enabled = catalog.EnableDetectionStore(args.dir);
  if (!enabled.ok()) return Fail(enabled);
  DayLengths lengths;
  lengths.train = args.train;
  lengths.held_out = args.held;
  lengths.test = args.test;
  Status added = catalog.AddStream(config.value(), lengths);
  if (!added.ok()) return Fail(added);

  BlazeItEngine engine(&catalog, ToolEngineOptions(args.small_nn));
  const int64_t repeat = std::max<int64_t>(1, args.repeat);
  const int64_t concurrency =
      std::min(std::max<int64_t>(1, args.concurrency), repeat);
  Result<QueryOutput> out = Status::Internal("no run executed");
  if (concurrency <= 1) {
    for (int64_t r = 0; r < repeat; ++r) {
      out = engine.Execute(args.frameql);
      if (!out.ok()) return Fail(out.status());
    }
  } else {
    // Repeats are spread over client threads; execution stays
    // determinism-contracted, so the kept (last-indexed) output is
    // bit-identical to a serial run of the same query.
    std::vector<Result<QueryOutput>> runs(
        static_cast<size_t>(repeat), Result<QueryOutput>(Status::Internal("")));
    std::atomic<int64_t> next{0};
    std::vector<std::thread> threads;
    for (int64_t c = 0; c < concurrency; ++c) {
      threads.emplace_back([&] {
        for (int64_t r = next.fetch_add(1); r < repeat;
             r = next.fetch_add(1)) {
          runs[static_cast<size_t>(r)] = engine.Execute(args.frameql);
        }
      });
    }
    for (auto& t : threads) t.join();
    for (const auto& run : runs) {
      if (!run.ok()) return Fail(run.status());
    }
    out = std::move(runs.back());
  }
  if (repeat > 1) {
    std::printf("%lld runs x %lld threads completed\n",
                static_cast<long long>(repeat),
                static_cast<long long>(concurrency));
  }
  Status flushed = catalog.FlushDetectionStore();
  if (!flushed.ok()) return Fail(flushed);

  const obs::ExecutionReport* report = out.value().report.get();
  if (report == nullptr) {
    std::fprintf(stderr, "error: engine produced no execution report\n");
    return 1;
  }
  if (args.json) {
    std::printf("%s\n", report->ToJson().c_str());
  } else {
    std::printf("%s", report->ToText().c_str());
  }
  if (!args.trace_path.empty()) {
    if (report->trace == nullptr) {
      std::fprintf(stderr, "error: report carries no trace\n");
      return 1;
    }
    const int rc =
        WriteFileOrFail(args.trace_path, report->trace->ToChromeJson());
    if (rc != 0) return rc;
  }
  if (!args.metrics_path.empty()) {
    const int rc = WriteFileOrFail(
        args.metrics_path, obs::MetricsRegistry::Global().Snapshot().ToJson());
    if (rc != 0) return rc;
  }
  return 0;
}

struct ServeArgs {
  std::string dir;
  std::string workload;
  std::vector<std::string> streams;
  int64_t window = 1;
  int64_t max_queue = 256;
  int64_t quota = 32;
  int64_t shed_depth = -1;
  int64_t tick_every = 0;
  int64_t repeat = 1;
  std::string prom_path;
  bool small_nn = false;
  int64_t train = kDefaultTrainFrames;
  int64_t held = kDefaultHeldOutFrames;
  int64_t test = kDefaultTestFrames;
  /// Debug server: < 0 = off; 0 = ephemeral port; > 0 = fixed port.
  int64_t listen_port = -1;
  /// File the bound port is written to (scrapers poll this).
  std::string port_file;
  /// Keep the process alive this long after printing the replay JSON.
  int64_t linger_ms = 0;
  /// ServeOptions::wall_clock_tick_ms (real-time window driver).
  int64_t wall_clock_ms = 0;
};

std::string CliJsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

int RunServe(const ServeArgs& args) {
  // One workload line is `client frameql`; the first whitespace run splits
  // them, so queries keep their internal spaces.
  struct WorkItem {
    std::string client;
    std::string frameql;
  };
  std::vector<WorkItem> workload;
  {
    std::ifstream in(args.workload);
    if (!in) {
      std::fprintf(stderr, "error: cannot read workload %s\n",
                   args.workload.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      const size_t first = line.find_first_not_of(" \t");
      if (first == std::string::npos || line[first] == '#') continue;
      const size_t space = line.find_first_of(" \t", first);
      if (space == std::string::npos) {
        std::fprintf(stderr, "error: workload line has no query: %s\n",
                     line.c_str());
        return 1;
      }
      const size_t query = line.find_first_not_of(" \t", space);
      if (query == std::string::npos) {
        std::fprintf(stderr, "error: workload line has no query: %s\n",
                     line.c_str());
        return 1;
      }
      workload.push_back(
          {line.substr(first, space - first), line.substr(query)});
    }
  }

  VideoCatalog catalog;
  Status enabled = catalog.EnableDetectionStore(args.dir);
  if (!enabled.ok()) return Fail(enabled);
  DayLengths lengths;
  lengths.train = args.train;
  lengths.held_out = args.held;
  lengths.test = args.test;
  std::vector<std::string> streams = args.streams;
  if (streams.empty()) streams.push_back("taipei");
  for (const std::string& stream : streams) {
    auto config = StreamConfigByName(stream);
    if (!config.ok()) return Fail(config.status());
    Status added = catalog.AddStream(config.value(), lengths);
    if (!added.ok()) return Fail(added);
  }

  EngineOptions eopts = ToolEngineOptions(args.small_nn);
  eopts.export_statusz = args.listen_port >= 0;
  BlazeItEngine engine(&catalog, eopts);
  serve::ServeOptions sopts;
  sopts.window_ticks = args.window;
  sopts.max_queue_depth = args.max_queue;
  sopts.per_client_quota = args.quota;
  sopts.shed_depth = args.shed_depth;
  sopts.wall_clock_tick_ms = args.wall_clock_ms;
  serve::AdmissionQueue queue(&engine, sopts);

  // Debug server + store health check. Declared after the catalog/queue
  // so teardown removes the health callback and stops the server before
  // the state they read dies.
  struct HealthTokenGuard {
    int64_t token = 0;
    ~HealthTokenGuard() {
      if (token != 0) obs::StatusRegistry::Global().Remove(token);
    }
  };
  std::unique_ptr<obs::DebugServer> debug;
  HealthTokenGuard health;
  if (args.listen_port >= 0) {
    obs::DebugServer::Options dopts;
    dopts.http.port = static_cast<int>(args.listen_port);
    debug = std::make_unique<obs::DebugServer>(dopts);
    health.token = obs::StatusRegistry::Global().AddHealthCheck(
        "store", [&catalog]() -> Result<std::string> {
          DetectionStore* store = catalog.detection_store();
          if (store == nullptr) {
            return Status::FailedPrecondition("no detection store enabled");
          }
          std::string detail =
              std::to_string(store->TotalRecords()) + " records, " +
              std::to_string(store->pending_records()) + " pending";
          auto sketches = store->ListSketches();
          if (!sketches.ok()) return sketches.status();
          int64_t stale = 0;
          for (const auto& info : sketches.value()) {
            if (!info.current) ++stale;
          }
          // Stale sketches degrade pruning, not correctness — report the
          // staleness in the detail but stay healthy.
          if (stale > 0) {
            detail += ", " + std::to_string(stale) +
                      " stale sketch namespace(s)";
          }
          return detail;
        });
    Status started = debug->Start();
    if (!started.ok()) return Fail(started);
    std::fprintf(stderr, "debug server listening on 127.0.0.1:%d\n",
                 debug->port());
    if (!args.port_file.empty()) {
      const int rc =
          WriteFileOrFail(args.port_file, std::to_string(debug->port()) + "\n");
      if (rc != 0) return rc;
    }
  }

  struct Rejection {
    std::string client;
    std::string frameql;
    std::string error;
  };
  std::vector<Rejection> rejected;
  const int64_t repeat = std::max<int64_t>(1, args.repeat);
  int64_t since_tick = 0;
  for (int64_t rep = 0; rep < repeat; ++rep) {
    for (const WorkItem& item : workload) {
      auto ticket = queue.Submit(item.client, item.frameql);
      if (!ticket.ok()) {
        rejected.push_back(
            {item.client, item.frameql, ticket.status().ToString()});
      }
      if (args.tick_every > 0 && ++since_tick >= args.tick_every) {
        since_tick = 0;
        queue.Advance();
      }
    }
  }
  queue.Drain();
  Status flushed = catalog.FlushDetectionStore();
  if (!flushed.ok()) return Fail(flushed);

  std::vector<serve::ServeResponse> responses = queue.TakeCompleted();
  std::sort(responses.begin(), responses.end(),
            [](const serve::ServeResponse& a, const serve::ServeResponse& b) {
              return a.ticket < b.ticket;
            });

  std::string out = "{\"responses\":[";
  bool first = true;
  for (const serve::ServeResponse& r : responses) {
    if (!first) out += ",";
    first = false;
    out += "{\"ticket\":" + std::to_string(r.ticket);
    out += ",\"client\":\"" + CliJsonEscape(r.client) + "\"";
    out += ",\"frameql\":\"" + CliJsonEscape(r.frameql) + "\"";
    out += ",\"admitted_tick\":" + std::to_string(r.admitted_tick);
    out += ",\"executed_tick\":" + std::to_string(r.executed_tick);
    out += std::string(",\"degraded\":") + (r.degraded ? "true" : "false");
    out += std::string(",\"ok\":") + (r.output.ok() ? "true" : "false");
    if (r.output.ok()) {
      out += ",\"group\":" + std::to_string(r.stats.group);
      out +=
          ",\"shared_nn_frames\":" + std::to_string(r.stats.shared_nn_frames);
      out += ",\"shared_models\":" + std::to_string(r.stats.shared_models);
      if (r.output.value().report != nullptr) {
        out += ",\"report\":" + r.output.value().report->ToJson();
      }
    } else {
      out += ",\"error\":\"" + CliJsonEscape(r.output.status().ToString()) +
             "\"";
    }
    out += "}";
  }
  out += "],\"rejected\":[";
  first = true;
  for (const Rejection& r : rejected) {
    if (!first) out += ",";
    first = false;
    out += "{\"client\":\"" + CliJsonEscape(r.client) + "\"";
    out += ",\"frameql\":\"" + CliJsonEscape(r.frameql) + "\"";
    out += ",\"error\":\"" + CliJsonEscape(r.error) + "\"}";
  }
  const serve::ServerStats stats = queue.stats();
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "],\"stats\":{\"submitted\":%lld,\"rejected_queue_full\":%lld,"
      "\"rejected_quota\":%lld,\"shed\":%lld,\"batches\":%lld,"
      "\"groups\":%lld,\"coalesced_queries\":%lld,"
      "\"cross_client_groups\":%lld,\"shared_nn_frames\":%lld,"
      "\"shared_filter_frames\":%lld,\"shared_models\":%lld,"
      "\"standalone_seconds\":%.6f,\"batch_seconds\":%.6f}}",
      static_cast<long long>(stats.submitted),
      static_cast<long long>(stats.rejected_queue_full),
      static_cast<long long>(stats.rejected_quota),
      static_cast<long long>(stats.shed),
      static_cast<long long>(stats.batches),
      static_cast<long long>(stats.groups),
      static_cast<long long>(stats.coalesced_queries),
      static_cast<long long>(stats.cross_client_groups),
      static_cast<long long>(stats.shared_nn_frames),
      static_cast<long long>(stats.shared_filter_frames),
      static_cast<long long>(stats.shared_models),
      stats.standalone_seconds, stats.batch_seconds);
  out += buf;
  std::printf("%s\n", out.c_str());

  if (!args.prom_path.empty()) {
    const int rc = WriteFileOrFail(args.prom_path, obs::PrometheusText());
    if (rc != 0) return rc;
  }
  if (debug != nullptr && args.linger_ms > 0) {
    // The replay JSON is printed; hold the endpoints open so scrapers can
    // read post-run /metrics, /statusz, and /tracez.
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(args.linger_ms));
  }
  return 0;
}

int RunInspect(const std::string& path) {
  auto reader = StoreReader::Open(path);
  if (!reader.ok()) return Fail(reader.status());
  int64_t min_frame = 0, max_frame = 0;
  bool first = true;
  size_t payload_bytes = 0;
  for (const auto& [frame, offset] : reader.value()->index()) {
    auto payload = reader.value()->ReadPayloadAt(offset);
    if (!payload.ok()) return Fail(payload.status());
    payload_bytes += payload.value().size();
    if (first || frame < min_frame) min_frame = frame;
    if (first || frame > max_frame) max_frame = frame;
    first = false;
  }
  std::printf("segment:    %s\n", path.c_str());
  std::printf("format:     v%u (magic OK, all record CRCs OK)\n",
              kStoreFormatVersion);
  std::printf("namespace:  %016llx\n",
              static_cast<unsigned long long>(
                  reader.value()->record_namespace()));
  std::printf("records:    %zu\n", reader.value()->index().size());
  if (!first) {
    std::printf("frames:     [%lld, %lld]\n",
                static_cast<long long>(min_frame),
                static_cast<long long>(max_frame));
  }
  std::printf("payload:    %zu bytes\n", payload_bytes);
  return 0;
}

int RunVerify(const std::string& dir) {
  // Open() CRC-scans every record of every segment and rejects anything
  // stale, truncated, or corrupt.
  auto store = DetectionStore::Open(dir);
  if (!store.ok()) return Fail(store.status());
  std::printf("OK: %lld records in %zu namespaces verified\n",
              static_cast<long long>(store.value()->TotalRecords()),
              store.value()->Namespaces().size());
  return 0;
}

int RunCompact(const std::string& dir) {
  auto store = DetectionStore::Open(dir);
  if (!store.ok()) return Fail(store.status());
  const int64_t shadowed_before = store.value()->ShadowedRecords();
  auto stats = store.value()->Compact();
  if (!stats.ok()) return Fail(stats.status());
  std::printf(
      "compacted %lld of %zu namespaces: segments %lld -> %lld, "
      "%lld records kept, %lld shadowed duplicates dropped (%lld before)\n",
      static_cast<long long>(stats.value().namespaces_compacted),
      store.value()->Namespaces().size(),
      static_cast<long long>(stats.value().segments_before),
      static_cast<long long>(stats.value().segments_after),
      static_cast<long long>(stats.value().records_kept),
      static_cast<long long>(stats.value().duplicates_dropped),
      static_cast<long long>(shadowed_before));
  return 0;
}

int RunRepair(const std::string& dir) {
  auto store = DetectionStore::Open(dir);
  if (!store.ok()) return Fail(store.status());
  auto stats = store.value()->Repair();
  if (!stats.ok()) return Fail(stats.status());
  std::printf(
      "repaired %s: %lld records scanned in %lld namespaces, "
      "%lld malformed records dropped, %lld namespaces rewritten\n",
      dir.c_str(), static_cast<long long>(stats.value().records_scanned),
      static_cast<long long>(stats.value().namespaces_scanned),
      static_cast<long long>(stats.value().malformed_dropped),
      static_cast<long long>(stats.value().namespaces_rewritten));
  if (stats.value().malformed_dropped > 0) {
    std::printf(
        "dropped records are recomputed and re-stored by the next engine "
        "run that needs them\n");
  }
  return 0;
}

int RunSketchLs(const std::string& dir) {
  auto store = DetectionStore::Open(dir);
  if (!store.ok()) return Fail(store.status());
  auto infos = store.value()->ListSketches();
  if (!infos.ok()) return Fail(infos.status());
  std::printf("%-18s %-18s %8s %10s %10s %s\n", "base", "sketch", "blocks",
              "built-at", "now", "state");
  for (const auto& info : infos.value()) {
    std::printf("%016llx   %016llx   %8lld %10lld %10lld %s\n",
                static_cast<unsigned long long>(info.base_ns),
                static_cast<unsigned long long>(info.sketch_ns),
                static_cast<long long>(info.blocks),
                static_cast<long long>(info.base_records_at_build),
                static_cast<long long>(info.base_records_now),
                info.current ? "current" : "STALE");
  }
  std::printf("%zu sketched namespaces\n", infos.value().size());
  return 0;
}

int RunSketchVerify(const std::string& dir) {
  auto store = DetectionStore::Open(dir);
  if (!store.ok()) return Fail(store.status());
  auto infos = store.value()->ListSketches();
  if (!infos.ok()) return Fail(infos.status());
  int failures = 0;
  for (const auto& info : infos.value()) {
    // Load the index exactly the way the engine's executors do; a stale or
    // malformed index loads as invalid and the engine falls back to the
    // unindexed path, so "invalid" here means "sketches are dead weight",
    // not "queries return wrong answers".
    SketchIndex index = SketchIndex::Load(store.value().get(), info.base_ns);
    if (index.valid()) {
      std::printf("%016llx: OK (%zu blocks)\n",
                  static_cast<unsigned long long>(info.base_ns),
                  index.blocks().size());
    } else {
      std::printf("%016llx: INVALID (stale or malformed; run "
                  "`storecli sketch rebuild`)\n",
                  static_cast<unsigned long long>(info.base_ns));
      ++failures;
    }
  }
  if (infos.value().empty()) std::printf("no sketched namespaces\n");
  return failures == 0 ? 0 : 1;
}

int RunSketchRebuild(const std::string& dir, const std::string& ns_hex) {
  auto store = DetectionStore::Open(dir);
  if (!store.ok()) return Fail(store.status());
  if (!ns_hex.empty()) {
    const uint64_t ns = std::strtoull(ns_hex.c_str(), nullptr, 16);
    Status built = store.value()->BuildSketches(ns);
    if (!built.ok()) return Fail(built);
    std::printf("rebuilt sketches for %016llx\n",
                static_cast<unsigned long long>(ns));
    return 0;
  }
  // No namespace given: sketch every detections namespace. Non-detections
  // namespaces (artifact blobs, the sketches themselves) refuse with
  // InvalidArgument, which is the expected skip, not an error.
  int64_t built_count = 0, skipped = 0;
  for (uint64_t ns : store.value()->Namespaces()) {
    Status built = store.value()->BuildSketches(ns);
    if (built.ok()) {
      std::printf("rebuilt sketches for %016llx\n",
                  static_cast<unsigned long long>(ns));
      ++built_count;
    } else if (built.code() == StatusCode::kInvalidArgument) {
      ++skipped;
    } else {
      return Fail(built);
    }
  }
  std::printf("%lld namespaces sketched, %lld non-detections skipped\n",
              static_cast<long long>(built_count),
              static_cast<long long>(skipped));
  return 0;
}

int RunSketchDrop(const std::string& dir, const std::string& ns_hex) {
  auto store = DetectionStore::Open(dir);
  if (!store.ok()) return Fail(store.status());
  const uint64_t ns = std::strtoull(ns_hex.c_str(), nullptr, 16);
  Status dropped = store.value()->DropSketches(ns);
  if (!dropped.ok()) return Fail(dropped);
  std::printf("dropped sketches for %016llx\n",
              static_cast<unsigned long long>(ns));
  return 0;
}

int Main(int argc, char** argv) {
  Logger::set_level(LogLevel::kWarning);
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  if (command == "build") {
    if (argc < 5) return Usage();
    int64_t frames = argc > 5 ? std::atoll(argv[5]) : 0;
    return RunBuild(argv[2], argv[3], argv[4], frames);
  }
  if (command == "ls") return RunLs(argv[2]);
  if (command == "stats") {
    const bool json = argc > 3 && std::strcmp(argv[3], "--json") == 0;
    return RunStats(argv[2], json);
  }
  if (command == "query") {
    if (argc < 5) return Usage();
    QueryArgs args;
    args.dir = argv[2];
    args.stream = argv[3];
    args.frameql = argv[4];
    for (int i = 5; i < argc; ++i) {
      const std::string flag = argv[i];
      if (flag == "--json") {
        args.json = true;
      } else if (flag == "--small-nn") {
        args.small_nn = true;
      } else if (flag == "--trace" && i + 1 < argc) {
        args.trace_path = argv[++i];
      } else if (flag == "--metrics" && i + 1 < argc) {
        args.metrics_path = argv[++i];
      } else if (flag == "--train" && i + 1 < argc) {
        args.train = std::atoll(argv[++i]);
      } else if (flag == "--held" && i + 1 < argc) {
        args.held = std::atoll(argv[++i]);
      } else if (flag == "--test" && i + 1 < argc) {
        args.test = std::atoll(argv[++i]);
      } else if (flag == "--repeat" && i + 1 < argc) {
        args.repeat = std::atoll(argv[++i]);
      } else if (flag == "--concurrency" && i + 1 < argc) {
        args.concurrency = std::atoll(argv[++i]);
      } else {
        return Usage();
      }
    }
    return RunQuery(args);
  }
  if (command == "serve") {
    if (argc < 4) return Usage();
    ServeArgs args;
    args.dir = argv[2];
    args.workload = argv[3];
    for (int i = 4; i < argc; ++i) {
      const std::string flag = argv[i];
      if (flag == "--stream" && i + 1 < argc) {
        args.streams.push_back(argv[++i]);
      } else if (flag == "--window" && i + 1 < argc) {
        args.window = std::atoll(argv[++i]);
      } else if (flag == "--max-queue" && i + 1 < argc) {
        args.max_queue = std::atoll(argv[++i]);
      } else if (flag == "--quota" && i + 1 < argc) {
        args.quota = std::atoll(argv[++i]);
      } else if (flag == "--shed-depth" && i + 1 < argc) {
        args.shed_depth = std::atoll(argv[++i]);
      } else if (flag == "--tick-every" && i + 1 < argc) {
        args.tick_every = std::atoll(argv[++i]);
      } else if (flag == "--repeat" && i + 1 < argc) {
        args.repeat = std::atoll(argv[++i]);
      } else if (flag == "--prom" && i + 1 < argc) {
        args.prom_path = argv[++i];
      } else if (flag == "--small-nn") {
        args.small_nn = true;
      } else if (flag == "--train" && i + 1 < argc) {
        args.train = std::atoll(argv[++i]);
      } else if (flag == "--held" && i + 1 < argc) {
        args.held = std::atoll(argv[++i]);
      } else if (flag == "--test" && i + 1 < argc) {
        args.test = std::atoll(argv[++i]);
      } else if (flag == "--listen" && i + 1 < argc) {
        args.listen_port = std::atoll(argv[++i]);
      } else if (flag == "--port-file" && i + 1 < argc) {
        args.port_file = argv[++i];
      } else if (flag == "--linger-ms" && i + 1 < argc) {
        args.linger_ms = std::atoll(argv[++i]);
      } else if (flag == "--wall-clock-ms" && i + 1 < argc) {
        args.wall_clock_ms = std::atoll(argv[++i]);
      } else {
        return Usage();
      }
    }
    return RunServe(args);
  }
  if (command == "inspect") return RunInspect(argv[2]);
  if (command == "verify") return RunVerify(argv[2]);
  if (command == "compact") return RunCompact(argv[2]);
  if (command == "repair") return RunRepair(argv[2]);
  if (command == "sketch") {
    if (argc < 4) return Usage();
    const std::string sub = argv[2];
    if (sub == "ls") return RunSketchLs(argv[3]);
    if (sub == "verify") return RunSketchVerify(argv[3]);
    if (sub == "rebuild") {
      return RunSketchRebuild(argv[3], argc > 4 ? argv[4] : "");
    }
    if (sub == "drop" && argc > 4) return RunSketchDrop(argv[3], argv[4]);
    return Usage();
  }
  return Usage();
}

}  // namespace
}  // namespace blazeit

int main(int argc, char** argv) { return blazeit::Main(argc, argv); }
