// Urban-planning scenario (Section 2): an analyst meters traffic across
// intersections, compares methods for counting, and looks for congestion
// events with public transit present.
#include <cstdio>

#include "core/aggregation.h"
#include "core/baselines.h"
#include "core/engine.h"
#include "util/logging.h"
#include "video/datasets.h"

using namespace blazeit;

int main() {
  Logger::set_level(LogLevel::kWarning);
  VideoCatalog catalog;
  DayLengths lengths;
  lengths.train = 18000;
  lengths.held_out = 18000;
  lengths.test = 54000;
  for (const char* name : {"taipei", "amsterdam"}) {
    Status st = catalog.AddStream(StreamConfigByName(name).value(), lengths);
    if (!st.ok()) {
      std::printf("%s\n", st.ToString().c_str());
      return 1;
    }
  }

  // --- Traffic metering: average cars per frame on both intersections ---
  std::printf("Traffic metering (FCOUNT of cars, error 0.1 @ 95%%):\n");
  for (const char* name : {"taipei", "amsterdam"}) {
    StreamData* s = catalog.GetStream(name).value();
    AggregationExecutor executor(s, {});
    auto result = executor.Run(kCar, 0.1, 0.95);
    if (!result.ok()) {
      std::printf("%s\n", result.status().ToString().c_str());
      return 1;
    }
    auto naive = NaiveAggregate(s, kCar);
    std::printf(
        "  %-10s %.2f cars/frame via %-16s (%.0fs simulated vs %.0fs "
        "naive, %.0fx)\n",
        name, result.value().estimate,
        AggregateMethodName(result.value().method),
        result.value().cost.TotalSeconds(), naive.cost.TotalSeconds(),
        naive.cost.TotalSeconds() / result.value().cost.TotalSeconds());
  }

  // --- Congestion with transit: at least one bus and several cars ---
  BlazeItEngine engine(&catalog);
  std::printf("\nCongestion-with-transit events (bus + cars):\n");
  auto out = engine.Execute(
      "SELECT timestamp FROM taipei GROUP BY timestamp "
      "HAVING SUM(class='bus') >= 1 AND SUM(class='car') >= 3 "
      "LIMIT 5 GAP 300");
  if (!out.ok()) {
    std::printf("%s\n", out.status().ToString().c_str());
    return 1;
  }
  StreamData* taipei = catalog.GetStream("taipei").value();
  for (int64_t frame : out.value().frames) {
    std::printf("  t=%7.1fs: %d buses, %d cars\n",
                taipei->test_day->TimestampSeconds(frame),
                taipei->test_labels->Counts(kBus)[static_cast<size_t>(frame)],
                taipei->test_labels->Counts(kCar)[static_cast<size_t>(frame)]);
  }
  std::printf("  (cost: %.0f simulated seconds, %lld detector calls)\n",
              out.value().cost.TotalSeconds(),
              static_cast<long long>(out.value().cost.detection_calls()));

  // --- Tourism proxy: red tour buses ---
  std::printf("\nRed tour buses (tourism proxy):\n");
  auto buses = engine.Execute(
      "SELECT * FROM taipei WHERE class = 'bus' "
      "AND redness(content) >= 0.25 AND area(mask) > 20000 "
      "GROUP BY trackid HAVING COUNT(*) > 15");
  if (!buses.ok()) {
    std::printf("%s\n", buses.status().ToString().c_str());
    return 1;
  }
  std::printf("  %zu sightings across %zu events; plan: %s\n",
              buses.value().rows.size(), buses.value().frames.size(),
              buses.value().plan_description.c_str());
  return 0;
}
