// Ornithology scenario (Section 2): a scientist points a webcam at a bird
// feeder, splits it into left/right halves with different feed, counts
// visits on each side, and selects red birds as a species proxy. Shows how
// to define a *custom* stream config and register a custom UDF.
#include <cstdio>

#include "core/engine.h"
#include "util/logging.h"
#include "video/datasets.h"

using namespace blazeit;

namespace {

StreamConfig FeederConfig() {
  StreamConfig cfg;
  cfg.name = "feeder";
  cfg.fps = 30;
  cfg.width = 1280;
  cfg.height = 720;
  cfg.background = Color{0.35f, 0.45f, 0.30f};  // garden
  cfg.pixel_noise = 0.05;

  ObjectClassConfig bird;
  bird.class_id = kBird;
  bird.occupancy = 0.35;
  bird.mean_duration_sec = 4.0;
  bird.mean_width = 0.08;
  bird.mean_height = 0.07;
  bird.speed_mean = 0.12;
  bird.populations = {
      ObjectPopulation{Color{0.80f, 0.15f, 0.12f}, 0.05f, 0.3},  // cardinal
      ObjectPopulation{Color{0.20f, 0.30f, 0.75f}, 0.05f, 0.3},  // bluebird
      ObjectPopulation{Color{0.45f, 0.38f, 0.30f}, 0.05f, 0.4},  // sparrow
  };
  bird.region = Rect{0.0, 0.2, 1.0, 0.9};
  cfg.classes.push_back(bird);
  return cfg;
}

}  // namespace

int main() {
  Logger::set_level(LogLevel::kWarning);
  VideoCatalog catalog;
  DayLengths lengths;
  lengths.train = 18000;
  lengths.held_out = 18000;
  lengths.test = 54000;
  Status st = catalog.AddStream(FeederConfig(), lengths);
  if (!st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return 1;
  }
  BlazeItEngine engine(&catalog);

  // Count visits per side using spatial predicates. xmax < 640px = left
  // half; xmin >= 640px = right half.
  std::printf("Bird visits by feeder side (distinct tracks):\n");
  StreamData* s = catalog.GetStream("feeder").value();
  int64_t left = 0, right = 0;
  for (int64_t t = 0; t < s->test_day->num_frames(); ++t) {
    for (const auto& obj : s->test_day->GroundTruth(t)) {
      // Count arrivals: first frame of each track decides the side.
      (void)obj;
    }
  }
  // Distinct-count queries per side via the engine:
  auto left_count = engine.Execute(
      "SELECT * FROM feeder WHERE class = 'bird' AND xmax(mask) < 640");
  auto right_count = engine.Execute(
      "SELECT * FROM feeder WHERE class = 'bird' AND xmin(mask) >= 640");
  if (left_count.ok() && right_count.ok()) {
    left = static_cast<int64_t>(left_count.value().frames.size());
    right = static_cast<int64_t>(right_count.value().frames.size());
    std::printf("  left feed:  %lld visit events\n",
                static_cast<long long>(left));
    std::printf("  right feed: %lld visit events\n",
                static_cast<long long>(right));
  }

  // Average birds per frame with an error bound.
  auto avg = engine.Execute(
      "SELECT FCOUNT(*) FROM feeder WHERE class = 'bird' "
      "ERROR WITHIN 0.1 AT CONFIDENCE 95%");
  if (avg.ok()) {
    std::printf("\nAverage birds per frame: %.2f (plan: %s)\n",
                avg.value().scalar, avg.value().plan_description.c_str());
  }

  // Species proxy via a custom UDF: cardinal-ness = red dominance.
  Status reg = engine.mutable_udfs()->Register(
      "cardinalness", [](const Image& img) { return UdfRegistry::Redness(img); });
  if (!reg.ok()) {
    std::printf("%s\n", reg.ToString().c_str());
    return 1;
  }
  auto cardinals = engine.Execute(
      "SELECT * FROM feeder WHERE class = 'bird' "
      "AND cardinalness(content) >= 0.25");
  if (cardinals.ok()) {
    std::printf("Red-bird sightings: %zu rows across %zu events\n",
                cardinals.value().rows.size(),
                cardinals.value().frames.size());
    std::printf("  cost: %.0f simulated seconds (naive would be %.0f)\n",
                cardinals.value().cost.TotalSeconds(),
                static_cast<double>(s->test_day->num_frames()) / 3.0);
  } else {
    std::printf("%s\n", cardinals.status().ToString().c_str());
  }
  return 0;
}
