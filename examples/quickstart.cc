// Quickstart: register a video stream, create the engine, and run one of
// each query class through the FrameQL front end.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "core/engine.h"
#include "util/logging.h"
#include "video/datasets.h"

using namespace blazeit;

namespace {

void RunAndReport(BlazeItEngine* engine, const char* frameql) {
  std::printf("\n> %s\n", frameql);
  auto out = engine->Execute(frameql);
  if (!out.ok()) {
    std::printf("  error: %s\n", out.status().ToString().c_str());
    return;
  }
  const QueryOutput& o = out.value();
  std::printf("  plan: %s\n", o.plan_description.c_str());
  switch (o.kind) {
    case QueryKind::kAggregate:
    case QueryKind::kCountDistinct:
      std::printf("  result: %.3f\n", o.scalar);
      break;
    default:
      std::printf("  result: %zu frames / %zu rows\n", o.frames.size(),
                  o.rows.size());
  }
  std::printf("  simulated cost: %.1f GPU-seconds (%lld detector calls)\n",
              o.cost.TotalSeconds(),
              static_cast<long long>(o.cost.detection_calls()));
}

}  // namespace

int main() {
  Logger::set_level(LogLevel::kWarning);

  // 1. Register a stream. The synthetic generator stands in for a camera:
  //    three independently generated days (train / threshold / test).
  VideoCatalog catalog;
  DayLengths lengths;
  lengths.train = 18000;    // 10 min of labeled video
  lengths.held_out = 18000; // 10 min for threshold computation
  lengths.test = 54000;     // 30 min of unseen video to query
  Status st = catalog.AddStream(TaipeiConfig(), lengths);
  if (!st.ok()) {
    std::printf("AddStream: %s\n", st.ToString().c_str());
    return 1;
  }

  // 2. Create the engine and issue FrameQL.
  BlazeItEngine engine(&catalog);

  // Aggregation (Figure 3a): frame-averaged car count with a 0.1 error
  // tolerance — the optimizer trains a specialized NN and either rewrites
  // the query onto it or uses it as a control variate.
  RunAndReport(&engine,
               "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' "
               "ERROR WITHIN 0.1 AT CONFIDENCE 95%");

  // Scrubbing (Figure 3b): find frames with several cars, importance-
  // sampled by specialized-NN confidence.
  RunAndReport(&engine,
               "SELECT timestamp FROM taipei GROUP BY timestamp "
               "HAVING SUM(class='car') >= 3 LIMIT 5 GAP 300");

  // Content-based selection (Figure 3c): red tour buses, with inferred
  // label/content/temporal/spatial filters.
  RunAndReport(&engine,
               "SELECT * FROM taipei WHERE class = 'bus' "
               "AND redness(content) >= 0.25 AND area(mask) > 20000 "
               "GROUP BY trackid HAVING COUNT(*) > 15");
  return 0;
}
