// Autonomous-vehicle analysis scenario (Section 2): an analyst scrubs
// archival footage for rare multi-object situations, comparing the naive
// scan, the NoScope-style presence oracle, and BlazeIt's importance
// sampling at several rarity levels.
#include <cstdio>

#include "core/baselines.h"
#include "core/scrubbing.h"
#include "util/logging.h"
#include "video/datasets.h"

using namespace blazeit;

int main() {
  Logger::set_level(LogLevel::kWarning);
  VideoCatalog catalog;
  DayLengths lengths;
  lengths.train = 18000;
  lengths.held_out = 18000;
  lengths.test = 108000;  // one hour of archival footage
  Status st = catalog.AddStream(NightStreetConfig(), lengths);
  if (!st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return 1;
  }
  StreamData* s = catalog.GetStream("night-street").value();

  std::printf(
      "Scrubbing night-street for frames with at least N cars (LIMIT "
      "10):\n\n%-4s %8s %8s %12s %12s %12s\n",
      "N", "Frames", "Events", "Naive", "NoScope", "BlazeIt");
  for (int n = 2; n <= 4; ++n) {
    std::vector<ClassCountRequirement> reqs = {{kCar, n}};
    auto stats = CountRequirementInstances(*s, reqs);
    if (stats.events == 0) {
      std::printf("%-4d no events in this hour of video\n", n);
      continue;
    }
    auto naive = NaiveScrub(s, reqs, 10, 0);
    auto oracle = NoScopeOracleScrub(s, reqs, 10, 0);
    ScrubbingExecutor executor(s, {});
    auto r = executor.Run(reqs, 10, 0);
    if (!r.ok()) {
      std::printf("%s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("%-4d %8lld %8lld %11lldc %11lldc %11lldc%s\n", n,
                static_cast<long long>(stats.matching_frames),
                static_cast<long long>(stats.events),
                static_cast<long long>(naive.detection_calls),
                static_cast<long long>(oracle.detection_calls),
                static_cast<long long>(r.value().detection_calls),
                r.value().limit_satisfied ? "" : " (exhausted)");
  }
  std::printf(
      "\n('c' = full object-detection calls; every returned frame is "
      "verified, so results contain no false positives.)\n");
  return 0;
}
