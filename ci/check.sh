#!/usr/bin/env bash
# Tier-1 verify: configure + build (warnings as errors), the fast lane
# first for quick feedback, then the full suite. Usage: ci/check.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "==> configure (${BUILD_DIR})"
cmake -B "${BUILD_DIR}" -S .

echo "==> build (-j${JOBS})"
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "==> ctest: fast lane (-L fast)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L fast -j "${JOBS}"

echo "==> ctest: slow suites (-L slow)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L slow -j "${JOBS}"

echo "==> OK"
