#!/usr/bin/env bash
# Tier-1 verify: configure + build (warnings as errors), the fast lane
# first for quick feedback, then the slow suites twice — once against a
# cold persistent detection store and once against the warm store the cold
# pass just wrote. The warm pass checks both that stored artifacts replay
# (store_invariance_test additionally asserts, in-process, that query
# outputs and simulated costs are bit-identical cold vs warm) and that the
# lane gets the expected wall-clock win. Usage: ci/check.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

# Project lint first: pure-python, runs in under a second, and catches
# the concurrency-contract violations (raw mutexes, unannotated *Locked
# methods, bare asserts, wall-clock in deterministic paths) that the
# compiler only diagnoses under clang. Gating.
echo "==> lint (ci/lint.py)"
python3 ci/lint.py

echo "==> configure (${BUILD_DIR})"
cmake -B "${BUILD_DIR}" -S .

echo "==> build (-j${JOBS})"
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "==> ctest: fast lane (-L fast)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L fast -j "${JOBS}"

STORE_DIR="$(mktemp -d "${TMPDIR:-/tmp}/blazeit-store.XXXXXX")"
trap 'rm -rf "${STORE_DIR}"' EXIT

# Lane wall-clock comes from ctest's own "Total Test time (real)" line:
# portable (no GNU date +%N) and measures only the tests themselves.
lane_seconds() {
  awk '/Total Test time \(real\)/ { print $(NF-1) }' "$1"
}

echo "==> ctest: slow suites, cold store (-L slow)"
BLAZEIT_DETECTION_STORE="${STORE_DIR}" \
  ctest --test-dir "${BUILD_DIR}" --output-on-failure -L slow -j "${JOBS}" \
  | tee "${STORE_DIR}/cold.log"
COLD_SECS="$(lane_seconds "${STORE_DIR}/cold.log")"

echo "==> ctest: slow suites, warm store (-L slow)"
BLAZEIT_DETECTION_STORE="${STORE_DIR}" \
  ctest --test-dir "${BUILD_DIR}" --output-on-failure -L slow -j "${JOBS}" \
  | tee "${STORE_DIR}/warm.log"
WARM_SECS="$(lane_seconds "${STORE_DIR}/warm.log")"

# Sketch-index round trip against the store the slow lane just wrote:
# rebuild segment sketches for every detections namespace, then verify
# them the way the engine loads them. Gating — `sketch verify` failing
# means the sketch codec or the staleness bookkeeping broke.
STORECLI="${BUILD_DIR}/tools/storecli"
if [[ -x "${STORECLI}" ]]; then
  echo "==> storecli: sketch rebuild + verify on the warm store"
  "${STORECLI}" sketch rebuild "${STORE_DIR}"
  "${STORECLI}" sketch ls "${STORE_DIR}"
  "${STORECLI}" sketch verify "${STORE_DIR}"
  "${STORECLI}" verify "${STORE_DIR}"

  echo "==> storecli: stats smoke on the warm store"
  "${STORECLI}" stats "${STORE_DIR}"
  ARTIFACT_DIR="${BUILD_DIR}/artifacts"
  mkdir -p "${ARTIFACT_DIR}"
  "${STORECLI}" stats "${STORE_DIR}" --json \
    > "${ARTIFACT_DIR}/store_stats.json"

  # Observability artifacts: run one aggregate against the store the slow
  # lane just warmed (same stream/day-lengths/NN config as the test
  # suites, so the query replays stored artifacts) and archive its
  # ExecutionReport, Chrome trace, and the process metrics snapshot under
  # the build dir. The python check both validates the JSON and fails the
  # build if the query path broke.
  echo "==> storecli: query report + trace + metrics artifacts"
  "${STORECLI}" query "${STORE_DIR}" taipei \
    "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.1 AT CONFIDENCE 95%" \
    --small-nn --train 6000 --held 6000 --test 12000 --json \
    --trace "${ARTIFACT_DIR}/query_trace.json" \
    --metrics "${ARTIFACT_DIR}/metrics_snapshot.json" \
    > "${ARTIFACT_DIR}/query_report.json"
  python3 -c 'import json, sys
for p in sys.argv[1:]:
    json.load(open(p))
print("artifacts valid:", ", ".join(sys.argv[1:]))' \
    "${ARTIFACT_DIR}/query_report.json" \
    "${ARTIFACT_DIR}/query_trace.json" \
    "${ARTIFACT_DIR}/metrics_snapshot.json"

  # Serving-layer replay smoke: a three-client workload through the
  # multi-tenant admission queue (same warm store and NN config), with
  # the per-query reports and Prometheus metrics dump archived. The
  # python check validates the JSON, that every response succeeded, and
  # that the window coalesced the two same-plan clients cross-client.
  echo "==> storecli: serve replay smoke"
  cat > "${ARTIFACT_DIR}/serve_workload.txt" <<'EOF'
alice SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.1 AT CONFIDENCE 95%
bob SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.05 AT CONFIDENCE 95%
carol SELECT timestamp FROM taipei WHERE class = 'bus' AND timestamp >= 30
EOF
  "${STORECLI}" serve "${STORE_DIR}" "${ARTIFACT_DIR}/serve_workload.txt" \
    --small-nn --train 6000 --held 6000 --test 12000 \
    --prom "${ARTIFACT_DIR}/serve_metrics.prom" \
    > "${ARTIFACT_DIR}/serve_report.json"
  python3 - "${ARTIFACT_DIR}/serve_report.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert len(d["responses"]) == 3, d["responses"]
assert all(r["ok"] for r in d["responses"]), d["responses"]
assert all("report" in r for r in d["responses"]), d["responses"]
assert d["stats"]["cross_client_groups"] >= 1, d["stats"]
assert d["rejected"] == [], d["rejected"]
print("serve replay valid: 3 responses,",
      d["stats"]["cross_client_groups"], "cross-client group(s)")
EOF
  grep -q '^# TYPE blazeit_serve_submitted counter$' \
    "${ARTIFACT_DIR}/serve_metrics.prom"

  # Debug-endpoint smoke: rerun the same serve workload with the HTTP
  # debug server up (--listen 0 picks an ephemeral port, written to the
  # port file; --linger-ms keeps the process alive after the replay so we
  # can scrape it). Gating — /healthz must be 200, /metrics must be a
  # Prometheus exposition, and /tracez must carry the replayed queries in
  # the flight recorder.
  echo "==> storecli: debug endpoint smoke (/healthz /metrics /tracez)"
  PORT_FILE="${ARTIFACT_DIR}/debug_port.txt"
  rm -f "${PORT_FILE}"
  "${STORECLI}" serve "${STORE_DIR}" "${ARTIFACT_DIR}/serve_workload.txt" \
    --small-nn --train 6000 --held 6000 --test 12000 \
    --listen 0 --port-file "${PORT_FILE}" --linger-ms 30000 \
    > "${ARTIFACT_DIR}/serve_report_debug.json" &
  SERVE_PID=$!
  for _ in $(seq 1 300); do
    [[ -s "${PORT_FILE}" ]] && break
    kill -0 "${SERVE_PID}" 2>/dev/null \
      || { echo "==> FAIL: serve exited before publishing its port" >&2; exit 1; }
    sleep 0.1
  done
  [[ -s "${PORT_FILE}" ]] \
    || { echo "==> FAIL: debug server port file never appeared" >&2; kill "${SERVE_PID}"; exit 1; }
  DEBUG_PORT="$(cat "${PORT_FILE}")"
  DEBUG_URL="http://127.0.0.1:${DEBUG_PORT}"
  HEALTH_CODE="$(curl -s -o "${ARTIFACT_DIR}/healthz.json" \
    -w '%{http_code}' "${DEBUG_URL}/healthz")"
  [[ "${HEALTH_CODE}" == "200" ]] \
    || { echo "==> FAIL: /healthz returned ${HEALTH_CODE}" >&2; kill "${SERVE_PID}"; exit 1; }
  curl -s "${DEBUG_URL}/metrics" > "${ARTIFACT_DIR}/debug_metrics.prom"
  grep -q '^# TYPE blazeit_' "${ARTIFACT_DIR}/debug_metrics.prom" \
    || { echo "==> FAIL: /metrics is not a Prometheus exposition" >&2; kill "${SERVE_PID}"; exit 1; }
  curl -s "${DEBUG_URL}/tracez" > "${ARTIFACT_DIR}/tracez.json"
  curl -s "${DEBUG_URL}/statusz" > "${ARTIFACT_DIR}/statusz.json"
  python3 - "${ARTIFACT_DIR}/tracez.json" "${ARTIFACT_DIR}/statusz.json" <<'EOF'
import json, sys
tracez = json.load(open(sys.argv[1]))
assert len(tracez["recent"]) >= 1, tracez
assert all(r["correlation_id"] > 0 for r in tracez["recent"]), tracez
statusz = json.load(open(sys.argv[2]))
sections = {s["section"] for s in statusz["sections"]}
assert {"engine", "storage", "serve"} <= sections, sections
print("debug endpoints valid:", len(tracez["recent"]), "trace(s),",
      len(sections), "statusz section(s)")
EOF
  kill "${SERVE_PID}" 2>/dev/null || true
  wait "${SERVE_PID}" 2>/dev/null || true
else
  echo "==> storecli not built; skipping sketch round trip"
fi

echo "==> slow lane: cold ${COLD_SECS}s, warm ${WARM_SECS}s"
# Regression canary for the store: a warm rerun must be at least 1.5x
# faster. If this trips, store reuse silently broke — most likely a
# fingerprint that is no longer process-stable, so every "warm" run
# recomputes (which drives the ratio to ~1.0x). The floor started at 2x
# (cold ~30s, warm ~2s) but compresses as PRs shrink the cold lane's
# compute: warm time is dominated by work the store deliberately does not
# memoize (synthetic rendering, process startup), so the ratio falls even
# though reuse is intact — measured ~1.9x at cold ~9s / warm ~4.6s.
if ! awk -v c="${COLD_SECS}" -v w="${WARM_SECS}" 'BEGIN { exit !(w * 3 <= c * 2) }'; then
  echo "==> FAIL: warm slow lane (${WARM_SECS}s) is not >=1.5x faster than cold (${COLD_SECS}s)" >&2
  exit 1
fi

# Gating AddressSanitizer + UndefinedBehaviorSanitizer lane: rebuild the
# library and every fast suite with both sanitizers and run the fast
# lane. Heap misuse and UB found here fail the build. The sanitizer
# builds also force BLAZEIT_MUTEX_DEBUG on, so the mutex owner-tracking
# assertions stay armed.
echo "==> asan+ubsan lane (gating): fast suites"
ASAN_BUILD="${BUILD_DIR}-asan"
cmake -B "${ASAN_BUILD}" -S . -DBLAZEIT_ASAN=ON -DBLAZEIT_UBSAN=ON \
  -DBLAZEIT_BUILD_BENCHES=OFF -DBLAZEIT_BUILD_EXAMPLES=OFF \
  -DBLAZEIT_BUILD_TOOLS=OFF > /dev/null
cmake --build "${ASAN_BUILD}" -j "${JOBS}" > /dev/null
ctest --test-dir "${ASAN_BUILD}" --output-on-failure -L fast -j "${JOBS}"
echo "==> asan+ubsan lane clean"

# Gating ThreadSanitizer lane: rebuild every fast suite (exec runtime,
# storage locking, serving, obs, net — plus the batch layer's
# determinism suite, whose shared-plan groups run concurrently against
# one SharedSweepCache) with -fsanitize=thread and run them. Races found
# here fail the build.
echo "==> tsan lane (gating): fast suites + batch_determinism_test"
TSAN_BUILD="${BUILD_DIR}-tsan"
cmake -B "${TSAN_BUILD}" -S . -DBLAZEIT_TSAN=ON \
  -DBLAZEIT_BUILD_BENCHES=OFF -DBLAZEIT_BUILD_EXAMPLES=OFF \
  -DBLAZEIT_BUILD_TOOLS=OFF > /dev/null
cmake --build "${TSAN_BUILD}" -j "${JOBS}" > /dev/null
ctest --test-dir "${TSAN_BUILD}" --output-on-failure -L fast -j "${JOBS}"
ctest --test-dir "${TSAN_BUILD}" --output-on-failure \
  -R '^batch_determinism_test$' -j "${JOBS}"
echo "==> tsan lane clean"

# Opportunistic clang lanes. This tree annotates every mutex-bearing
# subsystem with Clang Thread Safety Analysis attributes
# (src/util/thread_annotations.h); they only become compiler-checked
# contracts under clang, so when a clang++ is installed, compile the
# library with -Wthread-safety -Werror. Same spirit for clang-tidy
# (non-gating): the curated .clang-tidy runs over the library sources
# using the exported compile_commands.json. Neither tool is guaranteed
# on CI machines; both lanes print a skip note when absent.
if command -v clang++ > /dev/null 2>&1; then
  echo "==> clang -Wthread-safety lane (gating): library compile"
  TSA_BUILD="${BUILD_DIR}-wthread-safety"
  cmake -B "${TSA_BUILD}" -S . -DCMAKE_CXX_COMPILER=clang++ \
    -DBLAZEIT_BUILD_TESTS=OFF -DBLAZEIT_BUILD_BENCHES=OFF \
    -DBLAZEIT_BUILD_EXAMPLES=OFF -DBLAZEIT_BUILD_TOOLS=OFF \
    -DCMAKE_CXX_FLAGS="-Wthread-safety -Werror=thread-safety" > /dev/null
  cmake --build "${TSA_BUILD}" -j "${JOBS}" --target blazeit > /dev/null
  echo "==> clang -Wthread-safety lane clean"
else
  echo "==> clang++ not installed; skipping -Wthread-safety lane"
fi
if command -v clang-tidy > /dev/null 2>&1; then
  echo "==> clang-tidy report (non-gating)"
  find src -name '*.cc' -print0 \
    | xargs -0 clang-tidy -p "${BUILD_DIR}" --quiet \
    || echo "==> clang-tidy reported findings (non-gating)"
else
  echo "==> clang-tidy not installed; skipping tidy report"
fi

# Non-gating perf report: rerun the micro-benchmarks and print deltas vs
# the committed baseline. The fresh run goes to the build dir, not to the
# committed bench/BENCH_pr3.json snapshot, so CI never dirties the
# recorded measurements. A regression here should be investigated but
# does not fail the build — micro-bench noise on shared CI machines is
# too high for a hard gate.
if [[ -x "${BUILD_DIR}/bench/bench_micro_components" ]]; then
  echo "==> bench: micro-benchmarks vs bench/BENCH_baseline.json (non-gating)"
  BLAZEIT_BENCH_FAIL_PCT=25 bench/run_benchmarks.sh compare "${BUILD_DIR}" \
    "${BUILD_DIR}/BENCH_current.json" \
    || echo "==> bench report failed or regressed >25% (non-gating)"
else
  echo "==> bench: bench_micro_components not built; skipping perf report"
fi

echo "==> OK"
