#!/usr/bin/env python3
"""Project lint: mechanical enforcement of repo-wide source contracts.

Gating in ci/check.sh (and registered as the `lint_test` ctest entry via
--self-test). Checks, over src/ and tests/:

  bare-assert     No bare assert( — use BLAZEIT_CHECK (always-on) or
                  BLAZEIT_DCHECK (hot paths). assert() compiles out under
                  NDEBUG, silently dropping invariants in release builds.
  raw-mutex       No std::mutex / std::shared_mutex / std::condition_variable
                  / std lock RAII types outside util/mutex.h — all locking
                  goes through the annotated util::Mutex wrappers so the
                  thread-safety analysis and runtime lock assertions see it.
  rand            No rand()/srand() — engine randomness must flow through
                  seeded RNGs or outputs stop replaying bit-identically.
  wallclock       No std::chrono::system_clock / time(nullptr) outside the
                  wall-clock allowlist (net/, obs/, serve wall-tick plumbing)
                  — deterministic paths must use the virtual clock or
                  steady_clock for durations.
  locked-requires Every function named *Locked must declare its lock
                  contract (BLAZEIT_REQUIRES / _SHARED / BLAZEIT_RELEASE)
                  on at least one declaration site, or carry an explicit
                  lint tag explaining why not.
  include-guard   Every header uses a BLAZEIT_<PATH>_H_ include guard
                  matching its path.

Escape hatches (must be on the offending line, visible to reviewers):
    // lint:allow-bare-assert <reason>
    // lint:allow-raw-mutex <reason>
    // lint:allow-rand <reason>
    // lint:allow-wallclock <reason>
    // lint:allow-unannotated-locked <reason>

Run `python3 ci/lint.py` from the repo root; `--self-test` exercises the
rules against tests/lint_fixtures/.
"""

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SOURCE_DIRS = ("src", "tests")
SOURCE_EXTS = (".h", ".cc")

# Files allowed to use the raw std primitives: the wrapper itself.
RAW_MUTEX_ALLOWED = {
    "src/util/mutex.h",
    "src/util/thread_annotations.h",
}

# Directory prefixes where wall-clock reads are part of the contract
# (serving latency, HTTP timeouts, flight-recorder timestamps). Query
# execution and storage stay wall-clock-free so outputs replay.
WALLCLOCK_ALLOWED_PREFIXES = (
    "src/net/",
    "src/obs/",
    "tests/",
)

BARE_ASSERT_RE = re.compile(r"(?<![A-Za-z0-9_])assert\s*\(")
RAW_MUTEX_RE = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex|shared_timed_mutex|condition_variable|"
    r"condition_variable_any|lock_guard|unique_lock|shared_lock|scoped_lock)\b"
)
RAND_RE = re.compile(r"(?<![A-Za-z0-9_])s?rand\s*\(")
WALLCLOCK_RE = re.compile(r"system_clock|(?<![A-Za-z0-9_])time\s*\(\s*(nullptr|NULL|0)\s*\)")
# A *Locked function declaration/definition: an identifier ending in
# "Locked" followed by "(", preceded on the same line by something that
# reads like a type token (so call sites — `return FooLocked(...)`,
# `BLAZEIT_RETURN_NOT_OK(FlushLocked())` — don't count).
LOCKED_NAME_RE = re.compile(r"\b([A-Za-z_][A-Za-z0-9_]*Locked)\s*\(")
REQUIRES_RE = re.compile(
    r"BLAZEIT_(REQUIRES|REQUIRES_SHARED|RELEASE|RELEASE_SHARED|"
    r"NO_THREAD_SAFETY_ANALYSIS)\b"
)
# Tokens that may legitimately precede a function name in a declaration.
DECL_PRECEDER_RE = re.compile(
    r"(?:^|\s|[*&])"
    r"(?:[A-Za-z_][A-Za-z0-9_:<>,\s*&]*?)"
    r"(?:\s|[*&])$"
)
NON_DECL_PRECEDERS = re.compile(
    r"(?:\breturn\b|\bco_return\b|[=(,!?:+\-|&]|&&|\|\||\.|->|::)\s*$"
)

COMMENT_RE = re.compile(r"^\s*(//|\*|/\*)")
STRING_STRIP_RE = re.compile(r'"(?:[^"\\]|\\.)*"')


def allow_tag(line, tag):
    return f"lint:allow-{tag}" in line


def strip_noise(line):
    """Removes string literals and trailing // comments for matching."""
    line = STRING_STRIP_RE.sub('""', line)
    cut = line.find("//")
    if cut >= 0:
        line = line[:cut]
    return line


def is_comment(line):
    return bool(COMMENT_RE.match(line))


def guard_name(rel_path):
    stem = rel_path
    if stem.startswith("src/"):
        stem = stem[len("src/"):]
    return "BLAZEIT_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_"


class Finding:
    def __init__(self, rel_path, line_no, rule, message):
        self.rel_path = rel_path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.rel_path}:{self.line_no}: [{self.rule}] {self.message}"


def lint_file(rel_path, text):
    findings = []
    lines = text.splitlines()
    in_block_comment = False

    # --- per-line rules ------------------------------------------------
    for i, raw in enumerate(lines, start=1):
        line = raw
        if in_block_comment:
            if "*/" in line:
                line = line.split("*/", 1)[1]
                in_block_comment = False
            else:
                continue
        if "/*" in line and "*/" not in line.split("/*", 1)[1]:
            line = line.split("/*", 1)[0]
            in_block_comment = True
        if is_comment(line):
            continue
        code = strip_noise(line)
        if not code.strip():
            continue

        if BARE_ASSERT_RE.search(code) and "static_assert" not in code:
            if not allow_tag(raw, "bare-assert"):
                findings.append(Finding(
                    rel_path, i, "bare-assert",
                    "bare assert() compiles out under NDEBUG; use "
                    "BLAZEIT_CHECK or BLAZEIT_DCHECK "
                    "(or tag // lint:allow-bare-assert <reason>)"))

        if rel_path.startswith("src/") and rel_path not in RAW_MUTEX_ALLOWED:
            m = RAW_MUTEX_RE.search(code)
            if m and not allow_tag(raw, "raw-mutex"):
                findings.append(Finding(
                    rel_path, i, "raw-mutex",
                    f"raw std::{m.group(1)} bypasses the annotated "
                    "util::Mutex wrappers; use util/mutex.h "
                    "(or tag // lint:allow-raw-mutex <reason>)"))

        if RAND_RE.search(code) and not allow_tag(raw, "rand"):
            findings.append(Finding(
                rel_path, i, "rand",
                "rand()/srand() breaks deterministic replay; use a seeded "
                "RNG (or tag // lint:allow-rand <reason>)"))

        if WALLCLOCK_RE.search(code):
            allowed = any(rel_path.startswith(p)
                          for p in WALLCLOCK_ALLOWED_PREFIXES)
            if not allowed and not allow_tag(raw, "wallclock"):
                findings.append(Finding(
                    rel_path, i, "wallclock",
                    "wall-clock read in a deterministic path; use the "
                    "virtual clock / steady_clock, or tag "
                    "// lint:allow-wallclock <reason>"))

    # --- *Locked annotation rule (aggregated per function name) --------
    findings.extend(lint_locked_contracts(rel_path, lines))

    # --- include guard --------------------------------------------------
    if rel_path.endswith(".h"):
        expect = guard_name(rel_path)
        if f"#ifndef {expect}" not in text or f"#define {expect}" not in text:
            findings.append(Finding(
                rel_path, 1, "include-guard",
                f"header must use include guard {expect}"))

    return findings


def lint_locked_contracts(rel_path, lines):
    """Every *Locked function: >=1 declaration site carries a lock
    annotation. Declaration sites are matched per line; the annotation may
    sit on the following continuation lines (up to the opening brace or
    semicolon)."""
    decl_sites = {}  # name -> [(line_no, annotated)]
    for i, raw in enumerate(lines, start=1):
        if is_comment(raw):
            continue
        code = strip_noise(raw)
        for m in LOCKED_NAME_RE.finditer(code):
            name = m.group(1)
            before = code[:m.start()]
            # A declaration has a type token before the name; a call has
            # an operator, '(' or `return` — or nothing but whitespace
            # (continuation of an expression).
            if not before.strip():
                continue
            if NON_DECL_PRECEDERS.search(before):
                continue
            if not DECL_PRECEDER_RE.search(before):
                continue
            if allow_tag(raw, "unannotated-locked"):
                decl_sites.setdefault(name, []).append((i, True))
                continue
            # Scan this line plus continuations for the annotation.
            annotated = False
            for j in range(i - 1, min(i + 4, len(lines))):
                seg = lines[j]
                if REQUIRES_RE.search(seg) or allow_tag(seg, "unannotated-locked"):
                    annotated = True
                    break
                if seg.rstrip().endswith(";") or "{" in seg:
                    break
            decl_sites.setdefault(name, []).append((i, annotated))

    findings = []
    for name, sites in sorted(decl_sites.items()):
        if not any(annotated for _, annotated in sites):
            line_no = sites[0][0]
            findings.append(Finding(
                rel_path, line_no, "locked-requires",
                f"{name}() claims a lock contract by name but no "
                "declaration carries BLAZEIT_REQUIRES/_SHARED/RELEASE "
                "(or // lint:allow-unannotated-locked <reason>)"))
    return findings


def collect_files(root):
    out = []
    for top in SOURCE_DIRS:
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, _dirnames, filenames in os.walk(base):
            for fn in sorted(filenames):
                if fn.endswith(SOURCE_EXTS):
                    full = os.path.join(dirpath, fn)
                    rel = os.path.relpath(full, root).replace(os.sep, "/")
                    if rel.startswith("tests/lint_fixtures/"):
                        continue  # intentionally-violating fixtures
                    out.append((rel, full))
    return out


def run_lint(root):
    findings = []
    for rel, full in collect_files(root):
        with open(full, encoding="utf-8") as f:
            text = f.read()
        findings.extend(lint_file(rel, text))
    return findings


# --------------------------------------------------------------------------
# Self-test: run the rules over the fixture files, which carry machine-
# readable expectations (`// lint-expect: <rule>` on the offending line).
# --------------------------------------------------------------------------

EXPECT_RE = re.compile(r"lint-expect:\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)")


def self_test(root):
    fixture_dir = os.path.join(root, "tests", "lint_fixtures")
    if not os.path.isdir(fixture_dir):
        print("lint self-test: tests/lint_fixtures/ missing", file=sys.stderr)
        return 1
    failures = []
    checked = 0
    for fn in sorted(os.listdir(fixture_dir)):
        if not fn.endswith(SOURCE_EXTS):
            continue
        full = os.path.join(fixture_dir, fn)
        # Fixtures are linted as if they lived at the path named by their
        # first line: `// lint-fixture-path: src/foo/bar.h`.
        with open(full, encoding="utf-8") as f:
            text = f.read()
        first = text.splitlines()[0] if text else ""
        m = re.search(r"lint-fixture-path:\s*(\S+)", first)
        rel = m.group(1) if m else f"src/lint_fixtures/{fn}"

        expected = {}  # line_no -> set(rules)
        for i, line in enumerate(text.splitlines(), start=1):
            em = EXPECT_RE.search(line)
            if em:
                rules = {r.strip() for r in em.group(1).split(",")}
                expected[i] = rules

        got = {}
        for finding in lint_file(rel, text):
            got.setdefault(finding.line_no, set()).add(finding.rule)

        # include-guard findings anchor to line 1; treat a file-level
        # `lint-expect-file: include-guard` marker as line 1.
        fm = re.search(r"lint-expect-file:\s*([a-z-]+)", text)
        if fm:
            expected.setdefault(1, set()).add(fm.group(1))

        for line_no, rules in sorted(expected.items()):
            for rule in sorted(rules):
                checked += 1
                if rule == "none":
                    if line_no in got:
                        failures.append(
                            f"{fn}:{line_no}: expected clean, got "
                            f"{sorted(got[line_no])}")
                elif rule not in got.get(line_no, set()):
                    failures.append(
                        f"{fn}:{line_no}: expected [{rule}], got "
                        f"{sorted(got.get(line_no, set())) or 'nothing'}")
        for line_no, rules in sorted(got.items()):
            unexpected = rules - expected.get(line_no, set())
            if unexpected:
                failures.append(
                    f"{fn}:{line_no}: unexpected findings {sorted(unexpected)}")

    if failures:
        print("lint self-test FAILED:", file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        return 1
    print(f"lint self-test passed ({checked} expectations)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=REPO_ROOT)
    parser.add_argument("--self-test", action="store_true",
                        help="run the rule suite against tests/lint_fixtures/")
    args = parser.parse_args()

    if args.self_test:
        rc = self_test(args.root)
        if rc != 0:
            return rc
        # The fixtures prove the rules fire; the real tree must then be
        # clean for the self-test to pass as a ctest entry.
        findings = run_lint(args.root)
        if findings:
            print(f"lint: {len(findings)} finding(s) in the tree:",
                  file=sys.stderr)
            for f in findings:
                print("  " + str(f), file=sys.stderr)
            return 1
        return 0

    findings = run_lint(args.root)
    if findings:
        print(f"lint: {len(findings)} finding(s):", file=sys.stderr)
        for f in findings:
            print("  " + str(f), file=sys.stderr)
        return 1
    print(f"lint: clean ({len(collect_files(args.root))} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
