#ifndef BLAZEIT_TRACK_IOU_TRACKER_H_
#define BLAZEIT_TRACK_IOU_TRACKER_H_

#include <cstdint>
#include <vector>

#include "detect/detection.h"

namespace blazeit {

/// Motion-IOU entity resolution (Section 9): objects in consecutive frames
/// are the same entity if their boxes overlap with IOU >= 0.7 and agree on
/// class. Greedy highest-IOU matching; unmatched detections open new
/// tracks. If an object leaves and re-enters the scene it receives a new
/// trackid, as the FrameQL schema specifies.
class IouTracker {
 public:
  explicit IouTracker(double iou_threshold = 0.7)
      : iou_threshold_(iou_threshold) {}

  /// Processes the next frame's detections (frames must be fed in temporal
  /// order); returns the track id assigned to each detection, parallel to
  /// the input.
  std::vector<int64_t> Update(const std::vector<Detection>& detections);

  /// Forgets all open tracks (e.g. when seeking to a different part of the
  /// video, since IOU association is only meaningful across consecutive
  /// frames).
  void Reset();

  int64_t next_track_id() const { return next_track_id_; }

 private:
  struct Track {
    int64_t id;
    int class_id;
    Rect rect;
  };

  double iou_threshold_;
  int64_t next_track_id_ = 1;
  std::vector<Track> open_tracks_;
};

}  // namespace blazeit

#endif  // BLAZEIT_TRACK_IOU_TRACKER_H_
