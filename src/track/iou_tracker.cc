#include "track/iou_tracker.h"

#include <algorithm>

namespace blazeit {

std::vector<int64_t> IouTracker::Update(
    const std::vector<Detection>& detections) {
  const size_t n = detections.size();
  std::vector<int64_t> assigned(n, 0);
  std::vector<bool> det_matched(n, false);
  std::vector<bool> track_matched(open_tracks_.size(), false);

  // Greedy matching: repeatedly take the highest-IOU (track, detection)
  // pair above the threshold among unmatched ones.
  struct Candidate {
    double iou;
    size_t track;
    size_t det;
  };
  std::vector<Candidate> candidates;
  for (size_t ti = 0; ti < open_tracks_.size(); ++ti) {
    for (size_t di = 0; di < n; ++di) {
      if (open_tracks_[ti].class_id != detections[di].class_id) continue;
      double iou = Iou(open_tracks_[ti].rect, detections[di].rect);
      if (iou >= iou_threshold_) candidates.push_back({iou, ti, di});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.iou > b.iou;
            });

  std::vector<Track> next_tracks;
  for (const Candidate& c : candidates) {
    if (track_matched[c.track] || det_matched[c.det]) continue;
    track_matched[c.track] = true;
    det_matched[c.det] = true;
    assigned[c.det] = open_tracks_[c.track].id;
    next_tracks.push_back({open_tracks_[c.track].id,
                           detections[c.det].class_id,
                           detections[c.det].rect});
  }
  // Unmatched detections open new tracks.
  for (size_t di = 0; di < n; ++di) {
    if (det_matched[di]) continue;
    int64_t id = next_track_id_++;
    assigned[di] = id;
    next_tracks.push_back({id, detections[di].class_id, detections[di].rect});
  }
  // Unmatched old tracks are dropped: the object left the scene (and will
  // get a fresh id if it re-enters, per the FrameQL schema).
  open_tracks_ = std::move(next_tracks);
  return assigned;
}

void IouTracker::Reset() { open_tracks_.clear(); }

}  // namespace blazeit
