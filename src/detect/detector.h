#ifndef BLAZEIT_DETECT_DETECTOR_H_
#define BLAZEIT_DETECT_DETECTOR_H_

#include <string>
#include <vector>

#include "detect/detection.h"
#include "util/random.h"
#include "video/synthetic_video.h"

namespace blazeit {

/// Interface for the full object detection method (the configurable
/// reference method of Section 3; Mask R-CNN / FGFA in the paper).
/// Implementations must be deterministic per (video, frame) so repeated
/// calls and pre-computation give identical results. Cost accounting is
/// done by callers through CostMeter — exactly mirroring the paper's
/// "runtime = number of detection calls x per-call cost" methodology.
class ObjectDetector {
 public:
  virtual ~ObjectDetector() = default;

  /// Runs detection on one frame and returns all detections (unthresholded;
  /// callers apply the per-stream score threshold from Table 3).
  virtual std::vector<Detection> Detect(const SyntheticVideo& video,
                                        int64_t frame) const = 0;

  virtual std::string name() const = 0;

  /// Content fingerprint of everything that shapes this detector's output
  /// besides the (video, frame) arguments — the persistent detection store
  /// keys cached detections on (video fingerprint, detector fingerprint,
  /// frame). The default covers detectors whose behaviour is fully
  /// determined by their name; detectors with tunable noise/config must
  /// override and mix every parameter in.
  virtual uint64_t ParamsFingerprint() const {
    return HashString(name());
  }
};

}  // namespace blazeit

#endif  // BLAZEIT_DETECT_DETECTOR_H_
