#ifndef BLAZEIT_DETECT_DETECTION_H_
#define BLAZEIT_DETECT_DETECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "video/geometry.h"
#include "video/scene_model.h"

namespace blazeit {

/// One detected object in one frame: the unit the FrameQL schema is built
/// from (class, mask, features; trackid is added by entity resolution).
struct Detection {
  int class_id = kCar;
  Rect rect;
  /// Detector confidence in [0, 1]; thresholded per stream (Table 3).
  double score = 0.0;
  /// Optional feature vector from the detection head (FrameQL `features`
  /// field); mean box color in this implementation.
  std::vector<float> features;

  std::string ToString() const;
};

/// Number of detections of `class_id` at or above the score threshold.
int CountClass(const std::vector<Detection>& detections, int class_id,
               double score_threshold);

/// Detections of `class_id` at or above the threshold, in input order.
std::vector<Detection> FilterClass(const std::vector<Detection>& detections,
                                   int class_id, double score_threshold);

}  // namespace blazeit

#endif  // BLAZEIT_DETECT_DETECTION_H_
