#include "detect/simulated_detector.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace blazeit {

uint64_t SimulatedDetector::ParamsFingerprint() const {
  // Every DetectorNoiseConfig knob plus fill_features changes the output
  // stream, so all of them are part of the cache identity.
  return Fingerprint()
      .Mix(name_)
      .Mix(config_.miss_rate_small)
      .Mix(config_.reliable_area)
      .Mix(config_.box_jitter)
      .Mix(config_.false_positive_rate)
      .Mix(config_.false_positive_max_score)
      .Mix(config_.score_noise)
      .Mix(config_.salt)
      .Mix(fill_features_)
      .value();
}

std::vector<Detection> SimulatedDetector::Detect(const SyntheticVideo& video,
                                                 int64_t frame) const {
  std::vector<Detection> out;
  // Determinism: the RNG depends only on (video seed, frame, detector salt),
  // never on call order, so Detect is a pure function.
  Rng rng(HashCombine(HashCombine(video.seed(), config_.salt),
                      static_cast<uint64_t>(frame)));
  Image rendered;  // lazily rendered only if features are requested

  for (const GroundTruthObject& obj : video.GroundTruth(frame)) {
    double area = obj.rect.Area();
    double miss_prob =
        config_.miss_rate_small * std::exp(-area / config_.reliable_area);
    if (rng.Bernoulli(miss_prob)) continue;

    Detection det;
    det.class_id = obj.class_id;
    det.rect.xmin = obj.rect.xmin + rng.Normal(0, config_.box_jitter);
    det.rect.ymin = obj.rect.ymin + rng.Normal(0, config_.box_jitter);
    det.rect.xmax = obj.rect.xmax + rng.Normal(0, config_.box_jitter);
    det.rect.ymax = obj.rect.ymax + rng.Normal(0, config_.box_jitter);
    det.rect = det.rect.ClampToUnit();
    if (det.rect.Empty()) continue;
    // Confidence: large, clearly visible objects score high.
    double base_score = 0.95 - 0.5 * miss_prob;
    det.score = std::clamp(
        base_score + rng.Normal(0, config_.score_noise), 0.0, 1.0);
    if (fill_features_) {
      if (rendered.Empty()) rendered = video.RenderFrame(frame, 32, 32);
      det.features = {
          static_cast<float>(rendered.MeanChannelInRect(0, det.rect)),
          static_cast<float>(rendered.MeanChannelInRect(1, det.rect)),
          static_cast<float>(rendered.MeanChannelInRect(2, det.rect))};
    }
    out.push_back(det);
  }

  // Spurious detections (shadows, reflections): low-score boxes of random
  // classes; per-stream thresholds remove most of them.
  int spurious = rng.Poisson(config_.false_positive_rate);
  for (int i = 0; i < spurious; ++i) {
    Detection det;
    det.class_id = static_cast<int>(rng.UniformInt(0, kNumClasses - 1));
    double cx = rng.Uniform(0.05, 0.95);
    double cy = rng.Uniform(0.05, 0.95);
    double hw = rng.Uniform(0.01, 0.08);
    double hh = rng.Uniform(0.01, 0.08);
    det.rect = Rect{cx - hw, cy - hh, cx + hw, cy + hh}.ClampToUnit();
    det.score = rng.Uniform(0.05, config_.false_positive_max_score);
    out.push_back(det);
  }
  return out;
}

}  // namespace blazeit
