#include "detect/cached_detector.h"

#include "util/random.h"

namespace blazeit {

std::vector<Detection> CachedDetector::Detect(const SyntheticVideo& video,
                                              int64_t frame) const {
  uint64_t key = HashCombine(video.seed(), static_cast<uint64_t>(frame));
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  std::vector<Detection> dets = inner_->Detect(video, frame);
  cache_.emplace(key, dets);
  return dets;
}

}  // namespace blazeit
