#include "detect/cached_detector.h"

namespace blazeit {

std::vector<Detection> CachedDetector::Detect(const SyntheticVideo& video,
                                              int64_t frame) const {
  DetectionCacheKey key{video.fingerprint(), frame};
  {
    util::MutexLock lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  // Compute outside the lock: the inner detector is deterministic, so two
  // racing computations of one frame produce identical vectors and
  // whichever insert lands first wins harmlessly.
  std::vector<Detection> dets = inner_->Detect(video, frame);
  util::MutexLock lock(mu_);
  cache_.emplace(key, dets);
  return dets;
}

}  // namespace blazeit
