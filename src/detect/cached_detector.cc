#include "detect/cached_detector.h"

namespace blazeit {

std::vector<Detection> CachedDetector::Detect(const SyntheticVideo& video,
                                              int64_t frame) const {
  DetectionCacheKey key{video.fingerprint(), frame};
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  std::vector<Detection> dets = inner_->Detect(video, frame);
  cache_.emplace(key, dets);
  return dets;
}

}  // namespace blazeit
