#ifndef BLAZEIT_DETECT_CACHED_DETECTOR_H_
#define BLAZEIT_DETECT_CACHED_DETECTOR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "detect/detector.h"

namespace blazeit {

/// Memoizing wrapper around an ObjectDetector. The paper pre-computed all
/// object detections once and replayed them when evaluating samplers
/// (Section 10.2: "we ran the object detection method once and recorded
/// the results"); this wrapper is the equivalent. Simulated cost is still
/// charged per *logical* call by the executors, so caching affects
/// wall-clock only, never the reported runtimes.
class CachedDetector : public ObjectDetector {
 public:
  /// Does not take ownership; `inner` must outlive this object.
  explicit CachedDetector(const ObjectDetector* inner) : inner_(inner) {}

  std::vector<Detection> Detect(const SyntheticVideo& video,
                                int64_t frame) const override;

  std::string name() const override { return inner_->name() + "+cache"; }

  size_t cache_size() const { return cache_.size(); }
  void ClearCache() { cache_.clear(); }

 private:
  const ObjectDetector* inner_;
  /// Key mixes the video seed and the frame, so one cache instance can
  /// serve multiple days of the same stream.
  mutable std::unordered_map<uint64_t, std::vector<Detection>> cache_;
};

}  // namespace blazeit

#endif  // BLAZEIT_DETECT_CACHED_DETECTOR_H_
