#ifndef BLAZEIT_DETECT_CACHED_DETECTOR_H_
#define BLAZEIT_DETECT_CACHED_DETECTOR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "detect/detector.h"
#include "util/mutex.h"

namespace blazeit {

/// Composite cache key for memoized detections: the full stream-day
/// fingerprint plus the frame. The pre-fix key hand-mixed (seed, frame)
/// into one uint64_t, which collides for *any* two days sharing a seed —
/// and the catalog gives every stream's train day the same seed — so one
/// shared cache would silently replay stream A's detections for stream B.
struct DetectionCacheKey {
  uint64_t stream = 0;  // SyntheticVideo::fingerprint()
  int64_t frame = 0;

  bool operator==(const DetectionCacheKey& other) const {
    return stream == other.stream && frame == other.frame;
  }
};

struct DetectionCacheKeyHash {
  size_t operator()(const DetectionCacheKey& key) const {
    return static_cast<size_t>(
        HashCombine(key.stream, static_cast<uint64_t>(key.frame)));
  }
};

/// Memoizing wrapper around an ObjectDetector. The paper pre-computed all
/// object detections once and replayed them when evaluating samplers
/// (Section 10.2: "we ran the object detection method once and recorded
/// the results"); this wrapper is the equivalent. Simulated cost is still
/// charged per *logical* call by the executors, so caching affects
/// wall-clock only, never the reported runtimes.
///
/// Thread-safe: parallel frame scans (core/selection's predicate sweep)
/// call Detect concurrently. The inner detector is deterministic per
/// (video, frame), so a racing double-compute of the same frame inserts
/// identical content; the map itself is mutex-guarded, with the inner
/// compute outside the lock.
class CachedDetector : public ObjectDetector {
 public:
  /// Does not take ownership; `inner` must outlive this object.
  explicit CachedDetector(const ObjectDetector* inner) : inner_(inner) {}

  std::vector<Detection> Detect(const SyntheticVideo& video,
                                int64_t frame) const override;

  std::string name() const override { return inner_->name() + "+cache"; }

  uint64_t ParamsFingerprint() const override {
    return inner_->ParamsFingerprint();
  }

  size_t cache_size() const BLAZEIT_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return cache_.size();
  }
  void ClearCache() BLAZEIT_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    cache_.clear();
  }

 private:
  const ObjectDetector* inner_;
  mutable util::Mutex mu_;
  mutable std::unordered_map<DetectionCacheKey, std::vector<Detection>,
                             DetectionCacheKeyHash>
      cache_ BLAZEIT_GUARDED_BY(mu_);
};

}  // namespace blazeit

#endif  // BLAZEIT_DETECT_CACHED_DETECTOR_H_
