#ifndef BLAZEIT_DETECT_SIMULATED_DETECTOR_H_
#define BLAZEIT_DETECT_SIMULATED_DETECTOR_H_

#include <string>
#include <vector>

#include "detect/detector.h"

namespace blazeit {

/// Noise model for the simulated detector. Defaults reflect the behaviour
/// the paper reports for modern detectors: reliable on large objects,
/// degraded on small ones (Section 10.1 "Data preprocessing"), with
/// well-calibrated scores once the per-stream threshold is applied.
struct DetectorNoiseConfig {
  /// Miss probability for a vanishingly small object; decays with area.
  double miss_rate_small = 0.35;
  /// Normalized box area at which the miss rate has decayed by 1/e.
  double reliable_area = 0.004;
  /// Standard deviation of box-coordinate jitter (normalized units). Kept
  /// small so consecutive-frame IOU stays above the tracker's 0.7 cutoff
  /// for steadily moving objects, as with real modern detectors.
  double box_jitter = 0.003;
  /// Expected number of spurious detections per frame.
  double false_positive_rate = 0.02;
  /// Score of spurious detections is drawn below this value, so the
  /// per-stream thresholds of Table 3 remove most of them.
  double false_positive_max_score = 0.45;
  /// Standard deviation of the confidence-score noise.
  double score_noise = 0.08;
  /// Salt mixed into the per-frame RNG so different detector instances
  /// (e.g. "mask-rcnn" vs "fgfa") disagree in detail.
  uint64_t salt = 0x5eed;
};

/// Simulated full object detector: reads the scene ground truth and
/// perturbs it per DetectorNoiseConfig. Deterministic per (video seed,
/// frame). Stands in for Mask R-CNN / FGFA; see DESIGN.md substitutions.
class SimulatedDetector : public ObjectDetector {
 public:
  explicit SimulatedDetector(DetectorNoiseConfig config = {},
                             std::string name = "simulated-mask-rcnn")
      : config_(config), name_(std::move(name)) {}

  std::vector<Detection> Detect(const SyntheticVideo& video,
                                int64_t frame) const override;

  std::string name() const override { return name_; }

  uint64_t ParamsFingerprint() const override;

  const DetectorNoiseConfig& noise_config() const { return config_; }

  /// Fill the `features` field of detections (mean box color from the
  /// rendered frame). Off by default: rendering costs real CPU.
  void set_fill_features(bool fill) { fill_features_ = fill; }

 private:
  DetectorNoiseConfig config_;
  std::string name_;
  bool fill_features_ = false;
};

}  // namespace blazeit

#endif  // BLAZEIT_DETECT_SIMULATED_DETECTOR_H_
