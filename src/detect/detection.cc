#include "detect/detection.h"

#include "util/string_util.h"

namespace blazeit {

std::string Detection::ToString() const {
  return StrFormat("%s score=%.2f %s", ClassName(class_id), score,
                   rect.ToString().c_str());
}

int CountClass(const std::vector<Detection>& detections, int class_id,
               double score_threshold) {
  int count = 0;
  for (const Detection& det : detections) {
    if (det.class_id == class_id && det.score >= score_threshold) ++count;
  }
  return count;
}

std::vector<Detection> FilterClass(const std::vector<Detection>& detections,
                                   int class_id, double score_threshold) {
  std::vector<Detection> out;
  for (const Detection& det : detections) {
    if (det.class_id == class_id && det.score >= score_threshold) {
      out.push_back(det);
    }
  }
  return out;
}

}  // namespace blazeit
