#ifndef BLAZEIT_STORAGE_STORE_ARTIFACT_CACHE_H_
#define BLAZEIT_STORAGE_STORE_ARTIFACT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "storage/detection_store.h"
#include "util/artifact_cache.h"

namespace blazeit {

/// ArtifactCache backed by a DetectionStore: per-frame NN outputs, filter
/// scores, and trained-weight blobs become float/double-payload records in
/// the same versioned, CRC-checked segment format as detections. Blobs use
/// a sentinel frame id (no real frame is negative).
///
/// Thread-safe for concurrent Get/Put: the store carries its own locks
/// and the hit/miss counters are atomic.
class StoreArtifactCache : public ArtifactCache {
 public:
  /// Not owned; must outlive this object.
  explicit StoreArtifactCache(DetectionStore* store) : store_(store) {}

  bool GetFrameFloats(uint64_t ns, int64_t frame,
                      std::vector<float>* out) override;
  void PutFrameFloats(uint64_t ns, int64_t frame,
                      const std::vector<float>& values) override;
  bool GetFrameDoubles(uint64_t ns, int64_t frame,
                       std::vector<double>* out) override;
  void PutFrameDoubles(uint64_t ns, int64_t frame,
                       const std::vector<double>& values) override;
  bool GetBlob(uint64_t ns, std::vector<float>* out) override;
  void PutBlob(uint64_t ns, const std::vector<float>& values) override;

  int64_t hits() const { return hits_.load(); }
  int64_t misses() const { return misses_.load(); }

 private:
  static constexpr int64_t kBlobFrame = -1;

  DetectionStore* store_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
};

}  // namespace blazeit

#endif  // BLAZEIT_STORAGE_STORE_ARTIFACT_CACHE_H_
