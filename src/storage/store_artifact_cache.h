#ifndef BLAZEIT_STORAGE_STORE_ARTIFACT_CACHE_H_
#define BLAZEIT_STORAGE_STORE_ARTIFACT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "storage/detection_store.h"
#include "util/artifact_cache.h"
#include "util/mutex.h"

namespace blazeit {

/// ArtifactCache backed by a DetectionStore: per-frame NN outputs, filter
/// scores, and trained-weight blobs become float/double-payload records in
/// the same versioned, CRC-checked segment format as detections. Blobs use
/// a sentinel frame id (no real frame is negative).
///
/// Thread-safe for concurrent Get/Put: the store carries its own locks,
/// the hit/miss counters are atomic, and the corrupt-record bookkeeping
/// is mutex-guarded.
///
/// Self-healing: a record that exists but fails to decode (CRC-valid yet
/// semantically malformed) is remembered, and the caller's subsequent Put
/// of the recomputed value is routed through DetectionStore::Repair so
/// the bad record is replaced in place instead of warning on every run.
class StoreArtifactCache : public ArtifactCache {
 public:
  /// Not owned; must outlive this object.
  explicit StoreArtifactCache(DetectionStore* store) : store_(store) {}

  bool GetFrameFloats(uint64_t ns, int64_t frame,
                      std::vector<float>* out) override;
  void PutFrameFloats(uint64_t ns, int64_t frame,
                      const std::vector<float>& values) override;
  bool GetFrameDoubles(uint64_t ns, int64_t frame,
                       std::vector<double>* out) override;
  void PutFrameDoubles(uint64_t ns, int64_t frame,
                       const std::vector<double>& values) override;
  bool GetBlob(uint64_t ns, std::vector<float>* out) override;
  void PutBlob(uint64_t ns, const std::vector<float>& values) override;

  int64_t hits() const { return hits_.load(); }
  int64_t misses() const { return misses_.load(); }

  /// Records whose stored payload failed to decode and were repaired in
  /// place by a later Put (diagnostics + tests).
  int64_t repairs() const { return repairs_.load(); }

 private:
  static constexpr int64_t kBlobFrame = -1;

  /// Marks (salted ns, frame) as corrupt-on-disk / consumes the mark.
  void MarkCorrupt(uint64_t salted_ns, int64_t frame)
      BLAZEIT_EXCLUDES(corrupt_mu_);
  bool ConsumeCorrupt(uint64_t salted_ns, int64_t frame)
      BLAZEIT_EXCLUDES(corrupt_mu_);
  /// Shared write path: repairs the record in place when it was marked
  /// corrupt by an earlier failed read, plain-puts otherwise. `kind` only
  /// labels the log line.
  void RepairOrPut(uint64_t salted_ns, int64_t frame, std::string payload,
                   const char* kind);

  DetectionStore* store_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> repairs_{0};
  util::Mutex corrupt_mu_;
  std::set<std::pair<uint64_t, int64_t>> corrupt_ BLAZEIT_GUARDED_BY(corrupt_mu_);
};

}  // namespace blazeit

#endif  // BLAZEIT_STORAGE_STORE_ARTIFACT_CACHE_H_
