#ifndef BLAZEIT_STORAGE_DETECTION_STORE_H_
#define BLAZEIT_STORAGE_DETECTION_STORE_H_

#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "detect/detection.h"
#include "storage/record_format.h"
#include "util/mutex.h"
#include "util/status.h"

namespace blazeit {

/// Writes one segment file: header first, then appended records, buffered
/// through the underlying ofstream. The store writes segments to a
/// temporary name and renames them into place on Flush, so concurrent
/// processes sharing a store directory never observe partial files.
class StoreWriter {
 public:
  static Result<std::unique_ptr<StoreWriter>> Create(
      const std::string& path, uint64_t record_namespace);

  Status Append(int64_t frame, const std::string& payload);
  /// Flushes buffers and closes the file; no further Appends.
  Status Close();

  const std::string& path() const { return path_; }
  int64_t records_written() const { return records_written_; }
  /// (frame, file offset) of every appended record, in append order — lets
  /// the store index a freshly written segment without re-reading it.
  const std::vector<std::pair<int64_t, uint64_t>>& record_offsets() const {
    return record_offsets_;
  }

 private:
  StoreWriter(std::string path, std::ofstream out)
      : path_(std::move(path)), out_(std::move(out)) {}

  std::string path_;
  std::ofstream out_;
  std::string scratch_;
  int64_t records_written_ = 0;
  uint64_t bytes_written_ = 0;
  std::vector<std::pair<int64_t, uint64_t>> record_offsets_;
};

/// Reads one segment file. Open() validates the header and CRC-scans every
/// record (a corrupt, truncated, stale, or foreign file is rejected with a
/// descriptive Status), building the frame -> offset index that backs
/// random access.
class StoreReader {
 public:
  /// `expected_namespace`: when nonzero, a header whose namespace differs
  /// is rejected (a renamed/stale file). `validate_records` = false skips
  /// the record scan (index() stays empty) — only for segments this
  /// process just wrote and checksummed itself.
  static Result<std::unique_ptr<StoreReader>> Open(
      const std::string& path, uint64_t expected_namespace = 0,
      bool validate_records = true);

  uint64_t record_namespace() const { return header_.record_namespace; }
  const std::string& path() const { return path_; }

  /// Frames present in this segment and the offset of each record.
  const std::unordered_map<int64_t, uint64_t>& index() const {
    return index_;
  }

  /// Moves the index out (the store folds it into its own per-namespace
  /// map; keeping both resident would double index memory).
  std::unordered_map<int64_t, uint64_t> ReleaseIndex() {
    return std::move(index_);
  }

  /// Reads and re-verifies the record at `offset` (as returned in index()).
  /// Thread-safe: the shared file handle (seek + read is a stateful pair)
  /// is mutex-guarded, so concurrent readers of one segment serialize on
  /// the I/O while the store's surrounding index lookups stay shared.
  Result<std::string> ReadPayloadAt(uint64_t offset) BLAZEIT_EXCLUDES(io_mu_);

 private:
  StoreReader(std::string path, std::ifstream in)
      : path_(std::move(path)), in_(std::move(in)) {}

  /// Construction-time only (called by Open under io_mu_, before the
  /// reader is shared).
  Status ScanAndIndex() BLAZEIT_REQUIRES(io_mu_);

  std::string path_;
  /// Guards in_: ReadPayloadAt's reopen/seek/read sequence must be atomic
  /// per segment under concurrent GetRaw calls.
  util::Mutex io_mu_;
  /// Closed after ScanAndIndex (stores accumulate segments without bound,
  /// and holding one fd per segment forever would hit EMFILE on long-lived
  /// stores); ReadPayloadAt reopens on first use and then keeps it open,
  /// so only actively-read segments cost a descriptor.
  std::ifstream in_ BLAZEIT_GUARDED_BY(io_mu_);
  SegmentHeader header_;
  std::unordered_map<int64_t, uint64_t> index_;
};

/// Disk-resident cache of expensive per-frame artifacts, replacing the
/// process-lifetime detector memoization with state that survives runs
/// (the paper's "run the detector once and record the results", Section
/// 10.2, made persistent). Records live in *namespaces* — a namespace is a
/// fingerprint identifying how its payloads were produced (stream day ×
/// detector for detection rows; trained NN × day for per-frame NN outputs)
/// — and each (namespace, frame) maps to one payload.
///
/// On disk a store is a directory of immutable segment files named
/// `ns-<namespace hex>-<nonce>.seg`. Open() indexes every segment; Put()
/// buffers in memory; Flush() writes one new segment per dirty namespace
/// via temp-file + rename, so concurrent processes can share a store
/// directory (each flush adds segments, never mutates existing ones).
/// Duplicate frames across segments are benign — payloads are
/// deterministic functions of the namespace and frame.
///
/// Logical query cost is charged by the executors per detector/NN *call*,
/// so replaying from the store changes wall-clock only, never the
/// simulated runtimes (asserted end-to-end by store_invariance_test).
///
/// Thread-safety (the exec-pool lock audit): index lookups take a shared
/// lock (Contains / GetRaw / Scan / RecordCount — the read-mostly hot
/// path of parallel frame scans), mutations take it exclusively (PutRaw /
/// Flush / Compact), and the per-segment file handle behind a read is
/// guarded inside StoreReader. Callers need no external locking.
class DetectionStore {
 public:
  /// Opens (creating the directory if needed) and indexes every segment.
  /// Any invalid segment fails the open with that segment's error.
  static Result<std::unique_ptr<DetectionStore>> Open(
      const std::string& dir);

  ~DetectionStore();

  DetectionStore(const DetectionStore&) = delete;
  DetectionStore& operator=(const DetectionStore&) = delete;

  bool Contains(uint64_t ns, int64_t frame) const;

  /// Raw payload access; NotFound when the record is absent.
  Result<std::string> GetRaw(uint64_t ns, int64_t frame);
  Status PutRaw(uint64_t ns, int64_t frame, std::string payload);

  /// Typed wrappers for the two payload codecs.
  Result<std::vector<Detection>> GetDetections(uint64_t ns, int64_t frame);
  Status PutDetections(uint64_t ns, int64_t frame,
                       const std::vector<Detection>& detections);
  Result<std::vector<float>> GetFloats(uint64_t ns, int64_t frame);
  Status PutFloats(uint64_t ns, int64_t frame,
                   const std::vector<float>& values);
  Result<std::vector<double>> GetDoubles(uint64_t ns, int64_t frame);
  Status PutDoubles(uint64_t ns, int64_t frame,
                    const std::vector<double>& values);

  /// Streams every record of a namespace in ascending frame order.
  Status Scan(uint64_t ns,
              const std::function<Status(int64_t frame,
                                         const std::string& payload)>& fn);

  /// Writes all pending records out as new segments. Idempotent.
  Status Flush();

  /// What Compact did, for reporting (storecli compact prints this).
  struct CompactionStats {
    int64_t namespaces_compacted = 0;
    int64_t segments_before = 0;
    int64_t segments_after = 0;
    int64_t records_kept = 0;
    /// First-write-wins-shadowed duplicate records dropped from disk.
    int64_t duplicates_dropped = 0;
  };

  /// Rewrites every namespace that has multiple segments or shadowed
  /// duplicate records into one fresh segment holding only the winning
  /// record per frame, then deletes the old segments. Pending records are
  /// flushed first. Record resolution is unchanged: the new segment
  /// contains exactly the payloads GetRaw resolved before (first segment
  /// in sorted name order wins), so a store reads identically before and
  /// after — and a crash between writing the new segment and removing the
  /// old ones only leaves benign duplicates of the same winners.
  Result<CompactionStats> Compact();

  /// Durably replaces the payload of one record, overriding first-write-
  /// wins — the healing path for a CRC-valid but semantically malformed
  /// record (a writer bug or key collision), which a plain Put cannot fix
  /// because the indexed copy keeps winning. The namespace is rewritten in
  /// place into one fresh segment (named to sort before the segments it
  /// replaces, so the repaired record wins even if a crash strands an old
  /// segment), and reads serve the new payload immediately. Repairing an
  /// absent record is a plain Put. The rewrite also heals the rest of the
  /// namespace in the same pass: any other record no engine codec decodes
  /// is dropped (logged) rather than copied, so mass corruption costs one
  /// rewrite, not one per poisoned record read.
  Status Repair(uint64_t ns, int64_t frame, const std::string& payload);

  /// What the store-wide Repair() scan did (storecli repair prints this).
  struct RepairStats {
    int64_t namespaces_scanned = 0;
    int64_t records_scanned = 0;
    /// Records whose CRC was fine but whose payload no engine codec
    /// decodes; dropped so the next run recomputes and re-stores them
    /// once instead of warning on every run.
    int64_t malformed_dropped = 0;
    int64_t namespaces_rewritten = 0;
  };

  /// Builds (or rebuilds) the per-segment zone-map sketches of a detection
  /// namespace (see storage/segment_sketch.h): pending records are flushed
  /// first, every payload of `base_ns` is decoded as detections (an error
  /// if the namespace holds any other payload kind), and the sketch
  /// records land under SketchNamespace(base_ns) via the repair-named
  /// rewrite path — so a fresh build always sorts before any stranded
  /// older sketch segment. Once built, the namespace stays *indexed*: the
  /// store refreshes its sketches automatically on every later Flush of
  /// new base records and after every Repair that rewrites the base
  /// payloads (Compact preserves the resolved view, so sketches survive it
  /// unchanged).
  Status BuildSketches(uint64_t base_ns);

  /// Removes the sketches of `base_ns` (the namespace stops being indexed
  /// and stops refreshing). No-op when none exist.
  Status DropSketches(uint64_t base_ns);

  /// One sketched namespace, for storecli sketch ls/verify.
  struct SketchInfo {
    uint64_t base_ns = 0;
    uint64_t sketch_ns = 0;
    int64_t blocks = 0;
    int64_t base_records_at_build = 0;
    int64_t base_records_now = 0;
    /// Record counts match: SketchIndex::Load would accept this index.
    bool current = false;
  };

  /// Every sketch namespace in the store with its staleness state.
  Result<std::vector<SketchInfo>> ListSketches();

  /// Store-wide integrity repair: reads every record (pending records are
  /// flushed first), validates that its payload decodes under one of the
  /// engine's payload codecs (detections / floats / doubles), and rewrites
  /// every namespace holding undecodable records without them. Dropping
  /// turns a poisoned record into a plain miss, which the read-through
  /// caches heal by recomputing once. Limitations: (a) a malformed
  /// payload whose byte length still matches a float/double vector is
  /// indistinguishable from data and is kept; (b) unlike a *replaced*
  /// record (which keeps winning by segment-name order), a *dropped*
  /// record can resurrect if a crash or failed unlink strands the old
  /// segment — rerunning repair drops it again, and the in-process
  /// repair path (PersistentCachedDetector / StoreArtifactCache calling
  /// the targeted Repair above) heals either way as soon as the record
  /// is next read.
  Result<RepairStats> Repair();

  /// Per-namespace inventory for `storecli stats`: resolved record count
  /// (disk winners + pending-only records, i.e. what RecordCount reports),
  /// segment/pending/shadowed breakdown, and the repair generation.
  struct NamespaceStats {
    uint64_t ns = 0;
    int64_t segments = 0;
    int64_t records = 0;
    int64_t pending = 0;
    int64_t shadowed = 0;
    uint64_t repair_generation = 0;
  };

  /// One entry per namespace, in ascending namespace order.
  std::vector<NamespaceStats> PerNamespaceStats() const;

  const std::string& dir() const { return dir_; }
  std::vector<uint64_t> Namespaces() const;
  /// Records on disk + pending, across all namespaces.
  int64_t TotalRecords() const;
  /// Records on disk + pending in one namespace (index lookups only; no
  /// payload reads).
  int64_t RecordCount(uint64_t ns) const;
  int64_t pending_records() const BLAZEIT_EXCLUDES(mu_) {
    util::ReaderLock lock(mu_);
    return pending_records_;
  }
  /// On-disk duplicate records shadowed by first-write-wins, across all
  /// namespaces — what Compact would drop.
  int64_t ShadowedRecords() const;

 private:
  struct Shard {
    /// One reader per on-disk segment of this namespace.
    std::vector<std::unique_ptr<StoreReader>> segments;
    /// frame -> (segment index, offset); the first segment in sorted name
    /// order wins on duplicates (matching PutRaw's first-write-wins), so
    /// duplicate frames resolve identically across opens and processes.
    std::unordered_map<int64_t, std::pair<size_t, uint64_t>> disk_index;
    /// Records accepted by Put but not yet flushed (frame-ordered so
    /// segments are written sorted).
    std::map<int64_t, std::string> pending;
    /// On-disk records shadowed by an earlier segment's record for the
    /// same frame (counted while folding indexes at Open/Flush); the
    /// duplicate debt Compact clears.
    int64_t shadowed = 0;
    /// Highest repair generation seen in this namespace's segment names
    /// (restored at Open); the next repair uses generation + 1 so newer
    /// repairs always sort before stranded older ones.
    uint64_t repair_generation = 0;
    /// Superseded segment files whose unlink failed (tolerated, warned).
    /// Tracked so every later rewrite/compaction of the namespace retries
    /// the removal — an untracked strand could otherwise outlive a later
    /// Compact and, sorting first, resurrect stale records on reopen.
    std::vector<std::string> stranded;
  };

  explicit DetectionStore(std::string dir) : dir_(std::move(dir)) {}

  std::string NewSegmentPath(uint64_t ns) const;
  /// Names a repair segment so it sorts before every regular segment of
  /// the namespace AND before every earlier repair (repaired records must
  /// win first-write-wins even if a crash leaves an old segment behind).
  /// Ordering comes from a monotonic per-namespace `generation` persisted
  /// in the name — not the wall clock, which can step backwards.
  std::string RepairSegmentPath(uint64_t ns, uint64_t generation) const;
  /// Flush body; caller holds mu_ exclusively. Writes one segment per
  /// dirty namespace, then refreshes the sketches of every dirty namespace
  /// that is indexed (has a sketch shard).
  Status FlushLocked() BLAZEIT_REQUIRES(mu_);
  /// Writes one shard's pending records out as a new segment; caller holds
  /// mu_ exclusively.
  Status FlushShardLocked(uint64_t ns, Shard* shard) BLAZEIT_REQUIRES(mu_);
  /// Rebuilds SketchNamespace(base_ns) from the base shard's resolved
  /// view; caller holds mu_ exclusively and must not be iterating shards_
  /// unless the sketch shard already exists (the rebuild inserts it).
  Status RebuildSketchesLocked(uint64_t base_ns) BLAZEIT_REQUIRES(mu_);
  /// What FlushLocked observed about a dirty indexed namespace *before*
  /// flushing it, deciding whether the sketch refresh can be incremental.
  struct SketchRefreshHint {
    /// Resolved record count at the last sketch build (== the pre-flush
    /// disk index size; sketches are only ever built with pending empty).
    int64_t prior_count = 0;
    /// Highest frame on disk pre-flush; -1 when the namespace was empty.
    int64_t prior_max = -1;
    /// Every pending record appended strictly past prior_max.
    bool append_only = false;
  };
  /// Refreshes SketchNamespace(base_ns) after a flush. When `hint` shows
  /// a pure append onto a current sketch, only blocks at/after the old
  /// tail block are rebuilt — each sketch block is a pure function of its
  /// own block's records, so the untouched prefix is copied forward
  /// byte-for-byte (bit-identical to a full rebuild, regression-tested in
  /// tests/storage_test.cc). Anything surprising (stale meta, overwrite,
  /// empty base) falls back to RebuildSketchesLocked. Caller holds mu_
  /// exclusively.
  Status RefreshSketchesLocked(uint64_t base_ns, const SketchRefreshHint* hint)
      BLAZEIT_REQUIRES(mu_);
  /// Replaces the full record set of a namespace (first-write-wins cannot
  /// update records in place) through the repair-named rewrite path, so
  /// the replacement sorts before anything it supersedes even when an old
  /// segment's unlink fails. Caller holds mu_ exclusively.
  Status ReplaceNamespaceLocked(uint64_t ns,
                                std::map<int64_t, std::string> records)
      BLAZEIT_REQUIRES(mu_);
  /// Rewrites one namespace into a single fresh segment holding the
  /// resolved view (pending overrides disk, mirroring GetRaw's read
  /// order), then removes the old segments. With `validate_payloads`,
  /// on-disk records no engine codec decodes are dropped instead of
  /// copied (the one-pass healing of the targeted Repair; the store-wide
  /// Repair() passes false because its scan already validated). Caller
  /// holds mu_ exclusively.
  Status RewriteShardLocked(uint64_t ns, Shard* shard, bool validate_payloads)
      BLAZEIT_REQUIRES(mu_);

  std::string dir_;
  /// Shared for index lookups, exclusive for mutation; see the class
  /// comment.
  mutable util::SharedMutex mu_;
  std::map<uint64_t, Shard> shards_ BLAZEIT_GUARDED_BY(mu_);
  int64_t pending_records_ BLAZEIT_GUARDED_BY(mu_) = 0;
  uint64_t flush_counter_ BLAZEIT_GUARDED_BY(mu_) = 0;
};

}  // namespace blazeit

#endif  // BLAZEIT_STORAGE_DETECTION_STORE_H_
