#include "storage/detection_store.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "obs/metrics.h"
#include "storage/segment_sketch.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace blazeit {

namespace fs = std::filesystem;

namespace {

constexpr const char* kSegmentPrefix = "ns-";
constexpr const char* kSegmentSuffix = ".seg";

/// Parses `ns-<16 hex>-<nonce>.seg`; returns false for foreign files.
bool ParseSegmentName(const std::string& filename, uint64_t* ns) {
  const std::string prefix = kSegmentPrefix;
  const std::string suffix = kSegmentSuffix;
  if (filename.size() < prefix.size() + 16 + suffix.size()) return false;
  if (filename.compare(0, prefix.size(), prefix) != 0) return false;
  if (filename.compare(filename.size() - suffix.size(), suffix.size(),
                       suffix) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = 0; i < 16; ++i) {
    const char c = filename[prefix.size() + i];
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *ns = value;
  return true;
}

/// Recovers the repair generation from a `…-0repair-<20-digit inverted
/// generation>-…` segment name; false for regular segments.
bool ParseRepairGeneration(const std::string& filename, uint64_t* generation) {
  const std::string prefix = kSegmentPrefix;
  constexpr const char* kRepairTag = "-0repair-";
  const size_t tag_at = prefix.size() + 16;
  const size_t tag_len = std::strlen(kRepairTag);
  if (filename.size() < tag_at + tag_len + 20) return false;
  if (filename.compare(tag_at, tag_len, kRepairTag) != 0) return false;
  uint64_t inverted = 0;
  for (size_t i = 0; i < 20; ++i) {
    const char c = filename[tag_at + tag_len + i];
    if (c < '0' || c > '9') return false;
    inverted = inverted * 10 + static_cast<uint64_t>(c - '0');
  }
  *generation = ~0ull - inverted;
  return true;
}

/// True when some engine codec decodes the payload. Float/double payloads
/// are unstructured, so this can only catch length mismatches for them;
/// detection payloads carry structure and reject most corruption.
bool PayloadDecodes(const std::string& payload) {
  if (DecodeDetectionsPayload(payload).ok()) return true;
  // Sketch payloads before the unstructured vector codecs: a sketch
  // payload whose byte length happens to be a float/double multiple must
  // not be classified as a data vector.
  if (DecodeSegmentSketchPayload(payload).ok()) return true;
  if (DecodeSketchMetaPayload(payload).ok()) return true;
  if (DecodeFloatsPayload(payload).ok()) return true;
  return DecodeDoublesPayload(payload).ok();
}

/// Removes `paths` plus any previously stranded files, keeping the
/// failures in `*stranded` so the namespace's next rewrite retries them.
/// Tolerated (warned) because the replacing segment's records win by name
/// order anyway — but only while the strand is remembered.
void RemoveSegmentsOrStrand(std::vector<std::string> paths,
                            std::vector<std::string>* stranded) {
  paths.insert(paths.end(), stranded->begin(), stranded->end());
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  stranded->clear();
  std::error_code ec;
  for (const std::string& path : paths) {
    fs::remove(path, ec);
    if (ec) {
      BLAZEIT_LOG(kWarning) << "could not remove superseded segment '"
                            << path << "': " << ec.message()
                            << " (will retry on the next rewrite)";
      ec.clear();
      stranded->push_back(path);
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// StoreWriter
// ---------------------------------------------------------------------------

Result<std::unique_ptr<StoreWriter>> StoreWriter::Create(
    const std::string& path, uint64_t record_namespace) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal(
        StrFormat("cannot create store segment '%s'", path.c_str()));
  }
  std::string header;
  SegmentHeader h;
  h.record_namespace = record_namespace;
  EncodeSegmentHeader(h, &header);
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  if (!out) {
    return Status::Internal(
        StrFormat("write failed on store segment '%s'", path.c_str()));
  }
  return std::unique_ptr<StoreWriter>(
      new StoreWriter(path, std::move(out)));
}

Status StoreWriter::Append(int64_t frame, const std::string& payload) {
  scratch_.clear();
  EncodeRecord(frame, payload, &scratch_);
  out_.write(scratch_.data(), static_cast<std::streamsize>(scratch_.size()));
  if (!out_) {
    return Status::Internal(
        StrFormat("write failed on store segment '%s' at frame %lld",
                  path_.c_str(), static_cast<long long>(frame)));
  }
  record_offsets_.emplace_back(frame, kStoreHeaderBytes + bytes_written_);
  bytes_written_ += scratch_.size();
  ++records_written_;
  return Status::OK();
}

Status StoreWriter::Close() {
  if (!out_.is_open()) return Status::OK();
  out_.flush();
  const bool ok = static_cast<bool>(out_);
  out_.close();
  if (!ok) {
    return Status::Internal(
        StrFormat("flush failed on store segment '%s'", path_.c_str()));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// StoreReader
// ---------------------------------------------------------------------------

Result<std::unique_ptr<StoreReader>> StoreReader::Open(
    const std::string& path, uint64_t expected_namespace,
    bool validate_records) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound(
        StrFormat("cannot open store segment '%s'", path.c_str()));
  }
  std::unique_ptr<StoreReader> reader(
      new StoreReader(path, std::move(in)));
  // No other thread can reach the reader yet; the lock exists to satisfy
  // the in_ ownership contract (and costs one uncontended acquire).
  util::MutexLock io_lock(reader->io_mu_);

  char header_buf[kStoreHeaderBytes];
  reader->in_.read(header_buf, sizeof(header_buf));
  const size_t header_read = static_cast<size_t>(reader->in_.gcount());
  auto header = DecodeSegmentHeader(header_buf, header_read);
  if (!header.ok()) {
    return Status(header.status().code(),
                  StrFormat("%s: %s", path.c_str(),
                            header.status().message().c_str()));
  }
  reader->header_ = header.value();
  if (expected_namespace != 0 &&
      reader->header_.record_namespace != expected_namespace) {
    return Status::InvalidArgument(StrFormat(
        "%s: stale or misnamed segment (header namespace %016llx does not "
        "match expected %016llx)",
        path.c_str(),
        static_cast<unsigned long long>(reader->header_.record_namespace),
        static_cast<unsigned long long>(expected_namespace)));
  }
  if (validate_records) {
    BLAZEIT_RETURN_NOT_OK(reader->ScanAndIndex());
  }
  reader->in_.close();  // reopened lazily by ReadPayloadAt
  static obs::Counter* opens = obs::MetricsRegistry::Global().GetCounter(
      "store.segment_opens", obs::Stability::kStable);
  opens->Add();
  return reader;
}

Status StoreReader::ScanAndIndex() {
  // Full CRC pass over every record, so a corrupt or truncated segment is
  // rejected at open — before anything gets replayed — with an error that
  // names the file. (Individual reads still re-verify their one record:
  // that is cheap and guards against the file changing after open.) The
  // pass reads the file sequentially into one buffer (per-record seeks
  // would turn warm opens into hundreds of thousands of tiny syscalls),
  // which is then dropped — only the frame -> offset index stays resident.
  in_.clear();
  in_.seekg(0, std::ios::end);
  const uint64_t file_size = static_cast<uint64_t>(in_.tellg());
  if (file_size < kStoreHeaderBytes) {
    return Status::OutOfRange(
        StrFormat("%s: truncated store header: %llu of %zu bytes",
                  path_.c_str(), static_cast<unsigned long long>(file_size),
                  kStoreHeaderBytes));
  }
  std::string buffer(file_size - kStoreHeaderBytes, '\0');
  in_.seekg(static_cast<std::streamoff>(kStoreHeaderBytes));
  in_.read(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  if (static_cast<size_t>(in_.gcount()) != buffer.size()) {
    return Status::Internal(
        StrFormat("%s: short read while indexing", path_.c_str()));
  }
  size_t pos = 0;
  while (pos < buffer.size()) {
    auto record = ValidateRecord(buffer.data() + pos, buffer.size() - pos);
    if (!record.ok()) {
      return Status(record.status().code(),
                    StrFormat("%s: %s", path_.c_str(),
                              record.status().message().c_str()));
    }
    index_[record.value().frame] = kStoreHeaderBytes + pos;
    pos += record.value().encoded_bytes;
  }
  static obs::Counter* validated = obs::MetricsRegistry::Global().GetCounter(
      "store.records_crc_validated", obs::Stability::kStable);
  validated->Add(static_cast<int64_t>(index_.size()));
  return Status::OK();
}

Result<std::string> StoreReader::ReadPayloadAt(uint64_t offset) {
  util::MutexLock io_lock(io_mu_);
  if (!in_.is_open()) {
    in_.open(path_, std::ios::binary);
    if (!in_) {
      return Status::NotFound(
          StrFormat("store segment '%s' disappeared", path_.c_str()));
    }
  }
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(offset));
  char rec_header[kRecordHeaderBytes];
  in_.read(rec_header, sizeof(rec_header));
  if (static_cast<size_t>(in_.gcount()) < sizeof(rec_header)) {
    return Status::OutOfRange(
        StrFormat("%s: truncated record header at offset %llu",
                  path_.c_str(), static_cast<unsigned long long>(offset)));
  }
  uint32_t payload_bytes;
  std::memcpy(&payload_bytes, rec_header + 8, sizeof(payload_bytes));
  if (payload_bytes > kMaxRecordPayloadBytes) {
    return Status::ParseError(StrFormat(
        "%s: corrupt record length %u at offset %llu", path_.c_str(),
        payload_bytes, static_cast<unsigned long long>(offset)));
  }
  const size_t total = kRecordHeaderBytes + payload_bytes + kRecordFooterBytes;
  std::string buffer(total, '\0');
  std::memcpy(buffer.data(), rec_header, kRecordHeaderBytes);
  in_.read(buffer.data() + kRecordHeaderBytes,
           static_cast<std::streamsize>(total - kRecordHeaderBytes));
  const size_t got = kRecordHeaderBytes + static_cast<size_t>(in_.gcount());
  auto record = DecodeRecord(buffer.data(), got);
  if (!record.ok()) {
    return Status(record.status().code(),
                  StrFormat("%s: %s", path_.c_str(),
                            record.status().message().c_str()));
  }
  static obs::Counter* reads = obs::MetricsRegistry::Global().GetCounter(
      "store.payload_reads", obs::Stability::kStable);
  static obs::Histogram* bytes = obs::MetricsRegistry::Global().GetHistogram(
      "store.payload_bytes", {64, 256, 1024, 4096, 16384, 65536},
      obs::Stability::kStable);
  reads->Add();
  bytes->Observe(static_cast<int64_t>(record.value().payload.size()));
  return std::move(record.value().payload);
}

// ---------------------------------------------------------------------------
// DetectionStore
// ---------------------------------------------------------------------------

Result<std::unique_ptr<DetectionStore>> DetectionStore::Open(
    const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal(StrFormat("cannot create store directory '%s': %s",
                                      dir.c_str(), ec.message().c_str()));
  }
  std::unique_ptr<DetectionStore> store(new DetectionStore(dir));

  // Deterministic directory order so duplicate frames resolve identically
  // across opens.
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    names.push_back(entry.path().filename().string());
  }
  if (ec) {
    return Status::Internal(StrFormat("cannot list store directory '%s': %s",
                                      dir.c_str(), ec.message().c_str()));
  }
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    uint64_t ns = 0;
    if (!ParseSegmentName(name, &ns)) continue;  // temp/foreign files
    auto reader = StoreReader::Open((fs::path(dir) / name).string(), ns);
    if (!reader.ok()) return reader.status();
    Shard& shard = store->shards_[ns];
    uint64_t repair_generation = 0;
    if (ParseRepairGeneration(name, &repair_generation)) {
      shard.repair_generation =
          std::max(shard.repair_generation, repair_generation);
    }
    const size_t segment_index = shard.segments.size();
    // Moved out of the reader: keeping both copies resident would double
    // index memory across a large store.
    for (const auto& [frame, offset] : reader.value()->ReleaseIndex()) {
      // First segment (in sorted name order) wins on duplicate frames —
      // the same first-write-wins rule PutRaw and Flush apply — so every
      // reopening process resolves a duplicate to the same payload. A
      // losing record stays on disk as a shadowed duplicate until Compact
      // rewrites the namespace.
      auto [it, inserted] =
          shard.disk_index.emplace(frame,
                                   std::make_pair(segment_index, offset));
      (void)it;
      if (!inserted) ++shard.shadowed;
    }
    shard.segments.push_back(std::move(reader).value());
  }
  return store;
}

DetectionStore::~DetectionStore() {
  Status st = Flush();
  if (!st.ok()) {
    BLAZEIT_LOG(kWarning) << "detection store flush failed on close: "
                          << st.ToString();
  }
}

bool DetectionStore::Contains(uint64_t ns, int64_t frame) const {
  util::ReaderLock lock(mu_);
  auto it = shards_.find(ns);
  if (it == shards_.end()) return false;
  return it->second.pending.count(frame) > 0 ||
         it->second.disk_index.count(frame) > 0;
}

Result<std::string> DetectionStore::GetRaw(uint64_t ns, int64_t frame) {
  // Shared lock: lookups race only with other lookups (the common case —
  // parallel frame scans all reading one warm store); the per-segment
  // file handle is guarded inside ReadPayloadAt.
  util::ReaderLock lock(mu_);
  auto it = shards_.find(ns);
  if (it != shards_.end()) {
    auto pending = it->second.pending.find(frame);
    if (pending != it->second.pending.end()) return pending->second;
    auto disk = it->second.disk_index.find(frame);
    if (disk != it->second.disk_index.end()) {
      return it->second.segments[disk->second.first]->ReadPayloadAt(
          disk->second.second);
    }
  }
  return Status::NotFound(
      StrFormat("no record for namespace %016llx frame %lld",
                static_cast<unsigned long long>(ns),
                static_cast<long long>(frame)));
}

Status DetectionStore::PutRaw(uint64_t ns, int64_t frame,
                              std::string payload) {
  util::WriterLock lock(mu_);
  Shard& shard = shards_[ns];
  // First write wins: records are deterministic per (namespace, frame), so
  // a duplicate Put is a repeat of known content, and keeping the indexed
  // copy stable avoids rewriting it into the next segment. Consequence: a
  // CRC-valid record whose payload a reader rejects as malformed (only
  // reachable via a key collision or a writer bug) is not repaired by
  // re-Putting — callers recompute and warn each run until the store is
  // rebuilt (see the ROADMAP compaction item).
  if (shard.disk_index.count(frame) > 0) return Status::OK();
  auto [it, inserted] = shard.pending.emplace(frame, std::move(payload));
  (void)it;
  if (inserted) ++pending_records_;
  return Status::OK();
}

Result<std::vector<Detection>> DetectionStore::GetDetections(uint64_t ns,
                                                             int64_t frame) {
  auto payload = GetRaw(ns, frame);
  if (!payload.ok()) return payload.status();
  return DecodeDetectionsPayload(payload.value());
}

Status DetectionStore::PutDetections(
    uint64_t ns, int64_t frame, const std::vector<Detection>& detections) {
  return PutRaw(ns, frame, EncodeDetectionsPayload(detections));
}

Result<std::vector<float>> DetectionStore::GetFloats(uint64_t ns,
                                                     int64_t frame) {
  auto payload = GetRaw(ns, frame);
  if (!payload.ok()) return payload.status();
  return DecodeFloatsPayload(payload.value());
}

Status DetectionStore::PutFloats(uint64_t ns, int64_t frame,
                                 const std::vector<float>& values) {
  return PutRaw(ns, frame, EncodeFloatsPayload(values));
}

Result<std::vector<double>> DetectionStore::GetDoubles(uint64_t ns,
                                                       int64_t frame) {
  auto payload = GetRaw(ns, frame);
  if (!payload.ok()) return payload.status();
  return DecodeDoublesPayload(payload.value());
}

Status DetectionStore::PutDoubles(uint64_t ns, int64_t frame,
                                  const std::vector<double>& values) {
  return PutRaw(ns, frame, EncodeDoublesPayload(values));
}

Status DetectionStore::Scan(
    uint64_t ns, const std::function<Status(int64_t frame,
                                            const std::string& payload)>& fn) {
  // Collect the frame list under a shared lock, then read record by
  // record through GetRaw (which re-locks): holding a shared lock across
  // the callback would deadlock any fn that writes, and shared_mutex is
  // not recursive.
  std::vector<int64_t> frames;
  {
    util::ReaderLock lock(mu_);
    auto it = shards_.find(ns);
    if (it == shards_.end()) return Status::OK();
    const Shard& shard = it->second;
    frames.reserve(shard.disk_index.size() + shard.pending.size());
    for (const auto& [frame, _] : shard.disk_index) frames.push_back(frame);
    for (const auto& [frame, _] : shard.pending) {
      if (shard.disk_index.count(frame) == 0) frames.push_back(frame);
    }
  }
  std::sort(frames.begin(), frames.end());
  for (int64_t frame : frames) {
    auto payload = GetRaw(ns, frame);
    if (!payload.ok()) return payload.status();
    BLAZEIT_RETURN_NOT_OK(fn(frame, payload.value()));
  }
  return Status::OK();
}

std::string DetectionStore::NewSegmentPath(uint64_t ns) const {
  // Unique per (process, flush): concurrent processes flushing the same
  // namespace write distinct files, and rename() makes each appear
  // atomically.
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return (fs::path(dir_) /
          StrFormat("%s%016llx-%d-%llu-%llu%s", kSegmentPrefix,
                    static_cast<unsigned long long>(ns),
                    static_cast<int>(::getpid()),
                    static_cast<unsigned long long>(flush_counter_),
                    static_cast<unsigned long long>(now.count()),
                    kSegmentSuffix))
      .string();
}

std::string DetectionStore::RepairSegmentPath(uint64_t ns,
                                              uint64_t generation) const {
  // Repair segments must win first-write-wins over everything they
  // superseded even if a crash (or a failed unlink on a shared store)
  // strands an old segment alongside them. "0repair" sorts before any
  // pid (which never starts with '0'), and the zero-padded *inverted*
  // generation makes a newer repair sort before a stranded older one —
  // the generation is monotonic per namespace and restored from segment
  // names at Open, so ordering never depends on the wall clock.
  const unsigned long long inverted =
      ~0ull - static_cast<unsigned long long>(generation);
  return (fs::path(dir_) /
          StrFormat("%s%016llx-0repair-%020llu-%d%s", kSegmentPrefix,
                    static_cast<unsigned long long>(ns), inverted,
                    static_cast<int>(::getpid()), kSegmentSuffix))
      .string();
}

Status DetectionStore::Flush() {
  util::WriterLock lock(mu_);
  return FlushLocked();
}

Status DetectionStore::FlushLocked() {
  // Snapshot the dirty namespaces first: the sketch refresh below mutates
  // sketch shards while we would otherwise still be iterating shards_.
  // For indexed namespaces, also record what the pending set looks like
  // relative to disk *before* the flush folds it in — an append-only
  // flush lets the sketch refresh rebuild just the tail block.
  std::vector<uint64_t> dirty;
  std::map<uint64_t, SketchRefreshHint> hints;
  for (const auto& [ns, shard] : shards_) {
    if (shard.pending.empty()) continue;
    dirty.push_back(ns);
    if (shards_.count(SketchNamespace(ns)) == 0) continue;
    SketchRefreshHint hint;
    hint.prior_count = static_cast<int64_t>(shard.disk_index.size());
    for (const auto& [frame, _] : shard.disk_index) {
      hint.prior_max = std::max(hint.prior_max, frame);
    }
    hint.append_only = hint.prior_max >= 0;
    for (const auto& [frame, _] : shard.pending) {
      if (frame <= hint.prior_max) {
        hint.append_only = false;
        break;
      }
    }
    hints.emplace(ns, hint);
  }
  for (uint64_t ns : dirty) {
    BLAZEIT_RETURN_NOT_OK(FlushShardLocked(ns, &shards_.at(ns)));
  }
  // Eager sketch maintenance: a namespace is indexed iff its sketch shard
  // exists, and new base records make those sketches stale (Load would
  // reject them by record count), so refresh in the same flush.
  for (uint64_t ns : dirty) {
    if (shards_.count(SketchNamespace(ns)) > 0) {
      auto hint = hints.find(ns);
      BLAZEIT_RETURN_NOT_OK(RefreshSketchesLocked(
          ns, hint != hints.end() ? &hint->second : nullptr));
    }
  }
  return Status::OK();
}

Status DetectionStore::FlushShardLocked(uint64_t ns, Shard* shard) {
  if (shard->pending.empty()) return Status::OK();
  ++flush_counter_;
  const std::string final_path = NewSegmentPath(ns);
  const std::string tmp_path = final_path + ".tmp";
  auto writer = StoreWriter::Create(tmp_path, ns);
  if (!writer.ok()) return writer.status();
  for (const auto& [frame, payload] : shard->pending) {
    BLAZEIT_RETURN_NOT_OK(writer.value()->Append(frame, payload));
  }
  BLAZEIT_RETURN_NOT_OK(writer.value()->Close());
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    return Status::Internal(
        StrFormat("cannot publish store segment '%s': %s",
                  final_path.c_str(), ec.message().c_str()));
  }
  // Fold the new segment into the disk index from the offsets the writer
  // tracked — this process just wrote and checksummed every record, so
  // re-reading the file to index it (the common case being the
  // destructor flush at suite exit) would be pure waste.
  auto reader = StoreReader::Open(final_path, ns,
                                  /*validate_records=*/false);
  if (!reader.ok()) return reader.status();
  const size_t segment_index = shard->segments.size();
  for (const auto& [frame, offset] : writer.value()->record_offsets()) {
    shard->disk_index.emplace(frame, std::make_pair(segment_index, offset));
  }
  shard->segments.push_back(std::move(reader).value());
  pending_records_ -= static_cast<int64_t>(shard->pending.size());
  shard->pending.clear();
  static obs::Counter* flushes = obs::MetricsRegistry::Global().GetCounter(
      "store.segment_flushes", obs::Stability::kStable);
  flushes->Add();
  return Status::OK();
}

Status DetectionStore::RewriteShardLocked(uint64_t ns, Shard* shard,
                                          bool validate_payloads) {
  // Resolved frame list: disk winners plus pending, pending overriding
  // disk on collision — exactly what GetRaw serves (it reads pending
  // first). Regular Puts never create such a collision; Repair does.
  std::vector<int64_t> frames;
  frames.reserve(shard->disk_index.size() + shard->pending.size());
  for (const auto& [frame, _] : shard->disk_index) frames.push_back(frame);
  for (const auto& [frame, _] : shard->pending) {
    if (shard->disk_index.count(frame) == 0) frames.push_back(frame);
  }
  std::sort(frames.begin(), frames.end());

  const std::string final_path =
      RepairSegmentPath(ns, ++shard->repair_generation);
  const std::string tmp_path = final_path + ".tmp";
  auto writer = StoreWriter::Create(tmp_path, ns);
  if (!writer.ok()) return writer.status();
  int64_t undecodable_dropped = 0;
  for (int64_t frame : frames) {
    auto pending = shard->pending.find(frame);
    if (pending != shard->pending.end()) {
      BLAZEIT_RETURN_NOT_OK(writer.value()->Append(frame, pending->second));
      continue;
    }
    const auto& [segment_index, offset] = shard->disk_index.at(frame);
    auto payload = shard->segments[segment_index]->ReadPayloadAt(offset);
    if (!payload.ok()) return payload.status();
    // Since the whole namespace is being rewritten anyway, heal it in one
    // pass: any other record that decodes under no engine codec would
    // just trigger another full rewrite when it is next read, so drop it
    // now (it becomes a plain miss and is recomputed once).
    if (validate_payloads && !PayloadDecodes(payload.value())) {
      ++undecodable_dropped;
      continue;
    }
    BLAZEIT_RETURN_NOT_OK(writer.value()->Append(frame, payload.value()));
  }
  if (undecodable_dropped > 0) {
    BLAZEIT_LOG(kWarning) << "namespace rewrite dropped "
                          << undecodable_dropped
                          << " undecodable record(s); they will be "
                             "recomputed on next use";
  }
  BLAZEIT_RETURN_NOT_OK(writer.value()->Close());
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    return Status::Internal(
        StrFormat("cannot publish rewritten segment '%s': %s",
                  final_path.c_str(), ec.message().c_str()));
  }

  std::vector<std::string> old_paths;
  old_paths.reserve(shard->segments.size());
  for (const auto& segment : shard->segments) {
    old_paths.push_back(segment->path());
  }

  auto reader = StoreReader::Open(final_path, ns, /*validate_records=*/false);
  if (!reader.ok()) return reader.status();
  pending_records_ -= static_cast<int64_t>(shard->pending.size());
  shard->pending.clear();
  shard->segments.clear();
  shard->disk_index.clear();
  shard->shadowed = 0;
  for (const auto& [frame, offset] : writer.value()->record_offsets()) {
    shard->disk_index.emplace(frame, std::make_pair(size_t{0}, offset));
  }
  shard->segments.push_back(std::move(reader).value());

  // Old segments hold only payloads the new segment supersedes; removal
  // failures are non-fatal (the new segment's name sorts first, so its
  // records keep winning) but stay tracked for retry.
  RemoveSegmentsOrStrand(std::move(old_paths), &shard->stranded);
  return Status::OK();
}

Status DetectionStore::ReplaceNamespaceLocked(
    uint64_t ns, std::map<int64_t, std::string> records) {
  Shard& shard = shards_[ns];
  pending_records_ -= static_cast<int64_t>(shard.pending.size());
  shard.pending = std::move(records);
  pending_records_ += static_cast<int64_t>(shard.pending.size());
  // Clearing the disk index makes the rewrite's resolved view exactly the
  // replacement set; the superseded segments are still listed in
  // shard.segments, so the rewrite removes (or strands-and-retries) them.
  shard.disk_index.clear();
  shard.shadowed = 0;
  return RewriteShardLocked(ns, &shard, /*validate_payloads=*/false);
}

namespace {

/// Sketch blocks encoded per refresh, full or incremental — the signal
/// the incremental path exists to shrink: an append-only flush should
/// move this by ~1 tail block, not by the whole namespace.
obs::Counter* SketchBlocksRebuiltCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "store.sketch_blocks_rebuilt", obs::Stability::kStable);
  return counter;
}

}  // namespace

Status DetectionStore::RebuildSketchesLocked(uint64_t base_ns) {
  SketchBuilder builder;
  int64_t base_records = 0;
  auto base_it = shards_.find(base_ns);
  if (base_it != shards_.end()) {
    Shard& shard = base_it->second;
    std::vector<int64_t> frames;
    frames.reserve(shard.disk_index.size() + shard.pending.size());
    for (const auto& [frame, _] : shard.disk_index) frames.push_back(frame);
    for (const auto& [frame, _] : shard.pending) {
      if (shard.disk_index.count(frame) == 0) frames.push_back(frame);
    }
    std::sort(frames.begin(), frames.end());
    base_records = static_cast<int64_t>(frames.size());
    for (int64_t frame : frames) {
      auto pending = shard.pending.find(frame);
      std::string payload;
      if (pending != shard.pending.end()) {
        payload = pending->second;
      } else {
        const auto& [segment_index, offset] = shard.disk_index.at(frame);
        auto read = shard.segments[segment_index]->ReadPayloadAt(offset);
        if (!read.ok()) return read.status();
        payload = std::move(read).value();
      }
      auto detections = DecodeDetectionsPayload(payload);
      if (!detections.ok()) {
        return Status::InvalidArgument(StrFormat(
            "namespace %016llx is not a detections namespace (frame %lld: "
            "%s); only detection namespaces can be sketched",
            static_cast<unsigned long long>(base_ns),
            static_cast<long long>(frame),
            detections.status().message().c_str()));
      }
      builder.Add(frame, detections.value());
    }
  }
  std::map<int64_t, std::string> records;
  SketchMeta meta;
  meta.base_ns = base_ns;
  meta.base_record_count = base_records;
  std::vector<SegmentSketch> blocks = builder.Finish();
  meta.block_count = static_cast<int64_t>(blocks.size());
  records.emplace(kSketchMetaFrame, EncodeSketchMetaPayload(meta));
  for (const SegmentSketch& block : blocks) {
    records.emplace(block.first_frame, EncodeSegmentSketchPayload(block));
  }
  static obs::Counter* rebuilds = obs::MetricsRegistry::Global().GetCounter(
      "store.sketch_rebuilds", obs::Stability::kStable);
  rebuilds->Add();
  SketchBlocksRebuiltCounter()->Add(static_cast<int64_t>(blocks.size()));
  return ReplaceNamespaceLocked(SketchNamespace(base_ns), std::move(records));
}

Status DetectionStore::RefreshSketchesLocked(uint64_t base_ns,
                                             const SketchRefreshHint* hint) {
  if (hint == nullptr || !hint->append_only || hint->prior_count == 0) {
    return RebuildSketchesLocked(base_ns);
  }
  auto sketch_it = shards_.find(SketchNamespace(base_ns));
  auto base_it = shards_.find(base_ns);
  if (sketch_it == shards_.end() || base_it == shards_.end()) {
    return RebuildSketchesLocked(base_ns);
  }
  Shard& sketch_shard = sketch_it->second;
  Shard& base_shard = base_it->second;

  // The resolved read GetRaw would serve (pending first, then disk).
  auto read_resolved = [](Shard& shard,
                          int64_t frame) -> Result<std::string> {
    auto pending = shard.pending.find(frame);
    if (pending != shard.pending.end()) return pending->second;
    auto disk = shard.disk_index.find(frame);
    if (disk == shard.disk_index.end()) {
      return Status::NotFound("no such sketch record");
    }
    const auto& [segment_index, offset] = disk->second;
    return shard.segments[segment_index]->ReadPayloadAt(offset);
  };

  // The shortcut is only sound against a sketch that was *current* before
  // this flush: its meta must match the pre-flush record count exactly.
  // Anything else (undecodable meta, staleness, foreign namespace) gets
  // the full rebuild, which is always correct.
  auto meta_payload = read_resolved(sketch_shard, kSketchMetaFrame);
  if (!meta_payload.ok()) return RebuildSketchesLocked(base_ns);
  auto meta = DecodeSketchMetaPayload(meta_payload.value());
  if (!meta.ok() || meta.value().base_ns != base_ns ||
      meta.value().base_record_count != hint->prior_count ||
      meta.value().block_count <= 0) {
    return RebuildSketchesLocked(base_ns);
  }

  // Each block's sketch is a pure function of its own block's records, so
  // an append past prior_max can only change blocks at or after the old
  // tail block. Copy everything before it forward without decoding.
  const int64_t tail_start =
      (hint->prior_max / kSketchBlockFrames) * kSketchBlockFrames;
  std::map<int64_t, std::string> records;
  for (const auto& [frame, payload] : sketch_shard.pending) {
    if (frame == kSketchMetaFrame || frame >= tail_start) continue;
    records.emplace(frame, payload);
  }
  for (const auto& [frame, loc] : sketch_shard.disk_index) {
    if (frame == kSketchMetaFrame || frame >= tail_start) continue;
    if (records.count(frame) > 0) continue;
    auto payload = sketch_shard.segments[loc.first]->ReadPayloadAt(loc.second);
    if (!payload.ok()) return RebuildSketchesLocked(base_ns);
    records.emplace(frame, std::move(payload).value());
  }

  // Rebuild the tail from the base records at/after tail_start; feeding
  // the builder a block's full record set in ascending frame order is
  // exactly what the full rebuild does for that block.
  std::vector<int64_t> tail_frames;
  int64_t base_records = static_cast<int64_t>(base_shard.disk_index.size());
  for (const auto& [frame, _] : base_shard.disk_index) {
    if (frame >= tail_start) tail_frames.push_back(frame);
  }
  for (const auto& [frame, _] : base_shard.pending) {
    if (base_shard.disk_index.count(frame) == 0) {
      ++base_records;
      if (frame >= tail_start) tail_frames.push_back(frame);
    }
  }
  std::sort(tail_frames.begin(), tail_frames.end());
  SketchBuilder builder;
  for (int64_t frame : tail_frames) {
    auto payload = read_resolved(base_shard, frame);
    if (!payload.ok()) return payload.status();
    auto detections = DecodeDetectionsPayload(payload.value());
    if (!detections.ok()) {
      return Status::InvalidArgument(StrFormat(
          "namespace %016llx is not a detections namespace (frame %lld: "
          "%s); only detection namespaces can be sketched",
          static_cast<unsigned long long>(base_ns),
          static_cast<long long>(frame),
          detections.status().message().c_str()));
    }
    builder.Add(frame, detections.value());
  }
  std::vector<SegmentSketch> blocks = builder.Finish();
  for (const SegmentSketch& block : blocks) {
    records.emplace(block.first_frame, EncodeSegmentSketchPayload(block));
  }

  SketchMeta new_meta;
  new_meta.base_ns = base_ns;
  new_meta.base_record_count = base_records;
  new_meta.block_count = static_cast<int64_t>(records.size());
  records.emplace(kSketchMetaFrame, EncodeSketchMetaPayload(new_meta));

  static obs::Counter* incremental =
      obs::MetricsRegistry::Global().GetCounter(
          "store.sketch_incremental_refreshes", obs::Stability::kStable);
  incremental->Add();
  SketchBlocksRebuiltCounter()->Add(static_cast<int64_t>(blocks.size()));
  return ReplaceNamespaceLocked(SketchNamespace(base_ns), std::move(records));
}

Status DetectionStore::BuildSketches(uint64_t base_ns) {
  util::WriterLock lock(mu_);
  BLAZEIT_RETURN_NOT_OK(FlushLocked());
  if (shards_.find(base_ns) == shards_.end()) {
    return Status::NotFound(
        StrFormat("no records in namespace %016llx to sketch",
                  static_cast<unsigned long long>(base_ns)));
  }
  return RebuildSketchesLocked(base_ns);
}

Status DetectionStore::DropSketches(uint64_t base_ns) {
  util::WriterLock lock(mu_);
  const uint64_t sketch_ns = SketchNamespace(base_ns);
  if (shards_.find(sketch_ns) == shards_.end()) return Status::OK();
  // An empty replacement writes a record-free tombstone segment via the
  // repair path. (If an old sketch segment's unlink fails and later
  // resurrects, Load's record-count gate only accepts it while the base
  // is unchanged — in which case the resurrected sketches are still
  // accurate.)
  return ReplaceNamespaceLocked(sketch_ns, {});
}

Result<std::vector<DetectionStore::SketchInfo>> DetectionStore::ListSketches() {
  // Built from the public lookups (each takes its own shared lock): sketch
  // namespaces are recognized by their meta record, whose stored base_ns
  // must round-trip through SketchNamespace.
  std::vector<SketchInfo> out;
  for (uint64_t ns : Namespaces()) {
    auto payload = GetRaw(ns, kSketchMetaFrame);
    if (!payload.ok()) continue;
    auto meta = DecodeSketchMetaPayload(payload.value());
    if (!meta.ok() || SketchNamespace(meta.value().base_ns) != ns) continue;
    SketchInfo info;
    info.base_ns = meta.value().base_ns;
    info.sketch_ns = ns;
    info.blocks = meta.value().block_count;
    info.base_records_at_build = meta.value().base_record_count;
    info.base_records_now = RecordCount(meta.value().base_ns);
    info.current = info.base_records_now == info.base_records_at_build;
    out.push_back(info);
  }
  return out;
}

Status DetectionStore::Repair(uint64_t ns, int64_t frame,
                              const std::string& payload) {
  util::WriterLock lock(mu_);
  static obs::Counter* repairs = obs::MetricsRegistry::Global().GetCounter(
      "store.record_repairs", obs::Stability::kStable);
  repairs->Add();
  Shard& shard = shards_[ns];
  auto [it, inserted] = shard.pending.insert_or_assign(frame, payload);
  (void)it;
  if (inserted) ++pending_records_;
  if (shard.disk_index.count(frame) == 0) {
    // Nothing on disk to override: the regular flush path suffices (and
    // refreshes sketches when it runs).
    return Status::OK();
  }
  BLAZEIT_RETURN_NOT_OK(
      RewriteShardLocked(ns, &shard, /*validate_payloads=*/true));
  // The repair replaced payloads without changing the record count, which
  // is exactly the staleness Load's count gate cannot see — rebuild the
  // sketches eagerly.
  if (shards_.count(SketchNamespace(ns)) > 0) {
    return RebuildSketchesLocked(ns);
  }
  return Status::OK();
}

Result<DetectionStore::RepairStats> DetectionStore::Repair() {
  util::WriterLock lock(mu_);
  // Pending records were encoded by this process's codecs; flush so the
  // scan below sees one on-disk view per namespace.
  BLAZEIT_RETURN_NOT_OK(FlushLocked());

  RepairStats stats;
  std::vector<uint64_t> rewritten;
  for (auto& [ns, shard] : shards_) {
    ++stats.namespaces_scanned;
    std::vector<int64_t> drop;
    for (const auto& [frame, loc] : shard.disk_index) {
      ++stats.records_scanned;
      auto payload = shard.segments[loc.first]->ReadPayloadAt(loc.second);
      if (!payload.ok()) return payload.status();
      if (!PayloadDecodes(payload.value())) drop.push_back(frame);
    }
    if (drop.empty()) continue;
    for (int64_t frame : drop) shard.disk_index.erase(frame);
    stats.malformed_dropped += static_cast<int64_t>(drop.size());
    // The scan above already validated every surviving record; skip the
    // rewrite's own validation pass.
    BLAZEIT_RETURN_NOT_OK(
        RewriteShardLocked(ns, &shard, /*validate_payloads=*/false));
    ++stats.namespaces_rewritten;
    rewritten.push_back(ns);
  }
  // Dropping records changed the record count of each rewritten namespace;
  // refresh the sketches of the indexed ones (after the scan loop — the
  // rebuild mutates sketch shards, and must not race the iteration above).
  for (uint64_t ns : rewritten) {
    if (shards_.count(SketchNamespace(ns)) > 0) {
      BLAZEIT_RETURN_NOT_OK(RebuildSketchesLocked(ns));
    }
  }
  static obs::Counter* scans = obs::MetricsRegistry::Global().GetCounter(
      "store.repair_scans", obs::Stability::kStable);
  scans->Add();
  return stats;
}

Result<DetectionStore::CompactionStats> DetectionStore::Compact() {
  util::WriterLock lock(mu_);
  // Anything pending goes to disk first so compaction sees every record.
  BLAZEIT_RETURN_NOT_OK(FlushLocked());

  CompactionStats stats;
  for (auto& [ns, shard] : shards_) {
    stats.segments_before += static_cast<int64_t>(shard.segments.size());
    if (shard.segments.size() <= 1 && shard.shadowed == 0) {
      // Already compact: one segment, no shadowed duplicates. Still retry
      // any removals a previous rewrite left stranded.
      if (!shard.stranded.empty()) {
        RemoveSegmentsOrStrand({}, &shard.stranded);
      }
      stats.segments_after += static_cast<int64_t>(shard.segments.size());
      stats.records_kept += static_cast<int64_t>(shard.disk_index.size());
      continue;
    }

    // Resolved view of the namespace, in ascending frame order — exactly
    // what GetRaw serves today (first segment in sorted name order wins).
    std::vector<int64_t> frames;
    frames.reserve(shard.disk_index.size());
    for (const auto& [frame, _] : shard.disk_index) frames.push_back(frame);
    std::sort(frames.begin(), frames.end());

    // A namespace that has been repaired must keep its repair generation
    // through compaction: a regular segment name sorts *after* repair
    // names, so if the unlink of a superseded repair segment failed (or a
    // concurrent process still holds one), a regular-named compacted
    // segment would lose first-write-wins to the stranded repair and
    // resurrect its stale records — and a later Repair at generation+1
    // must still sort ahead of the compacted view. Writing the compacted
    // segment at the next repair generation preserves both orderings.
    ++flush_counter_;
    const std::string final_path =
        shard.repair_generation > 0
            ? RepairSegmentPath(ns, ++shard.repair_generation)
            : NewSegmentPath(ns);
    const std::string tmp_path = final_path + ".tmp";
    auto writer = StoreWriter::Create(tmp_path, ns);
    if (!writer.ok()) return writer.status();
    for (int64_t frame : frames) {
      const auto& [segment_index, offset] = shard.disk_index.at(frame);
      auto payload = shard.segments[segment_index]->ReadPayloadAt(offset);
      if (!payload.ok()) return payload.status();
      BLAZEIT_RETURN_NOT_OK(writer.value()->Append(frame, payload.value()));
    }
    BLAZEIT_RETURN_NOT_OK(writer.value()->Close());
    std::error_code ec;
    fs::rename(tmp_path, final_path, ec);
    if (ec) {
      return Status::Internal(
          StrFormat("cannot publish compacted segment '%s': %s",
                    final_path.c_str(), ec.message().c_str()));
    }

    // Old segments carry only payloads the new segment duplicates (the
    // winners) or shadowed losers; removing them cannot change what any
    // reader resolves. Removal failures are non-fatal — a leftover
    // segment just re-shadows until the next compaction.
    std::vector<std::string> old_paths;
    old_paths.reserve(shard.segments.size());
    for (const auto& segment : shard.segments) {
      old_paths.push_back(segment->path());
    }
    stats.duplicates_dropped += shard.shadowed;
    stats.records_kept += static_cast<int64_t>(frames.size());
    ++stats.namespaces_compacted;
    ++stats.segments_after;

    auto reader = StoreReader::Open(final_path, ns,
                                    /*validate_records=*/false);
    if (!reader.ok()) return reader.status();
    shard.segments.clear();
    shard.disk_index.clear();
    shard.shadowed = 0;
    for (const auto& [frame, offset] : writer.value()->record_offsets()) {
      shard.disk_index.emplace(frame, std::make_pair(size_t{0}, offset));
    }
    shard.segments.push_back(std::move(reader).value());

    RemoveSegmentsOrStrand(std::move(old_paths), &shard.stranded);
  }
  static obs::Counter* compactions = obs::MetricsRegistry::Global().GetCounter(
      "store.compactions", obs::Stability::kStable);
  compactions->Add();
  return stats;
}

std::vector<uint64_t> DetectionStore::Namespaces() const {
  util::ReaderLock lock(mu_);
  std::vector<uint64_t> out;
  out.reserve(shards_.size());
  for (const auto& [ns, _] : shards_) out.push_back(ns);
  return out;
}

namespace {

int64_t ResolvedRecordCount(
    const std::unordered_map<int64_t, std::pair<size_t, uint64_t>>& disk_index,
    const std::map<int64_t, std::string>& pending) {
  int64_t total = static_cast<int64_t>(disk_index.size());
  for (const auto& [frame, _] : pending) {
    if (disk_index.count(frame) == 0) ++total;
  }
  return total;
}

}  // namespace

int64_t DetectionStore::RecordCount(uint64_t ns) const {
  util::ReaderLock lock(mu_);
  auto it = shards_.find(ns);
  if (it == shards_.end()) return 0;
  return ResolvedRecordCount(it->second.disk_index, it->second.pending);
}

std::vector<DetectionStore::NamespaceStats> DetectionStore::PerNamespaceStats()
    const {
  util::ReaderLock lock(mu_);
  std::vector<NamespaceStats> out;
  out.reserve(shards_.size());
  for (const auto& [ns, shard] : shards_) {
    NamespaceStats stats;
    stats.ns = ns;
    stats.segments = static_cast<int64_t>(shard.segments.size());
    stats.records = ResolvedRecordCount(shard.disk_index, shard.pending);
    stats.pending = static_cast<int64_t>(shard.pending.size());
    stats.shadowed = shard.shadowed;
    stats.repair_generation = shard.repair_generation;
    out.push_back(stats);
  }
  return out;
}

int64_t DetectionStore::TotalRecords() const {
  util::ReaderLock lock(mu_);
  int64_t total = 0;
  for (const auto& [ns, shard] : shards_) {
    total += ResolvedRecordCount(shard.disk_index, shard.pending);
  }
  return total;
}

int64_t DetectionStore::ShadowedRecords() const {
  util::ReaderLock lock(mu_);
  int64_t total = 0;
  for (const auto& [ns, shard] : shards_) total += shard.shadowed;
  return total;
}

}  // namespace blazeit
