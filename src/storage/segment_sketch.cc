#include "storage/segment_sketch.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "obs/metrics.h"
#include "storage/detection_store.h"
#include "util/random.h"
#include "util/string_util.h"

namespace blazeit {

namespace {

// "BZSK" / "BZSM" little-endian.
constexpr uint32_t kSketchMagic = 0x4B535A42u;
constexpr uint32_t kSketchMetaMagic = 0x4D535A42u;

template <typename T>
void AppendPod(const T& v, std::string* out) {
  const char* p = reinterpret_cast<const char*>(&v);
  out->append(p, sizeof(T));
}

/// Bounds-checked little-endian cursor over a payload.
class Cursor {
 public:
  explicit Cursor(const std::string& data) : data_(data) {}

  template <typename T>
  bool Read(T* v) {
    if (pos_ + sizeof(T) > data_.size()) return false;
    std::memcpy(v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

Status Malformed(const char* what) {
  return Status::ParseError(
      StrFormat("malformed segment-sketch payload: %s", what));
}

/// Load outcome accounting: how often queries found a current index vs.
/// fell back to the full window (absent = never built, stale = built but
/// out of date or unreadable).
void CountLoad(const char* result) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Counter* valid =
      registry.GetCounter("sketch.loads{result=valid}",
                          obs::Stability::kStable);
  static obs::Counter* stale =
      registry.GetCounter("sketch.loads{result=stale}",
                          obs::Stability::kStable);
  static obs::Counter* absent =
      registry.GetCounter("sketch.loads{result=absent}",
                          obs::Stability::kStable);
  if (std::strcmp(result, "valid") == 0) {
    valid->Add();
  } else if (std::strcmp(result, "stale") == 0) {
    stale->Add();
  } else {
    absent->Add();
  }
}

/// Grid bucket answering threshold `t`: the largest bucket whose grid
/// score (i / kSketchScoreBuckets) is <= t, so the bucket's counts cover
/// a superset of the detections at threshold t.
int ThresholdBucket(double t) {
  const int b = static_cast<int>(
      std::floor(t * static_cast<double>(kSketchScoreBuckets)));
  return std::min(std::max(b, 0), kSketchScoreBuckets - 1);
}

/// True when every detection center of the class lies outside `roi`
/// (Rect::Contains is [min, max) per axis, so the boundary comparisons
/// mirror it exactly).
bool ClassOutsideRoi(const ClassSketch& cs, const Rect& roi) {
  return cs.max_cx < roi.xmin || cs.min_cx >= roi.xmax ||
         cs.max_cy < roi.ymin || cs.min_cy >= roi.ymax;
}

/// Upper bound on PixelArea over the class's detections, computed with
/// PixelArea's own expression so IEEE rounding stays monotone (a smaller
/// normalized area can never round to a larger pixel area).
double MaxClassPixelArea(const ClassSketch& cs, int w, int h) {
  return cs.max_area * static_cast<double>(w) * static_cast<double>(h);
}

const ClassSketch* FindClass(const SegmentSketch& sketch, int class_id) {
  for (const ClassSketch& cs : sketch.classes) {
    if (cs.class_id == class_id) return &cs;
  }
  return nullptr;
}

/// Whether a detection of this class could survive the probe's
/// per-detection filters (threshold presence, ROI, min area).
bool ClassCouldPassFilters(const ClassSketch& cs, const SketchProbe& probe,
                           int bucket) {
  if (cs.max_count_ge[bucket] == 0) return false;
  if (probe.has_roi && ClassOutsideRoi(cs, probe.roi)) return false;
  if (probe.min_area_px > 0 &&
      MaxClassPixelArea(cs, probe.frame_width, probe.frame_height) <
          probe.min_area_px) {
    return false;
  }
  return true;
}

}  // namespace

uint64_t SketchNamespace(uint64_t base_ns) {
  Fingerprint f;
  f.Mix(base_ns);
  f.Mix("segment-sketch");
  f.Mix(static_cast<uint64_t>(kSketchFormatVersion));
  f.Mix(kSketchBlockFrames);
  f.Mix(kSketchScoreBuckets);
  return f.value();
}

bool ClassSketch::operator==(const ClassSketch& other) const {
  if (class_id != other.class_id) return false;
  for (int i = 0; i < kSketchScoreBuckets; ++i) {
    if (frames_ge1[i] != other.frames_ge1[i]) return false;
    if (max_count_ge[i] != other.max_count_ge[i]) return false;
  }
  return min_score == other.min_score && max_score == other.max_score &&
         min_cx == other.min_cx && max_cx == other.max_cx &&
         min_cy == other.min_cy && max_cy == other.max_cy &&
         min_area == other.min_area && max_area == other.max_area;
}

bool SegmentSketch::operator==(const SegmentSketch& other) const {
  return first_frame == other.first_frame && covered == other.covered &&
         frames_present == other.frames_present &&
         frames_with_any == other.frames_with_any &&
         class_bitmap == other.class_bitmap && classes == other.classes;
}

std::string EncodeSegmentSketchPayload(const SegmentSketch& sketch) {
  std::string out;
  AppendPod(kSketchMagic, &out);
  AppendPod(kSketchFormatVersion, &out);
  AppendPod(static_cast<uint32_t>(kSketchBlockFrames), &out);
  AppendPod(static_cast<uint32_t>(kSketchScoreBuckets), &out);
  AppendPod(sketch.first_frame, &out);
  AppendPod(sketch.covered, &out);
  AppendPod(sketch.frames_present, &out);
  AppendPod(sketch.frames_with_any, &out);
  AppendPod(static_cast<uint32_t>(sketch.classes.size()), &out);
  AppendPod(sketch.class_bitmap, &out);
  for (const ClassSketch& cs : sketch.classes) {
    AppendPod(cs.class_id, &out);
    for (int i = 0; i < kSketchScoreBuckets; ++i) {
      AppendPod(cs.frames_ge1[i], &out);
    }
    for (int i = 0; i < kSketchScoreBuckets; ++i) {
      AppendPod(cs.max_count_ge[i], &out);
    }
    AppendPod(cs.min_score, &out);
    AppendPod(cs.max_score, &out);
    AppendPod(cs.min_cx, &out);
    AppendPod(cs.max_cx, &out);
    AppendPod(cs.min_cy, &out);
    AppendPod(cs.max_cy, &out);
    AppendPod(cs.min_area, &out);
    AppendPod(cs.max_area, &out);
  }
  return out;
}

Result<SegmentSketch> DecodeSegmentSketchPayload(const std::string& payload) {
  Cursor c(payload);
  uint32_t magic = 0, version = 0, block = 0, buckets = 0;
  if (!c.Read(&magic) || magic != kSketchMagic) return Malformed("magic");
  if (!c.Read(&version) || version != kSketchFormatVersion) {
    return Malformed("version");
  }
  if (!c.Read(&block) || block != static_cast<uint32_t>(kSketchBlockFrames)) {
    return Malformed("block size");
  }
  if (!c.Read(&buckets) ||
      buckets != static_cast<uint32_t>(kSketchScoreBuckets)) {
    return Malformed("score buckets");
  }
  SegmentSketch s;
  uint32_t class_count = 0;
  if (!c.Read(&s.first_frame) || !c.Read(&s.covered) ||
      !c.Read(&s.frames_present) || !c.Read(&s.frames_with_any) ||
      !c.Read(&class_count) || !c.Read(&s.class_bitmap)) {
    return Malformed("header");
  }
  if (s.first_frame < 0 || s.covered > kSketchBlockFrames ||
      s.frames_present > kSketchBlockFrames || class_count > 4096) {
    return Malformed("header ranges");
  }
  s.classes.resize(class_count);
  for (ClassSketch& cs : s.classes) {
    if (!c.Read(&cs.class_id)) return Malformed("class id");
    for (int i = 0; i < kSketchScoreBuckets; ++i) {
      if (!c.Read(&cs.frames_ge1[i])) return Malformed("frames_ge1");
    }
    for (int i = 0; i < kSketchScoreBuckets; ++i) {
      if (!c.Read(&cs.max_count_ge[i])) return Malformed("max_count_ge");
    }
    if (!c.Read(&cs.min_score) || !c.Read(&cs.max_score) ||
        !c.Read(&cs.min_cx) || !c.Read(&cs.max_cx) || !c.Read(&cs.min_cy) ||
        !c.Read(&cs.max_cy) || !c.Read(&cs.min_area) ||
        !c.Read(&cs.max_area)) {
      return Malformed("class ranges");
    }
  }
  if (!c.AtEnd()) return Malformed("trailing bytes");
  return s;
}

std::string EncodeSketchMetaPayload(const SketchMeta& meta) {
  std::string out;
  AppendPod(kSketchMetaMagic, &out);
  AppendPod(kSketchFormatVersion, &out);
  AppendPod(static_cast<uint32_t>(kSketchBlockFrames), &out);
  AppendPod(static_cast<uint32_t>(kSketchScoreBuckets), &out);
  AppendPod(meta.base_ns, &out);
  AppendPod(meta.base_record_count, &out);
  AppendPod(meta.block_count, &out);
  return out;
}

Result<SketchMeta> DecodeSketchMetaPayload(const std::string& payload) {
  Cursor c(payload);
  uint32_t magic = 0, version = 0, block = 0, buckets = 0;
  if (!c.Read(&magic) || magic != kSketchMetaMagic) return Malformed("magic");
  if (!c.Read(&version) || version != kSketchFormatVersion) {
    return Malformed("version");
  }
  if (!c.Read(&block) || block != static_cast<uint32_t>(kSketchBlockFrames)) {
    return Malformed("block size");
  }
  if (!c.Read(&buckets) ||
      buckets != static_cast<uint32_t>(kSketchScoreBuckets)) {
    return Malformed("score buckets");
  }
  SketchMeta m;
  if (!c.Read(&m.base_ns) || !c.Read(&m.base_record_count) ||
      !c.Read(&m.block_count) || !c.AtEnd()) {
    return Malformed("meta body");
  }
  return m;
}

void SketchBuilder::Add(int64_t frame,
                        const std::vector<Detection>& detections) {
  if (frame < 0 || frame <= last_frame_) return;  // out of contract; skip
  last_frame_ = frame;
  const int64_t first = (frame / kSketchBlockFrames) * kSketchBlockFrames;
  if (blocks_.empty() || blocks_.back().first_frame != first) {
    SegmentSketch fresh;
    fresh.first_frame = first;
    blocks_.push_back(fresh);
  }
  SegmentSketch& b = blocks_.back();
  // `covered` grows only while the block is a gap-free prefix: frame k of
  // the block arrives exactly when covered == k.
  if (frame == b.first_frame + static_cast<int64_t>(b.covered) &&
      static_cast<int64_t>(b.frames_present) ==
          static_cast<int64_t>(b.covered)) {
    ++b.covered;
  }
  ++b.frames_present;
  if (!detections.empty()) ++b.frames_with_any;

  // Per-frame per-class counts at every grid threshold.
  struct FrameClass {
    int class_id;
    uint32_t count_ge[kSketchScoreBuckets];
  };
  std::vector<FrameClass> frame_counts;
  for (const Detection& det : detections) {
    if (det.class_id >= 0 && det.class_id < 64) {
      b.class_bitmap |= 1ull << det.class_id;
    }
    // Find or insert the block-level class sketch, keeping class order
    // ascending so rebuilt sketches are byte-identical.
    auto it = std::lower_bound(
        b.classes.begin(), b.classes.end(), det.class_id,
        [](const ClassSketch& cs, int id) { return cs.class_id < id; });
    if (it == b.classes.end() || it->class_id != det.class_id) {
      ClassSketch cs;
      cs.class_id = det.class_id;
      cs.min_score = cs.max_score = det.score;
      const double cx = det.rect.CenterX();
      const double cy = det.rect.CenterY();
      const double area = det.rect.Area();
      cs.min_cx = cs.max_cx = cx;
      cs.min_cy = cs.max_cy = cy;
      cs.min_area = cs.max_area = area;
      it = b.classes.insert(it, cs);
    } else {
      it->min_score = std::min(it->min_score, det.score);
      it->max_score = std::max(it->max_score, det.score);
      const double cx = det.rect.CenterX();
      const double cy = det.rect.CenterY();
      const double area = det.rect.Area();
      it->min_cx = std::min(it->min_cx, cx);
      it->max_cx = std::max(it->max_cx, cx);
      it->min_cy = std::min(it->min_cy, cy);
      it->max_cy = std::max(it->max_cy, cy);
      it->min_area = std::min(it->min_area, area);
      it->max_area = std::max(it->max_area, area);
    }
    auto fc = std::find_if(
        frame_counts.begin(), frame_counts.end(),
        [&det](const FrameClass& f) { return f.class_id == det.class_id; });
    if (fc == frame_counts.end()) {
      frame_counts.push_back({det.class_id, {}});
      fc = frame_counts.end() - 1;
    }
    for (int i = 0; i < kSketchScoreBuckets; ++i) {
      if (det.score >=
          static_cast<double>(i) / static_cast<double>(kSketchScoreBuckets)) {
        ++fc->count_ge[i];
      }
    }
  }
  for (const FrameClass& fc : frame_counts) {
    ClassSketch* cs = nullptr;
    for (ClassSketch& candidate : b.classes) {
      if (candidate.class_id == fc.class_id) {
        cs = &candidate;
        break;
      }
    }
    for (int i = 0; i < kSketchScoreBuckets; ++i) {
      if (fc.count_ge[i] > 0) ++cs->frames_ge1[i];
      cs->max_count_ge[i] = std::max(cs->max_count_ge[i], fc.count_ge[i]);
    }
  }
}

std::vector<SegmentSketch> SketchBuilder::Finish() {
  return std::move(blocks_);
}

SketchIndex SketchIndex::Load(DetectionStore* store, uint64_t base_ns) {
  SketchIndex index;
  if (store == nullptr) return index;
  const uint64_t sketch_ns = SketchNamespace(base_ns);
  auto meta_payload = store->GetRaw(sketch_ns, kSketchMetaFrame);
  if (!meta_payload.ok()) {
    CountLoad("absent");
    return index;
  }
  auto meta = DecodeSketchMetaPayload(meta_payload.value());
  if (!meta.ok() || meta.value().base_ns != base_ns) {
    CountLoad("absent");
    return index;
  }
  // Staleness gate: any Put since the build changes the base record
  // count, and Repair/Compact refresh the sketches in place, so a count
  // match means the sketches describe exactly what reads will serve.
  if (store->RecordCount(base_ns) != meta.value().base_record_count) {
    CountLoad("stale");
    return index;
  }
  std::vector<SegmentSketch> blocks;
  Status scan = store->Scan(
      sketch_ns, [&blocks](int64_t frame, const std::string& payload) {
        if (frame == kSketchMetaFrame) return Status::OK();
        auto sketch = DecodeSegmentSketchPayload(payload);
        BLAZEIT_RETURN_NOT_OK(sketch.status());
        if (sketch.value().first_frame != frame) {
          return Malformed("record key does not match sketch range");
        }
        blocks.push_back(std::move(sketch).value());
        return Status::OK();
      });
  if (!scan.ok() ||
      static_cast<int64_t>(blocks.size()) != meta.value().block_count) {
    CountLoad("stale");
    return index;
  }
  index.meta_ = meta.value();
  index.blocks_ = std::move(blocks);  // Scan yields ascending frame order
  index.valid_ = true;
  CountLoad("valid");
  return index;
}

bool SketchIndex::SegmentCannotMatch(const SegmentSketch& sketch,
                                     const SketchProbe& probe) {
  const int bucket = ThresholdBucket(probe.score_threshold);
  // HAVING SUM(class=c) >= n: refuted when no frame reaches n.
  for (const ClassCountRequirement& req : probe.requirements) {
    const ClassSketch* cs = FindClass(sketch, req.class_id);
    const uint32_t max_count = cs != nullptr ? cs->max_count_ge[bucket] : 0;
    if (max_count < static_cast<uint32_t>(std::max(req.min_count, 0))) {
      return true;
    }
  }
  // Per-detection filters (WHERE class / ROI / area) need one detection
  // that survives all of them.
  if (probe.sel_class >= 0) {
    const ClassSketch* cs = FindClass(sketch, probe.sel_class);
    if (cs == nullptr || !ClassCouldPassFilters(*cs, probe, bucket)) {
      return true;
    }
  } else if (probe.has_roi || probe.min_area_px > 0) {
    bool any_class_could = false;
    for (const ClassSketch& cs : sketch.classes) {
      if (ClassCouldPassFilters(cs, probe, bucket)) {
        any_class_could = true;
        break;
      }
    }
    if (!any_class_could) return true;
  } else if (probe.require_any) {
    for (const ClassSketch& cs : sketch.classes) {
      if (cs.max_count_ge[bucket] > 0) return false;
    }
    return true;
  }
  return false;
}

std::vector<SketchIndex::FrameRange> SketchIndex::CandidateRanges(
    int64_t begin, int64_t end, const SketchProbe& probe) const {
  std::vector<FrameRange> out;
  if (begin >= end) return out;
  if (!valid_) {
    out.push_back({begin, end});
    return out;
  }
  auto emit = [&out](int64_t b, int64_t e) {
    if (b >= e) return;
    if (!out.empty() && out.back().end == b) {
      out.back().end = e;  // merge adjacent candidates
    } else {
      out.push_back({b, e});
    }
  };
  static obs::Counter* consulted = obs::MetricsRegistry::Global().GetCounter(
      "sketch.blocks_consulted", obs::Stability::kStable);
  static obs::Counter* refuted = obs::MetricsRegistry::Global().GetCounter(
      "sketch.blocks_refuted", obs::Stability::kStable);
  int64_t pos = begin;
  for (const SegmentSketch& block : blocks_) {
    const int64_t b_begin = block.first_frame;
    const int64_t b_end = block.first_frame + kSketchBlockFrames;
    if (b_end <= pos) continue;
    if (b_begin >= end) break;
    const int64_t i_begin = std::max(pos, b_begin);
    const int64_t i_end = std::min(end, b_end);
    // Frames before this block have no sketch: always candidates.
    emit(pos, i_begin);
    // A subrange is prunable only when the sketch covers it without gaps
    // — an uncovered frame could hold anything.
    const bool fully_covered =
        i_end <= b_begin + static_cast<int64_t>(block.covered);
    consulted->Add();
    if (!fully_covered || !SegmentCannotMatch(block, probe)) {
      emit(i_begin, i_end);
    } else {
      refuted->Add();
    }
    pos = i_end;
    if (pos >= end) break;
  }
  emit(pos, end);
  return out;
}

int64_t SketchIndex::SegmentDensity(const SegmentSketch& sketch,
                                    const SketchProbe& probe,
                                    int density_class) const {
  if (SegmentCannotMatch(sketch, probe)) return 0;
  const ClassSketch* cs = FindClass(sketch, density_class);
  if (cs == nullptr) return 0;
  return cs->frames_ge1[ThresholdBucket(probe.score_threshold)];
}

std::vector<SketchIndex::FrameRange> SketchIndex::DensityRankedRuns(
    int64_t begin, int64_t end, const SketchProbe& probe,
    int density_class) const {
  std::vector<FrameRange> runs = CandidateRanges(begin, end, probe);
  if (!valid_ || runs.size() <= 1) return runs;
  struct Ranked {
    FrameRange range;
    int64_t density;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(runs.size());
  for (const FrameRange& run : runs) {
    int64_t density = 0;
    for (const SegmentSketch& block : blocks_) {
      const int64_t b_end = block.first_frame + kSketchBlockFrames;
      if (b_end <= run.begin) continue;
      if (block.first_frame >= run.end) break;
      density += SegmentDensity(block, probe, density_class);
    }
    ranked.push_back({run, density});
  }
  // Highest density first; equal densities keep temporal order, so the
  // walk is deterministic.
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const Ranked& a, const Ranked& b) {
                     return a.density > b.density;
                   });
  std::vector<FrameRange> out;
  out.reserve(ranked.size());
  for (const Ranked& r : ranked) out.push_back(r.range);
  return out;
}

}  // namespace blazeit
