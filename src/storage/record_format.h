#ifndef BLAZEIT_STORAGE_RECORD_FORMAT_H_
#define BLAZEIT_STORAGE_RECORD_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "detect/detection.h"
#include "util/status.h"

namespace blazeit {

/// On-disk format of a detection-store segment file. All integers and IEEE
/// floats are little-endian and packed without padding (encode/decode go
/// through memcpy, never struct overlay).
///
///   segment   := file-header record*
///   file-header (32 bytes):
///     magic               u64   "BZITDET1"
///     format_version      u32   kStoreFormatVersion
///     flags               u32   0 (reserved)
///     namespace           u64   fingerprint of the record namespace this
///                               segment belongs to (e.g. a stream-day ×
///                               detector, or a trained-NN × day)
///     reserved            u64   0
///   record (16-byte header + payload + 4-byte CRC footer):
///     frame               i64
///     payload_bytes       u32   size of the payload that follows
///     reserved            u32   0
///     payload             payload_bytes of namespace-defined content
///     crc32               u32   CRC-32 of header + payload; the per-record
///                               footer that catches bit rot and truncation
///
/// Payloads are opaque at this layer; the two codecs the engine uses are
/// below: detection rows (the primary payload) and raw float vectors (NN
/// weights and per-frame NN outputs).
///
///   detections payload := count u32, then per detection:
///     class_id            i32
///     xmin,ymin,xmax,ymax f64
///     score               f64
///     num_features        u32
///     features            f32 * num_features
///   floats payload      := f32 * (payload_bytes / 4)
///
/// Readers reject, with a distinct Status per failure mode, anything that is
/// not byte-exact: wrong magic (InvalidArgument), wrong version
/// (FailedPrecondition), short header/record (OutOfRange "truncated"), and
/// CRC or structural corruption (ParseError). Stale caches never get
/// silently replayed.
inline constexpr uint64_t kStoreMagic = 0x3154454454495A42ull;  // "BZITDET1"
inline constexpr uint32_t kStoreFormatVersion = 1;
inline constexpr size_t kStoreHeaderBytes = 32;
inline constexpr size_t kRecordHeaderBytes = 16;
inline constexpr size_t kRecordFooterBytes = 4;
/// Sanity cap on one record's payload; larger length fields mean a corrupt
/// file, not a bigger frame.
inline constexpr uint32_t kMaxRecordPayloadBytes = 64u << 20;

/// Decoded segment file header.
struct SegmentHeader {
  uint32_t format_version = kStoreFormatVersion;
  uint64_t record_namespace = 0;
};

/// Appends the 32-byte encoded header to `out`.
void EncodeSegmentHeader(const SegmentHeader& header, std::string* out);

/// Decodes and validates a header from the first bytes of a file. `size` is
/// the number of bytes available (the whole file or a prefix >= 32).
Result<SegmentHeader> DecodeSegmentHeader(const void* data, size_t size);

/// Appends one encoded record (header + payload + CRC footer) to `out`.
void EncodeRecord(int64_t frame, const std::string& payload,
                  std::string* out);

/// One decoded record plus how many input bytes it consumed, so callers can
/// walk a segment record by record.
struct DecodedRecord {
  int64_t frame = 0;
  std::string payload;
  size_t encoded_bytes = 0;
};

/// Decodes the record starting at `data`; `size` is the bytes remaining in
/// the file. Verifies the CRC footer.
Result<DecodedRecord> DecodeRecord(const void* data, size_t size);

/// Framing and CRC validation of DecodeRecord without materializing the
/// payload — what index-building scans use.
struct RecordInfo {
  int64_t frame = 0;
  size_t encoded_bytes = 0;
};
Result<RecordInfo> ValidateRecord(const void* data, size_t size);

/// Serializes detection rows into a record payload (byte-exact round trip,
/// including IEEE bit patterns of box/score doubles and feature floats).
std::string EncodeDetectionsPayload(const std::vector<Detection>& detections);

/// Parses a detections payload; ParseError on any structural mismatch.
Result<std::vector<Detection>> DecodeDetectionsPayload(
    const std::string& payload);

/// Serializes a float vector (NN weights, per-frame NN outputs).
std::string EncodeFloatsPayload(const std::vector<float>& values);

/// Parses a floats payload; ParseError if the size is not a multiple of 4.
Result<std::vector<float>> DecodeFloatsPayload(const std::string& payload);

/// Serializes a double vector (per-frame filter scores, which must not be
/// rounded to float — that could flip threshold comparisons).
std::string EncodeDoublesPayload(const std::vector<double>& values);

/// Parses a doubles payload; ParseError if the size is not a multiple of 8.
Result<std::vector<double>> DecodeDoublesPayload(const std::string& payload);

}  // namespace blazeit

#endif  // BLAZEIT_STORAGE_RECORD_FORMAT_H_
