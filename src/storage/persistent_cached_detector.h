#ifndef BLAZEIT_STORAGE_PERSISTENT_CACHED_DETECTOR_H_
#define BLAZEIT_STORAGE_PERSISTENT_CACHED_DETECTOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "detect/cached_detector.h"
#include "detect/detector.h"
#include "storage/detection_store.h"
#include "util/mutex.h"

namespace blazeit {

/// Read-through/write-through detector cache backed by a DetectionStore:
/// the persistent version of CachedDetector. A frame is served from the
/// in-memory map, then from the store, and only then computed by the inner
/// detector (and written back for the next process). Records are keyed by
/// (stream-day fingerprint x detector fingerprint, frame) — never by the
/// raw seed — so days of different streams can share one store safely.
///
/// As with CachedDetector, executors charge simulated detection cost per
/// logical call; a warm store changes wall-clock only.
///
/// Thread-safe like CachedDetector: the memory map is mutex-guarded, the
/// hit/miss counters are atomic, and the store's own locks cover the disk
/// path, so parallel frame scans may call Detect concurrently.
class PersistentCachedDetector : public ObjectDetector {
 public:
  /// Neither pointer is owned; both must outlive this object.
  PersistentCachedDetector(const ObjectDetector* inner, DetectionStore* store)
      : inner_(inner), store_(store) {}

  std::vector<Detection> Detect(const SyntheticVideo& video,
                                int64_t frame) const override;

  std::string name() const override { return inner_->name() + "+store"; }

  uint64_t ParamsFingerprint() const override {
    return inner_->ParamsFingerprint();
  }

  /// Namespace detections of `video` live under in the store.
  uint64_t StreamNamespace(const SyntheticVideo& video) const;

  int64_t store_hits() const { return store_hits_.load(); }
  int64_t store_misses() const { return store_misses_.load(); }
  size_t memory_cache_size() const BLAZEIT_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return cache_.size();
  }

 private:
  const ObjectDetector* inner_;
  DetectionStore* store_;
  mutable util::Mutex mu_;
  mutable std::unordered_map<DetectionCacheKey, std::vector<Detection>,
                             DetectionCacheKeyHash>
      cache_ BLAZEIT_GUARDED_BY(mu_);
  mutable std::atomic<int64_t> store_hits_{0};
  mutable std::atomic<int64_t> store_misses_{0};
};

}  // namespace blazeit

#endif  // BLAZEIT_STORAGE_PERSISTENT_CACHED_DETECTOR_H_
