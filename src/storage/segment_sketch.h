#ifndef BLAZEIT_STORAGE_SEGMENT_SKETCH_H_
#define BLAZEIT_STORAGE_SEGMENT_SKETCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "detect/detection.h"
#include "frameql/analyzer.h"
#include "util/status.h"
#include "video/geometry.h"

namespace blazeit {

class DetectionStore;

/// Zone-map sketches over a detection namespace (the "Provenance-based
/// Data Skipping" idea applied to BlazeIt's store): the test day is cut
/// into fixed video segments of kSketchBlockFrames frames, and each
/// segment gets one sketch record summarizing every detection payload in
/// it — class-presence bitmap, a per-class count histogram over a fixed
/// score-threshold grid, score min/max, and bbox center/area ranges.
/// Sketch records are persisted as a derived record kind in the store
/// (namespace SketchNamespace(base), behind the same versioned format,
/// CRC, and epoch machinery as every other record), so the query path can
/// skip whole segments without decoding a single detection payload.
///
/// The contract that keeps pruning sound: a sketch may only rule a segment
/// out *conservatively*. Per-class count bounds are taken over a score
/// grid at or below any query threshold (a superset of the thresholded
/// detections the executors see), and geometry ranges are taken over all
/// detections of the class, so "the sketch says no frame here can match"
/// is provable, never probabilistic. Pruned frames are exactly frames the
/// executor would have rejected, which is why indexed and unindexed runs
/// return bit-identical outputs (sketch_invariance_test).
///
/// Staleness is handled two ways. Lazily: the meta record stores the base
/// namespace's record count at build time, and SketchIndex::Load treats a
/// mismatch (any later Put) as "no index". Eagerly: the store refreshes
/// sketches when it flushes new records of an indexed namespace, keeps
/// them across Compact (which preserves the resolved view), and drops
/// them when Repair rewrites payloads (see DetectionStore).
inline constexpr uint32_t kSketchFormatVersion = 1;
/// Frames per sketched video segment. 512 frames (~17 s at 30 fps)
/// balances skip granularity against index size: a one-hour day is ~210
/// sketch records.
inline constexpr int64_t kSketchBlockFrames = 512;
/// Score-threshold grid: bucket i summarizes detections with
/// score >= i / kSketchScoreBuckets. A query threshold t is answered from
/// bucket floor(t * kSketchScoreBuckets) — at or below t, so the bucket's
/// counts bound the thresholded counts from above.
inline constexpr int kSketchScoreBuckets = 8;
/// Record key of the per-namespace sketch meta record. Detection records
/// use frames >= 0, so the key cannot collide.
inline constexpr int64_t kSketchMetaFrame = -1;

/// Namespace the sketches of `base_ns` live under. Pure function of the
/// base namespace and the sketch format parameters, so a format or block
/// size change orphans old sketches instead of replaying them (the base
/// namespace already mixes in kDerivedArtifactEpoch).
uint64_t SketchNamespace(uint64_t base_ns);

/// Per-class summary inside one sketched segment.
struct ClassSketch {
  int32_t class_id = 0;
  /// frames_ge1[i]: frames with >= 1 detection of the class at score grid
  /// bucket i — the temporal density signal NeedleTail-style run ranking
  /// uses. max_count_ge[i]: max per-frame count at bucket i — bounds any
  /// HAVING SUM(class=c) >= n conjunct.
  uint32_t frames_ge1[kSketchScoreBuckets] = {};
  uint32_t max_count_ge[kSketchScoreBuckets] = {};
  /// Score and geometry ranges over ALL detections of the class (any
  /// score): exact doubles produced by the same Rect::CenterX/CenterY/
  /// Area arithmetic the executors apply, so ROI and min-area pruning
  /// compare like against like with no epsilon.
  double min_score = 0, max_score = 0;
  double min_cx = 0, max_cx = 0;
  double min_cy = 0, max_cy = 0;
  double min_area = 0, max_area = 0;

  bool operator==(const ClassSketch& other) const;
};

/// One sketched video segment: frames [first_frame, first_frame +
/// kSketchBlockFrames) of the base namespace.
struct SegmentSketch {
  int64_t first_frame = 0;
  /// Contiguous run of base records starting exactly at first_frame.
  /// Pruning a scan subrange is only sound when the subrange lies inside
  /// [first_frame, first_frame + covered) — a gap could hide frames the
  /// sketch never saw.
  uint32_t covered = 0;
  /// Base records present anywhere in the block (>= covered when the
  /// block has holes after a gap).
  uint32_t frames_present = 0;
  /// Frames with at least one detection of any class at any score.
  uint32_t frames_with_any = 0;
  /// Bit c set when class c appears in the block (any score).
  uint64_t class_bitmap = 0;
  /// One entry per set bitmap bit, ascending class_id.
  std::vector<ClassSketch> classes;

  bool operator==(const SegmentSketch& other) const;
};

/// Per-namespace sketch metadata (record kSketchMetaFrame).
struct SketchMeta {
  uint64_t base_ns = 0;
  /// store->RecordCount(base_ns) when the sketches were built; Load
  /// treats any difference as a stale index.
  int64_t base_record_count = 0;
  int64_t block_count = 0;
};

/// Sketch payload codecs, strict like the other record codecs: own magic,
/// version, and exact length checks, so store-wide Repair recognizes
/// sketch records as valid engine payloads.
std::string EncodeSegmentSketchPayload(const SegmentSketch& sketch);
Result<SegmentSketch> DecodeSegmentSketchPayload(const std::string& payload);
std::string EncodeSketchMetaPayload(const SketchMeta& meta);
Result<SketchMeta> DecodeSketchMetaPayload(const std::string& payload);

/// Streaming builder: feed every (frame, detections) of the base
/// namespace in ascending frame order, then Finish().
class SketchBuilder {
 public:
  void Add(int64_t frame, const std::vector<Detection>& detections);
  std::vector<SegmentSketch> Finish();

 private:
  std::vector<SegmentSketch> blocks_;
  int64_t last_frame_ = -1;
};

/// The conjuncts a sketch can refute for one scan. Thresholded fields
/// mirror what the executors check per frame (LabeledSet thresholds at
/// score >= score_threshold).
struct SketchProbe {
  /// The stream's detection threshold; answered from the grid bucket at
  /// or below it.
  double score_threshold = 0.0;
  /// HAVING SUM(class=c) >= n conjuncts; a segment where any requirement
  /// is unsatisfiable on every frame is skippable.
  std::vector<ClassCountRequirement> requirements;
  /// WHERE class = c (-1: none). With has_roi/min_area_px, the per-
  /// detection filters of the full scan.
  int sel_class = -1;
  bool has_roi = false;
  Rect roi{0, 0, 1, 1};
  /// Pixel-area threshold plus the frame size it is evaluated at
  /// (PixelArea(rect, w, h) < min_area_px filters a detection out).
  double min_area_px = 0.0;
  int frame_width = 0;
  int frame_height = 0;
  /// Frames must have >= 1 detection at the threshold to match (the
  /// predicate-free full scan).
  bool require_any = false;
};

/// Loaded, validity-checked sketch index of one base namespace, consulted
/// by the executors. An index that failed to load (absent, stale, or
/// malformed) is simply not `valid()`, and consultation degrades to "no
/// pruning" — never to an error on the query path.
class SketchIndex {
 public:
  SketchIndex() = default;

  /// Loads the sketches of `base_ns`; invalid (not an error) when the
  /// store is null, the sketches are absent, or the meta record count no
  /// longer matches the base namespace.
  static SketchIndex Load(DetectionStore* store, uint64_t base_ns);

  bool valid() const { return valid_; }
  const std::vector<SegmentSketch>& blocks() const { return blocks_; }
  const SketchMeta& meta() const { return meta_; }

  /// True when no frame of `sketch` can satisfy the probe — the per-
  /// conjunct refutation at the heart of data skipping.
  static bool SegmentCannotMatch(const SegmentSketch& sketch,
                                 const SketchProbe& probe);

  /// Subranges of [begin, end) that may contain matches: the scan range
  /// minus every fully-covered segment the probe refutes. Adjacent
  /// surviving subranges are merged; an invalid index returns the whole
  /// range. Segment boundaries never leak into results — the ranges are
  /// clipped to [begin, end), so ResolveFrameWindow semantics are
  /// honored exactly.
  struct FrameRange {
    int64_t begin = 0;
    int64_t end = 0;
  };
  std::vector<FrameRange> CandidateRanges(int64_t begin, int64_t end,
                                          const SketchProbe& probe) const;

  /// Temporal density of a segment under the probe: frames with >= 1
  /// detection of `density_class` at the probe threshold, 0 when the
  /// probe refutes the segment. The ranking signal for density-first
  /// exploration of LIMIT queries.
  int64_t SegmentDensity(const SegmentSketch& sketch, const SketchProbe& probe,
                         int density_class) const;

  /// CandidateRanges split into maximal runs of adjacent candidate
  /// segments and ordered by total density, highest first (ties: earlier
  /// run first, for determinism). Frames inside a run stay ascending.
  std::vector<FrameRange> DensityRankedRuns(int64_t begin, int64_t end,
                                            const SketchProbe& probe,
                                            int density_class) const;

 private:
  bool valid_ = false;
  SketchMeta meta_;
  /// Ascending first_frame.
  std::vector<SegmentSketch> blocks_;
};

}  // namespace blazeit

#endif  // BLAZEIT_STORAGE_SEGMENT_SKETCH_H_
