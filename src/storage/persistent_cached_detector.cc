#include "storage/persistent_cached_detector.h"

#include "util/artifact_cache.h"
#include "util/logging.h"

namespace blazeit {

uint64_t PersistentCachedDetector::StreamNamespace(
    const SyntheticVideo& video) const {
  // Salt in the code epoch: the fingerprints identify the *inputs*, the
  // epoch identifies the implementation that turned them into detections.
  return HashCombine(
      HashCombine(video.fingerprint(), inner_->ParamsFingerprint()),
      kDerivedArtifactEpoch);
}

std::vector<Detection> PersistentCachedDetector::Detect(
    const SyntheticVideo& video, int64_t frame) const {
  DetectionCacheKey key{video.fingerprint(), frame};
  {
    util::MutexLock lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }

  // Store read, inner compute, and store write all run outside the map
  // lock (the store carries its own locking; detections are deterministic
  // per frame, so a racing double-compute inserts identical content and
  // PutDetections' first-write-wins absorbs the duplicate).
  const uint64_t ns = StreamNamespace(video);
  auto stored = store_->GetDetections(ns, frame);
  if (stored.ok()) {
    store_hits_.fetch_add(1, std::memory_order_relaxed);
    util::MutexLock lock(mu_);
    return cache_.emplace(key, std::move(stored).value()).first->second;
  }
  // A record that exists but fails to decode means on-disk corruption that
  // slipped past Open (e.g. a CRC-valid but semantically malformed record
  // from a writer bug or key collision). Recompute, then *repair* the
  // record in place — a plain Put would lose to first-write-wins and the
  // corruption would warn on every future run.
  const bool repair = stored.status().code() != StatusCode::kNotFound;
  if (repair) {
    BLAZEIT_LOG(kWarning) << "detection store read failed, recomputing and "
                             "repairing in place: "
                          << stored.status().ToString();
  }
  store_misses_.fetch_add(1, std::memory_order_relaxed);
  std::vector<Detection> dets = inner_->Detect(video, frame);
  Status put = repair
                   ? store_->Repair(ns, frame, EncodeDetectionsPayload(dets))
                   : store_->PutDetections(ns, frame, dets);
  if (!put.ok()) {
    BLAZEIT_LOG(kWarning) << "detection store write failed: "
                          << put.ToString();
  }
  util::MutexLock lock(mu_);
  return cache_.emplace(key, std::move(dets)).first->second;
}

}  // namespace blazeit
