#include "storage/store_artifact_cache.h"

#include "obs/metrics.h"
#include "storage/record_format.h"
#include "util/logging.h"

namespace blazeit {

namespace {

void WarnOnce(const char* what, const Status& status) {
  BLAZEIT_LOG(kWarning) << what << ": " << status.ToString();
}

/// Callers' namespaces fingerprint the *inputs*; salt in the code epoch so
/// artifacts computed by older implementations are never replayed.
uint64_t Salted(uint64_t ns) {
  return HashCombine(ns, kDerivedArtifactEpoch);
}

obs::Counter* TierHits() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "cache.hits{tier=persistent}", obs::Stability::kStable);
  return c;
}

obs::Counter* TierMisses() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "cache.misses{tier=persistent}", obs::Stability::kStable);
  return c;
}

}  // namespace

void StoreArtifactCache::MarkCorrupt(uint64_t salted_ns, int64_t frame) {
  util::MutexLock lock(corrupt_mu_);
  corrupt_.emplace(salted_ns, frame);
}

bool StoreArtifactCache::ConsumeCorrupt(uint64_t salted_ns, int64_t frame) {
  util::MutexLock lock(corrupt_mu_);
  return corrupt_.erase({salted_ns, frame}) > 0;
}

bool StoreArtifactCache::GetFrameFloats(uint64_t ns, int64_t frame,
                                        std::vector<float>* out) {
  const uint64_t salted = Salted(ns);
  auto values = store_->GetFloats(salted, frame);
  if (!values.ok()) {
    if (values.status().code() != StatusCode::kNotFound) {
      // Corrupt record behind a valid CRC: remember it so the caller's
      // recompute-and-Put repairs it in place instead of silently losing
      // to first-write-wins (and re-warning every run).
      WarnOnce("artifact cache read failed, recomputing", values.status());
      MarkCorrupt(salted, frame);
    }
    ++misses_;
    TierMisses()->Add();
    return false;
  }
  ++hits_;
  TierHits()->Add();
  *out = std::move(values).value();
  return true;
}

void StoreArtifactCache::RepairOrPut(uint64_t salted_ns, int64_t frame,
                                     std::string payload, const char* kind) {
  Status st;
  if (ConsumeCorrupt(salted_ns, frame)) {
    st = store_->Repair(salted_ns, frame, payload);
    if (st.ok()) {
      ++repairs_;
      static obs::Counter* repairs = obs::MetricsRegistry::Global().GetCounter(
          "cache.repairs{tier=persistent}", obs::Stability::kStable);
      repairs->Add();
      BLAZEIT_LOG(kWarning) << "artifact cache repaired corrupt record in "
                               "place ("
                            << kind << ", frame " << frame << ")";
    }
  } else {
    st = store_->PutRaw(salted_ns, frame, std::move(payload));
  }
  if (!st.ok()) WarnOnce("artifact cache write failed", st);
}

void StoreArtifactCache::PutFrameFloats(uint64_t ns, int64_t frame,
                                        const std::vector<float>& values) {
  RepairOrPut(Salted(ns), frame, EncodeFloatsPayload(values), "floats");
}

bool StoreArtifactCache::GetFrameDoubles(uint64_t ns, int64_t frame,
                                         std::vector<double>* out) {
  const uint64_t salted = Salted(ns);
  auto values = store_->GetDoubles(salted, frame);
  if (!values.ok()) {
    if (values.status().code() != StatusCode::kNotFound) {
      WarnOnce("artifact cache read failed, recomputing", values.status());
      MarkCorrupt(salted, frame);
    }
    ++misses_;
    TierMisses()->Add();
    return false;
  }
  ++hits_;
  TierHits()->Add();
  *out = std::move(values).value();
  return true;
}

void StoreArtifactCache::PutFrameDoubles(uint64_t ns, int64_t frame,
                                         const std::vector<double>& values) {
  RepairOrPut(Salted(ns), frame, EncodeDoublesPayload(values), "doubles");
}

bool StoreArtifactCache::GetBlob(uint64_t ns, std::vector<float>* out) {
  return GetFrameFloats(ns, kBlobFrame, out);
}

void StoreArtifactCache::PutBlob(uint64_t ns,
                                 const std::vector<float>& values) {
  PutFrameFloats(ns, kBlobFrame, values);
}

}  // namespace blazeit
