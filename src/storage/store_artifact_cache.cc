#include "storage/store_artifact_cache.h"

#include "util/logging.h"

namespace blazeit {

namespace {

void WarnOnce(const char* what, const Status& status) {
  BLAZEIT_LOG(kWarning) << what << ": " << status.ToString();
}

/// Callers' namespaces fingerprint the *inputs*; salt in the code epoch so
/// artifacts computed by older implementations are never replayed.
uint64_t Salted(uint64_t ns) {
  return HashCombine(ns, kDerivedArtifactEpoch);
}

}  // namespace

bool StoreArtifactCache::GetFrameFloats(uint64_t ns, int64_t frame,
                                        std::vector<float>* out) {
  auto values = store_->GetFloats(Salted(ns), frame);
  if (!values.ok()) {
    if (values.status().code() != StatusCode::kNotFound) {
      WarnOnce("artifact cache read failed, recomputing", values.status());
    }
    ++misses_;
    return false;
  }
  ++hits_;
  *out = std::move(values).value();
  return true;
}

void StoreArtifactCache::PutFrameFloats(uint64_t ns, int64_t frame,
                                        const std::vector<float>& values) {
  Status st = store_->PutFloats(Salted(ns), frame, values);
  if (!st.ok()) WarnOnce("artifact cache write failed", st);
}

bool StoreArtifactCache::GetFrameDoubles(uint64_t ns, int64_t frame,
                                         std::vector<double>* out) {
  auto values = store_->GetDoubles(Salted(ns), frame);
  if (!values.ok()) {
    if (values.status().code() != StatusCode::kNotFound) {
      WarnOnce("artifact cache read failed, recomputing", values.status());
    }
    ++misses_;
    return false;
  }
  ++hits_;
  *out = std::move(values).value();
  return true;
}

void StoreArtifactCache::PutFrameDoubles(uint64_t ns, int64_t frame,
                                         const std::vector<double>& values) {
  Status st = store_->PutDoubles(Salted(ns), frame, values);
  if (!st.ok()) WarnOnce("artifact cache write failed", st);
}

bool StoreArtifactCache::GetBlob(uint64_t ns, std::vector<float>* out) {
  return GetFrameFloats(ns, kBlobFrame, out);
}

void StoreArtifactCache::PutBlob(uint64_t ns,
                                 const std::vector<float>& values) {
  PutFrameFloats(ns, kBlobFrame, values);
}

}  // namespace blazeit
