#include "storage/record_format.h"

#include <bit>
#include <cstring>

#include "util/crc32.h"
#include "util/string_util.h"

namespace blazeit {

// The format is defined as little-endian; this library only targets
// little-endian hosts, so encode/decode are plain memcpy.
static_assert(std::endian::native == std::endian::little,
              "detection-store format requires a little-endian host");

namespace {

template <typename T>
void AppendRaw(std::string* out, T value) {
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
T ReadRaw(const unsigned char* p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

}  // namespace

void EncodeSegmentHeader(const SegmentHeader& header, std::string* out) {
  AppendRaw<uint64_t>(out, kStoreMagic);
  AppendRaw<uint32_t>(out, header.format_version);
  AppendRaw<uint32_t>(out, 0);  // flags
  AppendRaw<uint64_t>(out, header.record_namespace);
  AppendRaw<uint64_t>(out, 0);  // reserved
}

Result<SegmentHeader> DecodeSegmentHeader(const void* data, size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  if (size < sizeof(uint64_t)) {
    return Status::OutOfRange(
        StrFormat("truncated store file: %zu bytes, header needs %zu", size,
                  kStoreHeaderBytes));
  }
  const uint64_t magic = ReadRaw<uint64_t>(p);
  if (magic != kStoreMagic) {
    return Status::InvalidArgument(
        StrFormat("not a detection store file (bad magic 0x%016llx)",
                  static_cast<unsigned long long>(magic)));
  }
  if (size < kStoreHeaderBytes) {
    return Status::OutOfRange(
        StrFormat("truncated store header: %zu of %zu bytes", size,
                  kStoreHeaderBytes));
  }
  SegmentHeader header;
  header.format_version = ReadRaw<uint32_t>(p + 8);
  if (header.format_version != kStoreFormatVersion) {
    return Status::FailedPrecondition(
        StrFormat("store format version %u unsupported (reader expects %u); "
                  "rebuild the cache",
                  header.format_version, kStoreFormatVersion));
  }
  header.record_namespace = ReadRaw<uint64_t>(p + 16);
  return header;
}

void EncodeRecord(int64_t frame, const std::string& payload,
                  std::string* out) {
  const size_t start = out->size();
  AppendRaw<int64_t>(out, frame);
  AppendRaw<uint32_t>(out, static_cast<uint32_t>(payload.size()));
  AppendRaw<uint32_t>(out, 0);  // reserved
  out->append(payload);
  const uint32_t crc =
      Crc32(out->data() + start, kRecordHeaderBytes + payload.size());
  AppendRaw<uint32_t>(out, crc);
}

Result<RecordInfo> ValidateRecord(const void* data, size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  if (size < kRecordHeaderBytes) {
    return Status::OutOfRange(
        StrFormat("truncated record header: %zu of %zu bytes", size,
                  kRecordHeaderBytes));
  }
  RecordInfo info;
  info.frame = ReadRaw<int64_t>(p);
  const uint32_t payload_bytes = ReadRaw<uint32_t>(p + 8);
  if (payload_bytes > kMaxRecordPayloadBytes) {
    return Status::ParseError(
        StrFormat("corrupt record at frame %lld: payload length %u exceeds "
                  "the %u-byte cap",
                  static_cast<long long>(info.frame), payload_bytes,
                  kMaxRecordPayloadBytes));
  }
  const size_t total =
      kRecordHeaderBytes + payload_bytes + kRecordFooterBytes;
  if (size < total) {
    return Status::OutOfRange(
        StrFormat("truncated record at frame %lld: %zu of %zu bytes",
                  static_cast<long long>(info.frame), size, total));
  }
  const uint32_t stored_crc =
      ReadRaw<uint32_t>(p + kRecordHeaderBytes + payload_bytes);
  const uint32_t actual_crc = Crc32(p, kRecordHeaderBytes + payload_bytes);
  if (stored_crc != actual_crc) {
    return Status::ParseError(
        StrFormat("checksum mismatch at frame %lld: stored 0x%08x, "
                  "computed 0x%08x",
                  static_cast<long long>(info.frame), stored_crc,
                  actual_crc));
  }
  info.encoded_bytes = total;
  return info;
}

Result<DecodedRecord> DecodeRecord(const void* data, size_t size) {
  auto info = ValidateRecord(data, size);
  if (!info.ok()) return info.status();
  DecodedRecord record;
  record.frame = info.value().frame;
  record.encoded_bytes = info.value().encoded_bytes;
  record.payload.assign(
      static_cast<const char*>(data) + kRecordHeaderBytes,
      record.encoded_bytes - kRecordHeaderBytes - kRecordFooterBytes);
  return record;
}

std::string EncodeDetectionsPayload(
    const std::vector<Detection>& detections) {
  std::string out;
  size_t bytes = sizeof(uint32_t);
  for (const Detection& det : detections) {
    bytes += sizeof(int32_t) + 5 * sizeof(double) + sizeof(uint32_t) +
             det.features.size() * sizeof(float);
  }
  out.reserve(bytes);
  AppendRaw<uint32_t>(&out, static_cast<uint32_t>(detections.size()));
  for (const Detection& det : detections) {
    AppendRaw<int32_t>(&out, det.class_id);
    AppendRaw<double>(&out, det.rect.xmin);
    AppendRaw<double>(&out, det.rect.ymin);
    AppendRaw<double>(&out, det.rect.xmax);
    AppendRaw<double>(&out, det.rect.ymax);
    AppendRaw<double>(&out, det.score);
    AppendRaw<uint32_t>(&out, static_cast<uint32_t>(det.features.size()));
    for (float f : det.features) AppendRaw<float>(&out, f);
  }
  return out;
}

Result<std::vector<Detection>> DecodeDetectionsPayload(
    const std::string& payload) {
  const auto* cursor = reinterpret_cast<const unsigned char*>(payload.data());
  const unsigned char* end = cursor + payload.size();
  if (payload.size() < sizeof(uint32_t)) {
    return Status::ParseError("detections payload shorter than its count");
  }
  const uint32_t count = ReadRaw<uint32_t>(cursor);
  cursor += sizeof(uint32_t);
  constexpr size_t kFixed =
      sizeof(int32_t) + 5 * sizeof(double) + sizeof(uint32_t);
  // A payload from another record kind misread as detections can claim
  // billions of rows; every real row occupies at least its fixed-width
  // prefix, so reject impossible counts before reserve() can throw.
  if (static_cast<size_t>(end - cursor) < static_cast<size_t>(count) * kFixed) {
    return Status::ParseError(StrFormat(
        "detections payload too short for its claimed %u rows", count));
  }
  std::vector<Detection> detections;
  detections.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (static_cast<size_t>(end - cursor) < kFixed) {
      return Status::ParseError(
          StrFormat("detections payload ends inside row %u of %u", i, count));
    }
    Detection det;
    det.class_id = ReadRaw<int32_t>(cursor);
    det.rect.xmin = ReadRaw<double>(cursor + 4);
    det.rect.ymin = ReadRaw<double>(cursor + 12);
    det.rect.xmax = ReadRaw<double>(cursor + 20);
    det.rect.ymax = ReadRaw<double>(cursor + 28);
    det.score = ReadRaw<double>(cursor + 36);
    const uint32_t num_features = ReadRaw<uint32_t>(cursor + 44);
    cursor += kFixed;
    const size_t feature_bytes =
        static_cast<size_t>(num_features) * sizeof(float);
    if (static_cast<size_t>(end - cursor) < feature_bytes) {
      return Status::ParseError(StrFormat(
          "feature vector of row %u overruns the detections payload", i));
    }
    det.features.resize(num_features);
    if (num_features > 0) {
      std::memcpy(det.features.data(), cursor, feature_bytes);
    }
    cursor += feature_bytes;
    detections.push_back(std::move(det));
  }
  if (cursor != end) {
    return Status::ParseError(
        StrFormat("detections payload has %zu trailing bytes",
                  static_cast<size_t>(end - cursor)));
  }
  return detections;
}

std::string EncodeFloatsPayload(const std::vector<float>& values) {
  std::string out;
  out.resize(values.size() * sizeof(float));
  if (!values.empty()) {
    std::memcpy(out.data(), values.data(), out.size());
  }
  return out;
}

Result<std::vector<float>> DecodeFloatsPayload(const std::string& payload) {
  if (payload.size() % sizeof(float) != 0) {
    return Status::ParseError(
        StrFormat("floats payload of %zu bytes is not a multiple of 4",
                  payload.size()));
  }
  std::vector<float> values(payload.size() / sizeof(float));
  if (!values.empty()) {
    std::memcpy(values.data(), payload.data(), payload.size());
  }
  return values;
}

std::string EncodeDoublesPayload(const std::vector<double>& values) {
  std::string out;
  out.resize(values.size() * sizeof(double));
  if (!values.empty()) {
    std::memcpy(out.data(), values.data(), out.size());
  }
  return out;
}

Result<std::vector<double>> DecodeDoublesPayload(const std::string& payload) {
  if (payload.size() % sizeof(double) != 0) {
    return Status::ParseError(
        StrFormat("doubles payload of %zu bytes is not a multiple of 8",
                  payload.size()));
  }
  std::vector<double> values(payload.size() / sizeof(double));
  if (!values.empty()) {
    std::memcpy(values.data(), payload.data(), payload.size());
  }
  return values;
}

}  // namespace blazeit
