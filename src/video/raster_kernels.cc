#include "video/raster_kernels.h"

#include <algorithm>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define BLAZEIT_X86_64 1
#endif

#include "util/cpu_features.h"
#include "util/random.h"

namespace blazeit {
namespace raster {

namespace {
constexpr uint64_t kSplitMixGamma = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t kSplitMixMul1 = 0xbf58476d1ce4e5b9ULL;
constexpr uint64_t kSplitMixMul2 = 0x94d049bb133111ebULL;
}  // namespace

const float* NoiseTable() {
  static float* table = [] {
    float* t = new float[kNoiseTableSize];
    Rng rng(0x6a09e667f3bcc908ULL);
    for (int i = 0; i < kNoiseTableSize; ++i) {
      t[i] = static_cast<float>(rng.Normal(0.0, 1.0));
    }
    return t;
  }();
  return table;
}

void AddGaussianNoiseClampScalar(float* data, size_t n, uint64_t state,
                                 float sigma) {
  const float* table = NoiseTable();
  // The stream is written with the per-element state hoisted
  // (state_i = state + (i+1) * gamma, exact mod-2^64 arithmetic) instead
  // of a serial `state += gamma`, which breaks the loop-carried dependency
  // without changing a single index.
  for (size_t i = 0; i < n; ++i) {
    uint64_t z = state + (i + 1) * kSplitMixGamma;
    z = (z ^ (z >> 30)) * kSplitMixMul1;
    z = (z ^ (z >> 27)) * kSplitMixMul2;
    z ^= z >> 31;
    data[i] = std::clamp(data[i] + sigma * table[z & (kNoiseTableSize - 1)],
                         0.0f, 1.0f);
  }
}

#ifdef BLAZEIT_X86_64

// GCC 12's gather/shift intrinsics expand through an uninitialized
// placeholder vector, tripping -Wmaybe-uninitialized at -O2; the pattern
// is well-defined, so silence the false positive for the kernel body.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

// Eight SplitMix64 lanes at a time; bit-identical to the scalar stream
// (64-bit lane arithmetic is exact, the float update keeps multiply and
// add as separate intrinsics so no FMA contraction can occur).
__attribute__((target("avx512f,avx512dq"))) void AddGaussianNoiseClampAvx512(
    float* data, size_t n, uint64_t state, float sigma) {
  const float* table = NoiseTable();
  const __m512i gamma = _mm512_set1_epi64(static_cast<long long>(kSplitMixGamma));
  const __m512i mul1 = _mm512_set1_epi64(static_cast<long long>(kSplitMixMul1));
  const __m512i mul2 = _mm512_set1_epi64(static_cast<long long>(kSplitMixMul2));
  const __m512i mask = _mm512_set1_epi64(kNoiseTableSize - 1);
  const __m512i step = _mm512_set1_epi64(static_cast<long long>(8 * kSplitMixGamma));
  const __m256 sv = _mm256_set1_ps(sigma);
  const __m256 zero = _mm256_setzero_ps();
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m512i lanes = _mm512_setr_epi64(1, 2, 3, 4, 5, 6, 7, 8);
  __m512i s = _mm512_add_epi64(_mm512_set1_epi64(static_cast<long long>(state)),
                               _mm512_mullo_epi64(lanes, gamma));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i z = s;
    s = _mm512_add_epi64(s, step);
    z = _mm512_mullo_epi64(_mm512_xor_si512(z, _mm512_srli_epi64(z, 30)), mul1);
    z = _mm512_mullo_epi64(_mm512_xor_si512(z, _mm512_srli_epi64(z, 27)), mul2);
    z = _mm512_xor_si512(z, _mm512_srli_epi64(z, 31));
    const __m512i idx = _mm512_and_si512(z, mask);
    const __m256 noise = _mm512_i64gather_ps(idx, table, 4);
    __m256 v = _mm256_loadu_ps(data + i);
    v = _mm256_add_ps(v, _mm256_mul_ps(sv, noise));
    v = _mm256_min_ps(_mm256_max_ps(v, zero), one);
    _mm256_storeu_ps(data + i, v);
  }
  if (i < n) AddGaussianNoiseClampScalar(data + i, n - i, state + i * kSplitMixGamma, sigma);
}

// Four SplitMix64 lanes at a time on the AVX2 tier. AVX2 has no 64-bit
// lane multiply, so it is composed from 32x32->64 partial products
// (exact mod-2^64 arithmetic, identical to the scalar stream); the float
// update mirrors the scalar expression with separate multiply and add.
__attribute__((target("avx2"))) static inline __m256i Mullo64Avx2(
    __m256i a, __m256i b) {
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a, b_hi),
                                         _mm256_mul_epu32(a_hi, b));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) void AddGaussianNoiseClampAvx2(
    float* data, size_t n, uint64_t state, float sigma) {
  const float* table = NoiseTable();
  const __m256i mul1 = _mm256_set1_epi64x(static_cast<long long>(kSplitMixMul1));
  const __m256i mul2 = _mm256_set1_epi64x(static_cast<long long>(kSplitMixMul2));
  const __m256i mask = _mm256_set1_epi64x(kNoiseTableSize - 1);
  const __m256i step =
      _mm256_set1_epi64x(static_cast<long long>(4 * kSplitMixGamma));
  const __m128 sv = _mm_set1_ps(sigma);
  const __m128 zero = _mm_setzero_ps();
  const __m128 one = _mm_set1_ps(1.0f);
  __m256i s = _mm256_setr_epi64x(
      static_cast<long long>(state + 1 * kSplitMixGamma),
      static_cast<long long>(state + 2 * kSplitMixGamma),
      static_cast<long long>(state + 3 * kSplitMixGamma),
      static_cast<long long>(state + 4 * kSplitMixGamma));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i z = s;
    s = _mm256_add_epi64(s, step);
    z = Mullo64Avx2(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)), mul1);
    z = Mullo64Avx2(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)), mul2);
    z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
    const __m256i idx = _mm256_and_si256(z, mask);
    const __m128 noise = _mm256_i64gather_ps(table, idx, 4);
    __m128 v = _mm_loadu_ps(data + i);
    v = _mm_add_ps(v, _mm_mul_ps(sv, noise));
    v = _mm_min_ps(_mm_max_ps(v, zero), one);
    _mm_storeu_ps(data + i, v);
  }
  if (i < n) {
    AddGaussianNoiseClampScalar(data + i, n - i, state + i * kSplitMixGamma,
                                sigma);
  }
}

#pragma GCC diagnostic pop

#endif  // BLAZEIT_X86_64

void AddGaussianNoiseClamp(float* data, size_t n, uint64_t state,
                           float sigma) {
#ifdef BLAZEIT_X86_64
  if (CpuHasAvx512()) {
    AddGaussianNoiseClampAvx512(data, n, state, sigma);
    return;
  }
  if (CpuHasAvx2()) {
    AddGaussianNoiseClampAvx2(data, n, state, sigma);
    return;
  }
#endif
  AddGaussianNoiseClampScalar(data, n, state, sigma);
}

}  // namespace raster
}  // namespace blazeit
