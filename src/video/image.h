#ifndef BLAZEIT_VIDEO_IMAGE_H_
#define BLAZEIT_VIDEO_IMAGE_H_

#include <cstdint>
#include <vector>

#include "util/random.h"
#include "video/geometry.h"

namespace blazeit {

/// RGB color with channel values in [0, 1].
struct Color {
  float r = 0;
  float g = 0;
  float b = 0;

  Color Scaled(float factor) const {
    return Color{r * factor, g * factor, b * factor};
  }
};

/// A small dense RGB raster, row-major, float channels in [0, 1]. This is
/// the pixel substrate for everything that needs real image content: the
/// specialized-NN features, the content-based (e.g. redness) UDF filters,
/// and the `content` field of FrameQL records.
class Image {
 public:
  Image() : width_(0), height_(0) {}
  Image(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }
  bool Empty() const { return width_ == 0 || height_ == 0; }

  /// Reshapes in place without preserving contents (the backing buffer is
  /// reused when the pixel count allows). Lets render loops recycle one
  /// scratch Image instead of allocating per frame.
  void SetSize(int width, int height);

  /// Channel value at pixel (x, y); c in {0: red, 1: green, 2: blue}.
  float At(int x, int y, int c) const {
    return data_[Index(x, y, c)];
  }
  void Set(int x, int y, int c, float v) { data_[Index(x, y, c)] = v; }
  void SetPixel(int x, int y, const Color& color);

  /// Fills the whole image with a solid color. The color is clamped to the
  /// [0,1] channel contract at the fill site (rasterization is where pixel
  /// values enter an Image, so out-of-range inputs — e.g. an extreme
  /// lighting factor — can never leak out-of-contract values into NN
  /// features or content UDFs).
  void Fill(const Color& color);

  /// Fills the normalized-coordinate rectangle with a solid color. Pixels
  /// are covered if their center lies inside the rectangle. The color is
  /// clamped to [0,1] as in Fill.
  void FillRect(const Rect& rect, const Color& color);

  /// Adds i.i.d. Gaussian noise (clamped to [0,1]) to every channel. One
  /// engine draw seeds the whole frame's noise stream.
  void AddNoise(Rng* rng, double sigma);

  /// As AddNoise but takes the frame's stream seed directly — bit-identical
  /// to AddNoise given `state == rng->engine()()`. Lets the renderer skip
  /// constructing a full engine per frame (see Mt19937_64FirstDraw).
  void AddNoiseFromState(uint64_t state, double sigma);

  /// Multiplies every channel by `factor` (clamped to [0,1]); used for
  /// global lighting variation.
  void ScaleBrightness(float factor);

  /// Mean of channel `c` over the whole image.
  double MeanChannel(int c) const;
  /// All three channel means in one pass over the pixels; bit-identical to
  /// calling MeanChannel(0..2) but 3x less memory traffic (used by the
  /// fused feature-extraction path).
  void MeanChannels(double out[3]) const;
  /// Mean of channel `c` over the normalized-coordinate rectangle.
  double MeanChannelInRect(int c, const Rect& rect) const;

  /// Crops the normalized-coordinate rectangle into a new image (pixel
  /// bounds are rounded outward; the result is at least 1x1 if the source
  /// is non-empty and the rect is non-empty).
  Image Crop(const Rect& rect) const;

  /// Box-filter downsample to the target size. Upsampling is nearest.
  Image Resize(int new_width, int new_height) const;

  /// Flattens to a feature vector (RGB interleaved, row-major), the input
  /// representation of the specialized NNs.
  std::vector<float> Flatten() const;

  const std::vector<float>& data() const { return data_; }

 private:
  size_t Index(int x, int y, int c) const {
    return (static_cast<size_t>(y) * static_cast<size_t>(width_) +
            static_cast<size_t>(x)) * 3 + static_cast<size_t>(c);
  }

  int width_;
  int height_;
  std::vector<float> data_;
};

}  // namespace blazeit

#endif  // BLAZEIT_VIDEO_IMAGE_H_
