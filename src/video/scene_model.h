#ifndef BLAZEIT_VIDEO_SCENE_MODEL_H_
#define BLAZEIT_VIDEO_SCENE_MODEL_H_

#include <string>
#include <vector>

#include "util/status.h"
#include "video/geometry.h"
#include "video/image.h"

namespace blazeit {

/// Object classes supported by the simulated object detector. The paper's
/// detector (Mask R-CNN on MS-COCO) has a fixed label set; ours is the
/// subset its evaluation uses, plus `person`/`bird` for the use-case
/// examples (store planning, ornithology).
enum ClassId : int {
  kCar = 0,
  kBus = 1,
  kBoat = 2,
  kPerson = 3,
  kBird = 4,
  kNumClasses = 5,
};

/// Human-readable class name ("car", "bus", ...).
const char* ClassName(int class_id);

/// Reverse lookup; returns kNotFound for unknown names.
Result<int> ClassIdFromName(const std::string& name);

/// A sub-population of an object class with a distinct appearance, e.g.
/// red tour buses vs. white transit buses (Figure 1). `weight` values are
/// normalized across the populations of a class.
struct ObjectPopulation {
  Color color;
  float color_jitter = 0.05f;
  double weight = 1.0;
};

/// Generative parameters for one object class in a stream. Arrival times
/// follow an (optionally modulated) Poisson process; dwell times are
/// log-normal; each instance moves linearly from a random spawn point.
struct ObjectClassConfig {
  int class_id = kCar;
  /// Target fraction of frames with at least one visible instance; the
  /// arrival rate is derived from this and the mean duration
  /// (P(count >= 1) = 1 - exp(-lambda * duration) for Poisson counts).
  double occupancy = 0.5;
  /// Mean time an instance stays in the scene, in seconds (Table 3).
  double mean_duration_sec = 3.0;
  /// Log-sigma of the log-normal dwell-time distribution.
  double duration_log_sigma = 0.5;
  /// Mean normalized object size.
  double mean_width = 0.10;
  double mean_height = 0.08;
  /// Multiplicative size jitter (log-normal sigma).
  double size_log_sigma = 0.25;
  /// Appearance sub-populations (at least one required).
  std::vector<ObjectPopulation> populations;
  /// Region where instances spawn and move.
  Rect region{0.0, 0.25, 1.0, 0.95};
  /// Mean speed, normalized units per second.
  double speed_mean = 0.05;
  /// Relative amplitude of the slow sinusoidal arrival-rate modulation
  /// ("rush hour" burstiness). 0 disables modulation.
  double rate_modulation_amplitude = 0.5;
  /// Period of the rate modulation, seconds.
  double rate_modulation_period_sec = 417.0;
  /// Log-normal sigma of a per-day arrival-rate factor (weather-dependent
  /// traffic volume). Non-zero values shift the count distribution between
  /// days, which defeats query rewriting for weakly-correlated NNs while
  /// leaving control variates sound.
  double day_rate_jitter = 0.0;
};

/// Full generative description of one video stream ("camera"). Six
/// instances of this struct (see datasets.h) play the role of the paper's
/// six YouTube streams.
struct StreamConfig {
  std::string name;
  int fps = 30;
  /// Nominal resolution (used for pixel-area UDFs and the cost model).
  int width = 1280;
  int height = 720;
  /// Background appearance.
  Color background{0.45f, 0.45f, 0.48f};
  /// Per-pixel Gaussian noise sigma at render time. Night/low-quality
  /// streams use larger values, degrading specialized-NN accuracy.
  double pixel_noise = 0.04;
  /// Relative amplitude of the slow global lighting wobble.
  double lighting_variation = 0.08;
  /// Period of the lighting wobble, seconds.
  double lighting_period_sec = 887.0;
  /// Detector confidence threshold for this stream (the per-video,
  /// manually chosen thresholds of Table 3; a single simulated detector
  /// keeps them uniform here).
  double detection_threshold = 0.5;
  /// Per-day global brightness jitter (relative std; drawn once per day
  /// seed). Non-zero values model day-to-day appearance drift — cameras
  /// whose days differ (weather, exposure) defeat specialized-NN query
  /// rewriting exactly as `archie` does in the paper.
  double day_brightness_jitter = 0.0;
  /// Expected number of static visual distractors (parked vehicles,
  /// shadows) per day; positions/appearance re-drawn per day seed. The
  /// object detector ignores clutter, but frame-level NNs see it, so
  /// day-varying clutter induces a day-varying counting bias — the second
  /// ingredient of archie's rewrite failure.
  double clutter_rate = 0.0;
  std::vector<ObjectClassConfig> classes;

  /// Finds the config for a class; nullptr if the stream never shows it.
  const ObjectClassConfig* FindClass(int class_id) const;
};

/// Derives the per-frame Poisson arrival rate that achieves the configured
/// occupancy given the mean dwell time (in frames).
double ArrivalRatePerFrame(double occupancy, double mean_duration_frames);

/// Expected steady-state mean number of visible instances
/// (lambda * duration), handy for tests and for choosing NN class counts.
double ExpectedMeanCount(const ObjectClassConfig& cls, int fps);

/// Validates a stream config (positive fps, populations present, occupancy
/// in (0,1), etc.).
Status ValidateStreamConfig(const StreamConfig& config);

/// Content fingerprint over every generative field of the config. Two
/// configs share a fingerprint iff they describe the same scene, so the
/// fingerprint (combined with seed and length) identifies a generated day —
/// the detection store and the detector caches key on it instead of the
/// seed alone, which collides across streams.
uint64_t ConfigFingerprint(const StreamConfig& config);

}  // namespace blazeit

#endif  // BLAZEIT_VIDEO_SCENE_MODEL_H_
