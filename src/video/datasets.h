#ifndef BLAZEIT_VIDEO_DATASETS_H_
#define BLAZEIT_VIDEO_DATASETS_H_

#include <string>
#include <vector>

#include "util/status.h"
#include "video/scene_model.h"

namespace blazeit {

/// Scene-model configurations standing in for the paper's six YouTube
/// streams (Table 3). Occupancy, mean dwell time, fps, and nominal
/// resolution are taken from the table; appearance parameters are chosen so
/// the specialized NNs show the paper's qualitative behaviour (accurate
/// rewriting on five streams, too inaccurate on `archie`, harder on the
/// noisy night stream).
///
/// taipei: intersection camera with cars (64.4%, 1.43s) and buses
/// (11.9%, 2.82s); buses split into red tour buses and white transit buses
/// (Figure 1), the target of the content-based selection query.
StreamConfig TaipeiConfig();

/// night-street: dark, noisy night-time street; cars 28.1%, 3.94s.
StreamConfig NightStreetConfig();

/// rialto: canal with heavy boat traffic; boats 89.9%, 10.7s.
StreamConfig RialtoConfig();

/// grand-canal: 1080p60 canal; boats 57.7%, 9.5s.
StreamConfig GrandCanalConfig();

/// amsterdam: slow street scene; cars 44.7%, 7.88s.
StreamConfig AmsterdamConfig();

/// archie: 4K camera with tiny, fast cars (51.8%, 0.30s); specialized NNs
/// cannot hit the 0.1 error target here, exercising the control-variates
/// fallback (Section 10.2).
StreamConfig ArchieConfig();

/// All six streams in the paper's order.
std::vector<StreamConfig> AllStreamConfigs();

/// Lookup by name ("taipei", "night-street", ...).
Result<StreamConfig> StreamConfigByName(const std::string& name);

/// Seeds for the three independently generated "days" of each stream
/// (training / threshold computation / test), mirroring the paper's
/// three-day protocol.
inline constexpr uint64_t kTrainDaySeed = 101;
inline constexpr uint64_t kThresholdDaySeed = 202;
inline constexpr uint64_t kTestDaySeed = 303;

/// Default per-day lengths (frames). Scaled down from the paper's ~1M-frame
/// test days so the full suite runs on CPU; see DESIGN.md. One hour of
/// 30 fps video for evaluation, 20 minutes for each auxiliary day.
inline constexpr int64_t kDefaultTestFrames = 108000;
inline constexpr int64_t kDefaultTrainFrames = 36000;
inline constexpr int64_t kDefaultHeldOutFrames = 36000;

}  // namespace blazeit

#endif  // BLAZEIT_VIDEO_DATASETS_H_
