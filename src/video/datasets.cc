#include "video/datasets.h"

#include "util/string_util.h"

namespace blazeit {

namespace {

ObjectPopulation GrayCar() {
  return ObjectPopulation{Color{0.25f, 0.25f, 0.28f}, 0.06f, 0.4};
}
ObjectPopulation WhiteCar() {
  return ObjectPopulation{Color{0.85f, 0.85f, 0.85f}, 0.05f, 0.3};
}
ObjectPopulation BlueCar() {
  return ObjectPopulation{Color{0.25f, 0.35f, 0.70f}, 0.06f, 0.2};
}
ObjectPopulation RedCar() {
  return ObjectPopulation{Color{0.60f, 0.18f, 0.18f}, 0.05f, 0.1};
}

}  // namespace

StreamConfig TaipeiConfig() {
  StreamConfig cfg;
  cfg.name = "taipei";
  cfg.fps = 30;
  cfg.width = 1280;
  cfg.height = 720;
  cfg.background = Color{0.46f, 0.46f, 0.48f};
  cfg.pixel_noise = 0.04;
  cfg.lighting_variation = 0.08;

  ObjectClassConfig car;
  car.class_id = kCar;
  car.occupancy = 0.644;
  car.mean_duration_sec = 1.43;
  car.mean_width = 0.11;
  car.mean_height = 0.075;
  car.speed_mean = 0.16;
  // Rush-hour burstiness: high-count frames cluster, which is what makes
  // rare "at least N cars" events findable (and realistic).
  car.rate_modulation_amplitude = 0.5;
  car.populations = {GrayCar(), WhiteCar(), BlueCar(), RedCar()};
  car.region = Rect{0.0, 0.35, 1.0, 0.95};
  cfg.classes.push_back(car);

  ObjectClassConfig bus;
  bus.class_id = kBus;
  bus.occupancy = 0.119;
  bus.mean_duration_sec = 2.82;
  bus.mean_width = 0.30;
  bus.mean_height = 0.20;
  bus.speed_mean = 0.10;
  // Figure 1: red tour buses vs. white transit buses. Buses keep to the
  // bottom-right transit lane, which is what makes the spatial filter of
  // the selection query effective.
  bus.populations = {
      ObjectPopulation{Color{0.78f, 0.12f, 0.12f}, 0.04f, 0.35},  // red tour
      ObjectPopulation{Color{0.88f, 0.88f, 0.90f}, 0.04f, 0.65},  // transit
  };
  bus.region = Rect{0.45, 0.55, 1.0, 0.95};
  bus.speed_mean = 0.08;
  cfg.classes.push_back(bus);
  return cfg;
}

StreamConfig NightStreetConfig() {
  StreamConfig cfg;
  cfg.name = "night-street";
  cfg.fps = 30;
  cfg.width = 1280;
  cfg.height = 720;
  cfg.background = Color{0.08f, 0.08f, 0.13f};
  cfg.pixel_noise = 0.10;  // night video is noisy
  cfg.lighting_variation = 0.15;

  ObjectClassConfig car;
  car.class_id = kCar;
  car.occupancy = 0.281;
  car.mean_duration_sec = 3.94;
  car.mean_width = 0.12;
  car.mean_height = 0.08;
  car.speed_mean = 0.10;
  // Headlights dominate at night: bright populations.
  car.populations = {
      ObjectPopulation{Color{0.75f, 0.73f, 0.60f}, 0.08f, 0.6},
      ObjectPopulation{Color{0.55f, 0.55f, 0.62f}, 0.08f, 0.4},
  };
  car.region = Rect{0.0, 0.40, 1.0, 0.95};
  cfg.classes.push_back(car);
  return cfg;
}

StreamConfig RialtoConfig() {
  StreamConfig cfg;
  cfg.name = "rialto";
  cfg.fps = 30;
  cfg.width = 1280;
  cfg.height = 720;
  cfg.background = Color{0.30f, 0.42f, 0.50f};  // water
  cfg.pixel_noise = 0.05;
  cfg.lighting_variation = 0.10;

  ObjectClassConfig boat;
  boat.class_id = kBoat;
  boat.occupancy = 0.899;
  boat.mean_duration_sec = 10.7;
  boat.mean_width = 0.14;
  boat.mean_height = 0.07;
  boat.speed_mean = 0.035;
  boat.populations = {
      ObjectPopulation{Color{0.55f, 0.42f, 0.30f}, 0.06f, 0.5},  // wood
      ObjectPopulation{Color{0.85f, 0.85f, 0.85f}, 0.05f, 0.3},  // white
      ObjectPopulation{Color{0.15f, 0.15f, 0.18f}, 0.05f, 0.2},  // gondola
  };
  boat.region = Rect{0.0, 0.30, 1.0, 0.95};
  cfg.classes.push_back(boat);
  return cfg;
}

StreamConfig GrandCanalConfig() {
  StreamConfig cfg;
  cfg.name = "grand-canal";
  cfg.fps = 60;
  cfg.width = 1920;
  cfg.height = 1080;
  cfg.background = Color{0.28f, 0.40f, 0.48f};
  cfg.pixel_noise = 0.04;
  cfg.lighting_variation = 0.08;

  ObjectClassConfig boat;
  boat.class_id = kBoat;
  boat.occupancy = 0.577;
  boat.mean_duration_sec = 9.5;
  boat.mean_width = 0.12;
  boat.mean_height = 0.06;
  boat.speed_mean = 0.03;
  boat.populations = {
      ObjectPopulation{Color{0.60f, 0.45f, 0.32f}, 0.06f, 0.5},
      ObjectPopulation{Color{0.88f, 0.88f, 0.88f}, 0.05f, 0.5},
  };
  boat.region = Rect{0.0, 0.35, 1.0, 0.95};
  cfg.classes.push_back(boat);
  return cfg;
}

StreamConfig AmsterdamConfig() {
  StreamConfig cfg;
  cfg.name = "amsterdam";
  cfg.fps = 30;
  cfg.width = 1280;
  cfg.height = 720;
  cfg.background = Color{0.42f, 0.44f, 0.46f};
  cfg.pixel_noise = 0.05;
  cfg.lighting_variation = 0.10;

  ObjectClassConfig car;
  car.class_id = kCar;
  car.occupancy = 0.447;
  car.mean_duration_sec = 7.88;
  car.mean_width = 0.10;
  car.mean_height = 0.07;
  car.speed_mean = 0.025;  // slow street, cars linger
  car.populations = {GrayCar(), WhiteCar(), BlueCar(), RedCar()};
  car.region = Rect{0.0, 0.40, 1.0, 0.95};
  cfg.classes.push_back(car);
  return cfg;
}

StreamConfig ArchieConfig() {
  StreamConfig cfg;
  cfg.name = "archie";
  cfg.fps = 30;
  cfg.width = 3840;
  cfg.height = 2160;
  cfg.background = Color{0.40f, 0.42f, 0.40f};
  cfg.pixel_noise = 0.12;  // tiny objects + heavy noise defeat the NN
  cfg.lighting_variation = 0.12;
  // archie's days differ: exposure drift plus day-varying static clutter
  // (parked vehicles, shadows across a 4K wide shot). Trained NNs carry a
  // day-level counting bias, so query rewriting misses the 0.1 error
  // target and the optimizer falls back to control variates — matching
  // the paper, where archie is the stream specialization cannot handle
  // (Section 10.2).
  cfg.day_brightness_jitter = 0.08;
  cfg.clutter_rate = 18.0;

  ObjectClassConfig car;
  car.class_id = kCar;
  car.occupancy = 0.518;
  car.mean_duration_sec = 0.30;
  car.mean_width = 0.035;  // 4K wide shot: cars are tiny in-frame
  car.mean_height = 0.025;
  car.speed_mean = 0.60;  // and fast
  // Day-to-day traffic volume varies (weather): with tiny, hard-to-count
  // objects, the trained NN's count distribution does not transfer across
  // days, so its held-out error bound misses the 0.1 target and the
  // optimizer falls back to control variates — archie's role in the paper.
  car.day_rate_jitter = 0.3;
  car.populations = {GrayCar(), WhiteCar(), BlueCar(), RedCar()};
  car.region = Rect{0.0, 0.30, 1.0, 0.95};
  cfg.classes.push_back(car);
  return cfg;
}

std::vector<StreamConfig> AllStreamConfigs() {
  return {TaipeiConfig(),     NightStreetConfig(), RialtoConfig(),
          GrandCanalConfig(), AmsterdamConfig(),   ArchieConfig()};
}

Result<StreamConfig> StreamConfigByName(const std::string& name) {
  for (StreamConfig& cfg : AllStreamConfigs()) {
    if (cfg.name == name) return cfg;
  }
  return Status::NotFound(StrFormat("unknown stream '%s'", name.c_str()));
}

}  // namespace blazeit
