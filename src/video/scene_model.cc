#include "video/scene_model.h"

#include <cmath>

#include "util/random.h"
#include "util/string_util.h"

namespace blazeit {

namespace {
constexpr const char* kClassNames[kNumClasses] = {"car", "bus", "boat",
                                                  "person", "bird"};
}  // namespace

const char* ClassName(int class_id) {
  if (class_id < 0 || class_id >= kNumClasses) return "unknown";
  return kClassNames[class_id];
}

Result<int> ClassIdFromName(const std::string& name) {
  for (int i = 0; i < kNumClasses; ++i) {
    if (name == kClassNames[i]) return i;
  }
  return Status::NotFound(StrFormat("unknown object class '%s'", name.c_str()));
}

const ObjectClassConfig* StreamConfig::FindClass(int class_id) const {
  for (const ObjectClassConfig& cls : classes) {
    if (cls.class_id == class_id) return &cls;
  }
  return nullptr;
}

double ArrivalRatePerFrame(double occupancy, double mean_duration_frames) {
  if (occupancy <= 0 || mean_duration_frames <= 0) return 0.0;
  // Steady-state count of a Poisson arrival process with mean dwell D is
  // Poisson(lambda * D); solve P(count >= 1) = occupancy for lambda.
  return -std::log(1.0 - occupancy) / mean_duration_frames;
}

double ExpectedMeanCount(const ObjectClassConfig& cls, int fps) {
  double duration_frames = cls.mean_duration_sec * fps;
  return ArrivalRatePerFrame(cls.occupancy, duration_frames) *
         duration_frames;
}

Status ValidateStreamConfig(const StreamConfig& config) {
  if (config.name.empty())
    return Status::InvalidArgument("stream name must be non-empty");
  if (config.fps <= 0)
    return Status::InvalidArgument("fps must be positive");
  if (config.width <= 0 || config.height <= 0)
    return Status::InvalidArgument("resolution must be positive");
  if (config.classes.empty())
    return Status::InvalidArgument("stream must have at least one class");
  for (const ObjectClassConfig& cls : config.classes) {
    if (cls.class_id < 0 || cls.class_id >= kNumClasses)
      return Status::InvalidArgument("invalid class id");
    if (cls.occupancy <= 0.0 || cls.occupancy >= 1.0)
      return Status::InvalidArgument(StrFormat(
          "occupancy for %s must be in (0,1)", ClassName(cls.class_id)));
    if (cls.mean_duration_sec <= 0.0)
      return Status::InvalidArgument("mean duration must be positive");
    if (cls.populations.empty())
      return Status::InvalidArgument(StrFormat(
          "class %s must have at least one population",
          ClassName(cls.class_id)));
    if (cls.mean_width <= 0 || cls.mean_height <= 0)
      return Status::InvalidArgument("object size must be positive");
    if (cls.region.Empty())
      return Status::InvalidArgument("class region must be non-empty");
  }
  return Status::OK();
}

namespace {

void MixColor(Fingerprint* fp, const Color& color) {
  fp->Mix(color.r).Mix(color.g).Mix(color.b);
}

void MixRect(Fingerprint* fp, const Rect& rect) {
  fp->Mix(rect.xmin).Mix(rect.ymin).Mix(rect.xmax).Mix(rect.ymax);
}

}  // namespace

uint64_t ConfigFingerprint(const StreamConfig& config) {
  // Every field below feeds generation (or detection thresholds); any new
  // StreamConfig field must be mixed here or stale caches go undetected.
  Fingerprint fp;
  fp.Mix(config.name)
      .Mix(config.fps)
      .Mix(config.width)
      .Mix(config.height)
      .Mix(config.pixel_noise)
      .Mix(config.lighting_variation)
      .Mix(config.lighting_period_sec)
      .Mix(config.detection_threshold)
      .Mix(config.day_brightness_jitter)
      .Mix(config.clutter_rate);
  MixColor(&fp, config.background);
  fp.Mix(static_cast<uint64_t>(config.classes.size()));
  for (const ObjectClassConfig& cls : config.classes) {
    fp.Mix(cls.class_id)
        .Mix(cls.occupancy)
        .Mix(cls.mean_duration_sec)
        .Mix(cls.duration_log_sigma)
        .Mix(cls.mean_width)
        .Mix(cls.mean_height)
        .Mix(cls.size_log_sigma)
        .Mix(cls.speed_mean)
        .Mix(cls.rate_modulation_amplitude)
        .Mix(cls.rate_modulation_period_sec)
        .Mix(cls.day_rate_jitter);
    MixRect(&fp, cls.region);
    fp.Mix(static_cast<uint64_t>(cls.populations.size()));
    for (const ObjectPopulation& pop : cls.populations) {
      MixColor(&fp, pop.color);
      fp.Mix(pop.color_jitter).Mix(pop.weight);
    }
  }
  return fp.value();
}

}  // namespace blazeit
