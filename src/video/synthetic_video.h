#ifndef BLAZEIT_VIDEO_SYNTHETIC_VIDEO_H_
#define BLAZEIT_VIDEO_SYNTHETIC_VIDEO_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "util/random.h"
#include "util/status.h"
#include "video/image.h"
#include "video/scene_model.h"

namespace blazeit {

/// Ground-truth state of one object in one frame: what a perfect object
/// detector would return. The simulated detector perturbs this; the
/// renderer rasterizes it.
struct GroundTruthObject {
  int64_t track_id = 0;
  int class_id = kCar;
  /// Visible (clamped) bounding box in normalized coordinates.
  Rect rect;
  /// Effective rendered color of this instance.
  Color color;
  /// Index of the appearance sub-population (e.g. 0 = red tour buses).
  int population = 0;
};

/// A synthetic video stream: a deterministic, lazily-evaluated realization
/// of a StreamConfig scene model. Stands in for the paper's YouTube
/// streams. One instance corresponds to one *day* of video; the three days
/// the paper uses (training / threshold / test) are three instances with
/// different seeds.
///
/// Frame access is O(objects in frame) and independent of access order, so
/// executors can sample frames in any pattern without materializing the
/// video.
class SyntheticVideo {
 public:
  /// Validates the config and generates the object instances for
  /// `num_frames` frames with the given seed.
  static Result<std::unique_ptr<SyntheticVideo>> Create(
      const StreamConfig& config, uint64_t seed, int64_t num_frames);

  const StreamConfig& config() const { return config_; }
  int64_t num_frames() const { return num_frames_; }
  int fps() const { return config_.fps; }
  uint64_t seed() const { return seed_; }

  /// Content fingerprint of this generated day:
  /// (ConfigFingerprint, seed, num_frames). Two SyntheticVideo instances
  /// with equal fingerprints produce identical ground truth for every
  /// frame, so caches (detector memoization, the on-disk detection store)
  /// key on it rather than on the seed, which is shared across streams.
  uint64_t fingerprint() const { return fingerprint_; }

  /// Timestamp of a frame in seconds (one-to-one with frames, Section 4).
  double TimestampSeconds(int64_t frame) const {
    return static_cast<double>(frame) / config_.fps;
  }

  /// All objects visible in the frame (what a perfect detector returns).
  std::vector<GroundTruthObject> GroundTruth(int64_t frame) const;

  /// Number of visible instances of `class_id` in the frame.
  int CountVisible(int64_t frame, int class_id) const;

  /// Rasterizes the frame at the given raster size (normalized-coordinate
  /// scene; the nominal stream resolution only affects pixel-area UDFs).
  Image RenderFrame(int64_t frame, int width, int height) const;

  /// Rasterizes only the given region of interest (spatial filtering);
  /// coordinates inside the result are re-normalized to the ROI.
  Image RenderFrameRegion(int64_t frame, const Rect& roi, int width,
                          int height) const;

  /// As RenderFrameRegion, but renders into `out` (reusing its buffer when
  /// the size allows). Batch loops use this to avoid one allocation per
  /// frame; output bits are identical to RenderFrameRegion.
  void RenderFrameRegionInto(int64_t frame, const Rect& roi, int width,
                             int height, Image* out) const;

  // --- Measured statistics (for Table 3 and generator tests) ---

  /// Fraction of frames with at least one visible instance of the class.
  double MeasureOccupancy(int class_id) const;
  /// Number of distinct track ids of the class that are ever visible.
  int64_t DistinctTracks(int class_id) const;
  /// Mean instance lifetime in seconds.
  double MeanDurationSeconds(int class_id) const;
  /// Mean number of visible instances per frame.
  double MeanVisibleCount(int class_id) const;
  /// Maximum visible count over all frames.
  int MaxVisibleCount(int class_id) const;

 private:
  /// One generated object instance (visible over [start_frame, end_frame)).
  struct Instance {
    int64_t track_id;
    int class_index;  // index into config_.classes
    int population;
    int64_t start_frame;
    int64_t end_frame;
    double cx0, cy0;  // center at start_frame
    double vx, vy;    // normalized units per frame
    double half_w, half_h;
    Color color;
  };

  /// A static visual distractor (parked vehicle, shadow): rendered in
  /// every frame but invisible to the object detector's ground truth.
  struct ClutterBlob {
    Rect rect;
    Color color;
  };

  SyntheticVideo(StreamConfig config, uint64_t seed, int64_t num_frames);

  void GenerateInstances();
  void GenerateClutter();
  void BuildActiveIndex();

  /// Visible rect of an instance at a frame; empty if off-screen.
  Rect VisibleRect(const Instance& inst, int64_t frame) const;

  /// Global lighting multiplier at a frame (slow sinusoidal wobble).
  float Lighting(int64_t frame) const;

  StreamConfig config_;
  uint64_t seed_;
  int64_t num_frames_;
  uint64_t fingerprint_ = 0;
  std::vector<Instance> instances_;
  std::vector<ClutterBlob> clutter_;
  /// active_[frame] lists indices into instances_ whose interval covers the
  /// frame (visibility is still checked geometrically).
  std::vector<std::vector<int32_t>> active_;
};

}  // namespace blazeit

#endif  // BLAZEIT_VIDEO_SYNTHETIC_VIDEO_H_
