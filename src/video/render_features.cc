#include "video/render_features.h"

#include <cmath>

namespace blazeit {

namespace {
// The paper's tiny ResNet learns local pooled features in its first
// convolutions; our fixed equivalent renders at 2x the grid resolution
// and pools each 2x2 block into (mean R, mean G, mean B, mean
// |deviation from the frame average|). The deviation channel is a
// foreground map — counting objects is then a near-linear function of
// it — while pooling averages the sensor noise down. Channels are
// normalized as in Section 9 ("standard ImageNet normalization").
constexpr int kPool = 2;
constexpr float kMean = 0.45f;
constexpr float kStd = 0.22f;
}  // namespace

void RenderFrameFeatures(const SyntheticVideo& video, int64_t frame,
                         int grid_w, int grid_h, float* dst,
                         Image* scratch) {
  Image local;
  Image& img = scratch != nullptr ? *scratch : local;
  video.RenderFrameRegionInto(frame, Rect{0, 0, 1, 1}, grid_w * kPool,
                              grid_h * kPool, &img);
  double means[3];
  img.MeanChannels(means);
  const double mean_r = means[0];
  const double mean_g = means[1];
  const double mean_b = means[2];
  const float* pix = img.data().data();
  const int iw = grid_w * kPool;
  float* out = dst;
  for (int cy = 0; cy < grid_h; ++cy) {
    for (int cx = 0; cx < grid_w; ++cx) {
      double r = 0, g = 0, b = 0, dev = 0;
      for (int dy = 0; dy < kPool; ++dy) {
        const float* row =
            pix + (static_cast<size_t>(cy * kPool + dy) * iw +
                   static_cast<size_t>(cx) * kPool) *
                      3;
        for (int dx = 0; dx < kPool; ++dx) {
          double pr = static_cast<double>(row[3 * dx + 0]);
          double pg = static_cast<double>(row[3 * dx + 1]);
          double pb = static_cast<double>(row[3 * dx + 2]);
          r += pr;
          g += pg;
          b += pb;
          dev += std::abs(pr - mean_r) + std::abs(pg - mean_g) +
                 std::abs(pb - mean_b);
        }
      }
      const double inv = 1.0 / (kPool * kPool);
      *out++ = static_cast<float>(((static_cast<double>(r) * inv) -
                                   static_cast<double>(kMean)) /
                                  static_cast<double>(kStd));
      *out++ = static_cast<float>(((static_cast<double>(g) * inv) -
                                   static_cast<double>(kMean)) /
                                  static_cast<double>(kStd));
      *out++ = static_cast<float>(((static_cast<double>(b) * inv) -
                                   static_cast<double>(kMean)) /
                                  static_cast<double>(kStd));
      // Noise-only cells average ~0.1 absolute deviation at typical sensor
      // noise; objects reach 0.5-1.5. Scale to keep activations O(1).
      *out++ = static_cast<float>((dev * inv - 0.1) / 0.3);
    }
  }
}

}  // namespace blazeit
