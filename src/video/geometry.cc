#include "video/geometry.h"

#include "util/string_util.h"

namespace blazeit {

Rect Rect::ClampToUnit() const {
  Rect out;
  out.xmin = std::clamp(xmin, 0.0, 1.0);
  out.ymin = std::clamp(ymin, 0.0, 1.0);
  out.xmax = std::clamp(xmax, 0.0, 1.0);
  out.ymax = std::clamp(ymax, 0.0, 1.0);
  return out;
}

Rect Rect::Intersect(const Rect& other) const {
  Rect out;
  out.xmin = std::max(xmin, other.xmin);
  out.ymin = std::max(ymin, other.ymin);
  out.xmax = std::min(xmax, other.xmax);
  out.ymax = std::min(ymax, other.ymax);
  if (out.Empty()) return Rect{0, 0, 0, 0};
  return out;
}

std::string Rect::ToString() const {
  return StrFormat("[%.3f,%.3f,%.3f,%.3f]", xmin, ymin, xmax, ymax);
}

double Iou(const Rect& a, const Rect& b) {
  double inter = a.Intersect(b).Area();
  double uni = a.Area() + b.Area() - inter;
  if (uni <= 0) return 0;
  return inter / uni;
}

double PixelArea(const Rect& a, int frame_width, int frame_height) {
  return a.Area() * static_cast<double>(frame_width) *
         static_cast<double>(frame_height);
}

}  // namespace blazeit
