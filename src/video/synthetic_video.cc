#include "video/synthetic_video.h"

#include <cmath>
#include <numbers>

#include "util/logging.h"

namespace blazeit {

namespace {

// Minimum fraction of an object's area that must remain on-screen for the
// object to count as visible.
constexpr double kMinVisibleFraction = 0.25;

// Reflects x into [lo, hi] with a triangle wave: linear motion bounces off
// the region walls. Keeps moving objects inside their class region for
// their whole dwell time, so the measured occupancy matches the analytic
// Poisson calibration.
double Fold(double x, double lo, double hi) {
  if (hi <= lo) return (lo + hi) / 2;
  double span = hi - lo;
  double y = std::fmod(x - lo, 2 * span);
  if (y < 0) y += 2 * span;
  return y <= span ? lo + y : hi - (y - span);
}

}  // namespace

Result<std::unique_ptr<SyntheticVideo>> SyntheticVideo::Create(
    const StreamConfig& config, uint64_t seed, int64_t num_frames) {
  BLAZEIT_RETURN_NOT_OK(ValidateStreamConfig(config));
  if (num_frames <= 0)
    return Status::InvalidArgument("num_frames must be positive");
  std::unique_ptr<SyntheticVideo> video(
      new SyntheticVideo(config, seed, num_frames));
  video->GenerateInstances();
  video->GenerateClutter();
  video->BuildActiveIndex();
  return video;
}

SyntheticVideo::SyntheticVideo(StreamConfig config, uint64_t seed,
                               int64_t num_frames)
    : config_(std::move(config)),
      seed_(seed),
      num_frames_(num_frames),
      fingerprint_(Fingerprint()
                       .Mix(ConfigFingerprint(config_))
                       .Mix(seed_)
                       .Mix(num_frames_)
                       .value()) {}

void SyntheticVideo::GenerateInstances() {
  int64_t next_track_id = 1;
  for (size_t ci = 0; ci < config_.classes.size(); ++ci) {
    const ObjectClassConfig& cls = config_.classes[ci];
    Rng rng(HashCombine(seed_, 0x1000 + ci));
    double duration_frames = cls.mean_duration_sec * config_.fps;
    double base_rate = ArrivalRatePerFrame(cls.occupancy, duration_frames);
    if (cls.day_rate_jitter > 0) {
      // One multiplicative traffic-volume factor per (day, class).
      Rng day_rng(HashCombine(seed_, 0xda7e + ci));
      base_rate *= day_rng.LogNormal(
          -cls.day_rate_jitter * cls.day_rate_jitter / 2.0,
          cls.day_rate_jitter);
    }
    // The diurnal phase belongs to the *stream*, not the day: the paper
    // assumes the held-out day is representative of the unseen data (no
    // model drift, Section 3.1), so days share their rate structure while
    // arrival realizations stay independent.
    double phase =
        static_cast<double>(HashCombine(HashString(config_.name), ci) %
                            10000) /
        10000.0 * 2 * std::numbers::pi;
    double period_frames =
        std::max(1.0, cls.rate_modulation_period_sec * config_.fps);
    // Normalize population weights into a CDF.
    std::vector<double> pop_cdf;
    double total_weight = 0;
    for (const ObjectPopulation& pop : cls.populations)
      total_weight += pop.weight;
    double acc = 0;
    for (const ObjectPopulation& pop : cls.populations) {
      acc += pop.weight / total_weight;
      pop_cdf.push_back(acc);
    }
    // Log-normal dwell time with the configured mean.
    double dur_mu = std::log(duration_frames) -
                    cls.duration_log_sigma * cls.duration_log_sigma / 2.0;

    for (int64_t t = 0; t < num_frames_; ++t) {
      double modulation =
          1.0 + cls.rate_modulation_amplitude *
                    std::sin(2 * std::numbers::pi * t / period_frames + phase);
      int arrivals = rng.Poisson(base_rate * std::max(0.0, modulation));
      for (int a = 0; a < arrivals; ++a) {
        Instance inst;
        inst.track_id = next_track_id++;
        inst.class_index = static_cast<int>(ci);
        inst.start_frame = t;
        double dur = rng.LogNormal(dur_mu, cls.duration_log_sigma);
        inst.end_frame =
            std::min(num_frames_,
                     t + std::max<int64_t>(1, std::llround(dur)));
        // Population pick.
        double u = rng.Uniform();
        inst.population = 0;
        for (size_t p = 0; p < pop_cdf.size(); ++p) {
          if (u <= pop_cdf[p]) {
            inst.population = static_cast<int>(p);
            break;
          }
        }
        const ObjectPopulation& pop = cls.populations[inst.population];
        auto jitter_channel = [&](float base) {
          return std::clamp(
              base + static_cast<float>(rng.Normal(0, pop.color_jitter)),
              0.0f, 1.0f);
        };
        inst.color = Color{jitter_channel(pop.color.r),
                           jitter_channel(pop.color.g),
                           jitter_channel(pop.color.b)};
        // Size: a single log-normal factor keeps the aspect ratio.
        double size_factor = rng.LogNormal(
            -cls.size_log_sigma * cls.size_log_sigma / 2.0,
            cls.size_log_sigma);
        inst.half_w = cls.mean_width * size_factor / 2.0;
        inst.half_h = cls.mean_height * size_factor / 2.0;
        // Spawn center uniformly inside the class region.
        inst.cx0 = rng.Uniform(cls.region.xmin, cls.region.xmax);
        inst.cy0 = rng.Uniform(cls.region.ymin, cls.region.ymax);
        // Motion: random direction, log-normal speed jitter.
        double angle = rng.Uniform(0, 2 * std::numbers::pi);
        double speed =
            cls.speed_mean / config_.fps * rng.LogNormal(-0.125, 0.5);
        inst.vx = speed * std::cos(angle);
        inst.vy = speed * std::sin(angle);
        instances_.push_back(inst);
      }
    }
  }
  BLAZEIT_LOG(kDebug) << "stream " << config_.name << " seed " << seed_
                      << ": generated " << instances_.size() << " instances";
}

void SyntheticVideo::GenerateClutter() {
  if (config_.clutter_rate <= 0) return;
  // Clutter is drawn from the *day* seed: each day has its own parked
  // vehicles and shadows, constant within the day.
  Rng rng(HashCombine(seed_, 0xc1a7));
  int count = rng.Poisson(config_.clutter_rate);
  for (int i = 0; i < count; ++i) {
    ClutterBlob blob;
    double cx = rng.Uniform(0.02, 0.98);
    double cy = rng.Uniform(0.25, 0.98);
    double hw = rng.Uniform(0.008, 0.035);
    double hh = rng.Uniform(0.006, 0.025);
    blob.rect = Rect{cx - hw, cy - hh, cx + hw, cy + hh}.ClampToUnit();
    // Muted vehicle-and-shadow palette.
    float base = static_cast<float>(rng.Uniform(0.15, 0.75));
    blob.color = Color{
        std::clamp(base + static_cast<float>(rng.Normal(0, 0.08)), 0.0f, 1.0f),
        std::clamp(base + static_cast<float>(rng.Normal(0, 0.08)), 0.0f, 1.0f),
        std::clamp(base + static_cast<float>(rng.Normal(0, 0.08)), 0.0f, 1.0f)};
    clutter_.push_back(blob);
  }
}

void SyntheticVideo::BuildActiveIndex() {
  active_.assign(static_cast<size_t>(num_frames_), {});
  for (size_t i = 0; i < instances_.size(); ++i) {
    const Instance& inst = instances_[i];
    for (int64_t t = inst.start_frame; t < inst.end_frame; ++t) {
      active_[static_cast<size_t>(t)].push_back(static_cast<int32_t>(i));
    }
  }
}

Rect SyntheticVideo::VisibleRect(const Instance& inst, int64_t frame) const {
  const Rect& region =
      config_.classes[static_cast<size_t>(inst.class_index)].region;
  double dt = static_cast<double>(frame - inst.start_frame);
  double cx = Fold(inst.cx0 + inst.vx * dt, region.xmin, region.xmax);
  double cy = Fold(inst.cy0 + inst.vy * dt, region.ymin, region.ymax);
  Rect full{cx - inst.half_w, cy - inst.half_h, cx + inst.half_w,
            cy + inst.half_h};
  Rect visible = full.ClampToUnit();
  if (full.Area() <= 0 ||
      visible.Area() < kMinVisibleFraction * full.Area()) {
    return Rect{0, 0, 0, 0};
  }
  return visible;
}

std::vector<GroundTruthObject> SyntheticVideo::GroundTruth(
    int64_t frame) const {
  std::vector<GroundTruthObject> out;
  if (frame < 0 || frame >= num_frames_) return out;
  for (int32_t idx : active_[static_cast<size_t>(frame)]) {
    const Instance& inst = instances_[static_cast<size_t>(idx)];
    Rect rect = VisibleRect(inst, frame);
    if (rect.Empty()) continue;
    GroundTruthObject obj;
    obj.track_id = inst.track_id;
    obj.class_id = config_.classes[static_cast<size_t>(inst.class_index)]
                       .class_id;
    obj.rect = rect;
    obj.color = inst.color;
    obj.population = inst.population;
    out.push_back(obj);
  }
  return out;
}

int SyntheticVideo::CountVisible(int64_t frame, int class_id) const {
  if (frame < 0 || frame >= num_frames_) return 0;
  int count = 0;
  for (int32_t idx : active_[static_cast<size_t>(frame)]) {
    const Instance& inst = instances_[static_cast<size_t>(idx)];
    if (config_.classes[static_cast<size_t>(inst.class_index)].class_id !=
        class_id) {
      continue;
    }
    if (!VisibleRect(inst, frame).Empty()) ++count;
  }
  return count;
}

float SyntheticVideo::Lighting(int64_t frame) const {
  double period_frames =
      std::max(1.0, config_.lighting_period_sec * config_.fps);
  // Lighting phase is per-stream (shared across days); see the rate-
  // modulation comment in GenerateInstances.
  double phase =
      static_cast<double>(HashCombine(HashString(config_.name), 0xbeef) %
                          1000) /
      1000.0 * 2 * std::numbers::pi;
  // Day-level drift: one brightness factor per day (seed), modelling
  // weather/exposure differences between days.
  double day_factor = 1.0;
  if (config_.day_brightness_jitter > 0) {
    Rng day_rng(HashCombine(seed_, 0xda1));
    day_factor = 1.0 + day_rng.Normal(0.0, config_.day_brightness_jitter);
  }
  // Clamp to non-negative: with a large day_brightness_jitter the Gaussian
  // day factor can dip below the sinusoid's amplitude, and a negative
  // global light would rasterize negative channel values (violating the
  // image's [0,1] contract — with pixel_noise == 0 nothing downstream
  // would ever clamp them). Fill/FillRect additionally clamp the scaled
  // colors at the fill sites, covering the factor-above-displayable case.
  return std::max(
      0.0f,
      static_cast<float>(
          day_factor +
          config_.lighting_variation *
              std::sin(2 * std::numbers::pi * frame / period_frames + phase)));
}

Image SyntheticVideo::RenderFrame(int64_t frame, int width,
                                  int height) const {
  return RenderFrameRegion(frame, Rect{0, 0, 1, 1}, width, height);
}

Image SyntheticVideo::RenderFrameRegion(int64_t frame, const Rect& roi,
                                        int width, int height) const {
  Image img;
  RenderFrameRegionInto(frame, roi, width, height, &img);
  return img;
}

void SyntheticVideo::RenderFrameRegionInto(int64_t frame, const Rect& roi,
                                           int width, int height,
                                           Image* out) const {
  out->SetSize(width, height);
  Image& img = *out;
  Rect region = roi.ClampToUnit();
  if (region.Empty()) {
    img.Fill(Color{0, 0, 0});
    return;
  }
  float light = Lighting(frame);
  img.Fill(config_.background.Scaled(light));
  // Map a scene-coordinate rect into ROI-relative coordinates.
  auto to_roi = [&](const Rect& r) {
    Rect out;
    out.xmin = (r.xmin - region.xmin) / region.width();
    out.xmax = (r.xmax - region.xmin) / region.width();
    out.ymin = (r.ymin - region.ymin) / region.height();
    out.ymax = (r.ymax - region.ymin) / region.height();
    return out;
  };
  for (const ClutterBlob& blob : clutter_) {
    Rect r = to_roi(blob.rect).ClampToUnit();
    if (r.Empty()) continue;
    img.FillRect(r, blob.color.Scaled(light));
  }
  for (const GroundTruthObject& obj : GroundTruth(frame)) {
    Rect r = to_roi(obj.rect).ClampToUnit();
    if (r.Empty()) continue;
    img.FillRect(r, obj.color.Scaled(light));
  }
  // Historically this constructed a per-frame Rng and burned one engine
  // draw to seed the noise stream; Mt19937_64FirstDraw computes that same
  // draw directly (bit-identical, ~40x cheaper than engine construction).
  img.AddNoiseFromState(
      Mt19937_64FirstDraw(
          HashCombine(seed_, HashCombine(0xf00d, static_cast<uint64_t>(frame)))),
      config_.pixel_noise);
}

double SyntheticVideo::MeasureOccupancy(int class_id) const {
  int64_t occupied = 0;
  for (int64_t t = 0; t < num_frames_; ++t) {
    if (CountVisible(t, class_id) > 0) ++occupied;
  }
  return static_cast<double>(occupied) / static_cast<double>(num_frames_);
}

int64_t SyntheticVideo::DistinctTracks(int class_id) const {
  int64_t count = 0;
  for (const Instance& inst : instances_) {
    if (config_.classes[static_cast<size_t>(inst.class_index)].class_id ==
        class_id) {
      ++count;
    }
  }
  return count;
}

double SyntheticVideo::MeanDurationSeconds(int class_id) const {
  double total = 0;
  int64_t count = 0;
  for (const Instance& inst : instances_) {
    if (config_.classes[static_cast<size_t>(inst.class_index)].class_id !=
        class_id) {
      continue;
    }
    total += static_cast<double>(inst.end_frame - inst.start_frame);
    ++count;
  }
  if (count == 0) return 0;
  return total / static_cast<double>(count) / config_.fps;
}

double SyntheticVideo::MeanVisibleCount(int class_id) const {
  double total = 0;
  for (int64_t t = 0; t < num_frames_; ++t) total += CountVisible(t, class_id);
  return total / static_cast<double>(num_frames_);
}

int SyntheticVideo::MaxVisibleCount(int class_id) const {
  int max_count = 0;
  for (int64_t t = 0; t < num_frames_; ++t)
    max_count = std::max(max_count, CountVisible(t, class_id));
  return max_count;
}

}  // namespace blazeit
