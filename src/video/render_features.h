#ifndef BLAZEIT_VIDEO_RENDER_FEATURES_H_
#define BLAZEIT_VIDEO_RENDER_FEATURES_H_

#include <cstdint>

#include "video/image.h"
#include "video/synthetic_video.h"

namespace blazeit {

/// Number of feature channels per grid cell produced by
/// RenderFrameFeatures: pooled mean R, G, B plus the absolute-deviation
/// foreground channel.
inline constexpr int kFeatureChannels = 4;

/// Fused render→feature kernel: rasterizes `frame` at twice the grid
/// resolution and writes the pooled 4-channel feature row — the
/// specialized-NN input representation — directly into `dst`
/// (grid_w * grid_h * kFeatureChannels floats, e.g. a Matrix::Row).
///
/// This replaces the Image → Flatten → copy chain: batch loops hand in the
/// NN input row and an optional scratch Image to reuse across frames (no
/// per-frame allocation). Output bits are identical to the historical
/// nn/ FrameFeatures: same render, same channel-mean accumulation order,
/// same pooling and normalization expressions — so cached per-frame NN
/// artifacts remain valid across the fusion.
void RenderFrameFeatures(const SyntheticVideo& video, int64_t frame,
                         int grid_w, int grid_h, float* dst,
                         Image* scratch = nullptr);

}  // namespace blazeit

#endif  // BLAZEIT_VIDEO_RENDER_FEATURES_H_
