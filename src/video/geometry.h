#ifndef BLAZEIT_VIDEO_GEOMETRY_H_
#define BLAZEIT_VIDEO_GEOMETRY_H_

#include <algorithm>
#include <string>

namespace blazeit {

/// Axis-aligned rectangle in *normalized* coordinates: x, y in [0, 1] with
/// (0,0) at the top-left of the frame. Objects, detections, and spatial
/// regions of interest all use this type; conversion to pixels happens only
/// at render time, so the same scene works at any resolution.
struct Rect {
  double xmin = 0;
  double ymin = 0;
  double xmax = 0;
  double ymax = 0;

  double width() const { return std::max(0.0, xmax - xmin); }
  double height() const { return std::max(0.0, ymax - ymin); }
  double Area() const { return width() * height(); }
  double CenterX() const { return (xmin + xmax) / 2; }
  double CenterY() const { return (ymin + ymax) / 2; }

  bool Empty() const { return xmax <= xmin || ymax <= ymin; }

  /// Clamps the rectangle to the unit square.
  Rect ClampToUnit() const;

  /// Intersection rectangle (possibly empty).
  Rect Intersect(const Rect& other) const;

  /// True if `other` and this overlap with positive area.
  bool Overlaps(const Rect& other) const {
    return !Intersect(other).Empty();
  }

  /// True if (x, y) lies inside the rectangle.
  bool Contains(double x, double y) const {
    return x >= xmin && x < xmax && y >= ymin && y < ymax;
  }

  std::string ToString() const;

  bool operator==(const Rect& other) const {
    return xmin == other.xmin && ymin == other.ymin && xmax == other.xmax &&
           ymax == other.ymax;
  }
};

/// Intersection-over-union; the entity-resolution metric used by the motion
/// IOU tracker (Section 9: cutoff 0.7 across consecutive frames).
double Iou(const Rect& a, const Rect& b);

/// Area of `a` in *pixels* for a frame of the given nominal resolution.
/// FrameQL's `area(mask)` UDF is defined in pixel units (Figure 3c uses
/// "at least 100,000 pixels" on 720p video).
double PixelArea(const Rect& a, int frame_width, int frame_height);

}  // namespace blazeit

#endif  // BLAZEIT_VIDEO_GEOMETRY_H_
