#include "video/image.h"

#include <algorithm>
#include <cmath>

#include "video/raster_kernels.h"

namespace blazeit {

namespace {

/// Clamps a color to the image's documented [0,1] channel contract.
/// Rasterization is the only place pixel values enter an Image, so
/// clamping here (rather than in every caller) makes the contract hold
/// unconditionally; in-range colors pass through bit-unchanged.
Color ClampColor(const Color& color) {
  return Color{std::clamp(color.r, 0.0f, 1.0f), std::clamp(color.g, 0.0f, 1.0f),
               std::clamp(color.b, 0.0f, 1.0f)};
}

/// Writes `count` RGB pixels starting at `row` (interleaved layout).
void FillRowRgb(float* row, int count, const Color& color) {
  for (int x = 0; x < count; ++x) {
    row[3 * x + 0] = color.r;
    row[3 * x + 1] = color.g;
    row[3 * x + 2] = color.b;
  }
}

}  // namespace

Image::Image(int width, int height)
    : width_(width),
      height_(height),
      data_(static_cast<size_t>(width) * static_cast<size_t>(height) * 3,
            0.0f) {}

void Image::SetSize(int width, int height) {
  width_ = width;
  height_ = height;
  data_.resize(static_cast<size_t>(width) * static_cast<size_t>(height) * 3);
}

void Image::SetPixel(int x, int y, const Color& color) {
  Set(x, y, 0, color.r);
  Set(x, y, 1, color.g);
  Set(x, y, 2, color.b);
}

void Image::Fill(const Color& color) {
  if (Empty()) return;
  const Color c = ClampColor(color);
  // Scanline form: write the first row once, then replicate it. The
  // copies are straight memmoves, which beats a per-pixel SetPixel loop
  // by a wide margin and leaves nothing for the vectorizer to guess at.
  const size_t row_floats = static_cast<size_t>(width_) * 3;
  FillRowRgb(data_.data(), width_, c);
  for (int y = 1; y < height_; ++y) {
    std::copy_n(data_.data(), row_floats, data_.data() + y * row_floats);
  }
}

void Image::FillRect(const Rect& rect, const Color& color) {
  Rect r = rect.ClampToUnit();
  if (r.Empty() || Empty()) return;
  const Color c = ClampColor(color);
  // A pixel is covered iff its center lies inside the rect. Centers are
  // monotone in the pixel index, so coverage along each axis is one
  // contiguous span; find the span endpoints with the exact per-center
  // predicate (bit-identical to the historical per-pixel Contains scan),
  // then fill whole rows instead of testing every pixel.
  int x0 = std::clamp(static_cast<int>(std::floor(r.xmin * width_)), 0, width_);
  int x1 = std::clamp(static_cast<int>(std::ceil(r.xmax * width_)), 0, width_);
  int y0 = std::clamp(static_cast<int>(std::floor(r.ymin * height_)), 0,
                      height_);
  int y1 = std::clamp(static_cast<int>(std::ceil(r.ymax * height_)), 0,
                      height_);
  auto x_covered = [&](int x) {
    double cx = (x + 0.5) / width_;
    return cx >= r.xmin && cx < r.xmax;
  };
  auto y_covered = [&](int y) {
    double cy = (y + 0.5) / height_;
    return cy >= r.ymin && cy < r.ymax;
  };
  while (x0 < x1 && !x_covered(x0)) ++x0;
  while (x1 > x0 && !x_covered(x1 - 1)) --x1;
  while (y0 < y1 && !y_covered(y0)) ++y0;
  while (y1 > y0 && !y_covered(y1 - 1)) --y1;
  if (x0 >= x1 || y0 >= y1) return;

  const size_t row_floats = static_cast<size_t>(width_) * 3;
  float* first = data_.data() + y0 * row_floats + static_cast<size_t>(x0) * 3;
  const size_t span_floats = static_cast<size_t>(x1 - x0) * 3;
  FillRowRgb(first, x1 - x0, c);
  for (int y = y0 + 1; y < y1; ++y) {
    std::copy_n(first, span_floats,
                data_.data() + y * row_floats + static_cast<size_t>(x0) * 3);
  }
}

void Image::AddNoise(Rng* rng, double sigma) {
  if (sigma <= 0) return;
  AddNoiseFromState(rng->engine()(), sigma);
}

void Image::AddNoiseFromState(uint64_t state, double sigma) {
  if (sigma <= 0) return;
  // The per-element SplitMix64 stream and N(0,1) table live in the kernel
  // layer, which dispatches to an AVX-512 path with bit-identical output
  // where available.
  raster::AddGaussianNoiseClamp(data_.data(), data_.size(), state,
                                static_cast<float>(sigma));
}

void Image::ScaleBrightness(float factor) {
  for (float& v : data_) v = std::clamp(v * factor, 0.0f, 1.0f);
}

double Image::MeanChannel(int c) const {
  if (Empty()) return 0.0;
  double sum = 0;
  const float* p = data_.data() + c;
  const size_t pixels = static_cast<size_t>(width_) * height_;
  for (size_t i = 0; i < pixels; ++i) sum += static_cast<double>(p[3 * i]);
  return sum / static_cast<double>(pixels);
}

void Image::MeanChannels(double out[3]) const {
  out[0] = out[1] = out[2] = 0.0;
  if (Empty()) return;
  // One fused pass; each channel's running sum accumulates in the same
  // row-major order as MeanChannel, so the results are bit-identical.
  double r = 0, g = 0, b = 0;
  const float* p = data_.data();
  const size_t pixels = static_cast<size_t>(width_) * height_;
  for (size_t i = 0; i < pixels; ++i) {
    r += static_cast<double>(p[3 * i + 0]);
    g += static_cast<double>(p[3 * i + 1]);
    b += static_cast<double>(p[3 * i + 2]);
  }
  // Divide (not multiply by reciprocal): fl(sum / n) != fl(sum * fl(1/n))
  // when n is not a power of two, and bit-identity with MeanChannel is
  // this method's contract.
  out[0] = r / static_cast<double>(pixels);
  out[1] = g / static_cast<double>(pixels);
  out[2] = b / static_cast<double>(pixels);
}

double Image::MeanChannelInRect(int c, const Rect& rect) const {
  Rect r = rect.ClampToUnit();
  if (r.Empty() || Empty()) return 0.0;
  int x0 = std::clamp(static_cast<int>(std::floor(r.xmin * width_)), 0,
                      width_ - 1);
  int x1 = std::clamp(static_cast<int>(std::ceil(r.xmax * width_)), x0 + 1,
                      width_);
  int y0 = std::clamp(static_cast<int>(std::floor(r.ymin * height_)), 0,
                      height_ - 1);
  int y1 = std::clamp(static_cast<int>(std::ceil(r.ymax * height_)), y0 + 1,
                      height_);
  double sum = 0;
  int count = 0;
  for (int y = y0; y < y1; ++y) {
    const float* row = data_.data() +
                       (static_cast<size_t>(y) * width_ + x0) * 3 +
                       static_cast<size_t>(c);
    for (int x = 0; x < x1 - x0; ++x) {
      sum += static_cast<double>(row[3 * x]);
      ++count;
    }
  }
  return count > 0 ? sum / count : 0.0;
}

Image Image::Crop(const Rect& rect) const {
  Rect r = rect.ClampToUnit();
  if (r.Empty() || Empty()) return Image();
  int x0 = std::clamp(static_cast<int>(std::floor(r.xmin * width_)), 0,
                      width_ - 1);
  int x1 = std::clamp(static_cast<int>(std::ceil(r.xmax * width_)), x0 + 1,
                      width_);
  int y0 = std::clamp(static_cast<int>(std::floor(r.ymin * height_)), 0,
                      height_ - 1);
  int y1 = std::clamp(static_cast<int>(std::ceil(r.ymax * height_)), y0 + 1,
                      height_);
  Image out(x1 - x0, y1 - y0);
  const size_t src_row = static_cast<size_t>(width_) * 3;
  const size_t dst_row = static_cast<size_t>(x1 - x0) * 3;
  for (int y = y0; y < y1; ++y) {
    std::copy_n(data_.data() + y * src_row + static_cast<size_t>(x0) * 3,
                dst_row, out.data_.data() + (y - y0) * dst_row);
  }
  return out;
}

Image Image::Resize(int new_width, int new_height) const {
  Image out(new_width, new_height);
  if (Empty() || new_width <= 0 || new_height <= 0) return out;
  // Two-pass box filter: horizontal row sums first, then vertical
  // accumulation of those sums. O(pixels) per pass instead of the naive
  // O(pixels * block) nested block walk. Per output cell this regroups
  // the historical flat sy/sx-order double sum into "sum each row in sx
  // order, then add row sums in sy order" — a reassociation that can in
  // principle change the low bit (kDerivedArtifactEpoch was bumped for
  // this change; in practice [0,1]-range pixels rarely exercise it). The
  // golden suite pins the two-pass grouping as the semantics.
  const int sw = width_, sh = height_;
  std::vector<double> hsum(static_cast<size_t>(sh) * new_width * 3);
  std::vector<int> hcount(static_cast<size_t>(new_width));
  std::vector<int> xb(static_cast<size_t>(new_width) + 1);
  for (int x = 0; x < new_width; ++x) {
    int sx0 = x * sw / new_width;
    int sx1 = std::max(sx0 + 1, (x + 1) * sw / new_width);
    xb[static_cast<size_t>(x)] = sx0;
    hcount[static_cast<size_t>(x)] = sx1 - sx0;
  }
  for (int sy = 0; sy < sh; ++sy) {
    const float* row = data_.data() + static_cast<size_t>(sy) * sw * 3;
    double* hrow = hsum.data() + static_cast<size_t>(sy) * new_width * 3;
    for (int x = 0; x < new_width; ++x) {
      const int sx0 = xb[static_cast<size_t>(x)];
      const int cnt = hcount[static_cast<size_t>(x)];
      double r = 0, g = 0, b = 0;
      for (int sx = sx0; sx < sx0 + cnt; ++sx) {
        r += static_cast<double>(row[3 * sx + 0]);
        g += static_cast<double>(row[3 * sx + 1]);
        b += static_cast<double>(row[3 * sx + 2]);
      }
      hrow[3 * x + 0] = r;
      hrow[3 * x + 1] = g;
      hrow[3 * x + 2] = b;
    }
  }
  for (int y = 0; y < new_height; ++y) {
    int sy0 = y * sh / new_height;
    int sy1 = std::max(sy0 + 1, (y + 1) * sh / new_height);
    float* orow = out.data_.data() + static_cast<size_t>(y) * new_width * 3;
    for (int x = 0; x < new_width; ++x) {
      const int block = (sy1 - sy0) * hcount[static_cast<size_t>(x)];
      for (int c = 0; c < 3; ++c) {
        double sum = 0;
        for (int sy = sy0; sy < sy1; ++sy) {
          sum += hsum[(static_cast<size_t>(sy) * new_width + x) * 3 +
                      static_cast<size_t>(c)];
        }
        orow[3 * x + c] = static_cast<float>(sum / block);
      }
    }
  }
  return out;
}

std::vector<float> Image::Flatten() const { return data_; }

}  // namespace blazeit
