#include "video/image.h"

#include <algorithm>
#include <cmath>

namespace blazeit {

Image::Image(int width, int height)
    : width_(width),
      height_(height),
      data_(static_cast<size_t>(width) * static_cast<size_t>(height) * 3,
            0.0f) {}

void Image::SetPixel(int x, int y, const Color& color) {
  Set(x, y, 0, color.r);
  Set(x, y, 1, color.g);
  Set(x, y, 2, color.b);
}

void Image::Fill(const Color& color) {
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) SetPixel(x, y, color);
  }
}

void Image::FillRect(const Rect& rect, const Color& color) {
  Rect r = rect.ClampToUnit();
  if (r.Empty()) return;
  int x0 = static_cast<int>(std::floor(r.xmin * width_));
  int x1 = static_cast<int>(std::ceil(r.xmax * width_));
  int y0 = static_cast<int>(std::floor(r.ymin * height_));
  int y1 = static_cast<int>(std::ceil(r.ymax * height_));
  x0 = std::clamp(x0, 0, width_);
  x1 = std::clamp(x1, 0, width_);
  y0 = std::clamp(y0, 0, height_);
  y1 = std::clamp(y1, 0, height_);
  for (int y = y0; y < y1; ++y) {
    double cy = (y + 0.5) / height_;
    for (int x = x0; x < x1; ++x) {
      double cx = (x + 0.5) / width_;
      if (r.Contains(cx, cy)) SetPixel(x, y, color);
    }
  }
}

namespace {

// Pixel noise is the hottest inner loop of the renderer (thousands of
// draws per frame), so Gaussian deviates come from a fixed lookup table
// indexed by a SplitMix64 stream instead of std::normal_distribution.
// Quality is ample for sensor-noise simulation and determinism is
// preserved (the table index stream is seeded from the caller's Rng).
constexpr int kNoiseTableBits = 14;
constexpr int kNoiseTableSize = 1 << kNoiseTableBits;

const float* NoiseTable() {
  static float* table = [] {
    float* t = new float[kNoiseTableSize];
    Rng rng(0x6a09e667f3bcc908ULL);
    for (int i = 0; i < kNoiseTableSize; ++i) {
      t[i] = static_cast<float>(rng.Normal(0.0, 1.0));
    }
    return t;
  }();
  return table;
}

}  // namespace

void Image::AddNoise(Rng* rng, double sigma) {
  if (sigma <= 0) return;
  const float* table = NoiseTable();
  const float s = static_cast<float>(sigma);
  uint64_t state = rng->engine()();  // one draw seeds the whole frame
  for (float& v : data_) {
    // SplitMix64 step.
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    v = std::clamp(v + s * table[z & (kNoiseTableSize - 1)], 0.0f, 1.0f);
  }
}

void Image::ScaleBrightness(float factor) {
  for (float& v : data_) v = std::clamp(v * factor, 0.0f, 1.0f);
}

double Image::MeanChannel(int c) const {
  if (Empty()) return 0.0;
  double sum = 0;
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) sum += static_cast<double>(At(x, y, c));
  }
  return sum / (static_cast<double>(width_) * height_);
}

double Image::MeanChannelInRect(int c, const Rect& rect) const {
  Rect r = rect.ClampToUnit();
  if (r.Empty() || Empty()) return 0.0;
  int x0 = std::clamp(static_cast<int>(std::floor(r.xmin * width_)), 0,
                      width_ - 1);
  int x1 = std::clamp(static_cast<int>(std::ceil(r.xmax * width_)), x0 + 1,
                      width_);
  int y0 = std::clamp(static_cast<int>(std::floor(r.ymin * height_)), 0,
                      height_ - 1);
  int y1 = std::clamp(static_cast<int>(std::ceil(r.ymax * height_)), y0 + 1,
                      height_);
  double sum = 0;
  int count = 0;
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      sum += static_cast<double>(At(x, y, c));
      ++count;
    }
  }
  return count > 0 ? sum / count : 0.0;
}

Image Image::Crop(const Rect& rect) const {
  Rect r = rect.ClampToUnit();
  if (r.Empty() || Empty()) return Image();
  int x0 = std::clamp(static_cast<int>(std::floor(r.xmin * width_)), 0,
                      width_ - 1);
  int x1 = std::clamp(static_cast<int>(std::ceil(r.xmax * width_)), x0 + 1,
                      width_);
  int y0 = std::clamp(static_cast<int>(std::floor(r.ymin * height_)), 0,
                      height_ - 1);
  int y1 = std::clamp(static_cast<int>(std::ceil(r.ymax * height_)), y0 + 1,
                      height_);
  Image out(x1 - x0, y1 - y0);
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      for (int c = 0; c < 3; ++c) out.Set(x - x0, y - y0, c, At(x, y, c));
    }
  }
  return out;
}

Image Image::Resize(int new_width, int new_height) const {
  Image out(new_width, new_height);
  if (Empty() || new_width <= 0 || new_height <= 0) return out;
  for (int y = 0; y < new_height; ++y) {
    int sy0 = y * height_ / new_height;
    int sy1 = std::max(sy0 + 1, (y + 1) * height_ / new_height);
    for (int x = 0; x < new_width; ++x) {
      int sx0 = x * width_ / new_width;
      int sx1 = std::max(sx0 + 1, (x + 1) * width_ / new_width);
      for (int c = 0; c < 3; ++c) {
        double sum = 0;
        for (int sy = sy0; sy < sy1; ++sy) {
          for (int sx = sx0; sx < sx1; ++sx)
            sum += static_cast<double>(At(sx, sy, c));
        }
        out.Set(x, y, c,
                static_cast<float>(sum / ((sy1 - sy0) * (sx1 - sx0))));
      }
    }
  }
  return out;
}

std::vector<float> Image::Flatten() const { return data_; }

}  // namespace blazeit
