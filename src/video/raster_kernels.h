#ifndef BLAZEIT_VIDEO_RASTER_KERNELS_H_
#define BLAZEIT_VIDEO_RASTER_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace blazeit {
namespace raster {

/// The raster kernel layer: the per-pixel inner loops of Image, factored
/// out so they can be runtime-dispatched between a portable scalar path
/// and an AVX-512 path. Both paths are bit-identical by construction —
/// every lane computes exactly the scalar expression (separate multiply
/// and add, no FMA contraction, no reassociation), so whichever path runs,
/// the persistent artifact store sees the same bytes. The golden suite
/// (tests/raster_golden_test.cc) pins this with an independent reference
/// implementation; tests can force the scalar path with
/// BLAZEIT_DISABLE_SIMD=1 (see util/cpu_features.h).

/// Size of the shared N(0,1) lookup table behind AddGaussianNoiseClamp.
inline constexpr int kNoiseTableBits = 14;
inline constexpr int kNoiseTableSize = 1 << kNoiseTableBits;

/// The shared Gaussian deviate table (lazily built, process lifetime).
const float* NoiseTable();

/// data[i] = clamp(data[i] + sigma * N(0,1), 0, 1) for i in [0, n), with
/// the i-th deviate drawn from NoiseTable() at the index produced by the
/// SplitMix64 stream seeded with `state` (one step per element). This is
/// the hottest loop of the renderer; the AVX-512 path computes the same
/// stream eight lanes at a time and gathers from the same table, and the
/// AVX2 tier four lanes at a time (64-bit multiplies composed from
/// 32x32->64 partial products, still exact mod-2^64 arithmetic).
void AddGaussianNoiseClamp(float* data, size_t n, uint64_t state,
                           float sigma);

/// Scalar reference path (always available; used by the dispatcher as the
/// fallback and by tests as the parity baseline).
void AddGaussianNoiseClampScalar(float* data, size_t n, uint64_t state,
                                 float sigma);

}  // namespace raster
}  // namespace blazeit

#endif  // BLAZEIT_VIDEO_RASTER_KERNELS_H_
