#include "net/http.h"

#include <cctype>
#include <cstdio>

#include "util/string_util.h"

namespace blazeit {
namespace net {

namespace {

const std::string kEmpty;

bool IsTokenChar(char c) {
  // RFC 7230 tchar, the characters legal in methods and header names.
  if (std::isalnum(static_cast<unsigned char>(c)) != 0) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

int HexVal(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

void ParseQueryString(const std::string& raw,
                      std::map<std::string, std::string>* out) {
  size_t start = 0;
  while (start <= raw.size()) {
    size_t amp = raw.find('&', start);
    if (amp == std::string::npos) amp = raw.size();
    const std::string pair = raw.substr(start, amp - start);
    if (!pair.empty()) {
      const size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        (*out)[UrlDecode(pair)];  // bare flag, empty value
      } else {
        (*out)[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
      }
    }
    start = amp + 1;
  }
}

}  // namespace

const std::string* HttpRequest::FindHeader(const std::string& name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

const std::string& HttpRequest::QueryParam(const std::string& name,
                                           const std::string& fallback) const {
  auto it = query.find(name);
  return it == query.end() ? fallback : it->second;
}

Result<HttpRequest> ParseRequestHead(const std::string& head,
                                     const HttpLimits& limits) {
  HttpRequest request;

  // Lines split on CRLF; a bare LF is tolerated (curl never sends one,
  // but hand-typed netcat probes do).
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < head.size()) {
    size_t nl = head.find('\n', pos);
    if (nl == std::string::npos) {
      lines.push_back(head.substr(pos));
      break;
    }
    size_t end = nl;
    if (end > pos && head[end - 1] == '\r') --end;
    lines.push_back(head.substr(pos, end - pos));
    pos = nl + 1;
  }
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.empty()) return Status::InvalidArgument("empty request");

  // Request line: METHOD SP target SP HTTP/x.y
  const std::string& line = lines[0];
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      line.find(' ', sp2 + 1) != std::string::npos) {
    return Status::InvalidArgument("malformed request line: '" + line + "'");
  }
  request.method = ToUpper(line.substr(0, sp1));
  request.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  request.version = line.substr(sp2 + 1);
  if (request.method.empty() || request.target.empty()) {
    return Status::InvalidArgument("malformed request line: '" + line + "'");
  }
  for (char c : request.method) {
    if (!IsTokenChar(c)) {
      return Status::InvalidArgument("malformed method: '" + request.method +
                                     "'");
    }
  }
  if (request.version != "HTTP/1.1" && request.version != "HTTP/1.0") {
    return Status::InvalidArgument("unsupported protocol: '" +
                                   request.version + "'");
  }
  if (request.target[0] != '/') {
    return Status::InvalidArgument("request target must be origin-form: '" +
                                   request.target + "'");
  }

  const size_t qmark = request.target.find('?');
  if (qmark == std::string::npos) {
    request.path = request.target;
  } else {
    request.path = request.target.substr(0, qmark);
    ParseQueryString(request.target.substr(qmark + 1), &request.query);
  }

  // Header fields: name ":" OWS value OWS.
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) break;  // blank line = end of head
    if (request.headers.size() >= limits.max_headers) {
      return Status::ResourceExhausted(
          "too many headers (limit " + std::to_string(limits.max_headers) +
          ")");
    }
    const size_t colon = lines[i].find(':');
    if (colon == std::string::npos || colon == 0) {
      return Status::InvalidArgument("malformed header: '" + lines[i] + "'");
    }
    std::string name = lines[i].substr(0, colon);
    for (char c : name) {
      if (!IsTokenChar(c)) {
        return Status::InvalidArgument("malformed header name: '" + name +
                                       "'");
      }
    }
    request.headers.emplace_back(ToLower(name),
                                 Trim(lines[i].substr(colon + 1)));
  }
  return request;
}

std::string SerializeResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    StatusReason(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& [name, value] : response.extra_headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

const char* StatusReason(int code) {
  switch (code) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default:  return "Unknown";
  }
}

std::string UrlDecode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size() && HexVal(s[i + 1]) >= 0 &&
               HexVal(s[i + 2]) >= 0) {
      out.push_back(static_cast<char>(HexVal(s[i + 1]) * 16 +
                                      HexVal(s[i + 2])));
      i += 2;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

std::string HtmlEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace net
}  // namespace blazeit
