#include "net/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"

namespace blazeit {
namespace net {

namespace {

/// Wire counters are scheduling- and client-driven, hence kUnstable.
obs::Counter* ResponseCounter(int status) {
  return obs::MetricsRegistry::Global().GetCounter(
      "net.http_responses{code=" + std::to_string(status) + "}",
      obs::Stability::kUnstable);
}

obs::Counter* DroppedCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "net.http_overload_drops", obs::Stability::kUnstable);
  return counter;
}

void SetSocketTimeout(int fd, int timeout_ms) {
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// send() the whole buffer; MSG_NOSIGNAL so a client that hung up mid-
/// response yields EPIPE instead of SIGPIPE.
bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

void SendResponse(int fd, const HttpResponse& response, bool head_only) {
  HttpResponse out = response;
  if (head_only) {
    // HEAD keeps the Content-Length of the suppressed body.
    const std::string length = std::to_string(out.body.size());
    out.body.clear();
    std::string serialized = SerializeResponse(out);
    const std::string needle = "Content-Length: 0\r\n";
    const size_t at = serialized.find(needle);
    if (at != std::string::npos) {
      serialized.replace(at, needle.size(),
                         "Content-Length: " + length + "\r\n");
    }
    SendAll(fd, serialized);
  } else {
    SendAll(fd, SerializeResponse(out));
  }
  ResponseCounter(out.status)->Add();
}

HttpResponse ErrorResponse(int status, const std::string& detail) {
  HttpResponse response;
  response.status = status;
  response.body = std::string(StatusReason(status)) + ": " + detail + "\n";
  return response;
}

}  // namespace

HttpServer::HttpServer(Options options) : options_(std::move(options)) {
  if (options_.worker_threads < 1) options_.worker_threads = 1;
  if (options_.max_pending_connections < 1) {
    options_.max_pending_connections = 1;
  }
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(const std::string& path, Handler handler) {
  util::MutexLock lock(mu_);
  handlers_[path] = std::move(handler);
}

Status HttpServer::Start() {
  util::MutexLock lock(mu_);
  if (running_) return Status::FailedPrecondition("server already running");

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    close(fd);
    return Status::Internal("bind " + options_.bind_address + ":" +
                            std::to_string(options_.port) + ": " + err);
  }
  if (listen(fd, options_.max_pending_connections) != 0) {
    const std::string err = std::strerror(errno);
    close(fd);
    return Status::Internal("listen: " + err);
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    const std::string err = std::strerror(errno);
    close(fd);
    return Status::Internal("getsockname: " + err);
  }

  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);
  running_ = true;
  stopping_ = false;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(static_cast<size_t>(options_.worker_threads));
  for (int i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void HttpServer::Stop() {
  std::thread accept_thread;
  std::vector<std::thread> workers;
  {
    util::MutexLock lock(mu_);
    if (!running_) return;
    stopping_ = true;
    // Unblocks accept() in the accept thread.
    shutdown(listen_fd_, SHUT_RDWR);
    close(listen_fd_);
    listen_fd_ = -1;
    accept_thread = std::move(accept_thread_);
    workers = std::move(workers_);
    workers_.clear();
  }
  queue_cv_.NotifyAll();
  if (accept_thread.joinable()) accept_thread.join();
  for (std::thread& worker : workers) worker.join();
  {
    util::MutexLock lock(mu_);
    for (int fd : pending_) {
      SendResponse(fd, ErrorResponse(503, "server shutting down"),
                   /*head_only=*/false);
      close(fd);
    }
    pending_.clear();
    running_ = false;
    stopping_ = false;
  }
}

bool HttpServer::running() const {
  util::MutexLock lock(mu_);
  return running_ && !stopping_;
}

int HttpServer::port() const {
  util::MutexLock lock(mu_);
  return port_;
}

void HttpServer::AcceptLoop() {
  while (true) {
    int listen_fd;
    {
      util::MutexLock lock(mu_);
      if (stopping_) return;
      listen_fd = listen_fd_;
    }
    const int fd = accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      util::MutexLock lock(mu_);
      if (stopping_) return;
      // Transient accept failure (EMFILE, ...): drop this edge and keep
      // serving; the debug surface must not take the process down.
      continue;
    }
    SetSocketTimeout(fd, options_.io_timeout_ms);
    {
      util::MutexLock lock(mu_);
      if (stopping_) {
        close(fd);
        return;
      }
      if (static_cast<int>(pending_.size()) >=
          options_.max_pending_connections) {
        DroppedCounter()->Add();
        SendResponse(fd, ErrorResponse(503, "connection queue full"),
                     /*head_only=*/false);
        close(fd);
        continue;
      }
      pending_.push_back(fd);
    }
    queue_cv_.NotifyOne();
  }
}

void HttpServer::WorkerLoop() {
  while (true) {
    int fd;
    {
      util::MutexLock lock(mu_);
      queue_cv_.Wait(mu_, [this]() BLAZEIT_NO_THREAD_SAFETY_ANALYSIS {
        return stopping_ || !pending_.empty();
      });
      if (pending_.empty()) return;  // stopping
      fd = pending_.front();
      pending_.pop_front();
    }
    ServeConnection(fd);
    close(fd);
  }
}

void HttpServer::ServeConnection(int fd) {
  const HttpLimits& limits = options_.limits;
  // Read until the blank line, bounded by max_head_bytes.
  std::string buffer;
  size_t head_end = std::string::npos;
  char chunk[4096];
  while (head_end == std::string::npos) {
    if (buffer.size() > limits.max_head_bytes) {
      SendResponse(fd, ErrorResponse(431, "request head exceeds " +
                                              std::to_string(
                                                  limits.max_head_bytes) +
                                              " bytes"),
                   /*head_only=*/false);
      return;
    }
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (!buffer.empty()) {
        SendResponse(fd, ErrorResponse(408, "timed out reading request"),
                     /*head_only=*/false);
      }
      return;  // client went away (or sent nothing)
    }
    const size_t scan_from = buffer.size() < 3 ? 0 : buffer.size() - 3;
    buffer.append(chunk, static_cast<size_t>(n));
    head_end = buffer.find("\r\n\r\n", scan_from);
    size_t delim = 4;
    if (head_end == std::string::npos) {
      head_end = buffer.find("\n\n", scan_from);
      delim = 2;
    }
    if (head_end != std::string::npos) {
      std::string head = buffer.substr(0, head_end);
      std::string rest = buffer.substr(head_end + delim);

      auto parsed = ParseRequestHead(head, limits);
      if (!parsed.ok()) {
        const int code = parsed.status().code() ==
                                 StatusCode::kResourceExhausted
                             ? 431
                             : 400;
        SendResponse(fd, ErrorResponse(code, parsed.status().ToString()),
                     /*head_only=*/false);
        return;
      }
      HttpRequest request = std::move(parsed).value();

      size_t content_length = 0;
      if (const std::string* cl = request.FindHeader("content-length")) {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(cl->c_str(), &end, 10);
        if (end == nullptr || *end != '\0') {
          SendResponse(fd, ErrorResponse(400, "bad Content-Length"),
                       /*head_only=*/false);
          return;
        }
        content_length = static_cast<size_t>(v);
      }
      if (content_length > limits.max_body_bytes) {
        SendResponse(fd, ErrorResponse(413, "body exceeds " +
                                                std::to_string(
                                                    limits.max_body_bytes) +
                                                " bytes"),
                     /*head_only=*/false);
        return;
      }
      request.body = std::move(rest);
      while (request.body.size() < content_length) {
        const ssize_t m = recv(fd, chunk, sizeof(chunk), 0);
        if (m <= 0) {
          SendResponse(fd, ErrorResponse(408, "timed out reading body"),
                       /*head_only=*/false);
          return;
        }
        request.body.append(chunk, static_cast<size_t>(m));
      }
      request.body.resize(content_length);

      if (request.method != "GET" && request.method != "HEAD" &&
          request.method != "POST") {
        SendResponse(fd, ErrorResponse(405, request.method + " not supported"),
                     /*head_only=*/false);
        return;
      }
      SendResponse(fd, Dispatch(request), request.method == "HEAD");
      return;
    }
  }
}

HttpResponse HttpServer::Dispatch(const HttpRequest& request) const {
  Handler handler;
  {
    util::MutexLock lock(mu_);
    auto it = handlers_.find(request.path);
    if (it != handlers_.end()) handler = it->second;
  }
  if (!handler) {
    return ErrorResponse(404, "no handler for " + request.path);
  }
  try {
    return handler(request);
  } catch (const std::exception& e) {
    BLAZEIT_LOG(kWarning) << "handler for " << request.path
                          << " threw: " << e.what();
    return ErrorResponse(500, "handler failed");
  } catch (...) {
    return ErrorResponse(500, "handler failed");
  }
}

}  // namespace net
}  // namespace blazeit
