#ifndef BLAZEIT_NET_HTTP_SERVER_H_
#define BLAZEIT_NET_HTTP_SERVER_H_

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "net/http.h"
#include "util/mutex.h"
#include "util/status.h"

namespace blazeit {
namespace net {

/// Dependency-free blocking HTTP/1.1 server for the observability
/// endpoints: one accept thread hands connections to a small dedicated
/// worker pool (its own std::threads — never the query ThreadPool, so a
/// scrape can never contend with query execution for pool workers, and a
/// saturated query pool can never starve /healthz).
///
/// Deliberately tiny: one request per connection (`Connection: close`),
/// exact-path routing, bounded head/body sizes (HttpLimits), socket read
/// and write timeouts. Everything a Prometheus scraper, curl, or a load
/// balancer health check needs — and nothing more.
///
/// Thread-safe: Handle() may be called before or after Start(); handlers
/// run concurrently on worker threads and must be thread-safe themselves.
class HttpServer {
 public:
  /// Handlers take the parsed request and return the full response. A
  /// throwing handler produces a 500 instead of killing the worker.
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  struct Options {
    /// Bind address. The debug surface defaults to loopback: exposing it
    /// beyond the host is an operator decision, not a default.
    std::string bind_address = "127.0.0.1";
    /// 0 picks an ephemeral port (read it back via port()).
    int port = 0;
    /// Dedicated connection workers.
    int worker_threads = 2;
    /// Accepted-but-unclaimed connection bound; excess connections get an
    /// immediate 503 instead of queueing unboundedly.
    int max_pending_connections = 16;
    /// Per-connection socket read/write timeout.
    int io_timeout_ms = 5000;
    HttpLimits limits;
  };

  HttpServer() : HttpServer(Options{}) {}
  explicit HttpServer(Options options);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Routes exact matches of `path` (no query string) to `handler`.
  /// Re-registering a path replaces the handler.
  void Handle(const std::string& path, Handler handler)
      BLAZEIT_EXCLUDES(mu_);

  /// Binds, listens, and spawns the accept + worker threads. Fails with
  /// Internal if the address cannot be bound (port in use, ...).
  Status Start() BLAZEIT_EXCLUDES(mu_);

  /// Stops accepting, drains queued connections with 503, joins all
  /// threads. Idempotent; also run by the destructor.
  void Stop() BLAZEIT_EXCLUDES(mu_);

  bool running() const BLAZEIT_EXCLUDES(mu_);
  /// The bound port (the ephemeral pick when options.port == 0); -1
  /// before Start().
  int port() const BLAZEIT_EXCLUDES(mu_);

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);
  HttpResponse Dispatch(const HttpRequest& request) const;

  Options options_;

  mutable util::Mutex mu_;
  util::CondVar queue_cv_;
  std::map<std::string, Handler> handlers_ BLAZEIT_GUARDED_BY(mu_);
  std::deque<int> pending_
      BLAZEIT_GUARDED_BY(mu_);  // accepted fds awaiting a worker
  bool running_ BLAZEIT_GUARDED_BY(mu_) = false;
  bool stopping_ BLAZEIT_GUARDED_BY(mu_) = false;
  int listen_fd_ BLAZEIT_GUARDED_BY(mu_) = -1;
  int port_ BLAZEIT_GUARDED_BY(mu_) = -1;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace net
}  // namespace blazeit

#endif  // BLAZEIT_NET_HTTP_SERVER_H_
