#ifndef BLAZEIT_NET_HTTP_H_
#define BLAZEIT_NET_HTTP_H_

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace blazeit {
namespace net {

/// Parse-time bounds of the debug server's tiny HTTP/1.1 front end. The
/// server refuses anything past a bound with a 4xx instead of buffering
/// unboundedly, so a misbehaving scraper cannot balloon memory.
struct HttpLimits {
  /// Request line + headers, bytes (the read loop stops here).
  size_t max_head_bytes = 16 * 1024;
  /// Declared Content-Length bound; beyond it is 413.
  size_t max_body_bytes = 256 * 1024;
  /// Header count bound; beyond it is 431.
  size_t max_headers = 64;
};

/// One parsed request. Header names are lower-cased at parse time;
/// values keep their bytes (outer whitespace trimmed).
struct HttpRequest {
  std::string method;   // "GET", "HEAD", "POST" (upper-case)
  std::string target;   // raw request target, e.g. "/tracez?slowest=1"
  std::string path;     // target up to '?'
  std::string version;  // "HTTP/1.0" or "HTTP/1.1"
  std::map<std::string, std::string> query;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First header with `name` (lower-case), or nullptr.
  const std::string* FindHeader(const std::string& name) const;
  /// Query parameter or `fallback`.
  const std::string& QueryParam(const std::string& name,
                                const std::string& fallback) const;
};

/// One response. The serializer adds Content-Length and
/// `Connection: close` (the debug server is deliberately one
/// request per connection).
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

/// Parses everything up to (not including) the blank line: the request
/// line plus headers. `head` must not contain the body. Returns
/// InvalidArgument on malformed syntax and ResourceExhausted when
/// `limits.max_headers` is exceeded; the body (if any) is read by the
/// caller using the returned Content-Length header.
Result<HttpRequest> ParseRequestHead(const std::string& head,
                                     const HttpLimits& limits);

/// Renders status line + headers + body, HTTP/1.1, Connection: close.
std::string SerializeResponse(const HttpResponse& response);

/// Canonical reason phrase ("OK", "Not Found", ...); "Unknown" otherwise.
const char* StatusReason(int code);

/// Percent-decodes a query component ('+' becomes space; bad escapes pass
/// through verbatim rather than failing the request).
std::string UrlDecode(const std::string& s);

/// Minimal escaping for embedding text in the debug pages.
std::string HtmlEscape(const std::string& s);

/// Escapes a string for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(const std::string& s);

}  // namespace net
}  // namespace blazeit

#endif  // BLAZEIT_NET_HTTP_H_
