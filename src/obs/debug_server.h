#ifndef BLAZEIT_OBS_DEBUG_SERVER_H_
#define BLAZEIT_OBS_DEBUG_SERVER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/http_server.h"
#include "util/mutex.h"
#include "util/status.h"

namespace blazeit {
namespace obs {

/// Process-wide registry the layers publish their introspection through:
/// each subsystem (storage, exec, serve, engine, obs itself) registers a
/// /statusz *section* — a callback returning one JSON object — and
/// optionally a /healthz *check* — a callback returning a detail string
/// on success or a failing Status. The debug server renders whatever is
/// registered, so a layer showing up in /statusz is one AddSection call,
/// not a debug-server edit.
///
/// Lifetime: Add* returns a token; Remove(token) must run before the
/// state the callback captures dies (AdmissionQueue and BlazeItEngine do
/// this in their destructors). Callbacks are invoked while the registry
/// lock is held, so Remove never returns with a call still in flight.
class StatusRegistry {
 public:
  /// Returns one JSON object (rendered under "status" in the section).
  using SectionFn = std::function<std::string()>;
  /// OK -> detail string for the healthz body; error -> endpoint is 503.
  using HealthFn = std::function<Result<std::string>()>;

  static StatusRegistry& Global();

  StatusRegistry() = default;
  StatusRegistry(const StatusRegistry&) = delete;
  StatusRegistry& operator=(const StatusRegistry&) = delete;

  int64_t AddSection(const std::string& name, SectionFn fn)
      BLAZEIT_EXCLUDES(mu_);
  int64_t AddHealthCheck(const std::string& name, HealthFn fn)
      BLAZEIT_EXCLUDES(mu_);
  void Remove(int64_t token) BLAZEIT_EXCLUDES(mu_);

  /// Every registered section, in registration order: (name, JSON body).
  /// Invokes the callbacks.
  std::vector<std::pair<std::string, std::string>> RenderSections() const
      BLAZEIT_EXCLUDES(mu_);

  struct HealthResult {
    std::string name;
    bool ok = true;
    std::string detail;  // success detail or the failing Status string
  };
  std::vector<HealthResult> RunHealthChecks() const;

 private:
  struct Entry {
    int64_t token = 0;
    std::string name;
    SectionFn section;  // exactly one of section/health is set
    HealthFn health;
  };

  mutable util::Mutex mu_;
  int64_t next_token_ BLAZEIT_GUARDED_BY(mu_) = 1;
  std::vector<Entry> entries_ BLAZEIT_GUARDED_BY(mu_);
};

/// The HTTP observability front end: binds net::HttpServer to the
/// process's telemetry. Endpoints:
///
///   /          tiny HTML index
///   /metrics   Prometheus text exposition (obs::PrometheusText)
///   /varz      metrics snapshot as JSON
///   /healthz   liveness + registered health checks (503 if any fails)
///   /statusz   build info, uptime, and every registered section
///              (JSON; ?format=html for the human page)
///   /tracez    flight recorder: recent + slowest completed queries
///              (obs::FlightRecorder::Global)
///
/// The server contributes its own sections: "process" (build info,
/// uptime), "exec" (pool size and sub-pool budgets), and "obs" (flight
/// recorder occupancy). It runs entirely on its own small net worker
/// pool and only ever *reads* telemetry, so it is output-neutral by
/// construction.
class DebugServer {
 public:
  struct Options {
    net::HttpServer::Options http;
  };

  DebugServer() : DebugServer(Options{}) {}
  explicit DebugServer(Options options);
  ~DebugServer();
  DebugServer(const DebugServer&) = delete;
  DebugServer& operator=(const DebugServer&) = delete;

  Status Start();
  void Stop();
  /// Bound port after Start() (ephemeral pick when options.http.port==0).
  int port() const { return http_.port(); }
  bool running() const { return http_.running(); }

 private:
  net::HttpResponse HandleIndex(const net::HttpRequest& request);
  net::HttpResponse HandleMetrics(const net::HttpRequest& request);
  net::HttpResponse HandleVarz(const net::HttpRequest& request);
  net::HttpResponse HandleHealthz(const net::HttpRequest& request);
  net::HttpResponse HandleStatusz(const net::HttpRequest& request);
  net::HttpResponse HandleTracez(const net::HttpRequest& request);

  double UptimeSeconds() const;

  Options options_;
  net::HttpServer http_;
  std::vector<int64_t> tokens_;
  std::chrono::steady_clock::time_point started_at_;
};

/// Build/version line shown in /statusz and the index page.
std::string BuildInfo();

}  // namespace obs
}  // namespace blazeit

#endif  // BLAZEIT_OBS_DEBUG_SERVER_H_
