#include "obs/report.h"

#include <cstdio>

namespace blazeit {
namespace obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// %.17g round-trips doubles exactly, so a report's JSON totals reconcile
/// with the in-memory CostMeter to the bit after a parse.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void AppendCostLine(const char* label, int64_t calls, double seconds,
                    std::string* out) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "  %-16s %10lld calls  %12.6f sim-s\n",
                label, static_cast<long long>(calls), seconds);
  *out += buf;
}

}  // namespace

void ExecutionReport::FillCost(const CostMeter& meter) {
  detection_calls = meter.detection_calls();
  specialized_nn_calls = meter.specialized_nn_calls();
  filter_calls = meter.filter_calls();
  training_frames = meter.training_frames();
  detection_seconds = meter.detection_seconds();
  specialized_nn_seconds = meter.specialized_nn_seconds();
  filter_seconds = meter.filter_seconds();
  training_seconds = meter.training_seconds();
  thresholding_seconds = meter.thresholding_seconds();
  total_seconds = meter.TotalSeconds();
  query_seconds = meter.QuerySeconds();
}

std::string ExecutionReport::ToText() const {
  std::string out;
  out += "query: " + query + "\n";
  out += "plan: " + plan;
  if (batch_group >= 0) {
    out += " (batch group " + std::to_string(batch_group) + ")";
  }
  out.push_back('\n');
  if (!plan_description.empty()) {
    out += "  " + plan_description + "\n";
  }
  if (accuracy_tier != "full") {
    out += "accuracy tier: " + accuracy_tier + "\n";
  }
  out += "simulated cost:\n";
  AppendCostLine("detection", detection_calls, detection_seconds, &out);
  AppendCostLine("specialized-nn", specialized_nn_calls,
                 specialized_nn_seconds, &out);
  AppendCostLine("filter", filter_calls, filter_seconds, &out);
  AppendCostLine("training", training_frames, training_seconds, &out);
  char buf[128];
  std::snprintf(buf, sizeof(buf), "  %-16s %10s        %12.6f sim-s\n",
                "thresholding", "", thresholding_seconds);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  total %.6f sim-s (%.6f excluding train/threshold)\n",
                total_seconds, query_seconds);
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "cache: %lld hits / %lld misses (floats %lld/%lld, doubles "
      "%lld/%lld, blobs %lld/%lld)\n",
      static_cast<long long>(cache.hits()),
      static_cast<long long>(cache.misses()),
      static_cast<long long>(cache.frame_float_hits),
      static_cast<long long>(cache.frame_float_misses),
      static_cast<long long>(cache.frame_double_hits),
      static_cast<long long>(cache.frame_double_misses),
      static_cast<long long>(cache.blob_hits),
      static_cast<long long>(cache.blob_misses));
  out += buf;
  if (cache.shared_nn_frames > 0 || cache.shared_filter_frames > 0 ||
      cache.shared_models > 0) {
    std::snprintf(buf, sizeof(buf),
                  "shared sweeps: %lld NN frames, %lld filter frames, %lld "
                  "models\n",
                  static_cast<long long>(cache.shared_nn_frames),
                  static_cast<long long>(cache.shared_filter_frames),
                  static_cast<long long>(cache.shared_models));
    out += buf;
  }
  if (sketch.consulted) {
    if (sketch.pruned) {
      std::snprintf(buf, sizeof(buf),
                    "sketch: pruned %lld of %lld window frames (%lld "
                    "candidates)\n",
                    static_cast<long long>(sketch.window_frames -
                                           sketch.candidate_frames),
                    static_cast<long long>(sketch.window_frames),
                    static_cast<long long>(sketch.candidate_frames));
    } else {
      std::snprintf(buf, sizeof(buf),
                    "sketch: consulted, no current index (full window of "
                    "%lld frames walked)\n",
                    static_cast<long long>(sketch.window_frames));
    }
    out += buf;
  }
  if (trace != nullptr) out += trace->ToText();
  return out;
}

std::string ExecutionReport::ToJson() const {
  std::string out = "{";
  out += "\"query\":\"" + JsonEscape(query) + "\"";
  out += ",\"plan\":\"" + JsonEscape(plan) + "\"";
  out += ",\"plan_description\":\"" + JsonEscape(plan_description) + "\"";
  out += ",\"batch_group\":" + std::to_string(batch_group);
  out += ",\"accuracy_tier\":\"" + JsonEscape(accuracy_tier) + "\"";
  out += ",\"cost\":{";
  out += "\"detection_calls\":" + std::to_string(detection_calls);
  out += ",\"specialized_nn_calls\":" + std::to_string(specialized_nn_calls);
  out += ",\"filter_calls\":" + std::to_string(filter_calls);
  out += ",\"training_frames\":" + std::to_string(training_frames);
  out += ",\"detection_seconds\":" + FormatDouble(detection_seconds);
  out += ",\"specialized_nn_seconds\":" +
         FormatDouble(specialized_nn_seconds);
  out += ",\"filter_seconds\":" + FormatDouble(filter_seconds);
  out += ",\"training_seconds\":" + FormatDouble(training_seconds);
  out += ",\"thresholding_seconds\":" + FormatDouble(thresholding_seconds);
  out += ",\"total_seconds\":" + FormatDouble(total_seconds);
  out += ",\"query_seconds\":" + FormatDouble(query_seconds);
  out += "}";
  out += ",\"cache\":{";
  out += "\"frame_float_hits\":" + std::to_string(cache.frame_float_hits);
  out +=
      ",\"frame_float_misses\":" + std::to_string(cache.frame_float_misses);
  out += ",\"frame_double_hits\":" + std::to_string(cache.frame_double_hits);
  out += ",\"frame_double_misses\":" +
         std::to_string(cache.frame_double_misses);
  out += ",\"blob_hits\":" + std::to_string(cache.blob_hits);
  out += ",\"blob_misses\":" + std::to_string(cache.blob_misses);
  out += ",\"shared_nn_frames\":" + std::to_string(cache.shared_nn_frames);
  out += ",\"shared_filter_frames\":" +
         std::to_string(cache.shared_filter_frames);
  out += ",\"shared_models\":" + std::to_string(cache.shared_models);
  out += "}";
  out += ",\"sketch\":{";
  out += std::string("\"consulted\":") +
         (sketch.consulted ? "true" : "false");
  out += std::string(",\"pruned\":") + (sketch.pruned ? "true" : "false");
  out += ",\"window_frames\":" + std::to_string(sketch.window_frames);
  out += ",\"candidate_frames\":" + std::to_string(sketch.candidate_frames);
  out += "}";
  if (trace != nullptr) {
    out += ",\"trace\":" + trace->ToChromeJson();
  }
  out += "}";
  return out;
}

}  // namespace obs
}  // namespace blazeit
