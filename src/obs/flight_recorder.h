#ifndef BLAZEIT_OBS_FLIGHT_RECORDER_H_
#define BLAZEIT_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/mutex.h"

namespace blazeit {
namespace obs {

/// One completed query's retained summary: identity (the correlation id
/// shown in /tracez and threaded through the log lines), outcome, the
/// chosen plan, wall/simulated time, and the lifecycle trace when the
/// engine collected one. Small by construction — strings plus a
/// shared_ptr to the trace the query already allocated — so retaining
/// the last few hundred costs a bounded few hundred KB.
struct FlightRecord {
  /// Per-query correlation id (FlightRecorder::NextCorrelationId()).
  int64_t correlation_id = -1;
  /// Global record sequence; higher = more recent. Assigned by Record().
  int64_t sequence = -1;
  /// Serving tenant; empty for direct engine.Execute calls.
  std::string client;
  std::string query;
  std::string plan;
  /// "full" / "degraded-sampling" / "degraded-scan"; empty when unknown.
  std::string accuracy_tier;
  bool ok = true;
  bool degraded = false;
  std::string error;
  /// Wall-clock execution time observed by the completion path.
  double wall_ms = 0.0;
  /// Simulated cost (CostMeter::TotalSeconds()).
  double cost_seconds = 0.0;
  /// The query's span tree (null when tracing was off).
  std::shared_ptr<QueryTrace> trace;

  /// One JSON object; includes the trace's structure signature lines.
  std::string ToJson() const;
};

/// Always-on flight recorder behind /tracez: a fixed-capacity,
/// mutex-sharded ring buffer retaining the last `capacity` completed
/// queries, plus a separate "slowest K" reservoir keyed by wall time so
/// a burst of fast queries cannot evict the interesting outliers.
///
/// Record() is O(1) — an atomic sequence fetch_add, one shard mutex, one
/// slot overwrite — and memory is bounded at construction, so the
/// recorder stays on in serving mode. It only *observes* completed
/// queries (outputs and simulated costs never flow through it), which is
/// what keeps every determinism suite bit-identical with it running.
///
/// Thread-safe: Record and the snapshot calls may race freely; snapshots
/// lock shards one at a time, so they are point-in-time per shard, not
/// globally atomic — fine for a debug endpoint.
class FlightRecorder {
 public:
  struct Options {
    /// Total retained completed queries across all shards.
    int64_t capacity = 256;
    /// Mutex shards; records land on shard (sequence % shards).
    int shards = 8;
    /// Slowest-by-wall-time reservoir size.
    int64_t slowest_k = 16;
  };

  FlightRecorder() : FlightRecorder(Options{}) {}
  explicit FlightRecorder(Options options);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder the engine and serving layer feed.
  static FlightRecorder& Global();

  /// Process-wide monotonic correlation-id source (also usable without a
  /// recorder, e.g. by the log-field threading).
  static int64_t NextCorrelationId();

  void Record(FlightRecord record);

  /// Retained records, most recent first.
  std::vector<FlightRecord> Snapshot() const;
  /// The slowest-by-wall-time retained records, slowest first.
  std::vector<FlightRecord> SlowestSnapshot() const;

  /// Lifetime count of Record() calls (>= retained count).
  int64_t total_recorded() const {
    return total_.load(std::memory_order_relaxed);
  }
  const Options& options() const { return options_; }

  /// {"total_recorded":N,"capacity":N,"recent":[...],"slowest":[...]}
  std::string ToJson() const;

 private:
  struct Shard {
    mutable util::Mutex mu;
    std::vector<FlightRecord> ring
        BLAZEIT_GUARDED_BY(mu);  // per-shard slots, overwrite in place
  };

  Options options_;
  int64_t per_shard_ = 0;
  std::atomic<int64_t> sequence_{0};
  std::atomic<int64_t> total_{0};
  std::unique_ptr<Shard[]> shards_;

  mutable util::Mutex slowest_mu_;
  /// Min-heap by wall_ms (front = fastest of the retained slow set).
  std::vector<FlightRecord> slowest_ BLAZEIT_GUARDED_BY(slowest_mu_);
};

}  // namespace obs
}  // namespace blazeit

#endif  // BLAZEIT_OBS_FLIGHT_RECORDER_H_
