#include "obs/trace.h"

#include <cstdio>

#include "sim/cost_model.h"

namespace blazeit {
namespace obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

QueryTrace::QueryTrace(std::string name)
    : name_(std::move(name)), t0_(std::chrono::steady_clock::now()) {}

std::vector<QueryTrace::Span> QueryTrace::spans() const {
  util::MutexLock lock(mu_);
  return spans_;
}

int QueryTrace::Open(const char* name, const CostMeter* meter) {
  util::MutexLock lock(mu_);
  Span span;
  span.name = name;
  span.parent = stack_.empty() ? -1 : stack_.back();
  span.depth = static_cast<int>(stack_.size());
  span.start_ns = NowNs();
  if (meter != nullptr) {
    span.cost_begin_seconds = meter->TotalSeconds();
    span.has_cost = true;
  }
  const int index = static_cast<int>(spans_.size());
  spans_.push_back(std::move(span));
  stack_.push_back(index);
  return index;
}

void QueryTrace::Close(int index, const CostMeter* meter) {
  util::MutexLock lock(mu_);
  if (index < 0 || index >= static_cast<int>(spans_.size())) return;
  Span& span = spans_[static_cast<size_t>(index)];
  span.end_ns = NowNs();
  if (meter != nullptr) span.cost_end_seconds = meter->TotalSeconds();
  span.closed = true;
  // RAII spans close innermost-first, so this pops exactly one entry; the
  // loop tolerates an unclosed child by popping down to the closing span.
  while (!stack_.empty()) {
    const int top = stack_.back();
    stack_.pop_back();
    if (top == index) break;
  }
}

int64_t QueryTrace::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - t0_)
      .count();
}

std::string QueryTrace::ToText() const {
  const std::vector<Span> spans = this->spans();
  std::string out = "trace: " + name_ + "\n";
  for (const Span& span : spans) {
    out.append(static_cast<size_t>(span.depth + 1) * 2, ' ');
    out += span.name;
    const double wall_ms =
        static_cast<double>(span.end_ns - span.start_ns) / 1e6;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "  %.3f ms", wall_ms);
    out += buf;
    if (span.has_cost) {
      std::snprintf(buf, sizeof(buf), "  [+%.6f sim-s]",
                    span.cost_end_seconds - span.cost_begin_seconds);
      out += buf;
    }
    if (!span.closed) out += "  (unclosed)";
    out.push_back('\n');
  }
  return out;
}

std::string QueryTrace::ToChromeJson() const {
  const std::vector<Span> spans = this->spans();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Metadata event naming the process row after the query.
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"" + JsonEscape(name_) + "\"}}";
  first = false;
  for (const Span& span : spans) {
    if (!first) out.push_back(',');
    first = false;
    const double ts_us = static_cast<double>(span.start_ns) / 1e3;
    const double dur_us =
        static_cast<double>(span.end_ns - span.start_ns) / 1e3;
    out += "{\"name\":\"" + JsonEscape(span.name) + "\"";
    out += ",\"cat\":\"blazeit\",\"ph\":\"X\",\"pid\":1";
    // One tid per nesting depth renders the tree as stacked rows.
    out += ",\"tid\":" + std::to_string(span.depth);
    out += ",\"ts\":" + FormatDouble(ts_us);
    out += ",\"dur\":" + FormatDouble(dur_us);
    out += ",\"args\":{";
    if (span.has_cost) {
      out += "\"simulated_seconds\":" +
             FormatDouble(span.cost_end_seconds - span.cost_begin_seconds);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string QueryTrace::StructureSignature() const {
  const std::vector<Span> spans = this->spans();
  std::string out;
  for (const Span& span : spans) {
    out.append(static_cast<size_t>(span.depth) * 2, ' ');
    out += span.name;
    out.push_back('\n');
  }
  return out;
}

}  // namespace obs
}  // namespace blazeit
