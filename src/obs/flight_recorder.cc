#include "obs/flight_recorder.h"

#include <algorithm>
#include <utility>

#include "net/http.h"
#include "util/string_util.h"

namespace blazeit {
namespace obs {

namespace {

bool SlowerThan(const FlightRecord& a, const FlightRecord& b) {
  // Heap comparator: the *fastest* retained record sits at the heap top,
  // ready to be displaced. Sequence breaks wall-time ties so retention
  // is deterministic for equal timings.
  if (a.wall_ms != b.wall_ms) return a.wall_ms > b.wall_ms;
  return a.sequence > b.sequence;
}

}  // namespace

std::string FlightRecord::ToJson() const {
  std::string out = "{";
  out += "\"correlation_id\":" + std::to_string(correlation_id);
  out += ",\"sequence\":" + std::to_string(sequence);
  out += ",\"client\":\"" + net::JsonEscape(client) + "\"";
  out += ",\"query\":\"" + net::JsonEscape(query) + "\"";
  out += ",\"plan\":\"" + net::JsonEscape(plan) + "\"";
  out += ",\"accuracy_tier\":\"" + net::JsonEscape(accuracy_tier) + "\"";
  out += std::string(",\"ok\":") + (ok ? "true" : "false");
  out += std::string(",\"degraded\":") + (degraded ? "true" : "false");
  if (!ok) out += ",\"error\":\"" + net::JsonEscape(error) + "\"";
  out += StrFormat(",\"wall_ms\":%.3f", wall_ms);
  out += StrFormat(",\"cost_seconds\":%.6f", cost_seconds);
  if (trace != nullptr) {
    out += ",\"trace_structure\":\"" +
           net::JsonEscape(trace->StructureSignature()) + "\"";
  }
  out += "}";
  return out;
}

FlightRecorder::FlightRecorder(Options options) : options_(options) {
  if (options_.shards < 1) options_.shards = 1;
  if (options_.capacity < options_.shards) options_.capacity = options_.shards;
  if (options_.slowest_k < 0) options_.slowest_k = 0;
  per_shard_ = options_.capacity / options_.shards;
  shards_ = std::make_unique<Shard[]>(static_cast<size_t>(options_.shards));
  for (int s = 0; s < options_.shards; ++s) {
    shards_[s].ring.resize(static_cast<size_t>(per_shard_));
  }
  slowest_.reserve(static_cast<size_t>(options_.slowest_k));
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

int64_t FlightRecorder::NextCorrelationId() {
  static std::atomic<int64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void FlightRecorder::Record(FlightRecord record) {
  const int64_t seq = sequence_.fetch_add(1, std::memory_order_relaxed);
  record.sequence = seq;
  total_.fetch_add(1, std::memory_order_relaxed);

  if (options_.slowest_k > 0) {
    util::MutexLock lock(slowest_mu_);
    if (static_cast<int64_t>(slowest_.size()) < options_.slowest_k) {
      slowest_.push_back(record);
      std::push_heap(slowest_.begin(), slowest_.end(), SlowerThan);
    } else if (!slowest_.empty() && record.wall_ms > slowest_[0].wall_ms) {
      std::pop_heap(slowest_.begin(), slowest_.end(), SlowerThan);
      slowest_.back() = record;
      std::push_heap(slowest_.begin(), slowest_.end(), SlowerThan);
    }
  }

  Shard& shard = shards_[static_cast<size_t>(seq % options_.shards)];
  const size_t slot =
      static_cast<size_t>((seq / options_.shards) % per_shard_);
  util::MutexLock lock(shard.mu);
  shard.ring[slot] = std::move(record);
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  std::vector<FlightRecord> out;
  out.reserve(static_cast<size_t>(options_.capacity));
  for (int s = 0; s < options_.shards; ++s) {
    const Shard& shard = shards_[static_cast<size_t>(s)];
    util::MutexLock lock(shard.mu);
    for (const FlightRecord& record : shard.ring) {
      if (record.sequence >= 0) out.push_back(record);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.sequence > b.sequence;
            });
  return out;
}

std::vector<FlightRecord> FlightRecorder::SlowestSnapshot() const {
  std::vector<FlightRecord> out;
  {
    util::MutexLock lock(slowest_mu_);
    out = slowest_;
  }
  std::sort(out.begin(), out.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              if (a.wall_ms != b.wall_ms) return a.wall_ms > b.wall_ms;
              return a.sequence < b.sequence;
            });
  return out;
}

std::string FlightRecorder::ToJson() const {
  std::string out = "{";
  out += "\"total_recorded\":" + std::to_string(total_recorded());
  out += ",\"capacity\":" + std::to_string(options_.capacity);
  out += ",\"slowest_k\":" + std::to_string(options_.slowest_k);
  out += ",\"recent\":[";
  bool first = true;
  for (const FlightRecord& record : Snapshot()) {
    if (!first) out += ",";
    first = false;
    out += record.ToJson();
  }
  out += "],\"slowest\":[";
  first = true;
  for (const FlightRecord& record : SlowestSnapshot()) {
    if (!first) out += ",";
    first = false;
    out += record.ToJson();
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace blazeit
