#ifndef BLAZEIT_OBS_COUNTING_CACHE_H_
#define BLAZEIT_OBS_COUNTING_CACHE_H_

#include <cstdint>
#include <vector>

#include "util/artifact_cache.h"

namespace blazeit {
namespace obs {

/// Per-kind hit/miss counts of one query's artifact-cache traffic, plus
/// the batch layer's shared-sweep sharing counters (filled by
/// ExecuteBatch, zero for standalone execution).
struct CacheStats {
  int64_t frame_float_hits = 0;
  int64_t frame_float_misses = 0;
  int64_t frame_double_hits = 0;
  int64_t frame_double_misses = 0;
  int64_t blob_hits = 0;
  int64_t blob_misses = 0;
  int64_t shared_nn_frames = 0;
  int64_t shared_filter_frames = 0;
  int64_t shared_models = 0;

  int64_t hits() const {
    return frame_float_hits + frame_double_hits + blob_hits;
  }
  int64_t misses() const {
    return frame_float_misses + frame_double_misses + blob_misses;
  }
};

/// ArtifactCache wrapper counting one query's per-kind hits and misses
/// for its ExecutionReport. A null underlying cache is allowed: every Get
/// is then a counted miss and every Put a no-op, which matches cache-less
/// execution exactly (the cache-hit ≡ recompute contract means wrapping
/// can never change query outputs or simulated costs — only observe them).
/// Not thread-safe beyond the counters being plain (one view serves one
/// query on one thread, the same ownership rule as SweepCacheView).
class CountingCacheView final : public ArtifactCache {
 public:
  explicit CountingCacheView(ArtifactCache* underlying)
      : underlying_(underlying) {}

  bool GetFrameFloats(uint64_t ns, int64_t frame,
                      std::vector<float>* out) override {
    const bool hit =
        underlying_ != nullptr && underlying_->GetFrameFloats(ns, frame, out);
    (hit ? stats_.frame_float_hits : stats_.frame_float_misses) += 1;
    return hit;
  }
  void PutFrameFloats(uint64_t ns, int64_t frame,
                      const std::vector<float>& values) override {
    if (underlying_ != nullptr) underlying_->PutFrameFloats(ns, frame, values);
  }

  bool GetFrameDoubles(uint64_t ns, int64_t frame,
                       std::vector<double>* out) override {
    const bool hit = underlying_ != nullptr &&
                     underlying_->GetFrameDoubles(ns, frame, out);
    (hit ? stats_.frame_double_hits : stats_.frame_double_misses) += 1;
    return hit;
  }
  void PutFrameDoubles(uint64_t ns, int64_t frame,
                       const std::vector<double>& values) override {
    if (underlying_ != nullptr) {
      underlying_->PutFrameDoubles(ns, frame, values);
    }
  }

  bool GetBlob(uint64_t ns, std::vector<float>* out) override {
    const bool hit = underlying_ != nullptr && underlying_->GetBlob(ns, out);
    (hit ? stats_.blob_hits : stats_.blob_misses) += 1;
    return hit;
  }
  void PutBlob(uint64_t ns, const std::vector<float>& values) override {
    if (underlying_ != nullptr) underlying_->PutBlob(ns, values);
  }

  const CacheStats& stats() const { return stats_; }

 private:
  ArtifactCache* underlying_;
  CacheStats stats_;
};

}  // namespace obs
}  // namespace blazeit

#endif  // BLAZEIT_OBS_COUNTING_CACHE_H_
