#include "obs/debug_server.h"

#include <algorithm>

#include "exec/thread_pool.h"
#include "net/http.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace blazeit {
namespace obs {

namespace {

using net::HttpRequest;
using net::HttpResponse;

const char kJsonType[] = "application/json; charset=utf-8";
const char kHtmlType[] = "text/html; charset=utf-8";
/// The Prometheus text exposition content type (format version 0.0.4).
const char kPromType[] = "text/plain; version=0.0.4; charset=utf-8";

HttpResponse JsonResponse(std::string body) {
  HttpResponse response;
  response.content_type = kJsonType;
  response.body = std::move(body);
  response.body += "\n";
  return response;
}

}  // namespace

// ---------------------------------------------------------------------------
// StatusRegistry

StatusRegistry& StatusRegistry::Global() {
  static StatusRegistry* registry = new StatusRegistry();
  return *registry;
}

int64_t StatusRegistry::AddSection(const std::string& name, SectionFn fn) {
  util::MutexLock lock(mu_);
  Entry entry;
  entry.token = next_token_++;
  entry.name = name;
  entry.section = std::move(fn);
  entries_.push_back(std::move(entry));
  return entries_.back().token;
}

int64_t StatusRegistry::AddHealthCheck(const std::string& name, HealthFn fn) {
  util::MutexLock lock(mu_);
  Entry entry;
  entry.token = next_token_++;
  entry.name = name;
  entry.health = std::move(fn);
  entries_.push_back(std::move(entry));
  return entries_.back().token;
}

void StatusRegistry::Remove(int64_t token) {
  util::MutexLock lock(mu_);
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [token](const Entry& e) {
                                  return e.token == token;
                                }),
                 entries_.end());
}

std::vector<std::pair<std::string, std::string>>
StatusRegistry::RenderSections() const {
  // Callbacks run under mu_ on purpose: Remove() then cannot return while
  // a callback still touches the owner's state (the un-registration
  // contract the providers' destructors rely on).
  std::vector<std::pair<std::string, std::string>> out;
  util::MutexLock lock(mu_);
  for (const Entry& entry : entries_) {
    if (entry.section) out.emplace_back(entry.name, entry.section());
  }
  return out;
}

std::vector<StatusRegistry::HealthResult> StatusRegistry::RunHealthChecks()
    const {
  std::vector<HealthResult> out;
  util::MutexLock lock(mu_);
  for (const Entry& entry : entries_) {
    if (!entry.health) continue;
    HealthResult result;
    result.name = entry.name;
    Result<std::string> run = entry.health();
    result.ok = run.ok();
    result.detail = run.ok() ? run.value() : run.status().ToString();
    out.push_back(std::move(result));
  }
  return out;
}

// ---------------------------------------------------------------------------
// DebugServer

std::string BuildInfo() {
  return StrFormat("blazeit debug server (C++%ld, %s)",
                   static_cast<long>(__cplusplus / 100 % 100),
#if defined(__clang__)
                   "clang " __clang_version__
#elif defined(__GNUC__)
                   "gcc " __VERSION__
#else
                   "unknown compiler"
#endif
  );  // NOLINT(whitespace/parens)
}

DebugServer::DebugServer(Options options)
    : options_(std::move(options)), http_(options_.http) {}

DebugServer::~DebugServer() { Stop(); }

Status DebugServer::Start() {
  started_at_ = std::chrono::steady_clock::now();

  http_.Handle("/", [this](const HttpRequest& r) { return HandleIndex(r); });
  http_.Handle("/metrics",
               [this](const HttpRequest& r) { return HandleMetrics(r); });
  http_.Handle("/varz",
               [this](const HttpRequest& r) { return HandleVarz(r); });
  http_.Handle("/healthz",
               [this](const HttpRequest& r) { return HandleHealthz(r); });
  http_.Handle("/statusz",
               [this](const HttpRequest& r) { return HandleStatusz(r); });
  http_.Handle("/tracez",
               [this](const HttpRequest& r) { return HandleTracez(r); });

  StatusRegistry& registry = StatusRegistry::Global();
  tokens_.push_back(registry.AddSection("process", [this] {
    return StrFormat("{\"build\":\"%s\",\"uptime_seconds\":%.1f}",
                     net::JsonEscape(BuildInfo()).c_str(), UptimeSeconds());
  }));
  tokens_.push_back(registry.AddSection("exec", [] {
    exec::ThreadPool& pool = exec::ThreadPool::Instance();
    return StrFormat(
        "{\"max_parallelism\":%d,\"budgets\":{\"default\":%d,"
        "\"serving\":%d,\"analytics\":%d}}",
        pool.max_parallelism(),
        pool.BudgetLimit(exec::ThreadPool::Budget::kDefault),
        pool.BudgetLimit(exec::ThreadPool::Budget::kServing),
        pool.BudgetLimit(exec::ThreadPool::Budget::kAnalytics));
  }));
  tokens_.push_back(registry.AddSection("obs", [] {
    const FlightRecorder& recorder = FlightRecorder::Global();
    return StrFormat(
        "{\"flight_recorder\":{\"total_recorded\":%lld,\"capacity\":%lld,"
        "\"slowest_k\":%lld},\"metrics_instruments\":%zu}",
        static_cast<long long>(recorder.total_recorded()),
        static_cast<long long>(recorder.options().capacity),
        static_cast<long long>(recorder.options().slowest_k),
        MetricsRegistry::Global().Snapshot().entries.size());
  }));

  Status started = http_.Start();
  if (!started.ok()) {
    Stop();
    return started;
  }
  BLAZEIT_LOG(kInfo) << "debug server listening on "
                     << options_.http.bind_address << ":" << http_.port();
  return Status::OK();
}

void DebugServer::Stop() {
  http_.Stop();
  for (int64_t token : tokens_) StatusRegistry::Global().Remove(token);
  tokens_.clear();
}

double DebugServer::UptimeSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       started_at_)
      .count();
}

HttpResponse DebugServer::HandleIndex(const HttpRequest&) {
  HttpResponse response;
  response.content_type = kHtmlType;
  response.body =
      "<!doctype html><html><head><title>blazeit</title></head><body>"
      "<h1>blazeit debug server</h1><p>" +
      net::HtmlEscape(BuildInfo()) +
      "</p><ul>"
      "<li><a href=\"/metrics\">/metrics</a> — Prometheus exposition</li>"
      "<li><a href=\"/varz\">/varz</a> — metrics snapshot (JSON)</li>"
      "<li><a href=\"/healthz\">/healthz</a> — liveness + checks</li>"
      "<li><a href=\"/statusz\">/statusz</a> — per-layer status "
      "(<a href=\"/statusz?format=html\">html</a>)</li>"
      "<li><a href=\"/tracez\">/tracez</a> — recent + slowest query "
      "traces</li>"
      "</ul></body></html>\n";
  return response;
}

HttpResponse DebugServer::HandleMetrics(const HttpRequest&) {
  HttpResponse response;
  response.content_type = kPromType;
  response.body = PrometheusText();
  return response;
}

HttpResponse DebugServer::HandleVarz(const HttpRequest&) {
  return JsonResponse(MetricsRegistry::Global().Snapshot().ToJson());
}

HttpResponse DebugServer::HandleHealthz(const HttpRequest&) {
  const std::vector<StatusRegistry::HealthResult> checks =
      StatusRegistry::Global().RunHealthChecks();
  bool healthy = true;
  std::string body = "{\"checks\":[";
  bool first = true;
  for (const StatusRegistry::HealthResult& check : checks) {
    healthy = healthy && check.ok;
    if (!first) body += ",";
    first = false;
    body += "{\"name\":\"" + net::JsonEscape(check.name) + "\",\"ok\":" +
            (check.ok ? "true" : "false") + ",\"detail\":\"" +
            net::JsonEscape(check.detail) + "\"}";
  }
  body += StrFormat("],\"uptime_seconds\":%.1f,\"status\":\"%s\"}",
                    UptimeSeconds(), healthy ? "ok" : "unhealthy");
  HttpResponse response = JsonResponse(std::move(body));
  if (!healthy) response.status = 503;
  return response;
}

HttpResponse DebugServer::HandleStatusz(const HttpRequest& request) {
  const std::vector<std::pair<std::string, std::string>> sections =
      StatusRegistry::Global().RenderSections();

  const std::string* accept = request.FindHeader("accept");
  const bool html =
      request.QueryParam("format", "") == "html" ||
      (accept != nullptr && accept->find("text/html") != std::string::npos &&
       request.query.find("format") == request.query.end());

  if (html) {
    std::string body =
        "<!doctype html><html><head><title>statusz</title></head><body>"
        "<h1>blazeit /statusz</h1><p>" +
        net::HtmlEscape(BuildInfo()) +
        StrFormat(" — up %.1fs</p>", UptimeSeconds());
    for (const auto& [name, json] : sections) {
      body += "<h2>" + net::HtmlEscape(name) + "</h2><pre>" +
              net::HtmlEscape(json) + "</pre>";
    }
    body += "</body></html>\n";
    HttpResponse response;
    response.content_type = kHtmlType;
    response.body = std::move(body);
    return response;
  }

  std::string body = StrFormat(
      "{\"build\":\"%s\",\"uptime_seconds\":%.1f,\"sections\":[",
      net::JsonEscape(BuildInfo()).c_str(), UptimeSeconds());
  bool first = true;
  for (const auto& [name, json] : sections) {
    if (!first) body += ",";
    first = false;
    body += "{\"section\":\"" + net::JsonEscape(name) + "\",\"status\":" +
            json + "}";
  }
  body += "]}";
  return JsonResponse(std::move(body));
}

HttpResponse DebugServer::HandleTracez(const HttpRequest&) {
  return JsonResponse(FlightRecorder::Global().ToJson());
}

}  // namespace obs
}  // namespace blazeit
