#ifndef BLAZEIT_OBS_REPORT_H_
#define BLAZEIT_OBS_REPORT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "obs/counting_cache.h"
#include "obs/trace.h"
#include "sim/cost_model.h"

namespace blazeit {
namespace obs {

/// Sketch-index activity of one query (full scans, count-distinct, and
/// scrubbing consult the index; other plans leave this default).
struct SketchStats {
  /// The plan asked the sketch index for candidates (use_store_index was
  /// on and the plan supports pruning).
  bool consulted = false;
  /// A current index answered — candidate_frames is the pruned frame
  /// count. False with consulted == true means the stale/absent fallback
  /// ran (the whole window was walked).
  bool pruned = false;
  int64_t window_frames = 0;
  int64_t candidate_frames = 0;
};

/// EXPLAIN-style artifact of one executed query: the chosen plan, the
/// simulated-cost breakdown (copied from the query's CostMeter, so totals
/// reconcile with QueryOutput::cost exactly), cache and sketch activity,
/// and the lifecycle trace. Attached to QueryOutput when
/// EngineOptions::collect_reports is on.
struct ExecutionReport {
  std::string query;
  std::string plan;
  std::string plan_description;
  /// Shared-plan group index within the batch; -1 for standalone runs.
  int64_t batch_group = -1;
  /// Accuracy tier the query actually ran at. "full" is the normal
  /// engine path (the optimizer's plan, paper guarantees intact); the
  /// serving layer sets "degraded-sampling" / "degraded-scan" when load
  /// shedding downgraded the query to a cheap baseline, so the downgrade
  /// is visible to clients in the report.
  std::string accuracy_tier = "full";

  // --- simulated-cost breakdown (== the QueryOutput's CostMeter) ---
  int64_t detection_calls = 0;
  int64_t specialized_nn_calls = 0;
  int64_t filter_calls = 0;
  int64_t training_frames = 0;
  double detection_seconds = 0.0;
  double specialized_nn_seconds = 0.0;
  double filter_seconds = 0.0;
  double training_seconds = 0.0;
  double thresholding_seconds = 0.0;
  double total_seconds = 0.0;
  double query_seconds = 0.0;

  CacheStats cache;
  SketchStats sketch;

  /// Present when tracing ran (always, under collect_reports).
  std::shared_ptr<QueryTrace> trace;

  /// Copies the meter's counters and seconds into the breakdown fields.
  void FillCost(const CostMeter& meter);

  /// Multi-line EXPLAIN text: plan, cost table, cache/sketch lines, and
  /// the trace tree.
  std::string ToText() const;
  /// One JSON object; includes the Chrome trace under "trace" when
  /// present, so the report is self-contained.
  std::string ToJson() const;
};

}  // namespace obs
}  // namespace blazeit

#endif  // BLAZEIT_OBS_REPORT_H_
