#ifndef BLAZEIT_OBS_TRACE_H_
#define BLAZEIT_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "util/mutex.h"

namespace blazeit {

class CostMeter;  // sim/cost_model.h

namespace obs {

/// One query's lifecycle trace: a tree of scoped spans
/// (parse -> analyze -> optimize -> train -> sweep -> execute -> ...)
/// recording wall time and, when a span is opened with a CostMeter,
/// simulated-cost deltas. Each query gets its own QueryTrace, so batch
/// execution — where different queries run on different pool workers —
/// cannot bleed spans across queries; within one trace, open/close is
/// mutex-guarded, so even a misused trace degrades to odd nesting rather
/// than a data race.
///
/// Exports: an indented text tree (ToText) and Chrome trace_event JSON
/// (ToChromeJson) loadable in chrome://tracing or https://ui.perfetto.dev.
class QueryTrace {
 public:
  struct Span {
    std::string name;
    /// Index into spans() of the enclosing span, -1 for roots.
    int parent = -1;
    int depth = 0;
    /// Wall-clock offsets from the trace's construction, in nanoseconds.
    int64_t start_ns = 0;
    int64_t end_ns = 0;
    /// CostMeter::TotalSeconds() at open/close when a meter was attached.
    double cost_begin_seconds = 0.0;
    double cost_end_seconds = 0.0;
    bool has_cost = false;
    bool closed = false;
  };

  /// `name` labels the whole trace (conventionally the FrameQL text).
  explicit QueryTrace(std::string name);

  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  const std::string& name() const { return name_; }
  std::vector<Span> spans() const BLAZEIT_EXCLUDES(mu_);

  /// Indented tree with per-span wall ms and simulated-cost deltas.
  std::string ToText() const;

  /// Chrome trace_event JSON: complete ("ph":"X") events in microseconds,
  /// one row (tid) per nesting depth. Self-contained object — write it to
  /// a .json file and load it in chrome://tracing.
  std::string ToChromeJson() const;

  /// Span names + nesting only, one "  "-indented name per line — the
  /// timing-free shape the determinism suite compares across pool sizes.
  std::string StructureSignature() const;

 private:
  friend class TraceSpan;

  /// Returns the new span's index.
  int Open(const char* name, const CostMeter* meter) BLAZEIT_EXCLUDES(mu_);
  void Close(int index, const CostMeter* meter) BLAZEIT_EXCLUDES(mu_);

  int64_t NowNs() const;

  mutable util::Mutex mu_;
  std::string name_;
  std::chrono::steady_clock::time_point t0_;
  std::vector<Span> spans_ BLAZEIT_GUARDED_BY(mu_);
  /// Indices of currently open spans, innermost last.
  std::vector<int> stack_ BLAZEIT_GUARDED_BY(mu_);
};

/// RAII span. A null trace makes every operation a no-op, so call sites
/// don't branch on whether tracing is enabled:
///
///   obs::TraceSpan span(trace, "train", &meter);   // trace may be null
///
/// When a meter is given, the span records its TotalSeconds() at open and
/// close; the difference is the simulated cost attributed to the span
/// (including its children).
class TraceSpan {
 public:
  TraceSpan(QueryTrace* trace, const char* name,
            const CostMeter* meter = nullptr)
      : trace_(trace), meter_(meter) {
    if (trace_ != nullptr) index_ = trace_->Open(name, meter_);
  }

  ~TraceSpan() { Close(); }

  /// Ends the span before the destructor would, for stages that finish
  /// mid-function; subsequent Close()/destruction is a no-op.
  void Close() {
    if (trace_ != nullptr) trace_->Close(index_, meter_);
    trace_ = nullptr;
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  QueryTrace* trace_;
  const CostMeter* meter_;
  int index_ = -1;
};

}  // namespace obs
}  // namespace blazeit

#endif  // BLAZEIT_OBS_TRACE_H_
