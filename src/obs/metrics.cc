#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace blazeit {
namespace obs {

namespace {

const char* KindName(MetricsSnapshot::Kind kind) {
  switch (kind) {
    case MetricsSnapshot::Kind::kCounter: return "counter";
    case MetricsSnapshot::Kind::kGauge: return "gauge";
    case MetricsSnapshot::Kind::kHistogram: return "histogram";
  }
  return "unknown";
}

const char* StabilityName(Stability stability) {
  return stability == Stability::kStable ? "stable" : "unstable";
}

/// Instrument names are caller-chosen identifiers, but escape anyway so a
/// stray quote can never produce malformed JSON.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void AppendIntArray(const std::vector<int64_t>& values, std::string* out) {
  out->push_back('[');
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out->push_back(',');
    *out += std::to_string(values[i]);
  }
  out->push_back(']');
}

}  // namespace

Histogram::Histogram(std::vector<int64_t> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<int64_t>[bounds_.size() + 1]) {
  BLAZEIT_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << ": histogram bucket bounds must be sorted";
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(int64_t v) {
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<int64_t> Histogram::bucket_counts() const {
  std::vector<int64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     Stability stability) {
  util::MutexLock lock(mu_);
  auto it = instruments_.find(name);
  if (it == instruments_.end()) {
    Instrument inst;
    inst.kind = MetricsSnapshot::Kind::kCounter;
    inst.stability = stability;
    inst.counter.reset(new Counter());
    it = instruments_.emplace(name, std::move(inst)).first;
  }
  BLAZEIT_CHECK(it->second.kind == MetricsSnapshot::Kind::kCounter)
      << ": instrument re-registered with a different kind";
  return it->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 Stability stability) {
  util::MutexLock lock(mu_);
  auto it = instruments_.find(name);
  if (it == instruments_.end()) {
    Instrument inst;
    inst.kind = MetricsSnapshot::Kind::kGauge;
    inst.stability = stability;
    inst.gauge.reset(new Gauge());
    it = instruments_.emplace(name, std::move(inst)).first;
  }
  BLAZEIT_CHECK(it->second.kind == MetricsSnapshot::Kind::kGauge)
      << ": instrument re-registered with a different kind";
  return it->second.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<int64_t> bounds,
                                         Stability stability) {
  util::MutexLock lock(mu_);
  auto it = instruments_.find(name);
  if (it == instruments_.end()) {
    Instrument inst;
    inst.kind = MetricsSnapshot::Kind::kHistogram;
    inst.stability = stability;
    inst.histogram.reset(new Histogram(std::move(bounds)));
    it = instruments_.emplace(name, std::move(inst)).first;
  }
  BLAZEIT_CHECK(it->second.kind == MetricsSnapshot::Kind::kHistogram)
      << ": instrument re-registered with a different kind";
  return it->second.histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  util::MutexLock lock(mu_);
  MetricsSnapshot snap;
  snap.entries.reserve(instruments_.size());
  for (const auto& [name, inst] : instruments_) {
    MetricsSnapshot::Entry entry;
    entry.name = name;
    entry.kind = inst.kind;
    entry.stability = inst.stability;
    switch (inst.kind) {
      case MetricsSnapshot::Kind::kCounter:
        entry.value = inst.counter->value();
        break;
      case MetricsSnapshot::Kind::kGauge:
        entry.value = inst.gauge->value();
        break;
      case MetricsSnapshot::Kind::kHistogram:
        entry.value = inst.histogram->count();
        entry.sum = inst.histogram->sum();
        entry.bounds = inst.histogram->bounds();
        entry.buckets = inst.histogram->bucket_counts();
        break;
    }
    snap.entries.push_back(std::move(entry));
  }
  return snap;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const Entry& entry : entries) {
    out += entry.name;
    out.push_back(' ');
    if (entry.kind == Kind::kHistogram) {
      out += "count=" + std::to_string(entry.value);
      out += " sum=" + std::to_string(entry.sum);
      out += " buckets=";
      std::string buckets;
      AppendIntArray(entry.buckets, &buckets);
      out += buckets;
    } else {
      out += std::to_string(entry.value);
    }
    out.push_back('\n');
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"metrics\":[";
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& entry = entries[i];
    if (i > 0) out.push_back(',');
    out += "{\"name\":\"" + JsonEscape(entry.name) + "\"";
    out += ",\"kind\":\"" + std::string(KindName(entry.kind)) + "\"";
    out += ",\"stability\":\"" +
           std::string(StabilityName(entry.stability)) + "\"";
    if (entry.kind == Kind::kHistogram) {
      out += ",\"count\":" + std::to_string(entry.value);
      out += ",\"sum\":" + std::to_string(entry.sum);
      out += ",\"bounds\":";
      AppendIntArray(entry.bounds, &out);
      out += ",\"buckets\":";
      AppendIntArray(entry.buckets, &out);
    } else {
      out += ",\"value\":" + std::to_string(entry.value);
    }
    out.push_back('}');
  }
  out += "]}";
  return out;
}

MetricsSnapshot MetricsSnapshot::DeltaFrom(const MetricsSnapshot& base) const {
  MetricsSnapshot delta;
  delta.entries.reserve(entries.size());
  for (const Entry& entry : entries) {
    Entry d = entry;
    if (entry.kind != Kind::kGauge) {
      if (const Entry* b = base.Find(entry.name)) {
        d.value -= b->value;
        d.sum -= b->sum;
        if (d.buckets.size() == b->buckets.size()) {
          for (size_t i = 0; i < d.buckets.size(); ++i) {
            d.buckets[i] -= b->buckets[i];
          }
        }
      }
    }
    delta.entries.push_back(std::move(d));
  }
  return delta;
}

MetricsSnapshot MetricsSnapshot::StableOnly() const {
  MetricsSnapshot out;
  for (const Entry& entry : entries) {
    if (entry.stability == Stability::kStable) out.entries.push_back(entry);
  }
  return out;
}

const MetricsSnapshot::Entry* MetricsSnapshot::Find(
    const std::string& name) const {
  for (const Entry& entry : entries) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

}  // namespace obs
}  // namespace blazeit
