#ifndef BLAZEIT_OBS_METRICS_H_
#define BLAZEIT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"

namespace blazeit {
namespace obs {

/// Whether an instrument's value is a deterministic function of the work
/// executed (kStable) or depends on scheduling — queue depths, which
/// thread claimed a shard, cache races between concurrent groups
/// (kUnstable). The determinism suite asserts bit-identical values across
/// pool sizes for kStable instruments only; kUnstable instruments are
/// still exported but excluded from that contract.
enum class Stability { kStable, kUnstable };

/// Monotonic counter. Add() is lock-free and safe from any thread.
class Counter {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::atomic<int64_t> value_{0};
};

/// Point-in-time value (queue depth, pool size). Set/Add from any thread.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<int64_t> value_{0};
};

/// Integer-valued histogram with fixed bucket upper bounds. Values are
/// integers (frame counts, bytes, shard counts) on purpose: integer sums
/// are independent of accumulation order, so histogram totals stay inside
/// the cross-thread-count determinism contract; a double sum would not.
class Histogram {
 public:
  /// Records `v` into the first bucket whose upper bound is >= v (the
  /// last bucket is unbounded).
  void Observe(int64_t v);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<int64_t>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<int64_t> bucket_counts() const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<int64_t> bounds);
  std::vector<int64_t> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// One exported instrument value, decoupled from the live registry.
struct MetricsSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Kind kind = Kind::kCounter;
    Stability stability = Stability::kStable;
    /// Counter/gauge value; histogram observation count.
    int64_t value = 0;
    /// Histogram only.
    int64_t sum = 0;
    std::vector<int64_t> bounds;
    std::vector<int64_t> buckets;
  };

  /// Sorted by name (the registry map order), so two snapshots of the
  /// same instruments compare entry-by-entry.
  std::vector<Entry> entries;

  /// `name value` per line; histograms as count/sum/buckets.
  std::string ToText() const;
  /// {"metrics":[{"name":...,"kind":...,"stability":...,...},...]}
  std::string ToJson() const;

  /// This snapshot minus `base`: counters and histograms subtract the
  /// baseline entry of the same name (absent baseline entries subtract
  /// zero); gauges keep their current value. Used to isolate one query
  /// run's activity out of the process-lifetime registry.
  MetricsSnapshot DeltaFrom(const MetricsSnapshot& base) const;

  /// Only the entries registered Stability::kStable — the set the
  /// determinism suite compares across pool sizes.
  MetricsSnapshot StableOnly() const;

  const Entry* Find(const std::string& name) const;
};

/// Thread-safe instrument registry. Get* registers on first use and
/// returns the same pointer ever after; instrument pointers are stable for
/// the registry's lifetime, so hot paths cache them in function-local
/// statics and never touch the registry lock again:
///
///   static obs::Counter* reads = obs::MetricsRegistry::Global().GetCounter(
///       "store.payload_reads", obs::Stability::kStable);
///   reads->Add();
///
/// Labels are formatted into the name by the caller, Prometheus-style:
/// "cache.hits{tier=persistent,kind=blob}".
class MetricsRegistry {
 public:
  /// The process-wide registry all built-in instrumentation uses.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, Stability stability)
      BLAZEIT_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name, Stability stability)
      BLAZEIT_EXCLUDES(mu_);
  /// `bounds` is consulted only on first registration.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<int64_t> bounds, Stability stability)
      BLAZEIT_EXCLUDES(mu_);

  MetricsSnapshot Snapshot() const BLAZEIT_EXCLUDES(mu_);

 private:
  struct Instrument {
    MetricsSnapshot::Kind kind;
    Stability stability;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable util::Mutex mu_;
  std::map<std::string, Instrument> instruments_ BLAZEIT_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace blazeit

#endif  // BLAZEIT_OBS_METRICS_H_
