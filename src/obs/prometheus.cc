#include "obs/prometheus.h"

#include <cctype>
#include <string>
#include <utility>
#include <vector>

namespace blazeit {
namespace obs {

namespace {

/// Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; everything else
/// (the registry uses dots) maps to '_'.
std::string SanitizeName(const std::string& raw) {
  std::string out = "blazeit_";
  for (char c : raw) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string EscapeLabelValue(const std::string& raw) {
  std::string out;
  for (char c : raw) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Splits the registry's "name{k=v,k2=v2}" convention into the base name
/// and a rendered Prometheus label block ("" when unlabeled).
void SplitName(const std::string& full, std::string* base,
               std::string* labels) {
  const size_t brace = full.find('{');
  if (brace == std::string::npos || full.back() != '}') {
    *base = SanitizeName(full);
    labels->clear();
    return;
  }
  *base = SanitizeName(full.substr(0, brace));
  std::string body = full.substr(brace + 1, full.size() - brace - 2);
  std::string out = "{";
  size_t start = 0;
  bool first = true;
  while (start <= body.size()) {
    size_t comma = body.find(',', start);
    if (comma == std::string::npos) comma = body.size();
    const std::string pair = body.substr(start, comma - start);
    const size_t eq = pair.find('=');
    if (!pair.empty()) {
      if (!first) out.push_back(',');
      first = false;
      if (eq == std::string::npos) {
        out += pair + "=\"\"";
      } else {
        out += pair.substr(0, eq) + "=\"" +
               EscapeLabelValue(pair.substr(eq + 1)) + "\"";
      }
    }
    start = comma + 1;
  }
  out.push_back('}');
  *labels = std::move(out);
}

const char* TypeName(MetricsSnapshot::Kind kind) {
  switch (kind) {
    case MetricsSnapshot::Kind::kCounter:
      return "counter";
    case MetricsSnapshot::Kind::kGauge:
      return "gauge";
    case MetricsSnapshot::Kind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string PrometheusSnapshot(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_family;
  for (const MetricsSnapshot::Entry& entry : snapshot.entries) {
    std::string base;
    std::string labels;
    SplitName(entry.name, &base, &labels);
    // Entries are sorted by name, so a family's labeled series are
    // contiguous and one TYPE line covers them all.
    if (base != last_family) {
      out += "# TYPE " + base + " " + TypeName(entry.kind) + "\n";
      last_family = base;
    }
    if (entry.kind == MetricsSnapshot::Kind::kHistogram) {
      // Inner label block for _bucket: append le= to any existing labels.
      const std::string open =
          labels.empty() ? "{"
                         : labels.substr(0, labels.size() - 1) + ",";
      int64_t cumulative = 0;
      for (size_t b = 0; b < entry.bounds.size(); ++b) {
        if (b < entry.buckets.size()) cumulative += entry.buckets[b];
        out += base + "_bucket" + open + "le=\"" +
               std::to_string(entry.bounds[b]) + "\"} " +
               std::to_string(cumulative) + "\n";
      }
      out += base + "_bucket" + open + "le=\"+Inf\"} " +
             std::to_string(entry.value) + "\n";
      out += base + "_sum" + labels + " " + std::to_string(entry.sum) + "\n";
      out += base + "_count" + labels + " " + std::to_string(entry.value) +
             "\n";
    } else {
      out += base + labels + " " + std::to_string(entry.value) + "\n";
    }
  }
  return out;
}

std::string PrometheusText() {
  return PrometheusSnapshot(MetricsRegistry::Global().Snapshot());
}

}  // namespace obs
}  // namespace blazeit
