#ifndef BLAZEIT_OBS_PROMETHEUS_H_
#define BLAZEIT_OBS_PROMETHEUS_H_

#include <string>

#include "obs/metrics.h"

namespace blazeit {
namespace obs {

/// Renders a metrics snapshot in the Prometheus text exposition format
/// (version 0.0.4) — the wire format a /metrics endpoint serves and
/// `storecli serve --prom` dumps. Mapping from the registry's naming
/// convention:
///   - metric names gain a "blazeit_" prefix and dots become underscores
///     ("serve.queue_depth" -> "blazeit_serve_queue_depth");
///   - the registry's inline label syntax "name{k=v,k2=v2}" becomes
///     Prometheus labels with quoted values: {k="v",k2="v2"};
///   - counters/gauges emit one sample; histograms emit cumulative
///     _bucket{le="..."} samples plus _sum and _count.
/// One # TYPE line is emitted per metric family (entries sharing a base
/// name, e.g. the per-tenant serve.submitted{client=...} series).
std::string PrometheusSnapshot(const MetricsSnapshot& snapshot);

/// PrometheusSnapshot of the process-wide registry, as an endpoint would
/// serve it.
std::string PrometheusText();

}  // namespace obs
}  // namespace blazeit

#endif  // BLAZEIT_OBS_PROMETHEUS_H_
