#ifndef BLAZEIT_CORE_SHARED_SWEEP_H_
#define BLAZEIT_CORE_SHARED_SWEEP_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/artifact_cache.h"
#include "util/mutex.h"

namespace blazeit {

/// The in-memory artifact tier that makes multi-query batching pay: one
/// SharedSweepCache is shared by every query of an ExecuteBatch call (or
/// across batches by a QuerySession), so the first query of a shared-plan
/// group trains the specialized NN and runs the per-frame sweeps, and the
/// rest of the group reads the identical floats back instead of
/// recomputing them. Keys are the same content fingerprints the persistent
/// ArtifactCache uses, so a hit is bit-identical to recomputation and
/// query outputs/simulated costs never depend on cache state.
///
/// Thread-safe (independent groups run concurrently on the exec pool);
/// first write wins, which is benign for the same reason the detection
/// store's rule is: values are deterministic per key, so a racing
/// duplicate insert carries identical bytes.
///
/// Unbounded by design: the cache is scoped to one batch (ExecuteBatch
/// creates and drops one) or one QuerySession, and holds full-day sweep
/// rows for every (stream, NN, class) it has served — a few MB each. A
/// long-lived serving session over a varied query mix should be recycled
/// periodically (or gain eviction when the ROADMAP's sharded-serving
/// layer lands); the persistent store underneath loses nothing.
class SharedSweepCache {
 public:
  SharedSweepCache() = default;
  SharedSweepCache(const SharedSweepCache&) = delete;
  SharedSweepCache& operator=(const SharedSweepCache&) = delete;

  /// Resident record counts (diagnostics; storecli-style reporting).
  int64_t frame_float_records() const BLAZEIT_EXCLUDES(mu_);
  int64_t frame_double_records() const BLAZEIT_EXCLUDES(mu_);
  int64_t blob_records() const BLAZEIT_EXCLUDES(mu_);

 private:
  friend class SweepCacheView;

  using Key = std::pair<uint64_t, int64_t>;
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // Splittable mix of (namespace, frame); collisions only cost a probe.
      uint64_t h = k.first ^ (static_cast<uint64_t>(k.second) *
                              0x9E3779B97F4A7C15ull);
      h ^= h >> 33;
      return static_cast<size_t>(h);
    }
  };

  bool GetFloats(uint64_t ns, int64_t frame, std::vector<float>* out) const
      BLAZEIT_EXCLUDES(mu_);
  void PutFloats(uint64_t ns, int64_t frame, const std::vector<float>& v)
      BLAZEIT_EXCLUDES(mu_);
  bool GetDoubles(uint64_t ns, int64_t frame, std::vector<double>* out) const
      BLAZEIT_EXCLUDES(mu_);
  void PutDoubles(uint64_t ns, int64_t frame, const std::vector<double>& v)
      BLAZEIT_EXCLUDES(mu_);
  bool GetBlob(uint64_t ns, std::vector<float>* out) const
      BLAZEIT_EXCLUDES(mu_);
  void PutBlob(uint64_t ns, const std::vector<float>& v) BLAZEIT_EXCLUDES(mu_);

  mutable util::Mutex mu_;
  std::unordered_map<Key, std::vector<float>, KeyHash> floats_
      BLAZEIT_GUARDED_BY(mu_);
  std::unordered_map<Key, std::vector<double>, KeyHash> doubles_
      BLAZEIT_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, std::vector<float>> blobs_
      BLAZEIT_GUARDED_BY(mu_);
};

/// One query's handle onto the batch's shared sweeps: an ArtifactCache
/// that reads the shared tier first, then the stream's persistent cache
/// (when the catalog has one), and promotes persistent hits into the
/// shared tier so the rest of the batch stays in memory. Writes go to
/// both tiers, so batching never loses persistence.
///
/// The view also counts how much of this query's NN work the *shared*
/// tier absorbed — the per-query numbers behind BatchQueryStats. A hit
/// this view takes directly on the persistent tier is not counted (serial
/// execution would have been served by it too); it is promoted, though,
/// so a *later* query's consumption of the same row counts as shared.
/// That keeps the stats independent of store temperature — a follower's
/// dedup reads the same whether the leader computed the sweep or replayed
/// it — matching the simulated cost model, which charges NN work
/// regardless of cache state. The stats therefore measure "charged NN
/// work served by the batch tier", not physical FLOPs avoided; on a warm
/// store the physical savings are smaller (wall-clock shows those).
///
/// Not thread-safe across queries: each executed query gets its own view
/// (the underlying SharedSweepCache carries the locking).
class SweepCacheView final : public ArtifactCache {
 public:
  /// `underlying` may be nullptr (catalog without a detection store).
  SweepCacheView(SharedSweepCache* shared, ArtifactCache* underlying)
      : shared_(shared), underlying_(underlying) {}

  bool GetFrameFloats(uint64_t ns, int64_t frame,
                      std::vector<float>* out) override;
  void PutFrameFloats(uint64_t ns, int64_t frame,
                      const std::vector<float>& values) override;
  bool GetFrameDoubles(uint64_t ns, int64_t frame,
                       std::vector<double>* out) override;
  void PutFrameDoubles(uint64_t ns, int64_t frame,
                       const std::vector<double>& values) override;
  bool GetBlob(uint64_t ns, std::vector<float>* out) override;
  void PutBlob(uint64_t ns, const std::vector<float>& values) override;

  /// Per-frame NN output rows this query read from the shared tier
  /// (specialized-NN inference another query in the batch already paid
  /// for).
  int64_t shared_nn_frames() const { return shared_float_hits_; }
  /// Per-frame filter scores served from the shared tier.
  int64_t shared_filter_frames() const { return shared_double_hits_; }
  /// Trained weight blobs served from the shared tier (0 or 1 per query:
  /// each executor trains at most one specialized NN per run).
  int64_t shared_models() const { return shared_blob_hits_; }

 private:
  SharedSweepCache* shared_;
  ArtifactCache* underlying_;
  int64_t shared_float_hits_ = 0;
  int64_t shared_double_hits_ = 0;
  int64_t shared_blob_hits_ = 0;
};

}  // namespace blazeit

#endif  // BLAZEIT_CORE_SHARED_SWEEP_H_
