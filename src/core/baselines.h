#ifndef BLAZEIT_CORE_BASELINES_H_
#define BLAZEIT_CORE_BASELINES_H_

#include <vector>

#include "core/catalog.h"
#include "core/selection.h"
#include "core/udf.h"
#include "frameql/analyzer.h"
#include "sim/cost_model.h"
#include "util/status.h"

namespace blazeit {

/// Result of a non-sampling baseline.
struct BaselineResult {
  double estimate = 0.0;
  CostMeter cost;
  int64_t detection_calls = 0;
};

/// Naive aggregation: full object detection on every test frame
/// (Section 10.2's "Naive" row). Exact by construction.
BaselineResult NaiveAggregate(StreamData* stream, int class_id);

/// NoScope-oracle aggregation: a free, perfect binary-presence oracle
/// skips empty frames; detection runs on every frame where the class is
/// present (Section 10.1.1 — NoScope cannot distinguish one object from
/// several, so occupied frames still need detection).
BaselineResult NoScopeOracleAggregate(StreamData* stream, int class_id);

/// Naive AQP aggregation: adaptive sampling with the detector as oracle
/// and no variance reduction.
struct AqpResult {
  double estimate = 0.0;
  CostMeter cost;
  int64_t samples_used = 0;
};
Result<AqpResult> NaiveAqpAggregate(StreamData* stream, int class_id,
                                    double error, double confidence,
                                    uint64_t seed);

/// Scrubbing baselines share this result shape.
struct ScrubBaselineResult {
  std::vector<int64_t> frames;
  CostMeter cost;
  int64_t detection_calls = 0;
  /// True when LIMIT frames were found; false when the video ran out of
  /// matches first (in which case scan_exhausted is true).
  bool limit_satisfied = false;
  /// True when the scan examined every frame of the video without
  /// reaching LIMIT.
  bool scan_exhausted = false;
};

/// Naive scrubbing: sequential scan with detection on every frame until
/// LIMIT matches (GAP apart) are found.
ScrubBaselineResult NaiveScrub(StreamData* stream,
                               const std::vector<ClassCountRequirement>& reqs,
                               int64_t limit, int64_t gap);

/// NoScope-oracle scrubbing: the free presence oracle skips frames missing
/// any required class entirely; detection verifies the rest in order.
ScrubBaselineResult NoScopeOracleScrub(
    StreamData* stream, const std::vector<ClassCountRequirement>& reqs,
    int64_t limit, int64_t gap);

/// Naive selection: detection on every test frame, predicate evaluated on
/// the detections (Section 10.4's "Naive").
Result<SelectionResult> NaiveSelection(StreamData* stream,
                                       const UdfRegistry* udfs,
                                       const AnalyzedQuery& query);

/// NoScope-oracle selection: detection only on frames where the class is
/// present per the free oracle; other filter classes unavailable
/// (Section 10.1.1).
Result<SelectionResult> NoScopeOracleSelection(StreamData* stream,
                                               const UdfRegistry* udfs,
                                               const AnalyzedQuery& query);

}  // namespace blazeit

#endif  // BLAZEIT_CORE_BASELINES_H_
