#include "core/baselines.h"

#include <algorithm>

#include "stats/sampler.h"
#include "util/random.h"

namespace blazeit {

namespace {

bool FrameSatisfies(StreamData* stream, int64_t frame,
                    const std::vector<ClassCountRequirement>& reqs) {
  for (const ClassCountRequirement& req : reqs) {
    if (stream->test_labels->Counts(req.class_id)[static_cast<size_t>(
            frame)] < req.min_count) {
      return false;
    }
  }
  return true;
}

bool OraclePresence(StreamData* stream, int64_t frame,
                    const std::vector<ClassCountRequirement>& reqs) {
  for (const ClassCountRequirement& req : reqs) {
    if (stream->test_labels->Counts(req.class_id)[static_cast<size_t>(
            frame)] < 1) {
      return false;
    }
  }
  return true;
}

}  // namespace

BaselineResult NaiveAggregate(StreamData* stream, int class_id) {
  BaselineResult out;
  const std::vector<int>& counts = stream->test_labels->Counts(class_id);
  double sum = 0.0;
  for (int c : counts) {
    out.cost.ChargeDetection();
    sum += c;
  }
  out.estimate = counts.empty() ? 0.0 : sum / static_cast<double>(counts.size());
  out.detection_calls = out.cost.detection_calls();
  return out;
}

BaselineResult NoScopeOracleAggregate(StreamData* stream, int class_id) {
  BaselineResult out;
  const std::vector<int>& counts = stream->test_labels->Counts(class_id);
  double sum = 0.0;
  for (int c : counts) {
    if (c > 0) {
      // The oracle is free; identifying *how many* objects needs detection.
      out.cost.ChargeDetection();
      sum += c;
    }
  }
  out.estimate = counts.empty() ? 0.0 : sum / static_cast<double>(counts.size());
  out.detection_calls = out.cost.detection_calls();
  return out;
}

Result<AqpResult> NaiveAqpAggregate(StreamData* stream, int class_id,
                                    double error, double confidence,
                                    uint64_t seed) {
  const std::vector<int>& counts = stream->test_labels->Counts(class_id);
  AqpResult out;
  CostMeter* meter = &out.cost;
  FrameOracle oracle = [&counts, meter](int64_t frame) {
    meter->ChargeDetection();
    return static_cast<double>(counts[static_cast<size_t>(frame)]);
  };
  SamplingConfig config;
  config.error = error;
  config.confidence = confidence;
  config.value_range =
      static_cast<double>(stream->train_labels->MaxCount(class_id)) + 1.0;
  config.seed = seed;
  auto estimate = AdaptiveSample(
      static_cast<int64_t>(counts.size()), oracle, config);
  BLAZEIT_RETURN_NOT_OK(estimate.status());
  out.estimate = estimate.value().estimate;
  out.samples_used = estimate.value().samples_used;
  return out;
}

namespace {

ScrubBaselineResult ScanScrub(StreamData* stream,
                              const std::vector<ClassCountRequirement>& reqs,
                              int64_t limit, int64_t gap,
                              bool use_presence_oracle) {
  ScrubBaselineResult out;
  int64_t last_accepted = -1;
  bool limit_reached = false;
  for (int64_t t = 0; t < stream->test_day->num_frames(); ++t) {
    if (static_cast<int64_t>(out.frames.size()) >= limit) {
      limit_reached = true;
      break;
    }
    if (last_accepted >= 0 && gap > 0 && t - last_accepted < gap) continue;
    if (use_presence_oracle && !OraclePresence(stream, t, reqs)) continue;
    out.cost.ChargeDetection();
    if (FrameSatisfies(stream, t, reqs)) {
      out.frames.push_back(t);
      last_accepted = t;
    }
  }
  out.limit_satisfied = static_cast<int64_t>(out.frames.size()) >= limit;
  out.scan_exhausted = !limit_reached;
  out.detection_calls = out.cost.detection_calls();
  return out;
}

}  // namespace

ScrubBaselineResult NaiveScrub(StreamData* stream,
                               const std::vector<ClassCountRequirement>& reqs,
                               int64_t limit, int64_t gap) {
  return ScanScrub(stream, reqs, limit, gap, /*use_presence_oracle=*/false);
}

ScrubBaselineResult NoScopeOracleScrub(
    StreamData* stream, const std::vector<ClassCountRequirement>& reqs,
    int64_t limit, int64_t gap) {
  return ScanScrub(stream, reqs, limit, gap, /*use_presence_oracle=*/true);
}

Result<SelectionResult> NaiveSelection(StreamData* stream,
                                       const UdfRegistry* udfs,
                                       const AnalyzedQuery& query) {
  SelectionOptions options;
  options.use_label_filter = false;
  options.use_content_filter = false;
  options.use_temporal_filter = false;
  options.use_spatial_filter = false;
  SelectionExecutor executor(stream, udfs, options);
  return executor.Run(query);
}

Result<SelectionResult> NoScopeOracleSelection(StreamData* stream,
                                               const UdfRegistry* udfs,
                                               const AnalyzedQuery& query) {
  // The oracle skips frames with no instance of the class, for free;
  // everything else behaves like the naive plan.
  SelectionOptions options;
  options.use_label_filter = false;
  options.use_content_filter = false;
  options.use_temporal_filter = false;
  options.use_spatial_filter = false;
  SelectionExecutor executor(stream, udfs, options);
  // Run the naive cascade, then rebate the detections the oracle skips.
  auto result = executor.Run(query);
  BLAZEIT_RETURN_NOT_OK(result.status());
  SelectionResult out = std::move(result).value();
  const std::vector<int>& counts =
      stream->test_labels->Counts(query.sel_class);
  int64_t occupied = 0;
  for (int c : counts) {
    if (c > 0) ++occupied;
  }
  CostMeter rebated;
  for (int64_t i = 0; i < occupied; ++i) rebated.ChargeDetection();
  out.cost = rebated;
  out.frames_detected = occupied;
  return out;
}

}  // namespace blazeit
