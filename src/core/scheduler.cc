#include "core/scheduler.h"

#include <algorithm>
#include <unordered_map>

#include "core/shared_sweep.h"

namespace blazeit {

QueryScheduler::QueryScheduler(BlazeItEngine* engine)
    : engine_(engine), session_sweeps_(std::make_unique<SharedSweepCache>()) {}

QueryScheduler::~QueryScheduler() = default;

ScheduleOutcome QueryScheduler::Run(const std::vector<ScheduledQuery>& queries,
                                    SharedSweepCache* sweeps,
                                    exec::ThreadPool::Budget budget,
                                    const ResultCallback& on_result) {
  if (sweeps == nullptr) sweeps = session_sweeps_.get();
  const size_t n = queries.size();
  ScheduleOutcome out;
  out.results.assign(
      n, Result<QueryOutput>(Status::Internal("query not executed")));
  out.stats.assign(n, BatchQueryStats{});

  // --- shared-plan pass: group by the caller's group tag ---
  // Groups keep first-appearance order and queries keep submission order
  // within a group, so the leader of each group — the query that pays for
  // the group's training run and sweeps — is always the earliest one.
  std::vector<std::vector<size_t>> groups;
  std::unordered_map<uint64_t, size_t> key_to_group;
  for (size_t i = 0; i < n; ++i) {
    auto [it, inserted] = key_to_group.emplace(queries[i].group_key,
                                               groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(i);
  }
  out.groups = static_cast<int64_t>(groups.size());

  // --- run the groups concurrently, each group serially ---
  // Per-query results/stats go to disjoint slots; per-query outputs are
  // independent of scheduling because every cache hit is bit-identical to
  // recomputation (the ArtifactCache contract), so this parallelism — like
  // the exec pool's — cannot change output bits.
  //
  // Parallelism shape: with a single group RunShards executes inline on
  // the caller (no nested-section marking), so the group's NN
  // training/inference keeps full intra-query sharding. With multiple
  // groups the pool parallelizes *across* groups and each query's inner
  // parallel sections run inline on that group's worker — batch-level
  // concurrency replaces intra-query concurrency, keeping total CPU use
  // bounded by the one process-wide pool.
  exec::ThreadPool::Instance().RunShards(
      static_cast<int64_t>(groups.size()),
      [&](int64_t g, int /*slot*/) {
        for (size_t idx : groups[static_cast<size_t>(g)]) {
          const ScheduledQuery& q = queries[idx];
          SweepCacheView view(sweeps, q.prepared.stream->artifact_cache);
          Result<QueryOutput> result = engine_->ExecutePrepared(
              q.prepared.stream, q.prepared.query, &view, q.frameql, q.trace,
              q.prepared.correlation_id);
          // Stats are filled only for successful queries (the documented
          // all-zero contract for failures).
          if (result.ok()) {
            BatchQueryStats& qs = out.stats[idx];
            qs.group = g;
            qs.shared_nn_frames = view.shared_nn_frames();
            qs.shared_filter_frames = view.shared_filter_frames();
            qs.shared_models = view.shared_models();
            if (result.value().report != nullptr) {
              obs::ExecutionReport& report = *result.value().report;
              report.batch_group = g;
              report.cache.shared_nn_frames = qs.shared_nn_frames;
              report.cache.shared_filter_frames = qs.shared_filter_frames;
              report.cache.shared_models = qs.shared_models;
            }
            const CostMeter& cost = result.value().cost;
            qs.standalone_seconds = cost.TotalSeconds();
            double saved = static_cast<double>(qs.shared_nn_frames) *
                               cost.profile().specialized_nn_sec_per_frame +
                           static_cast<double>(qs.shared_filter_frames) *
                               cost.profile().filter_sec_per_frame;
            if (qs.shared_models > 0) saved += cost.training_seconds();
            qs.batch_seconds = std::max(0.0, qs.standalone_seconds - saved);
          }
          out.results[idx] = std::move(result);
          if (on_result) on_result(idx, out.results[idx], out.stats[idx]);
        }
      },
      budget);
  return out;
}

}  // namespace blazeit
