#include "core/engine.h"

#include <algorithm>
#include <numeric>

#include "filters/calibration.h"
#include "filters/label_filter.h"
#include "frameql/parser.h"
#include "track/iou_tracker.h"
#include "util/logging.h"
#include "util/random.h"

namespace blazeit {

BlazeItEngine::BlazeItEngine(VideoCatalog* catalog, EngineOptions options)
    : catalog_(catalog), options_(options) {}

Result<QueryOutput> BlazeItEngine::Execute(const std::string& frameql) {
  BLAZEIT_ASSIGN_OR_RETURN(FrameQLQuery parsed, ParseFrameQL(frameql));
  BLAZEIT_ASSIGN_OR_RETURN(StreamData * stream,
                           catalog_->GetStream(parsed.table));
  BLAZEIT_ASSIGN_OR_RETURN(AnalyzedQuery query,
                           AnalyzeQuery(parsed, stream->config));
  PlanChoice plan = ChoosePlan(query, stream);
  BLAZEIT_LOG(kDebug) << "plan: " << PlanKindName(plan.kind) << " — "
                      << plan.rationale;

  QueryOutput out;
  out.kind = query.kind;
  out.plan = plan.kind;
  out.plan_description = plan.rationale;

  switch (query.kind) {
    case QueryKind::kAggregate: {
      AggregationExecutor executor(stream, options_.aggregate);
      BLAZEIT_ASSIGN_OR_RETURN(
          AggregateResult agg,
          executor.Run(query.agg_class, query.error, query.confidence));
      out.scalar = agg.estimate;
      if (query.scale_to_total) {
        out.scalar *= static_cast<double>(stream->test_day->num_frames());
      }
      out.cost = agg.cost;
      return out;
    }
    case QueryKind::kCountDistinct:
      return ExecuteCountDistinct(stream, query);
    case QueryKind::kScrubbing: {
      ScrubbingExecutor executor(stream, options_.scrub);
      BLAZEIT_ASSIGN_OR_RETURN(
          ScrubResult scrub,
          executor.Run(query.requirements, query.limit, query.gap));
      out.frames = scrub.frames;
      out.cost = scrub.cost;
      return out;
    }
    case QueryKind::kSelection: {
      SelectionExecutor executor(stream, &udfs_, options_.selection);
      BLAZEIT_ASSIGN_OR_RETURN(SelectionResult sel, executor.Run(query));
      out.rows = std::move(sel.rows);
      for (const SelectionEvent& event : sel.events) {
        out.frames.push_back(event.first_frame);
      }
      out.cost = sel.cost;
      out.plan_description += " | " + sel.plan;
      return out;
    }
    case QueryKind::kBinarySelect:
      return ExecuteBinarySelect(stream, query);
    case QueryKind::kExhaustive:
      return ExecuteFullScan(stream, query);
  }
  return Status::Internal("unhandled query kind");
}

Result<QueryOutput> BlazeItEngine::ExecuteCountDistinct(
    StreamData* stream, const AnalyzedQuery& query) {
  // Entity resolution requires consecutive-frame detections, so this runs
  // the detector over the full video (the paper does not optimize distinct
  // counts; they are supported for completeness of FrameQL).
  QueryOutput out;
  out.kind = query.kind;
  out.plan = PlanKind::kTrackerCountDistinct;
  IouTracker tracker;
  int64_t distinct = 0;
  const SyntheticVideo& test = *stream->test_day;
  for (int64_t t = 0; t < test.num_frames(); ++t) {
    out.cost.ChargeDetection();
    std::vector<Detection> dets = FilterClass(
        stream->test_labels->DetectionsAt(t), query.agg_class,
        /*score_threshold=*/0.0);  // already thresholded by the labeled set
    int64_t before = tracker.next_track_id();
    tracker.Update(dets);
    distinct += tracker.next_track_id() - before;
  }
  out.scalar = static_cast<double>(distinct);
  return out;
}

Result<QueryOutput> BlazeItEngine::ExecuteBinarySelect(
    StreamData* stream, const AnalyzedQuery& query) {
  // NoScope replication: a specialized NN filters frames; the detector
  // verifies everything the NN lets through, so false positives are
  // eliminated and the false-negative rate is controlled by calibrating
  // the NN threshold on the held-out day.
  QueryOutput out;
  out.kind = query.kind;
  out.plan = PlanKind::kBinaryDetection;

  const std::vector<int>& train_counts =
      stream->train_labels->Counts(query.sel_class);
  int64_t positives = 0;
  for (int c : train_counts) {
    if (c > 0) ++positives;
  }
  const SyntheticVideo& test = *stream->test_day;
  const std::vector<int>& test_counts =
      stream->test_labels->Counts(query.sel_class);
  if (positives == 0) {
    // Cannot specialize: verify every frame.
    for (int64_t t = 0; t < test.num_frames(); ++t) {
      out.cost.ChargeDetection();
      if (test_counts[static_cast<size_t>(t)] > 0) out.frames.push_back(t);
    }
    return out;
  }

  SpecializedNNConfig nn_config = options_.selection.nn;
  nn_config.train.seed = HashCombine(options_.selection.seed, 0xb1de);
  nn_config.cache = stream->artifact_cache;
  auto trained =
      SpecializedNN::Train(*stream->train_day, {train_counts}, nn_config);
  BLAZEIT_RETURN_NOT_OK(trained.status());
  out.cost.ChargeTraining(trained.value().trained_frames());
  LabelFilter filter(std::move(trained).value(), {1});

  std::vector<char> positive_mask;
  positive_mask.reserve(
      static_cast<size_t>(stream->held_out_day->num_frames()));
  const std::vector<int>& held_counts =
      stream->held_out_labels->Counts(query.sel_class);
  for (int c : held_counts) positive_mask.push_back(c > 0 ? 1 : 0);
  auto calib = CalibrateNoFalseNegatives(&filter, *stream->held_out_day,
                                         positive_mask);
  BLAZEIT_RETURN_NOT_OK(calib.status());
  out.cost.ChargeSpecializedNN(stream->held_out_day->num_frames());

  std::vector<int64_t> test_frames(static_cast<size_t>(test.num_frames()));
  std::iota(test_frames.begin(), test_frames.end(), 0);
  std::vector<double> scores = filter.ScoreBatch(test, test_frames);
  out.cost.ChargeSpecializedNN(test.num_frames());
  for (int64_t t = 0; t < test.num_frames(); ++t) {
    if (scores[static_cast<size_t>(t)] < filter.threshold()) continue;
    out.cost.ChargeDetection();
    if (test_counts[static_cast<size_t>(t)] > 0) out.frames.push_back(t);
  }
  return out;
}

Result<QueryOutput> BlazeItEngine::ExecuteFullScan(
    StreamData* stream, const AnalyzedQuery& query) {
  QueryOutput out;
  out.kind = query.kind;
  out.plan = PlanKind::kFullScan;
  const SyntheticVideo& test = *stream->test_day;
  for (int64_t t = 0; t < test.num_frames(); ++t) {
    out.cost.ChargeDetection();
    std::vector<Detection> dets = stream->test_labels->DetectionsAt(t);
    if (!dets.empty()) out.frames.push_back(t);
  }
  return out;
}

}  // namespace blazeit
