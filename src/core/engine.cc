#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <optional>
#include <unordered_map>

#include "core/scheduler.h"
#include "core/shared_sweep.h"
#include "exec/thread_pool.h"
#include "filters/calibration.h"
#include "filters/label_filter.h"
#include "frameql/parser.h"
#include "net/http.h"
#include "obs/counting_cache.h"
#include "obs/debug_server.h"
#include "obs/flight_recorder.h"
#include "storage/segment_sketch.h"
#include "track/iou_tracker.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace blazeit {

namespace {

/// The sketch probe mirroring exactly the per-frame predicate a full scan
/// evaluates (requirements, class/ROI/area detection filters, or bare
/// any-detection); shared with count-distinct via its one-requirement
/// form.
SketchProbe ProbeForQuery(const StreamData& stream,
                          const AnalyzedQuery& query) {
  SketchProbe probe;
  probe.score_threshold = stream.config.detection_threshold;
  probe.requirements = query.requirements;
  probe.sel_class = query.sel_class;
  probe.has_roi = query.has_roi;
  probe.roi = query.roi;
  probe.min_area_px = query.min_area_px;
  probe.frame_width = stream.config.width;
  probe.frame_height = stream.config.height;
  probe.require_any = query.requirements.empty() && query.sel_class < 0 &&
                      !query.has_roi && query.min_area_px <= 0;
  return probe;
}

/// Candidate subranges of `window` under the stream's sketch index, or
/// the whole window when no current index exists (or indexing is off).
/// `sketch` (nullable) receives the consultation outcome for the query's
/// ExecutionReport.
std::vector<SketchIndex::FrameRange> CandidateRangesForScan(
    const StreamData& stream, const AnalyzedQuery& query, FrameWindow window,
    bool use_store_index, obs::SketchStats* sketch) {
  const int64_t window_frames =
      window.end > window.begin ? window.end - window.begin : 0;
  if (sketch != nullptr) {
    sketch->consulted = use_store_index && stream.detection_store != nullptr;
    sketch->window_frames = window_frames;
    sketch->candidate_frames = window_frames;
  }
  if (use_store_index && stream.detection_store != nullptr) {
    SketchIndex index = SketchIndex::Load(stream.detection_store,
                                          stream.test_detections_ns);
    if (index.valid()) {
      std::vector<SketchIndex::FrameRange> ranges = index.CandidateRanges(
          window.begin, window.end, ProbeForQuery(stream, query));
      if (sketch != nullptr) {
        sketch->pruned = true;
        sketch->candidate_frames = 0;
        for (const auto& range : ranges) {
          sketch->candidate_frames += range.end - range.begin;
        }
      }
      return ranges;
    }
  }
  if (window_frames == 0) return {};
  return {{window.begin, window.end}};
}

}  // namespace

BlazeItEngine::BlazeItEngine(VideoCatalog* catalog, EngineOptions options)
    : catalog_(catalog), options_(options) {
  if (!options_.export_statusz) return;
  obs::StatusRegistry& registry = obs::StatusRegistry::Global();
  statusz_tokens_.push_back(registry.AddSection("engine", [this] {
    std::string streams = "[";
    bool first = true;
    for (const std::string& name : catalog_->StreamNames()) {
      if (!first) streams += ",";
      first = false;
      streams += "\"" + net::JsonEscape(name) + "\"";
    }
    streams += "]";
    return StrFormat(
        "{\"streams\":%s,\"use_store_index\":%s,\"collect_reports\":%s}",
        streams.c_str(), options_.use_store_index ? "true" : "false",
        options_.collect_reports ? "true" : "false");
  }));
  statusz_tokens_.push_back(registry.AddSection("storage", [this] {
    DetectionStore* store = catalog_->detection_store();
    if (store == nullptr) return std::string("{\"enabled\":false}");
    std::string out = StrFormat(
        "{\"enabled\":true,\"dir\":\"%s\",\"total_records\":%lld,"
        "\"pending_records\":%lld,\"namespaces\":[",
        net::JsonEscape(store->dir()).c_str(),
        static_cast<long long>(store->TotalRecords()),
        static_cast<long long>(store->pending_records()));
    bool first = true;
    for (const auto& ns : store->PerNamespaceStats()) {
      if (!first) out += ",";
      first = false;
      out += StrFormat(
          "{\"ns\":\"%016llx\",\"segments\":%lld,\"records\":%lld,"
          "\"pending\":%lld,\"shadowed\":%lld}",
          static_cast<unsigned long long>(ns.ns),
          static_cast<long long>(ns.segments),
          static_cast<long long>(ns.records),
          static_cast<long long>(ns.pending),
          static_cast<long long>(ns.shadowed));
    }
    out += "]}";
    return out;
  }));
}

BlazeItEngine::~BlazeItEngine() {
  for (int64_t token : statusz_tokens_) {
    obs::StatusRegistry::Global().Remove(token);
  }
}

Result<PreparedQuery> BlazeItEngine::Prepare(const std::string& frameql,
                                             obs::QueryTrace* trace) {
  PreparedQuery prepared;
  FrameQLQuery parsed;
  {
    obs::TraceSpan span(trace, "parse");
    BLAZEIT_ASSIGN_OR_RETURN(parsed, ParseFrameQL(frameql));
  }
  {
    obs::TraceSpan span(trace, "analyze");
    BLAZEIT_ASSIGN_OR_RETURN(prepared.stream,
                             catalog_->GetStream(parsed.table));
    BLAZEIT_ASSIGN_OR_RETURN(
        prepared.query, AnalyzeQuery(parsed, prepared.stream->config));
  }
  prepared.correlation_id = obs::FlightRecorder::NextCorrelationId();
  return prepared;
}

Result<QueryOutput> BlazeItEngine::Execute(const std::string& frameql) {
  const auto started = std::chrono::steady_clock::now();
  std::shared_ptr<obs::QueryTrace> trace;
  if (options_.collect_reports) {
    trace = std::make_shared<obs::QueryTrace>(frameql);
  }
  Result<PreparedQuery> prepared = Prepare(frameql, trace.get());
  Result<QueryOutput> result =
      prepared.ok()
          ? ExecutePrepared(prepared.value().stream, prepared.value().query,
                            /*sweep_cache=*/nullptr, frameql, trace,
                            prepared.value().correlation_id)
          : Result<QueryOutput>(prepared.status());

  // Flight-record the completed query (observe-only; outputs unchanged).
  obs::FlightRecord record;
  record.correlation_id = prepared.ok()
                              ? prepared.value().correlation_id
                              : obs::FlightRecorder::NextCorrelationId();
  record.query = frameql;
  record.accuracy_tier = "full";
  record.ok = result.ok();
  if (result.ok()) {
    record.plan = PlanKindName(result.value().plan);
    record.cost_seconds = result.value().cost.TotalSeconds();
    record.trace = result.value().report != nullptr
                       ? result.value().report->trace
                       : trace;
  } else {
    record.error = result.status().ToString();
    record.trace = trace;
  }
  record.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - started)
                       .count();
  obs::FlightRecorder::Global().Record(std::move(record));
  return result;
}

Result<QueryOutput> BlazeItEngine::ExecutePrepared(
    StreamData* stream, const AnalyzedQuery& query,
    ArtifactCache* sweep_cache, const std::string& frameql,
    std::shared_ptr<obs::QueryTrace> trace, int64_t correlation_id) {
  std::shared_ptr<obs::ExecutionReport> report;
  std::optional<obs::CountingCacheView> counting;
  if (options_.collect_reports) {
    report = std::make_shared<obs::ExecutionReport>();
    report->query = frameql;
    if (trace == nullptr) trace = std::make_shared<obs::QueryTrace>(frameql);
    // Count the query's artifact-cache traffic by wrapping whatever cache
    // the executors would have used (possibly none). Output-neutral: a
    // cache hit is bit-identical to recomputation and the wrapper only
    // observes, so results and simulated costs are unchanged.
    counting.emplace(sweep_cache != nullptr ? sweep_cache
                                            : stream->artifact_cache);
    sweep_cache = &*counting;
  }

  PlanChoice plan;
  {
    obs::TraceSpan span(trace.get(), "optimize");
    plan = ChoosePlan(query, stream);
  }
  BLAZEIT_LOG(kDebug).Field("cid", correlation_id)
      << "plan: " << PlanKindName(plan.kind) << " — " << plan.rationale;

  QueryOutput out;
  out.kind = query.kind;
  out.plan = plan.kind;
  out.plan_description = plan.rationale;

  const std::string execute_label =
      std::string("execute:") + PlanKindName(plan.kind);
  obs::TraceSpan execute_span(trace.get(), execute_label.c_str());

  Result<QueryOutput> executed = [&]() -> Result<QueryOutput> {
    switch (query.kind) {
      case QueryKind::kAggregate: {
        BLAZEIT_ASSIGN_OR_RETURN(
            FrameWindow window,
            ResolveFrameWindow(query, stream->config.fps,
                               stream->test_day->num_frames()));
        AggregationExecutor executor(stream, options_.aggregate, sweep_cache,
                                     trace.get());
        BLAZEIT_ASSIGN_OR_RETURN(
            AggregateResult agg,
            executor.Run(query.agg_class, query.error, query.confidence,
                         window));
        out.scalar = agg.estimate;
        if (query.scale_to_total) {
          // COUNT(*) scales the frame-averaged estimate by the number of
          // frames the query actually ranges over.
          out.scalar *= static_cast<double>(window.end - window.begin);
        }
        out.cost = agg.cost;
        return out;
      }
      case QueryKind::kCountDistinct:
        return ExecuteCountDistinct(stream, query, trace.get(),
                                    report.get());
      case QueryKind::kScrubbing: {
        BLAZEIT_ASSIGN_OR_RETURN(
            FrameWindow window,
            ResolveFrameWindow(query, stream->config.fps,
                               stream->test_day->num_frames()));
        ScrubOptions scrub_options = options_.scrub;
        scrub_options.use_store_index |= options_.use_store_index;
        ScrubbingExecutor executor(stream, scrub_options, sweep_cache,
                                   trace.get());
        BLAZEIT_ASSIGN_OR_RETURN(
            ScrubResult scrub,
            executor.Run(query.requirements, query.limit, query.gap,
                         window));
        out.frames = scrub.frames;
        out.cost = scrub.cost;
        if (report != nullptr) {
          report->sketch.consulted = scrub.sketch_consulted;
          report->sketch.pruned = scrub.sketch_pruned;
          report->sketch.window_frames = scrub.sketch_window_frames;
          report->sketch.candidate_frames = scrub.sketch_candidate_frames;
        }
        return out;
      }
      case QueryKind::kSelection: {
        SelectionExecutor executor(stream, &udfs_, options_.selection,
                                   sweep_cache, trace.get());
        BLAZEIT_ASSIGN_OR_RETURN(SelectionResult sel, executor.Run(query));
        out.rows = std::move(sel.rows);
        for (const SelectionEvent& event : sel.events) {
          out.frames.push_back(event.first_frame);
        }
        out.cost = sel.cost;
        out.plan_description += " | " + sel.plan;
        return out;
      }
      case QueryKind::kBinarySelect:
        return ExecuteBinarySelect(stream, query, sweep_cache, trace.get());
      case QueryKind::kExhaustive:
        return ExecuteFullScan(stream, query, trace.get(), report.get());
    }
    return Status::Internal("unhandled query kind");
  }();
  if (!executed.ok()) return executed;

  QueryOutput result = std::move(executed).value();
  if (report != nullptr) {
    report->plan = PlanKindName(result.plan);
    report->plan_description = result.plan_description;
    report->FillCost(result.cost);
    report->cache = counting->stats();
    report->trace = trace;
    result.report = std::move(report);
  }
  return result;
}

Result<QueryOutput> BlazeItEngine::ExecuteCountDistinct(
    StreamData* stream, const AnalyzedQuery& query, obs::QueryTrace* trace,
    obs::ExecutionReport* report) {
  // Entity resolution requires consecutive-frame detections, so this runs
  // the detector over the query's full time range (the paper does not
  // optimize distinct counts; they are supported for completeness of
  // FrameQL).
  QueryOutput out;
  out.kind = query.kind;
  out.plan = PlanKind::kTrackerCountDistinct;
  BLAZEIT_ASSIGN_OR_RETURN(
      FrameWindow window,
      ResolveFrameWindow(query, stream->config.fps,
                         stream->test_day->num_frames()));
  // Sketch consultation: a segment with no detections of the counted
  // class contributes only empty tracker updates — the first one closes
  // every open track without minting an id, the rest are no-ops. Skipping
  // the whole gap and issuing one empty Update is therefore bit-identical
  // to walking it, while the skipped frames charge no detector calls.
  std::vector<SketchIndex::FrameRange> ranges;
  bool pruned = false;
  if (options_.use_store_index && stream->detection_store != nullptr) {
    SketchIndex index = SketchIndex::Load(stream->detection_store,
                                          stream->test_detections_ns);
    if (index.valid()) {
      SketchProbe probe;
      probe.score_threshold = stream->config.detection_threshold;
      probe.requirements = {{query.agg_class, 1}};
      ranges = index.CandidateRanges(window.begin, window.end, probe);
      pruned = true;
    }
  }
  if (!pruned && window.end > window.begin) {
    ranges.push_back({window.begin, window.end});
  }
  if (report != nullptr) {
    report->sketch.consulted =
        options_.use_store_index && stream->detection_store != nullptr;
    report->sketch.pruned = pruned;
    report->sketch.window_frames =
        window.end > window.begin ? window.end - window.begin : 0;
    report->sketch.candidate_frames = 0;
    for (const auto& range : ranges) {
      report->sketch.candidate_frames += range.end - range.begin;
    }
  }
  obs::TraceSpan span(trace, "track", &out.cost);
  IouTracker tracker;
  int64_t distinct = 0;
  int64_t walked_to = window.begin;
  for (const auto& range : ranges) {
    if (range.begin > walked_to) tracker.Update({});  // skipped gap
    for (int64_t t = range.begin; t < range.end; ++t) {
      out.cost.ChargeDetection();
      std::vector<Detection> dets = FilterClass(
          stream->test_labels->DetectionsAt(t), query.agg_class,
          /*score_threshold=*/0.0);  // already thresholded by the labeled set
      int64_t before = tracker.next_track_id();
      tracker.Update(dets);
      distinct += tracker.next_track_id() - before;
    }
    walked_to = range.end;
  }
  out.scalar = static_cast<double>(distinct);
  return out;
}

Result<QueryOutput> BlazeItEngine::ExecuteBinarySelect(
    StreamData* stream, const AnalyzedQuery& query,
    ArtifactCache* sweep_cache, obs::QueryTrace* trace) {
  // NoScope replication: a specialized NN filters frames; the detector
  // verifies everything the NN lets through, so false positives are
  // eliminated and the false-negative rate is controlled by calibrating
  // the NN threshold on the held-out day.
  QueryOutput out;
  out.kind = query.kind;
  out.plan = PlanKind::kBinaryDetection;
  const SyntheticVideo& test = *stream->test_day;
  BLAZEIT_ASSIGN_OR_RETURN(
      FrameWindow window,
      ResolveFrameWindow(query, stream->config.fps, test.num_frames()));
  // Range entirely past the recorded day: zero frames match, and charging
  // NN training to discover that would be inconsistent with the free
  // empty results of the other executors.
  if (window.end <= window.begin) return out;

  const std::vector<int>& train_counts =
      stream->train_labels->Counts(query.sel_class);
  int64_t positives = 0;
  for (int c : train_counts) {
    if (c > 0) ++positives;
  }
  const std::vector<int>& test_counts =
      stream->test_labels->Counts(query.sel_class);
  if (positives == 0) {
    // Cannot specialize: verify every frame in range.
    obs::TraceSpan span(trace, "verify", &out.cost);
    for (int64_t t = window.begin; t < window.end; ++t) {
      out.cost.ChargeDetection();
      if (test_counts[static_cast<size_t>(t)] > 0) out.frames.push_back(t);
    }
    return out;
  }

  SpecializedNNConfig nn_config = options_.selection.nn;
  nn_config.train.seed = HashCombine(options_.selection.seed, 0xb1de);
  nn_config.cache =
      sweep_cache != nullptr ? sweep_cache : stream->artifact_cache;
  Result<SpecializedNN> trained = [&] {
    obs::TraceSpan span(trace, "train", &out.cost);
    return SpecializedNN::Train(*stream->train_day, {train_counts},
                                nn_config);
  }();
  BLAZEIT_RETURN_NOT_OK(trained.status());
  out.cost.ChargeTraining(trained.value().trained_frames());
  LabelFilter filter(std::move(trained).value(), {1});

  {
    obs::TraceSpan span(trace, "calibrate", &out.cost);
    std::vector<char> positive_mask;
    positive_mask.reserve(
        static_cast<size_t>(stream->held_out_day->num_frames()));
    const std::vector<int>& held_counts =
        stream->held_out_labels->Counts(query.sel_class);
    for (int c : held_counts) positive_mask.push_back(c > 0 ? 1 : 0);
    auto calib = CalibrateNoFalseNegatives(&filter, *stream->held_out_day,
                                           positive_mask);
    BLAZEIT_RETURN_NOT_OK(calib.status());
    out.cost.ChargeSpecializedNN(stream->held_out_day->num_frames());
  }

  const int64_t n_window = window.end - window.begin;
  std::vector<int64_t> test_frames(static_cast<size_t>(n_window));
  std::iota(test_frames.begin(), test_frames.end(), window.begin);
  std::vector<double> scores;
  {
    obs::TraceSpan span(trace, "sweep", &out.cost);
    scores = filter.ScoreBatch(test, test_frames);
    out.cost.ChargeSpecializedNN(n_window);
  }
  obs::TraceSpan span(trace, "verify", &out.cost);
  for (int64_t i = 0; i < n_window; ++i) {
    const int64_t t = window.begin + i;
    if (scores[static_cast<size_t>(i)] < filter.threshold()) continue;
    out.cost.ChargeDetection();
    if (test_counts[static_cast<size_t>(t)] > 0) out.frames.push_back(t);
  }
  return out;
}

Result<QueryOutput> BlazeItEngine::ExecuteFullScan(
    StreamData* stream, const AnalyzedQuery& query, obs::QueryTrace* trace,
    obs::ExecutionReport* report) {
  QueryOutput out;
  out.kind = query.kind;
  out.plan = PlanKind::kFullScan;
  // The scan is exhaustive, not unconditional: every analyzed predicate
  // still restricts the result. Content UDFs are the one thing this plan
  // does not evaluate — refuse them loudly rather than silently dropping
  // the conjunct (the selection and scrubbing plans cover those queries).
  for (const Predicate& pred : query.udf_predicates) {
    if (pred.kind == Predicate::Kind::kUdf ||
        pred.kind == Predicate::Kind::kUdfString) {
      return Status::Unimplemented(
          "exhaustive scans do not evaluate content UDF predicates; use "
          "SELECT * with a class predicate (selection) or add a LIMIT "
          "(scrubbing)");
    }
  }
  BLAZEIT_ASSIGN_OR_RETURN(
      FrameWindow window,
      ResolveFrameWindow(query, stream->config.fps,
                         stream->test_day->num_frames()));
  const bool filter_detections =
      query.sel_class >= 0 || query.has_roi || query.min_area_px > 0;
  // Sketch-candidate subranges (the whole window when unindexed): a
  // pruned segment provably contains no matching frame, so skipping it
  // removes only detector charges, never results.
  const std::vector<SketchIndex::FrameRange> ranges = CandidateRangesForScan(
      *stream, query, window, options_.use_store_index,
      report != nullptr ? &report->sketch : nullptr);
  obs::TraceSpan span(trace, "scan", &out.cost);
  for (const auto& range : ranges) {
    for (int64_t t = range.begin; t < range.end; ++t) {
      out.cost.ChargeDetection();
      // HAVING SUM(class=...) >= N requirements (reachable here when the
      // query has no LIMIT to make it a scrubbing plan).
      if (!query.requirements.empty() &&
          !SatisfiesRequirements(*stream, t, query.requirements)) {
        continue;
      }
      bool any;
      if (filter_detections) {
        any = false;
        for (const Detection& det : stream->test_labels->DetectionsAt(t)) {
          if (query.sel_class >= 0 && det.class_id != query.sel_class) {
            continue;
          }
          if (query.has_roi &&
              !query.roi.Contains(det.rect.CenterX(), det.rect.CenterY())) {
            continue;
          }
          if (query.min_area_px > 0 &&
              PixelArea(det.rect, stream->config.width,
                        stream->config.height) < query.min_area_px) {
            continue;
          }
          any = true;
          break;
        }
      } else if (!query.requirements.empty()) {
        any = true;  // the requirements check above is the whole predicate
      } else {
        any = !stream->test_labels->DetectionsAt(t).empty();
      }
      if (any) out.frames.push_back(t);
    }
  }
  return out;
}

Result<BatchOutput> BlazeItEngine::ExecuteBatch(
    const std::vector<std::string>& queries) {
  SharedSweepCache local_sweeps;
  return ExecuteBatch(queries, &local_sweeps);
}

Result<BatchOutput> BlazeItEngine::ExecuteBatch(
    const std::vector<std::string>& queries, SharedSweepCache* sweeps) {
  if (sweeps == nullptr) {
    return Status::InvalidArgument("ExecuteBatch needs a sweep cache");
  }
  const size_t n = queries.size();
  BatchOutput out;
  out.results.assign(
      n, Result<QueryOutput>(Status::Internal("query not executed")));
  out.stats.assign(n, BatchQueryStats{});

  // --- front half of every query: parse, bind, analyze ---
  // One trace per query, created up front so the serial front half's
  // spans land on it; per-query traces are what keeps batch tracing free
  // of cross-query bleed (each trace is only ever written by the one
  // thread executing its query). Group keys are derived from the *batch*
  // position — failed prepares hold their slot so key uniqueness (and
  // therefore grouping) is unchanged by where errors land.
  std::vector<ScheduledQuery> scheduled;
  std::vector<size_t> slots;  // scheduled index -> batch index
  scheduled.reserve(n);
  slots.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::shared_ptr<obs::QueryTrace> trace;
    if (options_.collect_reports) {
      trace = std::make_shared<obs::QueryTrace>(queries[i]);
    }
    auto p = Prepare(queries[i], trace.get());
    if (!p.ok()) {
      out.results[i] = p.status();
      continue;
    }
    ScheduledQuery sq;
    sq.prepared = std::move(p).value();
    sq.frameql = queries[i];
    sq.trace = std::move(trace);
    sq.group_key = SharedSweepGroupKey(sq.prepared.query, i);
    scheduled.push_back(std::move(sq));
    slots.push_back(i);
  }

  // --- grouping + shared-sweep execution live in QueryScheduler ---
  QueryScheduler scheduler(this);
  ScheduleOutcome run = scheduler.Run(scheduled, sweeps,
                                      exec::ThreadPool::Budget::kAnalytics);
  out.groups = run.groups;
  for (size_t j = 0; j < scheduled.size(); ++j) {
    out.stats[slots[j]] = run.stats[j];
    out.results[slots[j]] = std::move(run.results[j]);
  }

  // Serial fixed-order fold for the totals.
  for (size_t i = 0; i < n; ++i) {
    out.standalone_seconds += out.stats[i].standalone_seconds;
    out.batch_seconds += out.stats[i].batch_seconds;
  }
  return out;
}

}  // namespace blazeit
