#ifndef BLAZEIT_CORE_LABELED_SET_H_
#define BLAZEIT_CORE_LABELED_SET_H_

#include <atomic>
#include <map>
#include <vector>

#include "detect/detector.h"
#include "util/mutex.h"
#include "video/synthetic_video.h"

namespace blazeit {

/// The labeled set of Section 2: one day of video annotated by the full
/// object detector, used to train specialized NNs, calibrate filter
/// thresholds, and (on the test day) replay pre-computed detections during
/// sampler evaluation. Built once, offline; its construction time is
/// excluded from all reported runtimes, exactly as in the paper.
class LabeledSet {
 public:
  /// Does not take ownership; `day` and `detector` must outlive this.
  LabeledSet(const SyntheticVideo* day, const ObjectDetector* detector,
             double score_threshold);

  int64_t num_frames() const { return day_->num_frames(); }
  double score_threshold() const { return score_threshold_; }
  const SyntheticVideo& day() const { return *day_; }

  /// Per-frame detection count of the class at the score threshold;
  /// computed lazily (one detector pass over the day) and cached. The
  /// lazy build is mutex-guarded and the returned vectors are immutable
  /// afterwards, so parallel frame scans can call this concurrently.
  const std::vector<int>& Counts(int class_id) const;

  /// Detections in one frame (thresholded).
  std::vector<Detection> DetectionsAt(int64_t frame) const;

  /// Fraction of frames with at least one instance of the class.
  double Occupancy(int class_id) const;

  /// Maximum per-frame count of the class over the day (the range K used
  /// in the epsilon-net sample-size bound).
  int MaxCount(int class_id) const;

 private:
  void BuildAllCounts() const BLAZEIT_EXCLUDES(build_mu_);

  const SyntheticVideo* day_;
  const ObjectDetector* detector_;
  double score_threshold_;
  /// Guards the one-shot lazy build; counts_ is never mutated once
  /// built_ flips (released by the store below, acquired by the fast-path
  /// load), so post-build readers skip the lock entirely. counts_ is not
  /// GUARDED_BY(build_mu_) for exactly that reason: post-build reads are
  /// deliberately lock-free behind the built_ acquire/release pair.
  mutable util::Mutex build_mu_;
  mutable std::map<int, std::vector<int>> counts_;
  mutable std::atomic<bool> built_{false};
};

}  // namespace blazeit

#endif  // BLAZEIT_CORE_LABELED_SET_H_
