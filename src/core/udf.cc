#include "core/udf.h"

#include <algorithm>

#include "util/random.h"
#include "util/string_util.h"

namespace blazeit {

namespace {

double ChannelContrast(const Image& image, int channel) {
  if (image.Empty()) return 0.0;
  double sum = 0.0;
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      double target = image.At(x, y, channel);
      double others = 0.0;
      for (int c = 0; c < 3; ++c) {
        if (c != channel) others += static_cast<double>(image.At(x, y, c));
      }
      sum += std::max(0.0, target - others / 2.0);
    }
  }
  return sum / (static_cast<double>(image.width()) * image.height());
}

}  // namespace

UdfRegistry::UdfRegistry() {
  // Built-ins carry stable content fingerprints so filter scores derived
  // from them may be persisted; bump the version string if the math ever
  // changes.
  udfs_["redness"] = {[](const Image& img) { return Redness(img); },
                      HashString("builtin-redness-v1")};
  udfs_["greenness"] = {[](const Image& img) { return Greenness(img); },
                        HashString("builtin-greenness-v1")};
  udfs_["blueness"] = {[](const Image& img) { return Blueness(img); },
                       HashString("builtin-blueness-v1")};
  udfs_["brightness"] = {[](const Image& img) { return Brightness(img); },
                         HashString("builtin-brightness-v1")};
}

Status UdfRegistry::Register(const std::string& name, ImageUdf udf,
                             uint64_t fingerprint) {
  if (name.empty()) return Status::InvalidArgument("UDF name must be non-empty");
  if (!udf) return Status::InvalidArgument("UDF must be callable");
  udfs_[ToLower(name)] = {std::move(udf), fingerprint};
  return Status::OK();
}

Result<ImageUdf> UdfRegistry::Get(const std::string& name) const {
  auto it = udfs_.find(ToLower(name));
  if (it == udfs_.end()) {
    return Status::NotFound(StrFormat("unknown UDF '%s'", name.c_str()));
  }
  return it->second.udf;
}

bool UdfRegistry::Contains(const std::string& name) const {
  return udfs_.count(ToLower(name)) > 0;
}

uint64_t UdfRegistry::FingerprintFor(const std::string& name) const {
  auto it = udfs_.find(ToLower(name));
  return it == udfs_.end() ? 0 : it->second.fingerprint;
}

double UdfRegistry::Redness(const Image& image) {
  return ChannelContrast(image, 0);
}
double UdfRegistry::Greenness(const Image& image) {
  return ChannelContrast(image, 1);
}
double UdfRegistry::Blueness(const Image& image) {
  return ChannelContrast(image, 2);
}
double UdfRegistry::Brightness(const Image& image) {
  return (image.MeanChannel(0) + image.MeanChannel(1) +
          image.MeanChannel(2)) /
         3.0;
}

}  // namespace blazeit
