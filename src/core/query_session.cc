#include "core/query_session.h"

namespace blazeit {

Result<BatchOutput> QuerySession::Run() {
  std::vector<std::string> batch;
  batch.swap(queued_);
  return engine_->ExecuteBatch(batch, &sweeps_);
}

Result<QueryOutput> QuerySession::Execute(const std::string& frameql) {
  auto batch = engine_->ExecuteBatch({frameql}, &sweeps_);
  BLAZEIT_RETURN_NOT_OK(batch.status());
  return std::move(batch.value().results.front());
}

}  // namespace blazeit
