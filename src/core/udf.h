#ifndef BLAZEIT_CORE_UDF_H_
#define BLAZEIT_CORE_UDF_H_

#include <map>
#include <string>

#include "filters/content_filter.h"
#include "util/status.h"
#include "video/image.h"

namespace blazeit {

/// Registry of user-defined functions over pixel content (Section 3:
/// "UDFs are functions that accept a timestamp, mask, and rectangular set
/// of pixels"). UDFs return continuous values so BlazeIt can lift them to
/// frame-level filters (Section 8.1). The same function is applied to a
/// mask crop (predicate evaluation) or a whole frame (content filter).
class UdfRegistry {
 public:
  /// Constructs with the built-ins registered: redness, greenness,
  /// blueness, brightness.
  UdfRegistry();

  /// Registers or replaces a UDF. `fingerprint` identifies the function's
  /// *content* for persistent caching of filter scores derived from it;
  /// the default 0 marks a closure with no stable identity, which simply
  /// disables persistent caching for filters built on this UDF (it is
  /// still evaluated normally). Change the fingerprint whenever the
  /// function's behaviour changes.
  Status Register(const std::string& name, ImageUdf udf,
                  uint64_t fingerprint = 0);

  Result<ImageUdf> Get(const std::string& name) const;
  bool Contains(const std::string& name) const;

  /// Content fingerprint of a registered UDF; 0 for unknown names and for
  /// UDFs registered without one.
  uint64_t FingerprintFor(const std::string& name) const;

  /// Built-in: mean over pixels of max(0, R - (G+B)/2) — high for
  /// distinctly red content such as tour buses, near zero for white or
  /// gray content (the per-channel mean alone would rank white buses
  /// *above* red ones).
  static double Redness(const Image& image);
  static double Greenness(const Image& image);
  static double Blueness(const Image& image);
  /// Built-in: mean over all channels.
  static double Brightness(const Image& image);

 private:
  struct Entry {
    ImageUdf udf;
    uint64_t fingerprint = 0;
  };
  std::map<std::string, Entry> udfs_;
};

}  // namespace blazeit

#endif  // BLAZEIT_CORE_UDF_H_
