#ifndef BLAZEIT_CORE_SCHEDULER_H_
#define BLAZEIT_CORE_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "exec/thread_pool.h"

namespace blazeit {

class SharedSweepCache;  // core/shared_sweep.h

/// One unit of schedulable work: a prepared query plus the shared-sweep
/// group tag the optimizer derived for it (SharedSweepGroupKey). The tag
/// is computed by the caller so *it* controls key uniqueness — ExecuteBatch
/// keys by batch position, the serving layer by position within the
/// coalesced admission window — which is what lets queries from different
/// clients land in the same group.
struct ScheduledQuery {
  PreparedQuery prepared;
  /// Original query text (feeds ExecutionReports).
  std::string frameql;
  /// Per-query trace (nullable). Only ever written by the one thread
  /// executing this query, which is what keeps batch tracing free of
  /// cross-query bleed.
  std::shared_ptr<obs::QueryTrace> trace;
  /// SharedSweepGroupKey(prepared.query, <caller's index>).
  uint64_t group_key = 0;
};

/// Result of QueryScheduler::Run, parallel to its input.
struct ScheduleOutcome {
  std::vector<Result<QueryOutput>> results;
  /// All-zero for failed queries (the documented ExecuteBatch contract).
  std::vector<BatchQueryStats> stats;
  /// Number of shared-plan groups formed.
  int64_t groups = 0;
};

/// The shared-plan scheduler extracted from BlazeItEngine::ExecuteBatch:
/// groups prepared queries by their group tag (first-appearance order),
/// runs the groups concurrently on the exec pool while queries inside a
/// group run serially, and feeds each group through one SweepCacheView per
/// query so a single NN training run and per-frame sweep serve the whole
/// group. ExecuteBatch and the serving layer (serve::AdmissionQueue) are
/// both thin clients of this class.
///
/// Determinism contract (inherited from ExecuteBatch): results[i] — the
/// answer, frames, rows, and simulated CostMeter — is bit-identical to a
/// standalone Execute of the same query at any thread count. Sharing
/// counters in `stats` can vary with scheduling when *different* groups
/// race on overlapping cache keys; query outputs never do.
class QueryScheduler {
 public:
  /// Called as each query's slot completes, from whichever pool worker ran
  /// its group — the callback must be thread-safe. The serving layer uses
  /// this to stream per-query results back as their group finishes instead
  /// of waiting for the whole schedule.
  using ResultCallback =
      std::function<void(size_t index, const Result<QueryOutput>& result,
                         const BatchQueryStats& stats)>;

  /// `engine` must outlive the scheduler.
  explicit QueryScheduler(BlazeItEngine* engine);
  ~QueryScheduler();
  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// Executes `queries` under the shared-plan grouping. `sweeps` is the
  /// cross-query artifact tier (nullptr = the scheduler's own
  /// session_sweeps(), which stays warm across Run calls); `budget` tags
  /// the pool job for the exec layer's sub-pool caps.
  ScheduleOutcome Run(
      const std::vector<ScheduledQuery>& queries, SharedSweepCache* sweeps,
      exec::ThreadPool::Budget budget = exec::ThreadPool::Budget::kDefault,
      const ResultCallback& on_result = nullptr);

  /// The scheduler-owned sweep cache used when Run is passed no caller
  /// cache. Owning it here — rather than in each caller — is what lets
  /// the serving layer keep sweeps warm across admission windows without
  /// managing cache lifetime itself.
  SharedSweepCache* session_sweeps() { return session_sweeps_.get(); }

 private:
  BlazeItEngine* engine_;
  std::unique_ptr<SharedSweepCache> session_sweeps_;
};

}  // namespace blazeit

#endif  // BLAZEIT_CORE_SCHEDULER_H_
