#include "core/scrubbing.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "exec/parallel_for.h"
#include "obs/trace.h"
#include "storage/segment_sketch.h"
#include "util/logging.h"

namespace blazeit {

bool SatisfiesRequirements(const StreamData& stream, int64_t frame,
                           const std::vector<ClassCountRequirement>& reqs) {
  for (const ClassCountRequirement& req : reqs) {
    const std::vector<int>& counts = stream.test_labels->Counts(req.class_id);
    if (counts[static_cast<size_t>(frame)] < req.min_count) return false;
  }
  return true;
}

RequirementStats CountRequirementInstances(
    const StreamData& stream,
    const std::vector<ClassCountRequirement>& reqs) {
  // Hoist the per-class count vectors (forcing the thread-safe lazy build
  // once, serially) so the sharded scan below is pure reads.
  std::vector<const std::vector<int>*> counts;
  counts.reserve(reqs.size());
  for (const ClassCountRequirement& req : reqs) {
    counts.push_back(&stream.test_labels->Counts(req.class_id));
  }
  const int64_t n = stream.test_day->num_frames();

  // Sharded scan with a fixed-order merge: each shard runs the serial
  // event-counting recurrence locally (in_event reset at its boundary)
  // and reports whether its first/last frames match; the merge then
  // uncounts events that span a shard boundary. Pure integer bookkeeping
  // over fixed shard boundaries — identical to the serial scan at any
  // thread count.
  struct ShardStats {
    int64_t matching = 0;
    int64_t events = 0;
    bool first_matches = false;
    bool last_matches = false;
  };
  std::vector<ShardStats> shards = exec::ParallelMap<ShardStats>(
      n, exec::kDefaultShardSize,
      [&](int64_t begin, int64_t end, int /*slot*/) {
        ShardStats s;
        bool in_event = false;
        for (int64_t t = begin; t < end; ++t) {
          bool match = true;
          for (size_t r = 0; r < counts.size(); ++r) {
            if ((*counts[r])[static_cast<size_t>(t)] < reqs[r].min_count) {
              match = false;
              break;
            }
          }
          if (match) {
            ++s.matching;
            if (!in_event) ++s.events;
            if (t == begin) s.first_matches = true;
          }
          in_event = match;
        }
        s.last_matches = in_event;
        return s;
      });

  RequirementStats out;
  bool prev_last = false;
  for (const ShardStats& s : shards) {
    out.matching_frames += s.matching;
    out.events += s.events;
    // An event running across the boundary was opened in both shards.
    if (prev_last && s.first_matches) --out.events;
    prev_last = s.last_matches;
  }
  return out;
}

namespace {

/// GAP bookkeeping: accepted frames kept sorted; a candidate is admissible
/// if no accepted frame lies within `gap` of it.
bool GapAdmissible(const std::vector<int64_t>& accepted_sorted, int64_t frame,
                   int64_t gap) {
  if (gap <= 0) return true;
  auto it = std::lower_bound(accepted_sorted.begin(), accepted_sorted.end(),
                             frame);
  if (it != accepted_sorted.end() && *it - frame < gap) return false;
  if (it != accepted_sorted.begin() && frame - *(it - 1) < gap) return false;
  return true;
}

void InsertSorted(std::vector<int64_t>* accepted, int64_t frame) {
  accepted->insert(
      std::upper_bound(accepted->begin(), accepted->end(), frame), frame);
}

}  // namespace

/// Candidate subranges of the scan window, in walk order. `pruned` is true
/// when a valid sketch index restricted the walk (the ranges then cover
/// only segments the sketches could not refute).
struct ScrubbingExecutor::FrameRanges {
  std::vector<SketchIndex::FrameRange> ranges;
  bool pruned = false;

  int64_t total_frames() const {
    int64_t total = 0;
    for (const auto& r : ranges) total += r.end - r.begin;
    return total;
  }

  /// Membership test; requires the ranges in ascending order (the
  /// CandidateRanges contract — never call on density-ordered runs).
  bool Contains(int64_t frame) const {
    auto it = std::upper_bound(
        ranges.begin(), ranges.end(), frame,
        [](int64_t f, const SketchIndex::FrameRange& r) {
          return f < r.begin;
        });
    if (it == ranges.begin()) return false;
    --it;
    return frame >= it->begin && frame < it->end;
  }
};

ScrubbingExecutor::ScrubbingExecutor(StreamData* stream, ScrubOptions options,
                                     ArtifactCache* sweep_cache,
                                     obs::QueryTrace* trace)
    : stream_(stream),
      cache_(sweep_cache != nullptr ? sweep_cache : stream->artifact_cache),
      options_(options),
      trace_(trace) {}

Result<ScrubResult> ScrubbingExecutor::Run(
    const std::vector<ClassCountRequirement>& reqs, int64_t limit,
    int64_t gap, FrameWindow window) {
  if (reqs.empty())
    return Status::InvalidArgument("scrubbing needs at least one class");
  if (limit <= 0) return Status::InvalidArgument("limit must be positive");
  window = ClampFrameWindow(window, stream_->test_day->num_frames());
  confidences_.clear();
  if (window.end <= window.begin) {
    // Range entirely past the recorded day: zero frames match; return
    // empty (and free) rather than training an NN to discover that.
    ScrubResult empty;
    empty.scan_exhausted = true;
    return empty;
  }
  CostMeter meter;

  // --- sketch consultation (opt-in): candidate subranges of the window ---
  FrameRanges candidates;
  candidates.ranges = {{window.begin, window.end}};
  FrameRanges scan_order = candidates;  // walk order of the scan fallback
  if (options_.use_store_index && stream_->detection_store != nullptr) {
    SketchIndex index = SketchIndex::Load(stream_->detection_store,
                                          stream_->test_detections_ns);
    if (index.valid()) {
      SketchProbe probe;
      probe.score_threshold = stream_->config.detection_threshold;
      probe.requirements = reqs;
      candidates.ranges =
          index.CandidateRanges(window.begin, window.end, probe);
      candidates.pruned = true;
      scan_order = candidates;
      if (options_.density_first) {
        scan_order.ranges = index.DensityRankedRuns(
            window.begin, window.end, probe, reqs.front().class_id);
      }
    }
  }
  const bool sketch_consulted =
      options_.use_store_index && stream_->detection_store != nullptr;
  const int64_t n_window = window.end - window.begin;
  auto fill_sketch_stats = [&](ScrubResult* r) {
    r->sketch_consulted = sketch_consulted;
    r->sketch_pruned = candidates.pruned;
    r->sketch_window_frames = n_window;
    r->sketch_candidate_frames =
        candidates.pruned ? candidates.total_frames() : n_window;
  };
  if (candidates.ranges.empty()) {
    // Every segment of the window is provably free of matches.
    ScrubResult empty;
    empty.scan_exhausted = true;
    fill_sketch_stats(&empty);
    return empty;
  }

  // --- training-data check (Section 7.1): any instance in the train day?
  // Sharded count scan; the sum folds in shard order (exact integers).
  std::vector<const std::vector<int>*> train_counts;
  train_counts.reserve(reqs.size());
  for (const ClassCountRequirement& req : reqs) {
    train_counts.push_back(&stream_->train_labels->Counts(req.class_id));
  }
  std::vector<int64_t> shard_instances = exec::ParallelMap<int64_t>(
      stream_->train_day->num_frames(), exec::kDefaultShardSize,
      [&](int64_t begin, int64_t end, int /*slot*/) {
        int64_t matched = 0;
        for (int64_t t = begin; t < end; ++t) {
          bool match = true;
          for (size_t r = 0; r < train_counts.size(); ++r) {
            if ((*train_counts[r])[static_cast<size_t>(t)] <
                reqs[r].min_count) {
              match = false;
              break;
            }
          }
          if (match) ++matched;
        }
        return matched;
      });
  int64_t train_instances = 0;
  for (int64_t count : shard_instances) train_instances += count;
  if (train_instances == 0) {
    BLAZEIT_LOG(kDebug) << "no instances of the scrubbing query in the "
                           "training set; falling back to sequential scan";
    Result<ScrubResult> fallback =
        RunSequentialFallback(reqs, limit, gap, meter, scan_order);
    if (fallback.ok()) fill_sketch_stats(&fallback.value());
    return fallback;
  }

  // --- train one NN with a count head per class ---
  std::vector<std::vector<int>> head_labels;
  std::vector<int> min_counts;
  head_labels.reserve(reqs.size());
  for (const ClassCountRequirement& req : reqs) {
    head_labels.push_back(stream_->train_labels->Counts(req.class_id));
    min_counts.push_back(req.min_count);
  }
  SpecializedNNConfig nn_config = options_.nn;
  nn_config.train.seed = HashCombine(options_.seed, 0x5c4b);
  nn_config.cache = cache_;
  Result<SpecializedNN> trained = [&] {
    obs::TraceSpan span(trace_, "train", &meter);
    return SpecializedNN::Train(*stream_->train_day, head_labels, nn_config);
  }();
  BLAZEIT_RETURN_NOT_OK(trained.status());
  SpecializedNN nn = std::move(trained).value();
  meter.ChargeTraining(nn.trained_frames());

  // --- score the unseen frames and rank by confidence ---
  // Indices below are positions in test_frames, so confidences_ lines up
  // with test_frames. The sweep covers only the sketch candidates when
  // pruning applies and smoothing is off; smoothing mixes neighbor
  // scores, so restricting its sweep would change the ranking signal and
  // break bit-identity — with smoothing on, everything is scored and the
  // refuted segments are skipped in the verification walk instead.
  const SyntheticVideo& test = *stream_->test_day;
  const bool restricted_sweep =
      candidates.pruned && options_.confidence_smoothing <= 0;
  std::vector<int64_t> test_frames;
  if (restricted_sweep) {
    test_frames.reserve(static_cast<size_t>(candidates.total_frames()));
    for (const auto& range : candidates.ranges) {
      for (int64_t t = range.begin; t < range.end; ++t) {
        test_frames.push_back(t);
      }
    }
  } else {
    test_frames.resize(static_cast<size_t>(n_window));
    std::iota(test_frames.begin(), test_frames.end(), window.begin);
  }
  auto mode = options_.conjunctive_product && reqs.size() > 1
                  ? SpecializedNN::ConjunctionMode::kProduct
                  : SpecializedNN::ConjunctionMode::kSum;
  {
    obs::TraceSpan span(trace_, "sweep", &meter);
    confidences_ =
        nn.QueryConfidencesForFrames(test, test_frames, min_counts, mode);
    meter.ChargeSpecializedNN(static_cast<int64_t>(test_frames.size()));
  }

  // Rank by the (optionally smoothed) confidence signal.
  std::vector<float> ranking_signal = confidences_;
  if (options_.confidence_smoothing > 0) {
    const int64_t w = options_.confidence_smoothing;
    const int64_t n = n_window;
    std::vector<double> prefix(static_cast<size_t>(n) + 1, 0.0);
    for (int64_t t = 0; t < n; ++t) {
      prefix[static_cast<size_t>(t) + 1] =
          prefix[static_cast<size_t>(t)] +
          static_cast<double>(confidences_[static_cast<size_t>(t)]);
    }
    for (int64_t t = 0; t < n; ++t) {
      int64_t lo = std::max<int64_t>(0, t - w);
      int64_t hi = std::min<int64_t>(n - 1, t + w);
      ranking_signal[static_cast<size_t>(t)] = static_cast<float>(
          (prefix[static_cast<size_t>(hi) + 1] -
           prefix[static_cast<size_t>(lo)]) /
          static_cast<double>(hi - lo + 1));
    }
  }
  std::vector<int64_t> order(test_frames.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&ranking_signal](int64_t a, int64_t b) {
                     return ranking_signal[static_cast<size_t>(a)] >
                            ranking_signal[static_cast<size_t>(b)];
                   });

  // --- verify candidates with the full detector, best-first ---
  obs::TraceSpan verify_span(trace_, "verify", &meter);
  ScrubResult result;
  std::vector<int64_t> accepted_sorted;
  bool limit_reached = false;
  for (int64_t index : order) {
    const int64_t frame = test_frames[static_cast<size_t>(index)];
    if (static_cast<int64_t>(result.frames.size()) >= limit) {
      limit_reached = true;
      break;
    }
    // With smoothing on, everything was scored but refuted segments still
    // need no verification: a sketch-refuted frame provably fails the
    // requirements, so in the unindexed walk it would charge a detector
    // call and change no state — skipping it is free and bit-identical.
    if (candidates.pruned && !restricted_sweep &&
        !candidates.Contains(frame)) {
      continue;
    }
    if (!GapAdmissible(accepted_sorted, frame, gap)) continue;
    meter.ChargeDetection();
    if (SatisfiesRequirements(*stream_, frame, reqs)) {
      result.frames.push_back(frame);
      InsertSorted(&accepted_sorted, frame);
    }
  }
  result.limit_satisfied =
      static_cast<int64_t>(result.frames.size()) >= limit;
  result.scan_exhausted = !limit_reached;
  result.indexed_seconds = meter.detection_seconds();
  result.detection_calls = meter.detection_calls();
  result.cost = meter;
  fill_sketch_stats(&result);
  return result;
}

Result<ScrubResult> ScrubbingExecutor::RunSequentialFallback(
    const std::vector<ClassCountRequirement>& reqs, int64_t limit,
    int64_t gap, CostMeter meter, const FrameRanges& ranges) {
  obs::TraceSpan span(trace_, "scan", &meter);
  ScrubResult result;
  result.fell_back_to_scan = true;
  std::vector<int64_t> accepted_sorted;
  bool limit_reached = false;
  for (const auto& range : ranges.ranges) {
    for (int64_t t = range.begin; t < range.end; ++t) {
      if (static_cast<int64_t>(result.frames.size()) >= limit) {
        limit_reached = true;
        break;
      }
      if (!GapAdmissible(accepted_sorted, t, gap)) continue;
      meter.ChargeDetection();
      if (SatisfiesRequirements(*stream_, t, reqs)) {
        result.frames.push_back(t);
        InsertSorted(&accepted_sorted, t);
      }
    }
    if (limit_reached) break;
  }
  result.limit_satisfied =
      static_cast<int64_t>(result.frames.size()) >= limit;
  result.scan_exhausted = !limit_reached;
  result.indexed_seconds = meter.detection_seconds();
  result.detection_calls = meter.detection_calls();
  result.cost = meter;
  return result;
}

}  // namespace blazeit
