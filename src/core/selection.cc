#include "core/selection.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "exec/frame_pipeline.h"
#include "filters/calibration.h"
#include "filters/content_filter.h"
#include "filters/label_filter.h"
#include "filters/spatial_filter.h"
#include "filters/temporal_filter.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace blazeit {

namespace {

/// Evaluates the object-level UDF predicates against a crop of the
/// rendered frame.
bool UdfPredicatesPass(const std::vector<Predicate>& preds,
                       const UdfRegistry& udfs, const Image& frame,
                       const Rect& box) {
  for (const Predicate& pred : preds) {
    if (pred.kind != Predicate::Kind::kUdf) continue;
    auto udf = udfs.Get(pred.name);
    if (!udf.ok()) return false;  // unknown UDF: cannot satisfy
    Image crop = frame.Crop(box);
    if (!EvalCmp(udf.value()(crop), pred.op, pred.value)) return false;
  }
  return true;
}

bool HasUdfPredicates(const AnalyzedQuery& query) {
  for (const Predicate& pred : query.udf_predicates) {
    if (pred.kind == Predicate::Kind::kUdf) return true;
  }
  return false;
}

constexpr int kUdfRaster = 48;  // render size for object-level UDF checks

}  // namespace

SelectionExecutor::SelectionExecutor(StreamData* stream,
                                     const UdfRegistry* udfs,
                                     SelectionOptions options,
                                     ArtifactCache* sweep_cache,
                                     obs::QueryTrace* trace)
    : stream_(stream),
      udfs_(udfs),
      cache_(sweep_cache != nullptr ? sweep_cache : stream->artifact_cache),
      options_(options),
      trace_(trace) {}

bool SelectionExecutor::FrameMatches(const LabeledSet& labels, int64_t frame,
                                     const AnalyzedQuery& query,
                                     std::vector<SelectionRow>* rows,
                                     Image* render_scratch) const {
  std::vector<Detection> dets = labels.DetectionsAt(frame);
  bool any = false;
  bool rendered_this_frame = false;  // render lazily, at most once per frame
  Image& rendered = *render_scratch;
  const bool needs_pixels = HasUdfPredicates(query);
  for (const Detection& det : dets) {
    if (det.class_id != query.sel_class) continue;
    if (query.has_roi &&
        !query.roi.Contains(det.rect.CenterX(), det.rect.CenterY())) {
      continue;
    }
    if (query.min_area_px > 0 &&
        PixelArea(det.rect, stream_->config.width, stream_->config.height) <
            query.min_area_px) {
      continue;
    }
    if (needs_pixels) {
      if (!rendered_this_frame) {
        labels.day().RenderFrameRegionInto(frame, Rect{0, 0, 1, 1},
                                           kUdfRaster, kUdfRaster, &rendered);
        rendered_this_frame = true;
      }
      if (!UdfPredicatesPass(query.udf_predicates, *udfs_, rendered,
                             det.rect)) {
        continue;
      }
    }
    any = true;
    if (rows != nullptr) rows->push_back({frame, det});
  }
  return any;
}

Result<SelectionResult> SelectionExecutor::Run(const AnalyzedQuery& query) {
  if (query.kind != QueryKind::kSelection)
    return Status::InvalidArgument("not a selection query");
  if (query.sel_class < 0)
    return Status::InvalidArgument("selection requires a class predicate");
  CostMeter meter;
  std::vector<std::string> plan_parts;

  // ---- temporal filter (exact; inferred from persistence + time range) --
  TemporalFilter temporal;
  if (options_.use_temporal_filter && query.persistence_frames > 2) {
    temporal.set_stride(
        TemporalFilter::StrideForPersistence(query.persistence_frames));
    plan_parts.push_back(StrFormat("temporal(stride=%lld)",
                                   static_cast<long long>(temporal.stride())));
  }
  // The same window arithmetic every executor applies. An empty resolved
  // window (range past the recorded day, or one so narrow no frame falls
  // inside) means zero frames can match; return empty rather than
  // training and calibrating filters to discover that.
  BLAZEIT_ASSIGN_OR_RETURN(
      FrameWindow window,
      ResolveFrameWindow(query, stream_->config.fps,
                         stream_->test_day->num_frames()));
  if (window.end <= window.begin) {
    SelectionResult empty;
    empty.plan = "empty time range";
    return empty;
  }
  BLAZEIT_RETURN_NOT_OK(temporal.SetTimeRange(window.begin, window.end));

  // ---- spatial filter (exact; reduces detector cost) ----
  std::unique_ptr<SpatialFilter> spatial;
  double detection_aspect = 16.0 / 9.0;
  if (options_.use_spatial_filter && query.has_roi) {
    spatial = std::make_unique<SpatialFilter>(
        query.roi, stream_->config.width, stream_->config.height);
    detection_aspect = spatial->AspectRatio();
    plan_parts.push_back(
        StrFormat("spatial(aspect=%.2f, %.1fx cheaper detection)",
                  spatial->AspectRatio(), spatial->Speedup()));
  }

  // ---- positive masks on the held-out day (offline, uncharged) ----
  // Sharded across the exec pool: every frame writes only its own mask
  // slots, FrameMatches renders into per-worker scratch, and the labeled
  // set / detector caches are thread-safe — so the masks (and everything
  // calibrated from them) are identical at any thread count.
  const SyntheticVideo& held = *stream_->held_out_day;
  const std::vector<int>& held_counts =
      stream_->held_out_labels->Counts(query.sel_class);
  std::vector<char> predicate_positive(static_cast<size_t>(held.num_frames()),
                                       0);
  std::vector<char> class_positive(predicate_positive.size(), 0);
  obs::TraceSpan holdout_span(trace_, "holdout-masks", &meter);
  exec::FramePipeline::Run(
      held.num_frames(),
      [&](int64_t begin, int64_t end, exec::FramePipeline::Scratch* scratch) {
        for (int64_t t = begin; t < end; ++t) {
          if (held_counts[static_cast<size_t>(t)] == 0) continue;
          class_positive[static_cast<size_t>(t)] = 1;
          if (FrameMatches(*stream_->held_out_labels, t, query, nullptr,
                           &scratch->image)) {
            predicate_positive[static_cast<size_t>(t)] = 1;
          }
        }
      });
  holdout_span.Close();

  // ---- content filter (statistical; calibrated for no false negatives) --
  std::unique_ptr<ContentFilter> content;
  if (options_.use_content_filter) {
    obs::TraceSpan span(trace_, "calibrate:content", &meter);
    for (const Predicate& pred : query.udf_predicates) {
      if (pred.kind != Predicate::Kind::kUdf) continue;
      if (pred.op != CmpOp::kGe && pred.op != CmpOp::kGt) continue;
      auto udf = udfs_->Get(pred.name);
      if (!udf.ok()) continue;
      auto candidate = std::make_unique<ContentFilter>(pred.name,
                                                       udf.value());
      // Content scores render frames; persist them when the UDF has a
      // stable content fingerprint (built-ins do, ad-hoc closures do not).
      const uint64_t udf_fp = udfs_->FingerprintFor(pred.name);
      if (cache_ != nullptr && udf_fp != 0) {
        candidate->set_score_cache(
            cache_,
            Fingerprint()
                .Mix("content-filter")
                .Mix(udf_fp)
                .Mix(candidate->raster_width())
                .Mix(candidate->raster_height())
                .value());
      }
      auto calib = CalibrateNoFalseNegatives(candidate.get(), held,
                                             predicate_positive,
                                             options_.calibration_margin);
      if (!calib.ok()) {
        BLAZEIT_LOG(kDebug) << "content filter '" << pred.name
                            << "' skipped: " << calib.status().ToString();
        continue;
      }
      meter.ChargeThresholding(held.num_frames());
      // Deploy only if it actually discards frames (Section 8.1: BlazeIt
      // learns which UDFs are effective as frame-level filters).
      if (calib.value().selectivity < 0.95) {
        content = std::move(candidate);
        plan_parts.push_back(StrFormat(
            "content(%s>=%.4f, sel=%.2f)", pred.name.c_str(),
            calib.value().threshold, calib.value().selectivity));
        break;
      }
    }
  }

  // ---- label filter (specialized NN; calibrated on class presence) ----
  std::unique_ptr<LabelFilter> label;
  if (options_.use_label_filter) {
    obs::TraceSpan span(trace_, "train:label-filter", &meter);
    const std::vector<int>& train_counts =
        stream_->train_labels->Counts(query.sel_class);
    int64_t positives = 0;
    for (int c : train_counts) {
      if (c > 0) ++positives;
    }
    if (positives > 0) {
      SpecializedNNConfig nn_config = options_.nn;
      nn_config.train.seed = HashCombine(options_.seed, 0x3e1e);
      nn_config.cache = cache_;
      auto trained = SpecializedNN::Train(*stream_->train_day, {train_counts},
                                          nn_config);
      BLAZEIT_RETURN_NOT_OK(trained.status());
      meter.ChargeTraining(trained.value().trained_frames());
      auto candidate = std::make_unique<LabelFilter>(
          std::move(trained).value(), std::vector<int>{1});
      // Calibrate against the frames satisfying the *full* predicate when
      // any exist: the filter only needs to keep frames this query cares
      // about, which gives a much tighter threshold than class presence.
      bool any_predicate_positive = false;
      for (char p : predicate_positive) {
        if (p) {
          any_predicate_positive = true;
          break;
        }
      }
      auto calib = CalibrateNoFalseNegatives(
          candidate.get(), held,
          any_predicate_positive ? predicate_positive : class_positive,
          options_.calibration_margin);
      if (calib.ok()) {
        meter.ChargeSpecializedNN(held.num_frames());
        meter.ChargeThresholding(held.num_frames());
        // Deploy only if the filter actually discards frames (Section 8:
        // the optimizer selects between filters by estimated selectivity;
        // a filter that keeps everything just adds NN cost).
        if (calib.value().selectivity < 0.9) {
          label = std::move(candidate);
          plan_parts.push_back(StrFormat("label(th=%.3f, sel=%.2f)",
                                         calib.value().threshold,
                                         calib.value().selectivity));
        } else {
          BLAZEIT_LOG(kDebug)
              << "label filter not selective (sel="
              << calib.value().selectivity << "); skipped";
        }
      }
    }
  }

  // ---- execute the cascade over the test day, cheapest filter first ----
  obs::TraceSpan cascade_span(trace_, "cascade", &meter);
  const SyntheticVideo& test = *stream_->test_day;
  SelectionResult result;
  std::vector<int64_t> matched_frames;
  std::vector<int64_t> candidates = temporal.CandidateFrames(test.num_frames());
  result.candidates = static_cast<int64_t>(candidates.size());
  // Stage 1: content filter (cheapest). Scored through ScoreBatch so the
  // persistent score cache applies; one ChargeFilter per candidate either
  // way.
  std::vector<int64_t> after_content;
  if (content != nullptr) {
    std::vector<double> scores = content->ScoreBatch(test, candidates);
    for (size_t i = 0; i < candidates.size(); ++i) {
      meter.ChargeFilter();
      if (scores[i] >= content->threshold()) {
        after_content.push_back(candidates[i]);
      }
    }
  } else {
    after_content = std::move(candidates);
  }
  // Stage 2: label filter (specialized NN, batched).
  std::vector<int64_t> after_label;
  if (label != nullptr) {
    std::vector<double> scores = label->ScoreBatch(test, after_content);
    meter.ChargeSpecializedNN(static_cast<int64_t>(after_content.size()));
    for (size_t i = 0; i < after_content.size(); ++i) {
      if (scores[i] >= label->threshold()) {
        after_label.push_back(after_content[i]);
      }
    }
  } else {
    after_label = std::move(after_content);
  }
  cascade_span.Close();
  // Stage 3: full object detection on the survivors — serial: result.rows
  // appends in frame order and the cost meter is an ordered accumulator.
  obs::TraceSpan verify_span(trace_, "verify", &meter);
  Image verify_scratch;
  for (int64_t frame : after_label) {
    meter.ChargeDetectionAspect(detection_aspect);
    ++result.frames_detected;
    if (FrameMatches(*stream_->test_labels, frame, query, &result.rows,
                     &verify_scratch)) {
      matched_frames.push_back(frame);
    }
  }

  // ---- merge matches into events ----
  const int64_t merge_gap = 2 * std::max<int64_t>(1, temporal.stride());
  for (int64_t frame : matched_frames) {
    if (!result.events.empty() &&
        frame - result.events.back().last_frame <= merge_gap) {
      result.events.back().last_frame = frame;
    } else {
      result.events.push_back({frame, frame});
    }
  }
  result.cost = meter;
  result.plan = plan_parts.empty() ? "naive (no applicable filters)"
                                   : Join(plan_parts, " ");
  return result;
}

std::vector<SelectionEvent> GroundTruthSelectionEvents(
    const SyntheticVideo& video, const AnalyzedQuery& query,
    const UdfRegistry& udfs) {
  std::vector<SelectionEvent> events;
  bool in_run = false;
  int64_t run_start = 0;
  auto object_matches = [&](const GroundTruthObject& obj) {
    if (obj.class_id != query.sel_class) return false;
    if (query.has_roi &&
        !query.roi.Contains(obj.rect.CenterX(), obj.rect.CenterY())) {
      return false;
    }
    if (query.min_area_px > 0 &&
        PixelArea(obj.rect, video.config().width, video.config().height) <
            query.min_area_px) {
      return false;
    }
    for (const Predicate& pred : query.udf_predicates) {
      if (pred.kind != Predicate::Kind::kUdf) continue;
      auto udf = udfs.Get(pred.name);
      if (!udf.ok()) return false;
      // Evaluate the UDF on the object's intrinsic color (a 1x1 image):
      // ground truth is defined by the scene, not the renderer's noise.
      Image swatch(1, 1);
      swatch.SetPixel(0, 0, obj.color);
      if (!EvalCmp(udf.value()(swatch), pred.op, pred.value)) return false;
    }
    return true;
  };

  for (int64_t t = 0; t <= video.num_frames(); ++t) {
    bool match = false;
    if (t < video.num_frames()) {
      for (const GroundTruthObject& obj : video.GroundTruth(t)) {
        if (object_matches(obj)) {
          match = true;
          break;
        }
      }
    }
    if (match && !in_run) {
      in_run = true;
      run_start = t;
    } else if (!match && in_run) {
      in_run = false;
      int64_t length = t - run_start;
      if (length >= std::max<int64_t>(1, query.persistence_frames)) {
        events.push_back({run_start, t - 1});
      }
    }
  }
  return events;
}

}  // namespace blazeit
