#include "core/optimizer.h"

#include "util/random.h"
#include "util/string_util.h"

namespace blazeit {

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kSpecializedAggregation:
      return "specialized-aggregation";
    case PlanKind::kAqpAggregation:
      return "aqp-aggregation";
    case PlanKind::kTrackerCountDistinct:
      return "tracker-count-distinct";
    case PlanKind::kImportanceScrubbing:
      return "importance-scrubbing";
    case PlanKind::kScanScrubbing:
      return "scan-scrubbing";
    case PlanKind::kFilteredSelection:
      return "filtered-selection";
    case PlanKind::kBinaryDetection:
      return "binary-detection";
    case PlanKind::kFullScan:
      return "full-scan";
  }
  return "?";
}

namespace {

int64_t PositiveTrainingFrames(StreamData* stream, int class_id) {
  int64_t positives = 0;
  for (int c : stream->train_labels->Counts(class_id)) {
    if (c > 0) ++positives;
  }
  return positives;
}

int64_t JointTrainingInstances(StreamData* stream,
                               const std::vector<ClassCountRequirement>& reqs) {
  int64_t instances = 0;
  for (int64_t t = 0; t < stream->train_day->num_frames(); ++t) {
    bool match = true;
    for (const ClassCountRequirement& req : reqs) {
      if (stream->train_labels->Counts(req.class_id)[static_cast<size_t>(
              t)] < req.min_count) {
        match = false;
        break;
      }
    }
    if (match) ++instances;
  }
  return instances;
}

/// "; sketch-answerable: …" suffix for the plan rationale. Derived from
/// the query's analyzer annotation only (never from whether an index
/// actually exists), so plan descriptions are identical with and without
/// a store.
std::string SketchAnnotation(const AnalyzedQuery& query) {
  const SketchSupport& s = query.sketch;
  if (!s.any()) return "";
  std::string conjuncts;
  if (s.class_counts) conjuncts += " class-counts";
  if (s.class_presence) conjuncts += " class-presence";
  if (s.roi) conjuncts += " roi";
  if (s.min_area) conjuncts += " min-area";
  if (s.any_detection) conjuncts += " any-detection";
  return StrFormat("; sketch-answerable:%s", conjuncts.c_str());
}

}  // namespace

PlanChoice ChoosePlan(const AnalyzedQuery& query, StreamData* stream) {
  PlanChoice choice;
  switch (query.kind) {
    case QueryKind::kAggregate: {
      int64_t positives = PositiveTrainingFrames(stream, query.agg_class);
      if (positives >= 50) {
        choice.kind = PlanKind::kSpecializedAggregation;
        choice.rationale = StrFormat(
            "aggregate with error tolerance %.3g; %lld positive training "
            "frames -> train specialized NN (Algorithm 1)",
            query.error, static_cast<long long>(positives));
      } else {
        choice.kind = PlanKind::kAqpAggregation;
        choice.rationale = StrFormat(
            "aggregate, but only %lld positive training frames -> plain AQP",
            static_cast<long long>(positives));
      }
      return choice;
    }
    case QueryKind::kCountDistinct:
      choice.kind = PlanKind::kTrackerCountDistinct;
      choice.rationale =
          "COUNT(DISTINCT trackid) requires entity resolution over every "
          "frame -> detector + motion-IOU tracker" +
          SketchAnnotation(query);
      return choice;
    case QueryKind::kScrubbing: {
      int64_t instances = JointTrainingInstances(stream, query.requirements);
      if (instances > 0) {
        choice.kind = PlanKind::kImportanceScrubbing;
        choice.rationale =
            StrFormat(
                "scrubbing with LIMIT %lld; %lld matching training frames -> "
                "importance sampling on specialized-NN confidence",
                static_cast<long long>(query.limit),
                static_cast<long long>(instances)) +
            SketchAnnotation(query);
      } else {
        choice.kind = PlanKind::kScanScrubbing;
        choice.rationale =
            "scrubbing, but no matching frames in the training set -> "
            "sequential scan with applicable filters" +
            SketchAnnotation(query);
      }
      return choice;
    }
    case QueryKind::kSelection: {
      choice.kind = PlanKind::kFilteredSelection;
      std::string filters;
      if (query.persistence_frames > 2) filters += " temporal";
      if (query.has_roi) filters += " spatial";
      if (!query.udf_predicates.empty()) filters += " content";
      filters += " label";
      choice.rationale = StrFormat(
          "content-based selection; inferred filter classes:%s",
          filters.c_str());
      return choice;
    }
    case QueryKind::kBinarySelect:
      choice.kind = PlanKind::kBinaryDetection;
      choice.rationale = StrFormat(
          "binary detection with FNR<=%.3g FPR<=%.3g (NoScope replication)",
          query.fnr, query.fpr);
      return choice;
    case QueryKind::kExhaustive:
      choice.kind = PlanKind::kFullScan;
      choice.rationale = "no optimization applies; full detection scan" +
                         SketchAnnotation(query);
      return choice;
  }
  return choice;
}

uint64_t SharedSweepGroupKey(const AnalyzedQuery& query, size_t query_index) {
  Fingerprint fp;
  fp.Mix(query.table);
  switch (query.kind) {
    case QueryKind::kAggregate:
      // One counting NN per (stream, class); error/confidence only change
      // how the shared sweep is consumed.
      fp.Mix("aggregate-sweep").Mix(query.agg_class);
      return fp.value();
    case QueryKind::kScrubbing:
      // One multi-head NN per ordered class list (head labels are the
      // per-class counts in requirement order; min counts only shape the
      // tail probabilities read off the shared softmax rows).
      fp.Mix("scrubbing-sweep");
      fp.Mix(static_cast<uint64_t>(query.requirements.size()));
      for (const ClassCountRequirement& req : query.requirements) {
        fp.Mix(req.class_id);
      }
      return fp.value();
    case QueryKind::kSelection:
      // One label-filter NN per (stream, class); predicates differ only
      // in calibration, which reuses the shared held-out sweep.
      fp.Mix("selection-sweep").Mix(query.sel_class);
      return fp.value();
    case QueryKind::kBinarySelect:
      fp.Mix("binary-select-sweep").Mix(query.sel_class);
      return fp.value();
    case QueryKind::kCountDistinct:
    case QueryKind::kExhaustive:
      break;
  }
  // No trained model to share: singleton group.
  fp.Mix("solo").Mix(static_cast<uint64_t>(query_index));
  return fp.value();
}

}  // namespace blazeit
