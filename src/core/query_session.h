#ifndef BLAZEIT_CORE_QUERY_SESSION_H_
#define BLAZEIT_CORE_QUERY_SESSION_H_

#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/shared_sweep.h"

namespace blazeit {

/// A serving-side wrapper over BlazeItEngine::ExecuteBatch: queue queries
/// as they arrive, run them as one shared-plan batch, and keep the shared
/// sweeps warm across batches — a later batch (or single query) that asks
/// about a (stream, class) this session has already swept pays no new NN
/// training or inference, only its own cheap consumption of the scores.
///
///   QuerySession session(&engine);
///   session.Add("SELECT FCOUNT(*) FROM taipei WHERE class='car' …");
///   session.Add("SELECT timestamp FROM taipei … LIMIT 5");
///   auto batch = session.Run();
///
/// Not thread-safe: one session per caller thread (the engine and the
/// shared cache underneath are thread-safe; Add/Run bookkeeping is not).
class QuerySession {
 public:
  /// `engine` must outlive the session.
  explicit QuerySession(BlazeItEngine* engine) : engine_(engine) {}

  /// Queues a query; returns its index into the next Run()'s outputs.
  int64_t Add(std::string frameql) {
    queued_.push_back(std::move(frameql));
    return static_cast<int64_t>(queued_.size()) - 1;
  }

  int64_t pending() const { return static_cast<int64_t>(queued_.size()); }

  /// Executes everything queued as one batch and clears the queue.
  Result<BatchOutput> Run();

  /// Executes one query immediately through the session's warm sweeps.
  /// Output is bit-identical to BlazeItEngine::Execute.
  Result<QueryOutput> Execute(const std::string& frameql);

  /// The session's shared sweep tier (diagnostics: resident record
  /// counts).
  const SharedSweepCache& sweeps() const { return sweeps_; }

 private:
  BlazeItEngine* engine_;
  SharedSweepCache sweeps_;
  std::vector<std::string> queued_;
};

}  // namespace blazeit

#endif  // BLAZEIT_CORE_QUERY_SESSION_H_
