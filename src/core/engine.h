#ifndef BLAZEIT_CORE_ENGINE_H_
#define BLAZEIT_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/aggregation.h"
#include "core/catalog.h"
#include "core/optimizer.h"
#include "core/scrubbing.h"
#include "core/selection.h"
#include "core/udf.h"
#include "obs/report.h"
#include "sim/cost_model.h"
#include "util/status.h"

namespace blazeit {

class SharedSweepCache;  // core/shared_sweep.h
class QueryScheduler;    // core/scheduler.h

/// Per-query execution options forwarded to the executors.
struct EngineOptions {
  AggregateOptions aggregate;
  ScrubOptions scrub;
  SelectionOptions selection;
  /// Consult the detection store's per-segment sketches (built with
  /// DetectionStore::BuildSketches or `storecli sketch rebuild`) so full
  /// scans, count-distinct, and scrubbing skip provably non-matching
  /// segments without decoding them. Outputs are bit-identical to the
  /// unindexed path (sketch_invariance_test); only the charged detector
  /// and NN calls drop. Off by default so cost accounting stays identical
  /// with and without a store (the store_invariance_test contract); a
  /// no-op for streams without a store or without current sketches.
  bool use_store_index = false;
  /// Attach an obs::ExecutionReport (plan, stage trace, simulated-cost
  /// breakdown, cache/sketch hit rates) to every QueryOutput. Reporting
  /// only observes: query outputs and simulated costs are bit-identical
  /// with it on or off. Off by default — the per-frame cache-counting
  /// wrapper and span bookkeeping cost a little wall-clock.
  bool collect_reports = false;
  /// Register "engine" and "storage" sections with the process-wide
  /// obs::StatusRegistry (rendered by the debug server's /statusz) for
  /// this engine's lifetime. Off by default so tests and libraries that
  /// build many engines don't pollute the global registry; `storecli
  /// serve --listen` turns it on.
  bool export_statusz = false;
};

/// Everything a FrameQL query can return.
struct QueryOutput {
  QueryKind kind = QueryKind::kExhaustive;
  PlanKind plan = PlanKind::kFullScan;
  /// Aggregates: the (frame-averaged or total) count estimate.
  double scalar = 0.0;
  /// Scrubbing / binary selection / exhaustive: matching frames.
  std::vector<int64_t> frames;
  /// Content-based selection: matching (frame, detection) rows.
  std::vector<SelectionRow> rows;
  /// Simulated cost of executing the query.
  CostMeter cost;
  /// The optimizer's plan description.
  std::string plan_description;
  /// EXPLAIN-style report (null unless EngineOptions::collect_reports).
  /// Shared so batch execution can fill in group/sharing fields after the
  /// per-query run completes.
  std::shared_ptr<obs::ExecutionReport> report;
};

/// Per-query diagnostics of one ExecuteBatch call. The per-query
/// QueryOutput (including its CostMeter) is bit-identical to a standalone
/// Execute; these stats record what the batch layer *actually* spent on
/// top of that accounting — i.e. which charged NN work was served from
/// another query's sweep instead of being recomputed.
struct BatchQueryStats {
  /// Shared-plan group this query executed in (index into the batch's
  /// first-appearance group order).
  int64_t group = 0;
  /// Specialized-NN per-frame inferences served from the batch's shared
  /// sweeps (charged to this query's meter, computed by another query).
  int64_t shared_nn_frames = 0;
  /// Per-frame filter scores served from the batch's shared sweeps.
  int64_t shared_filter_frames = 0;
  /// Trained NN weight blobs reused from the batch (0 or 1).
  int64_t shared_models = 0;
  /// Simulated seconds the query charges standalone
  /// (== QueryOutput::cost.TotalSeconds()).
  double standalone_seconds = 0.0;
  /// Standalone seconds minus the NN training/inference the shared sweeps
  /// absorbed: what this query actually added to the batch.
  double batch_seconds = 0.0;
};

/// Result of BlazeItEngine::ExecuteBatch.
struct BatchOutput {
  /// One entry per input query, in input order. Failures (parse errors,
  /// unknown streams, executor errors) land here per query, exactly as the
  /// corresponding serial Execute call would return them.
  std::vector<Result<QueryOutput>> results;
  /// Parallel to `results`. For failed queries the entry is default
  /// (all-zero). Sharing counters can vary with scheduling when *different*
  /// groups race on overlapping cache keys (e.g. two selection classes
  /// sharing one content-filter sweep); query outputs never do.
  std::vector<BatchQueryStats> stats;
  /// Number of shared-plan groups the optimizer pass formed.
  int64_t groups = 0;
  /// Sums of the per-query stats over the successful queries.
  double standalone_seconds = 0.0;
  double batch_seconds = 0.0;
};

/// A parsed + analyzed query bound to its stream, ready to execute — the
/// front half of Execute, split out so schedulers (QueryScheduler, the
/// serving layer's AdmissionQueue) can prepare queries at admission time
/// and execute them later.
struct PreparedQuery {
  StreamData* stream = nullptr;
  AnalyzedQuery query;
  /// Process-unique id minted at Prepare time, threaded through log lines
  /// (cid=N fields) and the flight recorder so one query's lifecycle can
  /// be grepped end to end. Never part of query outputs or reports — ids
  /// differ across runs, and outputs must not.
  int64_t correlation_id = -1;
};

/// The BlazeIt engine: the public entry point tying everything together.
/// Parse -> analyze -> rule-based plan choice -> execute (Figure 2).
///
///   VideoCatalog catalog;
///   catalog.AddStream(TaipeiConfig());
///   BlazeItEngine engine(&catalog);
///   auto out = engine.Execute(
///       "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' "
///       "ERROR WITHIN 0.1 AT CONFIDENCE 95%");
class BlazeItEngine {
 public:
  /// `catalog` must outlive the engine.
  explicit BlazeItEngine(VideoCatalog* catalog, EngineOptions options = {});
  ~BlazeItEngine();
  BlazeItEngine(const BlazeItEngine&) = delete;
  BlazeItEngine& operator=(const BlazeItEngine&) = delete;

  /// Parses, optimizes, and executes one FrameQL query.
  Result<QueryOutput> Execute(const std::string& frameql);

  /// Multi-query batch execution: parses and analyzes every query up
  /// front, groups them by shared specialized-NN work (stream × NN config
  /// × queried classes — see SharedSweepGroupKey), and executes the
  /// groups concurrently on the exec pool while queries inside a group
  /// run serially so one NN training run and one per-frame sweep feed the
  /// whole group through a SharedSweepCache.
  ///
  /// Determinism contract: results[i] — answer, frames, rows, and the
  /// simulated CostMeter — is bit-identical to Execute(queries[i]) at any
  /// thread count (asserted by tests/batch_determinism_test.cc). The
  /// batch-level savings show up in BatchOutput's stats, not in the
  /// per-query meters, which keep standalone accounting.
  Result<BatchOutput> ExecuteBatch(const std::vector<std::string>& queries);

  /// As above, but sharing sweeps through a caller-owned cache so they
  /// stay warm across batches — what QuerySession uses. `sweeps` must
  /// outlive the call and must not be shared across catalogs.
  Result<BatchOutput> ExecuteBatch(const std::vector<std::string>& queries,
                                   SharedSweepCache* sweeps);

  /// Parses, binds, and analyzes one query without executing it. `trace`
  /// (nullable) records the parse/analyze spans. Thread-safe: the catalog
  /// is read-only after setup, so concurrent Prepare calls (the serving
  /// layer prepares at admission time) never race.
  Result<PreparedQuery> Prepare(const std::string& frameql,
                                obs::QueryTrace* trace = nullptr);

  /// UDFs available to queries (register custom ones here).
  UdfRegistry* mutable_udfs() { return &udfs_; }
  const UdfRegistry& udfs() const { return udfs_; }

  const EngineOptions& options() const { return options_; }
  EngineOptions* mutable_options() { return &options_; }

 private:
  /// QueryScheduler executes prepared queries against shared sweeps on
  /// the engine's behalf; the dispatch below stays private so every other
  /// caller goes through Execute/ExecuteBatch.
  friend class QueryScheduler;

  /// Plan choice + dispatch. `sweep_cache` overrides the stream's
  /// artifact cache for the executors (nullptr = standalone execution);
  /// `frameql` and `trace` feed the ExecutionReport when
  /// options_.collect_reports is on (trace is null otherwise);
  /// `correlation_id` tags the plan-choice log line (cid=N).
  Result<QueryOutput> ExecutePrepared(StreamData* stream,
                                      const AnalyzedQuery& query,
                                      ArtifactCache* sweep_cache,
                                      const std::string& frameql,
                                      std::shared_ptr<obs::QueryTrace> trace,
                                      int64_t correlation_id);

  Result<QueryOutput> ExecuteCountDistinct(StreamData* stream,
                                           const AnalyzedQuery& query,
                                           obs::QueryTrace* trace,
                                           obs::ExecutionReport* report);
  Result<QueryOutput> ExecuteBinarySelect(StreamData* stream,
                                          const AnalyzedQuery& query,
                                          ArtifactCache* sweep_cache,
                                          obs::QueryTrace* trace);
  Result<QueryOutput> ExecuteFullScan(StreamData* stream,
                                      const AnalyzedQuery& query,
                                      obs::QueryTrace* trace,
                                      obs::ExecutionReport* report);

  VideoCatalog* catalog_;
  EngineOptions options_;
  UdfRegistry udfs_;
  /// StatusRegistry tokens held while options_.export_statusz.
  std::vector<int64_t> statusz_tokens_;
};

}  // namespace blazeit

#endif  // BLAZEIT_CORE_ENGINE_H_
