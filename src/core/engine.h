#ifndef BLAZEIT_CORE_ENGINE_H_
#define BLAZEIT_CORE_ENGINE_H_

#include <string>
#include <vector>

#include "core/aggregation.h"
#include "core/catalog.h"
#include "core/optimizer.h"
#include "core/scrubbing.h"
#include "core/selection.h"
#include "core/udf.h"
#include "sim/cost_model.h"
#include "util/status.h"

namespace blazeit {

/// Per-query execution options forwarded to the executors.
struct EngineOptions {
  AggregateOptions aggregate;
  ScrubOptions scrub;
  SelectionOptions selection;
};

/// Everything a FrameQL query can return.
struct QueryOutput {
  QueryKind kind = QueryKind::kExhaustive;
  PlanKind plan = PlanKind::kFullScan;
  /// Aggregates: the (frame-averaged or total) count estimate.
  double scalar = 0.0;
  /// Scrubbing / binary selection / exhaustive: matching frames.
  std::vector<int64_t> frames;
  /// Content-based selection: matching (frame, detection) rows.
  std::vector<SelectionRow> rows;
  /// Simulated cost of executing the query.
  CostMeter cost;
  /// The optimizer's plan description.
  std::string plan_description;
};

/// The BlazeIt engine: the public entry point tying everything together.
/// Parse -> analyze -> rule-based plan choice -> execute (Figure 2).
///
///   VideoCatalog catalog;
///   catalog.AddStream(TaipeiConfig());
///   BlazeItEngine engine(&catalog);
///   auto out = engine.Execute(
///       "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' "
///       "ERROR WITHIN 0.1 AT CONFIDENCE 95%");
class BlazeItEngine {
 public:
  /// `catalog` must outlive the engine.
  explicit BlazeItEngine(VideoCatalog* catalog, EngineOptions options = {});

  /// Parses, optimizes, and executes one FrameQL query.
  Result<QueryOutput> Execute(const std::string& frameql);

  /// UDFs available to queries (register custom ones here).
  UdfRegistry* mutable_udfs() { return &udfs_; }
  const UdfRegistry& udfs() const { return udfs_; }

  const EngineOptions& options() const { return options_; }
  EngineOptions* mutable_options() { return &options_; }

 private:
  Result<QueryOutput> ExecuteCountDistinct(StreamData* stream,
                                           const AnalyzedQuery& query);
  Result<QueryOutput> ExecuteBinarySelect(StreamData* stream,
                                          const AnalyzedQuery& query);
  Result<QueryOutput> ExecuteFullScan(StreamData* stream,
                                      const AnalyzedQuery& query);

  VideoCatalog* catalog_;
  EngineOptions options_;
  UdfRegistry udfs_;
};

}  // namespace blazeit

#endif  // BLAZEIT_CORE_ENGINE_H_
