#ifndef BLAZEIT_CORE_AGGREGATION_H_
#define BLAZEIT_CORE_AGGREGATION_H_

#include <optional>
#include <vector>

#include "core/catalog.h"
#include "frameql/analyzer.h"
#include "nn/specialized_nn.h"
#include "sim/cost_model.h"
#include "stats/bootstrap.h"
#include "util/status.h"

namespace blazeit {

namespace obs {
class QueryTrace;  // obs/trace.h
}

/// Which path Algorithm 1 ended up taking.
enum class AggregateMethod {
  kQueryRewrite,     // specialized NN accurate enough; ran it alone
  kControlVariates,  // NN as control variate + detector sampling
  kPlainAqp,         // no/insufficient training data: naive AQP
};

const char* AggregateMethodName(AggregateMethod method);

struct AggregateOptions {
  SpecializedNNConfig nn;
  /// Sample-size growth per adaptive round.
  double growth = 0.2;
  int bootstrap_resamples = 200;
  /// Minimum number of positive training frames for specialization
  /// ("sufficient training data" test of Algorithm 1).
  int64_t min_positive_examples = 50;
  /// Ablation knobs for the Section 10.2 comparisons.
  bool allow_query_rewrite = true;
  bool allow_control_variates = true;
  uint64_t seed = 1;
};

struct AggregateResult {
  /// Frame-averaged count estimate (FCOUNT semantics).
  double estimate = 0.0;
  AggregateMethod method = AggregateMethod::kPlainAqp;
  /// Simulated cost of the run (the paper's runtime).
  CostMeter cost;
  /// Object-detection calls consumed (sample complexity).
  int64_t detection_calls = 0;
  /// Bootstrap error bound of the specialized NN on the held-out day (only
  /// meaningful when a NN was trained).
  double nn_error_bound = 0.0;
  /// Pearson correlation between NN and detector counts over the sampled
  /// frames (control-variates path).
  double nn_correlation = 0.0;
  int64_t samples_used = 0;
};

/// Executes aggregation queries per Algorithm 1: train a specialized
/// counting NN if the training data allows; rewrite the query onto the NN
/// when its held-out bootstrap error is inside the user's tolerance;
/// otherwise use the NN as a control variate for adaptive sampling; with
/// no usable NN, fall back to plain AQP.
class AggregationExecutor {
 public:
  /// `stream` must outlive the executor. `sweep_cache` overrides the
  /// stream's artifact cache (ExecuteBatch hands the batch's
  /// SweepCacheView in here so concurrent queries share NN sweeps);
  /// nullptr keeps the stream's persistent cache. `trace` (nullable)
  /// receives train/sweep/estimate stage spans.
  AggregationExecutor(StreamData* stream, AggregateOptions options = {},
                      ArtifactCache* sweep_cache = nullptr,
                      obs::QueryTrace* trace = nullptr);

  /// Runs FCOUNT(class) ERROR WITHIN `error` AT CONFIDENCE `confidence`
  /// over the test-day frames in `window` (default: the whole day). The
  /// estimate is the frame-averaged count *within the window*; sampling,
  /// the NN sweep, and the control-variate correlation all restrict to it.
  Result<AggregateResult> Run(int class_id, double error, double confidence,
                              FrameWindow window = FrameWindow{});

  /// Per-frame expected counts over the last Run's window, from the NN it
  /// trained (empty if the plain-AQP path was taken); used by benchmarks.
  const std::vector<float>& nn_counts() const { return nn_counts_; }

  /// The held-out bootstrap result from the last Run, if a NN was trained.
  const std::optional<BootstrapResult>& nn_bootstrap() const {
    return nn_bootstrap_;
  }

 private:
  Result<AggregateResult> RunPlainAqp(int class_id, double error,
                                      double confidence, FrameWindow window,
                                      CostMeter meter);

  StreamData* stream_;
  ArtifactCache* cache_;
  AggregateOptions options_;
  obs::QueryTrace* trace_;
  std::vector<float> nn_counts_;
  std::optional<BootstrapResult> nn_bootstrap_;
};

}  // namespace blazeit

#endif  // BLAZEIT_CORE_AGGREGATION_H_
