#ifndef BLAZEIT_CORE_SCRUBBING_H_
#define BLAZEIT_CORE_SCRUBBING_H_

#include <vector>

#include "core/catalog.h"
#include "frameql/analyzer.h"
#include "nn/specialized_nn.h"
#include "sim/cost_model.h"
#include "util/status.h"

namespace blazeit {

namespace obs {
class QueryTrace;  // obs/trace.h
}

struct ScrubOptions {
  SpecializedNNConfig nn;
  /// Half-width (frames) of the moving average applied to the per-frame
  /// confidences before ranking. Useful when the NN's per-frame error is
  /// noise-dominated; with the pooled-feature NNs the ablation bench shows
  /// raw confidences rank better, so smoothing is off by default.
  int64_t confidence_smoothing = 0;
  /// Combine multi-class tail probabilities as a product (joint event)
  /// instead of the paper's sum. Off by default: the sum matches the paper
  /// and measures better in bench_ablation_scrubbing.
  bool conjunctive_product = false;
  uint64_t seed = 1;
  /// Consult the detection store's per-segment sketches (see
  /// storage/segment_sketch.h) to skip provably non-matching segments:
  /// the NN scores only sketch-candidate frames (with smoothing off) and
  /// both the verification walk and the scan fallback skip refuted
  /// segments. Returned frames are bit-identical to the unindexed run —
  /// only the charged NN/detector calls drop. A no-op unless the stream
  /// is store-backed and sketches are built and current.
  bool use_store_index = false;
  /// With use_store_index: the sequential-scan fallback walks candidate
  /// runs densest-first (NeedleTail-style) instead of ascending, so LIMIT
  /// is typically satisfied after far fewer detector calls. This changes
  /// the *discovery order* (and, under GAP, possibly which frames are
  /// returned), so it is opt-in and outside the bit-identity contract.
  bool density_first = false;
};

struct ScrubResult {
  /// Frames satisfying the predicate, in discovery (confidence) order —
  /// the paper notes results are not returned in temporal order.
  std::vector<int64_t> frames;
  /// Full simulated cost including NN training and inference.
  CostMeter cost;
  /// Detection-only seconds: the cost if the specialized NN's scores were
  /// pre-indexed ("BlazeIt (indexed)" in Figure 6).
  double indexed_seconds = 0.0;
  /// Sample complexity: object-detection calls consumed.
  int64_t detection_calls = 0;
  /// True when LIMIT frames were found. Distinct from scan_exhausted: a
  /// query with fewer matches than LIMIT ends with limit_satisfied ==
  /// false and scan_exhausted == true (the two used to be conflated in a
  /// single `found_all` flag).
  bool limit_satisfied = false;
  /// True when every candidate frame of the window was examined — the
  /// honest "there is nothing more to find" signal.
  bool scan_exhausted = false;
  /// True when the training day had no instances of the query and the
  /// executor fell back to a sequential scan (Section 7.1).
  bool fell_back_to_scan = false;
  /// Sketch-index activity, for the query's ExecutionReport: whether the
  /// index was consulted, whether a current index pruned the walk, and
  /// the window vs. candidate frame counts (equal when unpruned).
  bool sketch_consulted = false;
  bool sketch_pruned = false;
  int64_t sketch_window_frames = 0;
  int64_t sketch_candidate_frames = 0;
};

/// Executes cardinality-limited scrubbing queries (Section 7): trains one
/// specialized NN with a count head per queried class, scores every unseen
/// frame by the summed probability of meeting the per-class minimum
/// counts, and runs the full detector down the confidence ranking until
/// LIMIT verified frames (GAP apart) are found. Only true positives are
/// ever returned because every candidate is verified by the detector.
class ScrubbingExecutor {
 public:
  /// `stream` must outlive the executor. `sweep_cache` overrides the
  /// stream's artifact cache (ExecuteBatch hands the batch's
  /// SweepCacheView in here so concurrent queries share NN sweeps);
  /// nullptr keeps the stream's persistent cache. `trace` (nullable)
  /// receives train/sweep/verify stage spans.
  ScrubbingExecutor(StreamData* stream, ScrubOptions options = {},
                    ArtifactCache* sweep_cache = nullptr,
                    obs::QueryTrace* trace = nullptr);

  /// Finds LIMIT matching frames among the test-day frames in `window`
  /// (default: the whole day).
  Result<ScrubResult> Run(const std::vector<ClassCountRequirement>& reqs,
                          int64_t limit, int64_t gap,
                          FrameWindow window = FrameWindow{});

  /// Confidence scores over the last Run's scored frames in ascending
  /// frame order — the whole window, or only the sketch-candidate frames
  /// when index pruning restricted the sweep (empty if the executor fell
  /// back to a scan); used by benchmarks.
  const std::vector<float>& confidences() const { return confidences_; }

 private:
  struct FrameRanges;  // candidate subranges of the window, in walk order

  Result<ScrubResult> RunSequentialFallback(
      const std::vector<ClassCountRequirement>& reqs, int64_t limit,
      int64_t gap, CostMeter meter, const FrameRanges& ranges);

  StreamData* stream_;
  ArtifactCache* cache_;
  ScrubOptions options_;
  obs::QueryTrace* trace_;
  std::vector<float> confidences_;
};

/// True if the frame's per-class counts satisfy every requirement.
bool SatisfiesRequirements(const StreamData& stream, int64_t frame,
                           const std::vector<ClassCountRequirement>& reqs);

/// Number of test-day frames satisfying the requirements, and the number
/// of distinct events (maximal runs of consecutive satisfying frames) —
/// the "Instances" column of Table 6.
struct RequirementStats {
  int64_t matching_frames = 0;
  int64_t events = 0;
};
RequirementStats CountRequirementInstances(
    const StreamData& stream, const std::vector<ClassCountRequirement>& reqs);

}  // namespace blazeit

#endif  // BLAZEIT_CORE_SCRUBBING_H_
