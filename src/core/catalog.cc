#include "core/catalog.h"

#include "util/string_util.h"

namespace blazeit {

Status VideoCatalog::AddStream(const StreamConfig& config, DayLengths lengths,
                               DetectorNoiseConfig detector_noise) {
  if (streams_.count(config.name)) {
    return Status::InvalidArgument(
        StrFormat("stream '%s' already registered", config.name.c_str()));
  }
  auto data = std::make_unique<StreamData>();
  data->config = config;

  auto train = SyntheticVideo::Create(config, kTrainDaySeed, lengths.train);
  BLAZEIT_RETURN_NOT_OK(train.status());
  data->train_day = std::move(train).value();

  auto held = SyntheticVideo::Create(config, kThresholdDaySeed,
                                     lengths.held_out);
  BLAZEIT_RETURN_NOT_OK(held.status());
  data->held_out_day = std::move(held).value();

  auto test = SyntheticVideo::Create(config, kTestDaySeed, lengths.test);
  BLAZEIT_RETURN_NOT_OK(test.status());
  data->test_day = std::move(test).value();

  data->detector_impl = std::make_unique<SimulatedDetector>(detector_noise);
  data->detector = std::make_unique<CachedDetector>(data->detector_impl.get());

  data->train_labels = std::make_unique<LabeledSet>(
      data->train_day.get(), data->detector.get(), config.detection_threshold);
  data->held_out_labels = std::make_unique<LabeledSet>(
      data->held_out_day.get(), data->detector.get(),
      config.detection_threshold);
  data->test_labels = std::make_unique<LabeledSet>(
      data->test_day.get(), data->detector.get(), config.detection_threshold);

  streams_[config.name] = std::move(data);
  return Status::OK();
}

Result<StreamData*> VideoCatalog::GetStream(const std::string& name) {
  auto it = streams_.find(name);
  if (it == streams_.end()) {
    return Status::NotFound(
        StrFormat("stream '%s' not registered", name.c_str()));
  }
  return it->second.get();
}

std::vector<std::string> VideoCatalog::StreamNames() const {
  std::vector<std::string> names;
  names.reserve(streams_.size());
  for (const auto& [name, _] : streams_) names.push_back(name);
  return names;
}

}  // namespace blazeit
