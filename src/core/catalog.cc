#include "core/catalog.h"

#include "storage/persistent_cached_detector.h"
#include "util/string_util.h"

namespace blazeit {

Status VideoCatalog::EnableDetectionStore(const std::string& dir) {
  if (store_ != nullptr) {
    return Status::FailedPrecondition(
        StrFormat("detection store already enabled at '%s'",
                  store_->dir().c_str()));
  }
  auto store = DetectionStore::Open(dir);
  BLAZEIT_RETURN_NOT_OK(store.status());
  store_ = std::move(store).value();
  artifact_cache_ = std::make_unique<StoreArtifactCache>(store_.get());
  // Streams added before the store was enabled keep their process-local
  // caches; only new streams read/write the store.
  return Status::OK();
}

Status VideoCatalog::FlushDetectionStore() {
  if (store_ == nullptr) return Status::OK();
  return store_->Flush();
}

Status VideoCatalog::AddStream(const StreamConfig& config, DayLengths lengths,
                               DetectorNoiseConfig detector_noise) {
  if (streams_.count(config.name)) {
    return Status::InvalidArgument(
        StrFormat("stream '%s' already registered", config.name.c_str()));
  }
  auto data = std::make_unique<StreamData>();
  data->config = config;

  auto train = SyntheticVideo::Create(config, kTrainDaySeed, lengths.train);
  BLAZEIT_RETURN_NOT_OK(train.status());
  data->train_day = std::move(train).value();

  auto held = SyntheticVideo::Create(config, kThresholdDaySeed,
                                     lengths.held_out);
  BLAZEIT_RETURN_NOT_OK(held.status());
  data->held_out_day = std::move(held).value();

  auto test = SyntheticVideo::Create(config, kTestDaySeed, lengths.test);
  BLAZEIT_RETURN_NOT_OK(test.status());
  data->test_day = std::move(test).value();

  data->detector_impl = std::make_unique<SimulatedDetector>(detector_noise);
  if (store_ != nullptr) {
    auto persistent = std::make_unique<PersistentCachedDetector>(
        data->detector_impl.get(), store_.get());
    data->detection_store = store_.get();
    data->test_detections_ns = persistent->StreamNamespace(*data->test_day);
    data->detector = std::move(persistent);
    data->artifact_cache = artifact_cache_.get();
  } else {
    data->detector = std::make_unique<CachedDetector>(
        data->detector_impl.get());
  }

  data->train_labels = std::make_unique<LabeledSet>(
      data->train_day.get(), data->detector.get(), config.detection_threshold);
  data->held_out_labels = std::make_unique<LabeledSet>(
      data->held_out_day.get(), data->detector.get(),
      config.detection_threshold);
  data->test_labels = std::make_unique<LabeledSet>(
      data->test_day.get(), data->detector.get(), config.detection_threshold);

  streams_[config.name] = std::move(data);
  return Status::OK();
}

Result<StreamData*> VideoCatalog::GetStream(const std::string& name) {
  auto it = streams_.find(name);
  if (it == streams_.end()) {
    return Status::NotFound(
        StrFormat("stream '%s' not registered", name.c_str()));
  }
  return it->second.get();
}

std::vector<std::string> VideoCatalog::StreamNames() const {
  std::vector<std::string> names;
  names.reserve(streams_.size());
  for (const auto& [name, _] : streams_) names.push_back(name);
  return names;
}

}  // namespace blazeit
