#ifndef BLAZEIT_CORE_SELECTION_H_
#define BLAZEIT_CORE_SELECTION_H_

#include <string>
#include <vector>

#include "core/catalog.h"
#include "core/udf.h"
#include "detect/detection.h"
#include "frameql/analyzer.h"
#include "nn/specialized_nn.h"
#include "sim/cost_model.h"
#include "util/status.h"
#include "video/image.h"

namespace blazeit {

namespace obs {
class QueryTrace;  // obs/trace.h
}

/// Knobs enabling each inferred filter class; the Figure 11 factor
/// analysis and lesion study toggle these.
struct SelectionOptions {
  bool use_label_filter = true;
  bool use_content_filter = true;
  bool use_temporal_filter = true;
  bool use_spatial_filter = true;
  SpecializedNNConfig nn;
  double calibration_margin = 0.05;
  uint64_t seed = 1;
};

/// One row of the selection output: a detection satisfying the full
/// predicate in one processed frame.
struct SelectionRow {
  int64_t frame = 0;
  Detection detection;
};

/// A maximal run of nearby matching frames, used for event-level recall
/// (our false-negative accounting).
struct SelectionEvent {
  int64_t first_frame = 0;
  int64_t last_frame = 0;
};

struct SelectionResult {
  std::vector<SelectionRow> rows;
  std::vector<SelectionEvent> events;
  CostMeter cost;
  /// Frames on which the full detector ran.
  int64_t frames_detected = 0;
  /// Candidate frames after temporal filtering.
  int64_t candidates = 0;
  /// Which filters the optimizer actually deployed, e.g.
  /// "temporal(stride=7) content(redness>=0.021) label(th=0.83) spatial".
  std::string plan;
};

/// Executes content-based selection (Section 8): infers label, content,
/// temporal, and spatial filters from the query, calibrates the
/// statistical ones for no false negatives on the held-out day, and runs
/// the cascade cheapest-first before calling the detector on surviving
/// frames. All errors are false negatives: every returned row was verified
/// by the full detector.
class SelectionExecutor {
 public:
  /// `stream` and `udfs` must outlive the executor. `sweep_cache`
  /// overrides the stream's artifact cache (ExecuteBatch hands the
  /// batch's SweepCacheView in here so concurrent queries share NN and
  /// content-filter sweeps); nullptr keeps the stream's persistent cache.
  /// `trace` (nullable) receives calibrate/train/cascade/verify spans.
  SelectionExecutor(StreamData* stream, const UdfRegistry* udfs,
                    SelectionOptions options = {},
                    ArtifactCache* sweep_cache = nullptr,
                    obs::QueryTrace* trace = nullptr);

  Result<SelectionResult> Run(const AnalyzedQuery& query);

 private:
  /// Whether any thresholded detection in the frame satisfies the object-
  /// level predicate (class, ROI, area, UDFs); fills `rows` if non-null.
  /// `render_scratch` is the caller's reusable render buffer (per-worker
  /// in the parallel held-out sweep, per-Run in the serial verify stage);
  /// rendered lazily, at most once per frame, always fully overwritten.
  bool FrameMatches(const LabeledSet& labels, int64_t frame,
                    const AnalyzedQuery& query,
                    std::vector<SelectionRow>* rows,
                    Image* render_scratch) const;

  StreamData* stream_;
  const UdfRegistry* udfs_;
  ArtifactCache* cache_;
  SelectionOptions options_;
  obs::QueryTrace* trace_;
};

/// Test-day frames whose *scene ground truth* satisfies the query
/// predicate, merged into events and filtered by the query's persistence
/// requirement. This is the reference for false-negative-rate accounting
/// in benchmarks (the paper reports FNR for these queries).
std::vector<SelectionEvent> GroundTruthSelectionEvents(
    const SyntheticVideo& video, const AnalyzedQuery& query,
    const UdfRegistry& udfs);

}  // namespace blazeit

#endif  // BLAZEIT_CORE_SELECTION_H_
