#include "core/labeled_set.h"

#include <algorithm>

namespace blazeit {

LabeledSet::LabeledSet(const SyntheticVideo* day,
                       const ObjectDetector* detector,
                       double score_threshold)
    : day_(day), detector_(detector), score_threshold_(score_threshold) {}

void LabeledSet::BuildAllCounts() const {
  if (built_.load(std::memory_order_acquire)) return;
  util::MutexLock lock(build_mu_);
  if (built_.load(std::memory_order_relaxed)) return;
  for (int c = 0; c < kNumClasses; ++c) {
    counts_[c].assign(static_cast<size_t>(day_->num_frames()), 0);
  }
  for (int64_t t = 0; t < day_->num_frames(); ++t) {
    for (const Detection& det : detector_->Detect(*day_, t)) {
      if (det.score >= score_threshold_) {
        ++counts_[det.class_id][static_cast<size_t>(t)];
      }
    }
  }
  built_.store(true, std::memory_order_release);
}

const std::vector<int>& LabeledSet::Counts(int class_id) const {
  BuildAllCounts();
  return counts_.at(class_id);
}

std::vector<Detection> LabeledSet::DetectionsAt(int64_t frame) const {
  std::vector<Detection> out;
  for (const Detection& det : detector_->Detect(*day_, frame)) {
    if (det.score >= score_threshold_) out.push_back(det);
  }
  return out;
}

double LabeledSet::Occupancy(int class_id) const {
  const std::vector<int>& counts = Counts(class_id);
  int64_t occupied = 0;
  for (int c : counts) {
    if (c > 0) ++occupied;
  }
  return counts.empty() ? 0.0
                        : static_cast<double>(occupied) /
                              static_cast<double>(counts.size());
}

int LabeledSet::MaxCount(int class_id) const {
  const std::vector<int>& counts = Counts(class_id);
  int max_c = 0;
  for (int c : counts) max_c = std::max(max_c, c);
  return max_c;
}

}  // namespace blazeit
