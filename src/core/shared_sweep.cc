#include "core/shared_sweep.h"

#include "obs/metrics.h"

namespace blazeit {

namespace {

/// Registered kUnstable: which query of a concurrent batch group hits the
/// shared tier (vs. computing and promoting) depends on scheduling — the
/// values are scheduling-dependent even though query outputs are not (the
/// shared value is bit-identical to recomputation by contract).
obs::Counter* SharedHits() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "cache.hits{tier=shared}", obs::Stability::kUnstable);
  return c;
}

obs::Counter* SharedPromotions() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "cache.promotions{tier=shared}", obs::Stability::kUnstable);
  return c;
}

}  // namespace

int64_t SharedSweepCache::frame_float_records() const {
  util::MutexLock lock(mu_);
  return static_cast<int64_t>(floats_.size());
}

int64_t SharedSweepCache::frame_double_records() const {
  util::MutexLock lock(mu_);
  return static_cast<int64_t>(doubles_.size());
}

int64_t SharedSweepCache::blob_records() const {
  util::MutexLock lock(mu_);
  return static_cast<int64_t>(blobs_.size());
}

bool SharedSweepCache::GetFloats(uint64_t ns, int64_t frame,
                                 std::vector<float>* out) const {
  util::MutexLock lock(mu_);
  auto it = floats_.find({ns, frame});
  if (it == floats_.end()) return false;
  *out = it->second;
  return true;
}

void SharedSweepCache::PutFloats(uint64_t ns, int64_t frame,
                                 const std::vector<float>& v) {
  util::MutexLock lock(mu_);
  floats_.emplace(Key{ns, frame}, v);  // first write wins
}

bool SharedSweepCache::GetDoubles(uint64_t ns, int64_t frame,
                                  std::vector<double>* out) const {
  util::MutexLock lock(mu_);
  auto it = doubles_.find({ns, frame});
  if (it == doubles_.end()) return false;
  *out = it->second;
  return true;
}

void SharedSweepCache::PutDoubles(uint64_t ns, int64_t frame,
                                  const std::vector<double>& v) {
  util::MutexLock lock(mu_);
  doubles_.emplace(Key{ns, frame}, v);
}

bool SharedSweepCache::GetBlob(uint64_t ns, std::vector<float>* out) const {
  util::MutexLock lock(mu_);
  auto it = blobs_.find(ns);
  if (it == blobs_.end()) return false;
  *out = it->second;
  return true;
}

void SharedSweepCache::PutBlob(uint64_t ns, const std::vector<float>& v) {
  util::MutexLock lock(mu_);
  blobs_.emplace(ns, v);
}

bool SweepCacheView::GetFrameFloats(uint64_t ns, int64_t frame,
                                    std::vector<float>* out) {
  if (shared_->GetFloats(ns, frame, out)) {
    ++shared_float_hits_;
    SharedHits()->Add();
    return true;
  }
  if (underlying_ != nullptr && underlying_->GetFrameFloats(ns, frame, out)) {
    // Promote so later queries of the batch hit the memory tier; the
    // persistent value is bit-identical to recomputation by contract.
    shared_->PutFloats(ns, frame, *out);
    SharedPromotions()->Add();
    return true;
  }
  return false;
}

void SweepCacheView::PutFrameFloats(uint64_t ns, int64_t frame,
                                    const std::vector<float>& values) {
  shared_->PutFloats(ns, frame, values);
  if (underlying_ != nullptr) underlying_->PutFrameFloats(ns, frame, values);
}

bool SweepCacheView::GetFrameDoubles(uint64_t ns, int64_t frame,
                                     std::vector<double>* out) {
  if (shared_->GetDoubles(ns, frame, out)) {
    ++shared_double_hits_;
    SharedHits()->Add();
    return true;
  }
  if (underlying_ != nullptr &&
      underlying_->GetFrameDoubles(ns, frame, out)) {
    shared_->PutDoubles(ns, frame, *out);
    SharedPromotions()->Add();
    return true;
  }
  return false;
}

void SweepCacheView::PutFrameDoubles(uint64_t ns, int64_t frame,
                                     const std::vector<double>& values) {
  shared_->PutDoubles(ns, frame, values);
  if (underlying_ != nullptr) underlying_->PutFrameDoubles(ns, frame, values);
}

bool SweepCacheView::GetBlob(uint64_t ns, std::vector<float>* out) {
  if (shared_->GetBlob(ns, out)) {
    ++shared_blob_hits_;
    SharedHits()->Add();
    return true;
  }
  if (underlying_ != nullptr && underlying_->GetBlob(ns, out)) {
    shared_->PutBlob(ns, *out);
    SharedPromotions()->Add();
    return true;
  }
  return false;
}

void SweepCacheView::PutBlob(uint64_t ns, const std::vector<float>& values) {
  shared_->PutBlob(ns, values);
  if (underlying_ != nullptr) underlying_->PutBlob(ns, values);
}

}  // namespace blazeit
