#ifndef BLAZEIT_CORE_OPTIMIZER_H_
#define BLAZEIT_CORE_OPTIMIZER_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/catalog.h"
#include "frameql/analyzer.h"

namespace blazeit {

/// The physical plan the rule-based optimizer picked for a query.
enum class PlanKind {
  kSpecializedAggregation,  // Algorithm 1 (rewrite or control variates)
  kAqpAggregation,          // no training data: plain sampling
  kTrackerCountDistinct,    // detector + IOU tracker over the video
  kImportanceScrubbing,     // specialized-NN-ranked verification
  kScanScrubbing,           // no training instances: sequential scan
  kFilteredSelection,       // filter cascade + detection
  kBinaryDetection,         // NoScope replication (label filter + verify)
  kFullScan,                // exhaustive detection
};

const char* PlanKindName(PlanKind kind);

struct PlanChoice {
  PlanKind kind = PlanKind::kFullScan;
  /// Human-readable justification, e.g. "aggregation with error tolerance;
  /// 8123 positive training frames -> specialize".
  std::string rationale;
};

/// BlazeIt's rule-based optimizer (Section 5): inspects the analyzed query
/// and the stream's training data to choose a plan. Cheap filters are
/// almost always worth deploying (a 100,000 fps filter pays for itself by
/// discarding 0.003% of frames), so rules rather than cost search suffice.
PlanChoice ChoosePlan(const AnalyzedQuery& query, StreamData* stream);

/// The shared-plan pass of multi-query batching: maps an analyzed query
/// to the key of the batch group it executes in. Two queries get the same
/// key exactly when their plans train the same specialized NN over the
/// same stream (same executor kind and hence train-seed salt, same queried
/// classes and hence training labels) — so running them serially within
/// one group lets the first execution's training run and per-frame sweep
/// feed the rest through the batch's SharedSweepCache, while distinct
/// keys carry no shared NN work and can run concurrently.
///
/// Plans that train nothing (count-distinct, full scans) get a key unique
/// to `query_index`, i.e. a singleton group, maximizing concurrency.
uint64_t SharedSweepGroupKey(const AnalyzedQuery& query, size_t query_index);

}  // namespace blazeit

#endif  // BLAZEIT_CORE_OPTIMIZER_H_
