#include "core/aggregation.h"

#include <algorithm>
#include <numeric>

#include "obs/trace.h"
#include "stats/control_variates.h"
#include "stats/online_stats.h"
#include "stats/sampler.h"
#include "util/logging.h"

namespace blazeit {

const char* AggregateMethodName(AggregateMethod method) {
  switch (method) {
    case AggregateMethod::kQueryRewrite:
      return "query-rewrite";
    case AggregateMethod::kControlVariates:
      return "control-variates";
    case AggregateMethod::kPlainAqp:
      return "plain-aqp";
  }
  return "?";
}

AggregationExecutor::AggregationExecutor(StreamData* stream,
                                         AggregateOptions options,
                                         ArtifactCache* sweep_cache,
                                         obs::QueryTrace* trace)
    : stream_(stream),
      cache_(sweep_cache != nullptr ? sweep_cache : stream->artifact_cache),
      options_(options),
      trace_(trace) {}

Result<AggregateResult> AggregationExecutor::Run(int class_id, double error,
                                                 double confidence,
                                                 FrameWindow window) {
  if (error <= 0 || confidence <= 0 || confidence >= 1) {
    return Status::InvalidArgument(
        "aggregation requires error > 0 and confidence in (0,1)");
  }
  window = ClampFrameWindow(window, stream_->test_day->num_frames());
  nn_counts_.clear();
  nn_bootstrap_.reset();
  if (window.end <= window.begin) {
    // Range entirely past the recorded day: zero frames satisfy the
    // predicate, so the count over the range is exactly 0 — consistent
    // with the empty results the other executors return, and free.
    AggregateResult empty;
    return empty;
  }
  CostMeter meter;

  // --- sufficiency of training data (Algorithm 1 precondition) ---
  const std::vector<int>& train_counts =
      stream_->train_labels->Counts(class_id);
  int64_t positives = 0;
  for (int c : train_counts) {
    if (c > 0) ++positives;
  }
  if (positives < options_.min_positive_examples) {
    BLAZEIT_LOG(kDebug) << "insufficient training data for class "
                        << ClassName(class_id) << " (" << positives
                        << " positive frames); defaulting to AQP";
    return RunPlainAqp(class_id, error, confidence, window, meter);
  }

  // --- train the specialized counting NN on the labeled day ---
  SpecializedNNConfig nn_config = options_.nn;
  nn_config.train.seed = HashCombine(options_.seed, 0xaaaa);
  nn_config.cache = cache_;
  Result<SpecializedNN> trained = [&] {
    obs::TraceSpan span(trace_, "train", &meter);
    return SpecializedNN::Train(*stream_->train_day, {train_counts},
                                nn_config);
  }();
  BLAZEIT_RETURN_NOT_OK(trained.status());
  SpecializedNN nn = std::move(trained).value();
  meter.ChargeTraining(nn.trained_frames());

  // --- estimate the NN's error on the held-out day via the bootstrap ---
  {
    obs::TraceSpan span(trace_, "holdout-bootstrap", &meter);
    const SyntheticVideo& held_out = *stream_->held_out_day;
    const std::vector<int>& held_truth =
        stream_->held_out_labels->Counts(class_id);
    std::vector<int64_t> held_frames(
        static_cast<size_t>(held_out.num_frames()));
    std::iota(held_frames.begin(), held_frames.end(), 0);
    std::vector<float> held_pred =
        nn.ExpectedCountsForFrames(held_out, held_frames);
    std::vector<double> predicted(held_pred.begin(), held_pred.end());
    std::vector<double> truth(held_truth.begin(), held_truth.end());
    meter.ChargeSpecializedNN(held_out.num_frames());
    meter.ChargeThresholding(held_out.num_frames());
    auto boot = BootstrapAbsError(predicted, truth, confidence,
                                  options_.bootstrap_resamples,
                                  HashCombine(options_.seed, 0xbbbb));
    BLAZEIT_RETURN_NOT_OK(boot.status());
    nn_bootstrap_ = boot.value();
  }

  // --- run the NN over the unseen test day (both paths need it) ---
  // The full-day NN sweeps (here and on the held-out day above) are the
  // aggregation scan's cost; they shard across the exec pool inside
  // ProbsForFrames. Every reduction *over* the resulting counts below
  // (OnlineStats means, the bootstrap, OnlineCovariance) deliberately
  // stays a serial fixed-order chain — floating-point accumulation order
  // is part of the output contract, so only the per-frame map work is
  // parallel, never the folds.
  const SyntheticVideo& test = *stream_->test_day;
  const int64_t n_window = window.end - window.begin;
  std::vector<int64_t> test_frames(static_cast<size_t>(n_window));
  std::iota(test_frames.begin(), test_frames.end(), window.begin);
  {
    obs::TraceSpan span(trace_, "test-sweep", &meter);
    nn_counts_ = nn.ExpectedCountsForFrames(test, test_frames);
    meter.ChargeSpecializedNN(n_window);
  }

  AggregateResult result;
  result.nn_error_bound = nn_bootstrap_->error_quantile;

  // --- Algorithm 1 branch: rewrite if the NN is provably accurate ---
  if (options_.allow_query_rewrite && nn_bootstrap_->error_quantile < error) {
    obs::TraceSpan span(trace_, "estimate:query-rewrite", &meter);
    OnlineStats stats;
    for (float v : nn_counts_) stats.Add(v);
    result.estimate = stats.Mean();
    result.method = AggregateMethod::kQueryRewrite;
    result.cost = meter;
    result.detection_calls = meter.detection_calls();
    return result;
  }

  if (!options_.allow_control_variates) {
    return RunPlainAqp(class_id, error, confidence, window, meter);
  }

  // --- control variates: NN as the cheap correlated auxiliary ---
  obs::TraceSpan estimate_span(trace_, "estimate:control-variates", &meter);
  // Sampler indices are window-relative: index i means test frame
  // window.begin + i, so the proxy/oracle pair stays aligned with
  // nn_counts_ (which holds only window frames).
  const std::vector<int>& test_truth = stream_->test_labels->Counts(class_id);
  ControlVariate cv;
  {
    OnlineStats proxy_stats;
    for (float v : nn_counts_) proxy_stats.Add(v);
    cv.tau = proxy_stats.Mean();
    cv.variance = proxy_stats.PopulationVariance();
  }
  cv.proxy = [this](int64_t frame) {
    return static_cast<double>(nn_counts_[static_cast<size_t>(frame)]);
  };
  CostMeter* meter_ptr = &meter;
  const int64_t window_begin = window.begin;
  FrameOracle oracle = [&test_truth, meter_ptr, window_begin](int64_t frame) {
    meter_ptr->ChargeDetection();
    return static_cast<double>(
        test_truth[static_cast<size_t>(window_begin + frame)]);
  };
  SamplingConfig sampling;
  sampling.error = error;
  sampling.confidence = confidence;
  sampling.value_range =
      static_cast<double>(stream_->train_labels->MaxCount(class_id)) + 1.0;
  sampling.growth = options_.growth;
  sampling.seed = HashCombine(options_.seed, 0xcccc);
  auto estimate = ControlVariateSample(n_window, oracle, cv, sampling);
  BLAZEIT_RETURN_NOT_OK(estimate.status());

  // Correlation over the window (diagnostic, used by Figure 5 analysis).
  OnlineCovariance corr;
  for (int64_t t = window.begin; t < window.end; ++t) {
    corr.Add(static_cast<double>(test_truth[static_cast<size_t>(t)]),
             static_cast<double>(
                 nn_counts_[static_cast<size_t>(t - window.begin)]));
  }

  result.estimate = estimate.value().estimate;
  result.method = AggregateMethod::kControlVariates;
  result.samples_used = estimate.value().samples_used;
  result.nn_correlation = corr.Correlation();
  result.cost = meter;
  result.detection_calls = meter.detection_calls();
  return result;
}

Result<AggregateResult> AggregationExecutor::RunPlainAqp(int class_id,
                                                         double error,
                                                         double confidence,
                                                         FrameWindow window,
                                                         CostMeter meter) {
  obs::TraceSpan span(trace_, "estimate:plain-aqp", &meter);
  const std::vector<int>& test_truth = stream_->test_labels->Counts(class_id);
  CostMeter* meter_ptr = &meter;
  const int64_t window_begin = window.begin;
  FrameOracle oracle = [&test_truth, meter_ptr, window_begin](int64_t frame) {
    meter_ptr->ChargeDetection();
    return static_cast<double>(
        test_truth[static_cast<size_t>(window_begin + frame)]);
  };
  SamplingConfig sampling;
  sampling.error = error;
  sampling.confidence = confidence;
  sampling.value_range =
      static_cast<double>(stream_->train_labels->MaxCount(class_id)) + 1.0;
  sampling.growth = options_.growth;
  sampling.seed = HashCombine(options_.seed, 0xdddd);
  auto estimate =
      AdaptiveSample(window.end - window.begin, oracle, sampling);
  BLAZEIT_RETURN_NOT_OK(estimate.status());

  AggregateResult result;
  result.estimate = estimate.value().estimate;
  result.method = AggregateMethod::kPlainAqp;
  result.samples_used = estimate.value().samples_used;
  result.cost = meter;
  result.detection_calls = meter.detection_calls();
  return result;
}

}  // namespace blazeit
