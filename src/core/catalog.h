#ifndef BLAZEIT_CORE_CATALOG_H_
#define BLAZEIT_CORE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/labeled_set.h"
#include "detect/cached_detector.h"
#include "detect/simulated_detector.h"
#include "util/status.h"
#include "video/datasets.h"
#include "video/synthetic_video.h"

namespace blazeit {

/// Everything BlazeIt holds per registered stream: three generated days
/// (train / threshold / test, the paper's protocol), the configured object
/// detection method, and the labeled sets over each day.
struct StreamData {
  StreamConfig config;
  std::unique_ptr<SyntheticVideo> train_day;
  std::unique_ptr<SyntheticVideo> held_out_day;
  std::unique_ptr<SyntheticVideo> test_day;
  std::unique_ptr<SimulatedDetector> detector_impl;
  std::unique_ptr<CachedDetector> detector;
  std::unique_ptr<LabeledSet> train_labels;
  std::unique_ptr<LabeledSet> held_out_labels;
  /// Labeled set of the test day = the detector's output replayed during
  /// evaluation; executors *charge* detection cost per logical access.
  std::unique_ptr<LabeledSet> test_labels;

  double score_threshold() const { return config.detection_threshold; }
};

/// Number of frames generated for each of a stream's three days.
struct DayLengths {
  int64_t train = kDefaultTrainFrames;
  int64_t held_out = kDefaultHeldOutFrames;
  int64_t test = kDefaultTestFrames;
};

/// Registry of streams, the FROM-clause namespace of FrameQL.
class VideoCatalog {
 public:
  /// Generates the three days of the stream and registers it. Fails if a
  /// stream of the same name exists or the config is invalid.
  Status AddStream(const StreamConfig& config,
                   DayLengths lengths = DayLengths(),
                   DetectorNoiseConfig detector_noise = DetectorNoiseConfig());

  Result<StreamData*> GetStream(const std::string& name);

  std::vector<std::string> StreamNames() const;
  bool Contains(const std::string& name) const {
    return streams_.count(name) > 0;
  }

 private:
  std::map<std::string, std::unique_ptr<StreamData>> streams_;
};

}  // namespace blazeit

#endif  // BLAZEIT_CORE_CATALOG_H_
