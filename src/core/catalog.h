#ifndef BLAZEIT_CORE_CATALOG_H_
#define BLAZEIT_CORE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/labeled_set.h"
#include "detect/cached_detector.h"
#include "detect/simulated_detector.h"
#include "util/artifact_cache.h"
#include "storage/detection_store.h"
#include "storage/store_artifact_cache.h"
#include "util/status.h"
#include "video/datasets.h"
#include "video/synthetic_video.h"

namespace blazeit {

/// Everything BlazeIt holds per registered stream: three generated days
/// (train / threshold / test, the paper's protocol), the configured object
/// detection method, and the labeled sets over each day.
struct StreamData {
  StreamConfig config;
  std::unique_ptr<SyntheticVideo> train_day;
  std::unique_ptr<SyntheticVideo> held_out_day;
  std::unique_ptr<SyntheticVideo> test_day;
  std::unique_ptr<SimulatedDetector> detector_impl;
  /// Memoizing wrapper over detector_impl: a process-local CachedDetector,
  /// or a store-backed PersistentCachedDetector when the catalog has a
  /// detection store enabled.
  std::unique_ptr<ObjectDetector> detector;
  std::unique_ptr<LabeledSet> train_labels;
  std::unique_ptr<LabeledSet> held_out_labels;
  /// Labeled set of the test day = the detector's output replayed during
  /// evaluation; executors *charge* detection cost per logical access.
  std::unique_ptr<LabeledSet> test_labels;
  /// Persistent cache for specialized-NN artifacts; nullptr unless the
  /// catalog has a detection store enabled. Executors pass it into
  /// SpecializedNNConfig::cache. Not owned (lives in the catalog).
  ArtifactCache* artifact_cache = nullptr;
  /// The store behind the detector (nullptr without persistence) and the
  /// namespace the test day's detections live under — where the executors
  /// look for per-segment sketches (storage/segment_sketch.h) when
  /// EngineOptions::use_store_index is on. Not owned (lives in the
  /// catalog).
  DetectionStore* detection_store = nullptr;
  uint64_t test_detections_ns = 0;

  double score_threshold() const { return config.detection_threshold; }
};

/// Number of frames generated for each of a stream's three days.
struct DayLengths {
  int64_t train = kDefaultTrainFrames;
  int64_t held_out = kDefaultHeldOutFrames;
  int64_t test = kDefaultTestFrames;
};

/// Registry of streams, the FROM-clause namespace of FrameQL.
class VideoCatalog {
 public:
  /// Generates the three days of the stream and registers it. Fails if a
  /// stream of the same name exists or the config is invalid.
  Status AddStream(const StreamConfig& config,
                   DayLengths lengths = DayLengths(),
                   DetectorNoiseConfig detector_noise = DetectorNoiseConfig());

  /// Backs all subsequently added streams with a persistent detection
  /// store in `dir` (created if missing): detections and specialized-NN
  /// artifacts are read through from disk and written back, so repeated
  /// runs skip the expensive oracle passes. Corrupt, truncated, or
  /// version-skewed store files fail this call with a descriptive Status.
  /// Call before AddStream; query outputs and simulated costs are
  /// identical with or without a store (see store_invariance_test).
  Status EnableDetectionStore(const std::string& dir);

  /// The store enabled by EnableDetectionStore, or nullptr.
  DetectionStore* detection_store() { return store_.get(); }

  /// Persists pending store records now (also happens on destruction).
  Status FlushDetectionStore();

  Result<StreamData*> GetStream(const std::string& name);

  std::vector<std::string> StreamNames() const;
  bool Contains(const std::string& name) const {
    return streams_.count(name) > 0;
  }

 private:
  // Declared before streams_ so detectors referencing the store are
  // destroyed first.
  std::unique_ptr<DetectionStore> store_;
  std::unique_ptr<StoreArtifactCache> artifact_cache_;
  std::map<std::string, std::unique_ptr<StreamData>> streams_;
};

}  // namespace blazeit

#endif  // BLAZEIT_CORE_CATALOG_H_
