#include "serve/admission_queue.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <unordered_map>
#include <utility>

#include "core/baselines.h"
#include "core/optimizer.h"
#include "core/scrubbing.h"
#include "exec/thread_pool.h"
#include "net/http.h"
#include "obs/debug_server.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "storage/segment_sketch.h"
#include "util/string_util.h"

namespace blazeit {
namespace serve {

namespace {

using exec::ThreadPool;

/// Admission counters are functions of the workload and the (virtual-
/// clock) admission schedule, not of pool scheduling, hence kStable; the
/// depth gauge and latency histogram describe queue state over wall
/// interleavings, hence kUnstable.
obs::Counter* SubmittedCounter(const std::string& client) {
  return obs::MetricsRegistry::Global().GetCounter(
      "serve.submitted{client=" + client + "}", obs::Stability::kStable);
}

obs::Counter* RejectedCounter(const char* reason) {
  return obs::MetricsRegistry::Global().GetCounter(
      std::string("serve.rejected{reason=") + reason + "}",
      obs::Stability::kStable);
}

obs::Counter* CancelledCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "serve.cancelled", obs::Stability::kStable);
  return counter;
}

/// Milliseconds elapsed since `start` on the steady clock.
double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

obs::Gauge* QueueDepthGauge() {
  static obs::Gauge* gauge = obs::MetricsRegistry::Global().GetGauge(
      "serve.queue_depth", obs::Stability::kUnstable);
  return gauge;
}

obs::Histogram* AdmissionLatencyHistogram() {
  static obs::Histogram* hist = obs::MetricsRegistry::Global().GetHistogram(
      "serve.admission_latency_ticks", {0, 1, 2, 4, 8, 16, 32, 64},
      obs::Stability::kUnstable);
  return hist;
}

}  // namespace

AdmissionQueue::AdmissionQueue(BlazeItEngine* engine, ServeOptions options)
    : engine_(engine), options_(options), scheduler_(engine) {
  ThreadPool& pool = ThreadPool::Instance();
  prev_serving_limit_ = pool.BudgetLimit(ThreadPool::Budget::kServing);
  prev_analytics_limit_ = pool.BudgetLimit(ThreadPool::Budget::kAnalytics);
  if (options_.serving_budget > 0) {
    pool.SetBudgetLimit(ThreadPool::Budget::kServing,
                        options_.serving_budget);
  }
  if (options_.analytics_budget > 0) {
    pool.SetBudgetLimit(ThreadPool::Budget::kAnalytics,
                        options_.analytics_budget);
  }

  statusz_token_ = obs::StatusRegistry::Global().AddSection("serve", [this] {
    ThreadPool& p = ThreadPool::Instance();
    util::MutexLock lock(mu_);
    std::string out = StrFormat(
        "{\"options\":{\"window_ticks\":%lld,\"max_queue_depth\":%lld,"
        "\"per_client_quota\":%lld,\"shed_depth\":%lld,"
        "\"wall_clock_tick_ms\":%lld},\"clock\":%lld,\"queue_depth\":%zu,"
        "\"budgets\":{\"serving\":%d,\"analytics\":%d},"
        "\"stats\":{\"submitted\":%lld,\"rejected_queue_full\":%lld,"
        "\"rejected_quota\":%lld,\"shed\":%lld,\"cancelled\":%lld,"
        "\"batches\":%lld,\"groups\":%lld,\"coalesced_queries\":%lld,"
        "\"cross_client_groups\":%lld,\"standalone_seconds\":%.6f,"
        "\"batch_seconds\":%.6f},\"clients\":[",
        static_cast<long long>(options_.window_ticks),
        static_cast<long long>(options_.max_queue_depth),
        static_cast<long long>(options_.per_client_quota),
        static_cast<long long>(options_.shed_depth),
        static_cast<long long>(options_.wall_clock_tick_ms),
        static_cast<long long>(clock_), pending_.size(),
        p.BudgetLimit(ThreadPool::Budget::kServing),
        p.BudgetLimit(ThreadPool::Budget::kAnalytics),
        static_cast<long long>(stats_.submitted),
        static_cast<long long>(stats_.rejected_queue_full),
        static_cast<long long>(stats_.rejected_quota),
        static_cast<long long>(stats_.shed),
        static_cast<long long>(stats_.cancelled),
        static_cast<long long>(stats_.batches),
        static_cast<long long>(stats_.groups),
        static_cast<long long>(stats_.coalesced_queries),
        static_cast<long long>(stats_.cross_client_groups),
        stats_.standalone_seconds, stats_.batch_seconds);
    bool first = true;
    for (const auto& [client, counters] : client_counters_) {
      if (!first) out += ",";
      first = false;
      int64_t in_queue = 0;
      auto it = client_pending_.find(client);
      if (it != client_pending_.end()) in_queue = it->second;
      out += StrFormat(
          "{\"client\":\"%s\",\"submitted\":%lld,\"rejected\":%lld,"
          "\"shed\":%lld,\"cancelled\":%lld,\"pending\":%lld}",
          net::JsonEscape(client).c_str(),
          static_cast<long long>(counters.submitted),
          static_cast<long long>(counters.rejected),
          static_cast<long long>(counters.shed),
          static_cast<long long>(counters.cancelled),
          static_cast<long long>(in_queue));
    }
    out += "]}";
    return out;
  });

  if (options_.wall_clock_tick_ms > 0) {
    ticker_ = std::thread([this] { TickerLoop(); });
  }
}

AdmissionQueue::~AdmissionQueue() {
  if (ticker_.joinable()) {
    {
      util::MutexLock lock(ticker_mu_);
      ticker_stop_ = true;
    }
    ticker_cv_.NotifyAll();
    ticker_.join();
  }
  obs::StatusRegistry::Global().Remove(statusz_token_);
  ThreadPool& pool = ThreadPool::Instance();
  if (options_.serving_budget > 0) {
    pool.SetBudgetLimit(ThreadPool::Budget::kServing, prev_serving_limit_);
  }
  if (options_.analytics_budget > 0) {
    pool.SetBudgetLimit(ThreadPool::Budget::kAnalytics,
                        prev_analytics_limit_);
  }
}

Result<int64_t> AdmissionQueue::Submit(const std::string& client,
                                       const std::string& frameql) {
  // The front half runs before admission (and outside the lock): the
  // catalog is read-only, so concurrent Prepare calls are safe, and a
  // parse error must land in the response — the same place serial Execute
  // reports it — not block the admission slot.
  PendingEntry entry;
  entry.client = client;
  entry.frameql = frameql;
  if (engine_->options().collect_reports) {
    entry.trace = std::make_shared<obs::QueryTrace>(frameql);
  }
  auto prepared = engine_->Prepare(frameql, entry.trace.get());
  if (prepared.ok()) {
    entry.prepared = std::move(prepared).value();
    entry.correlation_id = entry.prepared->correlation_id;
  } else {
    entry.prepare_error = prepared.status();
    entry.correlation_id = obs::FlightRecorder::NextCorrelationId();
  }

  util::MutexLock lock(mu_);
  const int64_t depth = static_cast<int64_t>(pending_.size());
  if (depth >= options_.max_queue_depth) {
    ++stats_.rejected_queue_full;
    ++client_counters_[client].rejected;
    RejectedCounter("queue_full")->Add();
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(depth) + " pending)");
  }
  if (client_pending_[client] >= options_.per_client_quota) {
    ++stats_.rejected_quota;
    ++client_counters_[client].rejected;
    RejectedCounter("quota")->Add();
    return Status::ResourceExhausted(
        "client '" + client + "' is at its quota (" +
        std::to_string(options_.per_client_quota) + " pending)");
  }
  entry.ticket = next_ticket_++;
  ++client_counters_[client].submitted;
  entry.admitted_tick = clock_;
  entry.shed = options_.shed_depth >= 0 && depth >= options_.shed_depth;
  ++stats_.submitted;
  SubmittedCounter(client)->Add();
  ++client_pending_[client];
  if (pending_.empty()) window_open_tick_ = clock_;
  const int64_t ticket = entry.ticket;
  pending_.push_back(std::move(entry));
  QueueDepthGauge()->Set(static_cast<int64_t>(pending_.size()));
  if (options_.window_ticks == 0) RunPending(lock);
  return ticket;
}

void AdmissionQueue::Advance(int64_t ticks) {
  util::MutexLock lock(mu_);
  clock_ += ticks < 0 ? 0 : ticks;
  if (!pending_.empty() &&
      clock_ - window_open_tick_ >= options_.window_ticks) {
    RunPending(lock);
  }
}

void AdmissionQueue::Drain() {
  util::MutexLock lock(mu_);
  if (!pending_.empty()) RunPending(lock);
}

Status AdmissionQueue::Cancel(int64_t ticket) {
  ServeResponse resp;
  {
    util::MutexLock lock(mu_);
    auto it = std::find_if(
        pending_.begin(), pending_.end(),
        [ticket](const PendingEntry& e) { return e.ticket == ticket; });
    if (it == pending_.end()) {
      return Status::NotFound("ticket " + std::to_string(ticket) +
                              " is not pending (unknown, already executed, "
                              "or its window already cut)");
    }
    resp.ticket = it->ticket;
    resp.correlation_id = it->correlation_id;
    resp.client = it->client;
    resp.frameql = it->frameql;
    resp.admitted_tick = it->admitted_tick;
    resp.executed_tick = clock_;
    resp.output = Status::Cancelled("cancelled before execution");
    // The quota slot frees now — a client may cancel-and-resubmit within
    // one window without tripping its own quota.
    auto pending_it = client_pending_.find(it->client);
    if (pending_it != client_pending_.end() && pending_it->second > 0) {
      --pending_it->second;
    }
    ++stats_.cancelled;
    ++client_counters_[it->client].cancelled;
    CancelledCounter()->Add();
    pending_.erase(it);
    QueueDepthGauge()->Set(static_cast<int64_t>(pending_.size()));
  }
  // Deliver takes mu_ itself.
  Deliver(std::move(resp), /*wall_ms=*/0.0);
  return Status::OK();
}

void AdmissionQueue::TickerLoop() {
  const auto period = std::chrono::milliseconds(options_.wall_clock_tick_ms);
  util::MutexLock lock(ticker_mu_);
  while (!ticker_stop_) {
    if (ticker_cv_.WaitFor(ticker_mu_, period,
                           [this]() BLAZEIT_NO_THREAD_SAFETY_ANALYSIS {
                             return ticker_stop_;
                           })) {
      return;
    }
    // Advance takes mu_ (and may execute a window); drop ticker_mu_ so a
    // concurrent destructor's stop signal never waits on a running batch.
    lock.Unlock();
    Advance(1);
    lock.Lock();
  }
}

std::vector<ServeResponse> AdmissionQueue::TakeCompleted() {
  util::MutexLock lock(mu_);
  std::vector<ServeResponse> out = std::move(completed_);
  completed_.clear();
  return out;
}

int64_t AdmissionQueue::now() const {
  util::MutexLock lock(mu_);
  return clock_;
}

int64_t AdmissionQueue::queue_depth() const {
  util::MutexLock lock(mu_);
  return static_cast<int64_t>(pending_.size());
}

ServerStats AdmissionQueue::stats() const {
  util::MutexLock lock(mu_);
  return stats_;
}

void AdmissionQueue::Deliver(ServeResponse&& response, double wall_ms) {
  // Flight-record the completed serve query (observe-only: ids and wall
  // times never feed back into outputs or reports).
  obs::FlightRecord record;
  record.correlation_id = response.correlation_id;
  record.client = response.client;
  record.query = response.frameql;
  record.degraded = response.degraded;
  record.wall_ms = wall_ms;
  record.ok = response.output.ok();
  if (response.output.ok()) {
    const QueryOutput& output = response.output.value();
    record.plan = PlanKindName(output.plan);
    record.cost_seconds = output.cost.TotalSeconds();
    if (output.report != nullptr) {
      record.trace = output.report->trace;
      record.accuracy_tier = output.report->accuracy_tier;
    }
    if (record.accuracy_tier.empty()) {
      record.accuracy_tier = response.degraded ? "degraded" : "full";
    }
  } else {
    record.error = response.output.status().ToString();
  }
  obs::FlightRecorder::Global().Record(std::move(record));

  util::MutexLock lock(mu_);
  if (response.degraded) ++client_counters_[response.client].shed;
  AdmissionLatencyHistogram()->Observe(response.executed_tick -
                                       response.admitted_tick);
  completed_.push_back(std::move(response));
}

std::map<std::string, AdmissionQueue::ClientCounters>
AdmissionQueue::client_counters() const {
  util::MutexLock lock(mu_);
  return client_counters_;
}

void AdmissionQueue::RunPending(util::MutexLock& lock) {
  mu_.AssertHeld();
  // Cut the batch under mu_, then execute with only exec_mu_ held:
  // submissions keep flowing into the next window while this one runs,
  // and concurrently closed windows execute one at a time in cut order.
  std::vector<PendingEntry> batch = std::move(pending_);
  pending_.clear();
  client_pending_.clear();
  const int64_t executed_tick = clock_;
  QueueDepthGauge()->Set(0);
  lock.Unlock();

  util::MutexLock exec_lock(exec_mu_);
  static obs::Counter* batches_counter =
      obs::MetricsRegistry::Global().GetCounter("serve.batches",
                                                obs::Stability::kStable);
  static obs::Counter* shed_counter =
      obs::MetricsRegistry::Global().GetCounter("serve.shed",
                                                obs::Stability::kStable);
  batches_counter->Add();

  const size_t n = batch.size();
  std::vector<ServeResponse> shells(n);
  std::vector<ScheduledQuery> scheduled;
  std::vector<size_t> slots;  // scheduled index -> batch index
  int64_t shed_this_batch = 0;
  for (size_t i = 0; i < n; ++i) {
    PendingEntry& entry = batch[i];
    ServeResponse& resp = shells[i];
    resp.ticket = entry.ticket;
    resp.correlation_id = entry.correlation_id;
    resp.client = entry.client;
    resp.frameql = entry.frameql;
    resp.admitted_tick = entry.admitted_tick;
    resp.executed_tick = executed_tick;
    if (!entry.prepared.has_value()) {
      resp.output = entry.prepare_error;
      Deliver(std::move(resp), /*wall_ms=*/0.0);
      continue;
    }
    const QueryKind kind = entry.prepared->query.kind;
    if (entry.shed && (kind == QueryKind::kAggregate ||
                       kind == QueryKind::kScrubbing)) {
      shed_counter->Add();
      ++shed_this_batch;
      resp.degraded = true;
      const auto shed_started = std::chrono::steady_clock::now();
      resp.output = RunDegraded(*entry.prepared, entry.frameql);
      Deliver(std::move(resp), MsSince(shed_started));
      continue;
    }
    // Not sheddable (or not shed): the full plan. Group keys use the
    // batch position, so with a fixed admission order the grouping — and
    // therefore every output bit — replays exactly.
    ScheduledQuery sq;
    sq.prepared = *entry.prepared;
    sq.frameql = entry.frameql;
    sq.trace = entry.trace;
    sq.group_key = SharedSweepGroupKey(entry.prepared->query, i);
    scheduled.push_back(std::move(sq));
    slots.push_back(i);
  }

  // One scheduler run per window, against the scheduler's session sweeps
  // (warm across windows). The callback streams each response out as its
  // group completes, from whichever pool worker ran it. Wall times are
  // batch-relative (cut to completion), the latency a waiting client saw.
  const auto batch_started = std::chrono::steady_clock::now();
  ScheduleOutcome outcome = scheduler_.Run(
      scheduled, /*sweeps=*/nullptr, ThreadPool::Budget::kServing,
      [&](size_t j, const Result<QueryOutput>& result,
          const BatchQueryStats& stats) {
        ServeResponse resp = shells[slots[j]];
        resp.output = result;
        resp.stats = stats;
        Deliver(std::move(resp), MsSince(batch_started));
      });

  // Cumulative coalescing accounting: which groups spanned clients, and
  // how much charged NN work the shared sweeps absorbed this window.
  std::unordered_map<int64_t, int64_t> group_sizes;
  std::unordered_map<int64_t, std::set<std::string>> group_clients;
  util::MutexLock stats_lock(mu_);
  ++stats_.batches;
  stats_.shed += shed_this_batch;
  stats_.groups += outcome.groups;
  for (size_t j = 0; j < scheduled.size(); ++j) {
    if (!outcome.results[j].ok()) continue;
    const BatchQueryStats& qs = outcome.stats[j];
    ++group_sizes[qs.group];
    group_clients[qs.group].insert(batch[slots[j]].client);
    stats_.shared_nn_frames += qs.shared_nn_frames;
    stats_.shared_filter_frames += qs.shared_filter_frames;
    stats_.shared_models += qs.shared_models;
    stats_.standalone_seconds += qs.standalone_seconds;
    stats_.batch_seconds += qs.batch_seconds;
  }
  for (const auto& [group, size] : group_sizes) {
    if (size > 1) stats_.coalesced_queries += size;
  }
  for (const auto& [group, clients] : group_clients) {
    if (clients.size() > 1) ++stats_.cross_client_groups;
  }
}

Result<QueryOutput> AdmissionQueue::RunDegraded(const PreparedQuery& prepared,
                                                const std::string& frameql) {
  const AnalyzedQuery& query = prepared.query;
  StreamData* stream = prepared.stream;
  BLAZEIT_ASSIGN_OR_RETURN(
      FrameWindow window,
      ResolveFrameWindow(query, stream->config.fps,
                         stream->test_day->num_frames()));
  QueryOutput out;
  out.kind = query.kind;
  std::shared_ptr<obs::ExecutionReport> report;
  if (engine_->options().collect_reports) {
    report = std::make_shared<obs::ExecutionReport>();
    report->query = frameql;
  }

  if (query.kind == QueryKind::kAggregate) {
    // The paper's plain sampling estimator: no NN training, no sweeps —
    // the cheap path under pressure. It samples the whole test day, so a
    // windowed query's estimate is the day-wide frame average scaled to
    // the window (an accuracy trade the report discloses).
    out.plan = PlanKind::kAqpAggregation;
    out.plan_description =
        "load-shed: sampling estimator, no NN training";
    BLAZEIT_ASSIGN_OR_RETURN(
        AqpResult aqp,
        NaiveAqpAggregate(stream, query.agg_class, query.error,
                          query.confidence,
                          engine_->options().aggregate.seed));
    out.scalar = aqp.estimate;
    if (query.scale_to_total) {
      out.scalar *= static_cast<double>(window.end - window.begin);
    }
    out.cost = aqp.cost;
    if (report != nullptr) report->accuracy_tier = "degraded-sampling";
  } else {
    // Sketch-only scan: no NN ranking; the sketch index (when current)
    // still skips refuted segments, so shedding keeps the index's pruning
    // while dropping the expensive specialized-NN ordering.
    out.plan = PlanKind::kScanScrubbing;
    out.plan_description = "load-shed: sketch-only scan, no NN ranking";
    std::vector<SketchIndex::FrameRange> ranges;
    bool pruned = false;
    if (engine_->options().use_store_index &&
        stream->detection_store != nullptr) {
      SketchIndex index = SketchIndex::Load(stream->detection_store,
                                            stream->test_detections_ns);
      if (index.valid()) {
        SketchProbe probe;
        probe.score_threshold = stream->config.detection_threshold;
        probe.requirements = query.requirements;
        ranges = index.CandidateRanges(window.begin, window.end, probe);
        pruned = true;
      }
    }
    if (!pruned && window.end > window.begin) {
      ranges.push_back({window.begin, window.end});
    }
    int64_t last_accepted = -1;
    bool limit_reached = false;
    for (const auto& range : ranges) {
      for (int64_t t = range.begin; t < range.end && !limit_reached; ++t) {
        if (static_cast<int64_t>(out.frames.size()) >= query.limit) {
          limit_reached = true;
          break;
        }
        if (last_accepted >= 0 && query.gap > 0 &&
            t - last_accepted < query.gap) {
          continue;
        }
        out.cost.ChargeDetection();
        if (SatisfiesRequirements(*stream, t, query.requirements)) {
          out.frames.push_back(t);
          last_accepted = t;
        }
      }
      if (limit_reached) break;
    }
    if (report != nullptr) {
      report->accuracy_tier = "degraded-scan";
      report->sketch.consulted = engine_->options().use_store_index &&
                                 stream->detection_store != nullptr;
      report->sketch.pruned = pruned;
      report->sketch.window_frames =
          window.end > window.begin ? window.end - window.begin : 0;
      report->sketch.candidate_frames = 0;
      for (const auto& range : ranges) {
        report->sketch.candidate_frames += range.end - range.begin;
      }
    }
  }

  if (report != nullptr) {
    report->plan = PlanKindName(out.plan);
    report->plan_description = out.plan_description;
    report->FillCost(out.cost);
    out.report = std::move(report);
  }
  return out;
}

}  // namespace serve
}  // namespace blazeit
