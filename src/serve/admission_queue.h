#ifndef BLAZEIT_SERVE_ADMISSION_QUEUE_H_
#define BLAZEIT_SERVE_ADMISSION_QUEUE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/scheduler.h"
#include "util/mutex.h"

namespace blazeit {
namespace serve {

/// Knobs of the multi-tenant serving core. Defaults are permissive: a
/// one-tick window, deep queue, generous quota, shedding off.
struct ServeOptions {
  /// Virtual-clock ticks an admission window stays open: queries admitted
  /// while a window is open coalesce into one scheduler run (cross-client
  /// shared sweeps). 0 = pass-through — every Submit executes its query
  /// immediately and returns with the response already completed.
  int64_t window_ticks = 1;
  /// Bound on queries admitted-but-not-yet-executed. A Submit past the
  /// bound fails with ResourceExhausted instead of queueing unboundedly.
  int64_t max_queue_depth = 256;
  /// Per-client bound on pending queries (fairness: one chatty client
  /// cannot fill the whole queue). Exceeding it is ResourceExhausted.
  int64_t per_client_quota = 32;
  /// Load shedding: a query admitted while the pending depth is at or
  /// above this executes on the paper's cheap baseline instead of the
  /// optimizer's plan (aggregates -> sampling estimator, scrubbing ->
  /// sketch-only scan; other kinds always run the full plan). The
  /// downgrade is reported in the response and its ExecutionReport
  /// accuracy_tier. < 0 disables shedding.
  int64_t shed_depth = -1;
  /// Worker caps applied to the process pool's sub-pool budgets while
  /// this queue exists (<= 0 leaves a budget unlimited): `serving_budget`
  /// caps the queue's own jobs, `analytics_budget` caps concurrent
  /// ExecuteBatch/training work so it cannot starve serving. Previous
  /// caps are restored on destruction.
  int serving_budget = 0;
  int analytics_budget = 0;
  /// Wall-clock window driver (opt-in): > 0 starts a timer thread that
  /// calls Advance(1) every this-many milliseconds, so windows cut on
  /// real time without the caller driving the clock. 0 (default) keeps
  /// time fully virtual — the deterministic mode every replay test uses.
  int64_t wall_clock_tick_ms = 0;
};

/// One submitted query's response. `output` and its CostMeter are
/// bit-identical to a serial engine.Execute of the same query unless
/// `degraded` is set (the only case where charged work differs).
struct ServeResponse {
  int64_t ticket = -1;
  std::string client;
  std::string frameql;
  /// Correlation id minted at admission (matches the query's cid=N log
  /// fields and its /tracez flight record). Not part of `output`.
  int64_t correlation_id = -1;
  int64_t admitted_tick = 0;
  int64_t executed_tick = 0;
  /// Load shedding downgraded this query to a baseline plan.
  bool degraded = false;
  Result<QueryOutput> output{Status::Internal("pending")};
  /// Shared-sweep accounting within the coalesced batch (group index,
  /// NN frames / models served from another client's sweep). All-zero
  /// for failed or degraded queries.
  BatchQueryStats stats;
};

/// Cumulative counters over the queue's lifetime (the BatchQueryStats
/// totals, aggregated across admission windows).
struct ServerStats {
  int64_t submitted = 0;
  int64_t rejected_queue_full = 0;
  int64_t rejected_quota = 0;
  int64_t shed = 0;
  /// Pending queries withdrawn via Cancel before their window cut.
  int64_t cancelled = 0;
  /// Admission windows executed.
  int64_t batches = 0;
  /// Shared-plan groups across all batches.
  int64_t groups = 0;
  /// Queries that shared a group with at least one other query.
  int64_t coalesced_queries = 0;
  /// Groups whose members came from more than one client — the
  /// cross-client amortization ExecuteBatch alone cannot reach.
  int64_t cross_client_groups = 0;
  int64_t shared_nn_frames = 0;
  int64_t shared_filter_frames = 0;
  int64_t shared_models = 0;
  double standalone_seconds = 0.0;
  double batch_seconds = 0.0;
};

/// The multi-tenant serving core: a bounded admission queue in front of
/// QueryScheduler. Arriving queries are parsed/analyzed at Submit time,
/// held for the batching window, coalesced *across clients* by
/// SharedSweepGroupKey, executed as one scheduler run (sweeps stay warm
/// across windows in the scheduler's session cache), and streamed into
/// the completed set as their group finishes.
///
/// Time is a deterministic virtual clock advanced by Advance(), so tests
/// replay admission schedules exactly. Determinism contract: with a fixed
/// admission order, every non-degraded response's output — answer,
/// frames, rows, simulated CostMeter — is bit-identical to serial
/// engine.Execute at any pool size (tests/serve_determinism_test.cc);
/// coalescing only drops *charged* work, visible in stats.
///
/// Thread-safe: Submit/Advance/Drain/TakeCompleted may be called from
/// concurrent client threads. Batches execute one at a time, in the order
/// their windows closed.
class AdmissionQueue {
 public:
  /// `engine` (and its catalog) must outlive the queue.
  AdmissionQueue(BlazeItEngine* engine, ServeOptions options = {});
  ~AdmissionQueue();
  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Admits one query for `client`, returning its ticket. Parse/analyze
  /// errors are *admitted* and land in the response's output — exactly
  /// where a serial Execute would report them; only capacity produces a
  /// Submit error: ResourceExhausted when the queue is full or the
  /// client's quota is spent.
  Result<int64_t> Submit(const std::string& client, const std::string& frameql)
      BLAZEIT_EXCLUDES(mu_);

  /// Advances the virtual clock. If the advance closes the open admission
  /// window, the pending batch executes before returning (on the calling
  /// thread, helped by the pool under the serving budget).
  void Advance(int64_t ticks = 1) BLAZEIT_EXCLUDES(mu_);

  /// Executes whatever is pending regardless of window state.
  void Drain() BLAZEIT_EXCLUDES(mu_);

  /// Withdraws a not-yet-cut pending query: the ticket's entry leaves the
  /// queue, its quota slot frees immediately, and a response carrying
  /// Status::Cancelled lands in the completed set (so callers matching by
  /// ticket always get exactly one response). NotFound if the ticket is
  /// unknown or its window already cut — execution is never interrupted.
  Status Cancel(int64_t ticket) BLAZEIT_EXCLUDES(mu_);

  /// Moves out every response completed so far. Order follows group
  /// completion (streaming), not admission; match by ticket.
  std::vector<ServeResponse> TakeCompleted() BLAZEIT_EXCLUDES(mu_);

  int64_t now() const BLAZEIT_EXCLUDES(mu_);
  int64_t queue_depth() const BLAZEIT_EXCLUDES(mu_);
  ServerStats stats() const BLAZEIT_EXCLUDES(mu_);
  const ServeOptions& options() const { return options_; }

  /// Lifetime per-tenant accounting (rendered in the /statusz "serve"
  /// section alongside the aggregate ServerStats).
  struct ClientCounters {
    int64_t submitted = 0;
    int64_t rejected = 0;
    int64_t shed = 0;
    int64_t cancelled = 0;
  };
  std::map<std::string, ClientCounters> client_counters() const
      BLAZEIT_EXCLUDES(mu_);

 private:
  struct PendingEntry {
    int64_t ticket = -1;
    int64_t correlation_id = -1;
    std::string client;
    std::string frameql;
    int64_t admitted_tick = 0;
    bool shed = false;
    std::shared_ptr<obs::QueryTrace> trace;
    Status prepare_error;
    std::optional<PreparedQuery> prepared;
  };

  /// Cuts the pending batch and executes it. Entered with `lock` held on
  /// mu_; unlocks it before executing (so Submit keeps working into the
  /// next window) and leaves it unlocked. The hand-off through a scoped-
  /// lock reference is beyond the static analysis (which cannot track a
  /// capability through a reference parameter), so the entry contract is
  /// asserted at runtime instead.
  void RunPending(util::MutexLock& lock) BLAZEIT_NO_THREAD_SAFETY_ANALYSIS;

  /// The shed path: the paper's cheap baseline for `prepared`'s kind.
  Result<QueryOutput> RunDegraded(const PreparedQuery& prepared,
                                  const std::string& frameql);

  /// Moves the response into the completed set and flight-records it
  /// (wall_ms = execution wall time observed by the completion path; 0
  /// for prepare errors and cancellations, which ran nothing).
  void Deliver(ServeResponse&& response, double wall_ms)
      BLAZEIT_EXCLUDES(mu_);

  /// The wall-clock window driver (runs only when wall_clock_tick_ms>0).
  void TickerLoop();

  BlazeItEngine* engine_;
  ServeOptions options_;
  QueryScheduler scheduler_;
  int prev_serving_limit_ = 0;
  int prev_analytics_limit_ = 0;
  int64_t statusz_token_ = 0;

  mutable util::Mutex mu_;
  /// Serializes batch execution; taken only with mu_ released.
  util::Mutex exec_mu_;
  int64_t clock_ BLAZEIT_GUARDED_BY(mu_) = 0;
  int64_t window_open_tick_ BLAZEIT_GUARDED_BY(mu_) = 0;
  int64_t next_ticket_ BLAZEIT_GUARDED_BY(mu_) = 0;
  std::vector<PendingEntry> pending_ BLAZEIT_GUARDED_BY(mu_);
  std::map<std::string, int64_t> client_pending_ BLAZEIT_GUARDED_BY(mu_);
  std::vector<ServeResponse> completed_ BLAZEIT_GUARDED_BY(mu_);
  ServerStats stats_ BLAZEIT_GUARDED_BY(mu_);
  std::map<std::string, ClientCounters> client_counters_
      BLAZEIT_GUARDED_BY(mu_);

  /// Ticker state has its own mutex so stopping never contends with a
  /// window executing under mu_/exec_mu_.
  util::Mutex ticker_mu_;
  util::CondVar ticker_cv_;
  bool ticker_stop_ BLAZEIT_GUARDED_BY(ticker_mu_) = false;
  std::thread ticker_;
};

}  // namespace serve
}  // namespace blazeit

#endif  // BLAZEIT_SERVE_ADMISSION_QUEUE_H_
