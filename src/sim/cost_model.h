#ifndef BLAZEIT_SIM_COST_MODEL_H_
#define BLAZEIT_SIM_COST_MODEL_H_

#include <cstdint>
#include <string>

/// CostMeter's single-writer assertion (see below). Active in debug
/// builds and — because the default CI build is RelWithDebInfo, where
/// NDEBUG would compile a plain assert away — also under
/// ThreadSanitizer, so the TSan CI lane always runs with the check on.
#if !defined(NDEBUG) || defined(__SANITIZE_THREAD__)
#define BLAZEIT_COSTMETER_THREAD_CHECK 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define BLAZEIT_COSTMETER_THREAD_CHECK 1
#endif
#endif

#ifdef BLAZEIT_COSTMETER_THREAD_CHECK
#include <atomic>
#include <thread>
#endif

namespace blazeit {

/// Per-operation costs in simulated GPU/CPU seconds. Defaults follow the
/// paper's measured throughputs (Section 5): Mask R-CNN ~3 fps, FGFA ~3 fps,
/// specialized NNs ~10,000 fps, simple filters ~100,000 fps. The paper
/// extrapolates end-to-end runtimes from the number of calls times these
/// per-call costs (Sections 10.2 and 10.4); we adopt the same accounting so
/// that relative speedups are directly comparable.
struct CostProfile {
  /// Full object detection, seconds per frame (3 fps).
  double detection_sec_per_frame = 1.0 / 3.0;
  /// Specialized NN inference, seconds per frame (10,000 fps).
  double specialized_nn_sec_per_frame = 1.0 / 10000.0;
  /// Simple (non-NN) filter evaluation, seconds per frame (100,000 fps).
  double filter_sec_per_frame = 1.0 / 100000.0;
  /// Specialized NN training, seconds per training frame. The paper trains
  /// 150k frames in roughly the time of one epoch on a P100; we charge
  /// forward+backward at ~1/3 of inference throughput.
  double nn_train_sec_per_frame = 3.0 / 10000.0;
  /// Threshold / statistics computation over the held-out set, seconds per
  /// frame (re-uses cached specialized NN outputs, so cheap).
  double threshold_sec_per_frame = 1.0 / 100000.0;

  /// Detector cost scaling for spatially cropped frames: detectors resize
  /// the short edge to a fixed size, so cost scales with the long/short
  /// aspect ratio (Section 8). `aspect` = long_edge / short_edge >= 1.
  double DetectionSecondsForAspect(double aspect) const {
    return detection_sec_per_frame * aspect / (16.0 / 9.0);
  }
};

/// Tracks the simulated time consumed by each operation class during query
/// execution. All executors charge their work here; benchmarks read the
/// totals to report "runtime" exactly the way the paper does.
///
/// Thread-safety: counters are plain fields on purpose — a meter belongs
/// to exactly one query, and every charge site runs on that query's
/// coordinating thread. The parallel stages (FramePipeline sweeps,
/// ParallelMap scans) never charge; their callers charge the batched
/// totals serially after the parallel section returns, which is also what
/// keeps simulated costs bit-identical across pool sizes. The executors'
/// one serial-context callback that charges from a lambda (the
/// control-variates FrameOracle) runs on the coordinator too. This
/// single-writer contract is asserted in debug/TSan builds: the first
/// Charge* pins the owning thread, later charges from any other thread
/// abort. Reset() (and copying, which the executors do when handing a
/// meter by value) clears the owner, re-arming the check for the new
/// context.
class CostMeter {
 public:
  explicit CostMeter(CostProfile profile = CostProfile())
      : profile_(profile) {}

#ifdef BLAZEIT_COSTMETER_THREAD_CHECK
  /// The owner pin is an atomic, which would otherwise delete the copy
  /// operations CostMeter relies on (AggregateExecutor passes meters by
  /// value; QueryOutput copies them around). Copies take the counters but
  /// not the owner: the copy belongs to whoever charges it next.
  CostMeter(const CostMeter& other);
  CostMeter& operator=(const CostMeter& other);
#endif

  const CostProfile& profile() const { return profile_; }

  /// Charges one full object detection call at the default aspect ratio.
  void ChargeDetection() { ChargeDetectionAspect(16.0 / 9.0); }
  /// Charges a detection on a cropped frame with the given aspect ratio.
  void ChargeDetectionAspect(double aspect);
  void ChargeSpecializedNN(int64_t frames = 1);
  void ChargeFilter(int64_t frames = 1);
  void ChargeTraining(int64_t frames = 1);
  void ChargeThresholding(int64_t frames = 1);

  int64_t detection_calls() const { return detection_calls_; }
  int64_t specialized_nn_calls() const { return specialized_nn_calls_; }
  int64_t filter_calls() const { return filter_calls_; }
  int64_t training_frames() const { return training_frames_; }

  double detection_seconds() const { return detection_seconds_; }
  double specialized_nn_seconds() const { return specialized_nn_seconds_; }
  double filter_seconds() const { return filter_seconds_; }
  double training_seconds() const { return training_seconds_; }
  double thresholding_seconds() const { return thresholding_seconds_; }

  /// Total simulated runtime including NN training (the paper's "BlazeIt"
  /// rows include training; "BlazeIt (no train)" excludes it).
  double TotalSeconds() const;
  /// Simulated runtime excluding training and thresholding time, i.e. the
  /// cost if specialized NNs were indexed ahead of time.
  double QuerySeconds() const;

  void Reset();

  /// One-line summary for logs: calls and seconds per category.
  std::string ToString() const;

 private:
#ifdef BLAZEIT_COSTMETER_THREAD_CHECK
  /// Aborts if this meter has been charged from a different thread since
  /// the last Reset()/copy. Called by every Charge*.
  void CheckOwner();
  std::atomic<std::thread::id> owner_{std::thread::id()};
#else
  void CheckOwner() {}
#endif

  CostProfile profile_;
  int64_t detection_calls_ = 0;
  int64_t specialized_nn_calls_ = 0;
  int64_t filter_calls_ = 0;
  int64_t training_frames_ = 0;
  double detection_seconds_ = 0;
  double specialized_nn_seconds_ = 0;
  double filter_seconds_ = 0;
  double training_seconds_ = 0;
  double thresholding_seconds_ = 0;
};

}  // namespace blazeit

#endif  // BLAZEIT_SIM_COST_MODEL_H_
