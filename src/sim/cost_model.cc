#include "sim/cost_model.h"

#include "util/string_util.h"

namespace blazeit {

void CostMeter::ChargeDetectionAspect(double aspect) {
  ++detection_calls_;
  detection_seconds_ += profile_.DetectionSecondsForAspect(aspect);
}

void CostMeter::ChargeSpecializedNN(int64_t frames) {
  specialized_nn_calls_ += frames;
  specialized_nn_seconds_ +=
      static_cast<double>(frames) * profile_.specialized_nn_sec_per_frame;
}

void CostMeter::ChargeFilter(int64_t frames) {
  filter_calls_ += frames;
  filter_seconds_ +=
      static_cast<double>(frames) * profile_.filter_sec_per_frame;
}

void CostMeter::ChargeTraining(int64_t frames) {
  training_frames_ += frames;
  training_seconds_ +=
      static_cast<double>(frames) * profile_.nn_train_sec_per_frame;
}

void CostMeter::ChargeThresholding(int64_t frames) {
  thresholding_seconds_ +=
      static_cast<double>(frames) * profile_.threshold_sec_per_frame;
}

double CostMeter::TotalSeconds() const {
  return detection_seconds_ + specialized_nn_seconds_ + filter_seconds_ +
         training_seconds_ + thresholding_seconds_;
}

double CostMeter::QuerySeconds() const {
  return detection_seconds_ + specialized_nn_seconds_ + filter_seconds_;
}

void CostMeter::Reset() {
  detection_calls_ = 0;
  specialized_nn_calls_ = 0;
  filter_calls_ = 0;
  training_frames_ = 0;
  detection_seconds_ = 0;
  specialized_nn_seconds_ = 0;
  filter_seconds_ = 0;
  training_seconds_ = 0;
  thresholding_seconds_ = 0;
}

std::string CostMeter::ToString() const {
  return StrFormat(
      "detections=%lld (%.1fs) nn=%lld (%.1fs) filters=%lld (%.1fs) "
      "train=%lld (%.1fs) total=%.1fs",
      static_cast<long long>(detection_calls_), detection_seconds_,
      static_cast<long long>(specialized_nn_calls_), specialized_nn_seconds_,
      static_cast<long long>(filter_calls_), filter_seconds_,
      static_cast<long long>(training_frames_), training_seconds_,
      TotalSeconds());
}

}  // namespace blazeit
