#include "sim/cost_model.h"

#include "util/check.h"
#include "util/string_util.h"

namespace blazeit {

#ifdef BLAZEIT_COSTMETER_THREAD_CHECK

CostMeter::CostMeter(const CostMeter& other)
    : profile_(other.profile_),
      detection_calls_(other.detection_calls_),
      specialized_nn_calls_(other.specialized_nn_calls_),
      filter_calls_(other.filter_calls_),
      training_frames_(other.training_frames_),
      detection_seconds_(other.detection_seconds_),
      specialized_nn_seconds_(other.specialized_nn_seconds_),
      filter_seconds_(other.filter_seconds_),
      training_seconds_(other.training_seconds_),
      thresholding_seconds_(other.thresholding_seconds_) {}

CostMeter& CostMeter::operator=(const CostMeter& other) {
  if (this == &other) return *this;
  profile_ = other.profile_;
  detection_calls_ = other.detection_calls_;
  specialized_nn_calls_ = other.specialized_nn_calls_;
  filter_calls_ = other.filter_calls_;
  training_frames_ = other.training_frames_;
  detection_seconds_ = other.detection_seconds_;
  specialized_nn_seconds_ = other.specialized_nn_seconds_;
  filter_seconds_ = other.filter_seconds_;
  training_seconds_ = other.training_seconds_;
  thresholding_seconds_ = other.thresholding_seconds_;
  // The assignee is a fresh accounting context: re-arm the owner pin.
  owner_.store(std::thread::id(), std::memory_order_relaxed);
  return *this;
}

void CostMeter::CheckOwner() {
  const std::thread::id self = std::this_thread::get_id();
  std::thread::id expected;  // default-constructed: unowned
  if (owner_.compare_exchange_strong(expected, self,
                                     std::memory_order_relaxed)) {
    return;  // first charge pins this thread as the owner
  }
  BLAZEIT_CHECK(expected == self)
      << ": CostMeter charged from two threads; charge sites must stay on "
         "the query's coordinating thread (see the class comment)";
}

#endif  // BLAZEIT_COSTMETER_THREAD_CHECK

void CostMeter::ChargeDetectionAspect(double aspect) {
  CheckOwner();
  ++detection_calls_;
  detection_seconds_ += profile_.DetectionSecondsForAspect(aspect);
}

void CostMeter::ChargeSpecializedNN(int64_t frames) {
  CheckOwner();
  specialized_nn_calls_ += frames;
  specialized_nn_seconds_ +=
      static_cast<double>(frames) * profile_.specialized_nn_sec_per_frame;
}

void CostMeter::ChargeFilter(int64_t frames) {
  CheckOwner();
  filter_calls_ += frames;
  filter_seconds_ +=
      static_cast<double>(frames) * profile_.filter_sec_per_frame;
}

void CostMeter::ChargeTraining(int64_t frames) {
  CheckOwner();
  training_frames_ += frames;
  training_seconds_ +=
      static_cast<double>(frames) * profile_.nn_train_sec_per_frame;
}

void CostMeter::ChargeThresholding(int64_t frames) {
  CheckOwner();
  thresholding_seconds_ +=
      static_cast<double>(frames) * profile_.threshold_sec_per_frame;
}

double CostMeter::TotalSeconds() const {
  return detection_seconds_ + specialized_nn_seconds_ + filter_seconds_ +
         training_seconds_ + thresholding_seconds_;
}

double CostMeter::QuerySeconds() const {
  return detection_seconds_ + specialized_nn_seconds_ + filter_seconds_;
}

void CostMeter::Reset() {
#ifdef BLAZEIT_COSTMETER_THREAD_CHECK
  owner_.store(std::thread::id(), std::memory_order_relaxed);
#endif
  detection_calls_ = 0;
  specialized_nn_calls_ = 0;
  filter_calls_ = 0;
  training_frames_ = 0;
  detection_seconds_ = 0;
  specialized_nn_seconds_ = 0;
  filter_seconds_ = 0;
  training_seconds_ = 0;
  thresholding_seconds_ = 0;
}

std::string CostMeter::ToString() const {
  return StrFormat(
      "detections=%lld (%.1fs) nn=%lld (%.1fs) filters=%lld (%.1fs) "
      "train=%lld (%.1fs) total=%.1fs",
      static_cast<long long>(detection_calls_), detection_seconds_,
      static_cast<long long>(specialized_nn_calls_), specialized_nn_seconds_,
      static_cast<long long>(filter_calls_), filter_seconds_,
      static_cast<long long>(training_frames_), training_seconds_,
      TotalSeconds());
}

}  // namespace blazeit
