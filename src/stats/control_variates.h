#ifndef BLAZEIT_STATS_CONTROL_VARIATES_H_
#define BLAZEIT_STATS_CONTROL_VARIATES_H_

#include <cstdint>
#include <functional>

#include "stats/sampler.h"
#include "util/status.h"

namespace blazeit {

/// The cheap auxiliary variable of the control-variates estimator
/// (Section 6.3): in BlazeIt, the specialized NN's per-frame count. Because
/// the proxy costs ~1/3000 of a detection call, its mean tau and variance
/// over the *whole* population can be computed exactly, which is what makes
/// control variates profitable in video analytics and pointless in a
/// classical RDBMS (the paper's observation).
struct ControlVariate {
  /// Proxy value for a frame (cheap; e.g. specialized-NN expected count).
  std::function<double(int64_t frame)> proxy;
  /// Exact mean of the proxy over all frames.
  double tau = 0.0;
  /// Exact variance of the proxy over all frames.
  double variance = 0.0;
};

/// Adaptive mean estimation with control variates: the estimator
///   m_hat = mean(m) + c * (mean(t) - tau),  c = -Cov(m,t) / Var(t),
/// whose variance is (1 - Corr(m,t)^2) * Var(m). The covariance is
/// re-estimated from the samples at every round (Section 6.3); the sampler
/// terminates on the same CLT bound as AdaptiveSample, so the variance
/// reduction directly translates into fewer object-detection calls.
Result<SampleEstimate> ControlVariateSample(int64_t num_frames,
                                            const FrameOracle& oracle,
                                            const ControlVariate& variate,
                                            const SamplingConfig& config);

/// Convenience: computes tau and variance of a proxy exactly by evaluating
/// it on every frame (cheap by construction).
ControlVariate MakeControlVariate(
    int64_t num_frames, std::function<double(int64_t frame)> proxy);

}  // namespace blazeit

#endif  // BLAZEIT_STATS_CONTROL_VARIATES_H_
