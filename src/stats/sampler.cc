#include "stats/sampler.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "stats/normal.h"
#include "stats/online_stats.h"
#include "util/random.h"

namespace blazeit {

Status ValidateSamplingConfig(const SamplingConfig& config) {
  if (config.error <= 0.0)
    return Status::InvalidArgument("error tolerance must be positive");
  if (config.confidence <= 0.0 || config.confidence >= 1.0)
    return Status::InvalidArgument("confidence must be in (0,1)");
  if (config.value_range <= 0.0)
    return Status::InvalidArgument("value_range must be positive");
  if (config.growth <= 0.0)
    return Status::InvalidArgument("growth must be positive");
  return Status::OK();
}

namespace {

/// Finite-population correction factor for sampling n of N without
/// replacement.
double Fpc(int64_t n, int64_t population) {
  if (population <= 1 || n >= population) return 0.0;
  return std::sqrt(static_cast<double>(population - n) /
                   static_cast<double>(population - 1));
}

}  // namespace

Result<SampleEstimate> AdaptiveSample(int64_t num_frames,
                                      const FrameOracle& oracle,
                                      const SamplingConfig& config) {
  BLAZEIT_RETURN_NOT_OK(ValidateSamplingConfig(config));
  if (num_frames <= 0)
    return Status::InvalidArgument("num_frames must be positive");

  const double z = TwoSidedZ(config.confidence);
  // Epsilon-net lower bound: at least K / epsilon samples (Section 6.1).
  int64_t target = static_cast<int64_t>(
      std::ceil(config.value_range / config.error));
  target = std::min(target, num_frames);

  // Sampling without replacement: walk a shuffled permutation.
  Rng rng(config.seed);
  std::vector<int64_t> order(static_cast<size_t>(num_frames));
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng.engine());

  OnlineStats stats;
  int64_t drawn = 0;
  SampleEstimate out;
  while (true) {
    while (drawn < target) {
      stats.Add(oracle(order[static_cast<size_t>(drawn)]));
      ++drawn;
    }
    double stderr_n = stats.StdDev() /
                      std::sqrt(static_cast<double>(stats.count())) *
                      Fpc(stats.count(), num_frames);
    out.half_width = z * stderr_n;
    if (out.half_width < config.error || drawn >= num_frames) {
      out.estimate = stats.Mean();
      out.samples_used = drawn;
      out.exhausted = drawn >= num_frames;
      return out;
    }
    // Linear growth per round.
    int64_t step = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(config.growth * drawn)));
    target = std::min(num_frames, drawn + step);
  }
}

}  // namespace blazeit
