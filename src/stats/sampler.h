#ifndef BLAZEIT_STATS_SAMPLER_H_
#define BLAZEIT_STATS_SAMPLER_H_

#include <cstdint>
#include <functional>

#include "util/status.h"

namespace blazeit {

/// Parameters of BlazeIt's adaptive sampling procedure (Section 6.1): an
/// absolute error target at a confidence level, plus the range K of the
/// estimated quantity, which sets the epsilon-net minimum sample size K/e.
struct SamplingConfig {
  /// Absolute error tolerance (FrameQL `ERROR WITHIN`).
  double error = 0.1;
  /// Confidence level (FrameQL `AT CONFIDENCE`), e.g. 0.95.
  double confidence = 0.95;
  /// Range of the estimated quantity (max per-frame count plus one).
  double value_range = 1.0;
  /// Fractional sample-size growth per round (linear increase).
  double growth = 0.2;
  uint64_t seed = 1;
};

/// Outcome of a sampling run.
struct SampleEstimate {
  /// Final estimate of the population mean.
  double estimate = 0.0;
  /// Number of oracle evaluations consumed (= object-detection calls).
  int64_t samples_used = 0;
  /// Half-width of the final CLT confidence interval.
  double half_width = 0.0;
  /// True when the whole population was consumed before the bound held.
  bool exhausted = false;
};

/// The expensive per-frame statistic being averaged; in BlazeIt this calls
/// the full object detector and counts boxes.
using FrameOracle = std::function<double(int64_t frame)>;

/// Validates a sampling configuration.
Status ValidateSamplingConfig(const SamplingConfig& config);

/// Adaptive mean estimation over frames [0, num_frames): samples without
/// replacement, starting at K/e samples and growing linearly, terminating
/// when the CLT bound  Q(1 - delta/2) * sigma_hat_N < error  holds
/// (Section 6.1). The finite-population correction is applied to
/// sigma_hat_N, matching the paper's finite sample correction.
Result<SampleEstimate> AdaptiveSample(int64_t num_frames,
                                      const FrameOracle& oracle,
                                      const SamplingConfig& config);

}  // namespace blazeit

#endif  // BLAZEIT_STATS_SAMPLER_H_
