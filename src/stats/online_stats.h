#ifndef BLAZEIT_STATS_ONLINE_STATS_H_
#define BLAZEIT_STATS_ONLINE_STATS_H_

#include <cstdint>

namespace blazeit {

/// Numerically stable single-pass mean/variance accumulator (Welford).
class OnlineStats {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double Mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n - 1 denominator); 0 for fewer than 2 samples.
  double Variance() const;
  double StdDev() const;
  /// Population variance (n denominator).
  double PopulationVariance() const;

  void Reset();

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Single-pass covariance accumulator for paired samples (m, t); used to
/// estimate the control-variate coefficient at every sampling round
/// (Section 6.3).
class OnlineCovariance {
 public:
  void Add(double x, double y);

  int64_t count() const { return count_; }
  double MeanX() const { return count_ > 0 ? mean_x_ : 0.0; }
  double MeanY() const { return count_ > 0 ? mean_y_ : 0.0; }
  /// Sample covariance (n - 1 denominator); 0 for fewer than 2 samples.
  double Covariance() const;
  double VarianceX() const;
  double VarianceY() const;
  /// Pearson correlation; 0 if either variance vanishes.
  double Correlation() const;

  void Reset();

 private:
  int64_t count_ = 0;
  double mean_x_ = 0.0;
  double mean_y_ = 0.0;
  double c_ = 0.0;
  double m2x_ = 0.0;
  double m2y_ = 0.0;
};

}  // namespace blazeit

#endif  // BLAZEIT_STATS_ONLINE_STATS_H_
