#ifndef BLAZEIT_STATS_NORMAL_H_
#define BLAZEIT_STATS_NORMAL_H_

namespace blazeit {

/// Standard normal probability density.
double NormalPdf(double x);

/// Standard normal cumulative distribution function.
double NormalCdf(double x);

/// Percent point function (inverse CDF) of the standard normal — the Q
/// function of the paper's CLT termination bound (Section 6.1). Uses
/// Acklam's rational approximation refined with one Halley step; accurate
/// to ~1e-9 over (0, 1).
double NormalPpf(double p);

/// Two-sided z-value for a confidence level, e.g. 0.95 -> 1.9599.
double TwoSidedZ(double confidence);

}  // namespace blazeit

#endif  // BLAZEIT_STATS_NORMAL_H_
