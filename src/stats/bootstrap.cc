#include "stats/bootstrap.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace blazeit {

Result<BootstrapResult> BootstrapAbsError(const std::vector<double>& predicted,
                                          const std::vector<double>& truth,
                                          double confidence,
                                          int num_resamples, uint64_t seed) {
  if (predicted.size() != truth.size())
    return Status::InvalidArgument("predicted/truth size mismatch");
  if (predicted.empty())
    return Status::InvalidArgument("held-out set must be non-empty");
  if (confidence <= 0.0 || confidence >= 1.0)
    return Status::InvalidArgument("confidence must be in (0,1)");
  if (num_resamples <= 0)
    return Status::InvalidArgument("num_resamples must be positive");

  const int64_t n = static_cast<int64_t>(predicted.size());
  // Bootstrapping the mean difference only needs the per-frame differences.
  std::vector<double> diff(predicted.size());
  double mean_diff = 0.0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    diff[i] = predicted[i] - truth[i];
    mean_diff += diff[i];
  }
  mean_diff /= static_cast<double>(n);

  Rng rng(seed);
  std::vector<double> abs_errors;
  abs_errors.reserve(static_cast<size_t>(num_resamples));
  for (int b = 0; b < num_resamples; ++b) {
    double sum = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      sum += diff[static_cast<size_t>(rng.UniformInt(0, n - 1))];
    }
    abs_errors.push_back(std::abs(sum / static_cast<double>(n)));
  }
  std::sort(abs_errors.begin(), abs_errors.end());
  size_t idx = static_cast<size_t>(
      std::min<double>(static_cast<double>(abs_errors.size()) - 1,
                       std::ceil(confidence * abs_errors.size())));

  BootstrapResult out;
  out.mean_abs_error = std::abs(mean_diff);
  out.error_quantile = abs_errors[idx];
  return out;
}

}  // namespace blazeit
