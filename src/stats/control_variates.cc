#include "stats/control_variates.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "stats/normal.h"
#include "stats/online_stats.h"
#include "util/random.h"

namespace blazeit {

namespace {

double Fpc(int64_t n, int64_t population) {
  if (population <= 1 || n >= population) return 0.0;
  return std::sqrt(static_cast<double>(population - n) /
                   static_cast<double>(population - 1));
}

}  // namespace

ControlVariate MakeControlVariate(
    int64_t num_frames, std::function<double(int64_t frame)> proxy) {
  OnlineStats stats;
  for (int64_t t = 0; t < num_frames; ++t) stats.Add(proxy(t));
  ControlVariate cv;
  cv.tau = stats.Mean();
  cv.variance = stats.PopulationVariance();
  cv.proxy = std::move(proxy);
  return cv;
}

Result<SampleEstimate> ControlVariateSample(int64_t num_frames,
                                            const FrameOracle& oracle,
                                            const ControlVariate& variate,
                                            const SamplingConfig& config) {
  BLAZEIT_RETURN_NOT_OK(ValidateSamplingConfig(config));
  if (num_frames <= 0)
    return Status::InvalidArgument("num_frames must be positive");
  if (!variate.proxy)
    return Status::InvalidArgument("control variate proxy must be set");

  const double z = TwoSidedZ(config.confidence);
  int64_t target = static_cast<int64_t>(
      std::ceil(config.value_range / config.error));
  target = std::min(target, num_frames);

  Rng rng(config.seed);
  std::vector<int64_t> order(static_cast<size_t>(num_frames));
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng.engine());

  OnlineCovariance joint;  // x = expensive m, y = cheap proxy t
  int64_t drawn = 0;
  SampleEstimate out;
  while (true) {
    while (drawn < target) {
      int64_t frame = order[static_cast<size_t>(drawn)];
      joint.Add(oracle(frame), variate.proxy(frame));
      ++drawn;
    }
    // Optimal coefficient from the sampled covariance and the *exact*
    // proxy variance (computable because the proxy is cheap).
    double c = 0.0;
    double var_reduced = joint.VarianceX();
    if (variate.variance > 0.0 && joint.count() >= 2) {
      c = -joint.Covariance() / variate.variance;
      var_reduced = joint.VarianceX() -
                    joint.Covariance() * joint.Covariance() /
                        variate.variance;
      var_reduced = std::max(var_reduced, 0.0);
    }
    double stderr_n = std::sqrt(var_reduced /
                                static_cast<double>(joint.count())) *
                      Fpc(joint.count(), num_frames);
    out.half_width = z * stderr_n;
    if (out.half_width < config.error || drawn >= num_frames) {
      out.estimate = joint.MeanX() + c * (joint.MeanY() - variate.tau);
      out.samples_used = drawn;
      out.exhausted = drawn >= num_frames;
      return out;
    }
    int64_t step = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(config.growth * drawn)));
    target = std::min(num_frames, drawn + step);
  }
}

}  // namespace blazeit
