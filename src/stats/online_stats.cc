#include "stats/online_stats.h"

#include <cmath>

namespace blazeit {

void OnlineStats::Add(double x) {
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::StdDev() const { return std::sqrt(Variance()); }

double OnlineStats::PopulationVariance() const {
  if (count_ < 1) return 0.0;
  return m2_ / static_cast<double>(count_);
}

void OnlineStats::Reset() {
  count_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
}

void OnlineCovariance::Add(double x, double y) {
  ++count_;
  double n = static_cast<double>(count_);
  double dx = x - mean_x_;
  mean_x_ += dx / n;
  double dy_old = y - mean_y_;
  mean_y_ += dy_old / n;
  double dy_new = y - mean_y_;
  c_ += dx * dy_new;
  m2x_ += dx * (x - mean_x_);
  m2y_ += dy_old * dy_new;
}

double OnlineCovariance::Covariance() const {
  if (count_ < 2) return 0.0;
  return c_ / static_cast<double>(count_ - 1);
}

double OnlineCovariance::VarianceX() const {
  if (count_ < 2) return 0.0;
  return m2x_ / static_cast<double>(count_ - 1);
}

double OnlineCovariance::VarianceY() const {
  if (count_ < 2) return 0.0;
  return m2y_ / static_cast<double>(count_ - 1);
}

double OnlineCovariance::Correlation() const {
  double vx = VarianceX();
  double vy = VarianceY();
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return Covariance() / std::sqrt(vx * vy);
}

void OnlineCovariance::Reset() {
  count_ = 0;
  mean_x_ = mean_y_ = c_ = m2x_ = m2y_ = 0.0;
}

}  // namespace blazeit
