#ifndef BLAZEIT_STATS_BOOTSTRAP_H_
#define BLAZEIT_STATS_BOOTSTRAP_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace blazeit {

/// Bootstrap assessment of a specialized NN's aggregation error on the
/// held-out day (Section 6.2). `predicted` and `truth` are parallel
/// per-frame values (NN expected count vs. detector count).
struct BootstrapResult {
  /// Absolute error of the NN's mean on the held-out set itself.
  double mean_abs_error = 0.0;
  /// `confidence`-quantile of |mean(pred*) - mean(truth*)| over bootstrap
  /// resamples: the error bound the optimizer compares against the user's
  /// tolerance (Algorithm 1's P(err < uerr) test).
  double error_quantile = 0.0;
};

Result<BootstrapResult> BootstrapAbsError(const std::vector<double>& predicted,
                                          const std::vector<double>& truth,
                                          double confidence,
                                          int num_resamples, uint64_t seed);

}  // namespace blazeit

#endif  // BLAZEIT_STATS_BOOTSTRAP_H_
