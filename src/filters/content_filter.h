#ifndef BLAZEIT_FILTERS_CONTENT_FILTER_H_
#define BLAZEIT_FILTERS_CONTENT_FILTER_H_

#include <functional>
#include <string>
#include <utility>

#include "filters/filter.h"
#include "video/image.h"

namespace blazeit {

/// A continuous image statistic (e.g. redness); the content filter lifts
/// the per-mask UDF of the query to the whole frame (Section 8.1: apply
/// the UDF over the entire frame and filter frames that cannot satisfy it).
using ImageUdf = std::function<double(const Image&)>;

/// Content-based filtering: scores each frame by a cheap visual statistic
/// inferred from the query's UDF predicate, e.g. the frame-level redness
/// when searching for red buses. Only meaningful for UDFs returning
/// continuous values (the paper's restriction); threshold calibration on
/// the held-out set discovers whether the lifted UDF is actually selective.
class ContentFilter : public FrameFilter {
 public:
  /// `raster` is the render size used to evaluate the statistic.
  ContentFilter(std::string udf_name, ImageUdf udf, int raster_width = 32,
                int raster_height = 32)
      : udf_name_(std::move(udf_name)),
        udf_(std::move(udf)),
        raster_width_(raster_width),
        raster_height_(raster_height) {}

  std::string name() const override { return "content(" + udf_name_ + ")"; }

  double Score(const SyntheticVideo& video, int64_t frame) const override {
    // Scoring sweeps call this once per candidate frame; render into a
    // reused scratch buffer (single-threaded per filter) instead of
    // allocating a fresh Image each time.
    video.RenderFrameRegionInto(frame, Rect{0, 0, 1, 1}, raster_width_,
                                raster_height_, &render_scratch_);
    return udf_(render_scratch_);
  }

  int raster_width() const { return raster_width_; }
  int raster_height() const { return raster_height_; }

 private:
  std::string udf_name_;
  ImageUdf udf_;
  int raster_width_;
  int raster_height_;
  /// Reused render buffer; always fully overwritten before the UDF reads
  /// it.
  mutable Image render_scratch_;
};

}  // namespace blazeit

#endif  // BLAZEIT_FILTERS_CONTENT_FILTER_H_
