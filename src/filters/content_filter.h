#ifndef BLAZEIT_FILTERS_CONTENT_FILTER_H_
#define BLAZEIT_FILTERS_CONTENT_FILTER_H_

#include <functional>
#include <string>
#include <utility>

#include "filters/filter.h"
#include "video/image.h"

namespace blazeit {

/// A continuous image statistic (e.g. redness); the content filter lifts
/// the per-mask UDF of the query to the whole frame (Section 8.1: apply
/// the UDF over the entire frame and filter frames that cannot satisfy it).
using ImageUdf = std::function<double(const Image&)>;

/// Content-based filtering: scores each frame by a cheap visual statistic
/// inferred from the query's UDF predicate, e.g. the frame-level redness
/// when searching for red buses. Only meaningful for UDFs returning
/// continuous values (the paper's restriction); threshold calibration on
/// the held-out set discovers whether the lifted UDF is actually selective.
///
/// ScoreBatch shards its sweep across the exec pool, so the UDF must be a
/// pure function of the image (no shared mutable state). Every built-in
/// is; a stateful ad-hoc closure would already be unfit for a filter,
/// whose score must be a stable function of the frame.
class ContentFilter : public FrameFilter {
 public:
  /// `raster` is the render size used to evaluate the statistic.
  ContentFilter(std::string udf_name, ImageUdf udf, int raster_width = 32,
                int raster_height = 32)
      : udf_name_(std::move(udf_name)),
        udf_(std::move(udf)),
        raster_width_(raster_width),
        raster_height_(raster_height) {}

  std::string name() const override { return "content(" + udf_name_ + ")"; }

  double Score(const SyntheticVideo& video, int64_t frame) const override {
    // Single-frame path: render into a filter-lifetime scratch buffer
    // (single-threaded use only; batch sweeps go through ScoreBatch).
    return ScoreInto(video, frame, &render_scratch_);
  }

  /// Sharded parallel sweep with per-worker render scratch; scores are
  /// bit-identical to the serial Score loop (disjoint output slots, same
  /// per-frame math) and the persistent score cache is read before and
  /// written after the parallel section, in frame order.
  std::vector<double> ScoreBatch(
      const SyntheticVideo& video,
      const std::vector<int64_t>& frames) const override;

  int raster_width() const { return raster_width_; }
  int raster_height() const { return raster_height_; }

 private:
  double ScoreInto(const SyntheticVideo& video, int64_t frame,
                   Image* scratch) const {
    video.RenderFrameRegionInto(frame, Rect{0, 0, 1, 1}, raster_width_,
                                raster_height_, scratch);
    return udf_(*scratch);
  }

  std::string udf_name_;
  ImageUdf udf_;
  int raster_width_;
  int raster_height_;
  /// Reused render buffer of the single-frame Score path; always fully
  /// overwritten before the UDF reads it.
  mutable Image render_scratch_;
};

}  // namespace blazeit

#endif  // BLAZEIT_FILTERS_CONTENT_FILTER_H_
