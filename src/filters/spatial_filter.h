#ifndef BLAZEIT_FILTERS_SPATIAL_FILTER_H_
#define BLAZEIT_FILTERS_SPATIAL_FILTER_H_

#include "detect/detection.h"
#include "video/geometry.h"

namespace blazeit {

/// Spatial filtering (Section 8): a user-specified region of interest
/// lets BlazeIt (a) crop frames before detection — detectors resize the
/// short edge to a fixed size, so making the input squarer reduces cost —
/// and (b) drop detections outside the ROI.
class SpatialFilter {
 public:
  /// `roi` in normalized coordinates; frame dimensions are the stream's
  /// nominal resolution (the aspect-ratio math is in pixels).
  SpatialFilter(const Rect& roi, int frame_width, int frame_height);

  const Rect& roi() const { return roi_; }

  /// The crop actually sent to the detector: the ROI expanded toward a
  /// square (the paper's "make images more square" rule; e.g. a 1280x720
  /// frame with xmax < 720 becomes a 720x720 crop).
  const Rect& effective_crop() const { return effective_crop_; }

  /// Long-edge / short-edge ratio of the effective crop, in pixels. The
  /// cost model charges detection proportionally to this.
  double AspectRatio() const { return aspect_; }

  /// Detection-cost speedup relative to the uncropped frame.
  double Speedup() const;

  /// True if the detection (clipped to the frame) lies inside the ROI
  /// (its center must be inside).
  bool Contains(const Detection& detection) const;

 private:
  Rect roi_;
  Rect effective_crop_;
  int frame_width_;
  int frame_height_;
  double aspect_;
};

}  // namespace blazeit

#endif  // BLAZEIT_FILTERS_SPATIAL_FILTER_H_
