#include "filters/label_filter.h"

// Implementation is inline; this file anchors the vtable.
