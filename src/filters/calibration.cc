#include "filters/calibration.h"

#include <algorithm>
#include <limits>

namespace blazeit {

Result<CalibrationResult> CalibrateNoFalseNegatives(
    FrameFilter* filter, const SyntheticVideo& held_out,
    const std::vector<char>& positive_mask, double safety_margin) {
  if (filter == nullptr)
    return Status::InvalidArgument("filter must not be null");
  if (static_cast<int64_t>(positive_mask.size()) != held_out.num_frames())
    return Status::InvalidArgument(
        "positive_mask must cover every held-out frame");

  double min_pos = std::numeric_limits<double>::infinity();
  double max_pos = -std::numeric_limits<double>::infinity();
  int64_t positives = 0;
  std::vector<int64_t> all_frames(positive_mask.size());
  for (size_t i = 0; i < all_frames.size(); ++i) {
    all_frames[i] = static_cast<int64_t>(i);
  }
  std::vector<double> scores = filter->ScoreBatch(held_out, all_frames);
  for (int64_t t = 0; t < held_out.num_frames(); ++t) {
    double s = scores[static_cast<size_t>(t)];
    if (positive_mask[static_cast<size_t>(t)]) {
      ++positives;
      min_pos = std::min(min_pos, s);
      max_pos = std::max(max_pos, s);
    }
  }
  if (positives == 0)
    return Status::NotFound(
        "no positive frames on the held-out day; filter cannot be "
        "calibrated");

  CalibrationResult out;
  out.positives = positives;
  // Shift the threshold below the weakest positive by a fraction of the
  // positive score range, hedging against distribution shift on the test
  // day (the paper assumes no model drift but still thresholds to err on
  // the side of false positives).
  out.threshold = min_pos - safety_margin * std::max(0.0, max_pos - min_pos);
  filter->set_threshold(out.threshold);

  int64_t passing = 0;
  for (double s : scores) {
    if (s >= out.threshold) ++passing;
  }
  out.selectivity =
      static_cast<double>(passing) / static_cast<double>(scores.size());
  return out;
}

}  // namespace blazeit
