#include "filters/spatial_filter.h"

#include <algorithm>
#include <cmath>

namespace blazeit {

SpatialFilter::SpatialFilter(const Rect& roi, int frame_width,
                             int frame_height)
    : roi_(roi.ClampToUnit()),
      frame_width_(frame_width),
      frame_height_(frame_height) {
  // Work in pixels.
  double w_px = roi_.width() * frame_width_;
  double h_px = roi_.height() * frame_height_;
  double cx = roi_.CenterX() * frame_width_;
  double cy = roi_.CenterY() * frame_height_;
  // Expand the smaller dimension toward a square; the extra scene content
  // is harmless, and a squarer input minimizes pixels after the detector's
  // short-edge resize.
  double target = std::max(w_px, h_px);
  double new_w = std::min<double>(target, frame_width_);
  double new_h = std::min<double>(target, frame_height_);
  new_w = std::max(new_w, w_px);
  new_h = std::max(new_h, h_px);
  // Re-center, clamped to the frame.
  double x0 = std::clamp(cx - new_w / 2, 0.0, frame_width_ - new_w);
  double y0 = std::clamp(cy - new_h / 2, 0.0, frame_height_ - new_h);
  effective_crop_ = Rect{x0 / frame_width_, y0 / frame_height_,
                         (x0 + new_w) / frame_width_,
                         (y0 + new_h) / frame_height_};
  double long_edge = std::max(new_w, new_h);
  double short_edge = std::min(new_w, new_h);
  aspect_ = short_edge > 0 ? long_edge / short_edge : 1.0;
}

double SpatialFilter::Speedup() const {
  double full_aspect =
      static_cast<double>(std::max(frame_width_, frame_height_)) /
      static_cast<double>(std::min(frame_width_, frame_height_));
  return full_aspect / aspect_;
}

bool SpatialFilter::Contains(const Detection& detection) const {
  return roi_.Contains(detection.rect.CenterX(), detection.rect.CenterY());
}

}  // namespace blazeit
