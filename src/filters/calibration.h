#ifndef BLAZEIT_FILTERS_CALIBRATION_H_
#define BLAZEIT_FILTERS_CALIBRATION_H_

#include <cstdint>
#include <vector>

#include "filters/filter.h"
#include "util/status.h"

namespace blazeit {

/// Result of calibrating a filter threshold on the held-out day.
struct CalibrationResult {
  /// Threshold achieving zero false negatives on the held-out positives.
  double threshold = 0.0;
  /// Fraction of all held-out frames passing at that threshold; the
  /// optimizer uses this to decide whether the filter pays for itself.
  double selectivity = 1.0;
  /// Number of positive frames observed during calibration.
  int64_t positives = 0;
};

/// Sets the filter threshold to the minimum score over positive held-out
/// frames (optionally shifted down by `safety_margin` times the positive
/// score range), so the filter has no false negatives on the held-out set
/// — BlazeIt's operating point (Section 8). `positive_mask[i]` marks frame
/// i of the held-out day as satisfying the query predicate (computed from
/// the labeled set). Fails with NotFound if no positives exist, in which
/// case the optimizer must skip the filter.
Result<CalibrationResult> CalibrateNoFalseNegatives(
    FrameFilter* filter, const SyntheticVideo& held_out,
    const std::vector<char>& positive_mask, double safety_margin = 0.05);

}  // namespace blazeit

#endif  // BLAZEIT_FILTERS_CALIBRATION_H_
